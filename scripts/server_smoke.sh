#!/bin/sh
# Server smoke test: bring up a loopback server inside loadgen, drive a
# burst of mixed traffic (TPC-H point/range queries, payment-shaped
# transactions, verified point reads) over 8 connections with a seeded
# disk-fault round armed, and require zero mismatches plus a clean
# graceful shutdown (-check exits non-zero otherwise). A second pass
# exercises the standalone server binary end to end through the remote
# shell, with the admin telemetry plane up: /metrics must serve Prometheus
# text, /traces must show recorded traces, and /bees must attribute
# nonzero estimated savings to at least one bee.
set -e

echo "== loadgen burst with seeded faults =="
go run ./cmd/loadgen -conns 8 -dur 2s -tpch 0.005 -faults -faultseed 42 \
    -poolpages 96 -check -out /tmp/bench_server_smoke.json
grep -q '"injected": 0' /tmp/bench_server_smoke.json \
    && { echo "fault round injected nothing"; exit 1; } || true

echo "== loadgen scaling smoke (MVCC snapshot reads, I/O-bound mode) =="
# Page reads really sleep, so concurrent connections must overlap their
# I/O waits: 4 connections are required to beat 1 connection by >= 1.5x,
# with every verified point read still returning its seeded value.
go run ./cmd/loadgen -conns 1,4 -dur 2s -tpch 0.005 -latency 300us \
    -minscale 1.5 -check -out /tmp/bench_server_scaling.json

echo "== standalone server round trip =="
go build -o /tmp/microspec-server ./cmd/microspec-server
go build -o /tmp/microspec ./cmd/microspec
/tmp/microspec-server -addr 127.0.0.1:5439 -admin 127.0.0.1:6439 -trace 1 \
    -tpch 0.001 >/tmp/server_smoke.log 2>&1 &
SRV=$!
trap 'kill $SRV 2>/dev/null || true' EXIT
sleep 3
OUT=$(printf 'select count(*) from region;\nselect count(*), sum(l_extendedprice) from lineitem where l_quantity < 24;\n\\q\n' | /tmp/microspec -connect 127.0.0.1:5439)
echo "$OUT"
echo "$OUT" | grep -q '^5$' || { echo "remote shell round trip failed"; exit 1; }

echo "== admin telemetry plane =="
# /metrics: HTTP 200 and real Prometheus exposition text.
METRICS=$(curl -sf http://127.0.0.1:6439/metrics) \
    || { echo "/metrics not serving"; exit 1; }
echo "$METRICS" | grep -q '^microspec_server_requests ' \
    || { echo "/metrics missing server counters"; exit 1; }
# /traces: HTTP 200 and at least one recorded trace with an exec span.
TRACES=$(curl -sf http://127.0.0.1:6439/traces) \
    || { echo "/traces not serving"; exit 1; }
echo "$TRACES" | grep -q '"name": "exec"' \
    || { echo "/traces has no exec spans"; exit 1; }
# /bees: HTTP 200 and a nonzero estimated-time-saved attribution.
BEES=$(curl -sf http://127.0.0.1:6439/bees) \
    || { echo "/bees not serving"; exit 1; }
echo "$BEES" | grep -q '"est_saved_ns"' \
    || { echo "/bees missing benefit section"; exit 1; }
echo "$BEES" | grep '"est_saved_ns"' | grep -vq '"est_saved_ns": 0' \
    || { echo "/bees attributes no savings to any bee"; exit 1; }
echo "admin telemetry OK"

kill -INT $SRV
wait $SRV
grep -q 'shutting down' /tmp/server_smoke.log || { echo "no graceful shutdown"; exit 1; }
echo "server smoke OK"
