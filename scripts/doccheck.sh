#!/bin/sh
# doccheck.sh — documentation lint, run by the CI docs job.
#
# 1. Every intra-repo markdown link ([text](path) where path is not a
#    URL or pure anchor) must point at a file that exists.
# 2. Every internal/ package must carry a godoc package comment
#    ("// Package <name> ..." immediately above a package clause).
#
# Exits non-zero with one line per violation.
set -u
cd "$(dirname "$0")/.." || exit 1

fail=0

# --- 1. intra-repo markdown links -----------------------------------
# Extract (file, target) pairs for inline links, strip anchors and
# skip absolute URLs / mailto / pure-anchor links.
for md in $(find . -name '*.md' -not -path './.git/*'); do
    links=$(grep -o '\[[^]]*\]([^)]*)' "$md" 2>/dev/null |
        sed 's/.*](\([^)]*\))/\1/') || true
    for target in $links; do
        case "$target" in
        http://* | https://* | mailto:* | \#*) continue ;;
        esac
        # Strip a trailing anchor and optional title.
        path=$(printf '%s' "$target" | sed 's/#.*$//; s/ .*$//')
        [ -z "$path" ] && continue
        # Resolve relative to the markdown file's directory.
        base=$(dirname "$md")
        if [ ! -e "$base/$path" ] && [ ! -e "$path" ]; then
            echo "doccheck: $md: broken link -> $target"
            fail=1
        fi
    done
done

# --- 2. package comments --------------------------------------------
for dir in $(find internal -type d); do
    # Only directories that directly contain non-test Go files.
    gofiles=$(find "$dir" -maxdepth 1 -name '*.go' ! -name '*_test.go')
    [ -z "$gofiles" ] && continue
    pkg=$(basename "$dir")
    if ! grep -l "^// Package $pkg " $gofiles >/dev/null 2>&1; then
        echo "doccheck: $dir: no '// Package $pkg ...' comment in any file"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "doccheck: FAILED"
    exit 1
fi
echo "doccheck: OK"
