// Package microspec_test holds the top-level benchmark harness: one
// testing.B benchmark per table and figure of the paper (see DESIGN.md §3
// for the experiment index). Each benchmark family runs the identical
// workload on the stock engine and on the bee-enabled engine, so
// `go test -bench=. -benchmem` prints the stock-vs-bee contrast for every
// experiment. The cmd/ tools run the same experiments at larger scale
// with the paper's measurement protocol (interleaved runs, outlier
// dropping) and print the figures as tables.
package microspec_test

import (
	"fmt"
	"sync"
	"testing"

	"microspec/internal/core"
	"microspec/internal/engine"
	"microspec/internal/harness"
	"microspec/internal/profile"
	"microspec/internal/tpcc"
	"microspec/internal/tpch"
	"microspec/internal/types"
)

const benchSF = 0.002

var (
	tpchOnce  sync.Once
	tpchStock *engine.DB
	tpchBee   *engine.DB
)

func tpchPair(b *testing.B) (*engine.DB, *engine.DB) {
	b.Helper()
	tpchOnce.Do(func() {
		o := harness.DefaultOptions()
		o.SF = benchSF
		var err error
		tpchStock, tpchBee, err = harness.BuildTPCHPair(o)
		if err != nil {
			panic(err)
		}
		if err := tpchStock.WarmUp(); err != nil {
			panic(err)
		}
		if err := tpchBee.WarmUp(); err != nil {
			panic(err)
		}
	})
	return tpchStock, tpchBee
}

func benchQuery(b *testing.B, db *engine.DB, q string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCaseStudy is E1 (§II): `select o_comment from orders`.
func BenchmarkCaseStudy(b *testing.B) {
	stock, bee := tpchPair(b)
	const q = "select o_comment from orders"
	b.Run("stock", func(b *testing.B) { benchQuery(b, stock, q) })
	b.Run("bee", func(b *testing.B) { benchQuery(b, bee, q) })
}

// BenchmarkTPCHWarm is E2 (Figure 4): every TPC-H query, warm cache,
// stock vs bee.
func BenchmarkTPCHWarm(b *testing.B) {
	stock, bee := tpchPair(b)
	queries := tpch.Queries()
	for _, qn := range tpch.QueryNumbers() {
		q := queries[qn]
		b.Run(fmt.Sprintf("q%02d/stock", qn), func(b *testing.B) { benchQuery(b, stock, q) })
		b.Run(fmt.Sprintf("q%02d/bee", qn), func(b *testing.B) { benchQuery(b, bee, q) })
	}
}

// benchBatchVariants is E12 (DESIGN.md §10): one scan-heavy query under
// the three executor configurations — generic tuple-at-a-time (stock
// engine, batching off), bee tuple-at-a-time (bee engine, batching off),
// and bee batch-at-a-time (bee engine, the default). The batch/tuple
// contrast on the same bee engine isolates the executor model from the
// bee routines themselves.
func benchBatchVariants(b *testing.B, q string) {
	stock, bee := tpchPair(b)
	variants := []struct {
		name  string
		db    *engine.DB
		batch bool
	}{
		{"generic", stock, false},
		{"bee-tuple", bee, false},
		{"bee-batch", bee, true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			prev := v.db.BatchEnabled()
			v.db.SetBatch(v.batch)
			defer v.db.SetBatch(prev)
			benchQuery(b, v.db, q)
		})
	}
}

// BenchmarkQ1 is the batch-execution showcase on the aggregation-heavy
// pricing summary report (one wide scan, eight aggregates).
func BenchmarkQ1(b *testing.B) { benchBatchVariants(b, tpch.Queries()[1]) }

// BenchmarkQ6 is the batch-execution showcase on the filter-heavy
// forecasting revenue query (selective predicate, two aggregates).
func BenchmarkQ6(b *testing.B) { benchBatchVariants(b, tpch.Queries()[6]) }

// BenchmarkTPCHCold is E3 (Figure 5): representative queries with the
// buffer pool dropped before every execution (the reported ns/op excludes
// the simulated disk latency, which the tpch-bench tool adds; the page
// read counts still differ between the engines).
func BenchmarkTPCHCold(b *testing.B) {
	stock, bee := tpchPair(b)
	queries := tpch.Queries()
	for _, qn := range []int{1, 6, 9} {
		q := queries[qn]
		for _, side := range []struct {
			name string
			db   *engine.DB
		}{{"stock", stock}, {"bee", bee}} {
			b.Run(fmt.Sprintf("q%02d/%s", qn, side.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := side.db.DropCaches(); err != nil {
						b.Fatal(err)
					}
					if _, err := side.db.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTPCHInstructions is E4 (Figure 6): abstract instruction counts
// per query, reported as instrs/op metrics.
func BenchmarkTPCHInstructions(b *testing.B) {
	stock, bee := tpchPair(b)
	queries := tpch.Queries()
	for _, qn := range []int{1, 3, 6, 14} {
		q := queries[qn]
		for _, side := range []struct {
			name string
			db   *engine.DB
		}{{"stock", stock}, {"bee", bee}} {
			b.Run(fmt.Sprintf("q%02d/%s", qn, side.name), func(b *testing.B) {
				var total int64
				for i := 0; i < b.N; i++ {
					prof := &profile.Counters{}
					if _, err := side.db.QueryProfiled(q, prof); err != nil {
						b.Fatal(err)
					}
					total = prof.Total()
				}
				b.ReportMetric(float64(total), "instrs/op")
			})
		}
	}
}

// BenchmarkTPCHAblation is E5 (Figure 7): q6 under the three bee-routine
// sets (q6 is the paper's showcase for EVP).
func BenchmarkTPCHAblation(b *testing.B) {
	_, bee := tpchPair(b)
	q := tpch.Queries()[6]
	for _, step := range harness.AblationSteps() {
		b.Run(step.Label, func(b *testing.B) {
			if err := bee.SetRoutines(step.Routines); err != nil {
				b.Fatal(err)
			}
			benchQuery(b, bee, q)
		})
	}
	if err := bee.SetRoutines(core.AllRoutines); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBulkLoad is E6/E8 (Figure 8): loading the orders relation.
// Rows are materialized outside the timed region, as in the cmd tool
// (which additionally charges simulated page-write I/O — the source of
// most of the paper's Figure 8 improvement).
func BenchmarkBulkLoad(b *testing.B) {
	g := tpch.NewGenerator(benchSF)
	var rows [][]types.Datum
	iter := g.OrderRows()
	for {
		row, ok := iter()
		if !ok {
			break
		}
		rows = append(rows, row)
	}
	for _, side := range []struct {
		name     string
		routines core.RoutineSet
	}{{"stock", core.Stock}, {"bee", core.AllRoutines}} {
		b.Run(side.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				db := engine.Open(engine.Config{Routines: side.routines})
				if err := tpch.CreateSchema(db); err != nil {
					b.Fatal(err)
				}
				j := 0
				if _, err := db.BulkLoad("orders", nil, func() ([]types.Datum, bool) {
					if j >= len(rows) {
						return nil, false
					}
					j++
					return rows[j-1], true
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTPCC is E7 (§VI-C): the three transaction mixes, 200
// transactions per iteration on a persistent database.
func BenchmarkTPCC(b *testing.B) {
	mixes := []struct {
		name string
		mix  tpcc.Mix
	}{
		{"default", tpcc.DefaultMix},
		{"queryonly", tpcc.QueryOnlyMix},
		{"equal", tpcc.EqualMix},
	}
	for _, m := range mixes {
		for _, side := range []struct {
			name     string
			routines core.RoutineSet
		}{{"stock", core.Stock}, {"bee", core.AllRoutines}} {
			b.Run(m.name+"/"+side.name, func(b *testing.B) {
				cfg := tpcc.SmallConfig(1)
				db, err := tpcc.NewDatabase(engine.Config{Routines: side.routines}, cfg)
				if err != nil {
					b.Fatal(err)
				}
				dr, err := tpcc.NewDriver(db, cfg, m.mix, 1, nil)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := dr.RunN(200); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkStorage is E9: page counts are reported as metrics rather
// than times (the experiment is about storage, not speed).
func BenchmarkStorage(b *testing.B) {
	stock, bee := tpchPair(b)
	rows, err := harness.RunStorageReport(stock, bee)
	if err != nil {
		b.Fatal(err)
	}
	stockPages, beePages := 0, 0
	for _, r := range rows {
		stockPages += r.StockPages
		beePages += r.BeePages
	}
	b.ReportMetric(float64(stockPages), "stock-pages")
	b.ReportMetric(float64(beePages), "bee-pages")
	for i := 0; i < b.N; i++ {
		// The measurement is static; keep the loop for the harness.
	}
}

// BenchmarkTPCHObserved is the observability integration: it runs Q1 and
// Q3 on both engines and reports MetricsSnapshot deltas — buffer hit
// rate and per-query bee-routine calls — alongside wall-clock, so
// benchmark trajectories capture hit rates, not just ns/op. The
// q*/workers* sub-benchmarks add the intra-query parallelism contrast on
// the scan-dominated Q1 and Q6 (compare ns/op at workers=1 vs workers=4;
// on a single-core machine the degrees tie). The full snapshot JSON is
// dumped by `tpch-bench -metrics out.json`.
func BenchmarkTPCHObserved(b *testing.B) {
	stock, bee := tpchPair(b)
	queries := tpch.Queries()
	for _, qn := range []int{1, 3} {
		q := queries[qn]
		for _, side := range []struct {
			name string
			db   *engine.DB
		}{{"stock", stock}, {"bee", bee}} {
			b.Run(fmt.Sprintf("q%02d/%s", qn, side.name), func(b *testing.B) {
				before := side.db.MetricsSnapshot()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := side.db.Query(q); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				after := side.db.MetricsSnapshot()
				delta := func(k string) float64 {
					return float64(after.Counters[k] - before.Counters[k])
				}
				if total := delta("buffer.hits") + delta("buffer.misses"); total > 0 {
					b.ReportMetric(delta("buffer.hits")/total, "buffer-hit-rate")
				}
				n := float64(b.N)
				b.ReportMetric(delta("bees.calls.gcl")/n, "gcl-calls/op")
				b.ReportMetric(delta("bees.calls.evp")/n, "evp-calls/op")
				b.ReportMetric(delta("bees.calls.evj")/n, "evj-calls/op")
			})
		}
	}

	// Parallel-scan scaling on the bee engine. Restore the engine's
	// original degree afterwards so later benchmarks see the default.
	prev := bee.Workers()
	defer bee.SetWorkers(prev)
	for _, qn := range []int{1, 6} {
		q := queries[qn]
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("q%02d/bee/workers%d", qn, w), func(b *testing.B) {
				bee.SetWorkers(w)
				before := bee.MetricsSnapshot()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := bee.Query(q); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				after := bee.MetricsSnapshot()
				par := after.Counters["parallel_queries"] - before.Counters["parallel_queries"]
				b.ReportMetric(float64(par)/float64(b.N), "parallel-queries/op")
			})
		}
	}
}
