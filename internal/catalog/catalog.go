// Package catalog implements the system catalog: relation schemas with the
// per-attribute storage metadata (attlen, attalign, attcacheoff,
// attnotnull) that the paper's generic tuple-deforming code consults on
// every attribute of every tuple, plus the DBA annotations that mark
// low-cardinality attributes as candidates for tuple-bee specialization.
package catalog

import (
	"fmt"
	"sync"
	"sync/atomic"

	"microspec/internal/types"
)

// RelID identifies a relation within a database.
type RelID uint32

// Attribute describes one column, including the storage metadata that the
// generic query-evaluation loop repeatedly consults and that
// micro-specialization folds into bee code as constants.
type Attribute struct {
	Name    string
	Type    types.T
	NotNull bool

	// LowCard marks the attribute as low-cardinality (≤256 distinct
	// values), the paper's annotation that enables tuple-bee
	// specialization of the attribute's values.
	LowCard bool

	// Len is the storage length in bytes (-1 for varlena) — attlen.
	Len int
	// Align is the storage alignment in bytes — attalign.
	Align int
	// CacheOff is the byte offset of this attribute within the tuple data
	// area when that offset is a schema constant (the attribute is not
	// preceded by any variable-length or nullable attribute); otherwise
	// -1. This is attcacheoff; the generic deform loop tests it before
	// falling back to alignment arithmetic.
	CacheOff int
}

// Schema is an ordered list of column definitions, the input to
// CreateRelation.
type Schema struct {
	Attrs []Attribute
}

// Col builds a column definition for Schema literals.
func Col(name string, t types.T, notNull bool) Attribute {
	return Attribute{Name: name, Type: t, NotNull: notNull}
}

// LowCardCol builds a column definition annotated as low-cardinality.
func LowCardCol(name string, t types.T, notNull bool) Attribute {
	return Attribute{Name: name, Type: t, NotNull: notNull, LowCard: true}
}

// Relation is a cataloged relation. The storage metadata of its attributes
// is finalized (Len/Align/CacheOff computed) when the relation is created.
type Relation struct {
	ID    RelID
	Name  string
	Attrs []Attribute

	// HasNullable reports whether any attribute may be null; if false the
	// stored tuples of this relation never carry a null bitmap, which is
	// the property the paper's case study exploits ("no null values are
	// allowed for this relation").
	HasNullable bool

	// PKey lists the attribute ordinals of the primary key, if declared.
	PKey []int

	// Spec describes which attributes are tuple-bee specialized out of the
	// stored tuple format. It is nil in a stock database and set by the
	// bee module when tuple bees are enabled for the relation. The storage
	// layer consults it to know which attributes are physically stored.
	Spec *SpecInfo

	// Stats carries planner statistics, refreshed by the engine.
	Stats Stats
}

// SpecInfo records the tuple-bee specialization of a relation's storage:
// which attributes are dictionary-encoded into bee data sections (and thus
// absent from stored tuples).
type SpecInfo struct {
	// Specialized[i] is true if attribute i's value lives in the tuple
	// bee's data section rather than in the stored tuple.
	Specialized []bool
	// NumSpecialized is the count of true entries in Specialized.
	NumSpecialized int
}

// IsSpecialized reports whether attribute i is tuple-bee specialized.
func (r *Relation) IsSpecialized(i int) bool {
	return r.Spec != nil && r.Spec.Specialized[i]
}

// Stats holds planner-visible statistics.
type Stats struct {
	RowCount int64
	Pages    int64
}

// NumAttrs returns the attribute count (natts).
func (r *Relation) NumAttrs() int { return len(r.Attrs) }

// AttrIndex returns the ordinal of the named attribute, or -1.
func (r *Relation) AttrIndex(name string) int {
	for i := range r.Attrs {
		if r.Attrs[i].Name == name {
			return i
		}
	}
	return -1
}

// finalize computes the derived storage metadata for every attribute:
// attlen and attalign from the type, and attcacheoff for the fixed-offset
// prefix. An attribute has a constant offset iff no earlier attribute is
// variable-length or nullable (a null earlier attribute shifts all later
// offsets). Specialized attributes are skipped entirely: they occupy no
// storage, so they neither have an offset nor break the constancy of
// later offsets.
func (r *Relation) finalize() {
	r.HasNullable = false
	off := 0
	constant := true
	for i := range r.Attrs {
		a := &r.Attrs[i]
		a.Len = a.Type.Len()
		a.Align = a.Type.Align()
		a.CacheOff = -1
		if !a.NotNull {
			r.HasNullable = true
		}
		if r.IsSpecialized(i) {
			continue
		}
		if constant {
			off = alignUp(off, a.Align)
			a.CacheOff = off
			if a.Len > 0 {
				off += a.Len
			}
		}
		if a.Len < 0 || !a.NotNull {
			constant = false
		}
	}
}

func alignUp(off, align int) int {
	return (off + align - 1) &^ (align - 1)
}

// Catalog is the collection of relations in one database. It is
// internally synchronized: DDL may run concurrently with lookups.
type Catalog struct {
	mu     sync.RWMutex
	byName map[string]*Relation
	byID   map[RelID]*Relation
	nextID RelID

	// Lookups counts catalog consultations, the overhead the paper's
	// introduction calls out ("the catalog ... must be scanned for each
	// attribute value of the tuple"). Atomic: bumped under the read lock
	// by concurrent lookups.
	lookups atomic.Int64
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		byName: make(map[string]*Relation),
		byID:   make(map[RelID]*Relation),
		nextID: 1,
	}
}

// CreateRelation registers a new relation and finalizes its storage
// metadata. If spec is non-nil, the relation's stored-tuple format omits
// the specialized attributes (tuple bees enabled).
func (c *Catalog) CreateRelation(name string, schema Schema, pkey []int, spec *SpecInfo) (*Relation, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byName[name]; ok {
		return nil, fmt.Errorf("relation %q already exists", name)
	}
	if len(schema.Attrs) == 0 {
		return nil, fmt.Errorf("relation %q must have at least one attribute", name)
	}
	seen := make(map[string]bool, len(schema.Attrs))
	for _, a := range schema.Attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("relation %q: empty attribute name", name)
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("relation %q: duplicate attribute %q", name, a.Name)
		}
		seen[a.Name] = true
	}
	if spec != nil && len(spec.Specialized) != len(schema.Attrs) {
		return nil, fmt.Errorf("relation %q: specialization mask has %d entries for %d attributes",
			name, len(spec.Specialized), len(schema.Attrs))
	}
	rel := &Relation{
		ID:    c.nextID,
		Name:  name,
		Attrs: append([]Attribute(nil), schema.Attrs...),
		PKey:  append([]int(nil), pkey...),
		Spec:  spec,
	}
	rel.finalize()
	c.nextID++
	c.byName[name] = rel
	c.byID[rel.ID] = rel
	return rel, nil
}

// DropRelation removes a relation from the catalog.
func (c *Catalog) DropRelation(name string) (*Relation, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rel, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("relation %q does not exist", name)
	}
	delete(c.byName, name)
	delete(c.byID, rel.ID)
	return rel, nil
}

// Lookup returns the named relation, or an error naming it.
func (c *Catalog) Lookup(name string) (*Relation, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.lookups.Add(1)
	rel, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("relation %q does not exist", name)
	}
	return rel, nil
}

// LookupID returns the relation with the given ID, or nil.
func (c *Catalog) LookupID(id RelID) *Relation {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.lookups.Add(1)
	return c.byID[id]
}

// Relations returns all relations in creation order.
func (c *Catalog) Relations() []*Relation {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Relation, 0, len(c.byID))
	for id := RelID(1); id < c.nextID; id++ {
		if r, ok := c.byID[id]; ok {
			out = append(out, r)
		}
	}
	return out
}

// Lookups returns the cumulative catalog-lookup count.
func (c *Catalog) Lookups() int64 {
	return c.lookups.Load()
}
