package catalog

import (
	"testing"

	"microspec/internal/types"
)

// ordersSchema mirrors TPC-H orders: the relation used throughout the
// paper's case study (9 attributes, all NOT NULL, varlena in the middle).
func ordersSchema() Schema {
	return Schema{Attrs: []Attribute{
		Col("o_orderkey", types.Int32, true),
		Col("o_custkey", types.Int32, true),
		LowCardCol("o_orderstatus", types.Char(1), true),
		Col("o_totalprice", types.Float64, true),
		Col("o_orderdate", types.Date, true),
		LowCardCol("o_orderpriority", types.Char(15), true),
		Col("o_clerk", types.Char(15), true),
		Col("o_shippriority", types.Int32, true),
		Col("o_comment", types.Varchar(79), true),
	}}
}

func TestCreateRelationMetadata(t *testing.T) {
	c := New()
	rel, err := c.CreateRelation("orders", ordersSchema(), []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumAttrs() != 9 {
		t.Fatalf("natts = %d, want 9", rel.NumAttrs())
	}
	if rel.HasNullable {
		t.Error("orders has no nullable attributes")
	}
	// attlen / attalign derived from types.
	if a := rel.Attrs[0]; a.Len != 4 || a.Align != 4 {
		t.Errorf("o_orderkey len/align = %d/%d", a.Len, a.Align)
	}
	if a := rel.Attrs[8]; a.Len != -1 || a.Align != 4 {
		t.Errorf("o_comment len/align = %d/%d", a.Len, a.Align)
	}
	// attcacheoff: constant offsets through the fixed prefix.
	wantOffsets := []int{0, 4, 8, 16, 24, 28, 43, 60, 64}
	for i, want := range wantOffsets {
		if got := rel.Attrs[i].CacheOff; got != want {
			t.Errorf("attr %d (%s) CacheOff = %d, want %d", i, rel.Attrs[i].Name, got, want)
		}
	}
}

func TestCacheOffStopsAfterVarlena(t *testing.T) {
	c := New()
	rel, err := c.CreateRelation("t", Schema{Attrs: []Attribute{
		Col("a", types.Int32, true),
		Col("b", types.Varchar(10), true),
		Col("c", types.Int32, true),
	}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Attrs[0].CacheOff != 0 || rel.Attrs[1].CacheOff != 4 {
		t.Errorf("prefix offsets: %d %d", rel.Attrs[0].CacheOff, rel.Attrs[1].CacheOff)
	}
	if rel.Attrs[2].CacheOff != -1 {
		t.Errorf("attr after varlena must have CacheOff -1, got %d", rel.Attrs[2].CacheOff)
	}
}

func TestCacheOffStopsAfterNullable(t *testing.T) {
	c := New()
	rel, err := c.CreateRelation("t", Schema{Attrs: []Attribute{
		Col("a", types.Int32, true),
		Col("b", types.Int32, false), // nullable
		Col("c", types.Int32, true),
	}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rel.HasNullable {
		t.Error("HasNullable must be set")
	}
	if rel.Attrs[1].CacheOff != 4 {
		t.Errorf("nullable attr itself still has constant offset: %d", rel.Attrs[1].CacheOff)
	}
	if rel.Attrs[2].CacheOff != -1 {
		t.Errorf("attr after nullable must have CacheOff -1, got %d", rel.Attrs[2].CacheOff)
	}
}

func TestSpecializedAttrsSkipStorage(t *testing.T) {
	c := New()
	spec := &SpecInfo{Specialized: []bool{false, false, true, false, false, true, false, true, false}, NumSpecialized: 3}
	rel, err := c.CreateRelation("orders", ordersSchema(), []int{0}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rel.IsSpecialized(2) || rel.IsSpecialized(3) {
		t.Error("IsSpecialized mask wrong")
	}
	// o_orderstatus (attr 2, char(1)) is specialized away, so o_totalprice
	// starts right after the two int4s, aligned to 8.
	if got := rel.Attrs[3].CacheOff; got != 8 {
		t.Errorf("o_totalprice CacheOff = %d, want 8", got)
	}
	// Specialized attrs have no storage offset.
	if rel.Attrs[2].CacheOff != -1 {
		t.Errorf("specialized attr CacheOff = %d, want -1", rel.Attrs[2].CacheOff)
	}
	// o_clerk: after o_orderdate (ends 16+8=24... recompute: ok=0..4,ck=4..8,
	// tp=8..16, od=16..20, priority specialized, clerk at 20.
	if got := rel.Attrs[6].CacheOff; got != 20 {
		t.Errorf("o_clerk CacheOff = %d, want 20", got)
	}
}

func TestCatalogLifecycle(t *testing.T) {
	c := New()
	if _, err := c.CreateRelation("r", ordersSchema(), nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateRelation("r", ordersSchema(), nil, nil); err == nil {
		t.Error("duplicate create must fail")
	}
	rel, err := c.Lookup("r")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.LookupID(rel.ID); got != rel {
		t.Error("LookupID mismatch")
	}
	if n := len(c.Relations()); n != 1 {
		t.Errorf("Relations len = %d", n)
	}
	if c.Lookups() == 0 {
		t.Error("lookup counter must advance")
	}
	if _, err := c.DropRelation("r"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup("r"); err == nil {
		t.Error("lookup after drop must fail")
	}
	if _, err := c.DropRelation("r"); err == nil {
		t.Error("double drop must fail")
	}
}

func TestCreateRelationValidation(t *testing.T) {
	c := New()
	if _, err := c.CreateRelation("e", Schema{}, nil, nil); err == nil {
		t.Error("empty schema must fail")
	}
	if _, err := c.CreateRelation("d", Schema{Attrs: []Attribute{
		Col("x", types.Int32, true), Col("x", types.Int32, true),
	}}, nil, nil); err == nil {
		t.Error("duplicate attribute must fail")
	}
	if _, err := c.CreateRelation("m", ordersSchema(), nil, &SpecInfo{Specialized: []bool{true}}); err == nil {
		t.Error("mismatched spec mask must fail")
	}
	if _, err := c.CreateRelation("n", Schema{Attrs: []Attribute{Col("", types.Int32, true)}}, nil, nil); err == nil {
		t.Error("empty attribute name must fail")
	}
}

func TestAttrIndex(t *testing.T) {
	c := New()
	rel, _ := c.CreateRelation("orders", ordersSchema(), nil, nil)
	if i := rel.AttrIndex("o_orderdate"); i != 4 {
		t.Errorf("AttrIndex(o_orderdate) = %d", i)
	}
	if i := rel.AttrIndex("nope"); i != -1 {
		t.Errorf("AttrIndex(nope) = %d", i)
	}
}
