// Package client is the Go driver for the microspec network server: it
// dials, authenticates, and exposes Query/Prepare/Execute over the
// internal/wire protocol. A Conn is one session and is not safe for
// concurrent use — the protocol is strictly request/response — so
// concurrent workloads open one Conn per goroutine (as cmd/loadgen
// does).
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"microspec/internal/types"
	"microspec/internal/wire"
)

// Config controls a connection.
type Config struct {
	// Addr is the server's host:port.
	Addr string
	// User and Secret are the Hello credentials.
	User   string
	Secret string
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// RequestTimeout bounds each request round-trip, as a client-side
	// read deadline (default none: trust the server's timeouts).
	RequestTimeout time.Duration
	// RetryRecovering keeps redialing while the server answers with the
	// typed "recovering" error (crash recovery replaying behind an
	// already-open listener), backing off between attempts, for up to
	// this duration. Zero fails fast on the first recovering error.
	RetryRecovering time.Duration
}

// IsRecovering reports whether err is the server's typed "database is
// recovering" rejection — transient by construction: the listener is up
// and recovery is replaying, so retrying with backoff succeeds once the
// replay finishes. Distinct from shutting_down, which is final.
func IsRecovering(err error) bool {
	var we *wire.Error
	return errors.As(err, &we) && we.Code == wire.CodeRecovering
}

// Conn is one client session.
type Conn struct {
	cfg       Config
	conn      net.Conn
	r         *bufio.Reader
	SessionID uint64
	stmtSeq   int
	nextTrace uint64
}

// Result is one statement's fully read response.
type Result struct {
	Cols     []wire.Col
	Rows     [][]types.Datum
	Affected int64  // Done.Rows: returned rows for SELECT, affected for DML
	Analyze  string // EXPLAIN ANALYZE outline when requested
	TraceID  uint64 // server-echoed trace ID; 0 when the request wasn't traced
}

// TraceNext asks the server to trace the next Query or Execute on this
// connection under the given nonzero ID (a client-supplied ID always
// samples). The ID is consumed by the next request; the server echoes it
// on Done, so Result.TraceID correlates the client's log line with the
// server-side span tree at /traces?id=.
func (c *Conn) TraceNext(id uint64) { c.nextTrace = id }

// takeTrace consumes the pending trace ID, if any.
func (c *Conn) takeTrace() uint64 {
	id := c.nextTrace
	c.nextTrace = 0
	return id
}

// Dial connects with default credentials and no secret.
func Dial(addr string) (*Conn, error) {
	return DialConfig(Config{Addr: addr})
}

// DialConfig connects and runs the Hello handshake. With RetryRecovering
// set, a handshake rejected with the typed recovering error is retried
// with exponential backoff until it succeeds or the window closes.
func DialConfig(cfg Config) (*Conn, error) {
	c, err := dialOnce(cfg)
	if err == nil || cfg.RetryRecovering <= 0 || !IsRecovering(err) {
		return c, err
	}
	deadline := time.Now().Add(cfg.RetryRecovering)
	backoff := 5 * time.Millisecond
	for {
		if remaining := time.Until(deadline); remaining <= 0 {
			return nil, err
		} else if backoff > remaining {
			backoff = remaining
		}
		time.Sleep(backoff)
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
		c, err = dialOnce(cfg)
		if err == nil || !IsRecovering(err) {
			return c, err
		}
	}
}

func dialOnce(cfg Config) (*Conn, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.User == "" {
		cfg.User = "microspec"
	}
	nc, err := net.DialTimeout("tcp", cfg.Addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &Conn{cfg: cfg, conn: nc, r: bufio.NewReader(nc)}
	hello := wire.Hello{Version: wire.ProtocolVersion, User: cfg.User, Secret: cfg.Secret}
	if err := wire.WriteFrame(nc, wire.THello, wire.EncodeHello(hello)); err != nil {
		nc.Close()
		return nil, err
	}
	nc.SetReadDeadline(time.Now().Add(cfg.DialTimeout))
	f, err := wire.ReadFrame(c.r)
	nc.SetReadDeadline(time.Time{})
	if err != nil {
		nc.Close()
		return nil, err
	}
	switch f.Type {
	case wire.THelloOK:
		ok, err := wire.DecodeHelloOK(f.Payload)
		if err != nil {
			nc.Close()
			return nil, err
		}
		c.SessionID = ok.SessionID
		return c, nil
	case wire.TError:
		nc.Close()
		return nil, wire.DecodeError(f.Payload)
	default:
		nc.Close()
		return nil, &wire.Error{Code: wire.CodeMalformed,
			Msg: fmt.Sprintf("expected HelloOK, got %v", f.Type)}
	}
}

// Close sends Terminate and closes the connection.
func (c *Conn) Close() error {
	if c.conn == nil {
		return nil
	}
	c.conn.SetWriteDeadline(time.Now().Add(time.Second))
	wire.WriteFrame(c.conn, wire.TTerminate, nil)
	err := c.conn.Close()
	c.conn = nil
	return err
}

// roundTrip sends one request frame and reads frames until Done or Error.
func (c *Conn) roundTrip(t wire.Type, payload []byte) (*Result, error) {
	if c.conn == nil {
		return nil, &wire.Error{Code: wire.CodeInternal, Msg: "connection closed"}
	}
	if err := wire.WriteFrame(c.conn, t, payload); err != nil {
		return nil, err
	}
	if d := c.cfg.RequestTimeout; d > 0 {
		c.conn.SetReadDeadline(time.Now().Add(d))
		defer c.conn.SetReadDeadline(time.Time{})
	}
	res := &Result{}
	for {
		f, err := wire.ReadFrame(c.r)
		if err != nil {
			return nil, err
		}
		switch f.Type {
		case wire.TRowDesc:
			rd, err := wire.DecodeRowDesc(f.Payload)
			if err != nil {
				return nil, err
			}
			res.Cols = rd.Cols
		case wire.TRow:
			row, err := wire.DecodeRow(f.Payload)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row.Vals)
		case wire.TDone:
			dn, err := wire.DecodeDone(f.Payload)
			if err != nil {
				return nil, err
			}
			res.Affected = dn.Rows
			res.Analyze = dn.Analyze
			res.TraceID = dn.TraceID
			return res, nil
		case wire.TError:
			return nil, wire.DecodeError(f.Payload)
		default:
			return nil, &wire.Error{Code: wire.CodeMalformed,
				Msg: fmt.Sprintf("unexpected response frame %v", f.Type)}
		}
	}
}

// Query runs one ad-hoc SQL statement (SELECT, DML, or DDL).
func (c *Conn) Query(sql string) (*Result, error) {
	return c.roundTrip(wire.TQuery,
		wire.EncodeQuery(wire.Query{SQL: sql, TraceID: c.takeTrace()}))
}

// QueryAnalyze runs a SELECT under EXPLAIN ANALYZE; Result.Analyze holds
// the annotated plan outline.
func (c *Conn) QueryAnalyze(sql string) (*Result, error) {
	return c.roundTrip(wire.TQuery,
		wire.EncodeQuery(wire.Query{SQL: sql, Analyze: true, TraceID: c.takeTrace()}))
}

// Exec runs DML/DDL and returns the affected row count.
func (c *Conn) Exec(sql string) (int64, error) {
	res, err := c.Query(sql)
	if err != nil {
		return 0, err
	}
	return res.Affected, nil
}

// Set changes one session-scoped setting ("timeout_ms", "workers",
// "batch").
func (c *Conn) Set(name, value string) error {
	_, err := c.roundTrip(wire.TSet, wire.EncodeSet(wire.Set{Name: name, Value: value}))
	return err
}

// PrepareTxn registers a named server-side transaction from PREPARE
// TRANSACTION SQL. The statement text carries the name; fire it with
// ExecuteTxn.
func (c *Conn) PrepareTxn(sql string) error {
	_, err := c.Query(sql)
	return err
}

// ExecuteTxn runs a named transaction — the whole multi-statement unit —
// in one round trip. The Result carries the body's last SELECT (if any);
// Affected counts DML rows plus returned rows.
func (c *Conn) ExecuteTxn(name string, params ...types.Datum) (*Result, error) {
	return c.roundTrip(wire.TExecuteTxn,
		wire.EncodeExecuteTxn(wire.ExecuteTxn{Name: name, Params: params, TraceID: c.takeTrace()}))
}

// Stmt is a server-side prepared statement bound to its Conn.
type Stmt struct {
	c         *Conn
	name      string
	NumParams int
	Cols      []wire.Col
}

// Prepare creates a named server-side prepared statement with $n
// placeholders.
func (c *Conn) Prepare(sql string) (*Stmt, error) {
	c.stmtSeq++
	name := fmt.Sprintf("s%d", c.stmtSeq)
	if err := wire.WriteFrame(c.conn, wire.TPrepare,
		wire.EncodePrepare(wire.Prepare{Name: name, SQL: sql})); err != nil {
		return nil, err
	}
	f, err := wire.ReadFrame(c.r)
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case wire.TPrepareOK:
		ok, err := wire.DecodePrepareOK(f.Payload)
		if err != nil {
			return nil, err
		}
		return &Stmt{c: c, name: name, NumParams: int(ok.NumParams), Cols: ok.Cols}, nil
	case wire.TError:
		return nil, wire.DecodeError(f.Payload)
	default:
		return nil, &wire.Error{Code: wire.CodeMalformed,
			Msg: fmt.Sprintf("expected PrepareOK, got %v", f.Type)}
	}
}

// Query executes a prepared SELECT with the given parameters.
func (s *Stmt) Query(params ...types.Datum) (*Result, error) {
	return s.c.roundTrip(wire.TExecute,
		wire.EncodeExecute(wire.Execute{Name: s.name, Params: params, TraceID: s.c.takeTrace()}))
}

// QueryAnalyze executes under EXPLAIN ANALYZE.
func (s *Stmt) QueryAnalyze(params ...types.Datum) (*Result, error) {
	return s.c.roundTrip(wire.TExecute,
		wire.EncodeExecute(wire.Execute{Name: s.name, Analyze: true, Params: params, TraceID: s.c.takeTrace()}))
}

// Exec executes prepared DML.
func (s *Stmt) Exec(params ...types.Datum) (int64, error) {
	res, err := s.Query(params...)
	if err != nil {
		return 0, err
	}
	return res.Affected, nil
}

// Close drops the statement on the server.
func (s *Stmt) Close() error {
	_, err := s.c.roundTrip(wire.TCloseStmt,
		wire.EncodeCloseStmt(wire.CloseStmt{Name: s.name}))
	return err
}
