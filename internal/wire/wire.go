// Package wire defines the microspec client/server protocol: a small
// length-prefixed binary framing with typed messages for session setup,
// ad-hoc queries, and the PREPARE/EXECUTE cycle that carries the
// prepared-statement work in internal/engine across the network.
//
// Every frame is [1-byte type][4-byte big-endian payload length][payload].
// Payloads are bounds-checked on decode: malformed input of any shape
// yields a typed *Error (never a panic and never an over-allocation), so
// a server can hand the decoder hostile bytes directly off the socket.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"microspec/internal/types"
)

// ProtocolVersion is negotiated in Hello; the server rejects mismatches.
const ProtocolVersion = 1

// MaxFrame bounds a frame payload (16 MiB). ReadFrame rejects larger
// lengths before allocating, so a corrupt length prefix cannot OOM the
// server.
const MaxFrame = 16 << 20

// Type identifies a frame. Client-to-server types have the high bit
// clear; server-to-client types have it set.
type Type byte

const (
	// Client → server.
	THello     Type = 0x01 // Hello: version + credentials
	TQuery     Type = 0x02 // Query: one ad-hoc SQL statement
	TPrepare   Type = 0x03 // Prepare: name + SQL with $n placeholders
	TExecute   Type = 0x04 // Execute: name + bound parameter values
	TCloseStmt Type = 0x05 // CloseStmt: drop a prepared statement
	TSet       Type = 0x06 // Set: session-scoped setting
	TTerminate Type = 0x07 // Terminate: clean goodbye
	// TExecuteTxn fires a named transaction (PREPARE TRANSACTION,
	// registered via a TQuery frame) in one round trip: the whole
	// multi-statement unit runs server-side as a transaction bee.
	TExecuteTxn Type = 0x08

	// Server → client.
	THelloOK   Type = 0x81 // HelloOK: server accepted the session
	TRowDesc   Type = 0x82 // RowDesc: result column names/kinds
	TRow       Type = 0x83 // Row: one data row
	TDone      Type = 0x84 // Done: statement finished + row count
	TError     Type = 0x85 // Error: typed failure, session continues
	TPrepareOK Type = 0x86 // PrepareOK: statement description
)

func (t Type) String() string {
	switch t {
	case THello:
		return "Hello"
	case TQuery:
		return "Query"
	case TPrepare:
		return "Prepare"
	case TExecute:
		return "Execute"
	case TCloseStmt:
		return "CloseStmt"
	case TSet:
		return "Set"
	case TTerminate:
		return "Terminate"
	case TExecuteTxn:
		return "ExecuteTxn"
	case THelloOK:
		return "HelloOK"
	case TRowDesc:
		return "RowDesc"
	case TRow:
		return "Row"
	case TDone:
		return "Done"
	case TError:
		return "Error"
	case TPrepareOK:
		return "PrepareOK"
	default:
		return fmt.Sprintf("Type(0x%02x)", byte(t))
	}
}

// validType reports whether t is a defined frame type.
func validType(t Type) bool {
	switch t {
	case THello, TQuery, TPrepare, TExecute, TCloseStmt, TSet, TTerminate,
		TExecuteTxn, THelloOK, TRowDesc, TRow, TDone, TError, TPrepareOK:
		return true
	}
	return false
}

// ErrCode classifies protocol and server errors so clients can react
// without parsing message text.
type ErrCode string

const (
	CodeAuth        ErrCode = "auth"           // bad credentials or version
	CodeBusy        ErrCode = "server_busy"    // admission control rejected
	CodeShutdown    ErrCode = "shutting_down"  // server is draining
	CodeRecovering  ErrCode = "recovering"     // crash recovery in progress; retry
	CodeTimeout     ErrCode = "timeout"        // statement or idle deadline
	CodeMalformed   ErrCode = "malformed"      // undecodable frame
	CodeTooLarge    ErrCode = "too_large"      // frame over MaxFrame
	CodeUnknownStmt ErrCode = "unknown_stmt"   // EXECUTE of unknown name
	CodeQuery       ErrCode = "query_error"    // parse/plan/execute failure
	CodeConflict    ErrCode = "write_conflict" // first-updater-wins MVCC conflict; retry
	CodeInternal    ErrCode = "internal"       // anything else
)

// Error is the typed protocol error. It is both the decode-failure error
// returned by this package and the payload of a TError frame.
type Error struct {
	Code ErrCode
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("wire: %s: %s", e.Code, e.Msg) }

func errMalformed(format string, args ...any) *Error {
	return &Error{Code: CodeMalformed, Msg: fmt.Sprintf(format, args...)}
}

// Frame is one decoded frame.
type Frame struct {
	Type    Type
	Payload []byte
}

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, t Type, payload []byte) error {
	if len(payload) > MaxFrame {
		return &Error{Code: CodeTooLarge, Msg: fmt.Sprintf("payload %d bytes exceeds %d", len(payload), MaxFrame)}
	}
	hdr := make([]byte, 5, 5+len(payload))
	hdr[0] = byte(t)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	// One Write call per frame keeps frames atomic under concurrent
	// writers sharing a net.Conn.
	_, err := w.Write(append(hdr, payload...))
	return err
}

// ReadFrame reads one frame, enforcing MaxFrame before allocation and
// rejecting unknown frame types. io.EOF is returned verbatim on a clean
// boundary so callers can distinguish hangup from protocol damage.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, err
	}
	t := Type(hdr[0])
	if !validType(t) {
		return Frame{}, errMalformed("unknown frame type 0x%02x", hdr[0])
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return Frame{}, &Error{Code: CodeTooLarge, Msg: fmt.Sprintf("frame length %d exceeds %d", n, MaxFrame)}
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, fmt.Errorf("wire: short frame body: %w", err)
	}
	return Frame{Type: t, Payload: payload}, nil
}

// --- encoding primitives ---

// enc is an append-based payload builder.
type enc struct{ b []byte }

func (e *enc) u8(v byte)      { e.b = append(e.b, v) }
func (e *enc) u16(v uint16)   { e.b = binary.BigEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32)   { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)   { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) str(s string)   { e.u32(uint32(len(s))); e.b = append(e.b, s...) }
func (e *enc) bytes(p []byte) { e.u32(uint32(len(p))); e.b = append(e.b, p...) }

// dec is a bounds-checked payload reader: the first short read latches
// err and every later read returns zero values, so decoders are written
// straight-line and check dec.err once at the end.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = errMalformed("truncated %s at offset %d", what, d.off)
	}
}

func (d *dec) u8() byte {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail("u8")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u16() uint16 {
	if d.err != nil || d.off+2 > len(d.b) {
		d.fail("u16")
		return 0
	}
	v := binary.BigEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail("u32")
		return 0
	}
	v := binary.BigEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail("u64")
		return 0
	}
	v := binary.BigEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) str() string {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+n > len(d.b) {
		d.fail("string")
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

// rem reports how many undecoded bytes remain — the probe optional
// trailing fields use before reading (a field added after protocol
// version 1 is present only when bytes remain).
func (d *dec) rem() int {
	if d.err != nil {
		return 0
	}
	return len(d.b) - d.off
}

// done returns the latched decode error, also rejecting trailing garbage
// (a well-formed prefix followed by junk is still a malformed frame).
func (d *dec) done(msg Type) error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return errMalformed("%s: %d trailing bytes", msg, len(d.b)-d.off)
	}
	return nil
}

// --- datum encoding ---

// Datum tags on the wire. The tag is the value's kind, not the column's
// declared type: NULL is one tag regardless of type.
const (
	tagNull    = 0
	tagInt32   = 1
	tagInt64   = 2
	tagFloat64 = 3
	tagBool    = 4
	tagDate    = 5
	tagVarchar = 6
	tagChar    = 7
)

func (e *enc) datum(v types.Datum) {
	switch v.Kind() {
	case types.KindInvalid:
		e.u8(tagNull)
	case types.KindInt32:
		e.u8(tagInt32)
		e.u32(uint32(v.Int32()))
	case types.KindInt64:
		e.u8(tagInt64)
		e.u64(uint64(v.Int64()))
	case types.KindFloat64:
		e.u8(tagFloat64)
		e.u64(math.Float64bits(v.Float64()))
	case types.KindBool:
		e.u8(tagBool)
		if v.Bool() {
			e.u8(1)
		} else {
			e.u8(0)
		}
	case types.KindDate:
		e.u8(tagDate)
		e.u32(uint32(v.DateDays()))
	case types.KindChar:
		e.u8(tagChar)
		e.bytes(v.Bytes())
	default: // Varchar and anything stringly
		e.u8(tagVarchar)
		e.bytes(v.Bytes())
	}
}

func (d *dec) datum() types.Datum {
	switch tag := d.u8(); tag {
	case tagNull:
		return types.Null
	case tagInt32:
		return types.NewInt32(int32(d.u32()))
	case tagInt64:
		return types.NewInt64(int64(d.u64()))
	case tagFloat64:
		return types.NewFloat64(math.Float64frombits(d.u64()))
	case tagBool:
		return types.NewBool(d.u8() != 0)
	case tagDate:
		return types.NewDate(int32(d.u32()))
	case tagVarchar:
		return types.NewString(d.str())
	case tagChar:
		return types.NewChar(d.str())
	default:
		if d.err == nil {
			d.err = errMalformed("unknown datum tag 0x%02x at offset %d", tag, d.off-1)
		}
		return types.Null
	}
}

// KindTag maps a schema type kind to its wire tag (RowDesc column kinds).
func KindTag(k types.Kind) byte {
	switch k {
	case types.KindInt32:
		return tagInt32
	case types.KindInt64:
		return tagInt64
	case types.KindFloat64:
		return tagFloat64
	case types.KindBool:
		return tagBool
	case types.KindDate:
		return tagDate
	case types.KindChar:
		return tagChar
	default:
		return tagVarchar
	}
}
