package wire

import (
	"fmt"

	"microspec/internal/types"
)

// This file defines the typed messages carried in frame payloads, with
// symmetric Encode*/Decode* pairs. Decoders reject truncation, trailing
// garbage, and implausible element counts with *Error (CodeMalformed) —
// they are safe on arbitrary bytes.

// maxElems bounds decoded element counts (columns, parameters) before
// allocation; real statements are far smaller, and a corrupt count should
// not drive a huge make().
const maxElems = 1 << 16

// Hello opens a session: protocol version plus credentials. The secret
// is a shared token (the server is a benchmark harness, not a vault);
// the point is exercising the auth round-trip and its error path.
type Hello struct {
	Version uint32
	User    string
	Secret  string
}

func EncodeHello(m Hello) []byte {
	var e enc
	e.u32(m.Version)
	e.str(m.User)
	e.str(m.Secret)
	return e.b
}

func DecodeHello(p []byte) (Hello, error) {
	d := dec{b: p}
	m := Hello{Version: d.u32(), User: d.str(), Secret: d.str()}
	return m, d.done(THello)
}

// HelloOK acknowledges a session.
type HelloOK struct {
	ServerVersion string
	SessionID     uint64
}

func EncodeHelloOK(m HelloOK) []byte {
	var e enc
	e.str(m.ServerVersion)
	e.u64(m.SessionID)
	return e.b
}

func DecodeHelloOK(p []byte) (HelloOK, error) {
	d := dec{b: p}
	m := HelloOK{ServerVersion: d.str(), SessionID: d.u64()}
	return m, d.done(THelloOK)
}

// Query runs one ad-hoc SQL statement (SELECT, DML, or DDL). Analyze
// asks for the EXPLAIN ANALYZE outline in Done.Analyze. TraceID, when
// nonzero, asks the server to record a request trace under that ID so
// the client can correlate its observed latency with the server-side
// breakdown; it is an optional trailing field — encoded only when set,
// absent in frames from older clients — so both encodings stay valid.
type Query struct {
	SQL     string
	Analyze bool
	TraceID uint64
}

func EncodeQuery(m Query) []byte {
	var e enc
	e.u8(boolByte(m.Analyze))
	e.str(m.SQL)
	if m.TraceID != 0 {
		e.u64(m.TraceID)
	}
	return e.b
}

func DecodeQuery(p []byte) (Query, error) {
	d := dec{b: p}
	m := Query{Analyze: d.u8() != 0, SQL: d.str()}
	if d.rem() > 0 {
		m.TraceID = d.u64()
	}
	return m, d.done(TQuery)
}

// Prepare creates a named prepared statement with $n placeholders.
type Prepare struct {
	Name string
	SQL  string
}

func EncodePrepare(m Prepare) []byte {
	var e enc
	e.str(m.Name)
	e.str(m.SQL)
	return e.b
}

func DecodePrepare(p []byte) (Prepare, error) {
	d := dec{b: p}
	m := Prepare{Name: d.str(), SQL: d.str()}
	return m, d.done(TPrepare)
}

// PrepareOK describes a prepared statement: its parameter count and, for
// SELECTs, its result columns.
type PrepareOK struct {
	NumParams uint16
	Cols      []Col
}

func EncodePrepareOK(m PrepareOK) []byte {
	var e enc
	e.u16(m.NumParams)
	encodeCols(&e, m.Cols)
	return e.b
}

func DecodePrepareOK(p []byte) (PrepareOK, error) {
	d := dec{b: p}
	m := PrepareOK{NumParams: d.u16(), Cols: decodeCols(&d)}
	return m, d.done(TPrepareOK)
}

// Execute binds parameters and runs a prepared statement (BIND and
// EXECUTE fused into one round trip). TraceID is the same optional
// trailing trace-correlation field as Query.TraceID.
type Execute struct {
	Name    string
	Analyze bool
	Params  []types.Datum
	TraceID uint64
}

func EncodeExecute(m Execute) []byte {
	var e enc
	e.str(m.Name)
	e.u8(boolByte(m.Analyze))
	e.u16(uint16(len(m.Params)))
	for _, v := range m.Params {
		e.datum(v)
	}
	if m.TraceID != 0 {
		e.u64(m.TraceID)
	}
	return e.b
}

func DecodeExecute(p []byte) (Execute, error) {
	d := dec{b: p}
	m := Execute{Name: d.str(), Analyze: d.u8() != 0}
	n := int(d.u16())
	if d.err == nil && n > 0 {
		m.Params = make([]types.Datum, 0, min(n, maxElems))
		for i := 0; i < n && d.err == nil; i++ {
			m.Params = append(m.Params, d.datum())
		}
	}
	if d.rem() > 0 {
		m.TraceID = d.u64()
	}
	return m, d.done(TExecute)
}

// ExecuteTxn binds parameters and runs a named transaction (a PREPARE
// TRANSACTION unit) in one round trip: BEGIN, every body statement, and
// COMMIT are a single fused server-side execution. TraceID is the same
// optional trailing trace-correlation field as Query.TraceID.
type ExecuteTxn struct {
	Name    string
	Params  []types.Datum
	TraceID uint64
}

func EncodeExecuteTxn(m ExecuteTxn) []byte {
	var e enc
	e.str(m.Name)
	e.u16(uint16(len(m.Params)))
	for _, v := range m.Params {
		e.datum(v)
	}
	if m.TraceID != 0 {
		e.u64(m.TraceID)
	}
	return e.b
}

func DecodeExecuteTxn(p []byte) (ExecuteTxn, error) {
	d := dec{b: p}
	m := ExecuteTxn{Name: d.str()}
	n := int(d.u16())
	if d.err == nil && n > 0 {
		m.Params = make([]types.Datum, 0, min(n, maxElems))
		for i := 0; i < n && d.err == nil; i++ {
			m.Params = append(m.Params, d.datum())
		}
	}
	if d.rem() > 0 {
		m.TraceID = d.u64()
	}
	return m, d.done(TExecuteTxn)
}

// CloseStmt drops a named prepared statement.
type CloseStmt struct {
	Name string
}

func EncodeCloseStmt(m CloseStmt) []byte {
	var e enc
	e.str(m.Name)
	return e.b
}

func DecodeCloseStmt(p []byte) (CloseStmt, error) {
	d := dec{b: p}
	m := CloseStmt{Name: d.str()}
	return m, d.done(TCloseStmt)
}

// Set changes one session-scoped setting (timeout, workers, batch).
type Set struct {
	Name  string
	Value string
}

func EncodeSet(m Set) []byte {
	var e enc
	e.str(m.Name)
	e.str(m.Value)
	return e.b
}

func DecodeSet(p []byte) (Set, error) {
	d := dec{b: p}
	m := Set{Name: d.str(), Value: d.str()}
	return m, d.done(TSet)
}

// Col is one result column: name plus wire datum tag.
type Col struct {
	Name string
	Tag  byte
}

func encodeCols(e *enc, cols []Col) {
	e.u16(uint16(len(cols)))
	for _, c := range cols {
		e.str(c.Name)
		e.u8(c.Tag)
	}
}

func decodeCols(d *dec) []Col {
	n := int(d.u16())
	if d.err != nil || n == 0 {
		return nil
	}
	cols := make([]Col, 0, min(n, maxElems))
	for i := 0; i < n && d.err == nil; i++ {
		cols = append(cols, Col{Name: d.str(), Tag: d.u8()})
	}
	return cols
}

// RowDesc announces a result's columns before its Row frames.
type RowDesc struct {
	Cols []Col
}

func EncodeRowDesc(m RowDesc) []byte {
	var e enc
	encodeCols(&e, m.Cols)
	return e.b
}

func DecodeRowDesc(p []byte) (RowDesc, error) {
	d := dec{b: p}
	m := RowDesc{Cols: decodeCols(&d)}
	return m, d.done(TRowDesc)
}

// Row is one data row.
type Row struct {
	Vals []types.Datum
}

func EncodeRow(m Row) []byte {
	var e enc
	e.u16(uint16(len(m.Vals)))
	for _, v := range m.Vals {
		e.datum(v)
	}
	return e.b
}

func DecodeRow(p []byte) (Row, error) {
	d := dec{b: p}
	n := int(d.u16())
	var m Row
	if d.err == nil && n > 0 {
		m.Vals = make([]types.Datum, 0, min(n, maxElems))
		for i := 0; i < n && d.err == nil; i++ {
			m.Vals = append(m.Vals, d.datum())
		}
	}
	return m, d.done(TRow)
}

// Done ends a statement's response: the row count (affected rows for
// DML, returned rows for SELECT) and the EXPLAIN ANALYZE outline when it
// was requested. TraceID echoes the server-side trace ID of the request
// (optional trailing field, present only when the request was traced) so
// the client logs the same ID the server's /traces endpoint shows.
type Done struct {
	Rows    int64
	Analyze string
	TraceID uint64
}

func EncodeDone(m Done) []byte {
	var e enc
	e.u64(uint64(m.Rows))
	e.str(m.Analyze)
	if m.TraceID != 0 {
		e.u64(m.TraceID)
	}
	return e.b
}

func DecodeDone(p []byte) (Done, error) {
	d := dec{b: p}
	m := Done{Rows: int64(d.u64()), Analyze: d.str()}
	if d.rem() > 0 {
		m.TraceID = d.u64()
	}
	return m, d.done(TDone)
}

// EncodeError renders a typed error frame payload.
func EncodeError(code ErrCode, msg string) []byte {
	var e enc
	e.str(string(code))
	e.str(msg)
	return e.b
}

// DecodeError parses a TError payload back into *Error. A payload too
// damaged to decode still comes back as an *Error (CodeMalformed), so
// the caller always has a typed error in hand.
func DecodeError(p []byte) *Error {
	d := dec{b: p}
	code := d.str()
	msg := d.str()
	if err := d.done(TError); err != nil {
		return &Error{Code: CodeMalformed, Msg: fmt.Sprintf("undecodable error frame: %v", err)}
	}
	return &Error{Code: ErrCode(code), Msg: msg}
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
