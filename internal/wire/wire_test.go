package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"microspec/internal/types"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, TQuery, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for _, p := range payloads {
		f, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if f.Type != TQuery || !bytes.Equal(f.Payload, p) {
			t.Fatalf("frame mismatch: %v", f)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

func TestFrameLimits(t *testing.T) {
	// Oversized write is rejected with a typed error.
	big := make([]byte, MaxFrame+1)
	err := WriteFrame(io.Discard, TRow, big)
	var we *Error
	if !errors.As(err, &we) || we.Code != CodeTooLarge {
		t.Fatalf("oversized write: %v", err)
	}
	// Oversized length prefix is rejected before allocation.
	hdr := []byte{byte(TRow), 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(hdr)); !errors.As(err, &we) || we.Code != CodeTooLarge {
		t.Fatalf("oversized read: %v", err)
	}
	// Unknown frame type.
	if _, err := ReadFrame(bytes.NewReader([]byte{0x7F, 0, 0, 0, 0})); !errors.As(err, &we) || we.Code != CodeMalformed {
		t.Fatalf("unknown type: %v", err)
	}
}

// datumEq compares datums for test purposes, treating NULL as equal to
// itself (Datum.Equal follows SQL semantics where it is not).
func datumEq(a, b types.Datum) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	return a.Kind() == b.Kind() && a.Equal(b)
}

func sampleDatums() []types.Datum {
	return []types.Datum{
		types.Null,
		types.NewInt32(-7),
		types.NewInt64(1 << 40),
		types.NewFloat64(3.25),
		types.NewBool(true),
		types.NewBool(false),
		types.NewDate(9862),
		types.NewString("hello world"),
		types.NewString(""),
		types.NewChar("R1  "),
	}
}

// Every message type round-trips exactly.
func TestMessageRoundTrips(t *testing.T) {
	hello := Hello{Version: ProtocolVersion, User: "bench", Secret: "s3cret"}
	if got, err := DecodeHello(EncodeHello(hello)); err != nil || got != hello {
		t.Fatalf("Hello: %v %v", got, err)
	}
	hok := HelloOK{ServerVersion: "microspec/0.5", SessionID: 42}
	if got, err := DecodeHelloOK(EncodeHelloOK(hok)); err != nil || got != hok {
		t.Fatalf("HelloOK: %v %v", got, err)
	}
	q := Query{SQL: "select 1", Analyze: true}
	if got, err := DecodeQuery(EncodeQuery(q)); err != nil || got != q {
		t.Fatalf("Query: %v %v", got, err)
	}
	pr := Prepare{Name: "q1", SQL: "select * from t where a = $1"}
	if got, err := DecodePrepare(EncodePrepare(pr)); err != nil || got != pr {
		t.Fatalf("Prepare: %v %v", got, err)
	}
	pok := PrepareOK{NumParams: 2, Cols: []Col{{Name: "a", Tag: tagInt64}, {Name: "b", Tag: tagVarchar}}}
	if got, err := DecodePrepareOK(EncodePrepareOK(pok)); err != nil || !reflect.DeepEqual(got, pok) {
		t.Fatalf("PrepareOK: %v %v", got, err)
	}
	ex := Execute{Name: "q1", Analyze: true, Params: sampleDatums()}
	got, err := DecodeExecute(EncodeExecute(ex))
	if err != nil || got.Name != ex.Name || got.Analyze != ex.Analyze || len(got.Params) != len(ex.Params) {
		t.Fatalf("Execute: %+v %v", got, err)
	}
	for i := range ex.Params {
		if !datumEq(got.Params[i], ex.Params[i]) {
			t.Fatalf("Execute param %d: %v != %v", i, got.Params[i], ex.Params[i])
		}
	}
	cs := CloseStmt{Name: "q1"}
	if got, err := DecodeCloseStmt(EncodeCloseStmt(cs)); err != nil || got != cs {
		t.Fatalf("CloseStmt: %v %v", got, err)
	}
	set := Set{Name: "timeout_ms", Value: "250"}
	if got, err := DecodeSet(EncodeSet(set)); err != nil || got != set {
		t.Fatalf("Set: %v %v", got, err)
	}
	rd := RowDesc{Cols: []Col{{Name: "n", Tag: tagInt64}}}
	if got, err := DecodeRowDesc(EncodeRowDesc(rd)); err != nil || !reflect.DeepEqual(got, rd) {
		t.Fatalf("RowDesc: %v %v", got, err)
	}
	row := Row{Vals: sampleDatums()}
	rgot, err := DecodeRow(EncodeRow(row))
	if err != nil || len(rgot.Vals) != len(row.Vals) {
		t.Fatalf("Row: %+v %v", rgot, err)
	}
	for i := range row.Vals {
		if !datumEq(rgot.Vals[i], row.Vals[i]) {
			t.Fatalf("Row val %d: %v != %v", i, rgot.Vals[i], row.Vals[i])
		}
	}
	dn := Done{Rows: -1, Analyze: "SeqScan t (actual ...)"}
	if got, err := DecodeDone(EncodeDone(dn)); err != nil || got != dn {
		t.Fatalf("Done: %v %v", got, err)
	}
}

// TestTraceIDOptionalField covers the optional trailing trace-ID field on
// Query, Execute, and Done: round-trips when set, absent bytes when zero
// (old encodings stay byte-identical), zero on decode of old frames, and
// malformed when the trailing field is truncated.
func TestTraceIDOptionalField(t *testing.T) {
	q := Query{SQL: "select 1", Analyze: true, TraceID: 0xdeadbeefcafe}
	if got, err := DecodeQuery(EncodeQuery(q)); err != nil || got != q {
		t.Fatalf("Query+trace: %+v %v", got, err)
	}
	ex := Execute{Name: "q1", TraceID: 7}
	if got, err := DecodeExecute(EncodeExecute(ex)); err != nil || got.TraceID != 7 {
		t.Fatalf("Execute+trace: %+v %v", got, err)
	}
	dn := Done{Rows: 3, Analyze: "x", TraceID: 99}
	if got, err := DecodeDone(EncodeDone(dn)); err != nil || got != dn {
		t.Fatalf("Done+trace: %+v %v", got, err)
	}

	// TraceID == 0 encodes to exactly the version-1 bytes: the field is
	// genuinely optional and old peers keep interoperating.
	plain := Query{SQL: "select 1"}
	withZero := Query{SQL: "select 1", TraceID: 0}
	if !bytes.Equal(EncodeQuery(plain), EncodeQuery(withZero)) {
		t.Fatal("TraceID=0 changed the Query encoding")
	}
	if len(EncodeQuery(q)) != len(EncodeQuery(plain))+8 {
		t.Fatal("TraceID field is not exactly 8 trailing bytes")
	}
	// An old frame (no trailing field) decodes with TraceID 0.
	if got, err := DecodeQuery(EncodeQuery(plain)); err != nil || got.TraceID != 0 {
		t.Fatalf("old Query frame: %+v %v", got, err)
	}
	// A truncated trailing field is malformed, not silently ignored.
	enc := EncodeQuery(q)
	for cut := len(enc) - 7; cut < len(enc); cut++ {
		var we *Error
		if _, err := DecodeQuery(enc[:cut]); err == nil || !errors.As(err, &we) {
			t.Fatalf("truncated trace field at %d: err = %v", cut, err)
		}
	}
}

// Golden error frame: the byte-exact wire form of a typed error, pinned
// so client and server implementations cannot drift apart silently.
func TestGoldenErrorFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TError, EncodeError(CodeBusy, "too many connections")); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	golden := []byte{
		0x85,                   // TError
		0x00, 0x00, 0x00, 0x27, // payload length 39
		0x00, 0x00, 0x00, 0x0b, // len("server_busy")
		's', 'e', 'r', 'v', 'e', 'r', '_', 'b', 'u', 's', 'y',
		0x00, 0x00, 0x00, 0x14, // len("too many connections")
		't', 'o', 'o', ' ', 'm', 'a', 'n', 'y', ' ',
		'c', 'o', 'n', 'n', 'e', 'c', 't', 'i', 'o', 'n', 's',
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Fatalf("golden mismatch:\n got %#v\nwant %#v", buf.Bytes(), golden)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	we := DecodeError(f.Payload)
	if we.Code != CodeBusy || we.Msg != "too many connections" {
		t.Fatalf("decoded %+v", we)
	}
}

// decodeAny dispatches a payload to its message decoder, as the server
// and client loops do.
func decodeAny(t Type, p []byte) error {
	switch t {
	case THello:
		_, err := DecodeHello(p)
		return err
	case TQuery:
		_, err := DecodeQuery(p)
		return err
	case TPrepare:
		_, err := DecodePrepare(p)
		return err
	case TExecute:
		_, err := DecodeExecute(p)
		return err
	case TCloseStmt:
		_, err := DecodeCloseStmt(p)
		return err
	case TSet:
		_, err := DecodeSet(p)
		return err
	case THelloOK:
		_, err := DecodeHelloOK(p)
		return err
	case TRowDesc:
		_, err := DecodeRowDesc(p)
		return err
	case TRow:
		_, err := DecodeRow(p)
		return err
	case TDone:
		_, err := DecodeDone(p)
		return err
	case TPrepareOK:
		_, err := DecodePrepareOK(p)
		return err
	case TError:
		DecodeError(p)
		return nil
	}
	return nil
}

var allTypes = []Type{THello, TQuery, TPrepare, TExecute, TCloseStmt, TSet, TTerminate,
	THelloOK, TRowDesc, TRow, TDone, TError, TPrepareOK}

// Property test: truncating or corrupting any valid encoding yields a
// typed *Error from the decoder — never a panic, never silence on
// trailing garbage.
func TestMalformedPayloads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	encodings := map[Type][]byte{
		THello:     EncodeHello(Hello{Version: 1, User: "u", Secret: "s"}),
		TQuery:     EncodeQuery(Query{SQL: "select 1"}),
		TPrepare:   EncodePrepare(Prepare{Name: "p", SQL: "select $1"}),
		TExecute:   EncodeExecute(Execute{Name: "p", Params: sampleDatums()}),
		TCloseStmt: EncodeCloseStmt(CloseStmt{Name: "p"}),
		TSet:       EncodeSet(Set{Name: "k", Value: "v"}),
		THelloOK:   EncodeHelloOK(HelloOK{ServerVersion: "v", SessionID: 9}),
		TRowDesc:   EncodeRowDesc(RowDesc{Cols: []Col{{Name: "c", Tag: tagDate}}}),
		TRow:       EncodeRow(Row{Vals: sampleDatums()}),
		TDone:      EncodeDone(Done{Rows: 3, Analyze: "x"}),
		TPrepareOK: EncodePrepareOK(PrepareOK{NumParams: 1, Cols: []Col{{Name: "c", Tag: tagInt32}}}),
	}
	for typ, good := range encodings {
		if err := decodeAny(typ, good); err != nil {
			t.Fatalf("%v: valid encoding rejected: %v", typ, err)
		}
		// Every strict truncation must fail with a typed error.
		for cut := 0; cut < len(good); cut++ {
			err := decodeAny(typ, good[:cut])
			var we *Error
			if err == nil || !errors.As(err, &we) {
				t.Fatalf("%v truncated at %d: err = %v", typ, cut, err)
			}
		}
		// Trailing garbage must fail.
		err := decodeAny(typ, append(append([]byte{}, good...), 0xFE))
		var we *Error
		if err == nil || !errors.As(err, &we) {
			t.Fatalf("%v with trailing byte: err = %v", typ, err)
		}
		// Random corruption must never panic (errors are fine).
		for i := 0; i < 200; i++ {
			mut := append([]byte{}, good...)
			for j := 0; j < 1+rng.Intn(4); j++ {
				mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
			}
			_ = decodeAny(typ, mut)
		}
	}
}

// FuzzDecode drives every decoder over arbitrary bytes; the property is
// simply "no panic, and failures are typed".
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeExecute(Execute{Name: "p", Params: sampleDatums()}))
	f.Add(EncodeRow(Row{Vals: sampleDatums()}))
	f.Add(EncodeHello(Hello{Version: 1, User: "u", Secret: "s"}))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, typ := range allTypes {
			if err := decodeAny(typ, data); err != nil {
				var we *Error
				if !errors.As(err, &we) {
					t.Fatalf("%v: untyped decode error %T: %v", typ, err, err)
				}
			}
		}
	})
}

// FuzzReadFrame feeds arbitrary byte streams to the frame reader.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	WriteFrame(&buf, TQuery, EncodeQuery(Query{SQL: "select 1"}))
	f.Add(buf.Bytes())
	f.Add([]byte{0x85, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			fr, err := ReadFrame(r)
			if err != nil {
				break
			}
			_ = decodeAny(fr.Type, fr.Payload)
		}
	})
}
