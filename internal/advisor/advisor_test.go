package advisor

import (
	"testing"

	"microspec/internal/core"
	"microspec/internal/metrics"
	"microspec/internal/types"
)

func testAdvisor(cfg Config) (*Advisor, *core.Module, *metrics.Registry) {
	mod := core.NewModule(core.AllRoutines)
	reg := metrics.NewRegistry()
	a := New(cfg, Deps{
		Mod:        mod,
		Promotions: reg.Counter("advisor.promotions"),
		Demotions:  reg.Counter("advisor.demotions"),
		Skipped:    reg.Counter("advisor.skipped"),
		Cycles:     reg.Counter("advisor.cycles"),
	})
	a.SetEnabled(true)
	return a, mod, reg
}

func counter(reg *metrics.Registry, name string) int64 {
	return reg.Snapshot().Counters[name]
}

// TestPromotionAndPin drives the whole hot path by hand: demand
// accumulates, the candidate is promoted once it crosses HotThreshold,
// and a persistently hot compiled bee is pinned after PinStreak cycles.
func TestPromotionAndPin(t *testing.T) {
	a, mod, reg := testAdvisor(Config{HotThreshold: 3, PinStreak: 2})

	obs := []BeeObs{{Kind: "query/EVP", Name: "(x < 10)"}}
	a.ObservePlan([]string{"t"}, nil, obs, false)
	a.RunCycle() // heat 1 → no promotion
	if got := counter(reg, "advisor.promotions"); got != 0 {
		t.Fatalf("promotions after cold cycle = %d, want 0", got)
	}

	for i := 0; i < 4; i++ {
		a.ObservePlan([]string{"t"}, nil, obs, false)
	}
	a.RunCycle()
	if got := counter(reg, "advisor.promotions"); got != 1 {
		t.Fatalf("promotions = %d, want 1", got)
	}
	if st, _ := mod.TierOf("query/EVP", "(x < 10)"); st != core.TierCompiled {
		t.Fatalf("state = %v, want compiled", st)
	}

	// Keep it hot as a compiled bee for PinStreak cycles → pinned.
	for c := 0; c < 2; c++ {
		for i := 0; i < 6; i++ {
			a.ObservePlan([]string{"t"}, obs, nil, false)
		}
		a.RunCycle()
	}
	if st, _ := mod.TierOf("query/EVP", "(x < 10)"); st != core.TierPinned {
		t.Fatalf("state = %v, want pinned", st)
	}
	// Pinned bees never cold-demote: idle cycles leave them alone.
	for c := 0; c < 6; c++ {
		a.RunCycle()
	}
	if got := counter(reg, "advisor.demotions"); got != 0 {
		t.Fatalf("pinned bee demoted by cold decay: %d demotions", got)
	}
}

// TestColdDemotionIsExactlyOnce lets a compiled (unpinned) bee go cold
// and checks the demotion fires once — further idle cycles must not
// demote it again (no flapping, no double-counted metrics).
func TestColdDemotionIsExactlyOnce(t *testing.T) {
	a, mod, reg := testAdvisor(Config{HotThreshold: 3, ColdStreak: 2, PinStreak: 99})

	obs := []BeeObs{{Kind: "query/EVP", Name: "(x < 10)"}}
	for i := 0; i < 5; i++ {
		a.ObservePlan([]string{"t"}, nil, obs, false)
	}
	a.RunCycle()
	if st, _ := mod.TierOf("query/EVP", "(x < 10)"); st != core.TierCompiled {
		t.Fatalf("state = %v, want compiled", st)
	}

	for c := 0; c < 8; c++ {
		a.RunCycle() // no demand: heat decays, cold streak builds
	}
	if got := counter(reg, "advisor.demotions"); got != 1 {
		t.Fatalf("demotions after idle cycles = %d, want exactly 1", got)
	}
	demotes := 0
	for _, d := range a.Decisions() {
		if d.Action == "demote-bee" {
			demotes++
		}
	}
	if demotes != 1 {
		t.Fatalf("demote-bee decisions = %d, want exactly 1", demotes)
	}
}

// TestSlowQueriesBoostHeat: one slow execution must outweigh several
// fast ones, so the hot-set tracks where specialization pays most.
func TestSlowQueriesBoostHeat(t *testing.T) {
	a, mod, _ := testAdvisor(Config{HotThreshold: 4, SlowBoost: 4})
	a.ObservePlan([]string{"t"}, nil, []BeeObs{{Kind: "query/EVP", Name: "(slow)"}}, true)
	a.ObservePlan([]string{"t"}, nil, []BeeObs{{Kind: "query/EVP", Name: "(fast)"}}, false)
	a.RunCycle()
	if st, _ := mod.TierOf("query/EVP", "(slow)"); st != core.TierCompiled {
		t.Fatalf("slow-path bee state = %v, want compiled after one boosted hit", st)
	}
	if st, _ := mod.TierOf("query/EVP", "(fast)"); st != core.TierCandidate {
		t.Fatalf("fast-path bee state = %v, want still candidate", st)
	}
}

// TestPromotionBudget caps per-cycle promotions and counts the skips.
func TestPromotionBudget(t *testing.T) {
	a, _, reg := testAdvisor(Config{HotThreshold: 1, Budget: 2})
	names := []string{"(a)", "(b)", "(c)", "(d)", "(e)"}
	for _, n := range names {
		for i := 0; i < 3; i++ {
			a.ObservePlan([]string{"t"}, nil, []BeeObs{{Kind: "query/EVP", Name: n}}, false)
		}
	}
	a.RunCycle()
	if got := counter(reg, "advisor.promotions"); got != 2 {
		t.Fatalf("promotions = %d, want budget of 2", got)
	}
	if got := counter(reg, "advisor.skipped"); got != 3 {
		t.Fatalf("skipped = %d, want 3", got)
	}
}

// TestNDVSketchSaturation: the sketch stays exact up to its bound, then
// saturates (reporting bound+1) instead of growing without limit.
func TestNDVSketchSaturation(t *testing.T) {
	var sk ndvSketch
	for i := 0; i < 10; i++ {
		sk.add(uint64(i % 3))
	}
	if got := sk.ndv(); got != 3 {
		t.Fatalf("ndv = %d, want 3", got)
	}
	if sk.rows != 10 {
		t.Fatalf("rows = %d, want 10", sk.rows)
	}
	for i := 0; i < 2*sketchBound; i++ {
		sk.add(uint64(1000 + i))
	}
	if !sk.saturated {
		t.Fatal("sketch not saturated past bound")
	}
	if got := sk.ndv(); got != sketchBound+1 {
		t.Fatalf("saturated ndv = %d, want %d", got, sketchBound+1)
	}
	if sk.seen != nil {
		t.Fatal("saturated sketch still holds its hash set")
	}
}

// TestObserveRowGrowsSketches: rows feed per-ordinal sketches, and a
// NoteDDL on the table resets them at the next cycle.
func TestObserveRowGrowsSketches(t *testing.T) {
	a, _, _ := testAdvisor(Config{})
	for i := 0; i < 5; i++ {
		a.ObserveRow("t", []types.Datum{types.NewInt64(int64(i)), types.NewString("x")})
	}
	if ndv, rows := a.sketchStats("t", 1); ndv != 1 || rows != 5 {
		t.Fatalf("sketchStats(t,1) = %d,%d; want 1,5", ndv, rows)
	}
	a.NoteDDL("t")
	a.RunCycle()
	if ndv, rows := a.sketchStats("t", 1); ndv != 0 || rows != 0 {
		t.Fatalf("sketches survived DDL reset: %d,%d", ndv, rows)
	}
}
