// Package advisor implements the adaptive specialization advisor: a
// background subsystem that watches live query traffic and continuously
// re-specializes the engine without a restart. It maintains a decaying
// hot-set over the bees plans actually execute (fed from the engine's
// runSelect/EXECUTE paths, with slow queries over-weighted), promotes
// hot predicates to fused GCL+EVP bees and low-NDV attributes to
// tuple-bee dictionaries, and demotes bees whose guard assumptions
// break — quarantine hits, DDL on a watched table, value-distribution
// drift seen by per-attribute sketches, or measured benefit going
// negative. Tier state (candidate → compiled → pinned → demoted, with
// hysteresis) lives in core.Module's tier table; this package is the
// policy loop that drives it. See docs/ADAPTIVE.md.
package advisor

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"microspec/internal/core"
	"microspec/internal/metrics"
	"microspec/internal/types"
)

// Config tunes the decision loop. The zero value of every field selects
// the default noted on it; Enabled gates the whole subsystem.
type Config struct {
	// Enabled starts the advisor with engine.Open. The shell/admin
	// endpoint can toggle it at runtime either way.
	Enabled bool
	// Interval is the background cycle period (default 1s). Zero or
	// negative with Enabled set selects the default; tests that call
	// RunCycle directly can set Enabled=false and drive cycles by hand.
	Interval time.Duration
	// Budget caps promotions (bee and attribute) per cycle (default 4).
	Budget int
	// HotThreshold is the decayed demand at which a candidate is
	// promoted (default 3 — three plan compiles/executions in the
	// recent past).
	HotThreshold float64
	// PinStreak is how many consecutive hot cycles a compiled bee needs
	// to be pinned (default 3).
	PinStreak int
	// ColdStreak is how many consecutive cycles below HotThreshold/2 a
	// compiled (not pinned) bee survives before cold demotion
	// (default 3).
	ColdStreak int
	// DemoteHold is the hysteresis: cycles a guard-break demotion holds
	// before the bee may become a candidate again (default 8).
	DemoteHold int
	// DecayFactor multiplies all heat each cycle (default 0.5).
	DecayFactor float64
	// NDVMax is the observed-NDV ceiling for promoting an attribute to
	// tuple-bee dictionary encoding (default 16).
	NDVMax int
	// DriftNDV is the observed-NDV level at which a specialized
	// attribute is considered drifting and despecialized, safely below
	// the hard core.MaxDictValues limit (default 128).
	DriftNDV int
	// MinRows is the minimum observed row count before the advisor
	// trusts a sketch either way (default 256).
	MinRows int64
	// SlowBoost is the extra heat weight for bees seen in slow queries
	// (default 4).
	SlowBoost float64
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Budget <= 0 {
		c.Budget = 4
	}
	if c.HotThreshold <= 0 {
		c.HotThreshold = 3
	}
	if c.PinStreak <= 0 {
		c.PinStreak = 3
	}
	if c.ColdStreak <= 0 {
		c.ColdStreak = 3
	}
	if c.DemoteHold <= 0 {
		c.DemoteHold = 8
	}
	if c.DecayFactor <= 0 || c.DecayFactor >= 1 {
		c.DecayFactor = 0.5
	}
	if c.NDVMax <= 0 {
		c.NDVMax = 16
	}
	if c.DriftNDV <= 0 {
		c.DriftNDV = core.MaxDictValues / 2
	}
	if c.MinRows <= 0 {
		c.MinRows = 256
	}
	if c.SlowBoost <= 0 {
		c.SlowBoost = 4
	}
	return c
}

// AttrMeta describes one relation attribute for tiering decisions; the
// engine supplies the current catalog view each cycle via Deps.Attrs.
type AttrMeta struct {
	Table   string
	Ord     int
	Name    string
	NotNull bool
	LowCard bool
}

// Deps are the engine capabilities the advisor acts through. The
// advisor deliberately does not import the engine (the engine imports
// it); everything it needs arrives as data or closures.
type Deps struct {
	// Mod is the bee module whose tier table the advisor drives.
	Mod *core.Module
	// Invalidate discards cached plans (bumps the engine's DDL
	// generation) so promotions and demotions reach prepared
	// statements. Called at most once per cycle.
	Invalidate func()
	// Respecialize flips one attribute's dictionary encoding on or off,
	// rewriting the relation's storage online.
	Respecialize func(table, attr string, on bool) error
	// Attrs returns the current catalog view of every user relation.
	Attrs func() []AttrMeta
	// Promotions/Demotions/Skipped/Cycles are the advisor.* metrics
	// counters (pre-resolved by the engine's observer).
	Promotions, Demotions, Skipped, Cycles *metrics.Counter
}

// Decision is one promote/demote action with its reason, kept in a ring
// for the /advisor endpoint and the \advisor shell command.
type Decision struct {
	Cycle  int64     `json:"cycle"`
	Action string    `json:"action"` // promote-bee, pin-bee, demote-bee, spec-attr, despec-attr
	Kind   string    `json:"kind,omitempty"`
	Name   string    `json:"name"`
	Reason string    `json:"reason"`
	When   time.Time `json:"when"`
}

const decisionRing = 64

type beeID struct{ kind, name string }

// Advisor is the decision loop. All state transitions happen inside
// RunCycle, which the background loop (Start) or tests call; the
// Observe* feeds are cheap and safe from query/DML paths.
type Advisor struct {
	cfg  Config
	deps Deps

	enabled atomic.Bool
	cycles  atomic.Int64

	skMu     sync.Mutex
	sketches map[string][]*ndvSketch // table → per-ordinal sketches

	mu         sync.Mutex
	hotStreak  map[beeID]int
	coldStreak map[beeID]int
	pendingDDL map[string]struct{}
	attrHold   map[string]int // "table.attr" → cycles before eligible again
	decisions  []Decision
	nextSlot   int

	loopMu sync.Mutex
	stop   chan struct{}
	done   chan struct{}
}

// New builds an advisor; it does not start the background loop.
func New(cfg Config, deps Deps) *Advisor {
	a := &Advisor{
		cfg:        cfg.withDefaults(),
		deps:       deps,
		sketches:   make(map[string][]*ndvSketch),
		hotStreak:  make(map[beeID]int),
		coldStreak: make(map[beeID]int),
		pendingDDL: make(map[string]struct{}),
		attrHold:   make(map[string]int),
	}
	a.SetEnabled(cfg.Enabled)
	return a
}

// SetEnabled toggles the advisor. Enabling raises the compile gate in
// the bee module (new predicates start as candidates); disabling lowers
// it so bees compile on first use again. Demotion denylist entries are
// honored either way.
func (a *Advisor) SetEnabled(on bool) {
	a.enabled.Store(on)
	if a.deps.Mod != nil {
		a.deps.Mod.SetTierGating(on)
	}
}

// Enabled reports whether the decision loop is active.
func (a *Advisor) Enabled() bool { return a.enabled.Load() }

// Cycles returns how many decision cycles have run.
func (a *Advisor) Cycles() int64 { return a.cycles.Load() }

// Start launches the background loop. Idempotent: a second Start while
// the loop runs is a no-op.
func (a *Advisor) Start() {
	a.loopMu.Lock()
	defer a.loopMu.Unlock()
	if a.stop != nil {
		return
	}
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	go func() {
		defer close(a.done)
		t := time.NewTicker(a.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-a.stop:
				return
			case <-t.C:
				if a.enabled.Load() {
					a.RunCycle()
				}
			}
		}
	}()
}

// Stop terminates the background loop and waits for it to exit.
func (a *Advisor) Stop() {
	a.loopMu.Lock()
	defer a.loopMu.Unlock()
	if a.stop == nil {
		return
	}
	close(a.stop)
	<-a.done
	a.stop = nil
}

// BeeObs identifies one bee observed in (or gated out of) a plan.
type BeeObs struct{ Kind, Name string }

// ObservePlan feeds demand from one executed query: compiled holds the
// bees the plan carried, gated the predicates the tier gate refused
// (the plan ran them interpreted — that unserved demand is exactly what
// drives promotion, and it must be counted per execution because
// prepared statements plan once). slow over-weights queries past the
// slow-query threshold — those are where specialization pays most.
func (a *Advisor) ObservePlan(tables []string, compiled, gated []BeeObs, slow bool) {
	if !a.enabled.Load() {
		return
	}
	w := 1.0
	if slow {
		w = a.cfg.SlowBoost
	}
	for _, b := range compiled {
		a.deps.Mod.TierTouch(b.Kind, b.Name, tables, w)
	}
	for _, b := range gated {
		a.deps.Mod.TierWant(b.Kind, b.Name, tables, w)
	}
}

// ObserveRow feeds one inserted/updated row into the table's
// per-attribute NDV sketches.
func (a *Advisor) ObserveRow(table string, values []types.Datum) {
	if !a.enabled.Load() {
		return
	}
	a.skMu.Lock()
	sk := a.sketches[table]
	for len(sk) < len(values) {
		sk = append(sk, &ndvSketch{})
	}
	a.sketches[table] = sk
	for i, v := range values {
		sk[i].add(v.Hash())
	}
	a.skMu.Unlock()
}

// NoteDDL records that table's schema changed; the next cycle demotes
// every promoted bee associated with it and resets its sketches.
func (a *Advisor) NoteDDL(table string) {
	a.mu.Lock()
	a.pendingDDL[table] = struct{}{}
	a.mu.Unlock()
}

// Decisions returns the recent decision ring, most recent first.
func (a *Advisor) Decisions() []Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Decision, 0, len(a.decisions))
	for i := 0; i < len(a.decisions); i++ {
		idx := (a.nextSlot - 1 - i + len(a.decisions)) % len(a.decisions)
		out = append(out, a.decisions[idx])
	}
	return out
}

func (a *Advisor) record(d Decision) {
	d.Cycle = a.cycles.Load()
	d.When = time.Now()
	a.mu.Lock()
	if len(a.decisions) < decisionRing {
		a.decisions = append(a.decisions, d)
		a.nextSlot = len(a.decisions) % decisionRing
	} else {
		a.decisions[a.nextSlot] = d
		a.nextSlot = (a.nextSlot + 1) % decisionRing
	}
	a.mu.Unlock()
}

// RunCycle executes one decision pass: demotions first (quarantine,
// DDL, drift, negative benefit, cold decay), then promotions and pins
// within budget, then heat decay. Deterministic given the observed
// state, so tests drive it directly.
func (a *Advisor) RunCycle() {
	a.cycles.Add(1)
	a.deps.Cycles.Inc()
	mod := a.deps.Mod

	a.mu.Lock()
	ddl := a.pendingDDL
	a.pendingDDL = make(map[string]struct{})
	for k, v := range a.attrHold {
		if v <= 1 {
			delete(a.attrHold, k)
		} else {
			a.attrHold[k] = v - 1
		}
	}
	a.mu.Unlock()
	a.skMu.Lock()
	for t := range ddl {
		delete(a.sketches, t)
	}
	a.skMu.Unlock()

	tiers := mod.TierSnapshot()
	changed := false

	// --- Demotions: guard assumptions first, then cold decay. ---
	for _, ti := range tiers {
		if ti.State != core.TierCompiled && ti.State != core.TierPinned {
			continue
		}
		id := beeID{ti.Kind, ti.Name}
		switch {
		case mod.IsQuarantined(ti.Kind, ti.Name):
			if mod.TierDemote(ti.Kind, ti.Name, true, a.cfg.DemoteHold) {
				a.deps.Demotions.Inc()
				changed = true
				a.record(Decision{Action: "demote-bee", Kind: ti.Kind, Name: ti.Name,
					Reason: "quarantined after a runtime panic"})
				a.forget(id)
			}
		case a.ddlHit(ddl, ti.Rels):
			if mod.TierDemote(ti.Kind, ti.Name, true, a.cfg.DemoteHold) {
				a.deps.Demotions.Inc()
				changed = true
				a.record(Decision{Action: "demote-bee", Kind: ti.Kind, Name: ti.Name,
					Reason: "DDL invalidated watched table"})
				a.forget(id)
			}
		case a.negativeBenefit(ti):
			if mod.TierDemote(ti.Kind, ti.Name, true, a.cfg.DemoteHold) {
				a.deps.Demotions.Inc()
				changed = true
				a.record(Decision{Action: "demote-bee", Kind: ti.Kind, Name: ti.Name,
					Reason: "measured est_saved negative"})
				a.forget(id)
			}
		case ti.State == core.TierCompiled && ti.Heat < a.cfg.HotThreshold/2:
			a.mu.Lock()
			a.coldStreak[id]++
			cold := a.coldStreak[id] >= a.cfg.ColdStreak
			a.mu.Unlock()
			if cold && mod.TierDemote(ti.Kind, ti.Name, false, 1) {
				a.deps.Demotions.Inc()
				changed = true
				a.record(Decision{Action: "demote-bee", Kind: ti.Kind, Name: ti.Name,
					Reason: "cold: workload shifted away"})
				a.forget(id)
			}
		default:
			a.mu.Lock()
			delete(a.coldStreak, id)
			a.mu.Unlock()
		}
	}

	// --- Attribute tiering from the NDV sketches. ---
	budget := a.cfg.Budget
	if a.deps.Attrs != nil && a.deps.Respecialize != nil {
		for _, am := range a.sortedAttrs() {
			key := am.Table + "." + am.Name
			ndv, rows := a.sketchStats(am.Table, am.Ord)
			if am.LowCard && rows >= a.cfg.MinRows && ndv > a.cfg.DriftNDV {
				if err := a.deps.Respecialize(am.Table, am.Name, false); err == nil {
					a.deps.Demotions.Inc()
					a.record(Decision{Action: "despec-attr", Name: key,
						Reason: "value-distribution drift: observed NDV " +
							itoa(ndv) + " > " + itoa(a.cfg.DriftNDV)})
					a.mu.Lock()
					a.attrHold[key] = a.cfg.DemoteHold
					a.mu.Unlock()
				}
				continue
			}
			if !am.LowCard && am.NotNull && rows >= a.cfg.MinRows && ndv > 0 && ndv <= a.cfg.NDVMax {
				a.mu.Lock()
				_, held := a.attrHold[key]
				a.mu.Unlock()
				if held {
					continue
				}
				if budget <= 0 {
					a.deps.Skipped.Inc()
					continue
				}
				if err := a.deps.Respecialize(am.Table, am.Name, true); err == nil {
					budget--
					a.deps.Promotions.Inc()
					a.record(Decision{Action: "spec-attr", Name: key,
						Reason: "low cardinality: observed NDV " + itoa(ndv) +
							" ≤ " + itoa(a.cfg.NDVMax)})
				}
			}
		}
	}

	// --- Bee promotions and pins within the remaining budget. ---
	for _, ti := range tiers {
		switch ti.State {
		case core.TierCandidate:
			if ti.Heat < a.cfg.HotThreshold {
				continue
			}
			if budget <= 0 {
				a.deps.Skipped.Inc()
				continue
			}
			if mod.TierPromote(ti.Kind, ti.Name) {
				budget--
				a.deps.Promotions.Inc()
				changed = true
				a.record(Decision{Action: "promote-bee", Kind: ti.Kind, Name: ti.Name,
					Reason: "hot: decayed demand " + ftoa(ti.Heat) + " ≥ " + ftoa(a.cfg.HotThreshold)})
			}
		case core.TierCompiled:
			id := beeID{ti.Kind, ti.Name}
			if ti.Heat >= a.cfg.HotThreshold {
				a.mu.Lock()
				a.hotStreak[id]++
				pin := a.hotStreak[id] >= a.cfg.PinStreak
				a.mu.Unlock()
				if pin && mod.TierPin(ti.Kind, ti.Name) {
					a.record(Decision{Action: "pin-bee", Kind: ti.Kind, Name: ti.Name,
						Reason: "persistently hot for " + itoa(a.cfg.PinStreak) + " cycles"})
				}
			} else {
				a.mu.Lock()
				delete(a.hotStreak, id)
				a.mu.Unlock()
			}
		}
	}

	if changed && a.deps.Invalidate != nil {
		a.deps.Invalidate()
	}
	mod.TierDecay(a.cfg.DecayFactor)
}

func (a *Advisor) forget(id beeID) {
	a.mu.Lock()
	delete(a.hotStreak, id)
	delete(a.coldStreak, id)
	a.mu.Unlock()
}

func (a *Advisor) ddlHit(ddl map[string]struct{}, rels []string) bool {
	for _, r := range rels {
		if _, ok := ddl[r]; ok {
			return true
		}
	}
	return false
}

func (a *Advisor) negativeBenefit(ti core.TierInfo) bool {
	u := a.deps.Mod.Usage(ti.Kind, ti.Name)
	return u.Rows() >= a.cfg.MinRows && u.SignedEstSavedNs() < 0
}

func (a *Advisor) sketchStats(table string, ord int) (ndv int, rows int64) {
	a.skMu.Lock()
	defer a.skMu.Unlock()
	sk := a.sketches[table]
	if ord >= len(sk) {
		return 0, 0
	}
	return sk[ord].ndv(), sk[ord].rows
}

func (a *Advisor) sortedAttrs() []AttrMeta {
	attrs := a.deps.Attrs()
	sort.Slice(attrs, func(i, j int) bool {
		if attrs[i].Table != attrs[j].Table {
			return attrs[i].Table < attrs[j].Table
		}
		return attrs[i].Ord < attrs[j].Ord
	})
	return attrs
}

// State is the advisor snapshot served at /advisor and \advisor.
type State struct {
	Enabled   bool            `json:"enabled"`
	Cycles    int64           `json:"cycles"`
	Decisions []Decision      `json:"decisions"`
	Tiers     []core.TierInfo `json:"tiers"`
}

// Snapshot returns the current advisor state (recent decisions first,
// tier table hottest first).
func (a *Advisor) Snapshot() State {
	return State{
		Enabled:   a.Enabled(),
		Cycles:    a.Cycles(),
		Decisions: a.Decisions(),
		Tiers:     a.deps.Mod.TierSnapshot(),
	}
}

func itoa(v int) string {
	return strconv.Itoa(v)
}

func ftoa(v float64) string {
	return strconv.FormatFloat(v, 'g', 3, 64)
}
