package advisor

// ndvSketch is the lightweight per-attribute distinct-value sketch the
// advisor uses for both directions of tuple-bee tiering: an attribute
// whose observed NDV stays below Config.NDVMax is a promotion candidate
// (dictionary-encode it), and a specialized attribute whose NDV climbs
// past Config.DriftNDV is drifting toward the hard MaxDictValues limit
// and must be despecialized before inserts start failing.
//
// The sketch stores value hashes in a bounded set: exact up to the
// bound, saturating above it. That is all the advisor needs — it only
// compares NDV against two small thresholds, so a saturated sketch
// ("more than bound distinct values") is as informative as an exact
// count would be.
type ndvSketch struct {
	rows      int64
	seen      map[uint64]struct{}
	saturated bool
}

// sketchBound caps per-attribute sketch memory. It only needs to exceed
// the largest threshold the advisor compares against (DriftNDV).
const sketchBound = 512

func (s *ndvSketch) add(h uint64) {
	s.rows++
	if s.saturated {
		return
	}
	if s.seen == nil {
		s.seen = make(map[uint64]struct{}, 8)
	}
	s.seen[h] = struct{}{}
	if len(s.seen) > sketchBound {
		s.saturated = true
		s.seen = nil // the count no longer matters, release the memory
	}
}

// ndv returns the observed distinct-value estimate; a saturated sketch
// reports sketchBound+1 ("too many").
func (s *ndvSketch) ndv() int {
	if s.saturated {
		return sketchBound + 1
	}
	return len(s.seen)
}
