package profile

// Abstract instruction costs per code path. Units are "abstract x86
// instructions": the constants for the generic deform loop and the GCL bee
// are calibrated against the paper's hand count for the 9-attribute TPC-H
// orders relation (≈340 generic vs. ≈146 specialized instructions per
// tuple, §II), and the background executor/storage costs against the
// paper's whole-query callgrind totals for `select o_comment from orders`
// (3.447B instructions over 1.5M tuples ≈ 2300 instructions per tuple).
// All remaining experiment numbers follow from which paths execute and how
// often; nothing else is fitted. See DESIGN.md §5.
const (
	// --- Generic slot_deform_tuple (Listing 1 of the paper) ---

	// DeformBase: function prologue, slot/header setup, loop setup.
	DeformBase = 25
	// DeformFixedAttr: one iteration of the generic loop for a
	// fixed-length attribute (loop bookkeeping, thisatt load, null-bitmap
	// branch, attcacheoff test, typed fetch dispatch, offset advance).
	DeformFixedAttr = 33
	// DeformVarlenaAttr: one iteration for a variable-length attribute
	// (alignment-pointer logic, VARSIZE read, slow-path flagging).
	DeformVarlenaAttr = 55
	// DeformSlowAttr: extra cost per attribute once the "slow" flag is
	// set (no cached offsets; alignment recomputed every time).
	DeformSlowAttr = 14
	// DeformNullBitmapCheck: per-attribute att_isnull test when the tuple
	// has a null bitmap.
	DeformNullBitmapCheck = 6
	// DeformNullAttr: short-circuit path for a null attribute.
	DeformNullAttr = 12

	// --- GCL bee routine (Listing 2 of the paper) ---

	// GCLBase: bee-call overhead plus the single wide isnull clear
	// ("(long*)isnull = 0").
	GCLBase = 21
	// GCLFixedAttr: straight-line load+store with a baked constant offset.
	GCLFixedAttr = 12
	// GCLVarlenaAttr: specialized varlena extraction (alignment test with
	// baked mask, VARSIZE advance).
	GCLVarlenaAttr = 34
	// GCLHoleAttr: filling one value from the tuple bee's data section
	// (one indexed load from the bee data section, one store).
	GCLHoleAttr = 10

	// --- Generic heap_fill_tuple ---

	// FillBase: prologue, header construction, bitmap sizing.
	FillBase = 30
	// FillFixedAttr: one generic fill iteration for a fixed-length
	// attribute (alignment arithmetic, length dispatch, store).
	FillFixedAttr = 31
	// FillVarlenaAttr: one generic fill iteration for a varlena attribute.
	FillVarlenaAttr = 52
	// FillNullableAttr: extra per-attribute cost maintaining the bitmap.
	FillNullableAttr = 7

	// --- SCL bee routine ---

	// SCLBase: bee-call overhead plus one-shot header write.
	SCLBase = 18
	// SCLFixedAttr: straight-line store with baked offset.
	SCLFixedAttr = 11
	// SCLVarlenaAttr: specialized varlena append.
	SCLVarlenaAttr = 30
	// SCLHoleAttr: dictionary-id resolution for a specialized attribute
	// (probe handled by the bee module; here just the skip).
	SCLHoleAttr = 9

	// --- Tuple-bee maintenance (charged to CompBee) ---

	// BeeDictProbe: memcmp-style probe of the ≤256-entry value dictionary
	// per specialized attribute on insert.
	BeeDictProbe = 24
	// BeeDictInsert: admitting a new value into a data section
	// (slab-allocated copy).
	BeeDictInsert = 95

	// --- Interpreted expression evaluation (FuncExprState analogue) ---

	// ExprNode: evaluating one interpreted expression node (function-call
	// dispatch, operand slot loads, type dispatch, result store).
	ExprNode = 44
	// ExprConst / ExprVar: leaf fetches.
	ExprConst = 8
	ExprVar   = 14

	// --- EVP bee routine ---

	// EVPBase: one specialized predicate invocation (direct call, baked
	// attribute offsets and constants).
	EVPBase = 13
	// EVPTerm: one comparison term inside the specialized predicate.
	EVPTerm = 7

	// --- Generic join qualification vs. EVJ ---

	// JoinQualNode: generic per-pair join-qual evaluation overhead
	// (JoinState consultation: join type tests, attribute id loads).
	JoinQualNode = 49
	// EVJBase: specialized join-qual invocation.
	EVJBase = 15
	// EVJKey: one baked key comparison.
	EVJKey = 8

	// --- Background engine costs (identical in stock and bee builds) ---

	// PageAccess: fetching one page through the buffer manager.
	PageAccess = 1200
	// HeapNextTuple: per-tuple heap-scan bookkeeping (line-pointer fetch,
	// visibility/slot plumbing).
	HeapNextTuple = 380
	// ExecNodeTuple: per-tuple per-executor-node iterator overhead.
	ExecNodeTuple = 260
	// ExecNodeBatch: per-batch executor-node overhead on the batch path —
	// the iterator bookkeeping is paid once per page-sized batch instead
	// of once per tuple.
	ExecNodeBatch = 320
	// ProjectCol: projecting one output column.
	ProjectCol = 45
	// EmitRow: materializing one result row to the client sink.
	EmitRow = 1250
	// HashProbe / HashBuild: hash-table operations in joins and
	// aggregation, excluding the qual/key evaluation accounted above.
	HashProbe = 90
	HashBuild = 130
	// SortCompare: one comparison inside a sort.
	SortCompare = 60
	// AggTransition: one aggregate-state transition.
	AggTransition = 85
	// IndexDescend: one B+tree descent.
	IndexDescend = 520
	// InsertTuple: per-tuple heap-insert bookkeeping beyond fill.
	InsertTuple = 620
)
