// Package profile provides deterministic abstract-instruction accounting,
// this reproduction's substitute for the callgrind profiles the paper uses
// to report dynamic instruction counts (its Figure 6 and the §II case
// study). Each hot routine in the engine — generic tuple deform/fill, the
// interpreted expression evaluator, join-qualification evaluation, page
// access, executor nodes, and the specialized bee routines — reports the
// abstract instructions it executes for the given input via a *Counters.
//
// A nil *Counters disables accounting; the engine threads one through the
// execution context only when a profiled run is requested, so wall-clock
// benchmarks are unaffected (the paper likewise measured wall time and
// callgrind profiles in separate runs).
//
// The cost constants live in costs.go and are calibrated once against the
// paper's hand-counted case study (≈340 x86 instructions per tuple for the
// generic 9-attribute orders deform vs. ≈146 for the specialized GCL
// routine); every other number in the reproduction then follows from which
// code paths execute, not from fitting.
package profile

// Component identifies the engine subsystem charged with instructions, so
// experiments can report per-function breakdowns the way callgrind's
// per-function summaries do (e.g. heap_fill_tuple's share of bulk-load).
type Component int

const (
	// CompDeform is tuple deforming: slot_deform_tuple or the GCL bee.
	CompDeform Component = iota
	// CompFill is tuple forming: heap_fill_tuple or the SCL bee.
	CompFill
	// CompExpr is scalar-expression/predicate evaluation: the interpreted
	// evaluator or the EVP bee.
	CompExpr
	// CompJoin is join-qualification evaluation: generic or the EVJ bee.
	CompJoin
	// CompExec is executor-node overhead (iterator calls, slot plumbing).
	CompExec
	// CompStorage is page access, buffer-pool, and heap bookkeeping.
	CompStorage
	// CompBee is bee-module overhead (bee creation, dictionary probes).
	CompBee
	numComponents
)

// String names the component for reports.
func (c Component) String() string {
	switch c {
	case CompDeform:
		return "deform"
	case CompFill:
		return "fill"
	case CompExpr:
		return "expr"
	case CompJoin:
		return "join"
	case CompExec:
		return "exec"
	case CompStorage:
		return "storage"
	case CompBee:
		return "bee"
	default:
		return "?"
	}
}

// Counters accumulates abstract instruction counts per component. It is
// not synchronized; each worker owns its own Counters and merges at the
// end (see Merge).
type Counters struct {
	byComp [numComponents]int64
}

// Add charges n abstract instructions to component c. It is safe to call
// on a nil receiver, which makes accounting free to disable at call sites:
//
//	prof.Add(profile.CompDeform, cost) // no-op when prof == nil
func (p *Counters) Add(c Component, n int64) {
	if p == nil {
		return
	}
	p.byComp[c] += n
}

// Component returns the instructions charged to one component.
func (p *Counters) Component(c Component) int64 {
	if p == nil {
		return 0
	}
	return p.byComp[c]
}

// Total returns the total abstract instructions across all components —
// the analogue of callgrind's program-total instruction count.
func (p *Counters) Total() int64 {
	if p == nil {
		return 0
	}
	var t int64
	for _, v := range p.byComp {
		t += v
	}
	return t
}

// Merge adds other's counts into p.
func (p *Counters) Merge(other *Counters) {
	if p == nil || other == nil {
		return
	}
	for i := range p.byComp {
		p.byComp[i] += other.byComp[i]
	}
}

// Reset zeroes all counters.
func (p *Counters) Reset() {
	if p == nil {
		return
	}
	p.byComp = [numComponents]int64{}
}

// Breakdown returns (component name, count) pairs for nonzero components,
// in component order.
func (p *Counters) Breakdown() []struct {
	Name  string
	Count int64
} {
	var out []struct {
		Name  string
		Count int64
	}
	if p == nil {
		return out
	}
	for c := Component(0); c < numComponents; c++ {
		if p.byComp[c] != 0 {
			out = append(out, struct {
				Name  string
				Count int64
			}{c.String(), p.byComp[c]})
		}
	}
	return out
}
