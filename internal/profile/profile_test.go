package profile

import "testing"

func TestNilCountersAreNoOps(t *testing.T) {
	var p *Counters
	p.Add(CompDeform, 100) // must not panic
	if p.Total() != 0 || p.Component(CompDeform) != 0 {
		t.Error("nil counters must read zero")
	}
	p.Merge(&Counters{})
	p.Reset()
	if len(p.Breakdown()) != 0 {
		t.Error("nil breakdown must be empty")
	}
}

func TestAddTotalMergeReset(t *testing.T) {
	a := &Counters{}
	a.Add(CompDeform, 340)
	a.Add(CompExec, 100)
	a.Add(CompDeform, 10)
	if got := a.Component(CompDeform); got != 350 {
		t.Errorf("deform = %d", got)
	}
	if got := a.Total(); got != 450 {
		t.Errorf("total = %d", got)
	}
	b := &Counters{}
	b.Add(CompFill, 5)
	b.Merge(a)
	if got := b.Total(); got != 455 {
		t.Errorf("merged total = %d", got)
	}
	bd := b.Breakdown()
	if len(bd) != 3 {
		t.Fatalf("breakdown entries = %d, want 3", len(bd))
	}
	if bd[0].Name != "deform" || bd[0].Count != 350 {
		t.Errorf("breakdown[0] = %+v", bd[0])
	}
	b.Reset()
	if b.Total() != 0 {
		t.Error("reset must zero counters")
	}
}

// TestCaseStudyCalibration pins the cost model to the paper's §II hand
// count: the generic deform of the 9-attribute TPC-H orders tuple costs
// ≈340 instructions and the specialized GCL routine ≈146 (8 fixed + 1
// varlena attribute generic; 5 stored fixed + 1 varlena + 3 data-section
// holes specialized).
func TestCaseStudyCalibration(t *testing.T) {
	generic := int64(DeformBase + 8*DeformFixedAttr + 1*DeformVarlenaAttr)
	gcl := int64(GCLBase + 5*GCLFixedAttr + 1*GCLVarlenaAttr + 3*GCLHoleAttr)
	if generic < 320 || generic > 360 {
		t.Errorf("generic orders deform = %d, want ≈340", generic)
	}
	if gcl < 135 || gcl > 160 {
		t.Errorf("GCL orders deform = %d, want ≈146", gcl)
	}
	saving := float64(generic-gcl) / float64(generic)
	if saving < 0.5 || saving > 0.65 {
		t.Errorf("per-call saving = %.2f, want ≈0.57 (340→146)", saving)
	}
}

func TestComponentNames(t *testing.T) {
	names := map[Component]string{
		CompDeform: "deform", CompFill: "fill", CompExpr: "expr",
		CompJoin: "join", CompExec: "exec", CompStorage: "storage", CompBee: "bee",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	if Component(99).String() != "?" {
		t.Error("unknown component must stringify as ?")
	}
}
