package server

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"microspec/internal/client"
	"microspec/internal/engine"
	"microspec/internal/types"
	"microspec/internal/wire"
)

// TestStressConcurrentReadersWriters runs 8 writer and 8 reader sessions
// against one server (run it with -race). Each writer statement moves
// every row of the table by the same delta and then moves it back, so at
// every commit boundary sum(bal) - rows*100 is a whole multiple of the
// row count. Readers run snapshot aggregates concurrently: any torn read
// — a count that is off, or a sum mixing two writers' versions — breaks
// the invariant and fails the test.
func TestStressConcurrentReadersWriters(t *testing.T) {
	srv, db := startServer(t, nil)
	mustSeedAccts(t, db, 32)

	const writers, readers, iters = 8, 8, 20
	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(srv.Addr().String())
			if err != nil {
				errc <- fmt.Errorf("writer %d dial: %w", w, err)
				return
			}
			defer c.Close()
			for i := 0; i < iters; i++ {
				delta := 1 + (w+i)%5
				if _, err := c.Exec(fmt.Sprintf("update acct set bal = bal + %d", delta)); err != nil {
					errc <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
				if _, err := c.Exec(fmt.Sprintf("update acct set bal = bal - %d", delta)); err != nil {
					errc <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := client.Dial(srv.Addr().String())
			if err != nil {
				errc <- fmt.Errorf("reader %d dial: %w", r, err)
				return
			}
			defer c.Close()
			for i := 0; i < iters; i++ {
				res, err := c.Query("select count(*), sum(bal) from acct")
				if err != nil {
					errc <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				n, sum := res.Rows[0][0].Int64(), res.Rows[0][1].Int64()
				if n != 32 {
					errc <- fmt.Errorf("reader %d: count = %d, want 32", r, n)
					return
				}
				if (sum-32*100)%32 != 0 {
					errc <- fmt.Errorf("reader %d: torn aggregate sum = %d", r, sum)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query("select sum(bal) from acct")
	if err != nil || res.Rows[0][0].Int64() != 32*100 {
		t.Fatalf("final sum: %v (err %v), want %d", res, err, 32*100)
	}
}

// TestWriteConflictOverWire checks the server maps first-updater-wins
// losses to the typed "write_conflict" error code: an interactive
// transaction holds an uncommitted delete while a wire session tries to
// update the same row.
func TestWriteConflictOverWire(t *testing.T) {
	srv, db := startServer(t, nil)
	mustSeedAccts(t, db, 4)

	txn := db.Begin(nil)
	row, tid, ok, err := txn.GetByIndex("acct_pkey", []types.Datum{types.NewInt32(1)})
	if err != nil || !ok {
		t.Fatalf("lookup: %v %v", ok, err)
	}
	if err := txn.DeleteRow("acct", tid, row); err != nil {
		t.Fatal(err)
	}

	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec("update acct set bal = 0 where id = 1")
	if err == nil {
		t.Fatal("conflicting update must fail")
	}
	var we *wire.Error
	if !errors.As(err, &we) {
		t.Fatalf("error not typed: %v", err)
	}
	if we.Code != wire.CodeConflict {
		t.Fatalf("code = %q, want %q (%v)", we.Code, wire.CodeConflict, err)
	}

	// The session survives the conflict and the retry succeeds after the
	// blocker rolls back.
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Exec("update acct set bal = 0 where id = 1"); err != nil || n != 1 {
		t.Fatalf("retry after rollback: n=%d err=%v", n, err)
	}
}

// mustSeedAccts creates the acct table with n rows of balance 100.
func mustSeedAccts(t *testing.T, db *engine.DB, n int) {
	t.Helper()
	if _, err := db.Exec(`create table acct (
		id integer not null,
		bal integer not null,
		primary key (id))`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := db.Exec(fmt.Sprintf("insert into acct values (%d, 100)", i)); err != nil {
			t.Fatal(err)
		}
	}
}
