package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"microspec/internal/engine"
	"microspec/internal/exec"
	"microspec/internal/sql"
	"microspec/internal/trace"
	"microspec/internal/wire"
)

// session is one authenticated connection: its settings, its named
// prepared statements, and its request loop. A session serves one
// request at a time (the protocol is strictly request/response), so none
// of the per-session state needs locking except the busy flag Shutdown
// reads from another goroutine.
type session struct {
	srv   *Server
	conn  net.Conn
	id    uint64
	opts  engine.QueryOpts
	stmts map[string]*engine.Stmt
	txns  map[string]*engine.TxnStmt
	busy  atomic.Bool
}

// interruptIfIdle closes the connection unless a request is in flight —
// the shutdown path's way of waking sessions parked in ReadFrame.
func (s *session) interruptIfIdle() {
	if !s.busy.Load() {
		s.conn.Close()
	}
}

func (s *session) closeStmts() {
	for _, st := range s.stmts {
		st.Close()
	}
	for _, ts := range s.txns {
		ts.Close()
	}
}

// loop reads one frame at a time and answers it. Malformed frames get a
// typed error and close the session (framing is unrecoverable);
// statement errors get a typed error and the session continues.
func (s *session) loop() {
	srv := s.srv
	for {
		if srv.closing.Load() {
			srv.reject(s.conn, wire.CodeShutdown, "server is shutting down")
			return
		}
		s.conn.SetReadDeadline(time.Now().Add(srv.cfg.IdleTimeout))
		// The read interval is timed here but only becomes a span if the
		// decoded request turns out to be traced; it includes the wait for
		// the client's first byte, so idle sessions show the wait honestly.
		readStart := time.Now()
		f, err := wire.ReadFrame(s.conn)
		readDur := time.Since(readStart)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				srv.mIdleTimeouts.Inc()
				srv.reject(s.conn, wire.CodeTimeout, "idle timeout")
				return
			}
			var we *wire.Error
			if errors.As(err, &we) {
				srv.mBadFrames.Inc()
				srv.writeError(s.conn, err)
			}
			return
		}
		s.busy.Store(true)
		start := time.Now()
		srv.mRequests.Inc()
		done := s.handle(f, readStart, readDur)
		srv.mLatency.Observe(time.Since(start))
		s.busy.Store(false)
		if done {
			return
		}
	}
}

// handle answers one frame; true means the session should end.
func (s *session) handle(f wire.Frame, readStart time.Time, readDur time.Duration) bool {
	srv := s.srv
	switch f.Type {
	case wire.TTerminate:
		return true

	case wire.TQuery:
		decStart := time.Now()
		q, err := wire.DecodeQuery(f.Payload)
		decDur := time.Since(decStart)
		if err != nil {
			srv.mBadFrames.Inc()
			srv.writeError(s.conn, err)
			return true
		}
		// A nonzero client-supplied TraceID forces sampling, so the client
		// log line and the server's span tree share one ID.
		at := srv.db.Tracer().Start(q.TraceID, "query", q.SQL)
		at.SpanAt("wire.read", readStart, readDur)
		at.SpanAt("wire.decode", decStart, decDur)
		return s.runQuery(q, at) != nil

	case wire.TPrepare:
		p, err := wire.DecodePrepare(f.Payload)
		if err != nil {
			srv.mBadFrames.Inc()
			srv.writeError(s.conn, err)
			return true
		}
		st, err := srv.db.PrepareWith(p.SQL, s.opts)
		if err != nil {
			return srv.writeError(s.conn, err) != nil
		}
		if old, ok := s.stmts[p.Name]; ok {
			old.Close()
		}
		s.stmts[p.Name] = st
		ok := wire.PrepareOK{NumParams: uint16(st.NumParams()), Cols: colsOf(st.Columns())}
		return wire.WriteFrame(s.conn, wire.TPrepareOK, wire.EncodePrepareOK(ok)) != nil

	case wire.TExecute:
		decStart := time.Now()
		e, err := wire.DecodeExecute(f.Payload)
		decDur := time.Since(decStart)
		if err != nil {
			srv.mBadFrames.Inc()
			srv.writeError(s.conn, err)
			return true
		}
		st, ok := s.stmts[e.Name]
		if !ok {
			return srv.writeError(s.conn, &wire.Error{
				Code: wire.CodeUnknownStmt, Msg: fmt.Sprintf("no prepared statement %q", e.Name)}) != nil
		}
		at := srv.db.Tracer().Start(e.TraceID, "execute", e.Name+": "+st.Text())
		at.SpanAt("wire.read", readStart, readDur)
		at.SpanAt("wire.decode", decStart, decDur)
		return s.runExecute(st, e, at) != nil

	case wire.TExecuteTxn:
		decStart := time.Now()
		e, err := wire.DecodeExecuteTxn(f.Payload)
		decDur := time.Since(decStart)
		if err != nil {
			srv.mBadFrames.Inc()
			srv.writeError(s.conn, err)
			return true
		}
		ts, ok := s.txns[e.Name]
		if !ok {
			return srv.writeError(s.conn, &wire.Error{
				Code: wire.CodeUnknownStmt, Msg: fmt.Sprintf("no prepared transaction %q", e.Name)}) != nil
		}
		at := srv.db.Tracer().Start(e.TraceID, "execute_txn", e.Name)
		at.SpanAt("wire.read", readStart, readDur)
		at.SpanAt("wire.decode", decStart, decDur)
		return s.runExecuteTxn(ts, e, at) != nil

	case wire.TCloseStmt:
		c, err := wire.DecodeCloseStmt(f.Payload)
		if err != nil {
			srv.mBadFrames.Inc()
			srv.writeError(s.conn, err)
			return true
		}
		if st, ok := s.stmts[c.Name]; ok {
			st.Close()
			delete(s.stmts, c.Name)
		}
		if ts, ok := s.txns[c.Name]; ok {
			ts.Close()
			delete(s.txns, c.Name)
		}
		return wire.WriteFrame(s.conn, wire.TDone, wire.EncodeDone(wire.Done{})) != nil

	case wire.TSet:
		m, err := wire.DecodeSet(f.Payload)
		if err != nil {
			srv.mBadFrames.Inc()
			srv.writeError(s.conn, err)
			return true
		}
		if err := s.applySet(m); err != nil {
			return srv.writeError(s.conn, err) != nil
		}
		return wire.WriteFrame(s.conn, wire.TDone, wire.EncodeDone(wire.Done{})) != nil

	default:
		srv.mBadFrames.Inc()
		srv.writeError(s.conn, &wire.Error{
			Code: wire.CodeMalformed, Msg: fmt.Sprintf("unexpected frame %v", f.Type)})
		return true
	}
}

// runQuery executes one ad-hoc statement. The SQL is parsed once here to
// route SELECTs to the query path and everything else to Exec. A non-nil
// return means the transport failed; statement errors are reported
// in-band and return nil.
func (s *session) runQuery(q wire.Query, at *trace.Active) error {
	srv := s.srv
	stmt, err := sql.Parse(q.SQL)
	if err != nil {
		at.Finish(err)
		return srv.writeError(s.conn, err)
	}
	// PREPARE TRANSACTION registers a named fused unit on the session;
	// the client fires it later with an ExecuteTxn frame.
	if pt, ok := stmt.(*sql.PrepareTxn); ok {
		ts, err := srv.db.PrepareTxnAST(pt, q.SQL)
		at.Finish(err)
		if err != nil {
			return srv.writeError(s.conn, err)
		}
		if old, ok := s.txns[pt.Name]; ok {
			old.Close()
		}
		s.txns[pt.Name] = ts
		return wire.WriteFrame(s.conn, wire.TDone,
			wire.EncodeDone(wire.Done{TraceID: at.ID()}))
	}
	// The trace rides the context into the engine, where parse/plan/exec
	// spans attach to it; all Active methods are nil-safe for the common
	// untraced request.
	ctx := trace.NewContext(context.Background(), at)
	if _, isSel := stmt.(*sql.Select); !isSel {
		n, err := srv.db.ExecContext(ctx, q.SQL)
		at.Finish(err)
		if err != nil {
			return srv.writeError(s.conn, err)
		}
		return wire.WriteFrame(s.conn, wire.TDone,
			wire.EncodeDone(wire.Done{Rows: n, TraceID: at.ID()}))
	}
	var res *engine.Result
	var analyze string
	if q.Analyze {
		analyze, res, err = srv.db.ExplainAnalyzeQueryContext(ctx, q.SQL)
	} else {
		res, err = srv.db.QueryWith(ctx, q.SQL, s.opts)
	}
	at.Finish(err)
	if err != nil {
		return srv.writeError(s.conn, err)
	}
	return s.sendResult(res, analyze, at.ID())
}

// runExecute binds and runs a prepared statement.
func (s *session) runExecute(st *engine.Stmt, e wire.Execute, at *trace.Active) error {
	srv := s.srv
	ctx := trace.NewContext(context.Background(), at)
	if !st.IsSelect() {
		n, err := st.ExecContext(ctx, e.Params...)
		at.Finish(err)
		if err != nil {
			return srv.writeError(s.conn, err)
		}
		return wire.WriteFrame(s.conn, wire.TDone,
			wire.EncodeDone(wire.Done{Rows: n, TraceID: at.ID()}))
	}
	var res *engine.Result
	var analyze string
	var err error
	if e.Analyze {
		analyze, res, err = st.ExplainAnalyzeContext(ctx, e.Params...)
	} else {
		res, err = st.QueryContext(ctx, e.Params...)
	}
	at.Finish(err)
	if err != nil {
		return srv.writeError(s.conn, err)
	}
	return s.sendResult(res, analyze, at.ID())
}

// runExecuteTxn binds and runs a named transaction in one round trip.
// The reply is the last SELECT's result (RowDesc + rows when the body
// has one) and a Done whose row count is the DML rows affected plus the
// rows returned.
func (s *session) runExecuteTxn(ts *engine.TxnStmt, e wire.ExecuteTxn, at *trace.Active) error {
	srv := s.srv
	res, affected, err := ts.ExecTxn(e.Params...)
	at.Finish(err)
	if err != nil {
		return srv.writeError(s.conn, err)
	}
	if res == nil {
		return wire.WriteFrame(s.conn, wire.TDone,
			wire.EncodeDone(wire.Done{Rows: affected, TraceID: at.ID()}))
	}
	if err := wire.WriteFrame(s.conn, wire.TRowDesc,
		wire.EncodeRowDesc(wire.RowDesc{Cols: colsOf(res.Cols)})); err != nil {
		return err
	}
	for _, row := range res.Rows {
		if err := wire.WriteFrame(s.conn, wire.TRow,
			wire.EncodeRow(wire.Row{Vals: row})); err != nil {
			return err
		}
	}
	return wire.WriteFrame(s.conn, wire.TDone,
		wire.EncodeDone(wire.Done{Rows: affected + int64(len(res.Rows)), TraceID: at.ID()}))
}

// sendResult streams RowDesc, the rows, and Done; traced requests get
// their ID echoed on the Done frame so the client can correlate.
func (s *session) sendResult(res *engine.Result, analyze string, traceID uint64) error {
	if err := wire.WriteFrame(s.conn, wire.TRowDesc,
		wire.EncodeRowDesc(wire.RowDesc{Cols: colsOf(res.Cols)})); err != nil {
		return err
	}
	for _, row := range res.Rows {
		if err := wire.WriteFrame(s.conn, wire.TRow,
			wire.EncodeRow(wire.Row{Vals: row})); err != nil {
			return err
		}
	}
	return wire.WriteFrame(s.conn, wire.TDone,
		wire.EncodeDone(wire.Done{Rows: int64(len(res.Rows)), Analyze: analyze, TraceID: traceID}))
}

// applySet maps a SET request onto the session's QueryOpts. Settings
// affect subsequent ad-hoc queries immediately and prepared statements
// from their next PREPARE (plans bake the degree in).
func (s *session) applySet(m wire.Set) error {
	switch strings.ToLower(m.Name) {
	case "timeout_ms":
		n, err := strconv.Atoi(m.Value)
		if err != nil || n < 0 {
			return &wire.Error{Code: wire.CodeQuery, Msg: fmt.Sprintf("bad timeout_ms %q", m.Value)}
		}
		s.opts.Timeout = time.Duration(n) * time.Millisecond
	case "workers":
		n, err := strconv.Atoi(m.Value)
		if err != nil || n < 0 {
			return &wire.Error{Code: wire.CodeQuery, Msg: fmt.Sprintf("bad workers %q", m.Value)}
		}
		s.opts.Workers = n
	case "batch":
		switch strings.ToLower(m.Value) {
		case "on", "true", "1":
			on := true
			s.opts.Batch = &on
		case "off", "false", "0":
			off := false
			s.opts.Batch = &off
		default:
			return &wire.Error{Code: wire.CodeQuery, Msg: fmt.Sprintf("bad batch %q", m.Value)}
		}
	default:
		return &wire.Error{Code: wire.CodeQuery, Msg: fmt.Sprintf("unknown setting %q", m.Name)}
	}
	return nil
}

func colsOf(cols []exec.ColInfo) []wire.Col {
	out := make([]wire.Col, len(cols))
	for i, c := range cols {
		out[i] = wire.Col{Name: c.Name, Tag: wire.KindTag(c.T.Kind)}
	}
	return out
}
