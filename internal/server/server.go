// Package server is the network front end: a TCP server speaking the
// internal/wire protocol over a shared engine.DB. Each connection is one
// session with its own session-scoped settings (statement timeout,
// parallelism degree, batch choice) and its own named prepared
// statements; all sessions share the engine's bee module, so a statement
// prepared on one session finds the query bees another session's
// identical statement already put in the bee cache.
//
// Sessions execute concurrently against the engine's MVCC storage:
// reads run against snapshots and never block writers, and concurrent
// writers to the same row resolve by first-updater-wins — the loser's
// statement comes back as a typed "write_conflict" error frame the
// client should retry (see docs/CONCURRENCY.md).
//
// Admission control is two-stage: up to MaxConns sessions run
// concurrently, up to AcceptBacklog accepted connections wait in a
// bounded queue for a slot, and everything beyond that is turned away
// immediately with a typed "server_busy" error frame. Shutdown drains:
// in-flight requests finish, idle connections are closed, and new
// arrivals get a typed "shutting_down" error until the listener stops.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"microspec/internal/engine"
	"microspec/internal/metrics"
	"microspec/internal/txn"
	"microspec/internal/wire"
)

// ServerVersion is reported in HelloOK.
const ServerVersion = "microspec/0.5"

// Config controls a Server.
type Config struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:0").
	Addr string
	// DB is the shared database instance. Required.
	DB *engine.DB
	// Secret is the shared auth token Hello must present; "" accepts any.
	Secret string
	// MaxConns bounds concurrently served sessions (default 64).
	MaxConns int
	// AcceptBacklog bounds accepted connections waiting for a session
	// slot (default 16); overflow is rejected with a busy error.
	AcceptBacklog int
	// HelloTimeout bounds accept-to-first-byte: a client that connects
	// but never sends Hello is cut off (default 5s).
	HelloTimeout time.Duration
	// IdleTimeout is the per-request read deadline between frames
	// (default 5m).
	IdleTimeout time.Duration
}

func (c *Config) fill() {
	if c.MaxConns <= 0 {
		c.MaxConns = 64
	}
	if c.AcceptBacklog <= 0 {
		c.AcceptBacklog = 16
	}
	if c.HelloTimeout <= 0 {
		c.HelloTimeout = 5 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 5 * time.Minute
	}
}

// Server is a running listener plus its session pool.
type Server struct {
	cfg Config
	db  *engine.DB
	ln  net.Listener

	closing  atomic.Bool
	nextSID  atomic.Uint64
	acceptCh chan net.Conn
	sem      chan struct{}
	wg       sync.WaitGroup // accept loop, dispatcher, sessions

	mu       sync.Mutex
	sessions map[*session]struct{}

	// Server-wide metrics, registered on the DB's registry so one
	// snapshot shows engine and server state together.
	mAccepted        *metrics.Counter
	mRejectedBusy    *metrics.Counter
	mRejectedDown    *metrics.Counter
	mRejectedRecover *metrics.Counter
	mAuthFailures    *metrics.Counter
	mSessions        *metrics.Counter
	mActive          *metrics.Gauge
	mQueued          *metrics.Gauge
	mRequests        *metrics.Counter
	mRequestErrs     *metrics.Counter
	mBadFrames       *metrics.Counter
	mIdleTimeouts    *metrics.Counter
	mLatency         *metrics.Histogram
}

// Listen starts a server on cfg.Addr.
func Listen(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("server: Config.DB is required")
	}
	cfg.fill()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	reg := cfg.DB.Metrics()
	s := &Server{
		cfg:      cfg,
		db:       cfg.DB,
		ln:       ln,
		acceptCh: make(chan net.Conn, cfg.AcceptBacklog),
		sem:      make(chan struct{}, cfg.MaxConns),
		sessions: make(map[*session]struct{}),

		mAccepted:        reg.Counter("server.conns_accepted"),
		mRejectedBusy:    reg.Counter("server.conns_rejected_busy"),
		mRejectedDown:    reg.Counter("server.conns_rejected_shutdown"),
		mRejectedRecover: reg.Counter("server.conns_rejected_recovering"),
		mAuthFailures:    reg.Counter("server.auth_failures"),
		mSessions:        reg.Counter("server.sessions"),
		mActive:          reg.Gauge("server.sessions_active"),
		mQueued:          reg.Gauge("server.accept_queue"),
		mRequests:        reg.Counter("server.requests"),
		mRequestErrs:     reg.Counter("server.request_errors"),
		mBadFrames:       reg.Counter("server.malformed_frames"),
		mIdleTimeouts:    reg.Counter("server.idle_timeouts"),
		mLatency:         reg.Histogram("server.request.latency"),
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.dispatch()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			// Listener closed: shutdown finished draining.
			close(s.acceptCh)
			return
		}
		s.mAccepted.Inc()
		if s.closing.Load() {
			s.reject(conn, wire.CodeShutdown, "server is shutting down")
			s.mRejectedDown.Inc()
			continue
		}
		select {
		case s.acceptCh <- conn:
			s.mQueued.Add(1)
		default:
			// Session slots and the backlog are all full: typed busy
			// rejection, the client backs off.
			s.reject(conn, wire.CodeBusy, fmt.Sprintf("at capacity (%d sessions, %d queued)",
				s.cfg.MaxConns, s.cfg.AcceptBacklog))
			s.mRejectedBusy.Inc()
		}
	}
}

// dispatch moves queued connections into session slots.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for conn := range s.acceptCh {
		s.mQueued.Add(-1)
		if s.closing.Load() {
			s.reject(conn, wire.CodeShutdown, "server is shutting down")
			s.mRejectedDown.Inc()
			continue
		}
		s.sem <- struct{}{}
		// Re-check after the (possibly long) wait for a slot: shutdown may
		// have begun while this connection was queued.
		if s.closing.Load() {
			<-s.sem
			s.reject(conn, wire.CodeShutdown, "server is shutting down")
			s.mRejectedDown.Inc()
			continue
		}
		s.wg.Add(1)
		go func(c net.Conn) {
			defer s.wg.Done()
			defer func() { <-s.sem }()
			s.serve(c)
		}(conn)
	}
}

// reject writes one typed error frame and closes the connection.
func (s *Server) reject(conn net.Conn, code wire.ErrCode, msg string) {
	conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	wire.WriteFrame(conn, wire.TError, wire.EncodeError(code, msg))
	conn.Close()
}

// serve runs one session: Hello handshake, then the request loop.
func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	// Accept-to-first-byte deadline: the handshake must arrive promptly.
	conn.SetReadDeadline(time.Now().Add(s.cfg.HelloTimeout))
	f, err := wire.ReadFrame(conn)
	if err != nil || f.Type != wire.THello {
		s.mAuthFailures.Inc()
		if err == nil {
			s.reject(conn, wire.CodeMalformed, fmt.Sprintf("expected Hello, got %v", f.Type))
		}
		return
	}
	hello, err := wire.DecodeHello(f.Payload)
	if err != nil {
		s.mAuthFailures.Inc()
		s.writeError(conn, err)
		return
	}
	if hello.Version != wire.ProtocolVersion {
		s.mAuthFailures.Inc()
		s.reject(conn, wire.CodeAuth, fmt.Sprintf("protocol version %d, server speaks %d",
			hello.Version, wire.ProtocolVersion))
		return
	}
	if s.cfg.Secret != "" && hello.Secret != s.cfg.Secret {
		s.mAuthFailures.Inc()
		s.reject(conn, wire.CodeAuth, "bad credentials")
		return
	}
	// The listener opens before deferred crash recovery finishes (see
	// engine.RecoverDeferred) so early clients get a typed, retryable
	// error — distinct from shutting_down, which means "go away".
	if s.db.Recovering() {
		s.reject(conn, wire.CodeRecovering, "database is recovering; retry shortly")
		s.mRejectedRecover.Inc()
		return
	}
	sess := &session{
		srv:   s,
		conn:  conn,
		id:    s.nextSID.Add(1),
		stmts: make(map[string]*engine.Stmt),
		txns:  make(map[string]*engine.TxnStmt),
	}
	s.mu.Lock()
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()
	s.mSessions.Inc()
	s.mActive.Add(1)
	defer func() {
		sess.closeStmts()
		s.mu.Lock()
		delete(s.sessions, sess)
		s.mu.Unlock()
		s.mActive.Add(-1)
	}()
	if err := wire.WriteFrame(conn, wire.THelloOK,
		wire.EncodeHelloOK(wire.HelloOK{ServerVersion: ServerVersion, SessionID: sess.id})); err != nil {
		return
	}
	sess.loop()
}

// writeError sends err as a typed error frame, mapping engine errors to
// wire codes; the session continues unless the transport itself failed.
func (s *Server) writeError(conn net.Conn, err error) error {
	code := wire.CodeQuery
	var we *wire.Error
	switch {
	case errors.As(err, &we):
		code = we.Code
	case errors.Is(err, context.DeadlineExceeded):
		code = wire.CodeTimeout
	case errors.Is(err, engine.ErrStmtClosed):
		code = wire.CodeUnknownStmt
	case errors.Is(err, engine.ErrRecovering):
		code = wire.CodeRecovering
	case errors.Is(err, txn.ErrWriteConflict):
		code = wire.CodeConflict
	}
	s.mRequestErrs.Inc()
	return wire.WriteFrame(conn, wire.TError, wire.EncodeError(code, err.Error()))
}

// Shutdown gracefully stops the server: new connections are rejected
// with a typed shutdown error, idle sessions are closed, and in-flight
// requests run to completion until ctx expires, at which point remaining
// connections are cut.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closing.Store(true)
	// Close idle sessions; busy ones finish their current request and
	// notice the flag before reading the next one.
	s.mu.Lock()
	for sess := range s.sessions {
		sess.interruptIfIdle()
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.waitSessions()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
	}
	// Stop the listener last so the drain window keeps rejecting with a
	// typed error rather than a connection refusal.
	s.ln.Close()
	s.wg.Wait()
	// Drain any connections still parked in the accept queue.
	for conn := range s.acceptCh {
		s.reject(conn, wire.CodeShutdown, "server is shutting down")
		s.mRejectedDown.Inc()
	}
	return err
}

// waitSessions blocks until no sessions remain.
func (s *Server) waitSessions() {
	for {
		s.mu.Lock()
		n := len(s.sessions)
		s.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}
