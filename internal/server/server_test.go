package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"microspec/internal/client"
	"microspec/internal/core"
	"microspec/internal/engine"
	"microspec/internal/types"
	"microspec/internal/wire"
)

// startServer brings up a server on loopback over a freshly seeded DB.
func startServer(t *testing.T, mut func(*Config)) (*Server, *engine.DB) {
	t.Helper()
	db := engine.Open(engine.Config{Routines: core.AllRoutines, PoolPages: 1024})
	seed(t, db)
	cfg := Config{Addr: "127.0.0.1:0", DB: db}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := Listen(cfg)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, db
}

func seed(t *testing.T, db *engine.DB) {
	t.Helper()
	stmts := []string{
		`create table kv (
			k integer not null,
			v varchar(32) not null,
			primary key (k))`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("seed %q: %v", s, err)
		}
	}
	for i := 0; i < 200; i++ {
		if _, err := db.Exec(fmt.Sprintf("insert into kv values (%d, 'val-%d')", i, i)); err != nil {
			t.Fatalf("seed insert: %v", err)
		}
	}
}

func TestQueryRoundTrip(t *testing.T) {
	srv, _ := startServer(t, nil)
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	res, err := c.Query("select v from kv where k = 42")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "val-42" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if len(res.Cols) != 1 || res.Cols[0].Name != "v" {
		t.Fatalf("cols = %v", res.Cols)
	}

	// DML and DDL through the same entry point.
	n, err := c.Exec("insert into kv values (1000, 'new')")
	if err != nil || n != 1 {
		t.Fatalf("Exec: n=%d err=%v", n, err)
	}
	res, err = c.Query("select count(*) from kv")
	if err != nil || res.Rows[0][0].Int64() != 201 {
		t.Fatalf("count after insert: %v %v", res, err)
	}

	// Query errors are in-band and do not kill the session.
	if _, err := c.Query("select nope from kv"); err == nil {
		t.Fatal("bad column accepted")
	}
	if _, err := c.Query("select k from kv where k = 0"); err != nil {
		t.Fatalf("session died after query error: %v", err)
	}
}

func TestPreparedOverWire(t *testing.T) {
	srv, db := startServer(t, nil)
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	st, err := c.Prepare("select v from kv where k = $1")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if st.NumParams != 1 || len(st.Cols) != 1 {
		t.Fatalf("NumParams=%d Cols=%v", st.NumParams, st.Cols)
	}
	bees := db.Module().Stats().QueryBees
	for i := 0; i < 25; i++ {
		res, err := st.Query(types.NewInt64(int64(i)))
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].Str() != fmt.Sprintf("val-%d", i) {
			t.Fatalf("i=%d rows=%v", i, res.Rows)
		}
	}
	if got := db.Module().Stats().QueryBees; got != bees {
		t.Fatalf("executes recompiled bees: %d -> %d", bees, got)
	}
	// EXPLAIN ANALYZE over the wire accumulates loops across executions.
	res, err := st.QueryAnalyze(types.NewInt64(3))
	if err != nil {
		t.Fatalf("QueryAnalyze: %v", err)
	}
	if !strings.Contains(res.Analyze, "loops=") {
		t.Fatalf("no analyze outline:\n%s", res.Analyze)
	}
	res, err = st.QueryAnalyze(types.NewInt64(4))
	if err != nil {
		t.Fatalf("QueryAnalyze: %v", err)
	}
	if !strings.Contains(res.Analyze, "loops=2") {
		t.Fatalf("loops did not accumulate:\n%s", res.Analyze)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := st.Query(types.NewInt64(1)); err == nil {
		t.Fatal("closed statement executed")
	}

	// Prepared DML.
	ins, err := c.Prepare("insert into kv values ($1, $2)")
	if err != nil {
		t.Fatalf("Prepare insert: %v", err)
	}
	if n, err := ins.Exec(types.NewInt64(5000), types.NewString("x")); err != nil || n != 1 {
		t.Fatalf("prepared insert: n=%d err=%v", n, err)
	}
}

func TestSessionSettings(t *testing.T) {
	srv, _ := startServer(t, nil)
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	for _, kv := range [][2]string{{"timeout_ms", "5000"}, {"workers", "2"}, {"batch", "off"}} {
		if err := c.Set(kv[0], kv[1]); err != nil {
			t.Fatalf("Set %v: %v", kv, err)
		}
	}
	if err := c.Set("bogus", "1"); err == nil {
		t.Fatal("unknown setting accepted")
	}
	if _, err := c.Query("select count(*) from kv"); err != nil {
		t.Fatalf("query after settings: %v", err)
	}
	// A tiny session timeout fires server-side and arrives as a typed
	// timeout error; the session survives.
	if err := c.Set("timeout_ms", "1"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	_, err = c.Query("select a.k from kv a, kv b, kv c where a.k = b.k and b.k = c.k")
	var we *wire.Error
	if err == nil {
		t.Skip("query finished inside 1ms; cannot observe timeout")
	}
	if !errors.As(err, &we) || we.Code != wire.CodeTimeout {
		t.Fatalf("expected timeout error, got %v", err)
	}
	if err := c.Set("timeout_ms", "0"); err != nil {
		t.Fatalf("session died after timeout: %v", err)
	}
}

func TestAuth(t *testing.T) {
	srv, _ := startServer(t, func(c *Config) { c.Secret = "hunter2" })
	if _, err := client.DialConfig(client.Config{Addr: srv.Addr().String(), Secret: "wrong"}); err == nil {
		t.Fatal("bad secret accepted")
	} else {
		var we *wire.Error
		if !errors.As(err, &we) || we.Code != wire.CodeAuth {
			t.Fatalf("expected auth error, got %v", err)
		}
	}
	c, err := client.DialConfig(client.Config{Addr: srv.Addr().String(), Secret: "hunter2"})
	if err != nil {
		t.Fatalf("good secret rejected: %v", err)
	}
	c.Close()
}

func TestAdmissionControl(t *testing.T) {
	srv, _ := startServer(t, func(c *Config) {
		c.MaxConns = 2
		c.AcceptBacklog = 1
	})
	addr := srv.Addr().String()
	// Fill both session slots.
	var held []*client.Conn
	for i := 0; i < 2; i++ {
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatalf("Dial %d: %v", i, err)
		}
		held = append(held, c)
	}
	// The next connection is pulled off the queue by the dispatcher, which
	// then blocks waiting for a session slot; the one after that parks in
	// the accept backlog. Both wait (no Hello answer yet), so dial them
	// raw. The connection after those is rejected with the typed busy
	// error.
	parked, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("park: %v", err)
	}
	defer parked.Close()
	time.Sleep(50 * time.Millisecond) // let the dispatcher pick it up
	queued, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("queue: %v", err)
	}
	defer queued.Close()
	time.Sleep(50 * time.Millisecond) // let it reach the queue
	_, err = client.Dial(addr)
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeBusy {
		t.Fatalf("expected server_busy, got %v", err)
	}
	// Freeing a slot lets the parked connection proceed.
	held[0].Close()
	if err := wire.WriteFrame(parked, wire.THello,
		wire.EncodeHello(wire.Hello{Version: wire.ProtocolVersion, User: "u"})); err != nil {
		t.Fatalf("parked hello: %v", err)
	}
	parked.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := wire.ReadFrame(parked)
	if err != nil || f.Type != wire.THelloOK {
		t.Fatalf("parked conn not admitted: %v %v", f.Type, err)
	}
	held[1].Close()
}

func TestGracefulShutdown(t *testing.T) {
	db := engine.Open(engine.Config{Routines: core.AllRoutines, PoolPages: 1024})
	seed(t, db)
	srv, err := Listen(Config{Addr: "127.0.0.1:0", DB: db})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	addr := srv.Addr().String()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	// Start a slow-ish query, then shut down while it runs: it must
	// complete, not be cut off.
	type qres struct {
		res *client.Result
		err error
	}
	ch := make(chan qres, 1)
	go func() {
		// A slow nested-loop triple join keeps the session busy through the
		// whole drain window.
		res, err := c.Query("select count(*) from kv a, kv b, kv c where a.k < b.k and b.k < c.k")
		ch <- qres{res, err}
	}()
	time.Sleep(50 * time.Millisecond)

	shCh := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shCh <- srv.Shutdown(ctx)
	}()
	time.Sleep(20 * time.Millisecond)

	// New connections during the drain get a typed rejection.
	_, err = client.Dial(addr)
	var we *wire.Error
	if !errors.As(err, &we) || (we.Code != wire.CodeShutdown && we.Code != wire.CodeBusy) {
		t.Fatalf("dial during drain: %v", err)
	}

	r := <-ch
	if r.err != nil {
		t.Fatalf("in-flight query cut off during drain: %v", r.err)
	}
	if want := int64(200 * 199 * 198 / 6); r.res.Rows[0][0].Int64() != want {
		t.Fatalf("in-flight result = %v, want %d", r.res.Rows, want)
	}
	if err := <-shCh; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestHelloTimeout(t *testing.T) {
	srv, _ := startServer(t, func(c *Config) { c.HelloTimeout = 100 * time.Millisecond })
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// Send nothing: the server must cut us off at the Hello deadline.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept a silent connection open past HelloTimeout")
	}
}

func TestIdleTimeout(t *testing.T) {
	srv, _ := startServer(t, func(c *Config) { c.IdleTimeout = 100 * time.Millisecond })
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.THello,
		wire.EncodeHello(wire.Hello{Version: wire.ProtocolVersion, User: "u"})); err != nil {
		t.Fatalf("hello: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if f, err := wire.ReadFrame(conn); err != nil || f.Type != wire.THelloOK {
		t.Fatalf("handshake: %v %v", f.Type, err)
	}
	// Go idle: the server reports the idle timeout and closes.
	f, err := wire.ReadFrame(conn)
	if err == nil {
		if f.Type != wire.TError {
			t.Fatalf("expected error frame, got %v", f.Type)
		}
		if we := wire.DecodeError(f.Payload); we.Code != wire.CodeTimeout {
			t.Fatalf("expected timeout, got %+v", we)
		}
	}
}

func TestMalformedFrame(t *testing.T) {
	srv, _ := startServer(t, nil)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// Garbage instead of a Hello frame: typed error, connection closed,
	// server stays up.
	conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	conn.Read(buf) // either an error frame or EOF; both fine
	// The listener survived.
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("server died after malformed frame: %v", err)
	}
	c.Close()
}

// TestConcurrentSessions is the concurrency audit: many sessions mixing
// PREPARE/EXECUTE, ad-hoc SELECTs, and DML over one shared DB. Run under
// -race in CI.
func TestConcurrentSessions(t *testing.T) {
	srv, db := startServer(t, func(c *Config) { c.MaxConns = 32 })
	addr := srv.Addr().String()
	const nSessions = 10
	const iters = 30

	var wg sync.WaitGroup
	errCh := make(chan error, nSessions)
	for s := 0; s < nSessions; s++ {
		wg.Add(1)
		go func(sid int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errCh <- fmt.Errorf("session %d dial: %w", sid, err)
				return
			}
			defer c.Close()
			st, err := c.Prepare("select v from kv where k = $1")
			if err != nil {
				errCh <- fmt.Errorf("session %d prepare: %w", sid, err)
				return
			}
			for i := 0; i < iters; i++ {
				switch i % 3 {
				case 0: // prepared point read
					k := (sid*31 + i) % 200
					res, err := st.Query(types.NewInt64(int64(k)))
					if err != nil {
						errCh <- fmt.Errorf("session %d execute: %w", sid, err)
						return
					}
					if len(res.Rows) != 1 || res.Rows[0][0].Str() != fmt.Sprintf("val-%d", k) {
						errCh <- fmt.Errorf("session %d: wrong row for k=%d: %v", sid, k, res.Rows)
						return
					}
				case 1: // ad-hoc aggregate
					if _, err := c.Query("select count(*) from kv where k < 100"); err != nil {
						errCh <- fmt.Errorf("session %d adhoc: %w", sid, err)
						return
					}
				case 2: // DML on a session-private key range
					k := 10000 + sid*1000 + i
					if _, err := c.Exec(fmt.Sprintf("insert into kv values (%d, 's%d')", k, sid)); err != nil {
						errCh <- fmt.Errorf("session %d insert: %w", sid, err)
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	snap := db.MetricsSnapshot()
	if snap.Counters["prepared.count"] < nSessions {
		t.Fatalf("prepared.count = %d, want >= %d", snap.Counters["prepared.count"], nSessions)
	}
	if snap.Gauges["server.sessions_active"] != 0 {
		// Sessions may still be tearing down; give them a moment.
		time.Sleep(100 * time.Millisecond)
		if g := db.MetricsSnapshot().Gauges["server.sessions_active"]; g != 0 {
			t.Fatalf("sessions_active = %d after all closed", g)
		}
	}
}
