package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"microspec/internal/client"
	"microspec/internal/trace"
)

// adminGet fetches one admin endpoint and returns the body.
func adminGet(t *testing.T, a *Admin, path string) []byte {
	t.Helper()
	resp, err := http.Get("http://" + a.Addr().String() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", path, err)
	}
	return body
}

func TestAdminEndToEndTraceAndBenefits(t *testing.T) {
	srv, db := startServer(t, nil)
	db.Tracer().Enable(1)
	admin, err := StartAdmin("127.0.0.1:0", db)
	if err != nil {
		t.Fatalf("StartAdmin: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		admin.Shutdown(ctx)
	})

	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	// A client-supplied trace ID must be honored, propagated through the
	// engine, and echoed back on Done.
	const wantID = 0xdeadbeefcafe
	c.TraceNext(wantID)
	res, err := c.Query("select k, v from kv where k < 50")
	if err != nil {
		t.Fatalf("traced Query: %v", err)
	}
	if res.TraceID != wantID {
		t.Fatalf("echoed TraceID = %x, want %x", res.TraceID, wantID)
	}

	// The span tree at /traces?id= must cover wire→parse→plan→exec.
	body := adminGet(t, admin, fmt.Sprintf("/traces?id=%x", wantID))
	var tp struct {
		Enabled bool           `json:"enabled"`
		Traces  []*trace.Trace `json:"traces"`
	}
	if err := json.Unmarshal(body, &tp); err != nil {
		t.Fatalf("/traces JSON: %v\n%s", err, body)
	}
	if !tp.Enabled || len(tp.Traces) != 1 {
		t.Fatalf("/traces?id= returned enabled=%v traces=%d", tp.Enabled, len(tp.Traces))
	}
	tr := tp.Traces[0]
	if tr.ID != wantID {
		t.Fatalf("trace ID = %x, want %x", tr.ID, wantID)
	}
	seen := map[string]bool{}
	for _, sp := range tr.Spans {
		seen[sp.Name] = true
	}
	for _, want := range []string{"wire.read", "wire.decode", "parse", "plan", "exec"} {
		if !seen[want] {
			t.Errorf("trace %x missing span %q (have %v)", wantID, want, tr.Spans)
		}
	}
	// Per-exec-node spans fold under exec for traced ad-hoc queries.
	var hasNode bool
	for name := range seen {
		if strings.HasPrefix(name, "exec.node.") {
			hasNode = true
		}
	}
	if !hasNode {
		t.Errorf("trace %x has no exec.node.* spans (have %v)", wantID, tr.Spans)
	}

	// /bees must attribute nonzero estimated savings to the scan bees the
	// query exercised.
	body = adminGet(t, admin, "/bees")
	var bp struct {
		Benefits []struct {
			Kind       string `json:"kind"`
			Name       string `json:"name"`
			Rows       int64  `json:"rows"`
			EstSavedNs int64  `json:"est_saved_ns"`
		} `json:"benefits"`
	}
	if err := json.Unmarshal(body, &bp); err != nil {
		t.Fatalf("/bees JSON: %v\n%s", err, body)
	}
	var saved int64
	for _, b := range bp.Benefits {
		saved += b.EstSavedNs
	}
	if saved <= 0 {
		t.Errorf("/bees benefits show no estimated savings: %s", body)
	}

	// /metrics must render Prometheus exposition including trace counters.
	promText := string(adminGet(t, admin, "/metrics"))
	for _, want := range []string{"# TYPE microspec_", "microspec_trace_started", "microspec_server_requests"} {
		if !strings.Contains(promText, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /slow responds even when empty.
	adminGet(t, admin, "/slow")

	// pprof index is wired on the private mux.
	adminGet(t, admin, "/debug/pprof/")
}

func TestAdminTraceToggle(t *testing.T) {
	_, db := startServer(t, nil)
	admin, err := StartAdmin("127.0.0.1:0", db)
	if err != nil {
		t.Fatalf("StartAdmin: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		admin.Shutdown(ctx)
	})

	if resp, err := http.Get("http://" + admin.Addr().String() + "/traces/enable"); err != nil {
		t.Fatalf("GET enable: %v", err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET enable status = %d, want 405", resp.StatusCode)
	}
	resp, err := http.Post("http://"+admin.Addr().String()+"/traces/enable?sample=4", "", nil)
	if err != nil {
		t.Fatalf("POST enable: %v", err)
	}
	resp.Body.Close()
	if !db.Tracer().Enabled() || db.Tracer().SampleN() != 4 {
		t.Fatalf("tracer enabled=%v sample=%d after POST enable", db.Tracer().Enabled(), db.Tracer().SampleN())
	}
	resp, err = http.Post("http://"+admin.Addr().String()+"/traces/disable", "", nil)
	if err != nil {
		t.Fatalf("POST disable: %v", err)
	}
	resp.Body.Close()
	if db.Tracer().Enabled() {
		t.Fatal("tracer still enabled after POST disable")
	}
}
