package server

import (
	"strings"
	"testing"

	"microspec/internal/client"
	"microspec/internal/types"
	"microspec/internal/wire"
)

// The ExecuteTxn frame fires a whole named transaction in one round
// trip: registration rides a Query frame carrying PREPARE TRANSACTION,
// then each ExecuteTxn binds parameters and runs the fused unit.
func TestExecuteTxnRoundTrip(t *testing.T) {
	srv, db := startServer(t, nil)
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	if err := c.PrepareTxn(`prepare transaction bump as begin;
		update kv set v = 'bumped' where k = $1;
		insert into kv values ($2, 'fresh');
		select v from kv where k = $1;
	commit`); err != nil {
		t.Fatalf("PrepareTxn: %v", err)
	}

	res, err := c.ExecuteTxn("bump", types.NewInt64(7), types.NewInt64(1007))
	if err != nil {
		t.Fatalf("ExecuteTxn: %v", err)
	}
	// 2 DML rows + 1 returned row.
	if res.Affected != 3 {
		t.Errorf("Affected = %d, want 3", res.Affected)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "bumped" {
		t.Errorf("rows = %v", res.Rows)
	}

	// The fused unit executed as a transaction bee.
	snap := db.MetricsSnapshot()
	if snap.Counters["txn_bee.executions"] != 1 {
		t.Errorf("txn_bee.executions = %d", snap.Counters["txn_bee.executions"])
	}

	// Unknown names get the typed unknown-statement error.
	if _, err := c.ExecuteTxn("nosuch"); err == nil {
		t.Error("unknown transaction succeeded")
	} else {
		var we *wire.Error
		if !asWireError(err, &we) || we.Code != wire.CodeUnknownStmt {
			t.Errorf("err = %v", err)
		}
	}

	// A body error rolls the whole unit back and the session continues:
	// insert a duplicate key so every statement's effect must vanish.
	if err := c.PrepareTxn(`prepare transaction dup as begin;
		update kv set v = 'poison' where k = 8;
		insert into kv values (8, 'dup');
	commit`); err != nil {
		t.Fatalf("PrepareTxn dup: %v", err)
	}
	if _, err := c.ExecuteTxn("dup"); err == nil {
		t.Error("duplicate insert committed")
	}
	r, err := c.Query("select v from kv where k = 8")
	if err != nil {
		t.Fatalf("Query after rollback: %v", err)
	}
	if len(r.Rows) != 1 || !strings.HasPrefix(r.Rows[0][0].Str(), "val-") {
		t.Errorf("k=8 after rollback = %v", r.Rows)
	}
}

func asWireError(err error, target **wire.Error) bool {
	we, ok := err.(*wire.Error)
	if ok {
		*target = we
	}
	return ok
}
