package server

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"microspec/internal/client"
	"microspec/internal/core"
	"microspec/internal/engine"
	"microspec/internal/storage/disk"
	"microspec/internal/wire"
)

// TestRecoveringRejectionAndRetry exercises the restart flow end to end:
// a durable DB crashes, the replacement opens its listener before replay
// finishes (engine.RecoverDeferred), early clients get the typed
// "recovering" error — distinct from shutting_down — and the driver's
// RetryRecovering backoff lands them on the recovered instance.
func TestRecoveringRejectionAndRetry(t *testing.T) {
	dm := disk.NewManager(disk.LatencyModel{})
	db := engine.Open(engine.Config{
		Routines:   core.AllRoutines,
		PoolPages:  256,
		Disk:       dm,
		Durability: engine.DurabilityConfig{WAL: true},
	})
	if _, err := db.Exec(`create table kv (k integer not null, primary key (k))`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := db.Exec(fmt.Sprintf("insert into kv values (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	db.SimulateCrash()

	rdb, finish := engine.RecoverDeferred(engine.Config{
		Routines:  core.AllRoutines,
		PoolPages: 256,
		Disk:      dm.Crash(0),
	})
	srv, err := Listen(Config{Addr: "127.0.0.1:0", DB: rdb})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := srv.Addr().String()

	// Without retry: the handshake is rejected with the typed code.
	if _, err := client.Dial(addr); !client.IsRecovering(err) {
		t.Fatalf("dial during recovery: %v, want recovering error", err)
	}
	var we *wire.Error
	if _, err := client.Dial(addr); err == nil {
		t.Fatal("dial during recovery succeeded")
	} else if ok := errors.As(err, &we); !ok || we.Code != wire.CodeRecovering {
		t.Fatalf("dial during recovery: code %v, want %q", err, wire.CodeRecovering)
	}

	// Finish replay shortly after the retrying dial starts.
	done := make(chan error, 1)
	go func() {
		time.Sleep(50 * time.Millisecond)
		done <- finish()
	}()

	c, err := client.DialConfig(client.Config{Addr: addr, RetryRecovering: 5 * time.Second})
	if err != nil {
		t.Fatalf("retrying dial: %v", err)
	}
	defer c.Close()
	if err := <-done; err != nil {
		t.Fatalf("recovery finish: %v", err)
	}
	res, err := c.Query("select count(*) from kv")
	if err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
	if n := res.Rows[0][0].Int64(); n != 25 {
		t.Fatalf("recovered %d rows, want 25", n)
	}
	if got := srv.mRejectedRecover.Load(); got < 2 {
		t.Fatalf("conns_rejected_recovering = %d, want >= 2", got)
	}
}
