package server

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"microspec/internal/core"
	"microspec/internal/engine"
	"microspec/internal/metrics"
	"microspec/internal/trace"
)

// Admin is the HTTP telemetry plane: a small listener, separate from the
// wire-protocol port, that exposes the engine's observability surfaces to
// curl and Prometheus scrapers. It serves:
//
//	/metrics      Prometheus text exposition of the metrics registry
//	/traces       JSON tail of the sampled trace ring (?n=, ?id=)
//	/bees         JSON bee cache + placement + quarantine + per-bee
//	              benefit attribution (estimated time saved per bee)
//	/advisor      JSON adaptive-advisor state: recent promote/demote
//	              decisions with reasons and the bee tier table; POST
//	              ?enabled=true|false toggles the decision loop
//	/slow         JSON slow-query log, trace IDs included
//	/debug/pprof  the standard Go profiler endpoints
//
// The plane is read-only with two exceptions: POST /traces/enable and
// /traces/disable toggle the sampler, and POST /advisor toggles the
// adaptive advisor — both so an operator can flip them on a live server
// without restarting it.
type Admin struct {
	db *engine.DB
	ln net.Listener
	hs *http.Server
}

// StartAdmin binds the admin plane on addr (e.g. "127.0.0.1:0") over db.
func StartAdmin(addr string, db *engine.DB) (*Admin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	a := &Admin{db: db, ln: ln}
	// A private mux: the admin plane must not inherit handlers other
	// packages registered on http.DefaultServeMux, and pprof's init()
	// registrations there must be re-registered here explicitly.
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/traces", a.handleTraces)
	mux.HandleFunc("/traces/enable", a.handleTraceEnable)
	mux.HandleFunc("/traces/disable", a.handleTraceDisable)
	mux.HandleFunc("/bees", a.handleBees)
	mux.HandleFunc("/advisor", a.handleAdvisor)
	mux.HandleFunc("/slow", a.handleSlow)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	a.hs = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go a.hs.Serve(ln)
	return a, nil
}

// Addr returns the bound admin address (useful with ":0").
func (a *Admin) Addr() net.Addr { return a.ln.Addr() }

// Shutdown stops the admin listener, letting in-flight scrapes finish.
func (a *Admin) Shutdown(ctx context.Context) error {
	return a.hs.Shutdown(ctx)
}

func (a *Admin) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.WritePrometheus(w, a.db.MetricsSnapshot())
}

// tracesPayload is the /traces response shape.
type tracesPayload struct {
	Enabled bool           `json:"enabled"`
	SampleN int64          `json:"sample_n"`
	Started int64          `json:"started"`
	Traces  []*trace.Trace `json:"traces"`
}

func (a *Admin) handleTraces(w http.ResponseWriter, r *http.Request) {
	tr := a.db.Tracer()
	p := tracesPayload{Enabled: tr.Enabled(), SampleN: tr.SampleN(), Started: tr.Started()}
	if idHex := r.URL.Query().Get("id"); idHex != "" {
		id, err := strconv.ParseUint(idHex, 16, 64)
		if err != nil {
			http.Error(w, "bad trace id (want hex)", http.StatusBadRequest)
			return
		}
		if t := tr.Find(id); t != nil {
			p.Traces = []*trace.Trace{t}
		} else {
			p.Traces = []*trace.Trace{}
		}
		writeJSON(w, p)
		return
	}
	n := 50
	if s := r.URL.Query().Get("n"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	p.Traces = tr.Recent(n)
	if p.Traces == nil {
		p.Traces = []*trace.Trace{}
	}
	writeJSON(w, p)
}

func (a *Admin) handleTraceEnable(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	n := 1
	if s := r.URL.Query().Get("sample"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	a.db.Tracer().Enable(n)
	writeJSON(w, map[string]any{"enabled": true, "sample_n": n})
}

func (a *Admin) handleTraceDisable(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	a.db.Tracer().Disable()
	writeJSON(w, map[string]any{"enabled": false})
}

// beesPayload is the /bees response shape: one scrape shows what bees
// exist, where they were placed, which are benched, and — the number the
// whole micro-specialization exercise is about — how much time each one
// is estimated to have saved versus the stock interpreted path.
type beesPayload struct {
	Routines  core.RoutineSet   `json:"routines"`
	Cache     core.CacheStats   `json:"cache"`
	Placement placementPayload  `json:"placement"`
	Entries   []core.CacheEntry `json:"entries"`
	Benefits  []core.BeeBenefit `json:"benefits"`
}

type placementPayload struct {
	Assigned          int   `json:"assigned"`
	Conflicts         int   `json:"conflicts"`
	ParallelSafePlans int64 `json:"parallel_safe_plans"`
}

func (a *Admin) handleBees(w http.ResponseWriter, r *http.Request) {
	mod := a.db.Module()
	assigned, conflicts := mod.Placement().Stats()
	writeJSON(w, beesPayload{
		Routines: mod.Routines(),
		Cache:    mod.Cache().Stats(),
		Placement: placementPayload{
			Assigned:          assigned,
			Conflicts:         conflicts,
			ParallelSafePlans: mod.Placement().ParallelSafePlans(),
		},
		Entries:  mod.CacheEntries(),
		Benefits: mod.BeeBenefits(),
	})
}

// handleAdvisor serves the adaptive advisor's state: GET returns recent
// promote/demote decisions with reasons plus the tier table; POST with
// ?enabled=true|false toggles the decision loop at runtime.
func (a *Admin) handleAdvisor(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		on, err := strconv.ParseBool(r.URL.Query().Get("enabled"))
		if err != nil {
			http.Error(w, "POST /advisor requires ?enabled=true|false", http.StatusBadRequest)
			return
		}
		a.db.SetAdvisorEnabled(on)
		writeJSON(w, map[string]any{"enabled": on})
	case http.MethodGet:
		writeJSON(w, a.db.Advisor().Snapshot())
	default:
		http.Error(w, "GET or POST required", http.StatusMethodNotAllowed)
	}
}

func (a *Admin) handleSlow(w http.ResponseWriter, r *http.Request) {
	slow := a.db.SlowQueries()
	if slow == nil {
		slow = []engine.SlowQuery{}
	}
	writeJSON(w, map[string]any{
		"threshold_ms": a.db.SlowQueryThreshold().Milliseconds(),
		"queries":      slow,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
