package expr

import (
	"fmt"

	"microspec/internal/profile"
	"microspec/internal/types"
)

// ArithOp is an arithmetic operator.
type ArithOp int

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

// String renders the operator.
func (o ArithOp) String() string { return [...]string{"+", "-", "*", "/"}[o] }

// Arith applies an arithmetic operator. Integer op integer yields int64;
// anything involving a float yields float64; date ± interval-days yields
// date (interval literals are lowered to IntervalConst by the planner).
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Eval implements Expr.
func (a *Arith) Eval(row Row, ctx *Ctx) types.Datum {
	ctx.Prof.Add(profile.CompExpr, profile.ExprNode)
	l := a.L.Eval(row, ctx)
	r := a.R.Eval(row, ctx)
	if l.IsNull() || r.IsNull() {
		return types.Null
	}
	return ApplyArith(a.Op, l, r)
}

// ApplyArith applies an arithmetic operator to two non-null datums.
func ApplyArith(op ArithOp, l, r types.Datum) types.Datum {
	// Date ± interval.
	if l.Kind() == types.KindDate && r.Kind() == types.KindInvalid {
		return types.Null
	}
	if l.Kind() == types.KindFloat64 || r.Kind() == types.KindFloat64 {
		lf, rf := l.Float64(), r.Float64()
		switch op {
		case Add:
			return types.NewFloat64(lf + rf)
		case Sub:
			return types.NewFloat64(lf - rf)
		case Mul:
			return types.NewFloat64(lf * rf)
		case Div:
			if rf == 0 {
				return types.Null
			}
			return types.NewFloat64(lf / rf)
		}
	}
	li, ri := l.Int64(), r.Int64()
	switch op {
	case Add:
		return types.NewInt64(li + ri)
	case Sub:
		return types.NewInt64(li - ri)
	case Mul:
		return types.NewInt64(li * ri)
	case Div:
		if ri == 0 {
			return types.Null
		}
		return types.NewInt64(li / ri)
	}
	return types.Null
}

// Type implements Expr.
func (a *Arith) Type() types.T {
	if a.L.Type().Kind == types.KindFloat64 || a.R.Type().Kind == types.KindFloat64 {
		return types.Float64
	}
	if a.L.Type().Kind == types.KindDate {
		return types.Date
	}
	return types.Int64
}

func (a *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

// DateArith adds or subtracts a constant interval from a date expression
// (SQL: date '1998-12-01' - interval '90' day).
type DateArith struct {
	Sub bool
	L   Expr
	Iv  types.Interval
}

// Eval implements Expr.
func (d *DateArith) Eval(row Row, ctx *Ctx) types.Datum {
	ctx.Prof.Add(profile.CompExpr, profile.ExprNode)
	l := d.L.Eval(row, ctx)
	if l.IsNull() {
		return types.Null
	}
	if d.Sub {
		return types.NewDate(types.SubInterval(l.DateDays(), d.Iv))
	}
	return types.NewDate(types.AddInterval(l.DateDays(), d.Iv))
}

// Type implements Expr.
func (d *DateArith) Type() types.T { return types.Date }

func (d *DateArith) String() string {
	op := "+"
	if d.Sub {
		op = "-"
	}
	return fmt.Sprintf("(%s %s interval '%dm%dd')", d.L, op, d.Iv.Months, d.Iv.Days)
}

// Neg negates a numeric expression.
type Neg struct{ Kid Expr }

// Eval implements Expr.
func (n *Neg) Eval(row Row, ctx *Ctx) types.Datum {
	ctx.Prof.Add(profile.CompExpr, profile.ExprNode)
	v := n.Kid.Eval(row, ctx)
	if v.IsNull() {
		return types.Null
	}
	if v.Kind() == types.KindFloat64 {
		return types.NewFloat64(-v.Float64())
	}
	return types.NewInt64(-v.Int64())
}

// Type implements Expr.
func (n *Neg) Type() types.T { return n.Kid.Type() }

func (n *Neg) String() string { return "(-" + n.Kid.String() + ")" }
