package expr

import (
	"fmt"

	"microspec/internal/profile"
	"microspec/internal/types"
)

// ParamSlots holds the bound parameter values of one prepared-statement
// execution. Param nodes keep a pointer to the statement's slots, so
// re-binding before each EXECUTE is a slice write — the expression tree
// and any query bees compiled from it are untouched.
type ParamSlots struct {
	Vals []types.Datum
}

// Param is a $n placeholder in a prepared statement. Idx is the 0-based
// slot index; the rendered form is the SQL-visible 1-based $n, which
// keeps bee cache keys identical across sessions preparing the same
// text.
type Param struct {
	Idx  int
	T    types.T
	Slot *ParamSlots
}

// Eval implements Expr.
func (p *Param) Eval(_ Row, ctx *Ctx) types.Datum {
	ctx.Prof.Add(profile.CompExpr, profile.ExprConst)
	return p.Slot.Vals[p.Idx]
}

// Type implements Expr.
func (p *Param) Type() types.T { return p.T }

func (p *Param) String() string { return fmt.Sprintf("$%d", p.Idx+1) }
