// Package expr implements scalar expressions and their generic interpreted
// evaluator — the analogue of PostgreSQL's FuncExprState evaluation that
// the paper's EVP query-bee routine specializes. Every Eval walks the tree
// with per-node dispatch and charges the interpreter's abstract
// instruction costs; the specialized alternative (internal/core's EVP)
// replaces qualifying trees with straight-line closures carrying baked
// attribute ordinals and constants.
package expr

import (
	"fmt"
	"strings"

	"microspec/internal/profile"
	"microspec/internal/types"
)

// Row is a flat tuple of datums; Var nodes index into it. Join nodes
// concatenate outer and inner rows before qual evaluation.
type Row = []types.Datum

// Ctx carries evaluation state: the profiler and correlated-subquery
// parameter rows (outer tuples bound by ordinal offset).
type Ctx struct {
	Prof *profile.Counters
	// OuterRows is a stack of outer rows for correlated subqueries; an
	// OuterVar at depth d reads OuterRows[len-1-d].
	OuterRows []Row
}

// PushOuter binds an outer row for the duration of a subquery evaluation.
func (c *Ctx) PushOuter(r Row) { c.OuterRows = append(c.OuterRows, r) }

// PopOuter removes the innermost outer row.
func (c *Ctx) PopOuter() { c.OuterRows = c.OuterRows[:len(c.OuterRows)-1] }

// Expr is a typed scalar expression.
type Expr interface {
	// Eval computes the expression over row. NULL propagates per SQL
	// semantics; boolean expressions return NULL for "unknown".
	Eval(row Row, ctx *Ctx) types.Datum
	// Type reports the static result type.
	Type() types.T
	// String renders the expression for plans and error messages.
	String() string
}

// Var references a column of the input row by ordinal.
type Var struct {
	Idx  int
	T    types.T
	Name string // for display only
}

// Eval implements Expr.
func (v *Var) Eval(row Row, ctx *Ctx) types.Datum {
	ctx.Prof.Add(profile.CompExpr, profile.ExprVar)
	return row[v.Idx]
}

// Type implements Expr.
func (v *Var) Type() types.T { return v.T }

func (v *Var) String() string {
	if v.Name != "" {
		return v.Name
	}
	return fmt.Sprintf("$%d", v.Idx)
}

// OuterVar references a column of an enclosing query's row (correlated
// subqueries). Depth 0 is the innermost enclosing query.
type OuterVar struct {
	Idx   int
	Depth int
	T     types.T
	Name  string
}

// Eval implements Expr.
func (v *OuterVar) Eval(row Row, ctx *Ctx) types.Datum {
	ctx.Prof.Add(profile.CompExpr, profile.ExprVar)
	outer := ctx.OuterRows[len(ctx.OuterRows)-1-v.Depth]
	return outer[v.Idx]
}

// Type implements Expr.
func (v *OuterVar) Type() types.T { return v.T }

func (v *OuterVar) String() string {
	if v.Name != "" {
		return "outer." + v.Name
	}
	return fmt.Sprintf("outer$%d", v.Idx)
}

// Const is a literal.
type Const struct {
	D types.Datum
	T types.T
}

// NewConst builds a constant of the datum's natural type.
func NewConst(d types.Datum) *Const {
	var t types.T
	switch d.Kind() {
	case types.KindInt32:
		t = types.Int32
	case types.KindInt64:
		t = types.Int64
	case types.KindFloat64:
		t = types.Float64
	case types.KindBool:
		t = types.Bool
	case types.KindDate:
		t = types.Date
	case types.KindChar:
		t = types.Char(len(d.Bytes()))
	case types.KindVarchar:
		t = types.Varchar(len(d.Bytes()))
	}
	return &Const{D: d, T: t}
}

// Eval implements Expr.
func (c *Const) Eval(_ Row, ctx *Ctx) types.Datum {
	ctx.Prof.Add(profile.CompExpr, profile.ExprConst)
	return c.D
}

// Type implements Expr.
func (c *Const) Type() types.T { return c.T }

func (c *Const) String() string {
	if c.D.Kind() == types.KindChar || c.D.Kind() == types.KindVarchar {
		return "'" + c.D.Str() + "'"
	}
	return c.D.String()
}

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String renders the operator.
func (o CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[o]
}

// Negate returns the complementary operator (NOT (a < b) == a >= b).
func (o CmpOp) Negate() CmpOp {
	return [...]CmpOp{NE, EQ, GE, GT, LE, LT}[o]
}

// Cmp compares two operands.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval implements Expr.
func (c *Cmp) Eval(row Row, ctx *Ctx) types.Datum {
	ctx.Prof.Add(profile.CompExpr, profile.ExprNode)
	l := c.L.Eval(row, ctx)
	r := c.R.Eval(row, ctx)
	if l.IsNull() || r.IsNull() {
		return types.Null
	}
	return types.NewBool(ApplyCmp(c.Op, l, r))
}

// ApplyCmp applies a comparison operator to two non-null datums.
func ApplyCmp(op CmpOp, l, r types.Datum) bool {
	v := l.Compare(r)
	switch op {
	case EQ:
		return v == 0
	case NE:
		return v != 0
	case LT:
		return v < 0
	case LE:
		return v <= 0
	case GT:
		return v > 0
	case GE:
		return v >= 0
	}
	return false
}

// Type implements Expr.
func (c *Cmp) Type() types.T { return types.Bool }

func (c *Cmp) String() string {
	return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R)
}

// And is an n-ary conjunction with SQL three-valued semantics.
type And struct{ Kids []Expr }

// Eval implements Expr.
func (a *And) Eval(row Row, ctx *Ctx) types.Datum {
	ctx.Prof.Add(profile.CompExpr, profile.ExprNode)
	sawNull := false
	for _, k := range a.Kids {
		v := k.Eval(row, ctx)
		if v.IsNull() {
			sawNull = true
			continue
		}
		if !v.Bool() {
			return types.NewBool(false)
		}
	}
	if sawNull {
		return types.Null
	}
	return types.NewBool(true)
}

// Type implements Expr.
func (a *And) Type() types.T { return types.Bool }

func (a *And) String() string { return nary("AND", a.Kids) }

// Or is an n-ary disjunction with SQL three-valued semantics.
type Or struct{ Kids []Expr }

// Eval implements Expr.
func (o *Or) Eval(row Row, ctx *Ctx) types.Datum {
	ctx.Prof.Add(profile.CompExpr, profile.ExprNode)
	sawNull := false
	for _, k := range o.Kids {
		v := k.Eval(row, ctx)
		if v.IsNull() {
			sawNull = true
			continue
		}
		if v.Bool() {
			return types.NewBool(true)
		}
	}
	if sawNull {
		return types.Null
	}
	return types.NewBool(false)
}

// Type implements Expr.
func (o *Or) Type() types.T { return types.Bool }

func (o *Or) String() string { return nary("OR", o.Kids) }

func nary(op string, kids []Expr) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = k.String()
	}
	return "(" + strings.Join(parts, " "+op+" ") + ")"
}

// Not negates a boolean expression.
type Not struct{ Kid Expr }

// Eval implements Expr.
func (n *Not) Eval(row Row, ctx *Ctx) types.Datum {
	ctx.Prof.Add(profile.CompExpr, profile.ExprNode)
	v := n.Kid.Eval(row, ctx)
	if v.IsNull() {
		return types.Null
	}
	return types.NewBool(!v.Bool())
}

// Type implements Expr.
func (n *Not) Type() types.T { return types.Bool }

func (n *Not) String() string { return "(NOT " + n.Kid.String() + ")" }

// IsNull tests a value for SQL NULL (IS NULL / IS NOT NULL via Not).
type IsNull struct{ Kid Expr }

// Eval implements Expr.
func (n *IsNull) Eval(row Row, ctx *Ctx) types.Datum {
	ctx.Prof.Add(profile.CompExpr, profile.ExprNode)
	return types.NewBool(n.Kid.Eval(row, ctx).IsNull())
}

// Type implements Expr.
func (n *IsNull) Type() types.T { return types.Bool }

func (n *IsNull) String() string { return "(" + n.Kid.String() + " IS NULL)" }
