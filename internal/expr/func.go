package expr

import (
	"fmt"
	"strings"

	"microspec/internal/profile"
	"microspec/internal/types"
)

// Like matches a string against a SQL LIKE pattern with % and _
// wildcards. The pattern is a constant (as in every TPC-H query), so it is
// pre-split at construction.
type Like struct {
	Kid     Expr
	Pattern string
	Negate  bool

	parts  []string // literal segments between % wildcards
	single []bool   // unused; kept for clarity of the matcher below
}

// NewLike builds a LIKE matcher for a constant pattern.
func NewLike(kid Expr, pattern string, negate bool) *Like {
	return &Like{Kid: kid, Pattern: pattern, Negate: negate}
}

// Eval implements Expr.
func (l *Like) Eval(row Row, ctx *Ctx) types.Datum {
	ctx.Prof.Add(profile.CompExpr, profile.ExprNode)
	v := l.Kid.Eval(row, ctx)
	if v.IsNull() {
		return types.Null
	}
	m := MatchLike(v.Str(), l.Pattern)
	if l.Negate {
		m = !m
	}
	return types.NewBool(m)
}

// MatchLike reports whether s matches the SQL LIKE pattern p
// (% = any run, _ = any single byte).
func MatchLike(s, p string) bool {
	// Iterative two-pointer matcher with backtracking on the last %.
	si, pi := 0, 0
	star, sBack := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			pi++
			sBack = si
		case star >= 0:
			pi = star + 1
			sBack++
			si = sBack
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// Type implements Expr.
func (l *Like) Type() types.T { return types.Bool }

func (l *Like) String() string {
	op := "LIKE"
	if l.Negate {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("(%s %s '%s')", l.Kid, op, l.Pattern)
}

// InList tests membership in a constant list (col IN ('a','b',...)).
type InList struct {
	Kid    Expr
	Items  []types.Datum
	Negate bool
}

// Eval implements Expr.
func (in *InList) Eval(row Row, ctx *Ctx) types.Datum {
	ctx.Prof.Add(profile.CompExpr, profile.ExprNode)
	v := in.Kid.Eval(row, ctx)
	if v.IsNull() {
		return types.Null
	}
	found := false
	for _, it := range in.Items {
		if v.Compare(it) == 0 {
			found = true
			break
		}
	}
	if in.Negate {
		found = !found
	}
	return types.NewBool(found)
}

// Type implements Expr.
func (in *InList) Type() types.T { return types.Bool }

func (in *InList) String() string {
	items := make([]string, len(in.Items))
	for i, it := range in.Items {
		items[i] = it.String()
	}
	op := "IN"
	if in.Negate {
		op = "NOT IN"
	}
	return fmt.Sprintf("(%s %s (%s))", in.Kid, op, strings.Join(items, ", "))
}

// Case is a searched CASE expression.
type Case struct {
	Whens []When
	Else  Expr // nil means ELSE NULL
	T     types.T
}

// When is one WHEN cond THEN result arm.
type When struct {
	Cond   Expr
	Result Expr
}

// Eval implements Expr.
func (c *Case) Eval(row Row, ctx *Ctx) types.Datum {
	ctx.Prof.Add(profile.CompExpr, profile.ExprNode)
	for _, w := range c.Whens {
		v := w.Cond.Eval(row, ctx)
		if !v.IsNull() && v.Bool() {
			return w.Result.Eval(row, ctx)
		}
	}
	if c.Else != nil {
		return c.Else.Eval(row, ctx)
	}
	return types.Null
}

// Type implements Expr.
func (c *Case) Type() types.T { return c.T }

func (c *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond, w.Result)
	}
	if c.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", c.Else)
	}
	b.WriteString(" END")
	return b.String()
}

// ExtractYear implements EXTRACT(YEAR FROM date).
type ExtractYear struct{ Kid Expr }

// Eval implements Expr.
func (e *ExtractYear) Eval(row Row, ctx *Ctx) types.Datum {
	ctx.Prof.Add(profile.CompExpr, profile.ExprNode)
	v := e.Kid.Eval(row, ctx)
	if v.IsNull() {
		return types.Null
	}
	return types.NewInt64(int64(types.DateYear(v.DateDays())))
}

// Type implements Expr.
func (e *ExtractYear) Type() types.T { return types.Int64 }

func (e *ExtractYear) String() string { return fmt.Sprintf("extract(year from %s)", e.Kid) }

// Substring implements SUBSTRING(s FROM start FOR length), 1-based.
type Substring struct {
	Kid         Expr
	Start, Span Expr
}

// Eval implements Expr.
func (s *Substring) Eval(row Row, ctx *Ctx) types.Datum {
	ctx.Prof.Add(profile.CompExpr, profile.ExprNode)
	v := s.Kid.Eval(row, ctx)
	if v.IsNull() {
		return types.Null
	}
	start := s.Start.Eval(row, ctx)
	span := s.Span.Eval(row, ctx)
	if start.IsNull() || span.IsNull() {
		return types.Null
	}
	str := v.Str()
	from := int(start.Int64()) - 1
	n := int(span.Int64())
	if from < 0 {
		n += from
		from = 0
	}
	if from >= len(str) || n <= 0 {
		return types.NewString("")
	}
	if from+n > len(str) {
		n = len(str) - from
	}
	return types.NewString(str[from : from+n])
}

// Type implements Expr.
func (s *Substring) Type() types.T { return types.Varchar(0) }

func (s *Substring) String() string {
	return fmt.Sprintf("substring(%s from %s for %s)", s.Kid, s.Start, s.Span)
}
