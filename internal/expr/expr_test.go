package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"microspec/internal/profile"
	"microspec/internal/types"
)

func evalB(t *testing.T, e Expr, row Row) (bool, bool) {
	t.Helper()
	v := e.Eval(row, &Ctx{})
	if v.IsNull() {
		return false, false
	}
	return v.Bool(), true
}

func i32(v int32) types.Datum  { return types.NewInt32(v) }
func str(s string) types.Datum { return types.NewString(s) }

func TestVarConst(t *testing.T) {
	row := Row{i32(10), str("x")}
	v := &Var{Idx: 0, T: types.Int32, Name: "a"}
	if got := v.Eval(row, &Ctx{}); got.Int32() != 10 {
		t.Errorf("var = %v", got)
	}
	c := NewConst(i32(5))
	if got := c.Eval(row, &Ctx{}); got.Int32() != 5 {
		t.Errorf("const = %v", got)
	}
	if c.Type() != types.Int32 {
		t.Errorf("const type = %v", c.Type())
	}
	if v.String() != "a" || NewConst(str("s")).String() != "'s'" {
		t.Error("display strings wrong")
	}
}

func TestCmpOperators(t *testing.T) {
	mk := func(op CmpOp, l, r int32) Expr {
		return &Cmp{Op: op, L: NewConst(i32(l)), R: NewConst(i32(r))}
	}
	cases := []struct {
		op   CmpOp
		l, r int32
		want bool
	}{
		{EQ, 1, 1, true}, {EQ, 1, 2, false},
		{NE, 1, 2, true}, {NE, 2, 2, false},
		{LT, 1, 2, true}, {LT, 2, 2, false},
		{LE, 2, 2, true}, {LE, 3, 2, false},
		{GT, 3, 2, true}, {GT, 2, 2, false},
		{GE, 2, 2, true}, {GE, 1, 2, false},
	}
	for _, c := range cases {
		got, ok := evalB(t, mk(c.op, c.l, c.r), nil)
		if !ok || got != c.want {
			t.Errorf("%d %s %d = %v (ok=%v)", c.l, c.op, c.r, got, ok)
		}
	}
}

func TestCmpNullPropagation(t *testing.T) {
	e := &Cmp{Op: EQ, L: NewConst(types.Null), R: NewConst(i32(1))}
	if _, ok := evalB(t, e, nil); ok {
		t.Error("NULL = 1 must be unknown")
	}
}

func TestCmpOpNegate(t *testing.T) {
	pairs := map[CmpOp]CmpOp{EQ: NE, NE: EQ, LT: GE, LE: GT, GT: LE, GE: LT}
	for op, want := range pairs {
		if op.Negate() != want {
			t.Errorf("%s.Negate() = %s, want %s", op, op.Negate(), want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	tru := NewConst(types.NewBool(true))
	fls := NewConst(types.NewBool(false))
	unk := NewConst(types.Null)

	// AND truth table highlights.
	if got, ok := evalB(t, &And{Kids: []Expr{tru, fls, unk}}, nil); !ok || got {
		t.Error("T AND F AND U must be false")
	}
	if _, ok := evalB(t, &And{Kids: []Expr{tru, unk}}, nil); ok {
		t.Error("T AND U must be unknown")
	}
	if got, ok := evalB(t, &And{Kids: []Expr{tru, tru}}, nil); !ok || !got {
		t.Error("T AND T must be true")
	}
	// OR.
	if got, ok := evalB(t, &Or{Kids: []Expr{fls, unk, tru}}, nil); !ok || !got {
		t.Error("F OR U OR T must be true")
	}
	if _, ok := evalB(t, &Or{Kids: []Expr{fls, unk}}, nil); ok {
		t.Error("F OR U must be unknown")
	}
	// NOT.
	if got, ok := evalB(t, &Not{Kid: fls}, nil); !ok || !got {
		t.Error("NOT F must be true")
	}
	if _, ok := evalB(t, &Not{Kid: unk}, nil); ok {
		t.Error("NOT U must be unknown")
	}
	// IS NULL.
	if got, ok := evalB(t, &IsNull{Kid: unk}, nil); !ok || !got {
		t.Error("U IS NULL must be true")
	}
}

func TestArith(t *testing.T) {
	cases := []struct {
		op   ArithOp
		l, r types.Datum
		want types.Datum
	}{
		{Add, i32(2), i32(3), types.NewInt64(5)},
		{Sub, i32(2), i32(3), types.NewInt64(-1)},
		{Mul, i32(4), i32(3), types.NewInt64(12)},
		{Div, i32(7), i32(2), types.NewInt64(3)},
		{Add, types.NewFloat64(1.5), i32(1), types.NewFloat64(2.5)},
		{Mul, types.NewFloat64(2), types.NewFloat64(0.5), types.NewFloat64(1)},
		{Div, types.NewFloat64(1), types.NewFloat64(4), types.NewFloat64(0.25)},
	}
	for _, c := range cases {
		e := &Arith{Op: c.op, L: NewConst(c.l), R: NewConst(c.r)}
		got := e.Eval(nil, &Ctx{})
		if got.Compare(c.want) != 0 {
			t.Errorf("%v %s %v = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
	// Division by zero yields NULL, not a crash.
	if got := (&Arith{Op: Div, L: NewConst(i32(1)), R: NewConst(i32(0))}).Eval(nil, &Ctx{}); !got.IsNull() {
		t.Error("x/0 must be NULL")
	}
	if got := (&Neg{Kid: NewConst(types.NewFloat64(2.5))}).Eval(nil, &Ctx{}); got.Float64() != -2.5 {
		t.Errorf("neg = %v", got)
	}
}

func TestDateArith(t *testing.T) {
	d := types.NewDate(types.MustParseDate("1998-12-01"))
	e := &DateArith{Sub: true, L: NewConst(d), Iv: types.Interval{Days: 90}}
	got := e.Eval(nil, &Ctx{})
	if types.FormatDate(got.DateDays()) != "1998-09-02" {
		t.Errorf("date - 90d = %v", got)
	}
	e2 := &DateArith{L: NewConst(d), Iv: types.Interval{Months: 1}}
	if types.FormatDate(e2.Eval(nil, &Ctx{}).DateDays()) != "1999-01-01" {
		t.Error("date + 1 month wrong")
	}
}

func TestMatchLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"forest green metallic", "%green%", true},
		{"forest blue", "%green%", false},
		{"green", "%green%", true},
		{"PROMO BURNISHED", "PROMO%", true},
		{"SMALL PROMO", "PROMO%", false},
		{"abc", "a_c", true},
		{"abbc", "a_c", false},
		{"", "%", true},
		{"", "_", false},
		{"MED BOX", "MED BOX", true},
		{"Customer%Complaints", "%Customer%Complaints%", true},
		{"special requests", "%special%requests%", true},
		{"unusual packages", "%special%requests%", false},
		{"aaa", "%a", true},
		{"aaa", "a%a%a%", true},
	}
	for _, c := range cases {
		if got := MatchLike(c.s, c.p); got != c.want {
			t.Errorf("MatchLike(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestLikeExprAndNegate(t *testing.T) {
	col := &Var{Idx: 0, T: types.Varchar(20)}
	row := Row{str("economy anodized")}
	if got, ok := evalB(t, NewLike(col, "%anodized%", false), row); !ok || !got {
		t.Error("LIKE must match")
	}
	if got, ok := evalB(t, NewLike(col, "%anodized%", true), row); !ok || got {
		t.Error("NOT LIKE must not match")
	}
	if _, ok := evalB(t, NewLike(col, "%", false), Row{types.Null}); ok {
		t.Error("NULL LIKE must be unknown")
	}
}

func TestInList(t *testing.T) {
	col := &Var{Idx: 0, T: types.Char(2)}
	in := &InList{Kid: col, Items: []types.Datum{str("41"), str("28")}}
	if got, _ := evalB(t, in, Row{types.NewChar("28")}); !got {
		t.Error("IN must match")
	}
	if got, _ := evalB(t, in, Row{types.NewChar("13")}); got {
		t.Error("IN must not match")
	}
	nin := &InList{Kid: col, Items: in.Items, Negate: true}
	if got, _ := evalB(t, nin, Row{types.NewChar("13")}); !got {
		t.Error("NOT IN must match")
	}
}

func TestCase(t *testing.T) {
	col := &Var{Idx: 0, T: types.Varchar(10)}
	c := &Case{
		Whens: []When{{
			Cond:   NewLike(col, "PROMO%", false),
			Result: NewConst(types.NewInt64(1)),
		}},
		Else: NewConst(types.NewInt64(0)),
		T:    types.Int64,
	}
	if got := c.Eval(Row{str("PROMO X")}, &Ctx{}); got.Int64() != 1 {
		t.Errorf("case then = %v", got)
	}
	if got := c.Eval(Row{str("OTHER")}, &Ctx{}); got.Int64() != 0 {
		t.Errorf("case else = %v", got)
	}
	noElse := &Case{Whens: c.Whens, T: types.Int64}
	if got := noElse.Eval(Row{str("OTHER")}, &Ctx{}); !got.IsNull() {
		t.Error("case without else must yield NULL")
	}
}

func TestExtractYearAndSubstring(t *testing.T) {
	d := NewConst(types.NewDate(types.MustParseDate("1997-03-15")))
	if got := (&ExtractYear{Kid: d}).Eval(nil, &Ctx{}); got.Int64() != 1997 {
		t.Errorf("extract year = %v", got)
	}
	s := &Substring{
		Kid:   NewConst(str("13-345-987")),
		Start: NewConst(types.NewInt64(1)),
		Span:  NewConst(types.NewInt64(2)),
	}
	if got := s.Eval(nil, &Ctx{}); got.Str() != "13" {
		t.Errorf("substring = %q", got.Str())
	}
	edge := &Substring{
		Kid:   NewConst(str("ab")),
		Start: NewConst(types.NewInt64(5)),
		Span:  NewConst(types.NewInt64(3)),
	}
	if got := edge.Eval(nil, &Ctx{}); got.Str() != "" {
		t.Errorf("out-of-range substring = %q", got.Str())
	}
}

func TestOuterVar(t *testing.T) {
	ctx := &Ctx{}
	ctx.PushOuter(Row{i32(99)})
	ov := &OuterVar{Idx: 0, Depth: 0, T: types.Int32}
	if got := ov.Eval(nil, ctx); got.Int32() != 99 {
		t.Errorf("outer var = %v", got)
	}
	ctx.PushOuter(Row{i32(1)})
	deep := &OuterVar{Idx: 0, Depth: 1, T: types.Int32}
	if got := deep.Eval(nil, ctx); got.Int32() != 99 {
		t.Errorf("depth-1 outer var = %v", got)
	}
	ctx.PopOuter()
	ctx.PopOuter()
	if len(ctx.OuterRows) != 0 {
		t.Error("outer stack not empty")
	}
}

func TestEvalChargesProfiler(t *testing.T) {
	prof := &profile.Counters{}
	e := &Cmp{Op: LE, L: &Var{Idx: 0, T: types.Int32}, R: NewConst(i32(45))}
	e.Eval(Row{i32(30)}, &Ctx{Prof: prof})
	want := int64(profile.ExprNode + profile.ExprVar + profile.ExprConst)
	if got := prof.Component(profile.CompExpr); got != want {
		t.Errorf("expr cost = %d, want %d", got, want)
	}
}

func TestStrings(t *testing.T) {
	e := &And{Kids: []Expr{
		&Cmp{Op: LE, L: &Var{Idx: 0, Name: "age", T: types.Int32}, R: NewConst(i32(45))},
		NewLike(&Var{Idx: 1, Name: "s", T: types.Varchar(4)}, "x%", false),
	}}
	s := e.String()
	for _, want := range []string{"age", "<=", "45", "LIKE", "AND"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

// Property: MatchLike with a pattern equal to the string (no wildcards)
// is string equality, and "%"+s+"%" always matches any superstring.
func TestMatchLikeProperties(t *testing.T) {
	sanitize := func(s string) string {
		return strings.Map(func(r rune) rune {
			if r == '%' || r == '_' {
				return 'x'
			}
			return r
		}, s)
	}
	err := quick.Check(func(a, b string) bool {
		a, b = sanitize(a), sanitize(b)
		if !MatchLike(a, a) {
			return false
		}
		return MatchLike(a+b, "%"+b) && MatchLike(a+b, a+"%") && MatchLike(a+b+a, "%"+b+"%")
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestArithTypeDerivation(t *testing.T) {
	iv := &Var{Idx: 0, T: types.Int32}
	fv := &Var{Idx: 1, T: types.Float64}
	dv := &Var{Idx: 2, T: types.Date}
	if (&Arith{Op: Add, L: iv, R: iv}).Type() != types.Int64 {
		t.Error("int+int must be int64")
	}
	if (&Arith{Op: Mul, L: iv, R: fv}).Type() != types.Float64 {
		t.Error("int*float must be float")
	}
	if (&Arith{Op: Sub, L: dv, R: iv}).Type() != types.Date {
		t.Error("date-int keeps date")
	}
	if (&DateArith{L: dv, Iv: types.Interval{Days: 1}}).Type() != types.Date {
		t.Error("date arith type")
	}
	if (&Neg{Kid: fv}).Type() != types.Float64 {
		t.Error("neg type")
	}
}

func TestMoreStrings(t *testing.T) {
	checks := map[string]interface{ String() string }{
		"(a IS NULL)":          &IsNull{Kid: &Var{Idx: 0, Name: "a"}},
		"(NOT (a IS NULL))":    &Not{Kid: &IsNull{Kid: &Var{Idx: 0, Name: "a"}}},
		"extract(year from d)": &ExtractYear{Kid: &Var{Idx: 0, Name: "d"}},
		"(-x)":                 &Neg{Kid: &Var{Idx: 0, Name: "x"}},
		"outer.c":              &OuterVar{Idx: 0, Name: "c"},
	}
	for want, e := range checks {
		if e == nil {
			continue
		}
		if got := e.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	c := &Case{Whens: []When{{Cond: NewConst(types.NewBool(true)), Result: NewConst(types.NewInt64(1))}},
		Else: NewConst(types.NewInt64(0)), T: types.Int64}
	if s := c.String(); !strings.Contains(s, "CASE WHEN") || !strings.Contains(s, "ELSE") {
		t.Errorf("case string: %s", s)
	}
	sub := &Substring{Kid: &Var{Idx: 0, Name: "s"}, Start: NewConst(types.NewInt64(1)), Span: NewConst(types.NewInt64(2))}
	if s := sub.String(); !strings.Contains(s, "substring(s from 1 for 2)") {
		t.Errorf("substring string: %s", s)
	}
	in := &InList{Kid: &Var{Idx: 0, Name: "m"}, Items: []types.Datum{types.NewString("A")}, Negate: true}
	if s := in.String(); !strings.Contains(s, "NOT IN") {
		t.Errorf("in string: %s", s)
	}
}

func TestSubstringNullPropagation(t *testing.T) {
	s := &Substring{Kid: NewConst(types.Null), Start: NewConst(types.NewInt64(1)), Span: NewConst(types.NewInt64(2))}
	if !s.Eval(nil, &Ctx{}).IsNull() {
		t.Error("substring of NULL must be NULL")
	}
	s2 := &Substring{Kid: NewConst(str("ab")), Start: NewConst(types.Null), Span: NewConst(types.NewInt64(2))}
	if !s2.Eval(nil, &Ctx{}).IsNull() {
		t.Error("substring with NULL start must be NULL")
	}
}

func TestExtractYearNull(t *testing.T) {
	e := &ExtractYear{Kid: NewConst(types.Null)}
	if !e.Eval(nil, &Ctx{}).IsNull() {
		t.Error("extract of NULL must be NULL")
	}
}

func TestDateArithNull(t *testing.T) {
	e := &DateArith{L: NewConst(types.Null), Iv: types.Interval{Days: 3}}
	if !e.Eval(nil, &Ctx{}).IsNull() {
		t.Error("date arith on NULL must be NULL")
	}
}
