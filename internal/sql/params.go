package sql

// MaxParam walks a statement and returns the highest $n placeholder index
// it contains (0 when the statement has no placeholders). Prepared
// statements use this to size their parameter slot array.
func MaxParam(s Statement) int {
	max := 0
	note := func(e Expr) {
		if p, ok := e.(*Placeholder); ok && p.Idx > max {
			max = p.Idx
		}
	}
	walkStmtExprs(s, note)
	return max
}

// walkStmtExprs visits every expression in a statement, including those
// nested in subqueries and CTEs.
func walkStmtExprs(s Statement, fn func(Expr)) {
	switch st := s.(type) {
	case *Select:
		walkSelectExprs(st, fn)
	case *Insert:
		for _, row := range st.Rows {
			for _, e := range row {
				walkExpr(e, fn)
			}
		}
	case *Update:
		for _, sc := range st.Set {
			walkExpr(sc.Expr, fn)
		}
		walkExpr(st.Where, fn)
	case *Delete:
		walkExpr(st.Where, fn)
	case *PrepareTxn:
		for _, sub := range st.Stmts {
			walkStmtExprs(sub, fn)
		}
	}
}

// WalkSelectSubqueries visits every subquery SELECT nested in sel's
// expressions (scalar, IN, EXISTS), at any depth. It does not visit sel
// itself or its FROM-clause derived tables.
func WalkSelectSubqueries(sel *Select, fn func(*Select)) {
	walkSelectExprs(sel, func(e Expr) {
		switch x := e.(type) {
		case *InExpr:
			if x.Sub != nil {
				fn(x.Sub)
			}
		case *ExistsExpr:
			if x.Sub != nil {
				fn(x.Sub)
			}
		case *SubqueryExpr:
			if x.Sel != nil {
				fn(x.Sel)
			}
		}
	})
}

func walkSelectExprs(sel *Select, fn func(Expr)) {
	if sel == nil {
		return
	}
	for _, cte := range sel.With {
		walkSelectExprs(cte.Sel, fn)
	}
	for _, it := range sel.Items {
		walkExpr(it.Expr, fn)
	}
	for _, tr := range sel.From {
		walkTableRefExprs(tr, fn)
	}
	walkExpr(sel.Where, fn)
	for _, e := range sel.GroupBy {
		walkExpr(e, fn)
	}
	walkExpr(sel.Having, fn)
	for _, oi := range sel.OrderBy {
		walkExpr(oi.Expr, fn)
	}
}

func walkTableRefExprs(tr TableRef, fn func(Expr)) {
	switch t := tr.(type) {
	case *SubqueryRef:
		walkSelectExprs(t.Sel, fn)
	case *JoinRef:
		walkTableRefExprs(t.Left, fn)
		walkTableRefExprs(t.Right, fn)
		walkExpr(t.On, fn)
	}
}

// walkExpr visits e and every expression nested under it.
func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *BinOp:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *UnOp:
		walkExpr(x.Kid, fn)
	case *FuncCall:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *CaseExpr:
		for _, w := range x.Whens {
			walkExpr(w.Cond, fn)
			walkExpr(w.Result, fn)
		}
		walkExpr(x.Else, fn)
	case *BetweenExpr:
		walkExpr(x.X, fn)
		walkExpr(x.Lo, fn)
		walkExpr(x.Hi, fn)
	case *InExpr:
		walkExpr(x.X, fn)
		for _, le := range x.List {
			walkExpr(le, fn)
		}
		walkSelectExprs(x.Sub, fn)
	case *ExistsExpr:
		walkSelectExprs(x.Sub, fn)
	case *SubqueryExpr:
		walkSelectExprs(x.Sel, fn)
	case *LikeExpr:
		walkExpr(x.X, fn)
	case *IsNullExpr:
		walkExpr(x.X, fn)
	case *ExtractExpr:
		walkExpr(x.X, fn)
	case *SubstringExpr:
		walkExpr(x.X, fn)
		walkExpr(x.From, fn)
		walkExpr(x.For, fn)
	}
}
