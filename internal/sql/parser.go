package sql

import (
	"fmt"
	"strconv"
	"strings"

	"microspec/internal/types"
)

// Parse parses one SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokOp, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("unexpected trailing input %q", p.cur().text)
	}
	return stmt, nil
}

// ParseSelect parses a statement and requires it to be a SELECT.
func ParseSelect(src string) (*Select, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*Select)
	if !ok {
		return nil, fmt.Errorf("sql: not a SELECT statement")
	}
	return sel, nil
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[p.pos+1] }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		t := p.cur()
		p.pos++
		return t, nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	line := 1
	col := 1
	for i := 0; i < p.cur().pos && i < len(p.src); i++ {
		if p.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("sql: %s (line %d, col %d)", fmt.Sprintf(format, args...), line, col)
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.at(tokKeyword, "select"), p.at(tokKeyword, "with"):
		return p.parseSelect()
	case p.at(tokKeyword, "create"):
		return p.parseCreate()
	case p.at(tokKeyword, "drop"):
		return p.parseDrop()
	case p.at(tokKeyword, "insert"):
		return p.parseInsert()
	case p.at(tokKeyword, "update"):
		return p.parseUpdate()
	case p.at(tokKeyword, "delete"):
		return p.parseDelete()
	case p.at(tokIdent, "prepare"):
		return p.parsePrepareTxn()
	default:
		return nil, p.errf("unexpected token %q at start of statement", p.cur().text)
	}
}

// parsePrepareTxn parses PREPARE TRANSACTION name AS BEGIN; stmt; ...;
// COMMIT. PREPARE, TRANSACTION, BEGIN, and COMMIT lex as identifiers
// (they are not reserved words), so they are matched by text here and
// remain usable as ordinary identifiers elsewhere.
func (p *parser) parsePrepareTxn() (Statement, error) {
	p.pos++ // prepare
	if !p.accept(tokIdent, "transaction") {
		return nil, p.errf("expected TRANSACTION after PREPARE")
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "as"); err != nil {
		return nil, err
	}
	if !p.accept(tokIdent, "begin") {
		return nil, p.errf("expected BEGIN after AS")
	}
	if _, err := p.expect(tokOp, ";"); err != nil {
		return nil, err
	}
	var stmts []Statement
	for {
		if p.accept(tokIdent, "commit") {
			break
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		switch st.(type) {
		case *Select, *Insert, *Update, *Delete:
		default:
			return nil, p.errf("PREPARE TRANSACTION bodies allow only SELECT/INSERT/UPDATE/DELETE")
		}
		stmts = append(stmts, st)
		if _, err := p.expect(tokOp, ";"); err != nil {
			return nil, err
		}
	}
	if len(stmts) == 0 {
		return nil, p.errf("PREPARE TRANSACTION body is empty")
	}
	return &PrepareTxn{Name: name, Stmts: stmts}, nil
}

// --- DDL ---

func (p *parser) parseCreate() (Statement, error) {
	p.pos++ // create
	unique := p.accept(tokKeyword, "unique")
	if p.accept(tokKeyword, "index") {
		return p.parseCreateIndex(unique)
	}
	if unique {
		return nil, p.errf("expected INDEX after UNIQUE")
	}
	if _, err := p.expect(tokKeyword, "table"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	for {
		if p.accept(tokKeyword, "primary") {
			if _, err := p.expect(tokKeyword, "key"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, "("); err != nil {
				return nil, err
			}
			for {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				ct.PKey = append(ct.PKey, col)
				if !p.accept(tokOp, ",") {
					break
				}
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.parseColDef()
			if err != nil {
				return nil, err
			}
			ct.Cols = append(ct.Cols, col)
		}
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *parser) parseColDef() (ColDef, error) {
	var cd ColDef
	name, err := p.ident()
	if err != nil {
		return cd, err
	}
	cd.Name = name
	cd.Type, err = p.parseType()
	if err != nil {
		return cd, err
	}
	for {
		switch {
		case p.accept(tokKeyword, "not"):
			if _, err := p.expect(tokKeyword, "null"); err != nil {
				return cd, err
			}
			cd.NotNull = true
		case p.accept(tokKeyword, "lowcard"):
			cd.LowCard = true
		default:
			return cd, nil
		}
	}
}

func (p *parser) parseType() (types.T, error) {
	t := p.cur()
	if t.kind != tokKeyword {
		return types.T{}, p.errf("expected type name, found %q", t.text)
	}
	p.pos++
	switch t.text {
	case "integer", "int":
		return types.Int32, nil
	case "bigint":
		return types.Int64, nil
	case "double":
		p.accept(tokKeyword, "precision")
		return types.Float64, nil
	case "boolean":
		return types.Bool, nil
	case "date":
		return types.Date, nil
	case "decimal", "numeric":
		// DECIMAL(p,s) is stored as float64 (DESIGN.md deviations).
		if p.accept(tokOp, "(") {
			if _, err := p.expect(tokNumber, ""); err != nil {
				return types.T{}, err
			}
			if p.accept(tokOp, ",") {
				if _, err := p.expect(tokNumber, ""); err != nil {
					return types.T{}, err
				}
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return types.T{}, err
			}
		}
		return types.Float64, nil
	case "char", "varchar":
		width := 1
		if p.accept(tokOp, "(") {
			n, err := p.expect(tokNumber, "")
			if err != nil {
				return types.T{}, err
			}
			width, err = strconv.Atoi(n.text)
			if err != nil || width < 1 {
				return types.T{}, p.errf("bad type width %q", n.text)
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return types.T{}, err
			}
		}
		if t.text == "char" {
			return types.Char(width), nil
		}
		return types.Varchar(width), nil
	default:
		return types.T{}, p.errf("unknown type %q", t.text)
	}
}

func (p *parser) parseCreateIndex(unique bool) (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "on"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	ci := &CreateIndex{Name: name, Table: table, Unique: unique}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		ci.Cols = append(ci.Cols, col)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return ci, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.pos++ // drop
	if _, err := p.expect(tokKeyword, "table"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name}, nil
}

// --- DML ---

func (p *parser) parseInsert() (Statement, error) {
	p.pos++ // insert
	if _, err := p.expect(tokKeyword, "into"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.accept(tokOp, "(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Cols = append(ins.Cols, col)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokKeyword, "values"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.pos++ // update
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "set"); err != nil {
		return nil, err
	}
	up := &Update{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, SetClause{Col: col, Expr: e})
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "where") {
		up.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return up, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.pos++ // delete
	if _, err := p.expect(tokKeyword, "from"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.accept(tokKeyword, "where") {
		var err error
		del.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return del, nil
}

// --- SELECT ---

func (p *parser) parseSelect() (*Select, error) {
	sel := &Select{Limit: -1}
	if p.accept(tokKeyword, "with") {
		for {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "as"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, "("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			sel.With = append(sel.With, CTE{Name: name, Sel: sub})
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokKeyword, "select"); err != nil {
		return nil, err
	}
	sel.Distinct = p.accept(tokKeyword, "distinct")
	p.accept(tokKeyword, "all")

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(tokOp, ",") {
			break
		}
	}

	if p.accept(tokKeyword, "from") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, ref)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "where") {
		var err error
		sel.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.accept(tokKeyword, "group") {
		if _, err := p.expect(tokKeyword, "by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "having") {
		var err error
		sel.Having, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.accept(tokKeyword, "order") {
		if _, err := p.expect(tokKeyword, "by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "desc") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "asc")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "limit") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		sel.Limit, err = strconv.ParseInt(n.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad limit %q", n.text)
		}
	}
	if p.accept(tokKeyword, "offset") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		sel.Offset, err = strconv.ParseInt(n.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad offset %q", n.text)
		}
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tokOp, "*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tokKeyword, "as") {
		alias, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.at(tokIdent, "") {
		item.Alias = p.cur().text
		p.pos++
	}
	return item, nil
}

// parseTableRef parses one FROM item with any chained explicit joins.
func (p *parser) parseTableRef() (TableRef, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var kind JoinKind
		switch {
		case p.accept(tokKeyword, "join"):
			kind = JoinInner
		case p.at(tokKeyword, "inner") && p.peek().text == "join":
			p.pos += 2 // inner join
			kind = JoinInner
		case p.at(tokKeyword, "left"):
			p.pos++
			p.accept(tokKeyword, "outer")
			if _, err := p.expect(tokKeyword, "join"); err != nil {
				return nil, err
			}
			kind = JoinLeft
		case p.at(tokKeyword, "cross"):
			p.pos++
			if _, err := p.expect(tokKeyword, "join"); err != nil {
				return nil, err
			}
			kind = JoinCross
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		j := &JoinRef{Left: left, Right: right, Type: kind}
		if kind != JoinCross {
			if _, err := p.expect(tokKeyword, "on"); err != nil {
				return nil, err
			}
			j.On, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		left = j
	}
}

func (p *parser) parseTablePrimary() (TableRef, error) {
	if p.accept(tokOp, "(") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		p.accept(tokKeyword, "as")
		alias, err := p.ident()
		if err != nil {
			return nil, p.errf("derived table requires an alias")
		}
		return &SubqueryRef{Sel: sub, Alias: alias}, nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	bt := &BaseTable{Name: name}
	if p.accept(tokKeyword, "as") {
		bt.Alias, err = p.ident()
		if err != nil {
			return nil, err
		}
	} else if p.at(tokIdent, "") {
		bt.Alias = p.cur().text
		p.pos++
	}
	return bt, nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind == tokIdent {
		p.pos++
		return t.text, nil
	}
	return "", p.errf("expected identifier, found %q", t.text)
}

// --- Expressions (precedence climbing) ---

// parseExpr parses an OR-level expression.
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: "or", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "and") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: "and", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.at(tokKeyword, "not") && !(p.peek().kind == tokKeyword && (p.peek().text == "exists" || p.peek().text == "in" || p.peek().text == "like" || p.peek().text == "between")) {
		p.pos++
		kid, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnOp{Op: "not", Kid: kid}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	if p.at(tokKeyword, "exists") || p.at(tokKeyword, "not") && p.peek().text == "exists" {
		not := p.accept(tokKeyword, "not")
		p.pos++ // exists
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return &ExistsExpr{Sub: sub, Not: not}, nil
	}

	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Postfix predicates: IN, BETWEEN, LIKE, IS NULL, comparisons.
	not := p.accept(tokKeyword, "not")
	switch {
	case p.accept(tokKeyword, "in"):
		return p.parseInTail(left, not)
	case p.accept(tokKeyword, "between"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: left, Lo: lo, Hi: hi, Not: not}, nil
	case p.accept(tokKeyword, "like"):
		pat, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		return &LikeExpr{X: left, Pattern: pat.text, Not: not}, nil
	case not:
		return nil, p.errf("expected IN, BETWEEN, or LIKE after NOT")
	case p.accept(tokKeyword, "is"):
		isNot := p.accept(tokKeyword, "not")
		if _, err := p.expect(tokKeyword, "null"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: left, Not: isNot}, nil
	}
	if p.at(tokOp, "") {
		switch p.cur().text {
		case "=", "<>", "<", "<=", ">", ">=":
			op := p.cur().text
			p.pos++
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinOp{Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseInTail(left Expr, not bool) (Expr, error) {
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	if p.at(tokKeyword, "select") || p.at(tokKeyword, "with") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return &InExpr{X: left, Sub: sub, Not: not}, nil
	}
	in := &InExpr{X: left, Not: not}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		in.List = append(in.List, e)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "+") || p.at(tokOp, "-") {
		op := p.cur().text
		p.pos++
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "*") || p.at(tokOp, "/") {
		op := p.cur().text
		p.pos++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokOp, "-") {
		kid, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnOp{Op: "-", Kid: kid}, nil
	}
	p.accept(tokOp, "+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		return &NumLit{Text: t.text, IsFloat: strings.Contains(t.text, ".")}, nil
	case t.kind == tokString:
		p.pos++
		return &StrLit{Val: t.text}, nil
	case t.kind == tokParam:
		p.pos++
		idx, err := strconv.Atoi(t.text)
		if err != nil || idx < 1 {
			return nil, p.errf("bad parameter $%s", t.text)
		}
		return &Placeholder{Idx: idx}, nil
	case t.kind == tokKeyword:
		return p.parseKeywordPrimary()
	case t.kind == tokIdent:
		// Function call or (qualified) identifier.
		if p.peek().kind == tokOp && p.peek().text == "(" {
			return p.parseFuncCall(t.text)
		}
		p.pos++
		parts := []string{t.text}
		for p.accept(tokOp, ".") {
			part, err := p.ident()
			if err != nil {
				return nil, err
			}
			parts = append(parts, part)
		}
		return &Ident{Parts: parts}, nil
	case t.kind == tokOp && t.text == "(":
		p.pos++
		if p.at(tokKeyword, "select") || p.at(tokKeyword, "with") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Sel: sub}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}

func (p *parser) parseKeywordPrimary() (Expr, error) {
	t := p.cur()
	switch t.text {
	case "null":
		p.pos++
		return &NullLit{}, nil
	case "true":
		p.pos++
		return &BoolLit{Val: true}, nil
	case "false":
		p.pos++
		return &BoolLit{Val: false}, nil
	case "date":
		p.pos++
		s, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		return &DateLit{Val: s.text}, nil
	case "interval":
		p.pos++
		s, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(strings.TrimSpace(s.text))
		if err != nil {
			return nil, p.errf("bad interval %q", s.text)
		}
		unit := p.cur()
		if unit.kind != tokKeyword || unit.text != "day" && unit.text != "month" && unit.text != "year" {
			return nil, p.errf("expected DAY, MONTH, or YEAR after interval")
		}
		p.pos++
		return &IntervalLit{N: n, Unit: unit.text}, nil
	case "case":
		p.pos++
		ce := &CaseExpr{}
		for p.accept(tokKeyword, "when") {
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "then"); err != nil {
				return nil, err
			}
			res, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ce.Whens = append(ce.Whens, WhenClause{Cond: cond, Result: res})
		}
		if len(ce.Whens) == 0 {
			return nil, p.errf("CASE requires at least one WHEN")
		}
		if p.accept(tokKeyword, "else") {
			var err error
			ce.Else, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokKeyword, "end"); err != nil {
			return nil, err
		}
		return ce, nil
	case "extract":
		p.pos++
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		field := p.cur()
		if field.kind != tokKeyword || field.text != "year" && field.text != "month" && field.text != "day" {
			return nil, p.errf("EXTRACT supports YEAR, MONTH, DAY")
		}
		p.pos++
		if _, err := p.expect(tokKeyword, "from"); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return &ExtractExpr{Field: field.text, X: x}, nil
	case "substring":
		p.pos++
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "from"); err != nil {
			return nil, err
		}
		from, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "for"); err != nil {
			return nil, err
		}
		span, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return &SubstringExpr{X: x, From: from, For: span}, nil
	case "count", "sum", "avg", "min", "max":
		p.pos++
		return p.parseFuncCall(t.text)
	}
	return nil, p.errf("unexpected keyword %q in expression", t.text)
}

// parseFuncCall parses name(...) where the name token has already been
// identified (and consumed for keywords, not yet for identifiers).
func (p *parser) parseFuncCall(name string) (Expr, error) {
	if p.cur().kind == tokIdent {
		p.pos++
	}
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	fc := &FuncCall{Name: name}
	if p.accept(tokOp, "*") {
		fc.Star = true
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	fc.Distinct = p.accept(tokKeyword, "distinct")
	if !p.at(tokOp, ")") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fc.Args = append(fc.Args, e)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return fc, nil
}
