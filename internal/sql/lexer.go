// Package sql implements the SQL front end: a lexer, an AST, and a
// recursive-descent parser for the dialect the TPC-H and TPC-C workloads
// need — SELECT with CTEs, derived tables, explicit joins, correlated
// subqueries, EXISTS/IN, CASE, LIKE, BETWEEN, EXTRACT, SUBSTRING, date and
// interval literals, GROUP BY/HAVING/ORDER BY/LIMIT, plus INSERT, UPDATE,
// DELETE, CREATE TABLE (with the paper's LOWCARD annotation clause),
// CREATE INDEX, and DROP TABLE.
package sql

import (
	"fmt"
	"strings"
)

// tokKind classifies tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp    // operators and punctuation
	tokParam // $n positional parameter; text is the digits
)

type token struct {
	kind tokKind
	text string // keywords lowercased; idents lowercased; strings unquoted
	pos  int
}

// keywords recognized by the lexer. Everything else alphanumeric is an
// identifier.
var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"having": true, "order": true, "limit": true, "offset": true, "as": true,
	"and": true, "or": true, "not": true, "in": true, "exists": true,
	"between": true, "like": true, "is": true, "null": true, "case": true,
	"when": true, "then": true, "else": true, "end": true, "asc": true,
	"desc": true, "distinct": true, "all": true, "join": true, "left": true,
	"right": true, "outer": true, "inner": true, "on": true, "cross": true,
	"date": true, "interval": true, "day": true, "month": true, "year": true,
	"extract": true, "substring": true, "for": true, "with": true,
	"insert": true, "into": true, "values": true, "update": true, "set": true,
	"delete": true, "create": true, "table": true, "index": true, "unique": true,
	"drop": true, "primary": true, "key": true, "lowcard": true, "true": true,
	"false": true, "semi": true, "anti": true,
	"integer": true, "int": true, "bigint": true, "char": true, "varchar": true,
	"decimal": true, "numeric": true, "double": true, "precision": true,
	"boolean": true, "count": true, "sum": true, "avg": true, "min": true,
	"max": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			l.pos++
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			word := strings.ToLower(l.src[start:l.pos])
			kind := tokIdent
			if keywords[word] {
				kind = tokKeyword
			}
			l.toks = append(l.toks, token{kind: kind, text: word, pos: start})
		case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			l.pos++
			seenDot := c == '.'
			for l.pos < len(l.src) {
				ch := l.src[l.pos]
				if isDigit(ch) {
					l.pos++
				} else if ch == '.' && !seenDot {
					seenDot = true
					l.pos++
				} else {
					break
				}
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
		case c == '\'':
			l.pos++
			var sb strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, fmt.Errorf("sql: unterminated string literal at %d", start)
				}
				ch := l.src[l.pos]
				if ch == '\'' {
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
						sb.WriteByte('\'')
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				sb.WriteByte(ch)
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
		case c == '$' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			// Positional parameter ($1, $2, ...) for prepared statements.
			l.pos++
			numStart := l.pos
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokParam, text: l.src[numStart:l.pos], pos: start})
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			op, n := l.scanOp()
			if n == 0 {
				return nil, fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
			}
			l.pos += n
			l.toks = append(l.toks, token{kind: tokOp, text: op, pos: start})
		}
	}
}

func (l *lexer) scanOp() (string, int) {
	rest := l.src[l.pos:]
	for _, op := range []string{"<=", ">=", "<>", "!=", "||"} {
		if strings.HasPrefix(rest, op) {
			if op == "!=" {
				return "<>", 2
			}
			return op, 2
		}
	}
	switch rest[0] {
	case '=', '<', '>', '(', ')', ',', '+', '-', '*', '/', ';', '.':
		return string(rest[0]), 1
	}
	return "", 0
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\n', '\r':
			l.pos++
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
