package sql

import "microspec/internal/types"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTable is CREATE TABLE with optional PRIMARY KEY and the paper's
// LOWCARD column annotation (the Annotation DDL of the bee architecture).
type CreateTable struct {
	Name string
	Cols []ColDef
	PKey []string
}

// ColDef is one column definition.
type ColDef struct {
	Name    string
	Type    types.T
	NotNull bool
	LowCard bool
}

// CreateIndex is CREATE [UNIQUE] INDEX name ON table (cols...).
type CreateIndex struct {
	Name   string
	Table  string
	Cols   []string
	Unique bool
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

// PrepareTxn is PREPARE TRANSACTION name AS BEGIN; stmt; ...; COMMIT —
// a named multi-statement transaction planned once as a single fused
// unit (a transaction bee). The body statements are restricted to
// SELECT/INSERT/UPDATE/DELETE and may carry $n placeholders sharing one
// parameter space across all statements.
type PrepareTxn struct {
	Name  string
	Stmts []Statement
}

// Insert is INSERT INTO table [(cols)] VALUES (...), (...).
type Insert struct {
	Table string
	Cols  []string
	Rows  [][]Expr
}

// Update is UPDATE table SET col = expr, ... [WHERE ...].
type Update struct {
	Table string
	Set   []SetClause
	Where Expr
}

// SetClause is one col = expr assignment.
type SetClause struct {
	Col  string
	Expr Expr
}

// Delete is DELETE FROM table [WHERE ...].
type Delete struct {
	Table string
	Where Expr
}

// Select is a full query block.
type Select struct {
	With     []CTE
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 = none
	Offset   int64
}

// CTE is one WITH name AS (select) entry.
type CTE struct {
	Name string
	Sel  *Select
}

// SelectItem is one output expression. Star items have Star set.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// OrderItem orders by an expression (possibly an output alias or 1-based
// ordinal).
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TableRef is a FROM-list item.
type TableRef interface{ tableRef() }

// BaseTable references a named relation (or CTE) with an optional alias.
type BaseTable struct {
	Name  string
	Alias string
}

// SubqueryRef is a derived table.
type SubqueryRef struct {
	Sel   *Select
	Alias string
}

// JoinRef is an explicit JOIN with an ON condition.
type JoinRef struct {
	Left, Right TableRef
	Type        JoinKind
	On          Expr
}

// JoinKind is the parsed join flavor.
type JoinKind int

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinCross
)

func (*BaseTable) tableRef()   {}
func (*SubqueryRef) tableRef() {}
func (*JoinRef) tableRef()     {}

func (*CreateTable) stmt() {}
func (*PrepareTxn) stmt()  {}
func (*CreateIndex) stmt() {}
func (*DropTable) stmt()   {}
func (*Insert) stmt()      {}
func (*Update) stmt()      {}
func (*Delete) stmt()      {}
func (*Select) stmt()      {}

// Expr is a parsed (untyped) expression.
type Expr interface{ expr() }

// Ident is a possibly-qualified column reference (a or a.b).
type Ident struct{ Parts []string }

// NumLit is a numeric literal.
type NumLit struct {
	Text    string
	IsFloat bool
}

// StrLit is a string literal.
type StrLit struct{ Val string }

// BoolLit is TRUE/FALSE.
type BoolLit struct{ Val bool }

// NullLit is NULL.
type NullLit struct{}

// DateLit is DATE 'yyyy-mm-dd'.
type DateLit struct{ Val string }

// IntervalLit is INTERVAL 'n' day|month|year.
type IntervalLit struct {
	N    int
	Unit string // "day", "month", "year"
}

// BinOp is a binary operator: comparison, arithmetic, AND, OR.
type BinOp struct {
	Op   string
	L, R Expr
}

// UnOp is NOT or unary minus.
type UnOp struct {
	Op  string
	Kid Expr
}

// FuncCall is an aggregate or scalar function call.
type FuncCall struct {
	Name     string
	Args     []Expr
	Distinct bool
	Star     bool // count(*)
}

// CaseExpr is a searched CASE.
type CaseExpr struct {
	Whens []WhenClause
	Else  Expr
}

// WhenClause is WHEN cond THEN result.
type WhenClause struct {
	Cond, Result Expr
}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

// InExpr is x [NOT] IN (list) or x [NOT] IN (subquery).
type InExpr struct {
	X    Expr
	List []Expr
	Sub  *Select
	Not  bool
}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Sub *Select
	Not bool
}

// SubqueryExpr is a scalar subquery.
type SubqueryExpr struct{ Sel *Select }

// LikeExpr is x [NOT] LIKE 'pattern'.
type LikeExpr struct {
	X       Expr
	Pattern string
	Not     bool
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// ExtractExpr is EXTRACT(field FROM x).
type ExtractExpr struct {
	Field string
	X     Expr
}

// SubstringExpr is SUBSTRING(x FROM a FOR b).
type SubstringExpr struct {
	X, From, For Expr
}

// Placeholder is a $n positional parameter in a prepared statement.
// Idx is 1-based, matching the SQL text.
type Placeholder struct{ Idx int }

func (*Ident) expr()         {}
func (*NumLit) expr()        {}
func (*StrLit) expr()        {}
func (*BoolLit) expr()       {}
func (*NullLit) expr()       {}
func (*DateLit) expr()       {}
func (*IntervalLit) expr()   {}
func (*BinOp) expr()         {}
func (*UnOp) expr()          {}
func (*FuncCall) expr()      {}
func (*CaseExpr) expr()      {}
func (*BetweenExpr) expr()   {}
func (*InExpr) expr()        {}
func (*ExistsExpr) expr()    {}
func (*SubqueryExpr) expr()  {}
func (*LikeExpr) expr()      {}
func (*IsNullExpr) expr()    {}
func (*ExtractExpr) expr()   {}
func (*SubstringExpr) expr() {}
func (*Placeholder) expr()   {}
