package sql

import (
	"testing"

	"microspec/internal/types"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func mustSelect(t *testing.T, src string) *Select {
	t.Helper()
	sel, err := ParseSelect(src)
	if err != nil {
		t.Fatalf("ParseSelect(%q): %v", src, err)
	}
	return sel
}

func TestParseCreateTable(t *testing.T) {
	ct := mustParse(t, `create table orders (
		o_orderkey integer not null,
		o_orderstatus char(1) not null lowcard,
		o_totalprice decimal(15,2) not null,
		o_comment varchar(79) not null,
		primary key (o_orderkey)
	)`).(*CreateTable)
	if ct.Name != "orders" || len(ct.Cols) != 4 {
		t.Fatalf("ct = %+v", ct)
	}
	if ct.Cols[0].Type != types.Int32 || !ct.Cols[0].NotNull {
		t.Errorf("col0 = %+v", ct.Cols[0])
	}
	if !ct.Cols[1].LowCard || ct.Cols[1].Type != types.Char(1) {
		t.Errorf("col1 = %+v", ct.Cols[1])
	}
	if ct.Cols[2].Type != types.Float64 {
		t.Errorf("decimal must map to float64: %+v", ct.Cols[2])
	}
	if ct.Cols[3].Type != types.Varchar(79) {
		t.Errorf("col3 = %+v", ct.Cols[3])
	}
	if len(ct.PKey) != 1 || ct.PKey[0] != "o_orderkey" {
		t.Errorf("pkey = %v", ct.PKey)
	}
}

func TestParseCreateIndexAndDrop(t *testing.T) {
	ci := mustParse(t, "create unique index pk_c on customer (c_w_id, c_d_id, c_id)").(*CreateIndex)
	if !ci.Unique || ci.Table != "customer" || len(ci.Cols) != 3 {
		t.Fatalf("ci = %+v", ci)
	}
	dt := mustParse(t, "drop table foo;").(*DropTable)
	if dt.Name != "foo" {
		t.Fatalf("dt = %+v", dt)
	}
}

func TestParseInsertUpdateDelete(t *testing.T) {
	ins := mustParse(t, "insert into t (a, b) values (1, 'x'), (2, 'y')").(*Insert)
	if ins.Table != "t" || len(ins.Cols) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("ins = %+v", ins)
	}
	up := mustParse(t, "update stock set s_quantity = s_quantity - 5, s_ytd = 0 where s_i_id = 7").(*Update)
	if up.Table != "stock" || len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("up = %+v", up)
	}
	del := mustParse(t, "delete from new_order where no_o_id = 3").(*Delete)
	if del.Table != "new_order" || del.Where == nil {
		t.Fatalf("del = %+v", del)
	}
}

func TestParseSimpleSelect(t *testing.T) {
	sel := mustSelect(t, "select o_comment from orders")
	if len(sel.Items) != 1 || len(sel.From) != 1 {
		t.Fatalf("sel = %+v", sel)
	}
	bt := sel.From[0].(*BaseTable)
	if bt.Name != "orders" {
		t.Errorf("from = %+v", bt)
	}
	id := sel.Items[0].Expr.(*Ident)
	if id.Parts[0] != "o_comment" {
		t.Errorf("item = %+v", id)
	}
}

func TestParseQ1Shape(t *testing.T) {
	sel := mustSelect(t, `
		select l_returnflag, l_linestatus,
			sum(l_quantity) as sum_qty,
			sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
			avg(l_discount) as avg_disc,
			count(*) as count_order
		from lineitem
		where l_shipdate <= date '1998-12-01' - interval '90' day
		group by l_returnflag, l_linestatus
		order by l_returnflag, l_linestatus`)
	if len(sel.Items) != 6 || len(sel.GroupBy) != 2 || len(sel.OrderBy) != 2 {
		t.Fatalf("q1 shape: items=%d groups=%d orders=%d", len(sel.Items), len(sel.GroupBy), len(sel.OrderBy))
	}
	if sel.Items[5].Alias != "count_order" {
		t.Errorf("alias = %q", sel.Items[5].Alias)
	}
	fc := sel.Items[5].Expr.(*FuncCall)
	if !fc.Star || fc.Name != "count" {
		t.Errorf("count(*) = %+v", fc)
	}
	// where: binop <= with date arithmetic on the right.
	w := sel.Where.(*BinOp)
	if w.Op != "<=" {
		t.Errorf("where op = %q", w.Op)
	}
	r := w.R.(*BinOp)
	if r.Op != "-" {
		t.Errorf("rhs = %+v", r)
	}
	if _, ok := r.L.(*DateLit); !ok {
		t.Errorf("date literal missing")
	}
	if iv, ok := r.R.(*IntervalLit); !ok || iv.N != 90 || iv.Unit != "day" {
		t.Errorf("interval = %+v", r.R)
	}
}

func TestParseSubqueriesAndExists(t *testing.T) {
	sel := mustSelect(t, `
		select o_orderpriority, count(*) as order_count
		from orders
		where o_orderdate >= date '1993-07-01'
		  and exists (
			select * from lineitem
			where l_orderkey = o_orderkey and l_commitdate < l_receiptdate
		  )
		group by o_orderpriority
		order by o_orderpriority`)
	and := sel.Where.(*BinOp)
	if and.Op != "and" {
		t.Fatalf("where = %+v", and)
	}
	ex, ok := and.R.(*ExistsExpr)
	if !ok || ex.Not {
		t.Fatalf("exists = %+v", and.R)
	}
	if len(ex.Sub.From) != 1 {
		t.Errorf("subquery from = %+v", ex.Sub.From)
	}
}

func TestParseNotExistsAndNotIn(t *testing.T) {
	sel := mustSelect(t, `select 1 from t where not exists (select 1 from u) and a not in (1, 2)`)
	and := sel.Where.(*BinOp)
	ne := and.L.(*ExistsExpr)
	if !ne.Not {
		t.Error("not exists lost negation")
	}
	ni := and.R.(*InExpr)
	if !ni.Not || len(ni.List) != 2 {
		t.Errorf("not in = %+v", ni)
	}
}

func TestParseInSubquery(t *testing.T) {
	sel := mustSelect(t, `select 1 from part where p_partkey in (select l_partkey from lineitem)`)
	in := sel.Where.(*InExpr)
	if in.Sub == nil || in.List != nil {
		t.Fatalf("in = %+v", in)
	}
}

func TestParseScalarSubqueryComparison(t *testing.T) {
	sel := mustSelect(t, `select 1 from lineitem, part
		where l_quantity < (select 0.2 * avg(l_quantity) from lineitem where l_partkey = p_partkey)`)
	and := sel.Where.(*BinOp)
	if and.Op != "<" {
		t.Fatalf("where = %+v", sel.Where)
	}
	sub := and.R.(*SubqueryExpr)
	mul := sub.Sel.Items[0].Expr.(*BinOp)
	if mul.Op != "*" {
		t.Errorf("scalar expr = %+v", mul)
	}
}

func TestParseCaseLikeBetween(t *testing.T) {
	sel := mustSelect(t, `
		select sum(case when p_type like 'PROMO%' then l_extendedprice else 0 end)
		from lineitem
		where l_quantity between 1 and 11 and p_name not like '%green%'`)
	cs := sel.Items[0].Expr.(*FuncCall).Args[0].(*CaseExpr)
	if len(cs.Whens) != 1 || cs.Else == nil {
		t.Fatalf("case = %+v", cs)
	}
	lk := cs.Whens[0].Cond.(*LikeExpr)
	if lk.Pattern != "PROMO%" || lk.Not {
		t.Errorf("like = %+v", lk)
	}
	and := sel.Where.(*BinOp)
	bw := and.L.(*BetweenExpr)
	if bw.Not {
		t.Errorf("between = %+v", bw)
	}
	nl := and.R.(*LikeExpr)
	if !nl.Not {
		t.Errorf("not like = %+v", nl)
	}
}

func TestParseJoinsExplicit(t *testing.T) {
	sel := mustSelect(t, `
		select c_custkey, count(o_orderkey)
		from customer left outer join orders
			on c_custkey = o_custkey and o_comment not like '%special%requests%'
		group by c_custkey`)
	j := sel.From[0].(*JoinRef)
	if j.Type != JoinLeft {
		t.Fatalf("join type = %v", j.Type)
	}
	on := j.On.(*BinOp)
	if on.Op != "and" {
		t.Errorf("on = %+v", on)
	}
}

func TestParseCTE(t *testing.T) {
	sel := mustSelect(t, `
		with revenue as (
			select l_suppkey as supplier_no, sum(l_extendedprice * (1 - l_discount)) as total_revenue
			from lineitem group by l_suppkey
		)
		select s_suppkey, total_revenue
		from supplier, revenue
		where s_suppkey = supplier_no
		  and total_revenue = (select max(total_revenue) from revenue)
		order by s_suppkey`)
	if len(sel.With) != 1 || sel.With[0].Name != "revenue" {
		t.Fatalf("with = %+v", sel.With)
	}
	if len(sel.From) != 2 {
		t.Errorf("from = %d", len(sel.From))
	}
}

func TestParseDerivedTable(t *testing.T) {
	sel := mustSelect(t, `
		select supp_nation, l_year, sum(volume) as revenue
		from (
			select n1.n_name as supp_nation, extract(year from l_shipdate) as l_year,
				l_extendedprice * (1 - l_discount) as volume
			from supplier, lineitem, nation n1
			where s_suppkey = l_suppkey and s_nationkey = n1.n_nationkey
		) as shipping
		group by supp_nation, l_year
		order by supp_nation, l_year`)
	sq := sel.From[0].(*SubqueryRef)
	if sq.Alias != "shipping" {
		t.Fatalf("alias = %q", sq.Alias)
	}
	inner := sq.Sel
	if len(inner.From) != 3 {
		t.Errorf("inner from = %d", len(inner.From))
	}
	bt := inner.From[2].(*BaseTable)
	if bt.Name != "nation" || bt.Alias != "n1" {
		t.Errorf("aliased table = %+v", bt)
	}
	ex := inner.Items[1].Expr.(*ExtractExpr)
	if ex.Field != "year" {
		t.Errorf("extract = %+v", ex)
	}
}

func TestParseSubstringAndHaving(t *testing.T) {
	sel := mustSelect(t, `
		select cntrycode, count(*) from (
			select substring(c_phone from 1 for 2) as cntrycode, c_acctbal from customer
			where substring(c_phone from 1 for 2) in ('13', '31')
		) as custsale
		group by cntrycode
		having count(*) > 5 and sum(c_acctbal) > 0
		order by cntrycode`)
	if sel.Having == nil {
		t.Fatal("having lost")
	}
	inner := sel.From[0].(*SubqueryRef).Sel
	ss := inner.Items[0].Expr.(*SubstringExpr)
	if ss.X == nil {
		t.Errorf("substring = %+v", ss)
	}
	in := inner.Where.(*InExpr)
	if len(in.List) != 2 {
		t.Errorf("in list = %+v", in)
	}
}

func TestParseDistinctLimitOffsetOrder(t *testing.T) {
	sel := mustSelect(t, "select distinct a from t order by a desc, b asc limit 10 offset 5")
	if !sel.Distinct || sel.Limit != 10 || sel.Offset != 5 {
		t.Fatalf("sel = %+v", sel)
	}
	if !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order = %+v", sel.OrderBy)
	}
}

func TestParseCountDistinct(t *testing.T) {
	sel := mustSelect(t, "select count(distinct ps_suppkey) from partsupp")
	fc := sel.Items[0].Expr.(*FuncCall)
	if !fc.Distinct || fc.Name != "count" {
		t.Fatalf("fc = %+v", fc)
	}
}

func TestParseOrGroups(t *testing.T) {
	sel := mustSelect(t, `select 1 from part, lineitem where
		(p_brand = 'Brand#12' and l_quantity between 1 and 11)
		or (p_brand = 'Brand#23' and l_quantity between 10 and 20)`)
	or := sel.Where.(*BinOp)
	if or.Op != "or" {
		t.Fatalf("top = %+v", or)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select from t",
		"select * from",
		"create table t",
		"create table t (a unknowntype)",
		"insert into t values",
		"select a from t where a like 5",
		"select 'unterminated from t",
		"select a from t group",
		"select a b c from t",
		"select (select 1 from t",
		"select a from (select b from u)", // derived table needs alias
		"update t set",
		"select interval 'x' day from t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) must fail", src)
		}
	}
}

func TestParseStringEscapes(t *testing.T) {
	sel := mustSelect(t, "select 'it''s' from t")
	sl := sel.Items[0].Expr.(*StrLit)
	if sl.Val != "it's" {
		t.Errorf("escaped string = %q", sl.Val)
	}
}

func TestParseComments(t *testing.T) {
	sel := mustSelect(t, "select a -- trailing comment\nfrom t")
	if len(sel.Items) != 1 {
		t.Fatal("comment handling broken")
	}
}

func TestParseQualifiedStarNotSupported(t *testing.T) {
	// plain * is supported; qualified t.* is not in this dialect.
	sel := mustSelect(t, "select * from t")
	if !sel.Items[0].Star {
		t.Error("star item lost")
	}
}
