package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a") != c {
		t.Fatal("Counter did not return the existing counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	// Nil receivers are no-ops so unwired metrics never panic.
	var nc *Counter
	nc.Inc()
	var ng *Gauge
	ng.Set(1)
	var nh *Histogram
	nh.Observe(time.Second)
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for i := 0; i < 90; i++ {
		h.Observe(800 * time.Nanosecond) // ≤1µs bucket
	}
	for i := 0; i < 9; i++ {
		h.Observe(3 * time.Millisecond) // ≤5ms bucket
	}
	h.Observe(time.Minute) // overflow bucket
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if got := s.Quantile(0.50); got != time.Microsecond {
		t.Fatalf("p50 = %v, want 1µs", got)
	}
	if got := s.Quantile(0.95); got != 5*time.Millisecond {
		t.Fatalf("p95 = %v, want 5ms", got)
	}
	// The overflow observation caps at the largest bound.
	if got := s.Quantile(1.0); got != 10*time.Second {
		t.Fatalf("p100 = %v, want 10s", got)
	}
	var n int64
	for _, b := range s.Buckets {
		n += b.N
	}
	if n != s.Count {
		t.Fatalf("bucket sum %d != count %d", n, s.Count)
	}
}

func TestSnapshotCollectorAndReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Histogram("h").Observe(time.Millisecond)
	r.RegisterCollector(func(s *Snapshot) {
		s.SetCounter("pulled.counter", 42)
		s.SetGauge("pulled.gauge", 7)
	})
	s := r.Snapshot()
	if s.Counters["c"] != 3 || s.Counters["pulled.counter"] != 42 || s.Gauges["pulled.gauge"] != 7 {
		t.Fatalf("snapshot = %+v", s)
	}
	if !strings.Contains(s.Format(), "pulled.counter") {
		t.Fatalf("Format missing collector value:\n%s", s.Format())
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot not JSON-serializable: %v", err)
	}
	r.Reset()
	s = r.Snapshot()
	if s.Counters["c"] != 0 || s.Histograms["h"].Count != 0 {
		t.Fatalf("Reset left values: %+v", s)
	}
	if s.Counters["pulled.counter"] != 42 {
		t.Fatal("collector-backed values should survive Reset")
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// creation races, recording races, snapshot-during-write races — and
// checks the totals. Run with -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("shared").Inc()
				r.Gauge("gauge").Set(int64(i))
				r.Histogram("lat").Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	if want := int64(goroutines * perG); s.Counters["shared"] != want {
		t.Fatalf("shared = %d, want %d", s.Counters["shared"], want)
	}
	if s.Histograms["lat"].Count != int64(goroutines*perG) {
		t.Fatalf("histogram count = %d", s.Histograms["lat"].Count)
	}
}
