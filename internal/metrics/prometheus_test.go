package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestQuantileEdgeCases(t *testing.T) {
	// Empty histogram: every quantile is zero.
	var empty HistogramSnapshot
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if empty.Mean() != 0 {
		t.Fatalf("empty Mean = %v, want 0", empty.Mean())
	}

	// Single bucket: every quantile lands in it, including the degenerate
	// q=0 (rank clamps to the first observation).
	var h Histogram
	h.Observe(3 * time.Microsecond) // ≤5µs bucket
	single := h.snapshot()
	if len(single.Buckets) != 1 {
		t.Fatalf("buckets = %+v, want one", single.Buckets)
	}
	for _, q := range []float64{0, 0.001, 0.5, 1} {
		if got := single.Quantile(q); got != 5*time.Microsecond {
			t.Fatalf("single-bucket Quantile(%v) = %v, want 5µs", q, got)
		}
	}

	// q=0 vs q=1 across two buckets: q=0 clamps to the first observation's
	// bucket, q=1 reaches the last.
	h.Observe(30 * time.Millisecond) // ≤50ms bucket
	two := h.snapshot()
	if got := two.Quantile(0); got != 5*time.Microsecond {
		t.Fatalf("Quantile(0) = %v, want 5µs", got)
	}
	if got := two.Quantile(1); got != 50*time.Millisecond {
		t.Fatalf("Quantile(1) = %v, want 50ms", got)
	}

	// Overflow-only histogram: quantiles cap at the largest bound.
	var o Histogram
	o.Observe(time.Hour)
	if got := o.snapshot().Quantile(0.5); got != 10*time.Second {
		t.Fatalf("overflow Quantile = %v, want 10s", got)
	}
}

func TestFormatIncludesBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	h.Observe(800 * time.Nanosecond)
	h.Observe(800 * time.Nanosecond)
	h.Observe(time.Minute)
	out := r.Snapshot().Format()
	if !strings.Contains(out, "buckets: le=1µs:2 le=+Inf:1") {
		t.Fatalf("Format missing bucket counts:\n%s", out)
	}
}

// TestWritePrometheusGolden pins the exposition format byte for byte: any
// accidental change to naming, ordering, bucket cumulation, or unit
// conversion shows up as a diff here.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("query.count").Add(12)
	r.Counter("advisor.promotions").Add(5)
	r.Counter("advisor.demotions").Add(2)
	r.Counter("txn_bee.executions").Add(9)
	r.Counter("txn_bee.fallbacks").Add(1)
	r.Counter("wal.fsyncs").Add(7)
	r.Counter("group_commit.batches").Add(4)
	r.Gauge("server.sessions_active").Set(3)
	h := r.Histogram("query.latency.bee")
	h.Observe(800 * time.Nanosecond)  // ≤1µs
	h.Observe(1500 * time.Nanosecond) // ≤2µs
	h.Observe(1500 * time.Nanosecond) // ≤2µs
	h.Observe(7 * time.Millisecond)   // ≤10ms
	h.Observe(time.Minute)            // +Inf

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	const golden = `# TYPE microspec_advisor_demotions counter
microspec_advisor_demotions 2
# TYPE microspec_advisor_promotions counter
microspec_advisor_promotions 5
# TYPE microspec_group_commit_batches counter
microspec_group_commit_batches 4
# TYPE microspec_query_count counter
microspec_query_count 12
# TYPE microspec_txn_bee_executions counter
microspec_txn_bee_executions 9
# TYPE microspec_txn_bee_fallbacks counter
microspec_txn_bee_fallbacks 1
# TYPE microspec_wal_fsyncs counter
microspec_wal_fsyncs 7
# TYPE microspec_server_sessions_active gauge
microspec_server_sessions_active 3
# TYPE microspec_query_latency_bee histogram
microspec_query_latency_bee_bucket{le="0.000001"} 1
microspec_query_latency_bee_bucket{le="0.000002"} 3
microspec_query_latency_bee_bucket{le="0.000005"} 3
microspec_query_latency_bee_bucket{le="0.00001"} 3
microspec_query_latency_bee_bucket{le="0.00002"} 3
microspec_query_latency_bee_bucket{le="0.00005"} 3
microspec_query_latency_bee_bucket{le="0.0001"} 3
microspec_query_latency_bee_bucket{le="0.0002"} 3
microspec_query_latency_bee_bucket{le="0.0005"} 3
microspec_query_latency_bee_bucket{le="0.001"} 3
microspec_query_latency_bee_bucket{le="0.002"} 3
microspec_query_latency_bee_bucket{le="0.005"} 3
microspec_query_latency_bee_bucket{le="0.01"} 4
microspec_query_latency_bee_bucket{le="0.02"} 4
microspec_query_latency_bee_bucket{le="0.05"} 4
microspec_query_latency_bee_bucket{le="0.1"} 4
microspec_query_latency_bee_bucket{le="0.2"} 4
microspec_query_latency_bee_bucket{le="0.5"} 4
microspec_query_latency_bee_bucket{le="1"} 4
microspec_query_latency_bee_bucket{le="2"} 4
microspec_query_latency_bee_bucket{le="5"} 4
microspec_query_latency_bee_bucket{le="10"} 4
microspec_query_latency_bee_bucket{le="+Inf"} 5
microspec_query_latency_bee_sum 60.0070038
microspec_query_latency_bee_count 5
`
	if got := b.String(); got != golden {
		t.Fatalf("prometheus exposition drifted:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"query.count":       "microspec_query_count",
		"exec.node.Sort":    "microspec_exec_node_Sort",
		"weird-name/1":      "microspec_weird_name_1",
		"buffer.hit%":       "microspec_buffer_hit_",
		"a b":               "microspec_a_b",
		"already_sane_name": "microspec_already_sane_name",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
