package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file renders a Snapshot in the Prometheus text exposition format
// (version 0.0.4), so the admin plane's /metrics endpoint can be scraped
// by any Prometheus-compatible collector without adding a dependency.
// Metric names are sanitized (dots become underscores) and prefixed with
// "microspec_"; histograms render the full cumulative bucket ladder with
// `le` labels in seconds, plus _sum and _count, per the convention.

// promPrefix namespaces every exported metric.
const promPrefix = "microspec_"

// promName sanitizes a registry metric name into a legal Prometheus
// metric name: [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(promPrefix) + len(name))
	b.WriteString(promPrefix)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promSeconds renders a nanosecond quantity as seconds, trimming
// trailing zeros so bucket labels stay stable and compact.
func promSeconds(ns int64) string {
	s := fmt.Sprintf("%.9f", float64(ns)/1e9)
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders s in the Prometheus text exposition format.
// Output is deterministic: metric families sorted by name, histograms
// rendering every defined bucket bound cumulatively.
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		// The snapshot stores only non-empty buckets; walk the full bound
		// ladder accumulating so the exposition is cumulative over every
		// defined bucket.
		var cum int64
		bi := 0
		for _, bound := range histBounds {
			if bi < len(h.Buckets) && h.Buckets[bi].Le == bound {
				cum += h.Buckets[bi].N
				bi++
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", pn, promSeconds(bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promSeconds(int64(h.Sum)), pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}
