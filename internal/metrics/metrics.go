// Package metrics is a lightweight, dependency-free registry of atomic
// counters, gauges, and fixed-bucket latency histograms — the engine's
// unified observability substrate. Hot paths hold *Counter / *Histogram
// pointers obtained once at construction; recording is a single atomic
// add with no allocation and no lock. Subsystems that already keep their
// own internal statistics (buffer pool, disk manager, bee module) are
// pulled in at snapshot time through registered collectors, so reading
// metrics never perturbs the paths being measured.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an instantaneous atomic value (set, not accumulated).
type Gauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBounds are the fixed histogram bucket upper bounds in nanoseconds:
// a 1-2-5 ladder from 1µs to 10s. The last implicit bucket is +Inf.
var histBounds = []int64{
	1e3, 2e3, 5e3, // 1µs 2µs 5µs
	1e4, 2e4, 5e4, // 10µs 20µs 50µs
	1e5, 2e5, 5e5, // 100µs 200µs 500µs
	1e6, 2e6, 5e6, // 1ms 2ms 5ms
	1e7, 2e7, 5e7, // 10ms 20ms 50ms
	1e8, 2e8, 5e8, // 100ms 200ms 500ms
	1e9, 2e9, 5e9, // 1s 2s 5s
	1e10, // 10s
}

// numBuckets includes the overflow (+Inf) bucket.
const numBuckets = 23 + 1

// Histogram is a fixed-bucket latency histogram. Observation is
// allocation-free: a linear probe over 23 bounds plus two atomic adds.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := 0
	for i < len(histBounds) && ns > histBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     time.Duration `json:"sum_ns"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one non-empty bucket: observations ≤ Le nanoseconds
// (Le < 0 marks the overflow bucket).
type BucketCount struct {
	Le int64 `json:"le_ns"`
	N  int64 `json:"n"`
}

// Mean returns the average observed duration.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q ≤ 1):
// the bound of the bucket in which the q·count-th observation falls.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range s.Buckets {
		seen += b.N
		if seen >= rank {
			if b.Le < 0 {
				return time.Duration(histBounds[len(histBounds)-1])
			}
			return time.Duration(b.Le)
		}
	}
	return time.Duration(histBounds[len(histBounds)-1])
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: time.Duration(h.sum.Load())}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := int64(-1)
		if i < len(histBounds) {
			le = histBounds[i]
		}
		s.Buckets = append(s.Buckets, BucketCount{Le: le, N: n})
	}
	return s
}

// Snapshot is a point-in-time copy of every metric, JSON-serializable for
// benchmark trajectories and dashboards.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// SetCounter records a counter value in the snapshot (collector API).
func (s *Snapshot) SetCounter(name string, v int64) { s.Counters[name] = v }

// SetGauge records a gauge value in the snapshot (collector API).
func (s *Snapshot) SetGauge(name string, v int64) { s.Gauges[name] = v }

// Format renders the snapshot as sorted "name value" lines; histograms
// show count, mean, and estimated p50/p95/p99, followed by an indented
// line of per-bucket counts so the text dump carries the same detail as
// the Prometheus exposition (see WritePrometheus).
func (s Snapshot) Format() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-44s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-44s %d\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "%-44s count=%d mean=%v p50=%v p95=%v p99=%v\n",
			n, h.Count, h.Mean().Round(time.Microsecond),
			h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
		if len(h.Buckets) > 0 {
			b.WriteString("    buckets:")
			for _, bk := range h.Buckets {
				if bk.Le < 0 {
					fmt.Fprintf(&b, " le=+Inf:%d", bk.N)
				} else {
					fmt.Fprintf(&b, " le=%v:%d", time.Duration(bk.Le), bk.N)
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Registry holds named metrics. Metric lookup takes a lock and may
// allocate; hot paths must look up once and keep the pointer.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	collectors []func(*Snapshot)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// RegisterCollector adds a callback run at every Snapshot, used to pull
// values from subsystems that keep their own internal statistics.
func (r *Registry) RegisterCollector(fn func(*Snapshot)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Snapshot copies every registered metric and runs the collectors.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Load()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Load()
	}
	for n, h := range r.histograms {
		s.Histograms[n] = h.snapshot()
	}
	collectors := make([]func(*Snapshot), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()
	for _, fn := range collectors {
		fn(&s)
	}
	return s
}

// Reset zeroes every counter and histogram (gauges and collector-backed
// values are instantaneous and are left to their sources).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, h := range r.histograms {
		h.reset()
	}
}
