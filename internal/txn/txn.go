// Package txn implements the transaction manager behind the engine's
// MVCC snapshot reads: monotonically increasing transaction IDs, a
// status table (in progress / committed / aborted), active-transaction
// sets for snapshot construction, and the visibility rule that heap
// readers apply to (xmin, xmax) version stamps. The design is
// deliberately minimal — there is no WAL yet, so commit and abort are
// pure in-memory status flips — but the interfaces are the ones a
// durability PR will extend rather than replace.
//
// Concurrency notes. IDs and statuses are read lock-free on every tuple
// visibility check, so the status table is a chunked array of atomics
// behind an atomic pointer (grown copy-on-append under the manager
// mutex; chunks are never moved once published). The manager mutex
// serializes only Begin/Commit/Abort bookkeeping and snapshot
// construction, none of which sit on the per-tuple read path. See
// docs/CONCURRENCY.md for how this slots under the engine's latches.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Status is the lifecycle state of a transaction ID.
type Status uint32

const (
	// StatusInProgress is the zero value so freshly grown status chunks
	// are correct without initialization.
	StatusInProgress Status = iota
	StatusCommitted
	StatusAborted
)

func (s Status) String() string {
	switch s {
	case StatusInProgress:
		return "in-progress"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("status(%d)", uint32(s))
	}
}

const (
	// None is the null transaction ID: an xmax of None means "never
	// deleted".
	None uint64 = 0
	// Frozen is a permanently committed ID stamped on bulk-loaded and
	// pre-MVCC tuples; it is visible to every snapshot and never appears
	// in an active set.
	Frozen uint64 = 1
)

// ErrWriteConflict is the typed error for first-updater-wins write-write
// conflicts: a transaction tried to delete or update a row version whose
// xmax was already stamped by a concurrent transaction that is not known
// to have aborted. Callers detect it with errors.Is.
var ErrWriteConflict = errors.New("write-write conflict")

// ConflictError carries the two transaction IDs involved in a
// write-write conflict. It unwraps to ErrWriteConflict.
type ConflictError struct {
	Mine   uint64 // the transaction that lost
	Theirs uint64 // the first updater, whose stamp stands
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("write-write conflict: txn %d lost to first updater %d", e.Mine, e.Theirs)
}

func (e *ConflictError) Unwrap() error { return ErrWriteConflict }

// Status chunks hold 4096 entries each; chunk pointers are stable once
// published so Status loads need no lock.
const (
	chunkBits = 12
	chunkSize = 1 << chunkBits
)

type statusChunk [chunkSize]atomic.Uint32

// Manager issues transaction IDs and tracks their status. One Manager
// serves one engine.DB.
type Manager struct {
	mu     sync.Mutex
	next   uint64               // last issued ID; first Begin returns Frozen+1
	active map[uint64]struct{}  // IDs begun but neither committed nor aborted
	snaps  map[*Snapshot]uint64 // registered read snapshots → their xmin
	table  atomic.Pointer[[]*statusChunk]

	started   atomic.Int64
	committed atomic.Int64
	aborted   atomic.Int64
}

// NewManager returns a Manager whose first Begin issues Frozen+1.
func NewManager() *Manager {
	m := &Manager{
		next:   Frozen,
		active: make(map[uint64]struct{}),
		snaps:  make(map[*Snapshot]uint64),
	}
	empty := []*statusChunk{}
	m.table.Store(&empty)
	return m
}

// slot returns the status cell for id, growing the table if needed.
// Growth happens under m.mu; reads are lock-free.
func (m *Manager) slot(id uint64) *atomic.Uint32 {
	idx := id - Frozen - 1 // first real ID maps to cell 0
	ci, off := int(idx>>chunkBits), idx&(chunkSize-1)
	chunks := *m.table.Load()
	if ci < len(chunks) {
		return &chunks[ci][off]
	}
	return nil
}

// Begin issues a new transaction ID in StatusInProgress.
func (m *Manager) Begin() uint64 {
	m.mu.Lock()
	m.next++
	id := m.next
	idx := id - Frozen - 1
	for chunks := *m.table.Load(); int(idx>>chunkBits) >= len(chunks); chunks = *m.table.Load() {
		grown := make([]*statusChunk, len(chunks)+1)
		copy(grown, chunks)
		grown[len(chunks)] = new(statusChunk)
		m.table.Store(&grown)
	}
	m.active[id] = struct{}{}
	m.mu.Unlock()
	m.started.Add(1)
	return id
}

// Commit marks id committed. The status flips before the ID leaves the
// active set, so a snapshot built mid-commit still treats the
// transaction as concurrent (invisible) — never as committed-and-active
// crossed the other way.
func (m *Manager) Commit(id uint64) {
	if id <= Frozen {
		return
	}
	m.slot(id).Store(uint32(StatusCommitted))
	m.mu.Lock()
	delete(m.active, id)
	m.mu.Unlock()
	m.committed.Add(1)
}

// Abort marks id aborted. The caller must have already undone the
// transaction's effects that other readers could observe without status
// checks (cleared xmax stamps on rows it deleted; stamped xmax on rows
// it inserted — see Heap.MarkAborted).
func (m *Manager) Abort(id uint64) {
	if id <= Frozen {
		return
	}
	m.slot(id).Store(uint32(StatusAborted))
	m.mu.Lock()
	delete(m.active, id)
	m.mu.Unlock()
	m.aborted.Add(1)
}

// Status returns the lifecycle state of id. Frozen (and None, which
// should not be queried) report committed.
func (m *Manager) Status(id uint64) Status {
	if id <= Frozen {
		return StatusCommitted
	}
	s := m.slot(id)
	if s == nil {
		return StatusInProgress // not yet issued from this table's view
	}
	return Status(s.Load())
}

// Snapshot constructs and registers a read snapshot. self is the
// caller's own transaction ID (None for read-only statements); a
// transaction always sees its own effects. Registered snapshots hold
// back the vacuum horizon until Release is called.
func (m *Manager) Snapshot(self uint64) *Snapshot {
	m.mu.Lock()
	s := &Snapshot{
		m:    m,
		self: self,
		xmax: m.next + 1,
	}
	if len(m.active) > 0 {
		s.active = make([]uint64, 0, len(m.active))
		for id := range m.active {
			s.active = append(s.active, id)
		}
		sortIDs(s.active)
		s.xmin = s.active[0]
	} else {
		s.xmin = s.xmax
	}
	m.snaps[s] = s.xmin
	m.mu.Unlock()
	return s
}

// Horizon returns the oldest transaction ID that any current or future
// snapshot could consider in-progress or invisible-by-recency. A
// committed deleter with xmax < Horizon() is visible as a deleter to
// everyone, so the deleted version is reclaimable by vacuum.
func (m *Manager) Horizon() uint64 {
	m.mu.Lock()
	h := m.next + 1
	for id := range m.active {
		if id < h {
			h = id
		}
	}
	for _, xmin := range m.snaps {
		if xmin < h {
			h = xmin
		}
	}
	m.mu.Unlock()
	return h
}

// Counters returns cumulative started/committed/aborted counts and the
// number of currently registered snapshots, for the metrics plane.
func (m *Manager) Counters() (started, committed, aborted, snapshots int64) {
	m.mu.Lock()
	snapshots = int64(len(m.snaps))
	m.mu.Unlock()
	return m.started.Load(), m.committed.Load(), m.aborted.Load(), snapshots
}

// Snapshot is a point-in-time view: transaction IDs < xmax and not in
// the active set at construction time are decided (committed or
// aborted); everything else is invisible. Snapshots are safe for
// concurrent use by parallel scan workers and must be Released exactly
// once so vacuum's horizon can advance.
type Snapshot struct {
	m      *Manager
	self   uint64
	xmin   uint64 // oldest active ID at construction (== xmax if none)
	xmax   uint64 // first unissued ID at construction
	active []uint64
	done   atomic.Bool
}

// Release unregisters the snapshot from the manager. Idempotent.
func (s *Snapshot) Release() {
	if s == nil || !s.done.CompareAndSwap(false, true) {
		return
	}
	s.m.mu.Lock()
	delete(s.m.snaps, s)
	s.m.mu.Unlock()
}

// Self returns the transaction ID the snapshot was built for (None for
// read-only statement snapshots).
func (s *Snapshot) Self() uint64 {
	if s == nil {
		return None
	}
	return s.self
}

// sees reports whether transaction x's effects are included in the
// snapshot: it is the caller itself, or it committed before the
// snapshot was taken.
func (s *Snapshot) sees(x uint64) bool {
	if x == Frozen {
		return true
	}
	if x == s.self && x != None {
		return true
	}
	if x >= s.xmax {
		return false
	}
	if s.inActive(x) {
		return false
	}
	return s.m.Status(x) == StatusCommitted
}

func (s *Snapshot) inActive(x uint64) bool {
	// The active set is small and sorted; binary search without
	// allocation.
	lo, hi := 0, len(s.active)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.active[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s.active) && s.active[lo] == x
}

// Visible applies the MVCC visibility rule to a version stamp: the
// inserting transaction must be seen, and the deleting transaction (if
// any) must not be. A nil snapshot means "latest committed" and is only
// sound when the caller has excluded in-flight writers (it reduces to
// xmax == None; see docs/CONCURRENCY.md for why aborted inserts are
// still filtered correctly: abort stamps xmax on them).
func (s *Snapshot) Visible(xmin, xmax uint64) bool {
	if s == nil {
		return xmax == None
	}
	if !s.sees(xmin) {
		return false
	}
	return xmax == None || !s.sees(xmax)
}

// sortIDs is an insertion sort: active sets are nearly always tiny and
// this avoids pulling in sort for a hot-ish path.
func sortIDs(ids []uint64) {
	for i := 1; i < len(ids); i++ {
		v := ids[i]
		j := i - 1
		for j >= 0 && ids[j] > v {
			ids[j+1] = ids[j]
			j--
		}
		ids[j+1] = v
	}
}
