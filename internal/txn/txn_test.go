package txn

import (
	"errors"
	"sync"
	"testing"
)

func TestIDsMonotonic(t *testing.T) {
	m := NewManager()
	prev := Frozen
	for i := 0; i < 10000; i++ {
		id := m.Begin()
		if id <= prev {
			t.Fatalf("id %d not greater than previous %d", id, prev)
		}
		prev = id
		m.Commit(id)
	}
	if got := m.Status(prev); got != StatusCommitted {
		t.Fatalf("status(%d) = %v, want committed", prev, got)
	}
}

func TestVisibilityBasics(t *testing.T) {
	m := NewManager()

	// A committed insert is visible to a later snapshot.
	w := m.Begin()
	m.Commit(w)
	s := m.Snapshot(None)
	defer s.Release()
	if !s.Visible(w, None) {
		t.Fatal("committed insert invisible")
	}
	if !s.Visible(Frozen, None) {
		t.Fatal("frozen insert invisible")
	}

	// An insert by a transaction still active at snapshot time is
	// invisible, even after it commits.
	w2 := m.Begin()
	s2 := m.Snapshot(None)
	defer s2.Release()
	if s2.Visible(w2, None) {
		t.Fatal("in-progress insert visible")
	}
	m.Commit(w2)
	if s2.Visible(w2, None) {
		t.Fatal("insert by txn active at snapshot time became visible after commit")
	}

	// An insert by a transaction that began after the snapshot is
	// invisible.
	w3 := m.Begin()
	m.Commit(w3)
	if s2.Visible(w3, None) {
		t.Fatal("future insert visible")
	}

	// An aborted insert is never visible.
	w4 := m.Begin()
	m.Abort(w4)
	s3 := m.Snapshot(None)
	defer s3.Release()
	if s3.Visible(w4, None) {
		t.Fatal("aborted insert visible")
	}
}

func TestVisibilityDeletes(t *testing.T) {
	m := NewManager()
	ins := m.Begin()
	m.Commit(ins)

	// Delete committed before the snapshot: row invisible.
	del := m.Begin()
	m.Commit(del)
	s := m.Snapshot(None)
	if s.Visible(ins, del) {
		t.Fatal("row deleted by committed txn still visible")
	}
	s.Release()

	// Delete still in progress at snapshot time: row visible, and stays
	// visible to that snapshot after the deleter commits.
	del2 := m.Begin()
	s2 := m.Snapshot(None)
	if !s2.Visible(ins, del2) {
		t.Fatal("row with in-progress deleter invisible")
	}
	m.Commit(del2)
	if !s2.Visible(ins, del2) {
		t.Fatal("snapshot saw a delete that committed after it was taken")
	}
	s2.Release()

	// Aborted delete: row visible.
	del3 := m.Begin()
	m.Abort(del3)
	s3 := m.Snapshot(None)
	if !s3.Visible(ins, del3) {
		t.Fatal("row with aborted deleter invisible")
	}
	s3.Release()
}

func TestOwnWrites(t *testing.T) {
	m := NewManager()
	me := m.Begin()
	s := m.Snapshot(me)
	defer s.Release()
	if !s.Visible(me, None) {
		t.Fatal("own insert invisible")
	}
	if s.Visible(me, me) {
		t.Fatal("own deleted row visible")
	}
	other := m.Begin()
	defer m.Abort(other)
	frozenRowDeletedByOther := s.Visible(Frozen, other)
	if !frozenRowDeletedByOther {
		t.Fatal("row deleted by concurrent in-progress txn should remain visible")
	}
}

func TestNilSnapshotIsLatest(t *testing.T) {
	var s *Snapshot
	if !s.Visible(Frozen, None) {
		t.Fatal("nil snapshot should see undeleted rows")
	}
	if s.Visible(Frozen, 42) {
		t.Fatal("nil snapshot should not see xmax-stamped rows")
	}
	s.Release() // must not panic
	if s.Self() != None {
		t.Fatal("nil snapshot self should be None")
	}
}

func TestHorizon(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	b := m.Begin()
	if h := m.Horizon(); h != a {
		t.Fatalf("horizon %d, want oldest active %d", h, a)
	}
	m.Commit(a)
	s := m.Snapshot(None) // xmin = b (still active)
	m.Commit(b)
	if h := m.Horizon(); h != b {
		t.Fatalf("horizon %d, want registered snapshot xmin %d", h, b)
	}
	s.Release()
	want := b + 1 // next unissued
	if h := m.Horizon(); h != want {
		t.Fatalf("horizon %d after release, want %d", h, want)
	}
}

func TestConflictError(t *testing.T) {
	err := &ConflictError{Mine: 7, Theirs: 5}
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatal("ConflictError does not unwrap to ErrWriteConflict")
	}
	if err.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestConcurrentBeginCommit(t *testing.T) {
	m := NewManager()
	const goroutines = 8
	const each = 2000
	var wg sync.WaitGroup
	ids := make([][]uint64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				id := m.Begin()
				ids[g] = append(ids[g], id)
				s := m.Snapshot(id)
				if !s.Visible(id, None) {
					panic("own write invisible")
				}
				s.Release()
				if i%3 == 0 {
					m.Abort(id)
				} else {
					m.Commit(id)
				}
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for g := range ids {
		for _, id := range ids[g] {
			if seen[id] {
				t.Fatalf("duplicate id %d", id)
			}
			seen[id] = true
			if st := m.Status(id); st == StatusInProgress {
				t.Fatalf("finished txn %d still in progress", id)
			}
		}
	}
	started, committed, aborted, snaps := m.Counters()
	if started != goroutines*each {
		t.Fatalf("started %d, want %d", started, goroutines*each)
	}
	if committed+aborted != started {
		t.Fatalf("committed %d + aborted %d != started %d", committed, aborted, started)
	}
	if snaps != 0 {
		t.Fatalf("%d snapshots leaked", snaps)
	}
}
