package trace

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDisabledTracerIsNil(t *testing.T) {
	tr := NewTracer()
	if a := tr.Start(0, "query", "select 1"); a != nil {
		t.Fatalf("disabled tracer produced an active trace")
	}
	// The whole nil-safe API must be callable on the not-sampled path.
	var a *Active
	sp := a.Span("parse")
	sp.End()
	sp.Note("x=%d", 1)
	child := sp.Child("k")
	child.End()
	a.SpanAt("wire.read", time.Now(), time.Millisecond)
	a.Finish(nil)
	if got := a.ID(); got != 0 {
		t.Fatalf("nil Active ID = %d, want 0", got)
	}
	var nilTracer *Tracer
	if nilTracer.Enabled() || nilTracer.Start(1, "q", "") != nil {
		t.Fatalf("nil tracer must behave as disabled")
	}
	if got := nilTracer.Recent(5); got != nil {
		t.Fatalf("nil tracer Recent = %v", got)
	}
}

func TestSpanTreeRecording(t *testing.T) {
	tr := NewTracer()
	tr.Enable(1)
	a := tr.Start(0, "query", "select count(*) from lineitem")
	if a == nil {
		t.Fatal("enabled tracer did not sample")
	}
	id := a.ID()
	if id == 0 {
		t.Fatal("sampled trace has zero ID")
	}
	parse := a.Span("parse")
	parse.End()
	ex := a.Span("exec")
	ex.Child("node").End()
	ex.ChildAt("exec.node.BatchSeqScan", 3*time.Millisecond, "rows=100")
	ex.Note("rows=%d", 100)
	ex.End()
	a.Finish(nil)

	got := tr.Recent(1)
	if len(got) != 1 {
		t.Fatalf("Recent = %d traces, want 1", len(got))
	}
	c := got[0]
	if c.ID != id || c.Kind != "query" {
		t.Fatalf("completed trace = %+v", c)
	}
	if len(c.Spans) != 4 {
		t.Fatalf("got %d spans, want 4: %+v", len(c.Spans), c.Spans)
	}
	byName := map[string]SpanData{}
	for _, s := range c.Spans {
		byName[s.Name] = s
	}
	if byName["parse"].Parent != -1 || byName["exec"].Parent != -1 {
		t.Fatalf("top-level spans must have parent -1: %+v", c.Spans)
	}
	execIdx := -1
	for i, s := range c.Spans {
		if s.Name == "exec" {
			execIdx = i
		}
	}
	if byName["node"].Parent != execIdx || byName["exec.node.BatchSeqScan"].Parent != execIdx {
		t.Fatalf("children must point at exec (%d): %+v", execIdx, c.Spans)
	}
	if byName["exec.node.BatchSeqScan"].Dur != 3*time.Millisecond {
		t.Fatalf("ChildAt duration lost: %+v", byName["exec.node.BatchSeqScan"])
	}
	if byName["exec"].Note != "rows=100" {
		t.Fatalf("span note lost: %+v", byName["exec"])
	}
	for _, s := range c.Spans {
		if s.Dur < 0 {
			t.Fatalf("span %q left unclosed duration: %+v", s.Name, s)
		}
	}
	if tr.Find(id) == nil {
		t.Fatalf("Find(%d) missed the completed trace", id)
	}
}

func TestSampling(t *testing.T) {
	tr := NewTracer()
	tr.Enable(10)
	sampled := 0
	for i := 0; i < 100; i++ {
		if a := tr.Start(0, "query", ""); a != nil {
			sampled++
			a.Finish(nil)
		}
	}
	if sampled != 10 {
		t.Fatalf("1-in-10 sampler took %d of 100", sampled)
	}
	// A client-supplied ID always opts in, regardless of the sampler.
	forced := 0
	for i := 0; i < 20; i++ {
		if a := tr.Start(uint64(1000+i), "query", ""); a != nil {
			forced++
			a.Finish(nil)
		}
	}
	if forced != 20 {
		t.Fatalf("client-supplied IDs sampled %d of 20", forced)
	}
}

func TestRingEvictionAndErr(t *testing.T) {
	tr := NewTracer()
	tr.Enable(1)
	for i := 0; i < RingSize+10; i++ {
		a := tr.Start(uint64(i+1), "query", "q")
		a.Finish(errors.New("boom"))
	}
	got := tr.Recent(0)
	if len(got) != RingSize {
		t.Fatalf("ring holds %d, want %d", len(got), RingSize)
	}
	if got[0].ID != uint64(RingSize+10) {
		t.Fatalf("most recent first: got ID %d", got[0].ID)
	}
	if got[0].Err != "boom" {
		t.Fatalf("error not recorded: %+v", got[0])
	}
	tr.Reset()
	if len(tr.Recent(0)) != 0 {
		t.Fatal("Reset left traces behind")
	}
}

func TestContextPropagation(t *testing.T) {
	tr := NewTracer()
	tr.Enable(1)
	a := tr.Start(0, "query", "")
	ctx := NewContext(context.Background(), a)
	if got := FromContext(ctx); got != a {
		t.Fatalf("FromContext = %p, want %p", got, a)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("background context carried a trace: %p", got)
	}
	if got := NewContext(context.Background(), nil); got != context.Background() {
		t.Fatal("NewContext(nil) must not allocate a new context")
	}
	var nilCtx context.Context
	if got := FromContext(nilCtx); got != nil {
		t.Fatal("FromContext(nil ctx) must be nil")
	}
}

// BenchmarkSpanDisabled measures the not-sampled hook cost: one Start
// returning nil plus nil-receiver span calls — the per-request price every
// untraced query pays.
func BenchmarkSpanDisabled(b *testing.B) {
	tr := NewTracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := tr.Start(0, "query", "q")
		sp := a.Span("parse")
		sp.End()
		sp = a.Span("exec")
		sp.End()
		a.Finish(nil)
	}
}
