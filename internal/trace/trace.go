// Package trace is the engine's allocation-lean request tracer. A Tracer
// decides per request whether to record (off by default; when on, a
// 1-in-N sampler or an explicit client-supplied trace ID opts a request
// in) and keeps the most recent completed traces in a fixed ring for the
// admin plane's /traces endpoint.
//
// The recording API is built around nil receivers: every method on
// *Active and *Span is safe to call on nil and does nothing, so the hot
// path of an unsampled request pays exactly one nil check per span site —
// no allocation, no atomics, no branches beyond the check. Only sampled
// requests allocate (one Active, one spans slice), which is what keeps
// the span hooks affordable inside the query path.
package trace

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// RingSize is how many completed traces the Tracer retains.
const RingSize = 256

// maxSpans bounds a single trace's span count so a pathological plan
// cannot grow one trace without bound.
const maxSpans = 512

// Tracer mints trace IDs, samples requests, and retains completed traces.
// The zero value is a disabled tracer; NewTracer returns one ready to be
// enabled.
type Tracer struct {
	enabled atomic.Bool
	sampleN atomic.Int64
	reqSeq  atomic.Uint64 // sampling counter
	idSeq   atomic.Uint64 // trace-ID minting
	idBase  uint64        // per-process salt so IDs differ across restarts

	mu      sync.Mutex
	ring    [RingSize]*Trace
	next, n int
	started atomic.Int64
	dropped atomic.Int64
}

// NewTracer returns a disabled tracer.
func NewTracer() *Tracer {
	return &Tracer{idBase: uint64(time.Now().UnixNano()) << 20}
}

// Enable turns tracing on, sampling one request in sampleN (sampleN ≤ 1
// traces every request). Requests carrying a client-supplied trace ID are
// always traced while enabled, regardless of the sampler.
func (t *Tracer) Enable(sampleN int) {
	if sampleN < 1 {
		sampleN = 1
	}
	t.sampleN.Store(int64(sampleN))
	t.enabled.Store(true)
}

// Disable turns tracing off. In-flight traces still finish.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Enabled reports whether tracing is on.
func (t *Tracer) Enabled() bool {
	if t == nil {
		return false
	}
	return t.enabled.Load()
}

// SampleN returns the current 1-in-N sampling rate.
func (t *Tracer) SampleN() int64 {
	if t == nil {
		return 0
	}
	if n := t.sampleN.Load(); n > 0 {
		return n
	}
	return 1
}

// NewID mints a trace ID: unique within the process and salted with the
// process start time so IDs from successive runs don't collide in logs.
func (t *Tracer) NewID() uint64 {
	if t == nil {
		return 0
	}
	return t.idBase ^ t.idSeq.Add(1)
}

// Started returns how many traces this tracer has begun recording.
func (t *Tracer) Started() int64 {
	if t == nil {
		return 0
	}
	return t.started.Load()
}

// Start begins recording one request when tracing is enabled and either
// the caller supplied a nonzero trace ID (client-driven correlation) or
// the 1-in-N sampler picks the request. It returns nil otherwise; every
// method on the returned *Active is nil-safe, so callers never branch.
func (t *Tracer) Start(id uint64, kind, detail string) *Active {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	if id == 0 {
		n := t.sampleN.Load()
		if n > 1 && t.reqSeq.Add(1)%uint64(n) != 0 {
			return nil
		}
		id = t.NewID()
	}
	t.started.Add(1)
	return &Active{
		tracer: t,
		id:     id,
		kind:   kind,
		detail: detail,
		start:  time.Now(),
		spans:  make([]SpanData, 0, 8),
	}
}

// record pushes a completed trace into the ring.
func (t *Tracer) record(tr *Trace) {
	t.mu.Lock()
	if t.n == RingSize {
		t.dropped.Add(1)
	}
	t.ring[t.next] = tr
	t.next = (t.next + 1) % RingSize
	if t.n < RingSize {
		t.n++
	}
	t.mu.Unlock()
}

// Recent returns up to n completed traces, most recent first (n ≤ 0
// returns all retained traces).
func (t *Tracer) Recent(n int) []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.n {
		n = t.n
	}
	out := make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, t.ring[(t.next-1-i+2*RingSize)%RingSize])
	}
	return out
}

// Find returns the retained trace with the given ID, or nil.
func (t *Tracer) Find(id uint64) *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 0; i < t.n; i++ {
		if tr := t.ring[(t.next-1-i+2*RingSize)%RingSize]; tr != nil && tr.ID == id {
			return tr
		}
	}
	return nil
}

// Reset drops all retained traces.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	for i := range t.ring {
		t.ring[i] = nil
	}
	t.next, t.n = 0, 0
	t.mu.Unlock()
}

// SpanData is one recorded span: a named interval inside a trace, with an
// optional parent (index into the trace's span slice; -1 = top level) and
// an optional free-form note.
type SpanData struct {
	Name   string        `json:"name"`
	Parent int           `json:"parent"`
	Start  time.Duration `json:"start_ns"` // offset from trace start
	Dur    time.Duration `json:"dur_ns"`
	Note   string        `json:"note,omitempty"`
}

// Trace is one completed, immutable request trace.
type Trace struct {
	ID     uint64        `json:"id"`
	Kind   string        `json:"kind"`   // "query", "execute", "stmt", ...
	Detail string        `json:"detail"` // SQL text or statement name
	Start  time.Time     `json:"start"`
	Total  time.Duration `json:"total_ns"`
	Err    string        `json:"error,omitempty"`
	Spans  []SpanData    `json:"spans"`
}

// IDString renders a trace ID the way logs print it.
func IDString(id uint64) string { return fmt.Sprintf("%016x", id) }

// Active is a trace being recorded. All methods are nil-safe: a nil
// *Active is the not-sampled case and every call on it is a no-op.
type Active struct {
	tracer *Tracer
	id     uint64
	kind   string
	detail string
	start  time.Time

	mu    sync.Mutex
	spans []SpanData
	done  bool
}

// ID returns the trace ID (0 on nil).
func (a *Active) ID() uint64 {
	if a == nil {
		return 0
	}
	return a.id
}

// push appends a span record and returns its index, or -1 when full.
func (a *Active) push(name string, parent int, start time.Duration) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.done || len(a.spans) >= maxSpans {
		return -1
	}
	a.spans = append(a.spans, SpanData{Name: name, Parent: parent, Start: start, Dur: -1})
	return len(a.spans) - 1
}

// Span opens a top-level span. End it with (*Span).End.
func (a *Active) Span(name string) *Span {
	if a == nil {
		return nil
	}
	now := time.Now()
	idx := a.push(name, -1, now.Sub(a.start))
	if idx < 0 {
		return nil
	}
	return &Span{a: a, idx: idx, start: now}
}

// SpanAt records an already-measured interval (e.g. the wire read that
// completed before the trace existed) as a top-level span.
func (a *Active) SpanAt(name string, start time.Time, d time.Duration) {
	if a == nil {
		return
	}
	off := start.Sub(a.start)
	idx := a.push(name, -1, off)
	if idx < 0 {
		return
	}
	a.mu.Lock()
	a.spans[idx].Dur = d
	a.mu.Unlock()
}

// Finish completes the trace and hands it to the tracer's ring. Spans
// still open are closed at the finish instant. Calling Finish twice is
// a no-op.
func (a *Active) Finish(err error) {
	if a == nil {
		return
	}
	now := time.Now()
	a.mu.Lock()
	if a.done {
		a.mu.Unlock()
		return
	}
	a.done = true
	spans := make([]SpanData, len(a.spans))
	copy(spans, a.spans)
	for i := range spans {
		if spans[i].Dur < 0 {
			spans[i].Dur = now.Sub(a.start) - spans[i].Start
		}
	}
	a.mu.Unlock()
	tr := &Trace{
		ID:     a.id,
		Kind:   a.kind,
		Detail: a.detail,
		Start:  a.start,
		Total:  now.Sub(a.start),
		Spans:  spans,
	}
	if err != nil {
		tr.Err = err.Error()
	}
	a.tracer.record(tr)
}

// Span is one open interval. Nil-safe like Active.
type Span struct {
	a     *Active
	idx   int
	start time.Time
}

// Child opens a sub-span of s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	now := time.Now()
	idx := s.a.push(name, s.idx, now.Sub(s.a.start))
	if idx < 0 {
		return nil
	}
	return &Span{a: s.a, idx: idx, start: now}
}

// ChildAt records an already-measured interval as a sub-span of s — the
// way per-exec-node timings gathered by the instrumentation decorators
// are folded into a trace after the run.
func (s *Span) ChildAt(name string, d time.Duration, note string) {
	if s == nil {
		return
	}
	idx := s.a.push(name, s.idx, s.start.Sub(s.a.start))
	if idx < 0 {
		return
	}
	s.a.mu.Lock()
	s.a.spans[idx].Dur = d
	s.a.spans[idx].Note = note
	s.a.mu.Unlock()
}

// End closes the span.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.a.mu.Lock()
	if s.idx < len(s.a.spans) && s.a.spans[s.idx].Dur < 0 {
		s.a.spans[s.idx].Dur = d
	}
	s.a.mu.Unlock()
}

// Note attaches a formatted note to the span (replacing any prior note).
func (s *Span) Note(format string, args ...any) {
	if s == nil {
		return
	}
	note := fmt.Sprintf(format, args...)
	s.a.mu.Lock()
	if s.idx < len(s.a.spans) {
		s.a.spans[s.idx].Note = note
	}
	s.a.mu.Unlock()
}

// --- context propagation ---

type ctxKey struct{}

// NewContext returns ctx carrying a. A nil a returns ctx unchanged, so
// unsampled requests never allocate a context value.
func NewContext(ctx context.Context, a *Active) context.Context {
	if a == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, a)
}

// FromContext returns the Active carried by ctx, or nil.
func FromContext(ctx context.Context) *Active {
	if ctx == nil {
		return nil
	}
	a, _ := ctx.Value(ctxKey{}).(*Active)
	return a
}
