package tpcc

import (
	"testing"

	"microspec/internal/core"
	"microspec/internal/engine"
)

// stateSummary captures the aggregate state every TPC-C transaction
// mutates, for equivalence checks between the fused and
// statement-at-a-time paths.
var stateQueries = []string{
	"select sum(d_next_o_id) from district",
	"select count(*) from orders",
	"select count(*) from new_order",
	"select count(*) from order_line",
	"select sum(s_order_cnt) from stock",
	"select sum(s_ytd) from stock",
	"select w_ytd from warehouse where w_id = 1",
	"select sum(d_ytd) from district",
	"select sum(c_balance) from customer",
	"select sum(c_payment_cnt) from customer",
	"select sum(c_delivery_cnt) from customer",
	"select count(*) from history",
	"select sum(o_carrier_id) from orders",
}

func stateSummary(t *testing.T, db *engine.DB) []string {
	t.Helper()
	out := make([]string, len(stateQueries))
	for i, q := range stateQueries {
		r, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		out[i] = r.Rows[0][0].String()
	}
	return out
}

func checkYtdInvariant(t *testing.T, db *engine.DB, label string) {
	t.Helper()
	w, err := db.Query("select w_ytd from warehouse where w_id = 1")
	if err != nil {
		t.Fatal(err)
	}
	d, err := db.Query("select sum(d_ytd) from district where d_w_id = 1")
	if err != nil {
		t.Fatal(err)
	}
	diff := w.Rows[0][0].Float64() - d.Rows[0][0].Float64()
	if diff > 1e-6 || diff < -1e-6 {
		t.Errorf("%s: w_ytd %v != sum(d_ytd) %v", label, w.Rows[0][0], d.Rows[0][0])
	}
}

func TestTxnBeesMatchStmtAtATime(t *testing.T) {
	// The same seeded transaction stream through the compiled
	// whole-transaction bees and through the statement-at-a-time path must
	// land the database in the identical state.
	var sums [2][]string
	for i, useBees := range []bool{false, true} {
		db := smallDB(t, core.AllRoutines)
		dr, err := NewDriver(db, SmallConfig(1), EqualMix, 99, nil)
		if err != nil {
			t.Fatal(err)
		}
		if useBees {
			if err := dr.Exec.EnableTxnBees(); err != nil {
				t.Fatal(err)
			}
		}
		st, err := dr.RunN(250)
		if err != nil {
			t.Fatal(err)
		}
		if st.Committed == 0 {
			t.Fatal("no transactions committed")
		}
		if useBees {
			if dr.Exec.Fallbacks != 0 {
				t.Errorf("unexpected fallbacks: %d", dr.Exec.Fallbacks)
			}
			snap := db.MetricsSnapshot()
			if snap.Counters["txn_bee.executions"] == 0 {
				t.Error("txn_bee.executions did not advance")
			}
			// Five bees registered, visible in the cache under kind "txn".
			beeRows := 0
			for _, e := range db.Module().CacheEntries() {
				if e.Kind == core.TxnBeeKind {
					beeRows++
				}
			}
			if beeRows != int(numTxnTypes) {
				t.Errorf("cache lists %d txn bees, want %d", beeRows, numTxnTypes)
			}
		}
		sums[i] = stateSummary(t, db)
		checkYtdInvariant(t, db, map[bool]string{false: "stmt", true: "bees"}[useBees])
	}
	for j := range sums[0] {
		if sums[0][j] != sums[1][j] {
			t.Errorf("%s: stmt %s, bees %s", stateQueries[j], sums[0][j], sums[1][j])
		}
	}
}

func TestTxnBeePanicQuarantinesAndFallsBack(t *testing.T) {
	// A bee that panics mid-workload is quarantined, and the very same
	// transaction retries statement-at-a-time: the final state matches a
	// run that never used bees at all.
	ref := smallDB(t, core.AllRoutines)
	refDr, err := NewDriver(ref, SmallConfig(1), EqualMix, 77, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refDr.RunN(150); err != nil {
		t.Fatal(err)
	}

	db := smallDB(t, core.AllRoutines)
	dr, err := NewDriver(db, SmallConfig(1), EqualMix, 77, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := dr.Exec.EnableTxnBees(); err != nil {
		t.Fatal(err)
	}
	// Warm up fused, then arm the failpoint mid-workload.
	if _, err := dr.RunN(50); err != nil {
		t.Fatal(err)
	}
	db.Module().InjectBeePanic(core.TxnBeeKind, "")
	if _, err := dr.RunN(50); err != nil {
		t.Fatal(err)
	}
	db.Module().ClearBeePanic()
	// Quarantine persists after the failpoint clears: still falling back.
	if _, err := dr.RunN(50); err != nil {
		t.Fatal(err)
	}

	if dr.Exec.Fallbacks == 0 {
		t.Error("no fallbacks recorded")
	}
	snap := db.MetricsSnapshot()
	if snap.Counters["txn_bee.fallbacks"] == 0 {
		t.Error("txn_bee.fallbacks did not advance")
	}
	got := stateSummary(t, db)
	want := stateSummary(t, ref)
	for j := range want {
		if got[j] != want[j] {
			t.Errorf("%s: with-panic %s, reference %s", stateQueries[j], got[j], want[j])
		}
	}
	checkYtdInvariant(t, db, "panic-fallback")
}

func TestTxnBeeReplansAfterDDL(t *testing.T) {
	// DDL on a referenced table mid-workload bumps the schema generation;
	// the next fused run re-resolves its handles instead of using stale
	// ones, and the workload keeps matching the statement-at-a-time state.
	ref := smallDB(t, core.AllRoutines)
	refDr, err := NewDriver(ref, SmallConfig(1), EqualMix, 55, nil)
	if err != nil {
		t.Fatal(err)
	}

	db := smallDB(t, core.AllRoutines)
	dr, err := NewDriver(db, SmallConfig(1), EqualMix, 55, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := dr.Exec.EnableTxnBees(); err != nil {
		t.Fatal(err)
	}

	for phase := 0; phase < 2; phase++ {
		if _, err := refDr.RunN(60); err != nil {
			t.Fatal(err)
		}
		if _, err := dr.RunN(60); err != nil {
			t.Fatal(err)
		}
		if phase == 0 {
			// DDL on a table every transaction references.
			ddl := "create index item_price_idx on item (i_price)"
			if _, err := db.Exec(ddl); err != nil {
				t.Fatal(err)
			}
			if _, err := ref.Exec(ddl); err != nil {
				t.Fatal(err)
			}
		}
	}

	snap := db.MetricsSnapshot()
	if snap.Counters["txn_bee.replans"] == 0 {
		t.Error("txn_bee.replans did not advance after DDL")
	}
	if dr.Exec.Fallbacks != 0 {
		t.Errorf("replan should not fall back, got %d fallbacks", dr.Exec.Fallbacks)
	}
	got := stateSummary(t, db)
	want := stateSummary(t, ref)
	for j := range want {
		if got[j] != want[j] {
			t.Errorf("%s: bees %s, reference %s", stateQueries[j], got[j], want[j])
		}
	}
}
