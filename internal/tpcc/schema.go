// Package tpcc is the TPC-C kit: the nine-table schema, the
// BenchmarkSQL-style initial population, the five transaction types
// implemented against the engine's transactional point-access API, and a
// terminal driver with the three transaction mixes the paper evaluates
// (default, query-only, and an equal mix of queries and modifications).
package tpcc

// SchemaDDL returns the TPC-C CREATE TABLE and CREATE INDEX statements.
// The LOWCARD annotations mark the genuinely low-cardinality attributes
// (credit flags, carrier ids) for tuple-bee specialization.
func SchemaDDL() []string {
	return []string{
		`create table warehouse (
			w_id integer not null,
			w_name varchar(10) not null,
			w_street_1 varchar(20) not null,
			w_street_2 varchar(20) not null,
			w_city varchar(20) not null,
			w_state char(2) not null,
			w_zip char(9) not null,
			w_tax decimal(4,4) not null,
			w_ytd decimal(12,2) not null,
			primary key (w_id))`,
		`create table district (
			d_w_id integer not null,
			d_id integer not null,
			d_name varchar(10) not null,
			d_street_1 varchar(20) not null,
			d_city varchar(20) not null,
			d_state char(2) not null,
			d_zip char(9) not null,
			d_tax decimal(4,4) not null,
			d_ytd decimal(12,2) not null,
			d_next_o_id integer not null,
			primary key (d_w_id, d_id))`,
		`create table customer (
			c_w_id integer not null,
			c_d_id integer not null,
			c_id integer not null,
			c_first varchar(16) not null,
			c_middle char(2) not null,
			c_last varchar(16) not null,
			c_street_1 varchar(20) not null,
			c_city varchar(20) not null,
			c_state char(2) not null,
			c_zip char(9) not null,
			c_phone char(16) not null,
			c_since date not null,
			c_credit char(2) not null lowcard,
			c_credit_lim decimal(12,2) not null,
			c_discount decimal(4,4) not null,
			c_balance decimal(12,2) not null,
			c_ytd_payment decimal(12,2) not null,
			c_payment_cnt integer not null,
			c_delivery_cnt integer not null,
			c_data varchar(255) not null,
			primary key (c_w_id, c_d_id, c_id))`,
		`create index customer_by_name on customer (c_w_id, c_d_id, c_last, c_first)`,
		`create table history (
			h_c_id integer not null,
			h_c_d_id integer not null,
			h_c_w_id integer not null,
			h_d_id integer not null,
			h_w_id integer not null,
			h_date date not null,
			h_amount decimal(6,2) not null,
			h_data varchar(24) not null)`,
		`create table new_order (
			no_w_id integer not null,
			no_d_id integer not null,
			no_o_id integer not null,
			primary key (no_w_id, no_d_id, no_o_id))`,
		`create table orders (
			o_w_id integer not null,
			o_d_id integer not null,
			o_id integer not null,
			o_c_id integer not null,
			o_entry_d date not null,
			o_carrier_id integer not null lowcard,
			o_ol_cnt integer not null,
			o_all_local integer not null lowcard,
			primary key (o_w_id, o_d_id, o_id))`,
		`create index orders_by_customer on orders (o_w_id, o_d_id, o_c_id, o_id)`,
		`create table order_line (
			ol_w_id integer not null,
			ol_d_id integer not null,
			ol_o_id integer not null,
			ol_number integer not null,
			ol_i_id integer not null,
			ol_supply_w_id integer not null,
			ol_delivery_d date not null,
			ol_quantity integer not null,
			ol_amount decimal(6,2) not null,
			ol_dist_info char(24) not null,
			primary key (ol_w_id, ol_d_id, ol_o_id, ol_number))`,
		`create table item (
			i_id integer not null,
			i_im_id integer not null,
			i_name varchar(24) not null,
			i_price decimal(5,2) not null,
			i_data varchar(50) not null,
			primary key (i_id))`,
		`create table stock (
			s_w_id integer not null,
			s_i_id integer not null,
			s_quantity integer not null,
			s_ytd integer not null,
			s_order_cnt integer not null,
			s_remote_cnt integer not null,
			s_data varchar(50) not null,
			primary key (s_w_id, s_i_id))`,
	}
}
