package tpcc

import (
	"errors"
	"fmt"
	"time"

	"microspec/internal/engine"
	"microspec/internal/profile"
)

// TxnType enumerates the five TPC-C transactions.
type TxnType int

// Transaction types.
const (
	TxnNewOrder TxnType = iota
	TxnPayment
	TxnOrderStatus
	TxnDelivery
	TxnStockLevel
	numTxnTypes
)

// String names the transaction type.
func (t TxnType) String() string {
	return [...]string{"NewOrder", "Payment", "OrderStatus", "Delivery", "StockLevel"}[t]
}

// Mix assigns per-mille weights to the transaction types. Weights must
// sum to 1000.
type Mix [numTxnTypes]int

// The paper's three scenarios (§VI-C): the default modification-heavy
// mix, a query-only mix (Order-Status and Stock-Level contain only
// queries), and an equal mix of modifications and queries. New-Order
// stays at 45% in all three, as in the paper.
var (
	DefaultMix   = Mix{450, 430, 40, 40, 40}
	QueryOnlyMix = Mix{450, 0, 270, 0, 280}
	EqualMix     = Mix{450, 135, 140, 135, 140}
)

// Valid reports whether the weights sum to 1000.
func (m Mix) Valid() bool {
	s := 0
	for _, w := range m {
		s += w
	}
	return s == 1000
}

// Stats aggregates a driver run.
type Stats struct {
	Committed  int64
	RolledBack int64
	ByType     [numTxnTypes]int64
	Elapsed    time.Duration
}

// TPM returns committed transactions per minute.
func (s Stats) TPM() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Committed) / s.Elapsed.Minutes()
}

// Driver runs a transaction mix against one database.
type Driver struct {
	Exec *Executor
	Mix  Mix
}

// NewDriver builds a driver with the given mix.
func NewDriver(db *engine.DB, cfg Config, mix Mix, seed int64, prof *profile.Counters) (*Driver, error) {
	if !mix.Valid() {
		return nil, fmt.Errorf("tpcc: mix weights %v do not sum to 1000", mix)
	}
	ex := NewExecutor(db, cfg, seed)
	ex.Prof = prof
	return &Driver{Exec: ex, Mix: mix}, nil
}

// pick selects a transaction type per the mix weights.
func (d *Driver) pick() TxnType {
	r := d.Exec.Rng.Intn(1000)
	acc := 0
	for t := TxnType(0); t < numTxnTypes; t++ {
		acc += d.Mix[t]
		if r < acc {
			return t
		}
	}
	return TxnNewOrder
}

// RunOne executes one transaction of the mix; the returned type reports
// what ran.
func (d *Driver) RunOne() (TxnType, error) {
	t := d.pick()
	var err error
	switch t {
	case TxnNewOrder:
		err = d.Exec.NewOrder()
	case TxnPayment:
		err = d.Exec.Payment()
	case TxnOrderStatus:
		err = d.Exec.OrderStatus()
	case TxnDelivery:
		err = d.Exec.Delivery()
	case TxnStockLevel:
		err = d.Exec.StockLevel()
	}
	return t, err
}

// RunFor executes transactions until the wall-clock duration elapses.
func (d *Driver) RunFor(dur time.Duration) (Stats, error) {
	var st Stats
	start := time.Now()
	for time.Since(start) < dur {
		t, err := d.RunOne()
		if err != nil {
			if errors.Is(err, ErrRollback) {
				st.RolledBack++
				continue
			}
			return st, err
		}
		st.Committed++
		st.ByType[t]++
	}
	st.Elapsed = time.Since(start)
	return st, nil
}

// RunN executes exactly n transactions (committed or rolled back).
func (d *Driver) RunN(n int) (Stats, error) {
	var st Stats
	start := time.Now()
	for i := 0; i < n; i++ {
		t, err := d.RunOne()
		if err != nil {
			if errors.Is(err, ErrRollback) {
				st.RolledBack++
				continue
			}
			return st, err
		}
		st.Committed++
		st.ByType[t]++
	}
	st.Elapsed = time.Since(start)
	return st, nil
}
