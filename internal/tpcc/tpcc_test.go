package tpcc

import (
	"errors"
	"testing"

	"microspec/internal/core"
	"microspec/internal/engine"
)

func smallDB(t testing.TB, rs core.RoutineSet) *engine.DB {
	t.Helper()
	db, err := NewDatabase(engine.Config{Routines: rs, PoolPages: 8192}, SmallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestLastName(t *testing.T) {
	if LastName(0) != "BARBARBAR" {
		t.Errorf("LastName(0) = %q", LastName(0))
	}
	if LastName(371) != "PRICALLYOUGHT" {
		t.Errorf("LastName(371) = %q", LastName(371))
	}
	if LastName(999) != "EINGEINGEING" {
		t.Errorf("LastName(999) = %q", LastName(999))
	}
}

func TestMixes(t *testing.T) {
	for _, m := range []Mix{DefaultMix, QueryOnlyMix, EqualMix} {
		if !m.Valid() {
			t.Errorf("mix %v does not sum to 1000", m)
		}
	}
	if (Mix{1, 2, 3, 4, 5}).Valid() {
		t.Error("bad mix accepted")
	}
}

func TestLoadPopulation(t *testing.T) {
	db := smallDB(t, core.AllRoutines)
	cfg := SmallConfig(1)
	checks := map[string]int64{
		"select count(*) from warehouse": 1,
		"select count(*) from district":  int64(cfg.DistrictsPerWH),
		"select count(*) from customer":  int64(cfg.DistrictsPerWH * cfg.CustomersPerDist),
		"select count(*) from item":      int64(cfg.Items),
		"select count(*) from stock":     int64(cfg.Items),
		"select count(*) from orders":    int64(cfg.DistrictsPerWH * cfg.OrdersPerDistrict),
		"select count(*) from new_order": int64(cfg.DistrictsPerWH * (cfg.OrdersPerDistrict - cfg.OrdersPerDistrict*2/3)),
	}
	for q, want := range checks {
		r, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if got := r.Rows[0][0].Int64(); got != want {
			t.Errorf("%s = %d, want %d", q, got, want)
		}
	}
	// Every order has lines.
	r, err := db.Query(`select count(*) from orders
		where not exists (select * from order_line
			where ol_w_id = o_w_id and ol_d_id = o_d_id and ol_o_id = o_id)`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].Int64() != 0 {
		t.Error("orders without lines")
	}
}

func TestEachTransactionType(t *testing.T) {
	for _, rs := range []core.RoutineSet{core.Stock, core.AllRoutines} {
		db := smallDB(t, rs)
		ex := NewExecutor(db, SmallConfig(1), 7)
		for i := 0; i < 20; i++ {
			if err := ex.NewOrder(); err != nil && !errors.Is(err, ErrRollback) {
				t.Fatalf("NewOrder: %v", err)
			}
		}
		for i := 0; i < 20; i++ {
			if err := ex.Payment(); err != nil {
				t.Fatalf("Payment: %v", err)
			}
		}
		for i := 0; i < 20; i++ {
			if err := ex.OrderStatus(); err != nil {
				t.Fatalf("OrderStatus: %v", err)
			}
		}
		for i := 0; i < 5; i++ {
			if err := ex.Delivery(); err != nil {
				t.Fatalf("Delivery: %v", err)
			}
		}
		for i := 0; i < 20; i++ {
			if err := ex.StockLevel(); err != nil {
				t.Fatalf("StockLevel: %v", err)
			}
		}
	}
}

func TestNewOrderAdvancesDistrictAndInserts(t *testing.T) {
	db := smallDB(t, core.AllRoutines)
	before, _ := db.Query("select sum(d_next_o_id) from district")
	ex := NewExecutor(db, SmallConfig(1), 1)
	committed := 0
	for committed < 10 {
		if err := ex.NewOrder(); err != nil {
			if errors.Is(err, ErrRollback) {
				continue
			}
			t.Fatal(err)
		}
		committed++
	}
	after, _ := db.Query("select sum(d_next_o_id) from district")
	if after.Rows[0][0].Int64() != before.Rows[0][0].Int64()+10 {
		t.Errorf("d_next_o_id advanced by %d, want 10",
			after.Rows[0][0].Int64()-before.Rows[0][0].Int64())
	}
	r, _ := db.Query("select count(*) from new_order")
	base := int64(SmallConfig(1).DistrictsPerWH * (SmallConfig(1).OrdersPerDistrict - SmallConfig(1).OrdersPerDistrict*2/3))
	if r.Rows[0][0].Int64() != base+10 {
		t.Errorf("new_order count = %d, want %d", r.Rows[0][0].Int64(), base+10)
	}
}

func TestNewOrderRollbackLeavesNoTrace(t *testing.T) {
	db := smallDB(t, core.AllRoutines)
	cfg := SmallConfig(1)
	countAll := func() [3]int64 {
		var out [3]int64
		for i, q := range []string{
			"select count(*) from orders",
			"select count(*) from order_line",
			"select sum(d_next_o_id) from district",
		} {
			r, err := db.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = r.Rows[0][0].Int64()
		}
		return out
	}
	before := countAll()
	// Drive until we see a rollback.
	ex := NewExecutor(db, cfg, 3)
	sawRollback := false
	for i := 0; i < 2000 && !sawRollback; i++ {
		err := ex.NewOrder()
		if errors.Is(err, ErrRollback) {
			sawRollback = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawRollback {
		t.Fatal("no rollback in 2000 new-orders (expected ≈1%)")
	}
	// Replay the same committed count on a fresh DB without the aborted
	// txn and compare: the aborted transaction must leave no trace. We
	// approximate by checking invariants instead: every order id below
	// d_next_o_id exists.
	after := countAll()
	if after[0] < before[0] || after[1] < before[1] {
		t.Error("counts went backwards")
	}
	r, err := db.Query(`select count(*) from district
		where d_next_o_id - 1 > (select max(o_id) from orders
			where o_w_id = d_w_id and o_d_id = d_id)`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].Int64() != 0 {
		t.Error("rollback left a gap: d_next_o_id advanced past max(o_id)")
	}
}

func TestDeliveryConsumesNewOrders(t *testing.T) {
	db := smallDB(t, core.AllRoutines)
	ex := NewExecutor(db, SmallConfig(1), 5)
	r, _ := db.Query("select count(*) from new_order")
	before := r.Rows[0][0].Int64()
	if err := ex.Delivery(); err != nil {
		t.Fatal(err)
	}
	r, _ = db.Query("select count(*) from new_order")
	after := r.Rows[0][0].Int64()
	if before-after != int64(SmallConfig(1).DistrictsPerWH) {
		t.Errorf("delivery consumed %d new_orders, want %d", before-after, SmallConfig(1).DistrictsPerWH)
	}
	// The delivered orders got a carrier.
	r, _ = db.Query("select count(*) from orders where o_carrier_id = 0")
	undelivered := r.Rows[0][0].Int64()
	if undelivered != after {
		t.Errorf("undelivered orders (%d) != new_order entries (%d)", undelivered, after)
	}
}

func TestDriverMixAndTPM(t *testing.T) {
	db := smallDB(t, core.AllRoutines)
	dr, err := NewDriver(db, SmallConfig(1), DefaultMix, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dr.RunN(300)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed < 290 {
		t.Errorf("committed = %d (rolled back %d)", st.Committed, st.RolledBack)
	}
	if st.TPM() <= 0 {
		t.Error("TPM must be positive")
	}
	// The mix should roughly follow the weights: NewOrder ≈ 45%.
	no := float64(st.ByType[TxnNewOrder]) / float64(st.Committed)
	if no < 0.30 || no > 0.60 {
		t.Errorf("NewOrder share = %.2f, want ≈0.45", no)
	}
	if _, err := NewDriver(db, SmallConfig(1), Mix{1, 0, 0, 0, 0}, 1, nil); err == nil {
		t.Error("invalid mix must be rejected")
	}
}

func TestStockAndBeeSameResults(t *testing.T) {
	// Run the same seeded transaction stream on both engines and compare
	// final aggregate state.
	var sums [2][3]string
	for i, rs := range []core.RoutineSet{core.Stock, core.AllRoutines} {
		db := smallDB(t, rs)
		dr, err := NewDriver(db, SmallConfig(1), EqualMix, 99, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dr.RunN(200); err != nil {
			t.Fatal(err)
		}
		for j, q := range []string{
			"select sum(d_next_o_id) from district",
			"select count(*) from order_line",
			"select sum(s_order_cnt) from stock",
		} {
			r, err := db.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			sums[i][j] = r.Rows[0][0].String()
		}
	}
	for j := range sums[0] {
		if sums[0][j] != sums[1][j] {
			t.Errorf("metric %d: stock %s, bee %s", j, sums[0][j], sums[1][j])
		}
	}
}

func TestPaymentByLastName(t *testing.T) {
	db := smallDB(t, core.AllRoutines)
	ex := NewExecutor(db, SmallConfig(1), 21)
	// Customer balances drop as payments apply; total payment count rises.
	before, _ := db.Query("select sum(c_payment_cnt) from customer")
	for i := 0; i < 30; i++ {
		if err := ex.Payment(); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := db.Query("select sum(c_payment_cnt) from customer")
	paid := after.Rows[0][0].Int64() - before.Rows[0][0].Int64()
	// Some by-last-name lookups may find no customer (small population),
	// but most payments must land.
	if paid < 20 {
		t.Errorf("payments applied = %d of 30", paid)
	}
	// History grew by the same amount.
	h, _ := db.Query("select count(*) from history")
	base := int64(SmallConfig(1).DistrictsPerWH * SmallConfig(1).CustomersPerDist)
	if h.Rows[0][0].Int64() != base+paid {
		t.Errorf("history rows = %d, want %d", h.Rows[0][0].Int64(), base+paid)
	}
}

func TestWarehouseYtdConsistency(t *testing.T) {
	// Invariant (TPC-C consistency condition 1): w_ytd equals the sum of
	// its districts' d_ytd after any number of payments.
	db := smallDB(t, core.AllRoutines)
	ex := NewExecutor(db, SmallConfig(1), 31)
	for i := 0; i < 50; i++ {
		if err := ex.Payment(); err != nil {
			t.Fatal(err)
		}
	}
	w, _ := db.Query("select w_ytd from warehouse where w_id = 1")
	d, _ := db.Query("select sum(d_ytd) from district where d_w_id = 1")
	diff := w.Rows[0][0].Float64() - d.Rows[0][0].Float64()
	if diff > 1e-6 || diff < -1e-6 {
		t.Errorf("w_ytd %v != sum(d_ytd) %v", w.Rows[0][0], d.Rows[0][0])
	}
}

func TestIdenticalSeedsIdenticalStreams(t *testing.T) {
	// Two executors with the same seed on identical databases must issue
	// the same transactions (the property the throughput harness relies
	// on to compare engines fairly).
	counts := make([][5]int64, 2)
	for i := 0; i < 2; i++ {
		db := smallDB(t, core.AllRoutines)
		dr, err := NewDriver(db, SmallConfig(1), EqualMix, 123, nil)
		if err != nil {
			t.Fatal(err)
		}
		st, err := dr.RunN(150)
		if err != nil {
			t.Fatal(err)
		}
		copy(counts[i][:], st.ByType[:])
	}
	if counts[0] != counts[1] {
		t.Errorf("streams diverged: %v vs %v", counts[0], counts[1])
	}
}
