package tpcc

import (
	"fmt"

	"microspec/internal/engine"
	"microspec/internal/expr"
	"microspec/internal/storage/heap"
	"microspec/internal/types"
)

// This file holds the compiled-transaction (transaction bee) side of the
// five TPC-C transactions: one engine.TxnSpec per type, with table and
// index ordinals baked as constants, and a fused body per type that
// mirrors the statement-at-a-time body in txns.go operation for
// operation. Both bodies consume the same pre-sampled parameter struct,
// so a fused run and a statement-at-a-time retry of the same transaction
// produce identical database states.

// New-Order ordinals: tables (Writes then Reads) and indexes, positions
// in newOrderSpec.
const (
	noTDistrict = iota
	noTOrders
	noTNewOrder
	noTStock
	noTOrderLine
	noTWarehouse
	noTCustomer
	noTItem
)

const (
	noIWarehousePK = iota
	noIDistrictPK
	noICustomerPK
	noIItemPK
	noIStockPK
)

var newOrderSpec = engine.TxnSpec{
	Name:    "tpcc.new_order",
	Writes:  []string{"district", "orders", "new_order", "stock", "order_line"},
	Reads:   []string{"warehouse", "customer", "item"},
	Indexes: []string{"warehouse_pkey", "district_pkey", "customer_pkey", "item_pkey", "stock_pkey"},
}

// Payment ordinals.
const (
	payTWarehouse = iota
	payTDistrict
	payTCustomer
	payTHistory
)

const (
	payIWarehousePK = iota
	payIDistrictPK
	payICustomerPK
	payICustomerByName
)

var paymentSpec = engine.TxnSpec{
	Name:    "tpcc.payment",
	Writes:  []string{"warehouse", "district", "customer", "history"},
	Indexes: []string{"warehouse_pkey", "district_pkey", "customer_pkey", "customer_by_name"},
}

// Order-Status ordinals (read-only: every table latched shared).
const (
	osTCustomer = iota
	osTOrders
	osTOrderLine
)

const (
	osICustomerPK = iota
	osICustomerByName
	osIOrdersByCustomer
	osIOrderLinePK
)

var orderStatusSpec = engine.TxnSpec{
	Name:    "tpcc.order_status",
	Reads:   []string{"customer", "orders", "order_line"},
	Indexes: []string{"customer_pkey", "customer_by_name", "orders_by_customer", "order_line_pkey"},
}

// Delivery ordinals.
const (
	delTNewOrder = iota
	delTOrders
	delTOrderLine
	delTCustomer
)

const (
	delINewOrderPK = iota
	delIOrdersPK
	delIOrderLinePK
	delICustomerPK
)

var deliverySpec = engine.TxnSpec{
	Name:    "tpcc.delivery",
	Writes:  []string{"new_order", "orders", "order_line", "customer"},
	Indexes: []string{"new_order_pkey", "orders_pkey", "order_line_pkey", "customer_pkey"},
}

// Stock-Level ordinals (read-only).
const (
	slTDistrict = iota
	slTOrderLine
	slTStock
)

const (
	slIDistrictPK = iota
	slIOrderLinePK
	slIStockPK
)

var stockLevelSpec = engine.TxnSpec{
	Name:    "tpcc.stock_level",
	Reads:   []string{"district", "order_line", "stock"},
	Indexes: []string{"district_pkey", "order_line_pkey", "stock_pkey"},
}

// EnableTxnBees compiles the five whole-transaction bees and routes
// subsequent transactions through them (with automatic
// statement-at-a-time fallback on quarantine). Executors sharing one DB
// may each call this; the engine dedups registration by bee name.
func (e *Executor) EnableTxnBees() error {
	specs := [numTxnTypes]engine.TxnSpec{newOrderSpec, paymentSpec, orderStatusSpec, deliverySpec, stockLevelSpec}
	for t, spec := range specs {
		ct, err := e.DB.CompileTxn(spec)
		if err != nil {
			return fmt.Errorf("tpcc: compiling %s: %w", spec.Name, err)
		}
		e.bees[t] = ct
	}
	e.UseTxnBees = true
	return nil
}

func (e *Executor) newOrderFused(p noParams) error {
	return e.bees[TxnNewOrder].Run(e.Prof, func(ft *engine.FastTxn) error {
		w, d, c := p.w, p.d, p.c
		wRow, _, ok, err := ft.GetByIndex(noIWarehousePK, []types.Datum{i32d(w)})
		if err != nil || !ok {
			return fmt.Errorf("tpcc: warehouse %d: %v", w, err)
		}
		dRow, dTID, ok, err := ft.GetByIndex(noIDistrictPK, []types.Datum{i32d(w), i32d(d)})
		if err != nil || !ok {
			return fmt.Errorf("tpcc: district (%d,%d): %v", w, d, err)
		}
		cRow, _, ok, err := ft.GetByIndex(noICustomerPK, []types.Datum{i32d(w), i32d(d), i32d(c)})
		if err != nil || !ok {
			return fmt.Errorf("tpcc: customer (%d,%d,%d): %v", w, d, c, err)
		}

		orderID := dRow[dNextOID].Int32()
		newD := append(expr.Row(nil), dRow...)
		newD[dNextOID] = i32d(orderID + 1)
		if err := ft.UpdateRow(noTDistrict, dTID, dRow, newD); err != nil {
			return err
		}

		allLocal := int32(1)
		if err := ft.Insert(noTOrders, []types.Datum{
			i32d(w), i32d(d), i32d(orderID), i32d(c),
			types.NewDate(e.today), i32d(0), i32d(int32(len(p.lines))), i32d(allLocal),
		}); err != nil {
			return err
		}
		if err := ft.Insert(noTNewOrder, []types.Datum{i32d(w), i32d(d), i32d(orderID)}); err != nil {
			return err
		}

		discount := cRow[cDiscount].Float64()
		taxes := (1 + wRow[wTax].Float64() + dRow[dTax].Float64()) * (1 - discount)
		total := 0.0
		for i, line := range p.lines {
			ln := i + 1
			item := line.item
			iRow, _, ok, err := ft.GetByIndex(noIItemPK, []types.Datum{i32d(item)})
			if err != nil || !ok {
				return fmt.Errorf("tpcc: item %d: %v", item, err)
			}
			sRow, sTID, ok, err := ft.GetByIndex(noIStockPK, []types.Datum{i32d(w), i32d(item)})
			if err != nil || !ok {
				return fmt.Errorf("tpcc: stock (%d,%d): %v", w, item, err)
			}
			qty := line.qty
			newS := append(expr.Row(nil), sRow...)
			sq := sRow[sQuantity].Int32()
			if sq >= qty+10 {
				sq -= qty
			} else {
				sq = sq - qty + 91
			}
			newS[sQuantity] = i32d(sq)
			newS[sYtd] = i32d(sRow[sYtd].Int32() + qty)
			newS[sOrderCnt] = i32d(sRow[sOrderCnt].Int32() + 1)
			if err := ft.UpdateRow(noTStock, sTID, sRow, newS); err != nil {
				return err
			}
			amount := float64(qty) * iRow[iPrice].Float64()
			total += amount
			if err := ft.Insert(noTOrderLine, []types.Datum{
				i32d(w), i32d(d), i32d(orderID), i32d(int32(ln)),
				i32d(item), i32d(w), types.NewDate(0), i32d(qty),
				types.NewFloat64(amount),
				types.NewChar(fmt.Sprintf("dist-info-%02d-padding--", d)),
			}); err != nil {
				return err
			}
		}
		_ = total * taxes

		if p.abort {
			return ErrRollback
		}
		return nil
	})
}

func (e *Executor) paymentFused(p payParams) error {
	err := e.bees[TxnPayment].Run(e.Prof, func(ft *engine.FastTxn) error {
		w, d, amount := p.w, p.d, p.amount
		wRow, wTID, ok, err := ft.GetByIndex(payIWarehousePK, []types.Datum{i32d(w)})
		if err != nil || !ok {
			return fmt.Errorf("tpcc: warehouse %d: %v", w, err)
		}
		newW := append(expr.Row(nil), wRow...)
		newW[wYtd] = types.NewFloat64(wRow[wYtd].Float64() + amount)
		if err := ft.UpdateRow(payTWarehouse, wTID, wRow, newW); err != nil {
			return err
		}
		dRow, dTID, ok, err := ft.GetByIndex(payIDistrictPK, []types.Datum{i32d(w), i32d(d)})
		if err != nil || !ok {
			return fmt.Errorf("tpcc: district: %v", err)
		}
		newD := append(expr.Row(nil), dRow...)
		newD[dYtd] = types.NewFloat64(dRow[dYtd].Float64() + amount)
		if err := ft.UpdateRow(payTDistrict, dTID, dRow, newD); err != nil {
			return err
		}

		var cRow expr.Row
		var cTID heap.TID
		if p.byName {
			cRow, cTID, err = fusedCustomerByLastName(ft, payICustomerByName, w, d, p.last)
			if err != nil {
				return err
			}
			if cRow == nil {
				return errNoCustomer
			}
		} else {
			var found bool
			cRow, cTID, found, err = ft.GetByIndex(payICustomerPK, []types.Datum{i32d(w), i32d(d), i32d(p.c)})
			if err != nil {
				return err
			}
			if !found {
				return fmt.Errorf("tpcc: customer %d missing", p.c)
			}
		}
		newC := append(expr.Row(nil), cRow...)
		newC[cBalance] = types.NewFloat64(cRow[cBalance].Float64() - amount)
		newC[cYtdPayment] = types.NewFloat64(cRow[cYtdPayment].Float64() + amount)
		newC[cPaymentCnt] = i32d(cRow[cPaymentCnt].Int32() + 1)
		if err := ft.UpdateRow(payTCustomer, cTID, cRow, newC); err != nil {
			return err
		}
		return ft.Insert(payTHistory, []types.Datum{
			cRow[cID], i32d(d), i32d(w), i32d(d), i32d(w),
			types.NewDate(e.today), types.NewFloat64(amount),
			types.NewString("payment-history-data"),
		})
	})
	if err == errNoCustomer {
		return nil // rolled back, counts as done (matches paymentStmt)
	}
	return err
}

// fusedCustomerByLastName mirrors customerByLastName against a FastTxn.
func fusedCustomerByLastName(ft *engine.FastTxn, ix int, w, d int32, last string) (expr.Row, heap.TID, error) {
	type hit struct {
		row expr.Row
		tid heap.TID
	}
	var hits []hit
	err := ft.ScanIndexPrefix(ix,
		[]types.Datum{i32d(w), i32d(d), types.NewString(last)},
		func(row expr.Row, tid heap.TID) bool {
			hits = append(hits, hit{row, tid})
			return true
		})
	if err != nil || len(hits) == 0 {
		return nil, heap.TID{}, err
	}
	mid := hits[len(hits)/2]
	return mid.row, mid.tid, nil
}

func (e *Executor) orderStatusFused(p osParams) error {
	return e.bees[TxnOrderStatus].Run(e.Prof, func(ft *engine.FastTxn) error {
		w, d := p.w, p.d
		var cRow expr.Row
		var err error
		if p.byName {
			cRow, _, err = fusedCustomerByLastName(ft, osICustomerByName, w, d, p.last)
		} else {
			cRow, _, _, err = ft.GetByIndex(osICustomerPK, []types.Datum{i32d(w), i32d(d), i32d(p.c)})
		}
		if err != nil {
			return err
		}
		if cRow == nil {
			return nil
		}
		oRow, _, found, err := ft.LastByIndexPrefix(osIOrdersByCustomer,
			[]types.Datum{i32d(w), i32d(d), cRow[cID]})
		if err != nil || !found {
			return err
		}
		count := 0
		err = ft.ScanIndexPrefix(osIOrderLinePK,
			[]types.Datum{i32d(w), i32d(d), oRow[oID]},
			func(row expr.Row, _ heap.TID) bool {
				_ = row[olIID]
				_ = row[olAmount]
				count++
				return true
			})
		if err != nil {
			return err
		}
		if count == 0 {
			return fmt.Errorf("tpcc: order (%d,%d,%d) has no lines", w, d, oRow[oID].Int32())
		}
		return nil
	})
}

func (e *Executor) deliveryFused(p delParams) error {
	return e.bees[TxnDelivery].Run(e.Prof, func(ft *engine.FastTxn) error {
		w, carrier := p.w, p.carrier
		for d := int32(1); d <= int32(e.Cfg.DistrictsPerWH); d++ {
			var noRow expr.Row
			var noTID heap.TID
			err := ft.ScanIndexPrefix(delINewOrderPK,
				[]types.Datum{i32d(w), i32d(d)},
				func(row expr.Row, tid heap.TID) bool {
					noRow = row
					noTID = tid
					return false
				})
			if err != nil {
				return err
			}
			if noRow == nil {
				continue // district fully delivered
			}
			orderID := noRow[2]
			if err := ft.DeleteRow(delTNewOrder, noTID); err != nil {
				return err
			}
			oRow, oTID, found, err := ft.GetByIndex(delIOrdersPK,
				[]types.Datum{i32d(w), i32d(d), orderID})
			if err != nil || !found {
				return fmt.Errorf("tpcc: order (%d,%d,%v) missing: %v", w, d, orderID, err)
			}
			newO := append(expr.Row(nil), oRow...)
			newO[oCarrier] = i32d(carrier)
			if err := ft.UpdateRow(delTOrders, oTID, oRow, newO); err != nil {
				return err
			}
			type lineHit struct {
				row expr.Row
				tid heap.TID
			}
			var lines []lineHit
			total := 0.0
			err = ft.ScanIndexPrefix(delIOrderLinePK,
				[]types.Datum{i32d(w), i32d(d), orderID},
				func(row expr.Row, tid heap.TID) bool {
					lines = append(lines, lineHit{append(expr.Row(nil), row...), tid})
					total += row[olAmount].Float64()
					return true
				})
			if err != nil {
				return err
			}
			for _, ln := range lines {
				newL := append(expr.Row(nil), ln.row...)
				newL[olDeliveryD] = types.NewDate(e.today)
				if err := ft.UpdateRow(delTOrderLine, ln.tid, ln.row, newL); err != nil {
					return err
				}
			}
			cRow, cTID, found, err := ft.GetByIndex(delICustomerPK,
				[]types.Datum{i32d(w), i32d(d), oRow[oCID]})
			if err != nil || !found {
				return fmt.Errorf("tpcc: customer for order: %v", err)
			}
			newC := append(expr.Row(nil), cRow...)
			newC[cBalance] = types.NewFloat64(cRow[cBalance].Float64() + total)
			newC[cDeliveryCnt] = i32d(cRow[cDeliveryCnt].Int32() + 1)
			if err := ft.UpdateRow(delTCustomer, cTID, cRow, newC); err != nil {
				return err
			}
		}
		return nil
	})
}

func (e *Executor) stockLevelFused(p slParams) error {
	return e.bees[TxnStockLevel].Run(e.Prof, func(ft *engine.FastTxn) error {
		w, d, threshold := p.w, p.d, p.threshold
		dRow, _, ok, err := ft.GetByIndex(slIDistrictPK, []types.Datum{i32d(w), i32d(d)})
		if err != nil || !ok {
			return fmt.Errorf("tpcc: district: %v", err)
		}
		nextO := dRow[dNextOID].Int32()
		lo := nextO - 20
		if lo < 1 {
			lo = 1
		}
		seen := map[int32]bool{}
		err = ft.ScanIndexRange(slIOrderLinePK,
			[]types.Datum{i32d(w), i32d(d), i32d(lo)},
			[]types.Datum{i32d(w), i32d(d), i32d(nextO - 1)},
			func(row expr.Row, _ heap.TID) bool {
				seen[row[olIID].Int32()] = true
				return true
			})
		if err != nil {
			return err
		}
		low := 0
		for item := range seen {
			sRow, _, ok, err := ft.GetByIndex(slIStockPK, []types.Datum{i32d(w), i32d(item)})
			if err != nil || !ok {
				return fmt.Errorf("tpcc: stock %d: %v", item, err)
			}
			if sRow[sQuantity].Int32() < threshold {
				low++
			}
		}
		_ = low
		return nil
	})
}
