package tpcc

import (
	"errors"
	"fmt"
	"math/rand"

	"microspec/internal/engine"
	"microspec/internal/exec"
	"microspec/internal/expr"
	"microspec/internal/profile"
	"microspec/internal/storage/heap"
	"microspec/internal/types"
)

// Column ordinals for the rows the transactions touch.
const (
	wTax = 7
	wYtd = 8

	dTax     = 7
	dYtd     = 8
	dNextOID = 9

	cID          = 2
	cFirst       = 3
	cLast        = 5
	cCredit      = 12
	cDiscount    = 14
	cBalance     = 15
	cYtdPayment  = 16
	cPaymentCnt  = 17
	cDeliveryCnt = 18

	oID      = 2
	oCID     = 3
	oEntryD  = 4
	oCarrier = 5
	oOlCnt   = 6

	olOID       = 2
	olIID       = 4
	olDeliveryD = 6
	olQuantity  = 7
	olAmount    = 8

	iPrice = 3

	sQuantity  = 2
	sYtd       = 3
	sOrderCnt  = 4
	sRemoteCnt = 5
)

// Executor runs TPC-C transactions against one database. It is not
// goroutine-safe; each terminal owns one (they share the DB, which
// serializes writers internally).
//
// Each transaction samples all of its random inputs up front into a
// parameter struct, then dispatches to one of two bodies that apply
// identical logic: the statement-at-a-time body (interactive engine.Txn,
// one latch acquisition per operation) or — after EnableTxnBees — the
// fused body running inside a compiled transaction bee (one latch plan,
// pre-resolved handles, single commit; see engine/txnbee.go and
// txnbees.go in this package). Because the parameters are fixed before
// execution, a bee that panics mid-transaction is quarantined and the
// very same transaction is retried statement-at-a-time with identical
// inputs and results.
type Executor struct {
	DB   *engine.DB
	Cfg  Config
	Rng  *rand.Rand
	Prof *profile.Counters

	// UseTxnBees routes transactions through the compiled whole-
	// transaction bees; EnableTxnBees sets it after compiling them.
	UseTxnBees bool
	bees       [numTxnTypes]*engine.CompiledTxn
	// Fallbacks counts transactions that started fused and were retried
	// statement-at-a-time (quarantine or replan failure).
	Fallbacks int64

	// today stamps order entry dates.
	today int32
}

// NewExecutor returns a transaction executor with its own random stream.
func NewExecutor(db *engine.DB, cfg Config, seed int64) *Executor {
	return &Executor{DB: db, Cfg: cfg, Rng: rand.New(rand.NewSource(seed)), today: loadDate + 1}
}

func i32d(v int32) types.Datum { return types.NewInt32(v) }

// randLastNum picks a last-name number per the specification's
// NURand(255,0,999), clamped to the names that actually exist when the
// population is scaled below the spec's 3000 customers per district
// (loading assigns names 0..n-1 for the first 1000 customers).
func (e *Executor) randLastNum() int {
	hi := 999
	if e.Cfg.CustomersPerDist-1 < hi {
		hi = e.Cfg.CustomersPerDist - 1
	}
	return nuRand(e.Rng, 255, 0, hi)
}

// ErrRollback marks the intentional 1% New-Order abort.
var ErrRollback = fmt.Errorf("tpcc: new-order rollback (unused item)")

// errNoCustomer marks a by-last-name lookup that found nobody: the
// transaction rolls back and counts as done (matching the
// statement-at-a-time behaviour).
var errNoCustomer = errors.New("tpcc: no customer with that last name")

// beeFellBack reports whether a fused execution error means "retry
// statement-at-a-time": the bee was quarantined (by this very panic or
// an earlier one) or could not replan. Transaction-level errors — write
// conflicts, the intentional rollback — are not fallbacks.
func beeFellBack(err error) bool {
	if errors.Is(err, engine.ErrTxnBeeUnavailable) {
		return true
	}
	var pe *exec.PanicError
	return errors.As(err, &pe)
}

// dispatch routes one transaction: fused body when transaction bees are
// enabled, with a statement-at-a-time retry of the same parameters if
// the bee fell out of service mid-flight.
func (e *Executor) dispatch(t TxnType, fused, stmt func() error) error {
	if e.UseTxnBees && e.bees[t] != nil {
		err := fused()
		if !beeFellBack(err) {
			return err
		}
		e.Fallbacks++
		e.DB.NoteTxnBeeFallback()
	}
	return stmt()
}

// --- New-Order ---

type noLine struct{ item, qty int32 }

type noParams struct {
	w, d, c int32
	lines   []noLine
	abort   bool
}

func (e *Executor) newOrderParams() noParams {
	p := noParams{
		w: int32(1 + e.Rng.Intn(e.Cfg.Warehouses)),
		d: int32(1 + e.Rng.Intn(e.Cfg.DistrictsPerWH)),
		c: int32(nuRand(e.Rng, 1023, 1, e.Cfg.CustomersPerDist)),
	}
	n := 5 + e.Rng.Intn(11)
	p.abort = e.Rng.Intn(100) == 0
	p.lines = make([]noLine, n)
	for i := range p.lines {
		p.lines[i].item = int32(nuRand(e.Rng, 8191, 1, e.Cfg.Items))
		p.lines[i].qty = int32(1 + e.Rng.Intn(10))
	}
	return p
}

// NewOrder runs the New-Order transaction for a random district and
// customer; 1% of invocations roll back per the specification.
func (e *Executor) NewOrder() error {
	p := e.newOrderParams()
	return e.dispatch(TxnNewOrder, func() error { return e.newOrderFused(p) }, func() error { return e.newOrderStmt(p) })
}

func (e *Executor) newOrderStmt(p noParams) error {
	w, d, c := p.w, p.d, p.c

	txn := e.DB.Begin(e.Prof)
	wRow, _, ok, err := txn.GetByIndex("warehouse_pkey", []types.Datum{i32d(w)})
	if err != nil || !ok {
		txn.Rollback()
		return fmt.Errorf("tpcc: warehouse %d: %v", w, err)
	}
	dRow, dTID, ok, err := txn.GetByIndex("district_pkey", []types.Datum{i32d(w), i32d(d)})
	if err != nil || !ok {
		txn.Rollback()
		return fmt.Errorf("tpcc: district (%d,%d): %v", w, d, err)
	}
	cRow, _, ok, err := txn.GetByIndex("customer_pkey", []types.Datum{i32d(w), i32d(d), i32d(c)})
	if err != nil || !ok {
		txn.Rollback()
		return fmt.Errorf("tpcc: customer (%d,%d,%d): %v", w, d, c, err)
	}

	orderID := dRow[dNextOID].Int32()
	newD := append(expr.Row(nil), dRow...)
	newD[dNextOID] = i32d(orderID + 1)
	if err := txn.UpdateRow("district", dTID, dRow, newD); err != nil {
		txn.Rollback()
		return err
	}

	allLocal := int32(1)
	if err := txn.Insert("orders", []types.Datum{
		i32d(w), i32d(d), i32d(orderID), i32d(c),
		types.NewDate(e.today), i32d(0), i32d(int32(len(p.lines))), i32d(allLocal),
	}); err != nil {
		txn.Rollback()
		return err
	}
	if err := txn.Insert("new_order", []types.Datum{i32d(w), i32d(d), i32d(orderID)}); err != nil {
		txn.Rollback()
		return err
	}

	discount := cRow[cDiscount].Float64()
	taxes := (1 + wRow[wTax].Float64() + dRow[dTax].Float64()) * (1 - discount)
	total := 0.0
	for i, line := range p.lines {
		ln := i + 1
		item := line.item
		iRow, _, ok, err := txn.GetByIndex("item_pkey", []types.Datum{i32d(item)})
		if err != nil || !ok {
			txn.Rollback()
			return fmt.Errorf("tpcc: item %d: %v", item, err)
		}
		sRow, sTID, ok, err := txn.GetByIndex("stock_pkey", []types.Datum{i32d(w), i32d(item)})
		if err != nil || !ok {
			txn.Rollback()
			return fmt.Errorf("tpcc: stock (%d,%d): %v", w, item, err)
		}
		qty := line.qty
		newS := append(expr.Row(nil), sRow...)
		sq := sRow[sQuantity].Int32()
		if sq >= qty+10 {
			sq -= qty
		} else {
			sq = sq - qty + 91
		}
		newS[sQuantity] = i32d(sq)
		newS[sYtd] = i32d(sRow[sYtd].Int32() + qty)
		newS[sOrderCnt] = i32d(sRow[sOrderCnt].Int32() + 1)
		if err := txn.UpdateRow("stock", sTID, sRow, newS); err != nil {
			txn.Rollback()
			return err
		}
		amount := float64(qty) * iRow[iPrice].Float64()
		total += amount
		if err := txn.Insert("order_line", []types.Datum{
			i32d(w), i32d(d), i32d(orderID), i32d(int32(ln)),
			i32d(item), i32d(w), types.NewDate(0), i32d(qty),
			types.NewFloat64(amount),
			types.NewChar(fmt.Sprintf("dist-info-%02d-padding--", d)),
		}); err != nil {
			txn.Rollback()
			return err
		}
	}
	_ = total * taxes

	if p.abort {
		if err := txn.Rollback(); err != nil {
			return err
		}
		return ErrRollback
	}
	txn.Commit()
	return nil
}

// --- Payment ---

type payParams struct {
	w, d   int32
	amount float64
	byName bool
	last   string
	c      int32
}

func (e *Executor) paymentParams() payParams {
	p := payParams{
		w:      int32(1 + e.Rng.Intn(e.Cfg.Warehouses)),
		d:      int32(1 + e.Rng.Intn(e.Cfg.DistrictsPerWH)),
		amount: 1 + float64(e.Rng.Intn(499900))/100,
	}
	p.byName = e.Rng.Intn(100) < 60
	if p.byName {
		p.last = LastName(e.randLastNum())
	} else {
		p.c = int32(nuRand(e.Rng, 1023, 1, e.Cfg.CustomersPerDist))
	}
	return p
}

// Payment runs the Payment transaction: 60% of customers are selected by
// last name, 40% by id.
func (e *Executor) Payment() error {
	p := e.paymentParams()
	return e.dispatch(TxnPayment, func() error { return e.paymentFused(p) }, func() error { return e.paymentStmt(p) })
}

func (e *Executor) paymentStmt(p payParams) error {
	w, d, amount := p.w, p.d, p.amount

	txn := e.DB.Begin(e.Prof)
	wRow, wTID, ok, err := txn.GetByIndex("warehouse_pkey", []types.Datum{i32d(w)})
	if err != nil || !ok {
		txn.Rollback()
		return fmt.Errorf("tpcc: warehouse %d: %v", w, err)
	}
	newW := append(expr.Row(nil), wRow...)
	newW[wYtd] = types.NewFloat64(wRow[wYtd].Float64() + amount)
	if err := txn.UpdateRow("warehouse", wTID, wRow, newW); err != nil {
		txn.Rollback()
		return err
	}
	dRow, dTID, ok, err := txn.GetByIndex("district_pkey", []types.Datum{i32d(w), i32d(d)})
	if err != nil || !ok {
		txn.Rollback()
		return fmt.Errorf("tpcc: district: %v", err)
	}
	newD := append(expr.Row(nil), dRow...)
	newD[dYtd] = types.NewFloat64(dRow[dYtd].Float64() + amount)
	if err := txn.UpdateRow("district", dTID, dRow, newD); err != nil {
		txn.Rollback()
		return err
	}

	var cRow expr.Row
	var cTID heap.TID
	if p.byName {
		cRow, cTID, err = e.customerByLastName(txn, w, d, p.last)
	} else {
		var found bool
		cRow, cTID, found, err = txn.GetByIndex("customer_pkey", []types.Datum{i32d(w), i32d(d), i32d(p.c)})
		if err == nil && !found {
			err = fmt.Errorf("tpcc: customer %d missing", p.c)
		}
	}
	if err != nil || cRow == nil {
		txn.Rollback()
		if err == nil {
			return nil // no customer with that last name: count as done
		}
		return err
	}
	newC := append(expr.Row(nil), cRow...)
	newC[cBalance] = types.NewFloat64(cRow[cBalance].Float64() - amount)
	newC[cYtdPayment] = types.NewFloat64(cRow[cYtdPayment].Float64() + amount)
	newC[cPaymentCnt] = i32d(cRow[cPaymentCnt].Int32() + 1)
	if err := txn.UpdateRow("customer", cTID, cRow, newC); err != nil {
		txn.Rollback()
		return err
	}
	if err := txn.Insert("history", []types.Datum{
		cRow[cID], i32d(d), i32d(w), i32d(d), i32d(w),
		types.NewDate(e.today), types.NewFloat64(amount),
		types.NewString("payment-history-data"),
	}); err != nil {
		txn.Rollback()
		return err
	}
	txn.Commit()
	return nil
}

// customerByLastName returns the middle customer (by first name) among
// those with the given last name, per the specification.
func (e *Executor) customerByLastName(txn *engine.Txn, w, d int32, last string) (expr.Row, heap.TID, error) {
	type hit struct {
		row expr.Row
		tid heap.TID
	}
	var hits []hit
	err := txn.ScanIndexPrefix("customer_by_name",
		[]types.Datum{i32d(w), i32d(d), types.NewString(last)},
		func(row expr.Row, tid heap.TID) bool {
			hits = append(hits, hit{row, tid})
			return true
		})
	if err != nil || len(hits) == 0 {
		return nil, heap.TID{}, err
	}
	mid := hits[len(hits)/2]
	return mid.row, mid.tid, nil
}

// --- Order-Status ---

type osParams struct {
	w, d   int32
	byName bool
	last   string
	c      int32
}

func (e *Executor) orderStatusParams() osParams {
	p := osParams{
		w: int32(1 + e.Rng.Intn(e.Cfg.Warehouses)),
		d: int32(1 + e.Rng.Intn(e.Cfg.DistrictsPerWH)),
	}
	p.byName = e.Rng.Intn(100) < 60
	if p.byName {
		p.last = LastName(e.randLastNum())
	} else {
		p.c = int32(nuRand(e.Rng, 1023, 1, e.Cfg.CustomersPerDist))
	}
	return p
}

// OrderStatus runs the Order-Status read-only transaction.
func (e *Executor) OrderStatus() error {
	p := e.orderStatusParams()
	return e.dispatch(TxnOrderStatus, func() error { return e.orderStatusFused(p) }, func() error { return e.orderStatusStmt(p) })
}

func (e *Executor) orderStatusStmt(p osParams) error {
	w, d := p.w, p.d

	txn := e.DB.Begin(e.Prof)
	defer txn.Commit()
	var cRow expr.Row
	var err error
	if p.byName {
		cRow, _, err = e.customerByLastName(txn, w, d, p.last)
	} else {
		cRow, _, _, err = txn.GetByIndex("customer_pkey", []types.Datum{i32d(w), i32d(d), i32d(p.c)})
	}
	if err != nil {
		return err
	}
	if cRow == nil {
		return nil
	}
	// Most recent order for the customer.
	oRow, _, found, err := txn.LastByIndexPrefix("orders_by_customer",
		[]types.Datum{i32d(w), i32d(d), cRow[cID]})
	if err != nil || !found {
		return err
	}
	// Its order lines.
	count := 0
	err = txn.ScanIndexPrefix("order_line_pkey",
		[]types.Datum{i32d(w), i32d(d), oRow[oID]},
		func(row expr.Row, _ heap.TID) bool {
			_ = row[olIID]
			_ = row[olAmount]
			count++
			return true
		})
	if err != nil {
		return err
	}
	if count == 0 {
		return fmt.Errorf("tpcc: order (%d,%d,%d) has no lines", w, d, oRow[oID].Int32())
	}
	return nil
}

// --- Delivery ---

type delParams struct {
	w, carrier int32
}

func (e *Executor) deliveryParams() delParams {
	return delParams{
		w:       int32(1 + e.Rng.Intn(e.Cfg.Warehouses)),
		carrier: int32(1 + e.Rng.Intn(10)),
	}
}

// Delivery runs the Delivery transaction: for each district of a
// warehouse, deliver the oldest undelivered order.
func (e *Executor) Delivery() error {
	p := e.deliveryParams()
	return e.dispatch(TxnDelivery, func() error { return e.deliveryFused(p) }, func() error { return e.deliveryStmt(p) })
}

func (e *Executor) deliveryStmt(p delParams) error {
	w, carrier := p.w, p.carrier

	txn := e.DB.Begin(e.Prof)
	for d := int32(1); d <= int32(e.Cfg.DistrictsPerWH); d++ {
		// Oldest new_order in the district.
		var noRow expr.Row
		var noTID heap.TID
		err := txn.ScanIndexPrefix("new_order_pkey",
			[]types.Datum{i32d(w), i32d(d)},
			func(row expr.Row, tid heap.TID) bool {
				noRow = row
				noTID = tid
				return false
			})
		if err != nil {
			txn.Rollback()
			return err
		}
		if noRow == nil {
			continue // district fully delivered
		}
		orderID := noRow[2]
		if err := txn.DeleteRow("new_order", noTID, noRow); err != nil {
			txn.Rollback()
			return err
		}
		oRow, oTID, found, err := txn.GetByIndex("orders_pkey",
			[]types.Datum{i32d(w), i32d(d), orderID})
		if err != nil || !found {
			txn.Rollback()
			return fmt.Errorf("tpcc: order (%d,%d,%v) missing: %v", w, d, orderID, err)
		}
		newO := append(expr.Row(nil), oRow...)
		newO[oCarrier] = i32d(carrier)
		if err := txn.UpdateRow("orders", oTID, oRow, newO); err != nil {
			txn.Rollback()
			return err
		}
		// Stamp lines and total their amounts.
		type lineHit struct {
			row expr.Row
			tid heap.TID
		}
		var lines []lineHit
		total := 0.0
		err = txn.ScanIndexPrefix("order_line_pkey",
			[]types.Datum{i32d(w), i32d(d), orderID},
			func(row expr.Row, tid heap.TID) bool {
				lines = append(lines, lineHit{append(expr.Row(nil), row...), tid})
				total += row[olAmount].Float64()
				return true
			})
		if err != nil {
			txn.Rollback()
			return err
		}
		for _, ln := range lines {
			newL := append(expr.Row(nil), ln.row...)
			newL[olDeliveryD] = types.NewDate(e.today)
			if err := txn.UpdateRow("order_line", ln.tid, ln.row, newL); err != nil {
				txn.Rollback()
				return err
			}
		}
		// Credit the customer.
		cRow, cTID, found, err := txn.GetByIndex("customer_pkey",
			[]types.Datum{i32d(w), i32d(d), oRow[oCID]})
		if err != nil || !found {
			txn.Rollback()
			return fmt.Errorf("tpcc: customer for order: %v", err)
		}
		newC := append(expr.Row(nil), cRow...)
		newC[cBalance] = types.NewFloat64(cRow[cBalance].Float64() + total)
		newC[cDeliveryCnt] = i32d(cRow[cDeliveryCnt].Int32() + 1)
		if err := txn.UpdateRow("customer", cTID, cRow, newC); err != nil {
			txn.Rollback()
			return err
		}
	}
	txn.Commit()
	return nil
}

// --- Stock-Level ---

type slParams struct {
	w, d      int32
	threshold int32
}

func (e *Executor) stockLevelParams() slParams {
	return slParams{
		w:         int32(1 + e.Rng.Intn(e.Cfg.Warehouses)),
		d:         int32(1 + e.Rng.Intn(e.Cfg.DistrictsPerWH)),
		threshold: int32(10 + e.Rng.Intn(11)),
	}
}

// StockLevel runs the Stock-Level read-only transaction: count distinct
// items in the district's last 20 orders whose stock is below threshold.
func (e *Executor) StockLevel() error {
	p := e.stockLevelParams()
	return e.dispatch(TxnStockLevel, func() error { return e.stockLevelFused(p) }, func() error { return e.stockLevelStmt(p) })
}

func (e *Executor) stockLevelStmt(p slParams) error {
	w, d, threshold := p.w, p.d, p.threshold

	txn := e.DB.Begin(e.Prof)
	defer txn.Commit()
	dRow, _, ok, err := txn.GetByIndex("district_pkey", []types.Datum{i32d(w), i32d(d)})
	if err != nil || !ok {
		return fmt.Errorf("tpcc: district: %v", err)
	}
	nextO := dRow[dNextOID].Int32()
	lo := nextO - 20
	if lo < 1 {
		lo = 1
	}
	seen := map[int32]bool{}
	err = txn.ScanIndexRange("order_line_pkey",
		[]types.Datum{i32d(w), i32d(d), i32d(lo)},
		[]types.Datum{i32d(w), i32d(d), i32d(nextO - 1)},
		func(row expr.Row, _ heap.TID) bool {
			seen[row[olIID].Int32()] = true
			return true
		})
	if err != nil {
		return err
	}
	low := 0
	for item := range seen {
		sRow, _, ok, err := txn.GetByIndex("stock_pkey", []types.Datum{i32d(w), i32d(item)})
		if err != nil || !ok {
			return fmt.Errorf("tpcc: stock %d: %v", item, err)
		}
		if sRow[sQuantity].Int32() < threshold {
			low++
		}
	}
	_ = low
	return nil
}
