package tpcc

import (
	"fmt"
	"math/rand"

	"microspec/internal/engine"
	"microspec/internal/expr"
	"microspec/internal/profile"
	"microspec/internal/storage/heap"
	"microspec/internal/types"
)

// Column ordinals for the rows the transactions touch.
const (
	wTax = 7
	wYtd = 8

	dTax     = 7
	dYtd     = 8
	dNextOID = 9

	cID          = 2
	cFirst       = 3
	cLast        = 5
	cCredit      = 12
	cDiscount    = 14
	cBalance     = 15
	cYtdPayment  = 16
	cPaymentCnt  = 17
	cDeliveryCnt = 18

	oID      = 2
	oCID     = 3
	oEntryD  = 4
	oCarrier = 5
	oOlCnt   = 6

	olOID       = 2
	olIID       = 4
	olDeliveryD = 6
	olQuantity  = 7
	olAmount    = 8

	iPrice = 3

	sQuantity  = 2
	sYtd       = 3
	sOrderCnt  = 4
	sRemoteCnt = 5
)

// Executor runs TPC-C transactions against one database. It is not
// goroutine-safe; each terminal owns one (they share the DB, which
// serializes writers internally).
type Executor struct {
	DB   *engine.DB
	Cfg  Config
	Rng  *rand.Rand
	Prof *profile.Counters

	// today stamps order entry dates.
	today int32
}

// NewExecutor returns a transaction executor with its own random stream.
func NewExecutor(db *engine.DB, cfg Config, seed int64) *Executor {
	return &Executor{DB: db, Cfg: cfg, Rng: rand.New(rand.NewSource(seed)), today: loadDate + 1}
}

func i32d(v int32) types.Datum { return types.NewInt32(v) }

// randLastNum picks a last-name number per the specification's
// NURand(255,0,999), clamped to the names that actually exist when the
// population is scaled below the spec's 3000 customers per district
// (loading assigns names 0..n-1 for the first 1000 customers).
func (e *Executor) randLastNum() int {
	hi := 999
	if e.Cfg.CustomersPerDist-1 < hi {
		hi = e.Cfg.CustomersPerDist - 1
	}
	return nuRand(e.Rng, 255, 0, hi)
}

// ErrRollback marks the intentional 1% New-Order abort.
var ErrRollback = fmt.Errorf("tpcc: new-order rollback (unused item)")

// NewOrder runs the New-Order transaction for a random district and
// customer; 1% of invocations roll back per the specification.
func (e *Executor) NewOrder() error {
	w := int32(1 + e.Rng.Intn(e.Cfg.Warehouses))
	d := int32(1 + e.Rng.Intn(e.Cfg.DistrictsPerWH))
	c := int32(nuRand(e.Rng, 1023, 1, e.Cfg.CustomersPerDist))
	nItems := 5 + e.Rng.Intn(11)
	abort := e.Rng.Intn(100) == 0

	txn := e.DB.Begin(e.Prof)
	wRow, _, ok, err := txn.GetByIndex("warehouse_pkey", []types.Datum{i32d(w)})
	if err != nil || !ok {
		txn.Rollback()
		return fmt.Errorf("tpcc: warehouse %d: %v", w, err)
	}
	dRow, dTID, ok, err := txn.GetByIndex("district_pkey", []types.Datum{i32d(w), i32d(d)})
	if err != nil || !ok {
		txn.Rollback()
		return fmt.Errorf("tpcc: district (%d,%d): %v", w, d, err)
	}
	cRow, _, ok, err := txn.GetByIndex("customer_pkey", []types.Datum{i32d(w), i32d(d), i32d(c)})
	if err != nil || !ok {
		txn.Rollback()
		return fmt.Errorf("tpcc: customer (%d,%d,%d): %v", w, d, c, err)
	}

	orderID := dRow[dNextOID].Int32()
	newD := append(expr.Row(nil), dRow...)
	newD[dNextOID] = i32d(orderID + 1)
	if err := txn.UpdateRow("district", dTID, dRow, newD); err != nil {
		txn.Rollback()
		return err
	}

	allLocal := int32(1)
	if err := txn.Insert("orders", []types.Datum{
		i32d(w), i32d(d), i32d(orderID), i32d(c),
		types.NewDate(e.today), i32d(0), i32d(int32(nItems)), i32d(allLocal),
	}); err != nil {
		txn.Rollback()
		return err
	}
	if err := txn.Insert("new_order", []types.Datum{i32d(w), i32d(d), i32d(orderID)}); err != nil {
		txn.Rollback()
		return err
	}

	discount := cRow[cDiscount].Float64()
	taxes := (1 + wRow[wTax].Float64() + dRow[dTax].Float64()) * (1 - discount)
	total := 0.0
	for ln := 1; ln <= nItems; ln++ {
		item := int32(nuRand(e.Rng, 8191, 1, e.Cfg.Items))
		iRow, _, ok, err := txn.GetByIndex("item_pkey", []types.Datum{i32d(item)})
		if err != nil || !ok {
			txn.Rollback()
			return fmt.Errorf("tpcc: item %d: %v", item, err)
		}
		sRow, sTID, ok, err := txn.GetByIndex("stock_pkey", []types.Datum{i32d(w), i32d(item)})
		if err != nil || !ok {
			txn.Rollback()
			return fmt.Errorf("tpcc: stock (%d,%d): %v", w, item, err)
		}
		qty := int32(1 + e.Rng.Intn(10))
		newS := append(expr.Row(nil), sRow...)
		sq := sRow[sQuantity].Int32()
		if sq >= qty+10 {
			sq -= qty
		} else {
			sq = sq - qty + 91
		}
		newS[sQuantity] = i32d(sq)
		newS[sYtd] = i32d(sRow[sYtd].Int32() + qty)
		newS[sOrderCnt] = i32d(sRow[sOrderCnt].Int32() + 1)
		if err := txn.UpdateRow("stock", sTID, sRow, newS); err != nil {
			txn.Rollback()
			return err
		}
		amount := float64(qty) * iRow[iPrice].Float64()
		total += amount
		if err := txn.Insert("order_line", []types.Datum{
			i32d(w), i32d(d), i32d(orderID), i32d(int32(ln)),
			i32d(item), i32d(w), types.NewDate(0), i32d(qty),
			types.NewFloat64(amount),
			types.NewChar(fmt.Sprintf("dist-info-%02d-padding--", d)),
		}); err != nil {
			txn.Rollback()
			return err
		}
	}
	_ = total * taxes

	if abort {
		if err := txn.Rollback(); err != nil {
			return err
		}
		return ErrRollback
	}
	txn.Commit()
	return nil
}

// Payment runs the Payment transaction: 60% of customers are selected by
// last name, 40% by id.
func (e *Executor) Payment() error {
	w := int32(1 + e.Rng.Intn(e.Cfg.Warehouses))
	d := int32(1 + e.Rng.Intn(e.Cfg.DistrictsPerWH))
	amount := 1 + float64(e.Rng.Intn(499900))/100

	txn := e.DB.Begin(e.Prof)
	wRow, wTID, ok, err := txn.GetByIndex("warehouse_pkey", []types.Datum{i32d(w)})
	if err != nil || !ok {
		txn.Rollback()
		return fmt.Errorf("tpcc: warehouse %d: %v", w, err)
	}
	newW := append(expr.Row(nil), wRow...)
	newW[wYtd] = types.NewFloat64(wRow[wYtd].Float64() + amount)
	if err := txn.UpdateRow("warehouse", wTID, wRow, newW); err != nil {
		txn.Rollback()
		return err
	}
	dRow, dTID, ok, err := txn.GetByIndex("district_pkey", []types.Datum{i32d(w), i32d(d)})
	if err != nil || !ok {
		txn.Rollback()
		return fmt.Errorf("tpcc: district: %v", err)
	}
	newD := append(expr.Row(nil), dRow...)
	newD[dYtd] = types.NewFloat64(dRow[dYtd].Float64() + amount)
	if err := txn.UpdateRow("district", dTID, dRow, newD); err != nil {
		txn.Rollback()
		return err
	}

	var cRow expr.Row
	var cTID heap.TID
	if e.Rng.Intn(100) < 60 {
		cRow, cTID, err = e.customerByLastName(txn, w, d, LastName(e.randLastNum()))
	} else {
		c := int32(nuRand(e.Rng, 1023, 1, e.Cfg.CustomersPerDist))
		var found bool
		cRow, cTID, found, err = txn.GetByIndex("customer_pkey", []types.Datum{i32d(w), i32d(d), i32d(c)})
		if err == nil && !found {
			err = fmt.Errorf("tpcc: customer %d missing", c)
		}
	}
	if err != nil || cRow == nil {
		txn.Rollback()
		if err == nil {
			return nil // no customer with that last name: count as done
		}
		return err
	}
	newC := append(expr.Row(nil), cRow...)
	newC[cBalance] = types.NewFloat64(cRow[cBalance].Float64() - amount)
	newC[cYtdPayment] = types.NewFloat64(cRow[cYtdPayment].Float64() + amount)
	newC[cPaymentCnt] = i32d(cRow[cPaymentCnt].Int32() + 1)
	if err := txn.UpdateRow("customer", cTID, cRow, newC); err != nil {
		txn.Rollback()
		return err
	}
	if err := txn.Insert("history", []types.Datum{
		cRow[cID], i32d(d), i32d(w), i32d(d), i32d(w),
		types.NewDate(e.today), types.NewFloat64(amount),
		types.NewString("payment-history-data"),
	}); err != nil {
		txn.Rollback()
		return err
	}
	txn.Commit()
	return nil
}

// customerByLastName returns the middle customer (by first name) among
// those with the given last name, per the specification.
func (e *Executor) customerByLastName(txn *engine.Txn, w, d int32, last string) (expr.Row, heap.TID, error) {
	type hit struct {
		row expr.Row
		tid heap.TID
	}
	var hits []hit
	err := txn.ScanIndexPrefix("customer_by_name",
		[]types.Datum{i32d(w), i32d(d), types.NewString(last)},
		func(row expr.Row, tid heap.TID) bool {
			hits = append(hits, hit{row, tid})
			return true
		})
	if err != nil || len(hits) == 0 {
		return nil, heap.TID{}, err
	}
	mid := hits[len(hits)/2]
	return mid.row, mid.tid, nil
}

// OrderStatus runs the Order-Status read-only transaction.
func (e *Executor) OrderStatus() error {
	w := int32(1 + e.Rng.Intn(e.Cfg.Warehouses))
	d := int32(1 + e.Rng.Intn(e.Cfg.DistrictsPerWH))

	txn := e.DB.Begin(e.Prof)
	defer txn.Commit()
	var cRow expr.Row
	var err error
	if e.Rng.Intn(100) < 60 {
		cRow, _, err = e.customerByLastName(txn, w, d, LastName(e.randLastNum()))
	} else {
		c := int32(nuRand(e.Rng, 1023, 1, e.Cfg.CustomersPerDist))
		cRow, _, _, err = txn.GetByIndex("customer_pkey", []types.Datum{i32d(w), i32d(d), i32d(c)})
	}
	if err != nil {
		return err
	}
	if cRow == nil {
		return nil
	}
	// Most recent order for the customer.
	oRow, _, found, err := txn.LastByIndexPrefix("orders_by_customer",
		[]types.Datum{i32d(w), i32d(d), cRow[cID]})
	if err != nil || !found {
		return err
	}
	// Its order lines.
	count := 0
	err = txn.ScanIndexPrefix("order_line_pkey",
		[]types.Datum{i32d(w), i32d(d), oRow[oID]},
		func(row expr.Row, _ heap.TID) bool {
			_ = row[olIID]
			_ = row[olAmount]
			count++
			return true
		})
	if err != nil {
		return err
	}
	if count == 0 {
		return fmt.Errorf("tpcc: order (%d,%d,%d) has no lines", w, d, oRow[oID].Int32())
	}
	return nil
}

// Delivery runs the Delivery transaction: for each district of a
// warehouse, deliver the oldest undelivered order.
func (e *Executor) Delivery() error {
	w := int32(1 + e.Rng.Intn(e.Cfg.Warehouses))
	carrier := int32(1 + e.Rng.Intn(10))

	txn := e.DB.Begin(e.Prof)
	for d := int32(1); d <= int32(e.Cfg.DistrictsPerWH); d++ {
		// Oldest new_order in the district.
		var noRow expr.Row
		var noTID heap.TID
		err := txn.ScanIndexPrefix("new_order_pkey",
			[]types.Datum{i32d(w), i32d(d)},
			func(row expr.Row, tid heap.TID) bool {
				noRow = row
				noTID = tid
				return false
			})
		if err != nil {
			txn.Rollback()
			return err
		}
		if noRow == nil {
			continue // district fully delivered
		}
		orderID := noRow[2]
		if err := txn.DeleteRow("new_order", noTID, noRow); err != nil {
			txn.Rollback()
			return err
		}
		oRow, oTID, found, err := txn.GetByIndex("orders_pkey",
			[]types.Datum{i32d(w), i32d(d), orderID})
		if err != nil || !found {
			txn.Rollback()
			return fmt.Errorf("tpcc: order (%d,%d,%v) missing: %v", w, d, orderID, err)
		}
		newO := append(expr.Row(nil), oRow...)
		newO[oCarrier] = i32d(carrier)
		if err := txn.UpdateRow("orders", oTID, oRow, newO); err != nil {
			txn.Rollback()
			return err
		}
		// Stamp lines and total their amounts.
		type lineHit struct {
			row expr.Row
			tid heap.TID
		}
		var lines []lineHit
		total := 0.0
		err = txn.ScanIndexPrefix("order_line_pkey",
			[]types.Datum{i32d(w), i32d(d), orderID},
			func(row expr.Row, tid heap.TID) bool {
				lines = append(lines, lineHit{append(expr.Row(nil), row...), tid})
				total += row[olAmount].Float64()
				return true
			})
		if err != nil {
			txn.Rollback()
			return err
		}
		for _, ln := range lines {
			newL := append(expr.Row(nil), ln.row...)
			newL[olDeliveryD] = types.NewDate(e.today)
			if err := txn.UpdateRow("order_line", ln.tid, ln.row, newL); err != nil {
				txn.Rollback()
				return err
			}
		}
		// Credit the customer.
		cRow, cTID, found, err := txn.GetByIndex("customer_pkey",
			[]types.Datum{i32d(w), i32d(d), oRow[oCID]})
		if err != nil || !found {
			txn.Rollback()
			return fmt.Errorf("tpcc: customer for order: %v", err)
		}
		newC := append(expr.Row(nil), cRow...)
		newC[cBalance] = types.NewFloat64(cRow[cBalance].Float64() + total)
		newC[cDeliveryCnt] = i32d(cRow[cDeliveryCnt].Int32() + 1)
		if err := txn.UpdateRow("customer", cTID, cRow, newC); err != nil {
			txn.Rollback()
			return err
		}
	}
	txn.Commit()
	return nil
}

// StockLevel runs the Stock-Level read-only transaction: count distinct
// items in the district's last 20 orders whose stock is below threshold.
func (e *Executor) StockLevel() error {
	w := int32(1 + e.Rng.Intn(e.Cfg.Warehouses))
	d := int32(1 + e.Rng.Intn(e.Cfg.DistrictsPerWH))
	threshold := int32(10 + e.Rng.Intn(11))

	txn := e.DB.Begin(e.Prof)
	defer txn.Commit()
	dRow, _, ok, err := txn.GetByIndex("district_pkey", []types.Datum{i32d(w), i32d(d)})
	if err != nil || !ok {
		return fmt.Errorf("tpcc: district: %v", err)
	}
	nextO := dRow[dNextOID].Int32()
	lo := nextO - 20
	if lo < 1 {
		lo = 1
	}
	seen := map[int32]bool{}
	err = txn.ScanIndexRange("order_line_pkey",
		[]types.Datum{i32d(w), i32d(d), i32d(lo)},
		[]types.Datum{i32d(w), i32d(d), i32d(nextO - 1)},
		func(row expr.Row, _ heap.TID) bool {
			seen[row[olIID].Int32()] = true
			return true
		})
	if err != nil {
		return err
	}
	low := 0
	for item := range seen {
		sRow, _, ok, err := txn.GetByIndex("stock_pkey", []types.Datum{i32d(w), i32d(item)})
		if err != nil || !ok {
			return fmt.Errorf("tpcc: stock %d: %v", item, err)
		}
		if sRow[sQuantity].Int32() < threshold {
			low++
		}
	}
	_ = low
	return nil
}
