package tpcc

import (
	"fmt"
	"math/rand"

	"microspec/internal/engine"
	"microspec/internal/profile"
	"microspec/internal/types"
)

// Config sizes the initial population. The specification's values are
// the defaults; tests shrink them to keep runs fast.
type Config struct {
	Warehouses        int
	DistrictsPerWH    int
	CustomersPerDist  int
	Items             int
	OrdersPerDistrict int // initial orders per district (spec: 3000)
}

// DefaultConfig returns the specification-sized population for the given
// warehouse count.
func DefaultConfig(warehouses int) Config {
	return Config{
		Warehouses:        warehouses,
		DistrictsPerWH:    10,
		CustomersPerDist:  3000,
		Items:             100000,
		OrdersPerDistrict: 3000,
	}
}

// SmallConfig returns a laptop-scale population that preserves the
// schema and access patterns.
func SmallConfig(warehouses int) Config {
	return Config{
		Warehouses:        warehouses,
		DistrictsPerWH:    10,
		CustomersPerDist:  60,
		Items:             1000,
		OrdersPerDistrict: 60,
	}
}

// lastNameSyllables is the specification's last-name generator input.
var lastNameSyllables = []string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

// LastName builds a customer last name from a number per the spec.
func LastName(num int) string {
	return lastNameSyllables[num/100%10] + lastNameSyllables[num/10%10] + lastNameSyllables[num%10]
}

// nuRand is the specification's non-uniform random function NURand(A,x,y).
func nuRand(rng *rand.Rand, a, x, y int) int {
	c := 123 % (a + 1)
	return ((rng.Intn(a+1)|(x+rng.Intn(y-x+1)))+c)%(y-x+1) + x
}

func randStr(rng *rand.Rand, lo, hi int) string {
	n := lo + rng.Intn(hi-lo+1)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

var loadDate = types.MustParseDate("2011-01-01")

// CreateSchema issues the TPC-C DDL.
func CreateSchema(db *engine.DB) error {
	for _, ddl := range SchemaDDL() {
		if _, err := db.Exec(ddl); err != nil {
			return fmt.Errorf("tpcc: %w", err)
		}
	}
	return nil
}

// Load populates the database per cfg and returns total rows.
func Load(db *engine.DB, cfg Config, prof *profile.Counters) (int64, error) {
	rng := rand.New(rand.NewSource(42))
	var total int64
	load := func(table string, iter func() ([]types.Datum, bool)) error {
		n, err := db.BulkLoad(table, prof, iter)
		if err != nil {
			return fmt.Errorf("tpcc: loading %s: %w", table, err)
		}
		total += n
		return nil
	}

	// item (global).
	i := 0
	if err := load("item", func() ([]types.Datum, bool) {
		if i >= cfg.Items {
			return nil, false
		}
		i++
		data := randStr(rng, 26, 50)
		if rng.Intn(10) == 0 {
			data = data[:10] + "ORIGINAL" + data[10+8:]
		}
		return []types.Datum{
			types.NewInt32(int32(i)),
			types.NewInt32(int32(1 + rng.Intn(10000))),
			types.NewString("item-" + randStr(rng, 8, 16)),
			types.NewFloat64(1 + float64(rng.Intn(9900))/100),
			types.NewString(data),
		}, true
	}); err != nil {
		return total, err
	}

	for w := 1; w <= cfg.Warehouses; w++ {
		wID := int32(w)
		// warehouse.
		done := false
		if err := load("warehouse", func() ([]types.Datum, bool) {
			if done {
				return nil, false
			}
			done = true
			return []types.Datum{
				types.NewInt32(wID),
				types.NewString(fmt.Sprintf("wh-%d", w)),
				types.NewString(randStr(rng, 10, 20)),
				types.NewString(randStr(rng, 10, 20)),
				types.NewString(randStr(rng, 10, 20)),
				types.NewChar(randStr(rng, 2, 2)),
				types.NewChar(fmt.Sprintf("%09d", rng.Intn(1e9))),
				types.NewFloat64(float64(rng.Intn(2000)) / 10000),
				types.NewFloat64(300000),
			}, true
		}); err != nil {
			return total, err
		}
		// stock.
		si := 0
		if err := load("stock", func() ([]types.Datum, bool) {
			if si >= cfg.Items {
				return nil, false
			}
			si++
			return []types.Datum{
				types.NewInt32(wID),
				types.NewInt32(int32(si)),
				types.NewInt32(int32(10 + rng.Intn(91))),
				types.NewInt32(0),
				types.NewInt32(0),
				types.NewInt32(0),
				types.NewString(randStr(rng, 26, 50)),
			}, true
		}); err != nil {
			return total, err
		}
		for d := 1; d <= cfg.DistrictsPerWH; d++ {
			dID := int32(d)
			done := false
			if err := load("district", func() ([]types.Datum, bool) {
				if done {
					return nil, false
				}
				done = true
				return []types.Datum{
					types.NewInt32(wID),
					types.NewInt32(dID),
					types.NewString(fmt.Sprintf("dist-%d-%d", w, d)),
					types.NewString(randStr(rng, 10, 20)),
					types.NewString(randStr(rng, 10, 20)),
					types.NewChar(randStr(rng, 2, 2)),
					types.NewChar(fmt.Sprintf("%09d", rng.Intn(1e9))),
					types.NewFloat64(float64(rng.Intn(2000)) / 10000),
					types.NewFloat64(30000),
					types.NewInt32(int32(cfg.OrdersPerDistrict + 1)),
				}, true
			}); err != nil {
				return total, err
			}
			// customers.
			ci := 0
			if err := load("customer", func() ([]types.Datum, bool) {
				if ci >= cfg.CustomersPerDist {
					return nil, false
				}
				ci++
				credit := "GC"
				if rng.Intn(10) == 0 {
					credit = "BC"
				}
				lastNum := ci - 1
				if ci > 1000 {
					lastNum = nuRand(rng, 255, 0, 999)
				}
				return []types.Datum{
					types.NewInt32(wID),
					types.NewInt32(dID),
					types.NewInt32(int32(ci)),
					types.NewString(randStr(rng, 8, 16)),
					types.NewChar("OE"),
					types.NewString(LastName(lastNum)),
					types.NewString(randStr(rng, 10, 20)),
					types.NewString(randStr(rng, 10, 20)),
					types.NewChar(randStr(rng, 2, 2)),
					types.NewChar(fmt.Sprintf("%09d", rng.Intn(1e9))),
					types.NewChar(fmt.Sprintf("%016d", rng.Int63n(1e16))),
					types.NewDate(loadDate),
					types.NewChar(credit),
					types.NewFloat64(50000),
					types.NewFloat64(float64(rng.Intn(5000)) / 10000),
					types.NewFloat64(-10),
					types.NewFloat64(10),
					types.NewInt32(1),
					types.NewInt32(0),
					types.NewString(randStr(rng, 50, 100)),
				}, true
			}); err != nil {
				return total, err
			}
			// history (one row per customer).
			hi := 0
			if err := load("history", func() ([]types.Datum, bool) {
				if hi >= cfg.CustomersPerDist {
					return nil, false
				}
				hi++
				return []types.Datum{
					types.NewInt32(int32(hi)),
					types.NewInt32(dID),
					types.NewInt32(wID),
					types.NewInt32(dID),
					types.NewInt32(wID),
					types.NewDate(loadDate),
					types.NewFloat64(10),
					types.NewString(randStr(rng, 12, 24)),
				}, true
			}); err != nil {
				return total, err
			}
			// orders with lines; the last third are undelivered and get
			// new_order entries.
			perm := rng.Perm(cfg.CustomersPerDist)
			oi := 0
			var pendingLines [][]types.Datum
			var newOrders [][]types.Datum
			if err := load("orders", func() ([]types.Datum, bool) {
				if oi >= cfg.OrdersPerDistrict {
					return nil, false
				}
				oi++
				oID := int32(oi)
				cID := int32(perm[(oi-1)%len(perm)] + 1)
				olCnt := 5 + rng.Intn(11)
				carrier := int32(0)
				delivered := oi <= cfg.OrdersPerDistrict*2/3
				if delivered {
					carrier = int32(1 + rng.Intn(10))
				} else {
					newOrders = append(newOrders, []types.Datum{
						types.NewInt32(wID), types.NewInt32(dID), types.NewInt32(oID),
					})
				}
				for ln := 1; ln <= olCnt; ln++ {
					amount := 0.0
					deliveryD := loadDate
					if !delivered {
						amount = 1 + float64(rng.Intn(999900))/100
						deliveryD = 0
					}
					pendingLines = append(pendingLines, []types.Datum{
						types.NewInt32(wID), types.NewInt32(dID), types.NewInt32(oID),
						types.NewInt32(int32(ln)),
						types.NewInt32(int32(1 + rng.Intn(cfg.Items))),
						types.NewInt32(wID),
						types.NewDate(deliveryD),
						types.NewInt32(5),
						types.NewFloat64(amount),
						types.NewChar(randStr(rng, 24, 24)),
					})
				}
				return []types.Datum{
					types.NewInt32(wID), types.NewInt32(dID), types.NewInt32(oID),
					types.NewInt32(cID),
					types.NewDate(loadDate),
					types.NewInt32(carrier),
					types.NewInt32(int32(olCnt)),
					types.NewInt32(1),
				}, true
			}); err != nil {
				return total, err
			}
			li := 0
			if err := load("order_line", func() ([]types.Datum, bool) {
				if li >= len(pendingLines) {
					return nil, false
				}
				li++
				return pendingLines[li-1], true
			}); err != nil {
				return total, err
			}
			ni := 0
			if err := load("new_order", func() ([]types.Datum, bool) {
				if ni >= len(newOrders) {
					return nil, false
				}
				ni++
				return newOrders[ni-1], true
			}); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// NewDatabase creates, populates, and warms a TPC-C database.
func NewDatabase(ecfg engine.Config, cfg Config) (*engine.DB, error) {
	db := engine.Open(ecfg)
	if err := CreateSchema(db); err != nil {
		return nil, err
	}
	if _, err := Load(db, cfg, nil); err != nil {
		return nil, err
	}
	if err := db.WarmUp(); err != nil {
		return nil, err
	}
	return db, nil
}
