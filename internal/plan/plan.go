// Package plan turns parsed SQL statements into executable Volcano-style
// plan trees. It owns join ordering (greedy left-deep), predicate
// pushdown, aggregate extraction, subquery decorrelation, the EXPLAIN /
// EXPLAIN ANALYZE renderers, and — at the end of planning — the
// intra-query parallelization pass that rewrites eligible scan regions
// into Gather nodes with per-worker bee closures (parallel.go). It is
// also where bees are placed into plans: every scan, filter, join, and
// aggregate consults the bee module (internal/core) for a specialized
// routine and falls back to the generic evaluator when none applies.
package plan

import (
	"fmt"
	"sync"

	"microspec/internal/catalog"
	"microspec/internal/core"
	"microspec/internal/exec"
	"microspec/internal/expr"
	"microspec/internal/index/btree"
	"microspec/internal/sql"
	"microspec/internal/storage/heap"
	"microspec/internal/types"
)

// Planner turns parsed statements into executable plans for one database.
type Planner struct {
	Cat *catalog.Catalog
	Mod *core.Module
	// HeapFor resolves a relation to its heap (provided by the engine).
	HeapFor func(rel *catalog.Relation) (*heap.Heap, error)
	// Workers is the intra-query parallelism degree; plans stay serial
	// when it is ≤ 1 (see parallelize).
	Workers int
	// Batch enables the batch-at-a-time rewrite of eligible scan spines
	// (see batch.go); it runs after parallelize so partition subplans
	// batch too.
	Batch bool
	// Params is the prepared-statement slot array $n placeholders bind
	// to. Nil outside a prepared statement, in which case placeholders
	// are a planning error. The engine copies the Planner per prepare, so
	// setting this never races with other sessions.
	Params *expr.ParamSlots
	// ParamTypes records the type inferred for each placeholder during
	// conversion (indexed by 0-based slot). The prepare path sizes it;
	// EXECUTE uses it to coerce bound values.
	ParamTypes []types.T
	// IndexesFor lists the secondary/primary indexes available on a
	// relation as (column-ordinal prefix, lookup) pairs; the engine
	// provides it so attachFilters can plan equality index scans. Nil
	// disables index scan selection.
	IndexesFor func(rel *catalog.Relation) []IndexMeta
}

// IndexMeta describes one index usable for planning: the indexed column
// ordinals (in key order) and the open handle the executor probes. Latch
// is the owning table's latch; index scans walk the tree under it in
// shared mode because the tree is not internally synchronized (see
// exec.IndexScan.Latch).
type IndexMeta struct {
	Name  string
	Cols  []int
	Tree  *btree.Tree
	Latch *sync.RWMutex
}

// Planned is a ready-to-run query plan.
type Planned struct {
	Root exec.Node
	Cols []exec.ColInfo
}

// PlanSelect plans a full SELECT statement.
func (p *Planner) PlanSelect(sel *sql.Select) (*Planned, error) {
	node, sc, err := p.planSelect(sel, nil)
	if err != nil {
		return nil, err
	}
	node = p.parallelize(node)
	node = p.batchify(node)
	cols := make([]exec.ColInfo, len(sc.cols))
	for i, c := range sc.cols {
		cols[i] = exec.ColInfo{Name: c.name, T: c.t}
	}
	return &Planned{Root: node, Cols: cols}, nil
}

// scanFor builds a sequential scan over a base relation through the bee
// module's deformer selection.
func (p *Planner) scanFor(rel *catalog.Relation) (exec.Node, error) {
	h, err := p.HeapFor(rel)
	if err != nil {
		return nil, err
	}
	deform, err := p.Mod.Deformer(rel)
	if err != nil {
		return nil, err
	}
	scan := exec.NewSeqScan(h, deform, 0)
	if p.Mod.Routines().GCL {
		scan.NoteDeforms = p.Mod.NoteGCLCall
	}
	return scan, nil
}

// estRows estimates a base relation's cardinality for join ordering.
func (p *Planner) estRows(rel *catalog.Relation) float64 {
	h, err := p.HeapFor(rel)
	if err != nil || h.LiveTuples() == 0 {
		return 1000
	}
	return float64(h.LiveTuples())
}

// ConvertForRelation lowers an AST expression whose identifiers all
// reference one relation's attributes (UPDATE/DELETE WHERE clauses and
// SET expressions).
func (p *Planner) ConvertForRelation(e sql.Expr, rel *catalog.Relation) (expr.Expr, error) {
	cols := make([]column, len(rel.Attrs))
	for i, a := range rel.Attrs {
		cols[i] = column{tbl: rel.Name, name: a.Name, t: a.Type}
	}
	return p.convertExpr(e, &scope{cols: cols})
}

// baseRelation resolves a FROM-list base table to a catalog relation,
// returning nil if the name is a CTE instead.
func (p *Planner) baseRelation(name string, s *scope) (*catalog.Relation, error) {
	if s != nil {
		if _, ok := s.lookupCTE(name); ok {
			return nil, nil
		}
	}
	rel, err := p.Cat.Lookup(name)
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	return rel, nil
}
