package plan

import (
	"fmt"
	"strconv"
	"strings"

	"microspec/internal/exec"
	"microspec/internal/expr"
	"microspec/internal/sql"
	"microspec/internal/types"
)

// convertExpr lowers an AST expression to an executable expr.Expr,
// resolving identifiers against s (and its ancestors, producing OuterVar
// nodes) and planning any embedded subqueries. Aggregate calls are
// rejected here: the select planner substitutes them before conversion.
func (p *Planner) convertExpr(e sql.Expr, s *scope) (expr.Expr, error) {
	switch n := e.(type) {
	case *sql.Ident:
		depth, idx, t, err := s.resolve(n.Parts)
		if err != nil {
			return nil, err
		}
		return exprVar(depth, idx, t, strings.Join(n.Parts, ".")), nil

	case *sql.NumLit:
		if n.IsFloat {
			f, err := strconv.ParseFloat(n.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("plan: bad numeric literal %q", n.Text)
			}
			return expr.NewConst(types.NewFloat64(f)), nil
		}
		v, err := strconv.ParseInt(n.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("plan: bad integer literal %q", n.Text)
		}
		return expr.NewConst(types.NewInt64(v)), nil

	case *sql.StrLit:
		return expr.NewConst(types.NewString(n.Val)), nil

	case *sql.BoolLit:
		return expr.NewConst(types.NewBool(n.Val)), nil

	case *sql.NullLit:
		return expr.NewConst(types.Null), nil

	case *sql.DateLit:
		d, err := types.ParseDate(n.Val)
		if err != nil {
			return nil, err
		}
		return expr.NewConst(types.NewDate(d)), nil

	case *sql.IntervalLit:
		return nil, fmt.Errorf("plan: interval literal only allowed in date arithmetic")

	case *sql.BinOp:
		return p.convertBinOp(n, s)

	case *sql.Placeholder:
		return p.convertPlaceholder(n, types.T{})

	case *sql.UnOp:
		kid, err := p.convertExpr(n.Kid, s)
		if err != nil {
			return nil, err
		}
		if n.Op == "not" {
			return &expr.Not{Kid: kid}, nil
		}
		return &expr.Neg{Kid: kid}, nil

	case *sql.FuncCall:
		return nil, fmt.Errorf("plan: aggregate %s() not allowed in this context", n.Name)

	case *sql.CaseExpr:
		ce := &expr.Case{}
		for _, w := range n.Whens {
			cond, err := p.convertExpr(w.Cond, s)
			if err != nil {
				return nil, err
			}
			res, err := p.convertExpr(w.Result, s)
			if err != nil {
				return nil, err
			}
			ce.Whens = append(ce.Whens, expr.When{Cond: cond, Result: res})
		}
		if n.Else != nil {
			var err error
			ce.Else, err = p.convertExpr(n.Else, s)
			if err != nil {
				return nil, err
			}
		}
		ce.T = ce.Whens[0].Result.Type()
		// Numeric CASE arms with mixed int/float widen to float.
		if n.Else != nil && ce.Else.Type().Kind == types.KindFloat64 {
			ce.T = types.Float64
		}
		return ce, nil

	case *sql.BetweenExpr:
		x, err := p.convertExpr(n.X, s)
		if err != nil {
			return nil, err
		}
		lo, err := p.convertMaybeParam(n.Lo, s, x.Type())
		if err != nil {
			return nil, err
		}
		hi, err := p.convertMaybeParam(n.Hi, s, x.Type())
		if err != nil {
			return nil, err
		}
		// x BETWEEN lo AND hi needs x twice; rebuild the x expression for
		// the second comparison to keep the tree a tree.
		x2, _ := p.convertExpr(n.X, s)
		var b expr.Expr = &expr.And{Kids: []expr.Expr{
			&expr.Cmp{Op: expr.GE, L: x, R: lo},
			&expr.Cmp{Op: expr.LE, L: x2, R: hi},
		}}
		if n.Not {
			b = &expr.Not{Kid: b}
		}
		return b, nil

	case *sql.InExpr:
		if n.Sub != nil {
			return p.planInSubquery(n, s)
		}
		x, err := p.convertExpr(n.X, s)
		if err != nil {
			return nil, err
		}
		items := make([]types.Datum, len(n.List))
		for i, it := range n.List {
			ce, err := p.convertExpr(it, s)
			if err != nil {
				return nil, err
			}
			c, ok := ce.(*expr.Const)
			if !ok {
				return nil, fmt.Errorf("plan: IN list items must be constants")
			}
			items[i] = c.D
		}
		return &expr.InList{Kid: x, Items: items, Negate: n.Not}, nil

	case *sql.ExistsExpr:
		node, sub, err := p.planSubSelect(n.Sub, s)
		if err != nil {
			return nil, err
		}
		return &exec.ExistsSubquery{Plan: node, Correlated: sub.correlated, Negate: n.Not}, nil

	case *sql.SubqueryExpr:
		node, sub, err := p.planSubSelect(n.Sel, s)
		if err != nil {
			return nil, err
		}
		if len(sub.cols) != 1 {
			return nil, fmt.Errorf("plan: scalar subquery must return one column")
		}
		return &exec.ScalarSubquery{Plan: node, Correlated: sub.correlated, T: sub.cols[0].t}, nil

	case *sql.LikeExpr:
		x, err := p.convertExpr(n.X, s)
		if err != nil {
			return nil, err
		}
		return expr.NewLike(x, n.Pattern, n.Not), nil

	case *sql.IsNullExpr:
		x, err := p.convertExpr(n.X, s)
		if err != nil {
			return nil, err
		}
		var b expr.Expr = &expr.IsNull{Kid: x}
		if n.Not {
			b = &expr.Not{Kid: b}
		}
		return b, nil

	case *sql.ExtractExpr:
		if n.Field != "year" {
			return nil, fmt.Errorf("plan: EXTRACT(%s) not supported", strings.ToUpper(n.Field))
		}
		x, err := p.convertExpr(n.X, s)
		if err != nil {
			return nil, err
		}
		return &expr.ExtractYear{Kid: x}, nil

	case *sql.SubstringExpr:
		x, err := p.convertExpr(n.X, s)
		if err != nil {
			return nil, err
		}
		from, err := p.convertExpr(n.From, s)
		if err != nil {
			return nil, err
		}
		span, err := p.convertExpr(n.For, s)
		if err != nil {
			return nil, err
		}
		return &expr.Substring{Kid: x, Start: from, Span: span}, nil

	default:
		return nil, fmt.Errorf("plan: unsupported expression %T", e)
	}
}

func (p *Planner) convertBinOp(n *sql.BinOp, s *scope) (expr.Expr, error) {
	switch n.Op {
	case "and":
		l, err := p.convertExpr(n.L, s)
		if err != nil {
			return nil, err
		}
		r, err := p.convertExpr(n.R, s)
		if err != nil {
			return nil, err
		}
		return &expr.And{Kids: flattenAnd(l, r)}, nil
	case "or":
		l, err := p.convertExpr(n.L, s)
		if err != nil {
			return nil, err
		}
		r, err := p.convertExpr(n.R, s)
		if err != nil {
			return nil, err
		}
		return &expr.Or{Kids: flattenOr(l, r)}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		l, r, err := p.convertPair(n.L, n.R, s)
		if err != nil {
			return nil, err
		}
		return &expr.Cmp{Op: cmpOp(n.Op), L: l, R: r}, nil
	case "+", "-":
		// Date ± interval.
		if iv, ok := n.R.(*sql.IntervalLit); ok {
			l, err := p.convertExpr(n.L, s)
			if err != nil {
				return nil, err
			}
			return &expr.DateArith{Sub: n.Op == "-", L: l, Iv: interval(iv)}, nil
		}
		fallthrough
	case "*", "/":
		l, r, err := p.convertPair(n.L, n.R, s)
		if err != nil {
			return nil, err
		}
		return &expr.Arith{Op: arithOp(n.Op), L: l, R: r}, nil
	default:
		return nil, fmt.Errorf("plan: unsupported operator %q", n.Op)
	}
}

func interval(iv *sql.IntervalLit) types.Interval {
	switch iv.Unit {
	case "day":
		return types.Interval{Days: iv.N}
	case "month":
		return types.Interval{Months: iv.N}
	default: // year
		return types.Interval{Months: 12 * iv.N}
	}
}

func cmpOp(op string) expr.CmpOp {
	switch op {
	case "=":
		return expr.EQ
	case "<>":
		return expr.NE
	case "<":
		return expr.LT
	case "<=":
		return expr.LE
	case ">":
		return expr.GT
	default:
		return expr.GE
	}
}

func arithOp(op string) expr.ArithOp {
	switch op {
	case "+":
		return expr.Add
	case "-":
		return expr.Sub
	case "*":
		return expr.Mul
	default:
		return expr.Div
	}
}

func flattenAnd(l, r expr.Expr) []expr.Expr {
	var kids []expr.Expr
	if a, ok := l.(*expr.And); ok {
		kids = append(kids, a.Kids...)
	} else {
		kids = append(kids, l)
	}
	if a, ok := r.(*expr.And); ok {
		kids = append(kids, a.Kids...)
	} else {
		kids = append(kids, r)
	}
	return kids
}

func flattenOr(l, r expr.Expr) []expr.Expr {
	var kids []expr.Expr
	if o, ok := l.(*expr.Or); ok {
		kids = append(kids, o.Kids...)
	} else {
		kids = append(kids, l)
	}
	if o, ok := r.(*expr.Or); ok {
		kids = append(kids, o.Kids...)
	} else {
		kids = append(kids, r)
	}
	return kids
}

// convertPair converts a binary node's two operands, typing a
// placeholder operand from its sibling (c_custkey = $1 gives $1 the key
// column's type).
func (p *Planner) convertPair(le, re sql.Expr, s *scope) (expr.Expr, expr.Expr, error) {
	if _, ok := le.(*sql.Placeholder); ok {
		r, err := p.convertExpr(re, s)
		if err != nil {
			return nil, nil, err
		}
		l, err := p.convertMaybeParam(le, s, r.Type())
		return l, r, err
	}
	l, err := p.convertExpr(le, s)
	if err != nil {
		return nil, nil, err
	}
	r, err := p.convertMaybeParam(re, s, l.Type())
	return l, r, err
}

// convertMaybeParam converts e, giving it hint as its type when it is a
// placeholder.
func (p *Planner) convertMaybeParam(e sql.Expr, s *scope, hint types.T) (expr.Expr, error) {
	if ph, ok := e.(*sql.Placeholder); ok {
		return p.convertPlaceholder(ph, hint)
	}
	return p.convertExpr(e, s)
}

// convertPlaceholder lowers a $n placeholder to an expr.Param bound to
// the planner's slot array. The first conversion with a usable hint
// fixes the parameter's type; reuse of the same $n keeps it.
func (p *Planner) convertPlaceholder(n *sql.Placeholder, hint types.T) (expr.Expr, error) {
	if p.Params == nil {
		return nil, fmt.Errorf("plan: parameter $%d outside a prepared statement", n.Idx)
	}
	idx := n.Idx - 1
	if idx < 0 || idx >= len(p.Params.Vals) {
		return nil, fmt.Errorf("plan: parameter $%d out of range (statement has %d)", n.Idx, len(p.Params.Vals))
	}
	t := hint
	if idx < len(p.ParamTypes) && p.ParamTypes[idx].Kind != types.KindInvalid {
		t = p.ParamTypes[idx]
	}
	if t.Kind == types.KindInvalid {
		t = types.Int64
	}
	if idx < len(p.ParamTypes) {
		p.ParamTypes[idx] = t
	}
	return &expr.Param{Idx: idx, T: t, Slot: p.Params}, nil
}

// planInSubquery plans x IN (SELECT ...) as an expression node.
func (p *Planner) planInSubquery(n *sql.InExpr, s *scope) (expr.Expr, error) {
	x, err := p.convertExpr(n.X, s)
	if err != nil {
		return nil, err
	}
	node, sub, err := p.planSubSelect(n.Sub, s)
	if err != nil {
		return nil, err
	}
	if len(sub.cols) != 1 {
		return nil, fmt.Errorf("plan: IN subquery must return one column")
	}
	return &exec.InSubquery{Kid: x, Plan: node, Correlated: sub.correlated, Negate: n.Not}, nil
}

// planSubSelect plans a nested SELECT with s as the parent scope and
// reports the subquery's output scope (whose correlated flag says whether
// it referenced s or an ancestor).
func (p *Planner) planSubSelect(sel *sql.Select, s *scope) (exec.Node, *scope, error) {
	node, sub, err := p.planSelect(sel, s)
	if err != nil {
		return nil, nil, err
	}
	// Uncorrelated subplans get the same parallelization pass as the
	// root. This is also a correctness requirement, not just speed: a CTE
	// aggregated both in the outer tree and inside a subquery (TPC-H Q15)
	// must sum floats with the same partitioning on both sides, or the
	// last-ulp difference breaks equality comparisons between them.
	// Correlated subplans stay serial: they rerun per outer row, and
	// their outer references are not parallel-safe.
	if !sub.correlated {
		node = p.parallelize(node)
	}
	return node, sub, nil
}
