package plan

import (
	"fmt"

	"microspec/internal/catalog"
	"microspec/internal/exec"
	"microspec/internal/expr"
	"microspec/internal/sql"
	"microspec/internal/types"
)

// This file turns correlated subquery predicates into joins — the
// decorrelation pass. Without it, a correlated EXISTS over lineitem
// evaluated per lineitem row is quadratic; with it, TPC-H q2, q4, q17,
// q20, q21, and q22 plan as semi/anti/left joins. Uncorrelated
// subqueries are left as (cached) expression subplans, which is already
// efficient.
//
// handleSubqueryConjunct returns handled=false to request the expression
// fallback; it returns a replacement post-filter expression when the
// rewrite leaves a residual predicate (the scalar-comparison case).

func (sp *selectPlan) handleSubqueryConjunct(ts *treeState, c sql.Expr) (handled bool, repl expr.Expr, err error) {
	switch n := c.(type) {
	case *sql.ExistsExpr:
		return sp.tryDecorrelateExists(ts, n.Sub, n.Not, nil, nil)
	case *sql.InExpr:
		if n.Sub == nil {
			return false, nil, nil
		}
		// x IN (sub): semi join with the extra key pair (x, output[0]).
		// NOT IN keeps the expression path: anti join has different NULL
		// semantics, and the paper's workloads use NOT IN only
		// uncorrelated (where the cached-set expression is cheap).
		if n.Not {
			return false, nil, nil
		}
		xID, ok := n.X.(*sql.Ident)
		if !ok {
			return false, nil, nil
		}
		xIdx, err := findColumn(ts.cols, xID.Parts)
		if err != nil || xIdx < 0 {
			return false, nil, nil
		}
		return sp.tryDecorrelateExists(ts, n.Sub, false, &xIdx, nil)
	case *sql.BinOp:
		switch n.Op {
		case "=", "<>", "<", "<=", ">", ">=":
		default:
			return false, nil, nil
		}
		if sub, ok := n.R.(*sql.SubqueryExpr); ok {
			return sp.tryDecorrelateScalar(ts, n.Op, n.L, sub.Sel, false)
		}
		if sub, ok := n.L.(*sql.SubqueryExpr); ok {
			return sp.tryDecorrelateScalar(ts, n.Op, n.R, sub.Sel, true)
		}
		return false, nil, nil
	default:
		return false, nil, nil
	}
}

// subPartition is the outcome of splitting a subquery's WHERE conjuncts
// against the outer tree.
type subPartition struct {
	keep      []sql.Expr   // stay inside the subquery
	outerIDs  []*sql.Ident // correlation equalities: outer side
	innerIDs  []*sql.Ident // correlation equalities: inner side
	residuals []sql.Expr   // other tree-referencing conjuncts
	ok        bool
}

// partitionSubWhere splits sub's conjuncts into kept, correlation-key,
// and residual sets. It requires every FROM item of sub to be a base
// catalog relation (true for all TPC-H subqueries).
func (sp *selectPlan) partitionSubWhere(sub *sql.Select, ts *treeState) subPartition {
	var out subPartition
	itemCols := make([][]column, 0, len(sub.From))
	probe := &scope{parent: sp.parent, ctes: sp.ctes}
	for _, ref := range sub.From {
		bt, ok := ref.(*sql.BaseTable)
		if !ok {
			return out
		}
		if _, isCTE := probe.lookupCTE(bt.Name); isCTE {
			return out
		}
		rel, err := sp.p.Cat.Lookup(bt.Name)
		if err != nil {
			return out
		}
		alias := bt.Alias
		if alias == "" {
			alias = bt.Name
		}
		cols := make([]column, len(rel.Attrs))
		for i, a := range rel.Attrs {
			cols[i] = column{tbl: alias, name: a.Name, t: a.Type}
		}
		itemCols = append(itemCols, cols)
	}
	inSub := func(id *sql.Ident) bool {
		for _, cols := range itemCols {
			if idx, err := findColumn(cols, id.Parts); err == nil && idx >= 0 {
				return true
			}
		}
		return false
	}
	inTree := func(id *sql.Ident) bool {
		idx, err := findColumn(ts.cols, id.Parts)
		return err == nil && idx >= 0
	}

	treeScope := &scope{cols: ts.cols, parent: sp.parent, ctes: sp.ctes}
	for _, c := range splitConjuncts(sub.Where) {
		info := collectRefs(c, itemCols, treeScope)
		if info.unknown {
			return out
		}
		if !info.outer {
			out.keep = append(out.keep, c)
			continue
		}
		// Correlation equality innerCol = treeCol?
		if b, ok := c.(*sql.BinOp); ok && b.Op == "=" {
			l, lok := b.L.(*sql.Ident)
			r, rok := b.R.(*sql.Ident)
			if lok && rok {
				switch {
				case inSub(l) && inTree(r):
					out.innerIDs = append(out.innerIDs, l)
					out.outerIDs = append(out.outerIDs, r)
					continue
				case inSub(r) && inTree(l):
					out.innerIDs = append(out.innerIDs, r)
					out.outerIDs = append(out.outerIDs, l)
					continue
				}
			}
		}
		out.residuals = append(out.residuals, c)
	}
	out.ok = true
	return out
}

func rebuildAnd(conjuncts []sql.Expr) sql.Expr {
	if len(conjuncts) == 0 {
		return nil
	}
	e := conjuncts[0]
	for _, c := range conjuncts[1:] {
		e = &sql.BinOp{Op: "and", L: e, R: c}
	}
	return e
}

// tryDecorrelateExists plans [NOT] EXISTS (sub) as a semi/anti hash join
// on the correlation equalities. extraOuterKey, when non-nil, adds an
// (outer column, sub output[0]) key pair — the IN-subquery form.
func (sp *selectPlan) tryDecorrelateExists(ts *treeState, sub *sql.Select, negate bool, extraOuterKey *int, _ []int) (bool, expr.Expr, error) {
	if len(sub.GroupBy) > 0 || sub.Having != nil || sub.Limit >= 0 || len(sub.With) > 0 || sub.Distinct {
		return false, nil, nil
	}
	for _, it := range sub.Items {
		if !it.Star && containsAggregate(it.Expr) {
			return false, nil, nil
		}
	}
	part := sp.partitionSubWhere(sub, ts)
	if !part.ok {
		return false, nil, nil
	}
	if len(part.innerIDs) == 0 && extraOuterKey == nil {
		return false, nil, nil // uncorrelated or non-equality correlation
	}

	// Plan the modified subquery, projecting all columns so keys and
	// residuals can resolve against its output.
	sub2 := *sub
	sub2.Where = rebuildAnd(part.keep)
	if extraOuterKey == nil {
		sub2.Items = []sql.SelectItem{{Star: true}}
	}
	node, subScope, err := sp.p.planSelect(&sub2, sp.parent)
	if err != nil || subScope.correlated {
		return false, nil, nil
	}

	var outerKeys, innerKeys []int
	var keyTypes []types.T
	if extraOuterKey != nil {
		outerKeys = append(outerKeys, *extraOuterKey)
		innerKeys = append(innerKeys, 0)
		keyTypes = append(keyTypes, subScope.cols[0].t)
	}
	for i := range part.innerIDs {
		oi, err := findColumn(ts.cols, part.outerIDs[i].Parts)
		if err != nil || oi < 0 {
			return false, nil, nil
		}
		ii, err := findColumn(subScope.cols, part.innerIDs[i].Parts)
		if err != nil || ii < 0 {
			return false, nil, nil
		}
		outerKeys = append(outerKeys, oi)
		innerKeys = append(innerKeys, ii)
		keyTypes = append(keyTypes, subScope.cols[ii].t)
	}

	var residual expr.Expr
	if len(part.residuals) > 0 {
		combined := append(append([]column(nil), ts.cols...), subScope.cols...)
		s := sp.newScope(combined)
		var kids []expr.Expr
		for _, c := range part.residuals {
			e, err := sp.p.convertExpr(c, s)
			if err != nil {
				return false, nil, nil
			}
			kids = append(kids, e)
		}
		if len(kids) == 1 {
			residual = kids[0]
		} else {
			residual = &expr.And{Kids: kids}
		}
	}

	jt := exec.SemiJoin
	if negate {
		jt = exec.AntiJoin
	}
	hj := &exec.HashJoin{
		Outer: ts.node, Inner: node,
		OuterKeys: outerKeys, InnerKeys: innerKeys,
		Type: jt, Residual: residual,
	}
	if residual != nil {
		if cp, ok := sp.p.Mod.CompilePredicate(residual); ok {
			hj.ResidualCompiled = cp
		}
	}
	if evj, ok := sp.p.Mod.CompileJoinKeys(outerKeys, innerKeys, keyTypes); ok {
		hj.EVJ = evj
		hj.NoteEVJ = sp.p.Mod.NoteEVJCall
	}
	ts.node = hj
	// Semi/anti joins keep only the outer columns; ts.cols unchanged.
	return true, nil, nil
}

// tryDecorrelateScalar plans `lhs op (SELECT agg ...)` where the subquery
// is correlated via equality conjuncts: the subquery becomes a grouped
// aggregate joined (LEFT) on the correlation keys, and the comparison a
// post-join filter. flipped marks that the subquery was on the left.
func (sp *selectPlan) tryDecorrelateScalar(ts *treeState, op string, lhs sql.Expr, sub *sql.Select, flipped bool) (bool, expr.Expr, error) {
	if len(sub.GroupBy) > 0 || sub.Having != nil || sub.Limit >= 0 || len(sub.With) > 0 || sub.Distinct {
		return false, nil, nil
	}
	if len(sub.Items) != 1 || sub.Items[0].Star || !containsAggregate(sub.Items[0].Expr) {
		return false, nil, nil
	}
	part := sp.partitionSubWhere(sub, ts)
	if !part.ok || len(part.innerIDs) == 0 || len(part.residuals) > 0 {
		// Residual non-equality correlation cannot move past the
		// aggregate; keep the expression form.
		return false, nil, nil
	}

	// sub2: SELECT innerKeys..., <agg expr> FROM ... WHERE kept GROUP BY innerKeys.
	sub2 := *sub
	sub2.Where = rebuildAnd(part.keep)
	sub2.Items = nil
	sub2.GroupBy = nil
	for _, id := range part.innerIDs {
		sub2.Items = append(sub2.Items, sql.SelectItem{Expr: id})
		sub2.GroupBy = append(sub2.GroupBy, id)
	}
	sub2.Items = append(sub2.Items, sql.SelectItem{Expr: sub.Items[0].Expr, Alias: "_agg"})

	node, subScope, err := sp.p.planSelect(&sub2, sp.parent)
	if err != nil || subScope.correlated {
		return false, nil, nil
	}

	nKeys := len(part.innerIDs)
	var outerKeys, innerKeys []int
	var keyTypes []types.T
	for i := 0; i < nKeys; i++ {
		oi, err := findColumn(ts.cols, part.outerIDs[i].Parts)
		if err != nil || oi < 0 {
			return false, nil, nil
		}
		outerKeys = append(outerKeys, oi)
		innerKeys = append(innerKeys, i)
		keyTypes = append(keyTypes, subScope.cols[i].t)
	}

	hj := &exec.HashJoin{
		Outer: ts.node, Inner: node,
		OuterKeys: outerKeys, InnerKeys: innerKeys,
		Type: exec.LeftJoin,
	}
	if evj, ok := sp.p.Mod.CompileJoinKeys(outerKeys, innerKeys, keyTypes); ok {
		hj.EVJ = evj
		hj.NoteEVJ = sp.p.Mod.NoteEVJCall
	}
	aggCol := len(ts.cols) + nKeys
	aggT := subScope.cols[nKeys].t
	ts.node = hj
	ts.cols = append(ts.cols, subScope.cols...)

	// Rebuild the comparison as a post filter over the widened row.
	s := sp.newScope(ts.cols)
	lhsExpr, err := sp.p.convertExpr(lhs, s)
	if err != nil {
		return false, nil, fmt.Errorf("plan: decorrelated comparison: %w", err)
	}
	aggVar := &expr.Var{Idx: aggCol, T: aggT, Name: "_agg"}
	var cmp *expr.Cmp
	if flipped {
		cmp = &expr.Cmp{Op: cmpOp(op), L: aggVar, R: lhsExpr}
	} else {
		cmp = &expr.Cmp{Op: cmpOp(op), L: lhsExpr, R: aggVar}
	}
	return true, cmp, nil
}

// ensure catalog import is used even if partitioning paths change.
var _ = catalog.RelID(0)
