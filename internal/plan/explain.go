package plan

import (
	"fmt"
	"strings"

	"microspec/internal/exec"
)

// Explain renders a plan tree as an indented outline, marking where bee
// routines were installed — the quickest way to see which generic code
// paths a query's micro-specialization replaced.
func Explain(n exec.Node) string {
	var b strings.Builder
	explainNode(&b, n, 0, false)
	return b.String()
}

// ExplainAnalyze renders a plan tree that has been run under
// exec.Instrument, appending "(actual rows=N loops=L time=T)" to every
// node line. Times are inclusive of children (the PostgreSQL convention).
func ExplainAnalyze(n exec.Node) string {
	var b strings.Builder
	explainNode(&b, n, 0, true)
	return b.String()
}

func explainNode(b *strings.Builder, n exec.Node, depth int, analyze bool) {
	var in *exec.Instrumented
	var inb *exec.InstrumentedBatch
	switch wrapped := n.(type) {
	case *exec.Instrumented:
		in = wrapped
		n = wrapped.Inner
	case *exec.InstrumentedBatch:
		inb = wrapped
		n = wrapped.Inner
	}
	line, kids := describe(n)
	if analyze && in != nil {
		line += fmt.Sprintf(" (actual rows=%d loops=%d time=%.3fms)",
			in.Rows, in.Loops, in.Elapsed.Seconds()*1000)
	}
	if analyze && inb != nil {
		rpb := 0.0
		if inb.Batches > 0 {
			rpb = float64(inb.Rows) / float64(inb.Batches)
		}
		line += fmt.Sprintf(" (actual rows=%d batches=%d rows/batch=%.1f loops=%d time=%.3fms)",
			inb.Rows, inb.Batches, rpb, inb.Loops, inb.Elapsed.Seconds()*1000)
	}
	fmt.Fprintf(b, "%s%s\n", strings.Repeat("  ", depth), line)
	for _, kid := range kids {
		explainNode(b, kid, depth+1, analyze)
	}
}

// describe returns one node's outline line (bee-routine markers included)
// and its children. Child links may point at exec.Instrumented wrappers
// after an analyzed run; explainNode unwraps them.
func describe(n exec.Node) (string, []exec.Node) {
	switch v := n.(type) {
	case *exec.SeqScan:
		bee := ""
		if v.NoteDeforms != nil {
			bee = " [GCL]"
		}
		if v.Partial {
			return fmt.Sprintf("SeqScan %s (%d cols) pages=[%d,%d)%s",
				v.Heap.Rel.Name, v.NAtts, v.Range.Lo, v.Range.Hi, bee), nil
		}
		return fmt.Sprintf("SeqScan %s (%d cols)%s", v.Heap.Rel.Name, v.NAtts, bee), nil
	case *exec.BatchSeqScan:
		bee := ""
		if v.NoteDeforms != nil {
			bee = " [GCL]"
		}
		fused := ""
		if v.Fused != nil {
			fused = fmt.Sprintf(" filter=%s", v.FusedPred)
			bee = " [GCL+EVP]"
		}
		if v.Partial {
			return fmt.Sprintf("BatchSeqScan %s (%d cols) batch=%d pages=[%d,%d)%s%s",
				v.Heap.Rel.Name, v.NAtts, exec.BatchCap, v.Range.Lo, v.Range.Hi, fused, bee), nil
		}
		return fmt.Sprintf("BatchSeqScan %s (%d cols) batch=%d%s%s",
			v.Heap.Rel.Name, v.NAtts, exec.BatchCap, fused, bee), nil
	case *exec.BatchFilter:
		bee := ""
		if v.Compiled != nil {
			bee = " [EVP]"
		}
		return fmt.Sprintf("BatchFilter %s%s", v.Pred, bee), []exec.Node{v.Child}
	case *exec.Rebatch:
		return "Rebatch", []exec.Node{v.Child}
	case *exec.BatchHashAgg:
		bees := ""
		for i := range v.Aggs {
			if v.Aggs[i].CompiledArg != nil {
				bees = " [EVA]"
				break
			}
		}
		names := make([]string, len(v.Aggs))
		for i, a := range v.Aggs {
			names[i] = a.Name
		}
		return fmt.Sprintf("BatchHashAgg groups=%d aggs=[%s]%s", len(v.GroupBy), strings.Join(names, ", "), bees),
			[]exec.Node{v.Child}
	case *exec.IndexScan:
		if len(v.KeyExprs) > 0 {
			keys := make([]string, len(v.KeyExprs))
			for i, e := range v.KeyExprs {
				keys[i] = e.String()
			}
			return fmt.Sprintf("IndexScan %s via %s key=(%s)", v.Heap.Rel.Name, v.Tree.Name, strings.Join(keys, ", ")), nil
		}
		return fmt.Sprintf("IndexScan %s via %s", v.Heap.Rel.Name, v.Tree.Name), nil
	case *exec.ValuesNode:
		return fmt.Sprintf("Values (%d rows)", len(v.Rows)), nil
	case *exec.Filter:
		bee := ""
		if v.Compiled != nil {
			bee = " [EVP]"
		}
		return fmt.Sprintf("Filter %s%s", v.Pred, bee), []exec.Node{v.Child}
	case *exec.Project:
		names := make([]string, len(v.Cols))
		for i, c := range v.Cols {
			names[i] = c.Name
		}
		return "Project " + strings.Join(names, ", "), []exec.Node{v.Child}
	case *exec.Limit:
		return fmt.Sprintf("Limit %d offset %d", v.N, v.Offset), []exec.Node{v.Child}
	case *exec.Sort:
		return fmt.Sprintf("Sort %v", v.Keys), []exec.Node{v.Child}
	case *exec.Distinct:
		return "Distinct", []exec.Node{v.Child}
	case *exec.Materialize:
		return "Materialize", []exec.Node{v.Child}
	case *exec.HashAgg:
		bees := ""
		for i := range v.Aggs {
			if v.Aggs[i].CompiledArg != nil {
				bees = " [EVA]"
				break
			}
		}
		names := make([]string, len(v.Aggs))
		for i, a := range v.Aggs {
			names[i] = a.Name
		}
		return fmt.Sprintf("HashAgg groups=%d aggs=[%s]%s", len(v.GroupBy), strings.Join(names, ", "), bees),
			[]exec.Node{v.Child}
	case *exec.HashJoin:
		bee := ""
		if v.EVJ != nil {
			bee = " [EVJ]"
		}
		res := ""
		if v.Residual != nil {
			res = " residual=" + v.Residual.String()
			if v.ResidualCompiled != nil {
				res += " [EVP]"
			}
		}
		return fmt.Sprintf("HashJoin %s keys=%v/%v%s%s", v.Type, v.OuterKeys, v.InnerKeys, bee, res),
			[]exec.Node{v.Outer, v.Inner}
	case *exec.NLJoin:
		qual := ""
		if v.Qual != nil {
			qual = " qual=" + v.Qual.String()
		}
		return fmt.Sprintf("NestedLoopJoin %s%s", v.Type, qual), []exec.Node{v.Outer, v.Inner}
	case *exec.Gather:
		mode := "stream"
		switch {
		case len(v.Aggs) > 0 || v.GroupBy != nil:
			mode = "partial-agg"
			bees := ""
			for i := range v.Aggs {
				if v.Aggs[i].CompiledArg != nil {
					bees = " [EVA]"
					break
				}
			}
			names := make([]string, len(v.Aggs))
			for i, a := range v.Aggs {
				names[i] = a.Name
			}
			return fmt.Sprintf("Gather workers=%d (%s groups=%d aggs=[%s])%s",
				v.Workers, mode, len(v.GroupBy), strings.Join(names, ", "), bees), v.Parts
		case len(v.MergeKeys) > 0:
			mode = "merge"
		}
		return fmt.Sprintf("Gather workers=%d (%s)", v.Workers, mode), v.Parts
	default:
		return fmt.Sprintf("%T", n), nil
	}
}
