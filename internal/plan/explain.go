package plan

import (
	"fmt"
	"strings"

	"microspec/internal/exec"
)

// Explain renders a plan tree as an indented outline, marking where bee
// routines were installed — the quickest way to see which generic code
// paths a query's micro-specialization replaced.
func Explain(n exec.Node) string {
	var b strings.Builder
	explainNode(&b, n, 0)
	return b.String()
}

func explainNode(b *strings.Builder, n exec.Node, depth int) {
	indent := strings.Repeat("  ", depth)
	switch v := n.(type) {
	case *exec.SeqScan:
		bee := ""
		if v.NoteDeforms != nil {
			bee = " [GCL]"
		}
		fmt.Fprintf(b, "%sSeqScan %s (%d cols)%s\n", indent, v.Heap.Rel.Name, v.NAtts, bee)
	case *exec.IndexScan:
		fmt.Fprintf(b, "%sIndexScan %s via %s\n", indent, v.Heap.Rel.Name, v.Tree.Name)
	case *exec.ValuesNode:
		fmt.Fprintf(b, "%sValues (%d rows)\n", indent, len(v.Rows))
	case *exec.Filter:
		bee := ""
		if v.Compiled != nil {
			bee = " [EVP]"
		}
		fmt.Fprintf(b, "%sFilter %s%s\n", indent, v.Pred, bee)
		explainNode(b, v.Child, depth+1)
	case *exec.Project:
		names := make([]string, len(v.Cols))
		for i, c := range v.Cols {
			names[i] = c.Name
		}
		fmt.Fprintf(b, "%sProject %s\n", indent, strings.Join(names, ", "))
		explainNode(b, v.Child, depth+1)
	case *exec.Limit:
		fmt.Fprintf(b, "%sLimit %d offset %d\n", indent, v.N, v.Offset)
		explainNode(b, v.Child, depth+1)
	case *exec.Sort:
		fmt.Fprintf(b, "%sSort %v\n", indent, v.Keys)
		explainNode(b, v.Child, depth+1)
	case *exec.Distinct:
		fmt.Fprintf(b, "%sDistinct\n", indent)
		explainNode(b, v.Child, depth+1)
	case *exec.Materialize:
		fmt.Fprintf(b, "%sMaterialize\n", indent)
		explainNode(b, v.Child, depth+1)
	case *exec.HashAgg:
		bees := ""
		for i := range v.Aggs {
			if v.Aggs[i].CompiledArg != nil {
				bees = " [EVA]"
				break
			}
		}
		names := make([]string, len(v.Aggs))
		for i, a := range v.Aggs {
			names[i] = a.Name
		}
		fmt.Fprintf(b, "%sHashAgg groups=%d aggs=[%s]%s\n", indent, len(v.GroupBy), strings.Join(names, ", "), bees)
		explainNode(b, v.Child, depth+1)
	case *exec.HashJoin:
		bee := ""
		if v.EVJ != nil {
			bee = " [EVJ]"
		}
		res := ""
		if v.Residual != nil {
			res = " residual=" + v.Residual.String()
			if v.ResidualCompiled != nil {
				res += " [EVP]"
			}
		}
		fmt.Fprintf(b, "%sHashJoin %s keys=%v/%v%s%s\n", indent, v.Type, v.OuterKeys, v.InnerKeys, bee, res)
		explainNode(b, v.Outer, depth+1)
		explainNode(b, v.Inner, depth+1)
	case *exec.NLJoin:
		qual := ""
		if v.Qual != nil {
			qual = " qual=" + v.Qual.String()
		}
		fmt.Fprintf(b, "%sNestedLoopJoin %s%s\n", indent, v.Type, qual)
		explainNode(b, v.Outer, depth+1)
		explainNode(b, v.Inner, depth+1)
	default:
		fmt.Fprintf(b, "%s%T\n", indent, n)
	}
}
