package plan_test

import (
	"fmt"
	"strings"
	"testing"

	"microspec/internal/core"
	"microspec/internal/engine"
	"microspec/internal/exec"
)

// The planner is exercised end-to-end through the engine (query results
// are checked in internal/engine and internal/tpch); the tests here pin
// the *plan shapes*: join ordering, pushdown, decorrelation, and the
// OR-factorization rewrite.

func planDB(t testing.TB) *engine.DB {
	t.Helper()
	db := engine.Open(engine.Config{Routines: core.AllRoutines, PoolPages: 512})
	stmts := []string{
		`create table big (b_id integer not null, b_small integer not null, b_tag char(2) not null, primary key (b_id))`,
		`create table small (s_id integer not null, s_name varchar(10) not null, primary key (s_id))`,
		`create table tiny (t_id integer not null, t_flag char(1) not null, primary key (t_id))`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 1000; i++ {
		mustExec(t, db, fmt.Sprintf("insert into big values (%d, %d, 'T%d')", i, i%100+1, i%4))
	}
	for i := 1; i <= 100; i++ {
		mustExec(t, db, fmt.Sprintf("insert into small values (%d, 'n%d')", i, i))
	}
	for i := 1; i <= 10; i++ {
		mustExec(t, db, fmt.Sprintf("insert into tiny values (%d, 'F')", i))
	}
	return db
}

func mustExec(t testing.TB, db *engine.DB, stmt string) {
	t.Helper()
	if _, err := db.Exec(stmt); err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
}

// walk collects every node in a plan tree, batch subtrees included.
func walk(n exec.Node) []exec.Node {
	var out []exec.Node
	exec.WalkNodes(n, func(m exec.Node) { out = append(out, m) })
	return out
}

func nodesOf[T exec.Node](nodes []exec.Node) []T {
	var out []T
	for _, n := range nodes {
		if v, ok := n.(T); ok {
			out = append(out, v)
		}
	}
	return out
}

func TestJoinUsesHashJoinWithLargestAsProbe(t *testing.T) {
	db := planDB(t)
	p, err := db.PlanQuery("select count(*) from big, small where b_small = s_id")
	if err != nil {
		t.Fatal(err)
	}
	nodes := walk(p.Root)
	joins := nodesOf[*exec.HashJoin](nodes)
	if len(joins) != 1 {
		t.Fatalf("hash joins = %d", len(joins))
	}
	// The probe (outer) side should reach the big table's scan; the build
	// (inner) side the small one. Scans feeding joins sit behind Rebatch
	// adapters on the (default-on) batch path.
	outerScans := nodesOf[*exec.BatchSeqScan](walk(joins[0].Outer))
	if len(outerScans) != 1 || outerScans[0].Heap.Rel.Name != "big" {
		t.Errorf("probe side should be big, got %v", outerScans)
	}
	innerScans := nodesOf[*exec.BatchSeqScan](walk(joins[0].Inner))
	if len(innerScans) != 1 || innerScans[0].Heap.Rel.Name != "small" {
		t.Errorf("build side should be small, got %v", innerScans)
	}
	if joins[0].EVJ == nil {
		t.Error("bee-enabled plan must carry an EVJ bee")
	}
}

func TestFilterPushdownBelowJoin(t *testing.T) {
	db := planDB(t)
	p, err := db.PlanQuery(
		"select count(*) from big, small where b_small = s_id and b_id < 50 and s_name like 'n1%'")
	if err != nil {
		t.Fatal(err)
	}
	nodes := walk(p.Root)
	joins := nodesOf[*exec.HashJoin](nodes)
	if len(joins) != 1 {
		t.Fatalf("hash joins = %d", len(joins))
	}
	// Both single-table predicates must sit below the join. The batchify
	// pass converts pushed Filter→SeqScan spines, and on a bee-enabled
	// database each filter fuses into its scan (scan.Fused non-nil).
	sideFused := func(n exec.Node) int {
		fused := 0
		for _, s := range nodesOf[*exec.BatchSeqScan](walk(n)) {
			if s.Fused != nil {
				fused++
			}
		}
		return fused + len(nodesOf[*exec.BatchFilter](walk(n)))
	}
	if sideFused(joins[0].Outer) != 1 {
		t.Error("big-side filter not pushed below join")
	}
	if sideFused(joins[0].Inner) != 1 {
		t.Error("small-side filter not pushed below join")
	}
}

func TestOrFactorizationCreatesJoinEdge(t *testing.T) {
	db := planDB(t)
	// The q19 shape: the equi-join conjunct lives inside both OR branches.
	p, err := db.PlanQuery(`select count(*) from big, small where
		(b_small = s_id and b_id < 10)
		or (b_small = s_id and b_id > 990)`)
	if err != nil {
		t.Fatal(err)
	}
	joins := nodesOf[*exec.HashJoin](walk(p.Root))
	if len(joins) != 1 {
		t.Fatal("OR-factorization must produce a hash join, not a cross join")
	}
	// And the OR itself must remain as a post-join filter.
	post := nodesOf[*exec.Filter](walk(p.Root))
	found := false
	for _, f := range post {
		if strings.Contains(f.Pred.String(), "OR") {
			found = true
		}
	}
	if !found {
		t.Error("OR predicate lost")
	}
	// Result sanity: 9 + 10 matching big rows, each matching one small row.
	r, err := db.Query(`select count(*) from big, small where
		(b_small = s_id and b_id < 10) or (b_small = s_id and b_id > 990)`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].Int64() != 19 {
		t.Errorf("count = %v, want 19", r.Rows[0][0])
	}
}

func TestExistsDecorrelatesToSemiJoin(t *testing.T) {
	db := planDB(t)
	p, err := db.PlanQuery(`select count(*) from small
		where exists (select * from big where b_small = s_id and b_id < 500)`)
	if err != nil {
		t.Fatal(err)
	}
	joins := nodesOf[*exec.HashJoin](walk(p.Root))
	if len(joins) != 1 || joins[0].Type != exec.SemiJoin {
		t.Fatalf("want one semi join, got %v", joins)
	}
	// NOT EXISTS → anti join.
	p2, err := db.PlanQuery(`select count(*) from small
		where not exists (select * from big where b_small = s_id)`)
	if err != nil {
		t.Fatal(err)
	}
	joins2 := nodesOf[*exec.HashJoin](walk(p2.Root))
	if len(joins2) != 1 || joins2[0].Type != exec.AntiJoin {
		t.Fatalf("want one anti join, got %v", joins2)
	}
}

func TestCorrelatedScalarDecorrelatesToLeftJoin(t *testing.T) {
	db := planDB(t)
	p, err := db.PlanQuery(`select count(*) from small
		where s_id > (select avg(b_small) from big where b_small = s_id)`)
	if err != nil {
		t.Fatal(err)
	}
	joins := nodesOf[*exec.HashJoin](walk(p.Root))
	if len(joins) != 1 || joins[0].Type != exec.LeftJoin {
		t.Fatalf("want one left join, got %d joins", len(joins))
	}
	// The aggregate subplan is grouped on the correlation key (a
	// BatchHashAgg: its scan spine is batch-eligible).
	aggs := nodesOf[*exec.BatchHashAgg](walk(joins[0].Inner))
	if len(aggs) != 1 || len(aggs[0].GroupBy) != 1 {
		t.Fatalf("decorrelated subplan must group by the key, got %v", aggs)
	}
}

func TestUncorrelatedSubqueryStaysExpression(t *testing.T) {
	db := planDB(t)
	p, err := db.PlanQuery(`select count(*) from small
		where s_id > (select avg(b_small) from big)`)
	if err != nil {
		t.Fatal(err)
	}
	// No join introduced: the scalar subquery is a cached expression.
	if n := len(nodesOf[*exec.HashJoin](walk(p.Root))); n != 0 {
		t.Errorf("uncorrelated scalar must not join, got %d joins", n)
	}
}

func TestCorrelatedExistsWithResidual(t *testing.T) {
	db := planDB(t)
	// Correlation equality plus a non-equality correlated residual (the
	// q21 shape).
	r, err := db.Query(`select count(*) from small s1
		where exists (select * from big where b_small = s_id and b_id <> s_id)`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].Int64() == 0 {
		t.Error("residual-exists found nothing")
	}
}

func TestOrderByVariants(t *testing.T) {
	db := planDB(t)
	// Ordinal.
	r, err := db.Query("select b_id, b_small from big where b_id <= 5 order by 2 desc, 1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][1].Int32() < r.Rows[4][1].Int32() {
		t.Error("ordinal order by failed")
	}
	// Alias.
	r, err = db.Query("select b_small * 2 as dbl from big where b_id <= 5 order by dbl")
	if err != nil {
		t.Fatal(err)
	}
	// Hidden column: order by an expression not in the output.
	r, err = db.Query("select b_id from big where b_id <= 5 order by b_small desc")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cols) != 1 {
		t.Errorf("hidden sort column leaked: %v", r.Cols)
	}
	if len(r.Rows) != 5 {
		t.Errorf("rows = %d", len(r.Rows))
	}
}

func TestPlannerErrors(t *testing.T) {
	db := planDB(t)
	bad := []string{
		"select nope from big",
		"select b_id from nosuchtable",
		"select b_id from big group by b_small",            // b_id not grouped
		"select sum(b_id) from big order by 5",             // ordinal out of range
		"select b_id from big, small where frob = 1",       // unknown column
		"select t_id from tiny order by nosuch",            // unknown order target
		"select count(*) from big where b_id in (s_id, 1)", // non-constant IN list
	}
	for _, q := range bad {
		if _, err := db.Query(q); err == nil {
			t.Errorf("Query(%q) must fail", q)
		}
	}
}

func TestGroupByExpressionMatching(t *testing.T) {
	db := planDB(t)
	r, err := db.Query(`select b_small * 2, count(*) from big group by b_small * 2 order by 1 limit 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0][0].Int64() != 2 || r.Rows[0][1].Int64() != 10 {
		t.Errorf("first group = %v", r.Rows[0])
	}
}

func TestConvertForRelation(t *testing.T) {
	db := planDB(t)
	n, err := db.Exec("update tiny set t_flag = 'G' where t_id between 2 and 4")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("updated %d", n)
	}
	if _, err := db.Exec("update tiny set t_flag = 'X' where nosuch = 1"); err == nil {
		t.Error("unknown column in UPDATE WHERE must fail")
	}
}

func TestExplainMarksBeeRoutines(t *testing.T) {
	db := planDB(t)
	out, err := db.ExplainQuery(`select b_tag, sum(b_small * 2) from big, small
		where b_small = s_id and b_id < 500 group by b_tag`)
	if err != nil {
		t.Fatal(err)
	}
	// The pushed b_id filter fuses into its scan, so the predicate's EVP
	// marker appears as the composed [GCL+EVP] routine.
	for _, want := range []string{"[GCL]", "[GCL+EVP]", "[EVJ]", "[EVA]", "HashJoin", "HashAgg", "SeqScan big"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	// A stock database's plan carries no bee markers.
	stock := engine.Open(engine.Config{Routines: core.Stock, PoolPages: 128})
	if _, err := stock.Exec("create table t (a integer not null, primary key (a))"); err != nil {
		t.Fatal(err)
	}
	out2, err := stock.ExplainQuery("select count(*) from t where a > 0")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out2, "[EVP]") || strings.Contains(out2, "[GCL]") {
		t.Errorf("stock plan must not carry bee markers:\n%s", out2)
	}
}
