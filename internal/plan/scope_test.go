package plan

import (
	"strings"
	"testing"

	"microspec/internal/sql"
)

func TestASTStringCoversShapes(t *testing.T) {
	stmt, err := sql.Parse(`select case when a like 'x%' then 1 else 2 end
		from t where a in (1,2) and b between 1 and 2 and c is not null
		and extract(year from d) = 1995 and substring(e from 1 for 2) = 'ab'`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*sql.Select)
	s1 := astString(sel.Items[0].Expr)
	if !strings.Contains(s1, "case when") {
		t.Errorf("case string: %s", s1)
	}
	s2 := astString(sel.Where)
	for _, want := range []string{" in (", " between ", "is not null", "extract(year", "substring("} {
		if !strings.Contains(s2, want) {
			t.Errorf("where string missing %q: %s", want, s2)
		}
	}
}

func TestSplitConjunctsAndDisjuncts(t *testing.T) {
	stmt, err := sql.Parse("select 1 from t where a = 1 and (b = 2 or c = 3) and d = 4")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*sql.Select)
	conjs := splitConjuncts(sel.Where)
	if len(conjs) != 3 {
		t.Fatalf("conjuncts = %d", len(conjs))
	}
	disj := splitDisjuncts(conjs[1])
	if len(disj) != 2 {
		t.Fatalf("disjuncts = %d", len(disj))
	}
	if splitConjuncts(nil) != nil {
		t.Error("nil where must split to nil")
	}
}

func TestContainsAggregate(t *testing.T) {
	stmt, _ := sql.Parse("select sum(x) + 1, y, case when max(z) > 2 then 1 end from t")
	sel := stmt.(*sql.Select)
	if !containsAggregate(sel.Items[0].Expr) {
		t.Error("sum(x)+1 contains an aggregate")
	}
	if containsAggregate(sel.Items[1].Expr) {
		t.Error("bare column is not an aggregate")
	}
	if !containsAggregate(sel.Items[2].Expr) {
		t.Error("aggregate inside CASE must be found")
	}
}
