// Scopes: name resolution and type derivation for the planner. A scope
// maps column references to (depth, index) positions; references that
// resolve in an ancestor scope mark the subquery correlated. Plan time is
// also when the bee module is consulted — every Filter gets an EVP
// compilation attempt, every equi-join an EVJ compilation attempt (the
// paper: "Individual query bees are created during query plan
// generation").

package plan

import (
	"fmt"
	"strings"

	"microspec/internal/expr"
	"microspec/internal/sql"
	"microspec/internal/types"
)

// column is one visible column during planning.
type column struct {
	tbl  string // table alias ("" for derived columns without one)
	name string
	t    types.T
}

// scope is a name-resolution frame: the columns of the row being built,
// a parent for correlated references, and the CTEs in effect.
type scope struct {
	cols   []column
	parent *scope
	ctes   map[string]*sql.Select
	// correlated is set when resolution inside this scope reached into an
	// ancestor (the subquery is correlated).
	correlated bool
}

func (s *scope) lookupCTE(name string) (*sql.Select, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if sel, ok := sc.ctes[name]; ok {
			return sel, true
		}
	}
	return nil, false
}

// findColumn resolves an identifier within one frame's columns.
// It returns -1 if absent and an error on ambiguity.
func findColumn(cols []column, parts []string) (int, error) {
	var tbl, name string
	switch len(parts) {
	case 1:
		name = parts[0]
	case 2:
		tbl, name = parts[0], parts[1]
	default:
		return -1, fmt.Errorf("plan: unsupported identifier %s", strings.Join(parts, "."))
	}
	found := -1
	for i, c := range cols {
		if c.name != name {
			continue
		}
		if tbl != "" && c.tbl != tbl {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("plan: ambiguous column reference %q", strings.Join(parts, "."))
		}
		found = i
	}
	return found, nil
}

// resolve finds an identifier in this scope or an ancestor, returning the
// frame depth (0 = this scope) and column ordinal.
func (s *scope) resolve(parts []string) (depth, idx int, t types.T, err error) {
	d := 0
	for sc := s; sc != nil; sc = sc.parent {
		i, err := findColumn(sc.cols, parts)
		if err != nil {
			return 0, 0, types.T{}, err
		}
		if i >= 0 {
			// Mark every frame below the defining one as correlated: a
			// subquery that reaches past an enclosing subquery makes that
			// enclosing subquery correlated too (it must be re-evaluated
			// per outer row).
			for m := s; m != sc; m = m.parent {
				m.correlated = true
			}
			return d, i, sc.cols[i].t, nil
		}
		d++
	}
	return 0, 0, types.T{}, fmt.Errorf("plan: column %q does not exist", strings.Join(parts, "."))
}

// astString renders an AST expression canonically, used for structural
// matching (GROUP BY items against SELECT items, ORDER BY against output
// expressions) and for naming derived columns.
func astString(e sql.Expr) string {
	switch n := e.(type) {
	case *sql.Ident:
		return strings.Join(n.Parts, ".")
	case *sql.NumLit:
		return n.Text
	case *sql.StrLit:
		return "'" + n.Val + "'"
	case *sql.BoolLit:
		if n.Val {
			return "true"
		}
		return "false"
	case *sql.NullLit:
		return "null"
	case *sql.DateLit:
		return "date '" + n.Val + "'"
	case *sql.IntervalLit:
		return fmt.Sprintf("interval '%d' %s", n.N, n.Unit)
	case *sql.BinOp:
		return "(" + astString(n.L) + " " + n.Op + " " + astString(n.R) + ")"
	case *sql.UnOp:
		return "(" + n.Op + " " + astString(n.Kid) + ")"
	case *sql.FuncCall:
		var b strings.Builder
		b.WriteString(n.Name)
		b.WriteString("(")
		if n.Star {
			b.WriteString("*")
		}
		if n.Distinct {
			b.WriteString("distinct ")
		}
		for i, a := range n.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(astString(a))
		}
		b.WriteString(")")
		return b.String()
	case *sql.CaseExpr:
		var b strings.Builder
		b.WriteString("case")
		for _, w := range n.Whens {
			b.WriteString(" when " + astString(w.Cond) + " then " + astString(w.Result))
		}
		if n.Else != nil {
			b.WriteString(" else " + astString(n.Else))
		}
		b.WriteString(" end")
		return b.String()
	case *sql.BetweenExpr:
		op := " between "
		if n.Not {
			op = " not between "
		}
		return "(" + astString(n.X) + op + astString(n.Lo) + " and " + astString(n.Hi) + ")"
	case *sql.InExpr:
		var b strings.Builder
		b.WriteString("(" + astString(n.X))
		if n.Not {
			b.WriteString(" not")
		}
		b.WriteString(" in (")
		if n.Sub != nil {
			b.WriteString("subquery")
		}
		for i, it := range n.List {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(astString(it))
		}
		b.WriteString("))")
		return b.String()
	case *sql.ExistsExpr:
		if n.Not {
			return "(not exists subquery)"
		}
		return "(exists subquery)"
	case *sql.SubqueryExpr:
		return "(scalar subquery)"
	case *sql.LikeExpr:
		op := " like "
		if n.Not {
			op = " not like "
		}
		return "(" + astString(n.X) + op + "'" + n.Pattern + "')"
	case *sql.IsNullExpr:
		if n.Not {
			return "(" + astString(n.X) + " is not null)"
		}
		return "(" + astString(n.X) + " is null)"
	case *sql.ExtractExpr:
		return "extract(" + n.Field + " from " + astString(n.X) + ")"
	case *sql.SubstringExpr:
		return "substring(" + astString(n.X) + " from " + astString(n.From) + " for " + astString(n.For) + ")"
	default:
		return fmt.Sprintf("%T", e)
	}
}

// splitConjuncts flattens nested ANDs into a conjunct list.
func splitConjuncts(e sql.Expr) []sql.Expr {
	if b, ok := e.(*sql.BinOp); ok && b.Op == "and" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	if e == nil {
		return nil
	}
	return []sql.Expr{e}
}

// refInfo classifies which from-items an AST expression references.
type refInfo struct {
	items    map[int]bool // from-item indexes referenced at this level
	outer    bool         // references an enclosing scope
	subquery bool         // contains any subquery
	unknown  bool         // contains an unresolvable identifier
}

// collectRefs walks e resolving identifiers against the item column lists
// (itemCols[i] are the columns of from-item i) with outer as the parent
// scope for correlated references.
func collectRefs(e sql.Expr, itemCols [][]column, outer *scope) refInfo {
	info := refInfo{items: map[int]bool{}}
	var walk func(sql.Expr)
	resolveIdent := func(parts []string) {
		for i, cols := range itemCols {
			if idx, err := findColumn(cols, parts); err == nil && idx >= 0 {
				info.items[i] = true
				return
			}
		}
		if outer != nil {
			if _, _, _, err := outer.resolve(parts); err == nil {
				info.outer = true
				return
			}
		}
		info.unknown = true
	}
	walk = func(e sql.Expr) {
		switch n := e.(type) {
		case nil:
		case *sql.Ident:
			resolveIdent(n.Parts)
		case *sql.BinOp:
			walk(n.L)
			walk(n.R)
		case *sql.UnOp:
			walk(n.Kid)
		case *sql.FuncCall:
			for _, a := range n.Args {
				walk(a)
			}
		case *sql.CaseExpr:
			for _, w := range n.Whens {
				walk(w.Cond)
				walk(w.Result)
			}
			if n.Else != nil {
				walk(n.Else)
			}
		case *sql.BetweenExpr:
			walk(n.X)
			walk(n.Lo)
			walk(n.Hi)
		case *sql.InExpr:
			walk(n.X)
			for _, it := range n.List {
				walk(it)
			}
			if n.Sub != nil {
				info.subquery = true
			}
		case *sql.ExistsExpr:
			info.subquery = true
		case *sql.SubqueryExpr:
			info.subquery = true
		case *sql.LikeExpr:
			walk(n.X)
		case *sql.IsNullExpr:
			walk(n.X)
		case *sql.ExtractExpr:
			walk(n.X)
		case *sql.SubstringExpr:
			walk(n.X)
			walk(n.From)
			walk(n.For)
		}
	}
	walk(e)
	return info
}

// containsAggregate reports whether the AST expression contains an
// aggregate function call.
func containsAggregate(e sql.Expr) bool {
	switch n := e.(type) {
	case nil:
		return false
	case *sql.FuncCall:
		switch n.Name {
		case "count", "sum", "avg", "min", "max":
			return true
		}
		for _, a := range n.Args {
			if containsAggregate(a) {
				return true
			}
		}
		return false
	case *sql.BinOp:
		return containsAggregate(n.L) || containsAggregate(n.R)
	case *sql.UnOp:
		return containsAggregate(n.Kid)
	case *sql.CaseExpr:
		for _, w := range n.Whens {
			if containsAggregate(w.Cond) || containsAggregate(w.Result) {
				return true
			}
		}
		return n.Else != nil && containsAggregate(n.Else)
	case *sql.BetweenExpr:
		return containsAggregate(n.X) || containsAggregate(n.Lo) || containsAggregate(n.Hi)
	case *sql.InExpr:
		if containsAggregate(n.X) {
			return true
		}
		for _, it := range n.List {
			if containsAggregate(it) {
				return true
			}
		}
		return false
	case *sql.LikeExpr:
		return containsAggregate(n.X)
	case *sql.IsNullExpr:
		return containsAggregate(n.X)
	case *sql.ExtractExpr:
		return containsAggregate(n.X)
	case *sql.SubstringExpr:
		return containsAggregate(n.X)
	default:
		return false
	}
}

// exprVar builds a Var or OuterVar for a resolved identifier.
func exprVar(depth, idx int, t types.T, name string) expr.Expr {
	if depth == 0 {
		return &expr.Var{Idx: idx, T: t, Name: name}
	}
	return &expr.OuterVar{Idx: idx, Depth: depth - 1, T: t, Name: name}
}
