package plan

import (
	"fmt"
	"strconv"

	"microspec/internal/catalog"
	"microspec/internal/exec"
	"microspec/internal/expr"
	"microspec/internal/sql"
	"microspec/internal/types"
)

// selectPlan carries the state of planning one SELECT block.
type selectPlan struct {
	p      *Planner
	parent *scope
	ctes   map[string]*sql.Select
	frames []*scope
}

// newScope creates a resolution frame belonging to this select block.
func (sp *selectPlan) newScope(cols []column) *scope {
	s := &scope{cols: cols, parent: sp.parent, ctes: sp.ctes}
	sp.frames = append(sp.frames, s)
	return s
}

// correlated reports whether any frame of this block referenced an
// enclosing scope.
func (sp *selectPlan) isCorrelated() bool {
	for _, f := range sp.frames {
		if f.correlated {
			return true
		}
	}
	return false
}

// fromItem is one planned FROM-list entry.
type fromItem struct {
	node    exec.Node
	cols    []column
	est     float64
	filters []sql.Expr // pushed-down single-item conjuncts
	// rel is set for base-table items; attachFilters uses it to consider
	// equality index scans.
	rel *catalog.Relation
}

// joinEdge is an equi-join conjunct between two from items.
type joinEdge struct {
	li, ri int
	lIdent *sql.Ident // column of item li
	rIdent *sql.Ident // column of item ri
	used   bool
}

// planSelect plans one SELECT block. parent is the enclosing scope for
// correlated references (nil at the top level). It returns the plan root
// and the output scope (cols named by the select list; correlated set if
// the block references parent).
func (p *Planner) planSelect(sel *sql.Select, parent *scope) (exec.Node, *scope, error) {
	sp := &selectPlan{p: p, parent: parent}
	if len(sel.With) > 0 {
		sp.ctes = make(map[string]*sql.Select, len(sel.With))
		for _, cte := range sel.With {
			sp.ctes[cte.Name] = cte.Sel
		}
	}

	// --- FROM ---
	var items []*fromItem
	for _, ref := range sel.From {
		it, err := sp.planTableRef(ref)
		if err != nil {
			return nil, nil, err
		}
		items = append(items, it)
	}
	if len(items) == 0 {
		items = append(items, &fromItem{
			node: &exec.ValuesNode{Rows: []expr.Row{{}}},
			est:  1,
		})
	}
	itemCols := make([][]column, len(items))
	for i, it := range items {
		itemCols[i] = it.cols
	}

	// --- WHERE classification ---
	outerForRefs := sp.parent
	var edges []*joinEdge
	var postFilters []sql.Expr // conjuncts evaluated over the joined row
	var subqConjs []sql.Expr   // conjuncts containing subqueries
	for _, c := range splitConjuncts(sel.Where) {
		info := collectRefs(c, itemCols, outerForRefs)
		switch {
		case info.subquery:
			subqConjs = append(subqConjs, c)
		case info.unknown:
			postFilters = append(postFilters, c) // will fail with a clear error
		case len(info.items) <= 1 && !info.outer || len(info.items) == 1 && info.outer:
			// Single-item (possibly correlated) predicate: push to the scan.
			idx := 0
			for i := range info.items {
				idx = i
			}
			if len(info.items) == 0 {
				postFilters = append(postFilters, c)
			} else {
				items[idx].filters = append(items[idx].filters, c)
			}
		case len(info.items) == 2 && !info.outer:
			if e := identEqEdge(c, itemCols); e != nil {
				edges = append(edges, e)
			} else {
				// OR-of-ANDs with a join predicate repeated in every
				// branch (the q19 shape): factor the common equality out
				// as a join edge so the pair hash-joins instead of
				// cross-joining; the OR itself remains a post filter.
				edges = append(edges, factorOrEdges(c, itemCols)...)
				postFilters = append(postFilters, c)
			}
		default:
			postFilters = append(postFilters, c)
		}
	}

	// Attach pushed filters to each item.
	for _, it := range items {
		if err := sp.attachFilters(it); err != nil {
			return nil, nil, err
		}
	}

	// --- Join ordering ---
	ts, err := sp.buildJoinTree(items, edges)
	if err != nil {
		return nil, nil, err
	}

	// --- Subquery conjuncts: decorrelate or evaluate as expressions ---
	var postExprs []expr.Expr
	for _, c := range subqConjs {
		handled, repl, err := sp.handleSubqueryConjunct(ts, c)
		if err != nil {
			return nil, nil, err
		}
		if handled {
			if repl != nil {
				postExprs = append(postExprs, repl)
			}
			continue
		}
		// Fallback: evaluate the subquery as an expression per row.
		e, err := p.convertExpr(c, sp.newScope(ts.cols))
		if err != nil {
			return nil, nil, err
		}
		postExprs = append(postExprs, e)
	}

	// --- Remaining post-join filters ---
	if len(postFilters) > 0 {
		s := sp.newScope(ts.cols)
		for _, c := range postFilters {
			e, err := p.convertExpr(c, s)
			if err != nil {
				return nil, nil, err
			}
			postExprs = append(postExprs, e)
		}
	}
	if len(postExprs) > 0 {
		var pred expr.Expr
		if len(postExprs) == 1 {
			pred = postExprs[0]
		} else {
			pred = &expr.And{Kids: postExprs}
		}
		f := &exec.Filter{Child: ts.node, Pred: pred}
		if cp, ok := p.Mod.CompilePredicate(pred); ok {
			f.Compiled = cp
			f.NoteCalls = p.Mod.NoteEVPCall
		}
		ts.node = f
	}

	// --- Aggregation, projection, ordering ---
	return sp.finishSelect(sel, ts)
}

// attachFilters wraps an item's node in a Filter for its pushed conjuncts.
func (sp *selectPlan) attachFilters(it *fromItem) error {
	if len(it.filters) == 0 {
		return nil
	}
	s := sp.newScope(it.cols)
	var kids []expr.Expr
	for _, c := range it.filters {
		e, err := sp.p.convertExpr(c, s)
		if err != nil {
			return err
		}
		kids = append(kids, e)
	}
	var pred expr.Expr
	if len(kids) == 1 {
		pred = kids[0]
	} else {
		pred = &expr.And{Kids: kids}
	}
	sp.p.tryIndexScan(it, kids)
	f := &exec.Filter{Child: it.node, Pred: pred}
	if cp, ok := sp.p.Mod.CompilePredicate(pred); ok {
		f.Compiled = cp
		f.NoteCalls = sp.p.Mod.NoteEVPCall
	}
	it.node = f
	it.est = it.est / float64(1+len(it.filters))
	return nil
}

// tryIndexScan replaces a base-table sequential scan with an equality
// index scan when the pushed conjuncts pin a prefix of some index's key
// to row-independent values (constants or prepared-statement
// parameters). The full filter stays on top as a recheck, so the
// rewrite is always safe; the win is skipping the heap scan for point
// and small-prefix lookups. Longest matched prefix wins.
func (p *Planner) tryIndexScan(it *fromItem, conjuncts []expr.Expr) {
	if it.rel == nil || p.IndexesFor == nil {
		return
	}
	if _, ok := it.node.(*exec.SeqScan); !ok {
		return
	}
	// Equality bindings: column ordinal → key expression. The scan emits
	// the relation's attributes in order, so Var ordinals are attribute
	// ordinals.
	eq := map[int]expr.Expr{}
	for _, c := range conjuncts {
		cmp, ok := c.(*expr.Cmp)
		if !ok || cmp.Op != expr.EQ {
			continue
		}
		if v, ok := cmp.L.(*expr.Var); ok && rowIndependent(cmp.R) {
			eq[v.Idx] = cmp.R
		} else if v, ok := cmp.R.(*expr.Var); ok && rowIndependent(cmp.L) {
			eq[v.Idx] = cmp.L
		}
	}
	if len(eq) == 0 {
		return
	}
	var (
		best     IndexMeta
		bestCols int
	)
	for _, im := range p.IndexesFor(it.rel) {
		n := 0
		for _, col := range im.Cols {
			if _, ok := eq[col]; !ok {
				break
			}
			n++
		}
		if n > bestCols {
			best, bestCols = im, n
		}
	}
	if bestCols == 0 {
		return
	}
	h, err := p.HeapFor(it.rel)
	if err != nil {
		return
	}
	deform, err := p.Mod.Deformer(it.rel)
	if err != nil {
		return
	}
	keyExprs := make([]expr.Expr, bestCols)
	for i := 0; i < bestCols; i++ {
		keyExprs[i] = eq[best.Cols[i]]
	}
	scan := exec.NewIndexScan(h, best.Tree, deform, 0, nil, nil, false)
	scan.KeyExprs = keyExprs
	scan.Latch = best.Latch
	it.node = scan
	if it.est > 100 {
		it.est = 100
	}
}

// rowIndependent reports whether e reads nothing from the input row —
// only constants, parameters, and arithmetic over them.
func rowIndependent(e expr.Expr) bool {
	switch n := e.(type) {
	case *expr.Const, *expr.Param:
		return true
	case *expr.DateArith:
		return rowIndependent(n.L)
	case *expr.Arith:
		return rowIndependent(n.L) && rowIndependent(n.R)
	case *expr.Neg:
		return rowIndependent(n.Kid)
	default:
		return false
	}
}

// identEqEdge recognizes a two-item equi-join conjunct col_a = col_b.
func identEqEdge(c sql.Expr, itemCols [][]column) *joinEdge {
	b, ok := c.(*sql.BinOp)
	if !ok || b.Op != "=" {
		return nil
	}
	li, ok1 := b.L.(*sql.Ident)
	ri, ok2 := b.R.(*sql.Ident)
	if !ok1 || !ok2 {
		return nil
	}
	find := func(id *sql.Ident) int {
		for i, cols := range itemCols {
			if idx, err := findColumn(cols, id.Parts); err == nil && idx >= 0 {
				return i
			}
		}
		return -1
	}
	a, bb := find(li), find(ri)
	if a < 0 || bb < 0 || a == bb {
		return nil
	}
	return &joinEdge{li: a, ri: bb, lIdent: li, rIdent: ri}
}

// factorOrEdges extracts equi-join conjuncts that appear in every branch
// of an OR as implied join edges (A∧X ∨ A∧Y ⇒ A).
func factorOrEdges(c sql.Expr, itemCols [][]column) []*joinEdge {
	or, ok := c.(*sql.BinOp)
	if !ok || or.Op != "or" {
		return nil
	}
	branches := splitDisjuncts(c)
	if len(branches) < 2 {
		return nil
	}
	first := splitConjuncts(branches[0])
	var edges []*joinEdge
	for _, cand := range first {
		e := identEqEdge(cand, itemCols)
		if e == nil {
			continue
		}
		want := astString(cand)
		inAll := true
		for _, b := range branches[1:] {
			found := false
			for _, cc := range splitConjuncts(b) {
				if astString(cc) == want {
					found = true
					break
				}
			}
			if !found {
				inAll = false
				break
			}
		}
		if inAll {
			edges = append(edges, e)
		}
	}
	return edges
}

func splitDisjuncts(e sql.Expr) []sql.Expr {
	if b, ok := e.(*sql.BinOp); ok && b.Op == "or" {
		return append(splitDisjuncts(b.L), splitDisjuncts(b.R)...)
	}
	return []sql.Expr{e}
}

// treeState is the join tree under construction.
type treeState struct {
	node exec.Node
	cols []column
}

// buildJoinTree greedily assembles a left-deep join tree: start from the
// largest item (the probe side), repeatedly attach the smallest item
// connected by an equi-join edge as the hash-join build side; cross-join
// (materialized nested loop) only when nothing connects.
func (sp *selectPlan) buildJoinTree(items []*fromItem, edges []*joinEdge) (*treeState, error) {
	n := len(items)
	inTree := make([]bool, n)
	itemOffset := make([]int, n)

	// Start with the largest item.
	start := 0
	for i := 1; i < n; i++ {
		if items[i].est > items[start].est {
			start = i
		}
	}
	ts := &treeState{node: items[start].node, cols: append([]column(nil), items[start].cols...)}
	inTree[start] = true
	itemOffset[start] = 0

	for added := 1; added < n; added++ {
		// Find the smallest item connected to the tree.
		next := -1
		for i := 0; i < n; i++ {
			if inTree[i] {
				continue
			}
			connected := false
			for _, e := range edges {
				if e.used {
					continue
				}
				if e.li == i && inTree[e.ri] || e.ri == i && inTree[e.li] {
					connected = true
					break
				}
			}
			if connected && (next < 0 || items[i].est < items[next].est) {
				next = i
			}
		}
		if next < 0 {
			// Cross join with the smallest remaining item.
			for i := 0; i < n; i++ {
				if !inTree[i] && (next < 0 || items[i].est < items[next].est) {
					next = i
				}
			}
			itemOffset[next] = len(ts.cols)
			ts.node = &exec.NLJoin{
				Outer: ts.node,
				Inner: &exec.Materialize{Child: items[next].node},
				Type:  exec.InnerJoin,
			}
			ts.cols = append(ts.cols, items[next].cols...)
			inTree[next] = true
			continue
		}

		// Gather all unused edges connecting next to the tree as keys.
		var outerKeys, innerKeys []int
		var keyTypes []types.T
		for _, e := range edges {
			if e.used {
				continue
			}
			var treeIdent, itemIdent *sql.Ident
			switch {
			case e.li == next && inTree[e.ri]:
				itemIdent, treeIdent = e.lIdent, e.rIdent
			case e.ri == next && inTree[e.li]:
				itemIdent, treeIdent = e.rIdent, e.lIdent
			default:
				continue
			}
			ti, err := findColumn(ts.cols, treeIdent.Parts)
			if err != nil || ti < 0 {
				continue
			}
			ii, err := findColumn(items[next].cols, itemIdent.Parts)
			if err != nil || ii < 0 {
				continue
			}
			outerKeys = append(outerKeys, ti)
			innerKeys = append(innerKeys, ii)
			keyTypes = append(keyTypes, items[next].cols[ii].t)
			e.used = true
		}
		hj := &exec.HashJoin{
			Outer:     ts.node,
			Inner:     items[next].node,
			OuterKeys: outerKeys,
			InnerKeys: innerKeys,
			Type:      exec.InnerJoin,
		}
		if evj, ok := sp.p.Mod.CompileJoinKeys(outerKeys, innerKeys, keyTypes); ok {
			hj.EVJ = evj
			hj.NoteEVJ = sp.p.Mod.NoteEVJCall
		}
		itemOffset[next] = len(ts.cols)
		ts.node = hj
		ts.cols = append(ts.cols, items[next].cols...)
		inTree[next] = true
	}

	// Leftover edges (cycles) become post filters on the combined row.
	var leftovers []expr.Expr
	s := sp.newScope(ts.cols)
	for _, e := range edges {
		if e.used {
			continue
		}
		l, err := sp.p.convertExpr(&sql.BinOp{Op: "=", L: e.lIdent, R: e.rIdent}, s)
		if err != nil {
			return nil, err
		}
		leftovers = append(leftovers, l)
	}
	if len(leftovers) > 0 {
		var pred expr.Expr
		if len(leftovers) == 1 {
			pred = leftovers[0]
		} else {
			pred = &expr.And{Kids: leftovers}
		}
		f := &exec.Filter{Child: ts.node, Pred: pred}
		if cp, ok := sp.p.Mod.CompilePredicate(pred); ok {
			f.Compiled = cp
		}
		ts.node = f
	}
	return ts, nil
}

// planTableRef plans one FROM-list entry.
func (sp *selectPlan) planTableRef(ref sql.TableRef) (*fromItem, error) {
	p := sp.p
	switch r := ref.(type) {
	case *sql.BaseTable:
		alias := r.Alias
		if alias == "" {
			alias = r.Name
		}
		// CTE reference?
		probe := &scope{parent: sp.parent, ctes: sp.ctes}
		if cteSel, ok := probe.lookupCTE(r.Name); ok {
			node, sub, err := p.planSelect(cteSel, sp.parent)
			if err != nil {
				return nil, fmt.Errorf("plan: in CTE %s: %w", r.Name, err)
			}
			cols := make([]column, len(sub.cols))
			for i, c := range sub.cols {
				cols[i] = column{tbl: alias, name: c.name, t: c.t}
			}
			return &fromItem{node: node, cols: cols, est: 500}, nil
		}
		rel, err := p.baseRelation(r.Name, probe)
		if err != nil {
			return nil, err
		}
		node, err := p.scanFor(rel)
		if err != nil {
			return nil, err
		}
		cols := make([]column, len(rel.Attrs))
		for i, a := range rel.Attrs {
			cols[i] = column{tbl: alias, name: a.Name, t: a.Type}
		}
		return &fromItem{node: node, cols: cols, est: p.estRows(rel), rel: rel}, nil

	case *sql.SubqueryRef:
		node, sub, err := p.planSelect(r.Sel, sp.parent)
		if err != nil {
			return nil, err
		}
		cols := make([]column, len(sub.cols))
		for i, c := range sub.cols {
			cols[i] = column{tbl: r.Alias, name: c.name, t: c.t}
		}
		if sub.correlated {
			return nil, fmt.Errorf("plan: correlated derived table %q not supported", r.Alias)
		}
		return &fromItem{node: node, cols: cols, est: 500}, nil

	case *sql.JoinRef:
		return sp.planJoinRef(r)

	default:
		return nil, fmt.Errorf("plan: unsupported FROM item %T", ref)
	}
}

// planJoinRef plans an explicit JOIN ... ON, extracting equi keys from
// the ON conjuncts and keeping the rest as the join residual (ON-clause
// semantics, which matter for outer joins).
func (sp *selectPlan) planJoinRef(r *sql.JoinRef) (*fromItem, error) {
	left, err := sp.planTableRef(r.Left)
	if err != nil {
		return nil, err
	}
	right, err := sp.planTableRef(r.Right)
	if err != nil {
		return nil, err
	}
	combined := append(append([]column(nil), left.cols...), right.cols...)

	if r.Type == sql.JoinCross {
		return &fromItem{
			node: &exec.NLJoin{Outer: left.node, Inner: &exec.Materialize{Child: right.node}, Type: exec.InnerJoin},
			cols: combined,
			est:  left.est * right.est,
		}, nil
	}

	jt := exec.InnerJoin
	if r.Type == sql.JoinLeft {
		jt = exec.LeftJoin
	}
	itemCols := [][]column{left.cols, right.cols}
	var outerKeys, innerKeys []int
	var keyTypes []types.T
	var residualASTs []sql.Expr
	for _, c := range splitConjuncts(r.On) {
		if e := identEqEdge(c, itemCols); e != nil {
			lId, rId := e.lIdent, e.rIdent
			if e.li == 1 {
				lId, rId = rId, lId // normalize: left ident first
			}
			li, _ := findColumn(left.cols, lId.Parts)
			ri, _ := findColumn(right.cols, rId.Parts)
			outerKeys = append(outerKeys, li)
			innerKeys = append(innerKeys, ri)
			keyTypes = append(keyTypes, right.cols[ri].t)
			continue
		}
		residualASTs = append(residualASTs, c)
	}
	var residual expr.Expr
	if len(residualASTs) > 0 {
		s := sp.newScope(combined)
		var kids []expr.Expr
		for _, c := range residualASTs {
			e, err := sp.p.convertExpr(c, s)
			if err != nil {
				return nil, err
			}
			kids = append(kids, e)
		}
		if len(kids) == 1 {
			residual = kids[0]
		} else {
			residual = &expr.And{Kids: kids}
		}
	}

	var node exec.Node
	if len(outerKeys) > 0 {
		hj := &exec.HashJoin{
			Outer: left.node, Inner: right.node,
			OuterKeys: outerKeys, InnerKeys: innerKeys,
			Type: jt, Residual: residual,
		}
		if residual != nil {
			if cp, ok := sp.p.Mod.CompilePredicate(residual); ok {
				hj.ResidualCompiled = cp
			}
		}
		if evj, ok := sp.p.Mod.CompileJoinKeys(outerKeys, innerKeys, keyTypes); ok {
			hj.EVJ = evj
			hj.NoteEVJ = sp.p.Mod.NoteEVJCall
		}
		node = hj
	} else {
		nl := &exec.NLJoin{
			Outer: left.node, Inner: &exec.Materialize{Child: right.node},
			Type: jt, Qual: residual,
		}
		if residual != nil {
			if cp, ok := sp.p.Mod.CompilePredicate(residual); ok {
				nl.QualCompiled = cp
			}
		}
		node = nl
	}
	return &fromItem{node: node, cols: combined, est: left.est * 1.2}, nil
}

// substVar is a pre-resolved substitution target for aggregate planning.
type substVar struct {
	idx  int
	t    types.T
	name string
}

// finishSelect handles aggregation, HAVING, projection, DISTINCT, ORDER
// BY, and LIMIT over the joined tree.
func (sp *selectPlan) finishSelect(sel *sql.Select, ts *treeState) (exec.Node, *scope, error) {
	p := sp.p

	// Expand stars.
	var outASTs []sql.Expr
	var outAliases []string
	starCols := []column(nil)
	for _, item := range sel.Items {
		if item.Star {
			for _, c := range ts.cols {
				outASTs = append(outASTs, nil) // marker: direct column
				outAliases = append(outAliases, "")
				starCols = append(starCols, c)
			}
			continue
		}
		outASTs = append(outASTs, item.Expr)
		outAliases = append(outAliases, item.Alias)
	}

	needAgg := len(sel.GroupBy) > 0 || sel.Having != nil
	for _, a := range outASTs {
		if a != nil && containsAggregate(a) {
			needAgg = true
		}
	}

	curNode := ts.node
	curScope := sp.newScope(ts.cols)
	subst := map[string]substVar(nil)

	if needAgg {
		var err error
		curNode, curScope, subst, err = sp.planAggregation(sel, ts, outASTs)
		if err != nil {
			return nil, nil, err
		}
		// HAVING.
		if sel.Having != nil {
			pred, err := sp.convertSubst(sel.Having, curScope, subst)
			if err != nil {
				return nil, nil, err
			}
			f := &exec.Filter{Child: curNode, Pred: pred}
			if cp, ok := p.Mod.CompilePredicate(pred); ok {
				f.Compiled = cp
			}
			curNode = f
		}
	}

	// Convert output expressions.
	var outExprs []expr.Expr
	var outCols []column
	starIdx := 0
	for i, ast := range outASTs {
		if ast == nil {
			c := starCols[starIdx]
			starIdx++
			idx, err := findColumn(curScope.cols, []string{c.tbl, c.name})
			if err != nil || idx < 0 {
				idx, _ = findColumn(curScope.cols, []string{c.name})
			}
			if idx < 0 {
				return nil, nil, fmt.Errorf("plan: cannot expand * column %s.%s", c.tbl, c.name)
			}
			outExprs = append(outExprs, &expr.Var{Idx: idx, T: c.t, Name: c.name})
			outCols = append(outCols, c)
			continue
		}
		e, err := sp.convertSubst(ast, curScope, subst)
		if err != nil {
			return nil, nil, err
		}
		outExprs = append(outExprs, e)
		name := outAliases[i]
		if name == "" {
			if id, ok := ast.(*sql.Ident); ok {
				name = id.Parts[len(id.Parts)-1]
			} else {
				name = astString(ast)
			}
		}
		outCols = append(outCols, column{name: name, t: e.Type()})
	}

	// ORDER BY resolution: output ordinal, alias, or structural match;
	// otherwise a hidden projected column.
	var sortKeys []exec.SortKey
	hidden := 0
	for _, oi := range sel.OrderBy {
		idx := -1
		if n, ok := oi.Expr.(*sql.NumLit); ok && !n.IsFloat {
			v, _ := strconv.Atoi(n.Text)
			if v < 1 || v > len(outASTs) {
				return nil, nil, fmt.Errorf("plan: ORDER BY position %d out of range", v)
			}
			idx = v - 1
		}
		if idx < 0 {
			if id, ok := oi.Expr.(*sql.Ident); ok && len(id.Parts) == 1 {
				for j, alias := range outAliases {
					if alias == id.Parts[0] {
						idx = j
						break
					}
				}
			}
		}
		if idx < 0 {
			want := astString(oi.Expr)
			for j, ast := range outASTs {
				if ast != nil && astString(ast) == want {
					idx = j
					break
				}
			}
			// Also match star columns / bare output names.
			if idx < 0 {
				if id, ok := oi.Expr.(*sql.Ident); ok {
					name := id.Parts[len(id.Parts)-1]
					for j, c := range outCols {
						if c.name == name {
							idx = j
							break
						}
					}
				}
			}
		}
		if idx < 0 {
			// Hidden sort column.
			if sel.Distinct {
				return nil, nil, fmt.Errorf("plan: ORDER BY expression must appear in SELECT DISTINCT list")
			}
			e, err := sp.convertSubst(oi.Expr, curScope, subst)
			if err != nil {
				return nil, nil, err
			}
			idx = len(outExprs)
			outExprs = append(outExprs, e)
			hidden++
		}
		sortKeys = append(sortKeys, exec.SortKey{Idx: idx, Desc: oi.Desc})
	}

	projCols := make([]exec.ColInfo, len(outExprs))
	for i := range outExprs {
		if i < len(outCols) {
			projCols[i] = exec.ColInfo{Name: outCols[i].name, T: outExprs[i].Type()}
		} else {
			projCols[i] = exec.ColInfo{Name: fmt.Sprintf("_sort%d", i), T: outExprs[i].Type()}
		}
	}
	var node exec.Node = &exec.Project{Child: curNode, Exprs: outExprs, Cols: projCols}

	if sel.Distinct {
		node = &exec.Distinct{Child: node}
	}
	if len(sortKeys) > 0 {
		node = &exec.Sort{Child: node, Keys: sortKeys}
	}
	if hidden > 0 {
		visible := len(outExprs) - hidden
		strip := make([]expr.Expr, visible)
		for i := 0; i < visible; i++ {
			strip[i] = &expr.Var{Idx: i, T: projCols[i].T, Name: projCols[i].Name}
		}
		node = &exec.Project{Child: node, Exprs: strip, Cols: projCols[:visible]}
	}
	if sel.Limit >= 0 || sel.Offset > 0 {
		node = &exec.Limit{Child: node, N: sel.Limit, Offset: sel.Offset}
	}

	out := &scope{cols: outCols, parent: sp.parent, correlated: sp.isCorrelated()}
	return node, out, nil
}

// planAggregation builds the HashAgg node: group keys from GROUP BY,
// aggregate specs extracted from the select list, HAVING, and ORDER BY.
// It returns the post-aggregation scope and the substitution table used
// to rewrite those expressions over the aggregate output.
func (sp *selectPlan) planAggregation(sel *sql.Select, ts *treeState, outASTs []sql.Expr) (exec.Node, *scope, map[string]substVar, error) {
	p := sp.p
	joined := sp.newScope(ts.cols)

	subst := map[string]substVar{}
	var groupExprs []expr.Expr
	var postCols []column
	for i, g := range sel.GroupBy {
		e, err := p.convertExpr(g, joined)
		if err != nil {
			return nil, nil, nil, err
		}
		groupExprs = append(groupExprs, e)
		key := astString(g)
		col := column{name: key, t: e.Type()}
		if id, ok := g.(*sql.Ident); ok {
			idx, _ := findColumn(ts.cols, id.Parts)
			if idx >= 0 {
				col = ts.cols[idx]
			}
		}
		postCols = append(postCols, col)
		subst[key] = substVar{idx: i, t: e.Type(), name: col.name}
	}

	// Extract aggregate calls from every expression that will be
	// evaluated post-aggregation.
	var aggs []exec.AggSpec
	var extract func(e sql.Expr) error
	seen := map[string]int{}
	extract = func(e sql.Expr) error {
		switch n := e.(type) {
		case nil:
			return nil
		case *sql.FuncCall:
			if !isAggName(n.Name) {
				return fmt.Errorf("plan: unknown function %q", n.Name)
			}
			key := astString(n)
			if _, ok := seen[key]; ok {
				return nil
			}
			spec := exec.AggSpec{Distinct: n.Distinct, Name: key}
			switch n.Name {
			case "count":
				spec.Fn = exec.AggCount
			case "sum":
				spec.Fn = exec.AggSum
			case "avg":
				spec.Fn = exec.AggAvg
			case "min":
				spec.Fn = exec.AggMin
			case "max":
				spec.Fn = exec.AggMax
			}
			if !n.Star {
				if len(n.Args) != 1 {
					return fmt.Errorf("plan: %s takes one argument", n.Name)
				}
				arg, err := p.convertExpr(n.Args[0], joined)
				if err != nil {
					return err
				}
				spec.Arg = arg
				// EVA: specialize the aggregate's input evaluation, in both
				// the per-tuple and the per-batch form.
				if ca, ok := p.Mod.CompileScalar(arg); ok {
					spec.CompiledArg = ca
				}
				if cba, ok := p.Mod.CompileBatchScalar(arg); ok {
					spec.CompiledBatchArg = cba
					spec.Usage = p.Mod.Usage("query/EVA", arg.String())
				}
			}
			idx := len(sel.GroupBy) + len(aggs)
			aggs = append(aggs, spec)
			seen[key] = idx
			subst[key] = substVar{idx: idx, t: spec.ResultType(), name: key}
			return nil
		case *sql.BinOp:
			if err := extract(n.L); err != nil {
				return err
			}
			return extract(n.R)
		case *sql.UnOp:
			return extract(n.Kid)
		case *sql.CaseExpr:
			for _, w := range n.Whens {
				if err := extract(w.Cond); err != nil {
					return err
				}
				if err := extract(w.Result); err != nil {
					return err
				}
			}
			return extract(n.Else)
		case *sql.BetweenExpr:
			if err := extract(n.X); err != nil {
				return err
			}
			if err := extract(n.Lo); err != nil {
				return err
			}
			return extract(n.Hi)
		case *sql.LikeExpr:
			return extract(n.X)
		case *sql.IsNullExpr:
			return extract(n.X)
		case *sql.ExtractExpr:
			return extract(n.X)
		case *sql.SubstringExpr:
			if err := extract(n.X); err != nil {
				return err
			}
			if err := extract(n.From); err != nil {
				return err
			}
			return extract(n.For)
		case *sql.InExpr:
			if err := extract(n.X); err != nil {
				return err
			}
			for _, it := range n.List {
				if err := extract(it); err != nil {
					return err
				}
			}
			return nil
		default:
			return nil
		}
	}
	gather := append([]sql.Expr(nil), outASTs...)
	if sel.Having != nil {
		gather = append(gather, sel.Having)
	}
	for _, oi := range sel.OrderBy {
		gather = append(gather, oi.Expr)
	}
	for _, e := range gather {
		if e == nil {
			continue
		}
		if err := extractAggsOnly(e, extract); err != nil {
			return nil, nil, nil, err
		}
	}

	for _, a := range aggs {
		postCols = append(postCols, column{name: a.Name, t: a.ResultType()})
	}
	agg := &exec.HashAgg{Child: ts.node, GroupBy: groupExprs, Aggs: aggs}
	for i := range aggs {
		if aggs[i].CompiledArg != nil {
			agg.NoteEVA = p.Mod.NoteEVACall
			break
		}
	}
	return agg, sp.newScope(postCols), subst, nil
}

// extractAggsOnly walks e calling extract on aggregate FuncCall nodes
// (skipping subtrees that match group-by keys is unnecessary: group keys
// never contain aggregates).
func extractAggsOnly(e sql.Expr, extract func(sql.Expr) error) error {
	switch n := e.(type) {
	case *sql.FuncCall:
		if isAggName(n.Name) {
			return extract(n)
		}
		return nil
	default:
		return extract(e)
	}
}

func isAggName(name string) bool {
	switch name {
	case "count", "sum", "avg", "min", "max":
		return true
	}
	return false
}

// convertSubst converts an AST expression, first substituting any subtree
// that matches a group-by key or extracted aggregate (by canonical string)
// with a Var over the aggregate output row. With a nil substitution table
// it is plain convertExpr.
func (sp *selectPlan) convertSubst(e sql.Expr, s *scope, subst map[string]substVar) (expr.Expr, error) {
	if subst == nil {
		return sp.p.convertExpr(e, s)
	}
	if sv, ok := subst[astString(e)]; ok {
		return &expr.Var{Idx: sv.idx, T: sv.t, Name: sv.name}, nil
	}
	switch n := e.(type) {
	case *sql.BinOp:
		l, err := sp.convertSubst(n.L, s, subst)
		if err != nil {
			return nil, err
		}
		r, err := sp.convertSubst(n.R, s, subst)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "and":
			return &expr.And{Kids: flattenAnd(l, r)}, nil
		case "or":
			return &expr.Or{Kids: flattenOr(l, r)}, nil
		case "=", "<>", "<", "<=", ">", ">=":
			return &expr.Cmp{Op: cmpOp(n.Op), L: l, R: r}, nil
		default:
			return &expr.Arith{Op: arithOp(n.Op), L: l, R: r}, nil
		}
	case *sql.UnOp:
		k, err := sp.convertSubst(n.Kid, s, subst)
		if err != nil {
			return nil, err
		}
		if n.Op == "not" {
			return &expr.Not{Kid: k}, nil
		}
		return &expr.Neg{Kid: k}, nil
	case *sql.CaseExpr:
		ce := &expr.Case{}
		for _, w := range n.Whens {
			c, err := sp.convertSubst(w.Cond, s, subst)
			if err != nil {
				return nil, err
			}
			r, err := sp.convertSubst(w.Result, s, subst)
			if err != nil {
				return nil, err
			}
			ce.Whens = append(ce.Whens, expr.When{Cond: c, Result: r})
		}
		if n.Else != nil {
			var err error
			ce.Else, err = sp.convertSubst(n.Else, s, subst)
			if err != nil {
				return nil, err
			}
		}
		ce.T = ce.Whens[0].Result.Type()
		return ce, nil
	case *sql.BetweenExpr:
		x1, err := sp.convertSubst(n.X, s, subst)
		if err != nil {
			return nil, err
		}
		x2, _ := sp.convertSubst(n.X, s, subst)
		lo, err := sp.convertSubst(n.Lo, s, subst)
		if err != nil {
			return nil, err
		}
		hi, err := sp.convertSubst(n.Hi, s, subst)
		if err != nil {
			return nil, err
		}
		var b expr.Expr = &expr.And{Kids: []expr.Expr{
			&expr.Cmp{Op: expr.GE, L: x1, R: lo},
			&expr.Cmp{Op: expr.LE, L: x2, R: hi},
		}}
		if n.Not {
			b = &expr.Not{Kid: b}
		}
		return b, nil
	default:
		return sp.p.convertExpr(e, s)
	}
}
