package plan

import (
	"microspec/internal/exec"
)

// This file is the batchify pass: the last planning step rewrites every
// eligible Filter*→SeqScan spine onto the batch-at-a-time executor path
// (internal/exec/batch.go). It runs after parallelize — Gather partition
// subplans are themselves spines, so parallel plans batch too — and only
// changes how rows move, never which rows or in what order, keeping batch
// output identical to the tuple path.
//
// Rewrites:
//
//   - HashAgg(spine)  → BatchHashAgg(batch spine)   (Q1/Q6 shape)
//   - spine elsewhere → Rebatch(batch spine)        (joins, sorts, and
//     projections consume the adapter tuple-at-a-time, unchanged)
//
// A spine is ineligible only when its relation has tuple-bee specialized
// storage while GCL routines are disabled (no batch deformer exists);
// predicates always convert, falling back to the generic interpreter per
// row inside BatchFilter when no batch EVP bee applies.

// batchify rewrites a finished plan onto the batch path; it is a no-op
// when batching is disabled.
func (p *Planner) batchify(n exec.Node) exec.Node {
	if !p.Batch || p.Mod == nil {
		return n
	}
	return p.batchRewrite(n)
}

func (p *Planner) batchRewrite(n exec.Node) exec.Node {
	switch v := n.(type) {
	case *exec.HashAgg:
		if bn := p.batchRegion(v.Child); bn != nil {
			return &exec.BatchHashAgg{
				Child:   bn,
				GroupBy: v.GroupBy,
				Aggs:    v.Aggs,
				NoteEVA: v.NoteEVA,
			}
		}
		v.Child = p.batchRewrite(v.Child)
	case *exec.Filter:
		if bn := p.batchRegion(v); bn != nil {
			return &exec.Rebatch{Child: bn}
		}
		v.Child = p.batchRewrite(v.Child)
	case *exec.SeqScan:
		if bn := p.batchRegion(v); bn != nil {
			return &exec.Rebatch{Child: bn}
		}
	case *exec.Project:
		v.Child = p.batchRewrite(v.Child)
	case *exec.Limit:
		v.Child = p.batchRewrite(v.Child)
	case *exec.Sort:
		v.Child = p.batchRewrite(v.Child)
	case *exec.Distinct:
		v.Child = p.batchRewrite(v.Child)
	case *exec.Materialize:
		v.Child = p.batchRewrite(v.Child)
	case *exec.HashJoin:
		v.Outer = p.batchRewrite(v.Outer)
		v.Inner = p.batchRewrite(v.Inner)
	case *exec.NLJoin:
		v.Outer = p.batchRewrite(v.Outer)
		v.Inner = p.batchRewrite(v.Inner)
	case *exec.Gather:
		// Each partition subplan batches independently; Gather detects
		// Rebatch-rooted parts and drives them batch-wise (partial
		// aggregation and batch streaming) without the tuple boundary.
		for i := range v.Parts {
			v.Parts[i] = p.batchRewrite(v.Parts[i])
		}
	}
	return n
}

// batchRegion converts a Filter*→SeqScan chain into the equivalent
// BatchFilter*→BatchSeqScan chain, or returns nil when n has any other
// shape or the relation has no batch deformer. Filters are re-wrapped in
// the original order so per-row predicate evaluation order — and thus
// profiling and fault behaviour — matches the tuple path exactly.
func (p *Planner) batchRegion(n exec.Node) exec.BatchNode {
	var filters []*exec.Filter
	for {
		switch v := n.(type) {
		case *exec.Filter:
			filters = append(filters, v)
			n = v.Child
		case *exec.SeqScan:
			deform, err := p.Mod.BatchDeformer(v.Heap.Rel)
			if err != nil {
				return nil
			}
			bs := exec.NewBatchSeqScan(v.Heap, deform, v.NAtts)
			bs.NoteDeforms = v.NoteDeforms
			bs.DeformUsage = p.Mod.Usage("relation", v.Heap.Rel.Name)
			bs.Range = v.Range
			bs.Partial = v.Partial
			// Fuse the innermost compiled filter into the scan when the
			// composed GCL∘EVP routine covers relation and predicate: the
			// scan then deforms each tuple only as far as the predicate
			// needs, instead of fully deforming rows the filter discards.
			// The tuple path evaluates the innermost filter first, so
			// fusing it preserves predicate order for the rest.
			if k := len(filters) - 1; k >= 0 && filters[k].Compiled != nil {
				f := filters[k]
				if fp, ok := p.Mod.CompileFusedScanFilter(v.Heap.Rel, f.Pred, bs.NAtts); ok {
					bs.Fused = fp
					bs.FusedPred = f.Pred
					bs.NoteFused = f.NoteCalls
					bs.FusedUsage = p.Mod.Usage("query/EVP", f.Pred.String())
					filters = filters[:k]
				}
			}
			var node exec.BatchNode = bs
			for j := len(filters) - 1; j >= 0; j-- {
				f := filters[j]
				bf := &exec.BatchFilter{Child: node, Pred: f.Pred}
				if f.Compiled != nil {
					if cp, ok := p.Mod.CompileBatchPredicate(f.Pred); ok {
						bf.Compiled = cp
						bf.NoteCalls = f.NoteCalls
						bf.Usage = p.Mod.Usage("query/EVP", f.Pred.String())
					}
				}
				node = bf
			}
			return node
		default:
			return nil
		}
	}
}
