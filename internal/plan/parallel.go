package plan

import (
	"microspec/internal/exec"
)

// minParallelPages is the smallest heap (in pages) worth partitioning:
// below it, worker startup costs more than the scan itself.
const minParallelPages = 8

// scanRegion is a parallelizable plan fragment: a chain of Filters (outer
// first, possibly empty) over one whole-heap SeqScan. The region is the
// unit the planner replicates per partition, each replica carrying its
// own bee closures.
type scanRegion struct {
	filters []*exec.Filter
	scan    *exec.SeqScan
}

// scanRegionOf matches a node against the Filter*→SeqScan shape; nil if
// the fragment has any other operator (joins, subquery-bearing nodes,
// index scans) or the scan is already partial.
func scanRegionOf(n exec.Node) *scanRegion {
	r := &scanRegion{}
	for {
		switch v := n.(type) {
		case *exec.Filter:
			r.filters = append(r.filters, v)
			n = v.Child
		case *exec.SeqScan:
			if v.Partial {
				return nil
			}
			r.scan = v
			return r
		default:
			return nil
		}
	}
}

// safe reports whether every predicate in the region may run on
// concurrent workers (no subquery expressions, no outer references).
func (r *scanRegion) safe() bool {
	for _, f := range r.filters {
		if !exec.ParallelSafeExpr(f.Pred) {
			return false
		}
	}
	return true
}

// buildParts replicates the region once per page-range partition. Every
// replica gets its own deform closure (GCL bee) and freshly compiled
// predicate closures (EVP bees) from the bee module, so partition workers
// share no mutable state on the per-tuple path.
func (p *Planner) buildParts(r *scanRegion) ([]exec.Node, error) {
	ranges := r.scan.Heap.Partitions(p.Workers)
	if len(ranges) < 2 {
		return nil, nil
	}
	parts := make([]exec.Node, len(ranges))
	for i, pr := range ranges {
		deform, err := p.Mod.Deformer(r.scan.Heap.Rel)
		if err != nil {
			return nil, err
		}
		scan := exec.NewSeqScanRange(r.scan.Heap, deform, r.scan.NAtts, pr)
		scan.NoteDeforms = r.scan.NoteDeforms
		var node exec.Node = scan
		for j := len(r.filters) - 1; j >= 0; j-- {
			f := r.filters[j]
			nf := &exec.Filter{Child: node, Pred: f.Pred}
			if f.Compiled != nil {
				if cp, ok := p.Mod.CompilePredicate(f.Pred); ok {
					nf.Compiled = cp
					nf.NoteCalls = f.NoteCalls
				}
			}
			node = nf
		}
		parts[i] = node
	}
	return parts, nil
}

// parallelize rewrites a finished serial plan for intra-query
// parallelism. It only introduces Gather nodes where the result stays
// byte-identical to the serial plan:
//
//   - a HashAgg over a scan region becomes a partial-aggregation Gather
//     (merging partition tables in page order reproduces the serial
//     first-appearance group order);
//   - a Sort (optionally over a Project) over a scan region becomes a
//     sorted-run-merge Gather (ties resolve in partition page order,
//     matching the serial stable sort).
//
// Plain streaming fragments keep their serial form: parallelizing them
// would reorder visible rows. Joins and subquery-bearing predicates also
// stay serial.
func (p *Planner) parallelize(n exec.Node) exec.Node {
	if p.Workers <= 1 || p.Mod == nil {
		return n
	}
	return p.parRewrite(n)
}

func (p *Planner) parRewrite(n exec.Node) exec.Node {
	switch v := n.(type) {
	case *exec.HashAgg:
		if g := p.tryGatherAgg(v); g != nil {
			return g
		}
		v.Child = p.parRewrite(v.Child)
	case *exec.Sort:
		if g := p.tryGatherMerge(v); g != nil {
			return g
		}
		v.Child = p.parRewrite(v.Child)
	case *exec.Filter:
		v.Child = p.parRewrite(v.Child)
	case *exec.Project:
		v.Child = p.parRewrite(v.Child)
	case *exec.Limit:
		v.Child = p.parRewrite(v.Child)
	case *exec.Distinct:
		v.Child = p.parRewrite(v.Child)
	case *exec.Materialize:
		v.Child = p.parRewrite(v.Child)
	case *exec.HashJoin:
		v.Outer = p.parRewrite(v.Outer)
		v.Inner = p.parRewrite(v.Inner)
	case *exec.NLJoin:
		v.Outer = p.parRewrite(v.Outer)
		v.Inner = p.parRewrite(v.Inner)
	}
	return n
}

// tryGatherAgg converts HashAgg(region) into a partial-aggregation
// Gather, or returns nil when the plan is not parallel-safe.
func (p *Planner) tryGatherAgg(agg *exec.HashAgg) exec.Node {
	region := scanRegionOf(agg.Child)
	if region == nil || !region.safe() {
		return nil
	}
	if region.scan.Heap.NumPages() < minParallelPages {
		return nil
	}
	for i := range agg.Aggs {
		spec := &agg.Aggs[i]
		// DISTINCT states cannot be merged across partitions.
		if spec.Distinct || !exec.ParallelSafeExpr(spec.Arg) {
			return nil
		}
	}
	for _, g := range agg.GroupBy {
		if !exec.ParallelSafeExpr(g) {
			return nil
		}
	}
	parts, err := p.buildParts(region)
	if err != nil || parts == nil {
		return nil
	}
	// Per-partition EVA bee closures: each worker evaluates aggregate
	// inputs through its own compiled routine.
	var partAggs [][]exec.AggSpec
	for i := range agg.Aggs {
		if agg.Aggs[i].CompiledArg != nil {
			partAggs = make([][]exec.AggSpec, len(parts))
			for pi := range parts {
				specs := append([]exec.AggSpec(nil), agg.Aggs...)
				for si := range specs {
					if specs[si].CompiledArg == nil {
						continue
					}
					if ca, ok := p.Mod.CompileScalar(specs[si].Arg); ok {
						specs[si].CompiledArg = ca
					}
					if cba, ok := p.Mod.CompileBatchScalar(specs[si].Arg); ok {
						specs[si].CompiledBatchArg = cba
						specs[si].Usage = p.Mod.Usage("query/EVA", specs[si].Arg.String())
					}
				}
				partAggs[pi] = specs
			}
			break
		}
	}
	p.Mod.NoteParallelPlan()
	return &exec.Gather{
		Parts:    parts,
		Workers:  len(parts),
		GroupBy:  agg.GroupBy,
		Aggs:     agg.Aggs,
		PartAggs: partAggs,
		NoteEVA:  agg.NoteEVA,
	}
}

// tryGatherMerge converts Sort(Project?(region)) into a sorted-run-merge
// Gather whose partitions sort in parallel, or returns nil when the plan
// is not parallel-safe.
func (p *Planner) tryGatherMerge(s *exec.Sort) exec.Node {
	child := s.Child
	var proj *exec.Project
	if pr, ok := child.(*exec.Project); ok {
		proj = pr
		child = pr.Child
	}
	region := scanRegionOf(child)
	if region == nil || !region.safe() {
		return nil
	}
	if region.scan.Heap.NumPages() < minParallelPages {
		return nil
	}
	if proj != nil {
		for _, e := range proj.Exprs {
			if !exec.ParallelSafeExpr(e) {
				return nil
			}
		}
	}
	parts, err := p.buildParts(region)
	if err != nil || parts == nil {
		return nil
	}
	for i, part := range parts {
		if proj != nil {
			part = &exec.Project{Child: part, Exprs: proj.Exprs, Cols: proj.Cols}
		}
		parts[i] = &exec.Sort{Child: part, Keys: s.Keys}
	}
	p.Mod.NoteParallelPlan()
	return &exec.Gather{
		Parts:     parts,
		Workers:   len(parts),
		MergeKeys: s.Keys,
	}
}
