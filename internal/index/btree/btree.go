// Package btree implements an in-memory B+tree index over heap TIDs, used
// for the point lookups and range scans of the TPC-C transactions. Keys
// are composite datum tuples compared lexicographically; duplicate keys
// are permitted unless the index is declared unique. The tree charges
// abstract instructions per descent to the profiler but no page I/O: index
// pages are treated as resident, a deviation recorded in DESIGN.md (the
// paper's experiments do not measure index I/O).
package btree

import (
	"fmt"
	"sort"
	"sync/atomic"

	"microspec/internal/profile"
	"microspec/internal/storage/heap"
	"microspec/internal/types"
)

// degree is the maximum number of keys per node; nodes split at degree.
const degree = 64

// Key is a composite index key.
type Key []types.Datum

// Compare orders two keys lexicographically. A shorter key that is a
// prefix of the longer compares equal on the shared prefix then less,
// which makes prefix keys usable as inclusive lower bounds. NULLs sort
// first.
func Compare(a, b Key) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := datumCmp(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// datumCmp is a comparison with an inlinable fast path for the by-value
// kinds that dominate index keys (integers, dates).
func datumCmp(x, y types.Datum) int {
	xk, yk := x.Kind(), y.Kind()
	if xk == yk {
		switch xk {
		case types.KindInt32, types.KindInt64, types.KindDate, types.KindBool:
			switch {
			case x.I < y.I:
				return -1
			case x.I > y.I:
				return 1
			default:
				return 0
			}
		case types.KindInvalid: // both NULL
			return 0
		}
	}
	xn, yn := x.IsNull(), y.IsNull()
	switch {
	case xn && yn:
		return 0
	case xn:
		return -1
	case yn:
		return 1
	}
	return x.Compare(y)
}

type entry struct {
	key Key
	tid heap.TID
}

type node struct {
	leaf     bool
	entries  []entry // leaf payload
	keys     []Key   // internal separators: keys[i] is the smallest key in children[i+1]
	children []*node
	next     *node // leaf sibling chain
}

// Tree is the index. It is not internally synchronized; the engine
// serializes writers and guards readers at a higher level.
type Tree struct {
	Name   string
	Unique bool
	root   *node
	size   int
	cmp    func(a, b Key) int

	// searches counts descents to a leaf (point lookups, range-scan
	// positioning, deletes); splits counts node splits. Atomics: readers
	// run concurrently under the engine's shared lock.
	searches atomic.Int64
	splits   atomic.Int64
}

// Stats returns the cumulative descent and split counts.
func (t *Tree) Stats() (searches, splits int64) {
	return t.searches.Load(), t.splits.Load()
}

// New returns an empty tree using the generic key comparator.
func New(name string, unique bool) *Tree {
	return &Tree{Name: name, Unique: unique, root: &node{leaf: true}, cmp: Compare}
}

// SetComparator installs a specialized key comparator (the IDX bee
// routine: per-position kinds baked at creation). It must order keys
// exactly like Compare and may only be called on an empty tree.
func (t *Tree) SetComparator(cmp func(a, b Key) int) {
	if t.size == 0 && cmp != nil {
		t.cmp = cmp
	}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// cmpEntry orders entries by key then TID so duplicates have a stable
// total order and (key,tid) pairs are unique.
func (t *Tree) cmpEntry(a entry, key Key, tid heap.TID) int {
	if c := t.cmp(a.key, key); c != 0 {
		return c
	}
	switch {
	case a.tid.Page != tid.Page:
		if a.tid.Page < tid.Page {
			return -1
		}
		return 1
	case a.tid.Slot != tid.Slot:
		if a.tid.Slot < tid.Slot {
			return -1
		}
		return 1
	default:
		return 0
	}
}

// Insert adds (key, tid). For unique indexes it fails if the key exists.
func (t *Tree) Insert(key Key, tid heap.TID, prof *profile.Counters) error {
	prof.Add(profile.CompStorage, profile.IndexDescend)
	if t.Unique {
		if _, ok := t.SearchEq(key, nil); ok {
			return fmt.Errorf("index %s: duplicate key %v", t.Name, key)
		}
	}
	t.insertEntry(key, tid)
	return nil
}

// InsertVersion adds (key, tid) without the unique check. MVCC updates
// keep one entry per tuple version — the same key legitimately maps to
// several TIDs until vacuum removes the dead ones — so uniqueness cannot
// be decided from the tree alone; the engine enforces it with a
// visibility-aware probe before calling this.
func (t *Tree) InsertVersion(key Key, tid heap.TID, prof *profile.Counters) {
	prof.Add(profile.CompStorage, profile.IndexDescend)
	t.insertEntry(key, tid)
}

func (t *Tree) insertEntry(key Key, tid heap.TID) {
	k := append(Key(nil), key...) // own the key
	newChild, sep := t.insert(t.root, k, tid)
	if newChild != nil {
		t.root = &node{
			keys:     []Key{sep},
			children: []*node{t.root, newChild},
		}
	}
	t.size++
}

// insert descends into n; on split it returns the new right sibling and
// the separator key.
func (t *Tree) insert(n *node, key Key, tid heap.TID) (*node, Key) {
	if n.leaf {
		i := sort.Search(len(n.entries), func(i int) bool {
			return t.cmpEntry(n.entries[i], key, tid) >= 0
		})
		n.entries = append(n.entries, entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = entry{key: key, tid: tid}
		if len(n.entries) <= degree {
			return nil, nil
		}
		mid := len(n.entries) / 2
		right := &node{leaf: true, entries: append([]entry(nil), n.entries[mid:]...)}
		n.entries = n.entries[:mid]
		right.next = n.next
		n.next = right
		t.splits.Add(1)
		return right, right.entries[0].key
	}
	i := sort.Search(len(n.keys), func(i int) bool {
		return t.cmp(n.keys[i], key) > 0
	})
	newChild, sep := t.insert(n.children[i], key, tid)
	if newChild == nil {
		return nil, nil
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = newChild
	if len(n.keys) <= degree {
		return nil, nil
	}
	mid := len(n.keys) / 2
	sepUp := n.keys[mid]
	t.splits.Add(1)
	right := &node{
		keys:     append([]Key(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return right, sepUp
}

// leafFor returns the leftmost leaf that may contain key. Descent must
// be left-biased — first separator >= key, then take the child to its
// left: a split can leave older duplicates of the separator key in the
// left sibling (MVCC keeps one entry per version under the same key),
// and a right-biased descent would make them unreachable, so point
// lookups under concurrent update churn would miss visible versions.
// Readers that need the newer duplicates too walk the leaf sibling
// chain forward.
func (t *Tree) leafFor(key Key) *node {
	t.searches.Add(1)
	n := t.root
	for !n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool {
			return t.cmp(n.keys[i], key) >= 0
		})
		n = n.children[i]
	}
	return n
}

// SearchEq returns the TID of the first entry whose key's prefix equals
// key, charging one descent.
func (t *Tree) SearchEq(key Key, prof *profile.Counters) (heap.TID, bool) {
	prof.Add(profile.CompStorage, profile.IndexDescend)
	var out heap.TID
	found := false
	t.AscendPrefix(key, nil, func(_ Key, tid heap.TID) bool {
		out, found = tid, true
		return false
	})
	return out, found
}

// SearchAll returns the TIDs of every entry whose key prefix equals key.
func (t *Tree) SearchAll(key Key, prof *profile.Counters) []heap.TID {
	prof.Add(profile.CompStorage, profile.IndexDescend)
	var out []heap.TID
	t.AscendPrefix(key, nil, func(_ Key, tid heap.TID) bool {
		out = append(out, tid)
		return true
	})
	return out
}

// AscendPrefix visits, in key order, every entry whose key starts with
// prefix (all entries if prefix is nil). fn returning false stops the
// scan.
func (t *Tree) AscendPrefix(prefix Key, prof *profile.Counters, fn func(Key, heap.TID) bool) {
	prof.Add(profile.CompStorage, profile.IndexDescend)
	var n *node
	if len(prefix) == 0 {
		t.searches.Add(1)
		n = t.root
		for !n.leaf {
			n = n.children[0]
		}
	} else {
		n = t.leafFor(prefix)
	}
	for ; n != nil; n = n.next {
		for _, e := range n.entries {
			if len(prefix) > 0 {
				c := t.cmp(e.key[:min(len(e.key), len(prefix))], prefix)
				if c < 0 {
					continue
				}
				if c > 0 {
					return
				}
			}
			if !fn(e.key, e.tid) {
				return
			}
		}
	}
}

// AscendRange visits entries with lo <= key-prefix <= hi in key order.
// Bounds compare against the entry key truncated to the bound's length,
// so prefix bounds behave inclusively on both ends.
func (t *Tree) AscendRange(lo, hi Key, prof *profile.Counters, fn func(Key, heap.TID) bool) {
	prof.Add(profile.CompStorage, profile.IndexDescend)
	n := t.leafFor(lo)
	for ; n != nil; n = n.next {
		for _, e := range n.entries {
			if t.cmp(e.key[:min(len(e.key), len(lo))], lo) < 0 {
				continue
			}
			if len(hi) > 0 && t.cmp(e.key[:min(len(e.key), len(hi))], hi) > 0 {
				return
			}
			if !fn(e.key, e.tid) {
				return
			}
		}
	}
}

// Delete removes the (key, tid) entry. Leaves are not rebalanced (lazy
// deletion); correctness is unaffected.
func (t *Tree) Delete(key Key, tid heap.TID, prof *profile.Counters) bool {
	prof.Add(profile.CompStorage, profile.IndexDescend)
	n := t.leafFor(key)
	for ; n != nil; n = n.next {
		i := sort.Search(len(n.entries), func(i int) bool {
			return t.cmpEntry(n.entries[i], key, tid) >= 0
		})
		if i < len(n.entries) && t.cmpEntry(n.entries[i], key, tid) == 0 {
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
			t.size--
			return true
		}
		if i < len(n.entries) {
			return false // passed the position: not present
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
