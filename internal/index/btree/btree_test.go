package btree

import (
	"math/rand"
	"sort"
	"testing"

	"microspec/internal/storage/heap"
	"microspec/internal/types"
)

func ik(vs ...int) Key {
	k := make(Key, len(vs))
	for i, v := range vs {
		k[i] = types.NewInt32(int32(v))
	}
	return k
}

func tid(n int) heap.TID { return heap.TID{Page: int32(n / 100), Slot: uint16(n % 100)} }

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Key
		want int
	}{
		{ik(1), ik(2), -1},
		{ik(2, 5), ik(2, 5), 0},
		{ik(2), ik(2, 5), -1}, // prefix is less
		{ik(2, 5), ik(2), 1},
		{Key{types.Null}, ik(0), -1}, // nulls first
		{Key{types.Null}, Key{types.Null}, 0},
	}
	for i, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("case %d: Compare = %d, want %d", i, got, c.want)
		}
	}
}

func TestInsertSearchManyRandom(t *testing.T) {
	tr := New("pk", false)
	rng := rand.New(rand.NewSource(7))
	n := 5000
	perm := rng.Perm(n)
	for _, v := range perm {
		if err := tr.Insert(ik(v), tid(v), nil); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("len = %d", tr.Len())
	}
	for i := 0; i < n; i += 37 {
		got, ok := tr.SearchEq(ik(i), nil)
		if !ok || got != tid(i) {
			t.Fatalf("search %d: %v %v", i, got, ok)
		}
	}
	if _, ok := tr.SearchEq(ik(n+5), nil); ok {
		t.Error("search of absent key must fail")
	}
}

func TestUniqueConstraint(t *testing.T) {
	tr := New("u", true)
	if err := tr.Insert(ik(1), tid(1), nil); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(ik(1), tid(2), nil); err == nil {
		t.Error("duplicate insert into unique index must fail")
	}
	if tr.Len() != 1 {
		t.Errorf("len = %d", tr.Len())
	}
}

func TestDuplicatesAndSearchAll(t *testing.T) {
	tr := New("multi", false)
	for i := 0; i < 10; i++ {
		tr.Insert(ik(5), tid(i), nil)
	}
	tr.Insert(ik(4), tid(100), nil)
	tr.Insert(ik(6), tid(101), nil)
	got := tr.SearchAll(ik(5), nil)
	if len(got) != 10 {
		t.Fatalf("SearchAll returned %d", len(got))
	}
}

func TestAscendPrefixComposite(t *testing.T) {
	tr := New("ol", false)
	// Composite key (w, d, o): like TPC-C order_line.
	id := 0
	for w := 1; w <= 3; w++ {
		for d := 1; d <= 4; d++ {
			for o := 1; o <= 5; o++ {
				tr.Insert(ik(w, d, o), tid(id), nil)
				id++
			}
		}
	}
	var keys []Key
	tr.AscendPrefix(ik(2, 3), nil, func(k Key, _ heap.TID) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 5 {
		t.Fatalf("prefix scan found %d, want 5", len(keys))
	}
	for i, k := range keys {
		if k[0].Int32() != 2 || k[1].Int32() != 3 || k[2].Int32() != int32(i+1) {
			t.Errorf("entry %d: %v", i, k)
		}
	}
	// Full scan in order.
	var all []Key
	tr.AscendPrefix(nil, nil, func(k Key, _ heap.TID) bool {
		all = append(all, k)
		return true
	})
	if len(all) != 60 {
		t.Fatalf("full scan found %d", len(all))
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return Compare(all[i], all[j]) < 0 }) {
		t.Error("full scan not in key order")
	}
}

func TestAscendRange(t *testing.T) {
	tr := New("r", false)
	for i := 0; i < 100; i++ {
		tr.Insert(ik(i), tid(i), nil)
	}
	var got []int
	tr.AscendRange(ik(20), ik(29), nil, func(k Key, _ heap.TID) bool {
		got = append(got, int(k[0].Int32()))
		return true
	})
	if len(got) != 10 || got[0] != 20 || got[9] != 29 {
		t.Errorf("range [20,29]: %v", got)
	}
	// Early stop.
	count := 0
	tr.AscendRange(ik(0), ik(99), nil, func(Key, heap.TID) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestRangeWithCompositePrefixBounds(t *testing.T) {
	tr := New("no", false)
	// TPC-C new_order key: (w, d, o).
	for o := 3000; o < 3020; o++ {
		tr.Insert(ik(1, 2, o), tid(o), nil)
	}
	// Prefix bounds (1,2)..(1,2) select the whole district.
	var oids []int
	tr.AscendRange(ik(1, 2), ik(1, 2), nil, func(k Key, _ heap.TID) bool {
		oids = append(oids, int(k[2].Int32()))
		return true
	})
	if len(oids) != 20 || oids[0] != 3000 {
		t.Errorf("district scan: %v", oids)
	}
}

func TestDelete(t *testing.T) {
	tr := New("d", false)
	for i := 0; i < 1000; i++ {
		tr.Insert(ik(i), tid(i), nil)
	}
	for i := 0; i < 1000; i += 2 {
		if !tr.Delete(ik(i), tid(i), nil) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("len = %d", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		_, ok := tr.SearchEq(ik(i), nil)
		if want := i%2 == 1; ok != want {
			t.Fatalf("search %d = %v, want %v", i, ok, want)
		}
	}
	if tr.Delete(ik(0), tid(0), nil) {
		t.Error("double delete must return false")
	}
	if tr.Delete(ik(100000), tid(0), nil) {
		t.Error("delete of absent key must return false")
	}
}

func TestDeleteSpecificDuplicate(t *testing.T) {
	tr := New("dd", false)
	tr.Insert(ik(7), tid(1), nil)
	tr.Insert(ik(7), tid(2), nil)
	tr.Insert(ik(7), tid(3), nil)
	if !tr.Delete(ik(7), tid(2), nil) {
		t.Fatal("delete of specific duplicate failed")
	}
	got := tr.SearchAll(ik(7), nil)
	if len(got) != 2 {
		t.Fatalf("remaining = %d", len(got))
	}
	for _, g := range got {
		if g == tid(2) {
			t.Error("wrong duplicate deleted")
		}
	}
}

// Property-style test: tree iteration matches a sorted reference model
// under random inserts and deletes.
func TestTreeMatchesReferenceModel(t *testing.T) {
	tr := New("model", false)
	rng := rand.New(rand.NewSource(42))
	model := map[int]bool{}
	for step := 0; step < 20000; step++ {
		v := rng.Intn(3000)
		if model[v] && rng.Intn(2) == 0 {
			tr.Delete(ik(v), tid(v), nil)
			delete(model, v)
		} else if !model[v] {
			tr.Insert(ik(v), tid(v), nil)
			model[v] = true
		}
	}
	var want []int
	for v := range model {
		want = append(want, v)
	}
	sort.Ints(want)
	var got []int
	tr.AscendPrefix(nil, nil, func(k Key, _ heap.TID) bool {
		got = append(got, int(k[0].Int32()))
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("len: got %d want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("entry %d: got %d want %d", i, got[i], want[i])
		}
	}
	if tr.Len() != len(want) {
		t.Errorf("Len() = %d, want %d", tr.Len(), len(want))
	}
}

// TestDuplicatesAcrossLeafSplits regression-tests the left-biased
// descent in leafFor: when many entries share one key (MVCC versions),
// a leaf split can leave older duplicates in the left sibling with the
// shared key as the parent separator. A right-biased descent (first
// separator strictly greater) would land past them, making SearchAll,
// SearchEq, AscendPrefix, and Delete miss every duplicate left of the
// split point — exactly the versions an older snapshot still needs.
func TestDuplicatesAcrossLeafSplits(t *testing.T) {
	tr := New("dup_split", false)
	// Surround one hot key with enough distinct neighbors to force
	// several splits, interleaving so the hot key's run straddles leaf
	// boundaries.
	const hot = 500
	n := 0
	for round := 0; round < 40; round++ {
		for k := 0; k < 10; k++ {
			tr.InsertVersion(ik(hot-20+k), tid(n), nil)
			n++
		}
		for v := 0; v < 10; v++ {
			tr.InsertVersion(ik(hot), tid(n), nil)
			n++
		}
		for k := 0; k < 10; k++ {
			tr.InsertVersion(ik(hot+1+k), tid(n), nil)
			n++
		}
	}
	if got := len(tr.SearchAll(ik(hot), nil)); got != 400 {
		t.Fatalf("SearchAll found %d of 400 duplicates", got)
	}
	if _, ok := tr.SearchEq(ik(hot), nil); !ok {
		t.Fatal("SearchEq missed the hot key")
	}
	// Every (key, tid) pair must be individually deletable.
	for _, td := range tr.SearchAll(ik(hot), nil) {
		if !tr.Delete(ik(hot), td, nil) {
			t.Fatalf("Delete missed (hot,%v)", td)
		}
	}
	if got := len(tr.SearchAll(ik(hot), nil)); got != 0 {
		t.Fatalf("%d duplicates survived deletion", got)
	}
	// Neighbors are untouched.
	for k := 0; k < 10; k++ {
		if got := len(tr.SearchAll(ik(hot-20+k), nil)); got != 40 {
			t.Fatalf("neighbor %d: %d of 40 entries", hot-20+k, got)
		}
	}
}
