package harness

import (
	"strings"
	"testing"

	"microspec/internal/storage/disk"
)

// TestChaosShortRun is a scaled-down E11: a seeded fault schedule over a
// TPC-H query subset plus a short TPC-C stream. Every outcome must be a
// baseline match or a typed error — Bad() == 0 is the invariant the full
// chaos-bench run enforces in CI.
func TestChaosShortRun(t *testing.T) {
	o := DefaultChaosOptions()
	o.SF = 0.005
	o.Queries = []int{1, 3, 6, 14, 18}
	o.Rounds = 2
	o.TPCCTxns = 300
	// Aggressive schedule: every page read has a 10% chance of a
	// transient error and 5% of a bit flip.
	o.Faults = disk.FaultConfig{ReadErr: 0.10, BitFlip: 0.05, LatencySpike: 0.02}

	report, err := RunChaos(o)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if bad := report.Bad(); bad != 0 {
		t.Fatalf("chaos run broke %d invariants:\n%s", bad, report.Format())
	}
	if report.FaultStats.Injected == 0 {
		t.Error("no faults were injected — the schedule never fired")
	}
	if report.TPCC.Committed == 0 {
		t.Error("no TPC-C transaction committed under faults")
	}
	out := report.Format()
	if !strings.Contains(out, "RESULT: clean") {
		t.Errorf("report did not conclude clean:\n%s", out)
	}
}

// TestChaosDeterministicSeed replays the same seed twice and requires the
// identical fault schedule (count and breakdown).
func TestChaosDeterministicSeed(t *testing.T) {
	o := DefaultChaosOptions()
	o.SF = 0.002
	o.Queries = []int{6}
	o.Rounds = 2
	o.TPCCTxns = 0
	o.BeePanics = false
	// Serial execution: concurrent partition workers would interleave
	// their PRNG draws nondeterministically.
	o.Workers = 1
	o.Faults = disk.FaultConfig{ReadErr: 0.10, BitFlip: 0.05}

	a, err := RunChaos(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(o)
	if err != nil {
		t.Fatal(err)
	}
	if a.FaultStats != b.FaultStats {
		t.Errorf("same seed, different schedules: %+v vs %+v", a.FaultStats, b.FaultStats)
	}
}
