package harness

import (
	"fmt"
	"strings"
	"time"

	"microspec/internal/profile"
)

// CaseStudyResult reproduces the paper's §II case study: the query
// `select o_comment from orders` on a stock vs. a bee-enabled database,
// reporting per-tuple deform instructions, whole-query instruction
// totals, and run times.
type CaseStudyResult struct {
	Rows int64

	// Per-invocation deform cost (paper: ≈340 generic vs. ≈146 GCL).
	StockDeformPerTuple float64
	BeeDeformPerTuple   float64

	// Whole-query instruction totals (paper: 3.447B vs. 3.153B at SF 1,
	// an 8.5% reduction).
	StockInstr, BeeInstr int64

	// Run times (paper: 734 ms vs. 680 ms, a 7.4% improvement).
	StockTime, BeeTime time.Duration
}

// InstrImprovement returns the whole-query instruction reduction (%).
func (r CaseStudyResult) InstrImprovement() float64 {
	return improvement(float64(r.StockInstr), float64(r.BeeInstr))
}

// TimeImprovement returns the run-time improvement (%).
func (r CaseStudyResult) TimeImprovement() float64 {
	return improvement(float64(r.StockTime), float64(r.BeeTime))
}

// caseStudyQuery is the paper's §II query.
const caseStudyQuery = "select o_comment from orders"

// RunCaseStudy runs the §II case study over a fresh stock/bee pair
// built by BuildTPCHPair.
func RunCaseStudy(o Options) (CaseStudyResult, error) {
	stock, bee, err := BuildTPCHPair(o)
	if err != nil {
		return CaseStudyResult{}, err
	}
	var res CaseStudyResult

	// Instruction profiles (the callgrind pass).
	sp := &profile.Counters{}
	rs, err := stock.QueryProfiled(caseStudyQuery, sp)
	if err != nil {
		return res, err
	}
	bp := &profile.Counters{}
	if _, err := bee.QueryProfiled(caseStudyQuery, bp); err != nil {
		return res, err
	}
	res.Rows = int64(len(rs.Rows))
	res.StockInstr, res.BeeInstr = sp.Total(), bp.Total()
	if res.Rows > 0 {
		res.StockDeformPerTuple = float64(sp.Component(profile.CompDeform)) / float64(res.Rows)
		res.BeeDeformPerTuple = float64(bp.Component(profile.CompDeform)) / float64(res.Rows)
	}

	// Wall-clock pass (profiler off), warm cache, runs interleaved.
	st, bt, err := timeBoth(stock, bee, caseStudyQuery, o.Runs, false)
	if err != nil {
		return res, err
	}
	res.StockTime = time.Duration(st * float64(time.Millisecond))
	res.BeeTime = time.Duration(bt * float64(time.Millisecond))
	return res, nil
}

// Format renders the case study like the paper's §II narrative.
func (r CaseStudyResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Case study (§II): %s over %d orders tuples\n", caseStudyQuery, r.Rows)
	fmt.Fprintf(&b, "  deform instructions/tuple: generic %.0f vs GCL %.0f (paper: ≈340 vs ≈146)\n",
		r.StockDeformPerTuple, r.BeeDeformPerTuple)
	fmt.Fprintf(&b, "  whole-query instructions:  stock %d vs bee %d (-%.1f%%; paper: -8.5%%)\n",
		r.StockInstr, r.BeeInstr, r.InstrImprovement())
	fmt.Fprintf(&b, "  run time:                  stock %v vs bee %v (-%.1f%%; paper: -7.4%%)\n",
		r.StockTime.Round(time.Microsecond), r.BeeTime.Round(time.Microsecond), r.TimeImprovement())
	return b.String()
}
