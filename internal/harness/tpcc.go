package harness

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"microspec/internal/core"
	"microspec/internal/engine"
	"microspec/internal/tpcc"
)

// TPCCOptions configures the throughput experiment (E7).
type TPCCOptions struct {
	Warehouses int
	Small      bool // use the laptop-scale population
	// TxnsPerRound transactions are executed per timed round; both
	// engines run the identical seeded stream, and the best round is
	// reported (fixed work + min time is robust to scheduler noise).
	TxnsPerRound int
	Rounds       int
	PoolPages    int
	Seed         int64
	// Workers is the intra-query parallelism degree for both engines
	// (0 = GOMAXPROCS, 1 = serial). TPC-C relations are small, so most
	// transactions stay serial regardless; the option exists to verify
	// that parallel scans do not hurt a modification-heavy mix.
	Workers int
	// StatementTimeout bounds every query on both engines (0 = none).
	StatementTimeout time.Duration
}

// DefaultTPCCOptions returns laptop-scale settings.
func DefaultTPCCOptions() TPCCOptions {
	return TPCCOptions{Warehouses: 1, Small: true, TxnsPerRound: 4000, Rounds: 3, PoolPages: 32768, Seed: 1}
}

// TPCCScenario is one row of the paper's §VI-C comparison.
type TPCCScenario struct {
	Name        string
	Mix         tpcc.Mix
	StockTPM    float64
	BeeTPM      float64
	Improvement float64
	// PaperImprovement is what the paper reports for the scenario.
	PaperImprovement float64
	// BeeBenefits is the bee engine's per-bee benefit attribution table
	// for this scenario's run (FormatBeeBenefits; may be empty).
	BeeBenefits string
}

// TPCCScenarios returns the paper's three mixes with its reported
// improvements (default +7.3%, query-only +18%, equal +11.1%).
func TPCCScenarios() []TPCCScenario {
	return []TPCCScenario{
		{Name: "default (modification-heavy)", Mix: tpcc.DefaultMix, PaperImprovement: 7.3},
		{Name: "query-only", Mix: tpcc.QueryOnlyMix, PaperImprovement: 18.0},
		{Name: "equal mix", Mix: tpcc.EqualMix, PaperImprovement: 11.1},
	}
}

// RunTPCC regenerates the §VI-C throughput comparison: for each scenario
// the identical seeded transaction stream runs on a stock and a
// bee-enabled database, alternating in fixed-size rounds; each engine's
// best round yields its transactions-per-minute figure.
func RunTPCC(o TPCCOptions) ([]TPCCScenario, error) {
	cfg := tpcc.DefaultConfig(o.Warehouses)
	if o.Small {
		cfg = tpcc.SmallConfig(o.Warehouses)
	}
	if o.Rounds < 1 {
		o.Rounds = 1
	}
	scenarios := TPCCScenarios()
	for i := range scenarios {
		sc := &scenarios[i]
		var drivers [2]*tpcc.Driver
		var beeDB *engine.DB
		for j, routines := range []core.RoutineSet{core.Stock, core.AllRoutines} {
			db, err := tpcc.NewDatabase(engine.Config{Routines: routines, PoolPages: o.PoolPages, Workers: o.Workers, StatementTimeout: o.StatementTimeout}, cfg)
			if err != nil {
				return nil, fmt.Errorf("harness: tpcc load: %w", err)
			}
			if routines.EVP {
				beeDB = db
			}
			drivers[j], err = tpcc.NewDriver(db, cfg, sc.Mix, o.Seed, nil)
			if err != nil {
				return nil, err
			}
		}
		// Fine-grained interleaving: alternate small slices between the
		// two engines so scheduler noise hits both streams equally, and
		// compare accumulated times over the whole run.
		var total [2]time.Duration
		slice := o.TxnsPerRound / 8
		if slice < 1 {
			slice = 1
		}
		executed := 0
		runtime.GC()
		for executed < o.TxnsPerRound*o.Rounds {
			for j := range drivers {
				st, err := drivers[j].RunN(slice)
				if err != nil {
					return nil, fmt.Errorf("harness: tpcc %s: %w", sc.Name, err)
				}
				total[j] += st.Elapsed
			}
			executed += slice
		}
		n := float64(executed)
		sc.StockTPM = n / total[0].Minutes()
		sc.BeeTPM = n / total[1].Minutes()
		if sc.StockTPM > 0 {
			sc.Improvement = 100 * (sc.BeeTPM - sc.StockTPM) / sc.StockTPM
		}
		sc.BeeBenefits = FormatBeeBenefits(beeDB, 5)
	}
	return scenarios, nil
}

// FormatTPCC renders the §VI-C table.
func FormatTPCC(scenarios []TPCCScenario) string {
	var b strings.Builder
	b.WriteString("TPC-C throughput (§VI-C), transactions per minute\n")
	fmt.Fprintf(&b, "%-30s %12s %12s %9s %9s\n", "scenario", "stock tpm", "bee tpm", "improv%", "paper%")
	for _, s := range scenarios {
		fmt.Fprintf(&b, "%-30s %12.0f %12.0f %8.1f%% %8.1f%%\n",
			s.Name, s.StockTPM, s.BeeTPM, s.Improvement, s.PaperImprovement)
	}
	return b.String()
}
