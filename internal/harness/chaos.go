package harness

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"microspec/internal/core"
	"microspec/internal/engine"
	"microspec/internal/exec"
	"microspec/internal/storage/buffer"
	"microspec/internal/storage/disk"
	"microspec/internal/tpcc"
	"microspec/internal/tpch"
	"microspec/internal/txn"
	"microspec/internal/types"
)

// This file implements the chaos experiment (E11): the full TPC-H query
// set and the five TPC-C transactions run on a bee-enabled database whose
// page store injects faults from a seeded random schedule. The invariant
// under test is the fault model of DESIGN.md §9 — under any schedule a
// query either returns results identical to the fault-free baseline or
// fails with a typed error; it never panics, hangs, or silently returns
// wrong rows.

// ChaosOptions configures a chaos run.
type ChaosOptions struct {
	// Seed drives the fault schedule, the bee-panic schedule, and the
	// TPC-C transaction stream; the same seed replays the same run.
	Seed int64
	// SF is the TPC-H scale factor.
	SF float64
	// PoolPages sizes the buffer pool. Chaos wants a pool far smaller
	// than the dataset so queries keep re-reading pages through the
	// faulty device instead of hiding in cache.
	PoolPages int
	// Workers is the intra-query parallelism degree (0 = GOMAXPROCS).
	Workers int
	// Queries restricts the TPC-H portion (nil = all 22).
	Queries []int
	// Rounds is the number of fault-injected executions per query.
	Rounds int
	// Faults is the fault schedule; its Seed field is overridden with
	// Seed. Zero probabilities mean disk faults are skipped.
	Faults disk.FaultConfig
	// BeePanics also injects bee panics on some rounds, exercising the
	// quarantine fallback under disk faults.
	BeePanics bool
	// Timeout, when nonzero, is applied as the statement timeout during
	// the fault-injected rounds, so deadline expiry joins the fault mix.
	Timeout time.Duration
	// TPCCWarehouses and TPCCTxns size the TPC-C portion; TPCCTxns = 0
	// skips it.
	TPCCWarehouses int
	TPCCTxns       int
	// DMLWriters starts that many background writer goroutines for the
	// TPC-H phase, hammering a side table with inserts, updates, deletes,
	// and conflicting interactive transactions while the fault-injected
	// query rounds run. The queries read through the same buffer pool,
	// transaction manager, and vacuum machinery the writers churn, and
	// must still match their serial, write-free baselines — the MVCC
	// snapshot-isolation invariant (0 = off).
	DMLWriters int
}

// DefaultChaosOptions returns the E11 recipe at laptop scale.
func DefaultChaosOptions() ChaosOptions {
	return ChaosOptions{
		Seed:           42,
		SF:             0.01,
		PoolPages:      256,
		Rounds:         2,
		Faults:         disk.DefaultChaosFaults,
		BeePanics:      true,
		TPCCWarehouses: 1,
		TPCCTxns:       2000,
	}
}

// Chaos outcome classes. Everything except OutcomeMismatch and
// OutcomeOther is acceptable behaviour under fault injection.
const (
	OutcomeMatch     = "match"       // rows equal the fault-free baseline
	OutcomeTransient = "transient"   // typed: retries exhausted on transient faults
	OutcomeCorrupt   = "corrupt"     // typed: checksum failure on a stored page
	OutcomeTimeout   = "timeout"     // typed: statement deadline exceeded
	OutcomeCancelled = "cancelled"   // typed: context cancelled
	OutcomePanic     = "panic-error" // typed: contained panic surfaced as error
	OutcomeMismatch  = "MISMATCH"    // BAD: rows differ from baseline
	OutcomeOther     = "OTHER-ERROR" // BAD: untyped error leaked out
)

func classify(err error) string {
	var pe *exec.PanicError
	switch {
	case err == nil:
		return OutcomeMatch
	case buffer.IsCorrupt(err):
		return OutcomeCorrupt
	case disk.IsTransient(err):
		return OutcomeTransient
	case errors.Is(err, context.DeadlineExceeded):
		return OutcomeTimeout
	case errors.Is(err, context.Canceled):
		return OutcomeCancelled
	case errors.As(err, &pe):
		return OutcomePanic
	default:
		return OutcomeOther
	}
}

// ChaosQueryResult tallies one query's rounds by outcome.
type ChaosQueryResult struct {
	Query    int
	Outcomes map[string]int
}

// ChaosTPCCResult tallies the TPC-C portion.
type ChaosTPCCResult struct {
	Txns       int
	Committed  int
	RolledBack int
	// Outcomes counts failed transactions by error class. TPC-C wraps
	// some storage errors into business-level messages, so OTHER-ERROR
	// here means "failed cleanly with a rolled-back transaction", not a
	// broken invariant; the BAD signal for TPC-C is an escaped panic.
	Outcomes map[string]int
	Panics   int
}

// ChaosDMLResult tallies the background writers (DMLWriters > 0).
type ChaosDMLResult struct {
	Writers   int
	Ops       int64 // DML statements / transactions that committed
	Conflicts int64 // first-updater-wins losses, rolled back and retried
	Errors    int64 // writer operations failed by injected faults
	Vacuumed  int64 // dead versions reclaimed during the phase
}

// ChaosReport is one chaos run's full account.
type ChaosReport struct {
	Options    ChaosOptions
	Queries    []ChaosQueryResult
	TPCC       ChaosTPCCResult
	DML        ChaosDMLResult
	FaultStats disk.FaultStats
	// Quarantined is the cumulative bee-quarantine count over the run.
	Quarantined int64
	// BeeBenefits is the per-bee benefit attribution table for the TPC-H
	// phase (FormatBeeBenefits; may be empty) — evidence that bees kept
	// paying for themselves while faults were being injected.
	BeeBenefits string
}

// Bad counts broken invariants: TPC-H mismatches or untyped errors, and
// TPC-C panics. A clean chaos run has Bad() == 0.
func (r ChaosReport) Bad() int {
	n := 0
	for _, q := range r.Queries {
		n += q.Outcomes[OutcomeMismatch] + q.Outcomes[OutcomeOther]
	}
	return n + r.TPCC.Panics
}

// datumsMatch compares two result cells, tolerating float rounding (the
// quarantine fallback re-runs aggregates on the generic path).
func datumsMatch(a, b types.Datum) bool {
	if a.IsNull() != b.IsNull() {
		return false
	}
	if a.IsNull() {
		return true
	}
	if a.Kind() == types.KindFloat64 && b.Kind() == types.KindFloat64 {
		af, bf := a.Float64(), b.Float64()
		diff := af - bf
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		if af > 1 || af < -1 {
			scale = af
			if scale < 0 {
				scale = -scale
			}
		}
		return diff/scale <= 1e-9
	}
	return a.Compare(b) == 0
}

func resultsMatch(a, b *engine.Result) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return false
		}
		for j := range a.Rows[i] {
			if !datumsMatch(a.Rows[i][j], b.Rows[i][j]) {
				return false
			}
		}
	}
	return true
}

// runOneChaosQuery executes one fault-injected round, containing any
// panic that would escape the engine (none should).
func runOneChaosQuery(db *engine.DB, q string) (res *engine.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w", exec.NewPanicError(r))
		}
	}()
	return db.Query(q)
}

// RunChaos executes the chaos experiment: load TPC-H with faults off,
// record per-query fault-free baselines, then re-run every query Rounds
// times with the seeded fault schedule enabled (plus optional bee panics
// and a statement timeout) and classify each outcome. A TPC-C stream then
// runs under the same schedule on its own database.
func RunChaos(o ChaosOptions) (ChaosReport, error) {
	if o.Rounds < 1 {
		o.Rounds = 1
	}
	if o.PoolPages <= 0 {
		o.PoolPages = 256
	}
	fc := o.Faults
	fc.Seed = o.Seed
	fd := disk.NewFaulty(disk.NewManager(disk.LatencyModel{}), fc)

	db, err := tpch.NewDatabase(engine.Config{
		Routines: core.AllRoutines, PoolPages: o.PoolPages,
		Workers: o.Workers, Disk: fd,
	}, o.SF)
	if err != nil {
		return ChaosReport{}, fmt.Errorf("chaos: tpch load: %w", err)
	}

	queries := tpch.Queries()
	nums := o.Queries
	if len(nums) == 0 {
		nums = tpch.QueryNumbers()
	}

	// Fault-free baselines (faults start disabled).
	baselines := make(map[int]*engine.Result, len(nums))
	for _, qn := range nums {
		base, err := db.Query(queries[qn])
		if err != nil {
			return ChaosReport{}, fmt.Errorf("chaos: q%d baseline: %w", qn, err)
		}
		baselines[qn] = base
	}

	report := ChaosReport{Options: o}

	// Background writers churn a side table through the same pool,
	// transaction manager, and vacuum the queries use; the fault-injected
	// rounds below must still match their serial baselines.
	var stopDML func() ChaosDMLResult
	if o.DMLWriters > 0 {
		stopDML, err = startChaosDML(db, o.DMLWriters, o.Seed)
		if err != nil {
			return report, fmt.Errorf("chaos: dml writers: %w", err)
		}
	}

	fd.SetEnabled(true)
	if o.Timeout > 0 {
		db.SetStatementTimeout(o.Timeout)
	}
	round := 0
	for _, qn := range nums {
		qr := ChaosQueryResult{Query: qn, Outcomes: map[string]int{}}
		for r := 0; r < o.Rounds; r++ {
			round++
			// Cold-start each round so every page goes through the
			// faulty device. DropCaches itself must survive faults.
			if err := db.DropCaches(); err != nil && !disk.IsTransient(err) {
				fd.SetEnabled(false)
				return report, fmt.Errorf("chaos: drop caches: %w", err)
			}
			if o.BeePanics && round%3 == 0 {
				db.Module().InjectBeePanic("", "")
			}
			res, err := runOneChaosQuery(db, queries[qn])
			db.Module().ClearBeePanic()
			// Return quarantined bees to service so later rounds
			// exercise the specialized path again.
			db.Module().ClearQuarantine()
			out := classify(err)
			if err == nil && !resultsMatch(baselines[qn], res) {
				out = OutcomeMismatch
			}
			qr.Outcomes[out]++
		}
		report.Queries = append(report.Queries, qr)
	}
	fd.SetEnabled(false)
	db.SetStatementTimeout(0)
	if stopDML != nil {
		report.DML = stopDML()
	}
	report.FaultStats = fd.FaultStats()
	report.Quarantined = db.Module().QuarantinedBees()
	report.BeeBenefits = FormatBeeBenefits(db, 10)

	if o.TPCCTxns > 0 {
		tp, err := runChaosTPCC(o)
		if err != nil {
			return report, err
		}
		report.TPCC = tp
	}
	return report, nil
}

// startChaosDML creates the chaos_dml side table and starts n writer
// goroutines mixing statement DML (insert-then-delete of fresh keys,
// whole-row updates) with interactive read-modify-write transactions on a
// small shared keyspace — the latter race under first-updater-wins, so
// conflicts, rollbacks, and threshold vacuums all happen while the chaos
// query rounds run. The returned stop function halts the writers, waits
// them out, and reports their tallies.
func startChaosDML(db *engine.DB, n int, seed int64) (func() ChaosDMLResult, error) {
	const sharedKeys = 8
	if _, err := db.Exec(`create table chaos_dml (
		k integer not null,
		v integer not null,
		primary key (k))`); err != nil {
		return nil, err
	}
	for k := 0; k < sharedKeys; k++ {
		if _, err := db.Exec(fmt.Sprintf("insert into chaos_dml values (%d, 0)", k)); err != nil {
			return nil, err
		}
	}
	vacBase := db.MetricsSnapshot().Counters["vacuum.reclaimed"]
	var ops, conflicts, errs atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed ^ 0xd31 + int64(w)))
			next := 1000 + w*1_000_000 // per-writer fresh-key range
			for {
				select {
				case <-done:
					return
				default:
				}
				switch rng.Intn(4) {
				case 0: // fresh insert then delete: version churn for vacuum
					k := next
					next++
					if _, err := db.Exec(fmt.Sprintf("insert into chaos_dml values (%d, %d)", k, w)); err != nil {
						errs.Add(1)
						continue
					}
					ops.Add(1)
					if _, err := db.Exec(fmt.Sprintf("delete from chaos_dml where k = %d", k)); err != nil {
						errs.Add(1)
					} else {
						ops.Add(1)
					}
				case 1: // statement update across the shared keyspace
					if _, err := db.Exec(fmt.Sprintf("update chaos_dml set v = v + 1 where k = %d", rng.Intn(sharedKeys))); err != nil {
						errs.Add(1)
					} else {
						ops.Add(1)
					}
				default: // interactive RMW transaction: the conflict path
					t := db.Begin(nil)
					row, tid, ok, err := t.GetByIndex("chaos_dml_pkey",
						[]types.Datum{types.NewInt32(int32(rng.Intn(sharedKeys)))})
					if err != nil || !ok {
						t.Rollback()
						if err != nil {
							errs.Add(1)
						}
						continue
					}
					nv := append([]types.Datum(nil), row...)
					nv[1] = types.NewInt32(int32(rng.Intn(1000)))
					if err := t.UpdateRow("chaos_dml", tid, row, nv); err != nil {
						t.Rollback()
						if errors.Is(err, txn.ErrWriteConflict) {
							conflicts.Add(1)
						} else {
							errs.Add(1)
						}
						continue
					}
					t.Commit()
					ops.Add(1)
				}
			}
		}(w)
	}
	return func() ChaosDMLResult {
		close(done)
		wg.Wait()
		return ChaosDMLResult{
			Writers:   n,
			Ops:       ops.Load(),
			Conflicts: conflicts.Load(),
			Errors:    errs.Load(),
			Vacuumed:  db.MetricsSnapshot().Counters["vacuum.reclaimed"] - vacBase,
		}
	}, nil
}

// runChaosTPCC runs a seeded TPC-C stream over its own faulty device.
// Failed transactions roll back and the stream continues; the invariant
// is that no panic escapes and the driver keeps making progress.
func runChaosTPCC(o ChaosOptions) (ChaosTPCCResult, error) {
	fc := o.Faults
	fc.Seed = o.Seed + 1
	fd := disk.NewFaulty(disk.NewManager(disk.LatencyModel{}), fc)
	if o.TPCCWarehouses < 1 {
		o.TPCCWarehouses = 1
	}
	cfg := tpcc.SmallConfig(o.TPCCWarehouses)
	db, err := tpcc.NewDatabase(engine.Config{
		Routines: core.AllRoutines, PoolPages: o.PoolPages,
		Workers: o.Workers, Disk: fd,
	}, cfg)
	if err != nil {
		return ChaosTPCCResult{}, fmt.Errorf("chaos: tpcc load: %w", err)
	}
	drv, err := tpcc.NewDriver(db, cfg, tpcc.DefaultMix, o.Seed, nil)
	if err != nil {
		return ChaosTPCCResult{}, err
	}
	// Evict the loaded pages so transactions read through the faulty
	// device from the first access.
	if err := db.DropCaches(); err != nil {
		return ChaosTPCCResult{}, err
	}
	res := ChaosTPCCResult{Txns: o.TPCCTxns, Outcomes: map[string]int{}}
	fd.SetEnabled(true)
	for i := 0; i < o.TPCCTxns; i++ {
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					res.Panics++
					err = exec.NewPanicError(r)
				}
			}()
			_, err = drv.RunOne()
			return err
		}()
		switch {
		case err == nil:
			res.Committed++
		case errors.Is(err, tpcc.ErrRollback):
			res.RolledBack++
		default:
			res.Outcomes[classify(err)]++
		}
	}
	fd.SetEnabled(false)
	return res, nil
}

// Format renders the chaos report.
func (r ChaosReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos run (E11): seed=%d sf=%g pool=%d rounds=%d faults={read-err %.3f, bit-flip %.3f, torn %.3f, spike %.3f}\n",
		r.Options.Seed, r.Options.SF, r.Options.PoolPages, r.Options.Rounds,
		r.Options.Faults.ReadErr, r.Options.Faults.BitFlip, r.Options.Faults.TornWrite, r.Options.Faults.LatencySpike)
	fmt.Fprintf(&b, "%-6s %s\n", "query", "outcomes")
	for _, q := range r.Queries {
		keys := make([]string, 0, len(q.Outcomes))
		for k := range q.Outcomes {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s×%d", k, q.Outcomes[k]))
		}
		fmt.Fprintf(&b, "q%-5d %s\n", q.Query, strings.Join(parts, " "))
	}
	fs := r.FaultStats
	fmt.Fprintf(&b, "faults injected: %d (read-errs %d, bit-flips %d, torn-writes %d, latency-spikes %d); bees quarantined: %d\n",
		fs.Injected, fs.ReadErrs, fs.BitFlips, fs.TornWrites, fs.LatencySpikes, r.Quarantined)
	if r.DML.Writers > 0 {
		fmt.Fprintf(&b, "concurrent dml: %d writers, %d ops committed, %d write-write conflicts, %d faulted ops, %d dead versions vacuumed\n",
			r.DML.Writers, r.DML.Ops, r.DML.Conflicts, r.DML.Errors, r.DML.Vacuumed)
	}
	if r.TPCC.Txns > 0 {
		failed := 0
		for _, n := range r.TPCC.Outcomes {
			failed += n
		}
		fmt.Fprintf(&b, "tpcc: %d txns, %d committed, %d rolled back, %d failed, %d panics escaped\n",
			r.TPCC.Txns, r.TPCC.Committed, r.TPCC.RolledBack, failed, r.TPCC.Panics)
		keys := make([]string, 0, len(r.TPCC.Outcomes))
		for k := range r.TPCC.Outcomes {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %s×%d\n", k, r.TPCC.Outcomes[k])
		}
	}
	if bad := r.Bad(); bad > 0 {
		fmt.Fprintf(&b, "RESULT: BAD — %d broken invariants\n", bad)
	} else {
		b.WriteString("RESULT: clean — every round matched the baseline or failed with a typed error\n")
	}
	return b.String()
}
