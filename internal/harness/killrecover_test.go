package harness

import "testing"

// TestKillRecoverClean runs the full E16 rotation — clean kill,
// mid-commit, mid-checkpoint, torn tail — at tiny scale and requires
// every round to replay to the acknowledged, baseline-equal state.
func TestKillRecoverClean(t *testing.T) {
	o := KillRecoverOptions{
		Seed:           7,
		SF:             0.005,
		PoolPages:      128,
		Rounds:         4,
		AckedPerRound:  25,
		Queries:        []int{1, 3, 6, 13, 18},
		TPCCWarehouses: 1,
		TPCCTxns:       150,
	}
	rep, err := RunKillRecover(o)
	if err != nil {
		t.Fatalf("RunKillRecover: %v", err)
	}
	if bad := rep.Bad(); bad != 0 {
		t.Fatalf("kill-and-recover broke %d invariants:\n%s", bad, rep.Format())
	}
	if len(rep.Rounds) != o.Rounds {
		t.Fatalf("ran %d rounds, want %d", len(rep.Rounds), o.Rounds)
	}
	kinds := map[string]bool{}
	for _, rd := range rep.Rounds {
		kinds[rd.Kind] = true
	}
	for _, k := range killKinds {
		if !kinds[k] {
			t.Fatalf("kill mode %s never ran", k)
		}
	}
	// Mid-commit rounds leave appended-but-unsynced records behind: the
	// discard pass (or the strict tail scan) must have dropped them.
	if rep.TPCC.Txns == 0 {
		t.Fatal("TPC-C phase did not run")
	}
}
