package harness

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"microspec/internal/core"
	"microspec/internal/engine"
	"microspec/internal/profile"
	"microspec/internal/storage/disk"
	"microspec/internal/tpch"
	"microspec/internal/types"
)

// BulkLoadResult is Figure 8's data: per-relation load-time improvement
// of the bee-enabled DBMS (SCL routine plus tuple-bee creation) over the
// stock one (generic heap_fill_tuple).
type BulkLoadResult struct {
	Relation    string
	Rows        int64
	Stock, Bee  time.Duration
	Improvement float64
	// Fill instruction drill-down (§VI-B: heap_fill_tuple 4.6B → SCL
	// 2.4B inside 148B → 146B totals for orders).
	StockFillInstr, BeeFillInstr   int64
	StockTotalInstr, BeeTotalInstr int64
}

// BulkLoadOptions configures Figure 8.
type BulkLoadOptions struct {
	SF float64
	// SmallRelationRows pads region and nation, which "each occupy only
	// two disk pages" (the paper loads them with 1M rows instead).
	SmallRelationRows int
	PoolPages         int
	// Runs repeats each timed load; the median is reported.
	Runs int
}

// DefaultBulkLoadOptions returns laptop-scale settings.
func DefaultBulkLoadOptions() BulkLoadOptions {
	return BulkLoadOptions{SF: 0.01, SmallRelationRows: 50000, PoolPages: 32768, Runs: 3}
}

// RunBulkLoad regenerates Figure 8: for each TPC-H relation, the time to
// populate it on a fresh stock vs. a fresh bee-enabled database.
func RunBulkLoad(o BulkLoadOptions) ([]BulkLoadResult, error) {
	g := tpch.NewGenerator(o.SF)
	relations := []struct {
		name string
		iter func() tpch.RowIter
	}{
		{"region", func() tpch.RowIter { return g.RegionRows(o.SmallRelationRows) }},
		{"nation", func() tpch.RowIter { return g.NationRows(o.SmallRelationRows) }},
		{"part", func() tpch.RowIter { return g.PartRows() }},
		{"customer", func() tpch.RowIter { return g.CustomerRows() }},
		{"orders", func() tpch.RowIter { return g.OrderRows() }},
		{"lineitem", func() tpch.RowIter { return g.LineitemRows() }},
	}
	var out []BulkLoadResult
	for _, rel := range relations {
		res := BulkLoadResult{Relation: rel.name}
		// Materialize the rows once, outside the timed region: the paper
		// loads from pre-generated flat files, so generator cost must not
		// pollute the measurement.
		var rows [][]types.Datum
		iter := rel.iter()
		for {
			row, ok := iter()
			if !ok {
				break
			}
			rows = append(rows, row)
		}
		replay := func() tpch.RowIter {
			i := 0
			return func() ([]types.Datum, bool) {
				if i >= len(rows) {
					return nil, false
				}
				i++
				return rows[i-1], true
			}
		}
		for _, routines := range []core.RoutineSet{core.Stock, core.AllRoutines} {
			runs := o.Runs
			if runs < 1 {
				runs = 1
			}
			// Timed passes on fresh databases. The measured time is CPU
			// wall time plus the simulated disk time of the page writes
			// (load + checkpoint): the paper's loads wrote to a physical
			// disk, and most of its Figure 8 improvement is the I/O saved
			// by tuple-bee storage reduction. The minimum of the runs is
			// reported (the noise-robust estimator for CPU-bound work).
			var n int64
			var elapsed time.Duration
			for r := 0; r < runs; r++ {
				db := engine.Open(engine.Config{
					Routines: routines, PoolPages: o.PoolPages,
					Latency: disk.DefaultColdLatency,
				})
				if err := tpch.CreateSchema(db); err != nil {
					return nil, err
				}
				runtime.GC()
				db.Disk().ResetStats()
				start := time.Now()
				var err error
				n, err = db.BulkLoad(rel.name, nil, replay())
				if err != nil {
					return nil, fmt.Errorf("harness: loading %s: %w", rel.name, err)
				}
				if err := db.Pool().FlushAll(); err != nil {
					return nil, err
				}
				wall := time.Since(start)
				_, _, sim := db.Disk().Stats()
				total := wall + sim
				if r == 0 || total < elapsed {
					elapsed = total
				}
			}
			// Profiled pass on a fresh database.
			db2 := engine.Open(engine.Config{Routines: routines, PoolPages: o.PoolPages})
			if err := tpch.CreateSchema(db2); err != nil {
				return nil, err
			}
			prof := &profile.Counters{}
			if _, err := db2.BulkLoad(rel.name, prof, replay()); err != nil {
				return nil, err
			}
			res.Rows = n
			if !routines.SCL {
				res.Stock = elapsed
				res.StockFillInstr = prof.Component(profile.CompFill)
				res.StockTotalInstr = prof.Total()
			} else {
				res.Bee = elapsed
				res.BeeFillInstr = prof.Component(profile.CompFill)
				res.BeeTotalInstr = prof.Total()
			}
		}
		res.Improvement = improvement(float64(res.Stock), float64(res.Bee))
		out = append(out, res)
	}
	return out, nil
}

// FormatBulkLoad renders Figure 8 as a table.
func FormatBulkLoad(results []BulkLoadResult) string {
	var b strings.Builder
	b.WriteString("Figure 8: bulk-loading run-time improvement (%)\n")
	fmt.Fprintf(&b, "%-10s %10s %12s %12s %9s %22s\n",
		"relation", "rows", "stock", "bee", "improv%", "fill instr (stock/bee)")
	for _, r := range results {
		fmt.Fprintf(&b, "%-10s %10d %12v %12v %8.1f%% %11d/%d\n",
			r.Relation, r.Rows,
			r.Stock.Round(time.Millisecond), r.Bee.Round(time.Millisecond),
			r.Improvement, r.StockFillInstr, r.BeeFillInstr)
	}
	return b.String()
}

// StorageRow is E9's data: per-relation page counts, stock vs. bee.
type StorageRow struct {
	Relation         string
	StockPages       int
	BeePages         int
	SavingPct        float64
	TupleBees        int
	SpecializedAttrs int
}

// RunStorageReport regenerates the storage/I-O saving implied by tuple
// bees (experiment E9) over an existing pair.
func RunStorageReport(stock, bee *engine.DB) ([]StorageRow, error) {
	var out []StorageRow
	for _, name := range tpch.TableNames() {
		hs, err := stock.HeapOf(name)
		if err != nil {
			return nil, err
		}
		hb, err := bee.HeapOf(name)
		if err != nil {
			return nil, err
		}
		row := StorageRow{
			Relation:   name,
			StockPages: hs.NumPages(),
			BeePages:   hb.NumPages(),
		}
		if row.StockPages > 0 {
			row.SavingPct = 100 * float64(row.StockPages-row.BeePages) / float64(row.StockPages)
		}
		rel, err := bee.Catalog().Lookup(name)
		if err != nil {
			return nil, err
		}
		if rb := bee.Module().RelationBeeFor(rel); rb != nil && rb.DataSections != nil {
			row.TupleBees = rb.DataSections.NumBees()
			row.SpecializedAttrs = len(rb.DataSections.SpecializedAttrs())
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatStorage renders the E9 table.
func FormatStorage(rows []StorageRow) string {
	var b strings.Builder
	b.WriteString("Storage report (E9): tuple-bee page savings\n")
	fmt.Fprintf(&b, "%-10s %12s %10s %8s %10s %10s\n",
		"relation", "stock pages", "bee pages", "saving", "tuple bees", "spec attrs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12d %10d %7.1f%% %10d %10d\n",
			r.Relation, r.StockPages, r.BeePages, r.SavingPct, r.TupleBees, r.SpecializedAttrs)
	}
	return b.String()
}
