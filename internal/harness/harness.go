// Package harness runs the paper's experiments: it builds stock and
// bee-enabled database pairs over identical data and regenerates each
// table and figure of the evaluation section (see DESIGN.md §3 for the
// experiment index E1–E9). Results are returned structured and can be
// rendered with the Format helpers.
package harness

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"microspec/internal/core"
	"microspec/internal/engine"
	"microspec/internal/profile"
	"microspec/internal/storage/disk"
	"microspec/internal/tpch"
)

// Options configures the TPC-H experiments.
type Options struct {
	// SF is the TPC-H scale factor.
	SF float64
	// Runs per query; with ≥3 runs the best and worst are dropped, as in
	// the paper ("the highest and lowest measurements were considered
	// outliers").
	Runs int
	// Queries restricts the run (nil = all 22).
	Queries []int
	// PoolPages sizes the buffer pool.
	PoolPages int
	// Workers is the intra-query parallelism degree for both engines
	// (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// StatementTimeout bounds every query on both engines (0 = none).
	StatementTimeout time.Duration
}

// DefaultOptions returns laptop-scale settings.
func DefaultOptions() Options {
	return Options{SF: 0.01, Runs: 3, PoolPages: 32768}
}

func (o Options) queries() []int {
	if len(o.Queries) > 0 {
		return o.Queries
	}
	return tpch.QueryNumbers()
}

// BuildTPCHPair loads identical TPC-H data into a stock and a
// bee-enabled database.
func BuildTPCHPair(o Options) (stock, bee *engine.DB, err error) {
	stock, err = tpch.NewDatabase(engine.Config{
		Routines: core.Stock, PoolPages: o.PoolPages, Latency: disk.DefaultColdLatency,
		Workers: o.Workers, StatementTimeout: o.StatementTimeout,
	}, o.SF)
	if err != nil {
		return nil, nil, fmt.Errorf("harness: building stock DB: %w", err)
	}
	bee, err = tpch.NewDatabase(engine.Config{
		Routines: core.AllRoutines, PoolPages: o.PoolPages, Latency: disk.DefaultColdLatency,
		Workers: o.Workers, StatementTimeout: o.StatementTimeout,
	}, o.SF)
	if err != nil {
		return nil, nil, fmt.Errorf("harness: building bee DB: %w", err)
	}
	return stock, bee, nil
}

// QueryResult is one query's stock-vs-bee comparison.
type QueryResult struct {
	Query       int
	Stock, Bee  float64 // milliseconds (runtime figures) or instructions
	Improvement float64 // percent
}

// Series is one figure's data: per-query results plus the paper's two
// averages (Avg1: unweighted mean of improvements; Avg2: improvement of
// the summed totals).
type Series struct {
	Title   string
	Results []QueryResult
	Avg1    float64
	Avg2    float64
}

func newSeries(title string, results []QueryResult) Series {
	s := Series{Title: title, Results: results}
	var sumImp, sumStock, sumBee float64
	for _, r := range results {
		sumImp += r.Improvement
		sumStock += r.Stock
		sumBee += r.Bee
	}
	if len(results) > 0 {
		s.Avg1 = sumImp / float64(len(results))
	}
	if sumStock > 0 {
		s.Avg2 = 100 * (sumStock - sumBee) / sumStock
	}
	return s
}

func improvement(stock, bee float64) float64 {
	if stock <= 0 {
		return 0
	}
	return 100 * (stock - bee) / stock
}

// timeOnce measures one query execution: wall-clock time plus, for cold
// runs, the simulated disk time of the pages read. A garbage collection
// drains allocator debt before the timer starts so the previous
// measurement's garbage is not charged to this one.
func timeOnce(db *engine.DB, q string, cold bool) (float64, error) {
	if cold {
		if err := db.DropCaches(); err != nil {
			return 0, err
		}
	}
	runtime.GC()
	db.Disk().ResetStats()
	start := time.Now()
	if _, err := db.Query(q); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if cold {
		_, _, sim := db.Disk().Stats()
		elapsed += sim
	}
	return float64(elapsed.Microseconds()) / 1000, nil
}

// aggregate applies the paper's protocol: with ≥3 samples the highest and
// lowest are dropped as outliers; the rest are averaged.
func aggregate(samples []float64) float64 {
	sort.Float64s(samples)
	if len(samples) >= 3 {
		samples = samples[1 : len(samples)-1]
	}
	sum := 0.0
	for _, s := range samples {
		sum += s
	}
	return sum / float64(len(samples))
}

// timeQuery measures one query on one database (uncontrasted callers).
func timeQuery(db *engine.DB, q string, runs int, cold bool) (float64, error) {
	if runs < 1 {
		runs = 1
	}
	samples := make([]float64, 0, runs)
	for r := 0; r < runs; r++ {
		s, err := timeOnce(db, q, cold)
		if err != nil {
			return 0, err
		}
		samples = append(samples, s)
	}
	return aggregate(samples), nil
}

// timeBoth measures one query on the stock and bee databases with the
// runs interleaved, so scheduler noise hits both streams alike.
func timeBoth(stock, bee *engine.DB, q string, runs int, cold bool) (float64, float64, error) {
	if runs < 1 {
		runs = 1
	}
	ss := make([]float64, 0, runs)
	bs := make([]float64, 0, runs)
	for r := 0; r < runs; r++ {
		s, err := timeOnce(stock, q, cold)
		if err != nil {
			return 0, 0, err
		}
		b, err := timeOnce(bee, q, cold)
		if err != nil {
			return 0, 0, err
		}
		ss = append(ss, s)
		bs = append(bs, b)
	}
	return aggregate(ss), aggregate(bs), nil
}

// RunTPCHRuntime regenerates Figure 4 (warm cache) or Figure 5 (cold
// cache): per-query run-time improvement of the bee-enabled DBMS.
func RunTPCHRuntime(stock, bee *engine.DB, o Options, cold bool) (Series, error) {
	title := "Figure 4: TPC-H run-time improvement, warm cache (%)"
	if cold {
		title = "Figure 5: TPC-H run-time improvement, cold cache (%)"
	}
	if !cold {
		if err := stock.WarmUp(); err != nil {
			return Series{}, err
		}
		if err := bee.WarmUp(); err != nil {
			return Series{}, err
		}
	}
	queries := tpch.Queries()
	var results []QueryResult
	for _, qn := range o.queries() {
		st, bt, err := timeBoth(stock, bee, queries[qn], o.Runs, cold)
		if err != nil {
			return Series{}, fmt.Errorf("q%d: %w", qn, err)
		}
		results = append(results, QueryResult{
			Query: qn, Stock: st, Bee: bt, Improvement: improvement(st, bt),
		})
	}
	return newSeries(title, results), nil
}

// RunTPCHInstructions regenerates Figure 6: per-query reduction in
// dynamic (abstract) instructions executed.
func RunTPCHInstructions(stock, bee *engine.DB, o Options) (Series, error) {
	if err := stock.WarmUp(); err != nil {
		return Series{}, err
	}
	if err := bee.WarmUp(); err != nil {
		return Series{}, err
	}
	queries := tpch.Queries()
	var results []QueryResult
	for _, qn := range o.queries() {
		sp := &profile.Counters{}
		if _, err := stock.QueryProfiled(queries[qn], sp); err != nil {
			return Series{}, fmt.Errorf("q%d stock: %w", qn, err)
		}
		bp := &profile.Counters{}
		if _, err := bee.QueryProfiled(queries[qn], bp); err != nil {
			return Series{}, fmt.Errorf("q%d bee: %w", qn, err)
		}
		st, bt := float64(sp.Total()), float64(bp.Total())
		results = append(results, QueryResult{
			Query: qn, Stock: st, Bee: bt, Improvement: improvement(st, bt),
		})
	}
	return newSeries("Figure 6: reduction in instructions executed (%)", results), nil
}

// AblationStep names one routine set of Figure 7.
type AblationStep struct {
	Label    string
	Routines core.RoutineSet
}

// AblationSteps returns the paper's three Figure 7 configurations. All
// three keep SCL and tuple bees (the bee database's storage format
// requires GCL; the paper's "GCL" configuration is likewise the
// relation-bee baseline every other routine stacks on).
func AblationSteps() []AblationStep {
	return []AblationStep{
		{"GCL", core.RoutineSet{GCL: true, SCL: true, TupleBees: true}},
		{"GCL+EVP", core.RoutineSet{GCL: true, SCL: true, TupleBees: true, EVP: true}},
		{"GCL+EVP+EVJ", core.AllRoutines},
	}
}

// RunAblation regenerates Figure 7: warm-cache run-time improvement with
// successively more bee routines enabled on the same bee database. For
// each query, the stock baseline and every routine set are measured in
// interleaved rounds so machine noise hits all configurations alike.
func RunAblation(stock, bee *engine.DB, o Options) ([]Series, error) {
	if err := stock.WarmUp(); err != nil {
		return nil, err
	}
	if err := bee.WarmUp(); err != nil {
		return nil, err
	}
	queries := tpch.Queries()
	steps := AblationSteps()
	runs := o.Runs
	if runs < 1 {
		runs = 1
	}
	type cell struct{ samples []float64 }
	stockCells := map[int]*cell{}
	stepCells := make([]map[int]*cell, len(steps))
	for i := range steps {
		stepCells[i] = map[int]*cell{}
	}
	for _, qn := range o.queries() {
		stockCells[qn] = &cell{}
		for i := range steps {
			stepCells[i][qn] = &cell{}
		}
		for r := 0; r < runs; r++ {
			s, err := timeOnce(stock, queries[qn], false)
			if err != nil {
				return nil, fmt.Errorf("q%d stock: %w", qn, err)
			}
			stockCells[qn].samples = append(stockCells[qn].samples, s)
			for i, step := range steps {
				if err := bee.SetRoutines(step.Routines); err != nil {
					return nil, err
				}
				b, err := timeOnce(bee, queries[qn], false)
				if err != nil {
					return nil, fmt.Errorf("q%d %s: %w", qn, step.Label, err)
				}
				stepCells[i][qn].samples = append(stepCells[i][qn].samples, b)
			}
		}
	}
	var out []Series
	for i, step := range steps {
		var results []QueryResult
		for _, qn := range o.queries() {
			st := aggregate(stockCells[qn].samples)
			bt := aggregate(stepCells[i][qn].samples)
			results = append(results, QueryResult{
				Query: qn, Stock: st, Bee: bt, Improvement: improvement(st, bt),
			})
		}
		out = append(out, newSeries("Figure 7 ("+step.Label+"): run-time improvement, warm cache (%)", results))
	}
	// Restore the full routine set.
	if err := bee.SetRoutines(core.AllRoutines); err != nil {
		return nil, err
	}
	return out, nil
}

// ScalingResult is one query's warm-cache run time at each worker degree.
type ScalingResult struct {
	Query int
	MS    []float64 // parallel to Scaling.Workers
}

// Scaling is the intra-query parallelism sweep: run time per query at
// worker degrees 1..N on the same database.
type Scaling struct {
	Workers []int
	Results []ScalingResult
}

// RunScaling measures intra-query parallelism: each query is timed warm
// on db at every worker degree 1..maxWorkers. The database's original
// worker degree is restored afterwards. See EXPERIMENTS.md §"Parallel
// scaling" for the recipe and reference numbers.
func RunScaling(db *engine.DB, o Options, maxWorkers int) (Scaling, error) {
	if maxWorkers < 1 {
		maxWorkers = 1
	}
	if err := db.WarmUp(); err != nil {
		return Scaling{}, err
	}
	prev := db.Workers()
	defer db.SetWorkers(prev)
	queries := tpch.Queries()
	var sc Scaling
	for w := 1; w <= maxWorkers; w++ {
		sc.Workers = append(sc.Workers, w)
	}
	for _, qn := range o.queries() {
		r := ScalingResult{Query: qn}
		for _, w := range sc.Workers {
			db.SetWorkers(w)
			ms, err := timeQuery(db, queries[qn], o.Runs, false)
			if err != nil {
				return Scaling{}, fmt.Errorf("q%d workers=%d: %w", qn, w, err)
			}
			r.MS = append(r.MS, ms)
		}
		sc.Results = append(sc.Results, r)
	}
	return sc, nil
}

// Format renders the scaling sweep with each query's speedup of the
// highest degree over serial.
func (s Scaling) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Intra-query parallelism: warm-cache run time (ms) by worker count\n")
	fmt.Fprintf(&b, "%-6s", "query")
	for _, w := range s.Workers {
		fmt.Fprintf(&b, " %9s", fmt.Sprintf("w=%d", w))
	}
	fmt.Fprintf(&b, " %9s\n", "speedup")
	for _, r := range s.Results {
		fmt.Fprintf(&b, "q%-5d", r.Query)
		for _, ms := range r.MS {
			fmt.Fprintf(&b, " %9.2f", ms)
		}
		speedup := 0.0
		if last := r.MS[len(r.MS)-1]; last > 0 {
			speedup = r.MS[0] / last
		}
		fmt.Fprintf(&b, " %8.2fx\n", speedup)
	}
	return b.String()
}

// Format renders a series as the paper's bar-chart data in table form.
func (s Series) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Title)
	fmt.Fprintf(&b, "%-6s %14s %14s %9s\n", "query", "stock", "bee", "improv%")
	for _, r := range s.Results {
		fmt.Fprintf(&b, "q%-5d %14.2f %14.2f %8.1f%%\n", r.Query, r.Stock, r.Bee, r.Improvement)
	}
	fmt.Fprintf(&b, "%-6s %30s %8.1f%%\n", "Avg1", "", s.Avg1)
	fmt.Fprintf(&b, "%-6s %30s %8.1f%%\n", "Avg2", "", s.Avg2)
	return b.String()
}
