package harness

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"microspec/internal/engine"
	"microspec/internal/tpch"
)

// This file produces the machine-readable benchmark artifact
// (BENCH_tpch.json): per-query wall-clock, result-row throughput, and
// heap allocation counts for the stock and bee-enabled engines, both on
// the default batch executor path. Timing follows the paper's protocol
// (interleaved runs, best/worst dropped); allocation counts take the
// minimum across runs, which is the steady-state per-query figure once
// caches and scratch buffers are warm.

// BenchEngine is one engine's measurements for one query.
type BenchEngine struct {
	// NS is the aggregated wall-clock time in nanoseconds.
	NS int64 `json:"ns"`
	// RowsPerSec is result-row throughput: rows returned / NS.
	RowsPerSec float64 `json:"rows_per_sec"`
	// Allocs is the steady-state heap allocation count of one run.
	Allocs uint64 `json:"allocs"`
}

// BenchRecord is one query's measurements.
type BenchRecord struct {
	Query   int         `json:"query"`
	Rows    int         `json:"rows"`
	Stock   BenchEngine `json:"stock"`
	Bee     BenchEngine `json:"bee"`
	Speedup float64     `json:"speedup"`
}

// BenchReport is the BENCH_tpch.json document.
type BenchReport struct {
	SF      float64       `json:"sf"`
	Workers int           `json:"workers"`
	Runs    int           `json:"runs"`
	Queries []BenchRecord `json:"queries"`
}

// benchOnce times one warm run and its heap allocation count.
func benchOnce(db *engine.DB, q string) (ns int64, allocs uint64, rows int, err error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := db.Query(q)
	elapsed := time.Since(start)
	if err != nil {
		return 0, 0, 0, err
	}
	runtime.ReadMemStats(&after)
	return elapsed.Nanoseconds(), after.Mallocs - before.Mallocs, len(res.Rows), nil
}

// RunTPCHBenchJSON measures every selected query on both engines and
// returns the benchmark report. Runs are interleaved like RunTPCHRuntime
// so scheduler noise hits both streams alike.
func RunTPCHBenchJSON(stock, bee *engine.DB, o Options) (BenchReport, error) {
	if err := stock.WarmUp(); err != nil {
		return BenchReport{}, err
	}
	if err := bee.WarmUp(); err != nil {
		return BenchReport{}, err
	}
	runs := o.Runs
	if runs < 1 {
		runs = 1
	}
	queries := tpch.Queries()
	report := BenchReport{SF: o.SF, Workers: o.Workers, Runs: runs}
	for _, qn := range o.queries() {
		q := queries[qn]
		var (
			sNS, bNS         []float64
			sAllocs, bAllocs uint64
			rows             int
		)
		for r := 0; r < runs; r++ {
			ns, al, n, err := benchOnce(stock, q)
			if err != nil {
				return BenchReport{}, fmt.Errorf("q%d stock: %w", qn, err)
			}
			sNS = append(sNS, float64(ns))
			if r == 0 || al < sAllocs {
				sAllocs = al
			}
			rows = n
			ns, al, _, err = benchOnce(bee, q)
			if err != nil {
				return BenchReport{}, fmt.Errorf("q%d bee: %w", qn, err)
			}
			bNS = append(bNS, float64(ns))
			if r == 0 || al < bAllocs {
				bAllocs = al
			}
		}
		rec := BenchRecord{
			Query: qn,
			Rows:  rows,
			Stock: benchEngine(aggregate(sNS), sAllocs, rows),
			Bee:   benchEngine(aggregate(bNS), bAllocs, rows),
		}
		if rec.Bee.NS > 0 {
			rec.Speedup = float64(rec.Stock.NS) / float64(rec.Bee.NS)
		}
		report.Queries = append(report.Queries, rec)
	}
	return report, nil
}

func benchEngine(ns float64, allocs uint64, rows int) BenchEngine {
	e := BenchEngine{NS: int64(ns), Allocs: allocs}
	if ns > 0 {
		e.RowsPerSec = float64(rows) / (ns / 1e9)
	}
	return e
}

// MarshalBench renders the report as indented JSON with a trailing
// newline.
func MarshalBench(r BenchReport) ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
