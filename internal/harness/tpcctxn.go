package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"microspec/internal/core"
	"microspec/internal/engine"
	"microspec/internal/tpcc"
	"microspec/internal/txn"
)

// This file is the compiled-transactions experiment (E17): the five
// TPC-C transactions at N concurrent sessions, statement-at-a-time vs
// whole-transaction bees (engine.CompiledTxn), with per-type latency
// percentiles and the tpmC headline. Both modes run the same per-session
// seeds; after each run the TPC-C consistency invariants are asserted,
// so a mode only posts a number if its database is still correct.

// TPCCTxnOptions configures the compiled-transactions comparison.
type TPCCTxnOptions struct {
	Warehouses     int
	Small          bool // laptop-scale population
	Sessions       int  // concurrent terminals per mode
	TxnsPerSession int
	Seed           int64
	PoolPages      int
}

// DefaultTPCCTxnOptions returns laptop-scale settings: 8 sessions, as
// the experiment is about amortizing per-operation overheads under
// concurrency.
func DefaultTPCCTxnOptions() TPCCTxnOptions {
	return TPCCTxnOptions{Warehouses: 1, Small: true, Sessions: 8, TxnsPerSession: 1500, Seed: 1, PoolPages: 32768}
}

// TxnLatency is one transaction type's latency summary.
type TxnLatency struct {
	Count int64   `json:"count"`
	P50us float64 `json:"p50_us"`
	P95us float64 `json:"p95_us"`
}

// TPCCTxnMode is one execution mode's measurements.
type TPCCTxnMode struct {
	Mode       string                `json:"mode"` // "stmt" or "txn_bee"
	TpmC       float64               `json:"tpmc"` // committed New-Order per minute
	TPM        float64               `json:"tpm"`  // all committed transactions per minute
	Committed  int64                 `json:"committed"`
	RolledBack int64                 `json:"rolled_back"`
	Conflicts  int64                 `json:"conflicts"`
	Fallbacks  int64                 `json:"fallbacks,omitempty"`
	ByType     map[string]TxnLatency `json:"by_type"`
}

// TPCCTxnReport is the BENCH_tpcc.json document.
type TPCCTxnReport struct {
	Bench          string      `json:"bench"`
	Warehouses     int         `json:"warehouses"`
	Sessions       int         `json:"sessions"`
	TxnsPerSession int         `json:"txns_per_session"`
	Mix            string      `json:"mix"`
	Stmt           TPCCTxnMode `json:"stmt"`
	TxnBee         TPCCTxnMode `json:"txn_bee"`
	// TpmCUplift is the headline: txn-bee tpmC over statement-at-a-time.
	TpmCUplift float64 `json:"tpmc_uplift"`
}

// sessionRun is one terminal's tally.
type sessionRun struct {
	committed, rolledBack, conflicts int64
	byType                           [5]int64
	lats                             [5][]time.Duration
}

// runTPCCTxnMode loads a fresh database and drives it with o.Sessions
// concurrent seeded terminals, all in one mode.
func runTPCCTxnMode(o TPCCTxnOptions, useBees bool) (TPCCTxnMode, error) {
	cfg := tpcc.DefaultConfig(o.Warehouses)
	if o.Small {
		cfg = tpcc.SmallConfig(o.Warehouses)
	}
	db, err := tpcc.NewDatabase(engine.Config{Routines: core.AllRoutines, PoolPages: o.PoolPages}, cfg)
	if err != nil {
		return TPCCTxnMode{}, fmt.Errorf("harness: tpcc load: %w", err)
	}
	execs := make([]*tpcc.Executor, o.Sessions)
	for i := range execs {
		execs[i] = tpcc.NewExecutor(db, cfg, o.Seed+int64(i))
		if useBees {
			if err := execs[i].EnableTxnBees(); err != nil {
				return TPCCTxnMode{}, err
			}
		}
	}

	mode := "stmt"
	if useBees {
		mode = "txn_bee"
	}
	runs := make([]sessionRun, o.Sessions)
	var wg sync.WaitGroup
	errCh := make(chan error, o.Sessions)
	runtime.GC()
	start := time.Now()
	for i := range execs {
		wg.Add(1)
		go func(e *tpcc.Executor, r *sessionRun) {
			defer wg.Done()
			mix := tpcc.DefaultMix
			for n := 0; n < o.TxnsPerSession; n++ {
				t := pickTxn(e, mix)
				t0 := time.Now()
				var err error
				for {
					err = runTxnType(e, t)
					// A first-updater-wins loss is the client's cue to retry
					// the transaction; the retry is part of this
					// transaction's latency.
					if err != nil && errors.Is(err, txn.ErrWriteConflict) {
						r.conflicts++
						continue
					}
					break
				}
				r.lats[t] = append(r.lats[t], time.Since(t0))
				if errors.Is(err, tpcc.ErrRollback) {
					r.rolledBack++
					continue
				}
				if err != nil {
					errCh <- fmt.Errorf("harness: %s mode: %v: %w", mode, t, err)
					return
				}
				r.committed++
				r.byType[t]++
			}
		}(execs[i], &runs[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return TPCCTxnMode{}, err
	default:
	}

	if err := checkTPCCConsistency(db, o.Warehouses); err != nil {
		return TPCCTxnMode{}, fmt.Errorf("harness: %s mode: %w", mode, err)
	}

	m := TPCCTxnMode{Mode: mode, ByType: map[string]TxnLatency{}}
	if useBees {
		for _, e := range execs {
			m.Fallbacks += e.Fallbacks
		}
	}
	var merged [5][]time.Duration
	for i := range runs {
		m.Committed += runs[i].committed
		m.RolledBack += runs[i].rolledBack
		m.Conflicts += runs[i].conflicts
		for t := 0; t < 5; t++ {
			merged[t] = append(merged[t], runs[i].lats[t]...)
		}
	}
	var newOrders int64
	for i := range runs {
		newOrders += runs[i].byType[tpcc.TxnNewOrder]
	}
	m.TPM = float64(m.Committed) / elapsed.Minutes()
	m.TpmC = float64(newOrders) / elapsed.Minutes()
	for t := tpcc.TxnType(0); t < 5; t++ {
		lats := merged[t]
		if len(lats) == 0 {
			continue
		}
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		at := func(q float64) float64 {
			return float64(lats[int(q*float64(len(lats)-1))]) / float64(time.Microsecond)
		}
		m.ByType[t.String()] = TxnLatency{Count: int64(len(lats)), P50us: at(0.50), P95us: at(0.95)}
	}
	return m, nil
}

func pickTxn(e *tpcc.Executor, mix tpcc.Mix) tpcc.TxnType {
	r := e.Rng.Intn(1000)
	acc := 0
	for t := tpcc.TxnType(0); t < 5; t++ {
		acc += mix[t]
		if r < acc {
			return t
		}
	}
	return tpcc.TxnNewOrder
}

func runTxnType(e *tpcc.Executor, t tpcc.TxnType) error {
	switch t {
	case tpcc.TxnNewOrder:
		return e.NewOrder()
	case tpcc.TxnPayment:
		return e.Payment()
	case tpcc.TxnOrderStatus:
		return e.OrderStatus()
	case tpcc.TxnDelivery:
		return e.Delivery()
	default:
		return e.StockLevel()
	}
}

// checkTPCCConsistency asserts the TPC-C consistency conditions the
// workload maintains: condition 1 (per warehouse, w_ytd equals the sum
// of its districts' d_ytd) and no order left without order lines.
func checkTPCCConsistency(db *engine.DB, warehouses int) error {
	for w := 1; w <= warehouses; w++ {
		wr, err := db.Query(fmt.Sprintf("select w_ytd from warehouse where w_id = %d", w))
		if err != nil {
			return err
		}
		dr, err := db.Query(fmt.Sprintf("select sum(d_ytd) from district where d_w_id = %d", w))
		if err != nil {
			return err
		}
		diff := wr.Rows[0][0].Float64() - dr.Rows[0][0].Float64()
		if diff > 1e-4 || diff < -1e-4 {
			return fmt.Errorf("consistency: warehouse %d w_ytd %v != sum(d_ytd) %v",
				w, wr.Rows[0][0], dr.Rows[0][0])
		}
	}
	r, err := db.Query(`select count(*) from orders
		where not exists (select * from order_line
			where ol_w_id = o_w_id and ol_d_id = o_d_id and ol_o_id = o_id)`)
	if err != nil {
		return err
	}
	if n := r.Rows[0][0].Int64(); n != 0 {
		return fmt.Errorf("consistency: %d orders without order lines", n)
	}
	return nil
}

// RunTPCCTxnBench runs both modes and assembles the report.
func RunTPCCTxnBench(o TPCCTxnOptions) (TPCCTxnReport, error) {
	if o.Sessions < 1 {
		o.Sessions = 1
	}
	rep := TPCCTxnReport{
		Bench:          "tpcc",
		Warehouses:     o.Warehouses,
		Sessions:       o.Sessions,
		TxnsPerSession: o.TxnsPerSession,
		Mix:            "default (45/43/4/4/4)",
	}
	var err error
	if rep.Stmt, err = runTPCCTxnMode(o, false); err != nil {
		return rep, err
	}
	if rep.TxnBee, err = runTPCCTxnMode(o, true); err != nil {
		return rep, err
	}
	if rep.Stmt.TpmC > 0 {
		rep.TpmCUplift = rep.TxnBee.TpmC / rep.Stmt.TpmC
	}
	return rep, nil
}

// FormatTPCCTxn renders the comparison table.
func FormatTPCCTxn(r TPCCTxnReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "compiled transactions (E17): %d sessions, %d txns/session, %d warehouse(s)\n",
		r.Sessions, r.TxnsPerSession, r.Warehouses)
	fmt.Fprintf(&b, "%-10s %12s %12s %12s %10s %10s\n", "mode", "tpmC", "tpm", "committed", "conflicts", "fallbacks")
	for _, m := range []TPCCTxnMode{r.Stmt, r.TxnBee} {
		fmt.Fprintf(&b, "%-10s %12.0f %12.0f %12d %10d %10d\n",
			m.Mode, m.TpmC, m.TPM, m.Committed, m.Conflicts, m.Fallbacks)
	}
	fmt.Fprintf(&b, "tpmC uplift: %.2fx\n", r.TpmCUplift)
	order := []string{"NewOrder", "Payment", "OrderStatus", "Delivery", "StockLevel"}
	fmt.Fprintf(&b, "%-12s %10s %10s %12s %12s\n", "type", "stmt p50", "stmt p95", "txn-bee p50", "txn-bee p95")
	for _, name := range order {
		s, okS := r.Stmt.ByType[name]
		t, okT := r.TxnBee.ByType[name]
		if !okS && !okT {
			continue
		}
		fmt.Fprintf(&b, "%-12s %9.0fµ %9.0fµ %11.0fµ %11.0fµ\n", name, s.P50us, s.P95us, t.P50us, t.P95us)
	}
	return b.String()
}

// MarshalTPCCTxn renders the report as indented JSON with a trailing
// newline.
func MarshalTPCCTxn(r TPCCTxnReport) ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
