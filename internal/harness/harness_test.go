package harness

import (
	"strings"
	"testing"

	"microspec/internal/core"
)

// The harness tests run every experiment at a tiny scale, checking
// structure and internal consistency rather than absolute numbers (the
// cmd/ tools run them at measurement scale).

func tinyOptions() Options {
	return Options{SF: 0.002, Runs: 1, PoolPages: 4096, Queries: []int{1, 6}}
}

func TestBuildTPCHPair(t *testing.T) {
	stock, bee, err := BuildTPCHPair(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if stock.Module().Routines() != core.Stock {
		t.Error("stock DB must have no routines")
	}
	if bee.Module().Routines() != core.AllRoutines {
		t.Error("bee DB must have all routines")
	}
	rs, _ := stock.Query("select count(*) from lineitem")
	rb, _ := bee.Query("select count(*) from lineitem")
	if rs.Rows[0][0].Int64() != rb.Rows[0][0].Int64() {
		t.Error("pair must hold identical data")
	}
}

func TestRunTPCHRuntimeSeries(t *testing.T) {
	o := tinyOptions()
	stock, bee, err := BuildTPCHPair(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, cold := range []bool{false, true} {
		s, err := RunTPCHRuntime(stock, bee, o, cold)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Results) != 2 {
			t.Fatalf("results = %d", len(s.Results))
		}
		for _, r := range s.Results {
			if r.Stock <= 0 || r.Bee <= 0 {
				t.Errorf("q%d: non-positive times %v/%v", r.Query, r.Stock, r.Bee)
			}
			want := 100 * (r.Stock - r.Bee) / r.Stock
			if diff := r.Improvement - want; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("q%d improvement inconsistent", r.Query)
			}
		}
		out := s.Format()
		if !strings.Contains(out, "q1") || !strings.Contains(out, "Avg1") {
			t.Errorf("format missing rows: %s", out)
		}
	}
}

func TestRunTPCHInstructionsDeterministic(t *testing.T) {
	o := tinyOptions()
	stock, bee, err := BuildTPCHPair(o)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := RunTPCHInstructions(stock, bee, o)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := RunTPCHInstructions(stock, bee, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1.Results {
		if s1.Results[i].Stock != s2.Results[i].Stock || s1.Results[i].Bee != s2.Results[i].Bee {
			t.Errorf("q%d: instruction counts must be deterministic", s1.Results[i].Query)
		}
		if s1.Results[i].Improvement <= 0 {
			t.Errorf("q%d: bee must execute fewer instructions (%.1f%%)",
				s1.Results[i].Query, s1.Results[i].Improvement)
		}
	}
}

func TestRunAblationAdditivity(t *testing.T) {
	o := tinyOptions()
	o.Queries = []int{6}
	o.Runs = 3
	stock, bee, err := BuildTPCHPair(o)
	if err != nil {
		t.Fatal(err)
	}
	series, err := RunAblation(stock, bee, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("ablation steps = %d", len(series))
	}
	// q6 is predicate-heavy: enabling EVP on top of GCL must improve it
	// (the paper's 15.1% → 30.6% observation). Allow slack for noise.
	gcl := series[0].Results[0].Improvement
	evp := series[1].Results[0].Improvement
	if evp < gcl-10 {
		t.Errorf("EVP must not regress q6 materially: GCL=%.1f%%, +EVP=%.1f%%", gcl, evp)
	}
	// The routine set is restored afterwards.
	if bee.Module().Routines() != core.AllRoutines {
		t.Error("ablation must restore AllRoutines")
	}
}

func TestRunCaseStudy(t *testing.T) {
	o := tinyOptions()
	o.Queries = nil
	res, err := RunCaseStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows == 0 {
		t.Fatal("no rows scanned")
	}
	// The calibrated per-tuple counts (paper: ≈340 vs ≈146).
	if res.StockDeformPerTuple < 320 || res.StockDeformPerTuple > 360 {
		t.Errorf("generic deform/tuple = %.0f", res.StockDeformPerTuple)
	}
	if res.BeeDeformPerTuple < 135 || res.BeeDeformPerTuple > 160 {
		t.Errorf("GCL deform/tuple = %.0f", res.BeeDeformPerTuple)
	}
	// Whole-query instruction reduction in the paper's ballpark (8.5%).
	if imp := res.InstrImprovement(); imp < 5 || imp > 13 {
		t.Errorf("instruction improvement = %.1f%%, want ≈8%%", imp)
	}
	if !strings.Contains(res.Format(), "paper") {
		t.Error("format must cite the paper's numbers")
	}
}

func TestRunBulkLoad(t *testing.T) {
	o := DefaultBulkLoadOptions()
	o.SF = 0.002
	o.SmallRelationRows = 500
	o.Runs = 1
	results, err := RunBulkLoad(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("relations = %d", len(results))
	}
	for _, r := range results {
		if r.Rows == 0 || r.Stock == 0 || r.Bee == 0 {
			t.Errorf("%s: incomplete result %+v", r.Relation, r)
		}
		// The §VI-B drill-down: the SCL fill instruction count is lower.
		if r.BeeFillInstr >= r.StockFillInstr {
			t.Errorf("%s: SCL fill instructions (%d) must be below generic (%d)",
				r.Relation, r.BeeFillInstr, r.StockFillInstr)
		}
	}
	if !strings.Contains(FormatBulkLoad(results), "lineitem") {
		t.Error("format incomplete")
	}
}

func TestRunStorageReport(t *testing.T) {
	stock, bee, err := BuildTPCHPair(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunStorageReport(stock, bee)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("relations = %d", len(rows))
	}
	saving := 0
	for _, r := range rows {
		if r.BeePages > r.StockPages {
			t.Errorf("%s: bee storage larger (%d > %d)", r.Relation, r.BeePages, r.StockPages)
		}
		if r.BeePages < r.StockPages {
			saving++
		}
		if r.Relation == "lineitem" && r.TupleBees == 0 {
			t.Error("lineitem must have tuple bees")
		}
	}
	if saving == 0 {
		t.Error("tuple bees must shrink at least one relation")
	}
	if !strings.Contains(FormatStorage(rows), "lineitem") {
		t.Error("format incomplete")
	}
}

func TestRunTPCC(t *testing.T) {
	o := DefaultTPCCOptions()
	o.TxnsPerRound = 200
	o.Rounds = 1
	scenarios, err := RunTPCC(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 3 {
		t.Fatalf("scenarios = %d", len(scenarios))
	}
	for _, sc := range scenarios {
		if sc.StockTPM <= 0 || sc.BeeTPM <= 0 {
			t.Errorf("%s: non-positive tpm", sc.Name)
		}
	}
	out := FormatTPCC(scenarios)
	if !strings.Contains(out, "query-only") {
		t.Error("format incomplete")
	}
}
