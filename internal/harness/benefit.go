package harness

import (
	"fmt"
	"strings"
	"time"

	"microspec/internal/core"
	"microspec/internal/engine"
)

// FormatBeeBenefits renders the engine's per-bee benefit attribution
// (core.BeeBenefits: observed bee time scaled by the stock-vs-bee cost
// ratio) as the table every bench command prints — the paper's
// bee-benefit analysis, reproduced live from one run's measurements.
// Empty string when nothing was attributed.
func FormatBeeBenefits(db *engine.DB, top int) string {
	all := db.Module().BeeBenefits()
	if top <= 0 {
		top = 10
	}
	// Only bees with measured run time make the table; registered bees
	// the workload never drove through a timed path are summarized.
	var bb []core.BeeBenefit
	for _, b := range all {
		if b.ObservedNs > 0 {
			bb = append(bb, b)
		}
	}
	if len(bb) == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "per-bee benefit attribution (top %d by estimated time saved):\n", top)
	fmt.Fprintf(&sb, "  %-10s %-44s %12s %12s %12s\n", "kind", "bee", "rows", "observed", "est saved")
	for i, b := range bb {
		if i == top {
			break
		}
		name := b.Name
		if len(name) > 44 {
			name = name[:41] + "..."
		}
		fmt.Fprintf(&sb, "  %-10s %-44s %12d %12v %12v\n", b.Kind, name, b.Rows,
			time.Duration(b.ObservedNs).Round(time.Microsecond),
			time.Duration(b.EstSavedNs).Round(time.Microsecond))
	}
	if rest := len(all) - len(bb); rest > 0 {
		fmt.Fprintf(&sb, "  (%d more bees with no observed time)\n", rest)
	}
	return sb.String()
}
