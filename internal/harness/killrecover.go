package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"microspec/internal/core"
	"microspec/internal/engine"
	"microspec/internal/storage/disk"
	"microspec/internal/tpcc"
	"microspec/internal/tpch"
)

// This file implements the kill-and-recover experiment (E16): a durable,
// WAL-enabled database is killed at the nastiest points the commit and
// checkpoint protocols have — mid-commit (records appended, fsync never
// happened), mid-checkpoint (checkpoint record appended, not durable),
// and with a torn log tail carried into the survivor image — then
// recovered, and the recovered instance must answer every TPC-H query
// exactly as the pre-kill baseline did, hold exactly the acknowledged DML
// (acked commits survive, unacked ones vanish), and keep the TPC-C
// consistency invariants. A clean report has Bad() == 0.

// Kill modes, rotated across rounds.
const (
	KillClean         = "clean-kill"     // kill with everything synced
	KillMidCommit     = "mid-commit"     // die before the commit fsync
	KillMidCheckpoint = "mid-checkpoint" // die before the checkpoint fsync
	KillTornTail      = "torn-tail"      // mid-commit plus a torn tail in the image
)

var killKinds = []string{KillClean, KillMidCommit, KillMidCheckpoint, KillTornTail}

// KillRecoverOptions configures a kill-and-recover run.
type KillRecoverOptions struct {
	// Seed drives the DML keys, tear sizes, and the TPC-C stream.
	Seed int64
	// SF is the TPC-H scale factor.
	SF float64
	// PoolPages sizes the buffer pool (small, so unflushed dirty pages are
	// the norm and redo actually has work to do).
	PoolPages int
	// Workers is the intra-query parallelism degree (0 = GOMAXPROCS).
	Workers int
	// Queries restricts the TPC-H verification set (nil = all 22).
	Queries []int
	// Rounds is the number of kill-and-recover cycles; each takes the next
	// kill mode in rotation.
	Rounds int
	// AckedPerRound is how many acknowledged inserts land before each kill.
	AckedPerRound int
	// TPCCWarehouses and TPCCTxns size the TPC-C phase; TPCCTxns = 0
	// skips it.
	TPCCWarehouses int
	TPCCTxns       int
}

// DefaultKillRecoverOptions returns the E16 recipe at laptop scale.
func DefaultKillRecoverOptions() KillRecoverOptions {
	return KillRecoverOptions{
		Seed:           42,
		SF:             0.01,
		PoolPages:      256,
		Rounds:         4,
		AckedPerRound:  50,
		TPCCWarehouses: 1,
		TPCCTxns:       300,
	}
}

// KillRecoverRound records one cycle's verification.
type KillRecoverRound struct {
	Round     int
	Kind      string
	Acked     int // acknowledged inserts before the kill, cumulative
	TornBytes int // torn tail carried into the survivor image
	Replayed  engine.RecoveryStats
	// Failures; all zero/false on a correct round.
	QueryMismatches int
	DMLLost         bool // an acked row missing after recovery
	GhostRow        bool // the unacked (errored) op's row resurfaced
	Err             string
}

func (r KillRecoverRound) bad() bool {
	return r.QueryMismatches > 0 || r.DMLLost || r.GhostRow || r.Err != ""
}

// KillRecoverTPCC records the TPC-C phase.
type KillRecoverTPCC struct {
	Txns      int // committed before the kill
	NewOrders int // committed NewOrder transactions (each inserts one order)
	// Violations; all false on a correct run.
	YtdViolation    bool // w_ytd != sum(d_ytd) after recovery
	OrdersViolation bool // committed orders missing or ghosts present
	Err             string
}

// KillRecoverReport is one run's full account.
type KillRecoverReport struct {
	Options KillRecoverOptions
	Rounds  []KillRecoverRound
	TPCC    KillRecoverTPCC
}

// Bad counts broken durability invariants. A clean run has Bad() == 0.
func (r KillRecoverReport) Bad() int {
	n := 0
	for _, rd := range r.Rounds {
		if rd.bad() {
			n++
		}
	}
	if r.TPCC.YtdViolation || r.TPCC.OrdersViolation || r.TPCC.Err != "" {
		n++
	}
	return n
}

func durableConfig(o KillRecoverOptions, dev disk.Device) engine.Config {
	return engine.Config{
		Routines:   core.AllRoutines,
		PoolPages:  o.PoolPages,
		Workers:    o.Workers,
		Disk:       dev,
		Durability: engine.DurabilityConfig{WAL: true},
	}
}

// RunKillRecover executes the kill-and-recover experiment: load TPC-H on
// a durable database, record fault-free baselines, then repeatedly apply
// acknowledged DML, kill at a rotating kill point, recover from the
// survivor disk image, and verify the recovered instance against the
// baselines. A TPC-C phase then does the same with the benchmark's own
// consistency conditions.
func RunKillRecover(o KillRecoverOptions) (KillRecoverReport, error) {
	if o.Rounds < 1 {
		o.Rounds = 1
	}
	if o.PoolPages <= 0 {
		o.PoolPages = 256
	}
	if o.AckedPerRound < 1 {
		o.AckedPerRound = 50
	}
	rng := rand.New(rand.NewSource(o.Seed))
	report := KillRecoverReport{Options: o}

	dm := disk.NewManager(disk.LatencyModel{})
	db, err := tpch.NewDatabase(durableConfig(o, dm), o.SF)
	if err != nil {
		return report, fmt.Errorf("killrecover: tpch load: %w", err)
	}
	if _, err := db.Exec(`create table kr_dml (
		k integer not null,
		v integer not null,
		primary key (k))`); err != nil {
		return report, err
	}

	queries := tpch.Queries()
	nums := o.Queries
	if len(nums) == 0 {
		nums = tpch.QueryNumbers()
	}
	baselines := make(map[int]*engine.Result, len(nums))
	for _, qn := range nums {
		base, err := db.Query(queries[qn])
		if err != nil {
			return report, fmt.Errorf("killrecover: q%d baseline: %w", qn, err)
		}
		baselines[qn] = base
	}

	acked := 0 // rows whose INSERT was acknowledged, cumulative
	var ackedSum int64
	nextKey := 0
	for round := 0; round < o.Rounds; round++ {
		kind := killKinds[round%len(killKinds)]
		rd := KillRecoverRound{Round: round + 1, Kind: kind}

		for i := 0; i < o.AckedPerRound; i++ {
			k := nextKey
			nextKey++
			if _, err := db.Exec(fmt.Sprintf("insert into kr_dml values (%d, %d)", k, k%97)); err != nil {
				rd.Err = fmt.Sprintf("acked insert: %v", err)
				break
			}
			acked++
			ackedSum += int64(k % 97)
		}

		// Kill. ghostKey is an operation issued after arming the kill
		// point: it MUST fail (no ack) and MUST NOT be present after
		// recovery.
		ghostKey := -1
		tear := 0
		if rd.Err == "" {
			switch kind {
			case KillClean:
				db.SimulateCrash()
			case KillMidCommit, KillTornTail:
				db.WALWriter().CrashBeforeNextSync()
				ghostKey = nextKey
				nextKey++
				if _, err := db.Exec(fmt.Sprintf("insert into kr_dml values (%d, 0)", ghostKey)); err == nil {
					rd.Err = "insert acked despite armed mid-commit kill"
				}
				if kind == KillTornTail {
					tear = 1 + rng.Intn(24)
				}
			case KillMidCheckpoint:
				db.WALWriter().CrashBeforeNextSync()
				if err := db.Checkpoint(); err == nil {
					rd.Err = "checkpoint succeeded despite armed kill"
				}
			}
			db.SimulateCrash()
		}
		rd.TornBytes = tear
		rd.Acked = acked

		dm = dm.Crash(tear)
		db, err = engine.Recover(durableConfig(o, dm))
		if err != nil {
			rd.Err = fmt.Sprintf("recover: %v", err)
			report.Rounds = append(report.Rounds, rd)
			return report, fmt.Errorf("killrecover: round %d (%s): recover: %w", rd.Round, kind, err)
		}
		rd.Replayed = db.RecoveryStats()

		// Verify: every TPC-H query matches its pre-kill baseline.
		for _, qn := range nums {
			res, err := db.Query(queries[qn])
			if err != nil {
				rd.Err = fmt.Sprintf("q%d after recovery: %v", qn, err)
				continue
			}
			if !resultsMatch(baselines[qn], res) {
				rd.QueryMismatches++
			}
		}
		// Verify: exactly the acked rows, with their committed values.
		res, err := db.Query("select count(*), sum(v) from kr_dml")
		if err != nil {
			rd.Err = fmt.Sprintf("kr_dml after recovery: %v", err)
		} else if res.Rows[0][0].Int64() != int64(acked) ||
			(acked > 0 && res.Rows[0][1].Int64() != ackedSum) {
			rd.DMLLost = true
		}
		if ghostKey >= 0 {
			g, err := db.Query(fmt.Sprintf("select k from kr_dml where k = %d", ghostKey))
			if err != nil {
				rd.Err = fmt.Sprintf("ghost probe: %v", err)
			} else if len(g.Rows) != 0 {
				rd.GhostRow = true
			}
		}
		report.Rounds = append(report.Rounds, rd)
	}

	if o.TPCCTxns > 0 {
		report.TPCC = runKillRecoverTPCC(o)
	}
	return report, nil
}

// runKillRecoverTPCC loads TPC-C on a durable database, commits a seeded
// stream, kills mid-commit, recovers, and checks the benchmark's
// consistency condition 1 (w_ytd = sum of d_ytd) plus exact durability of
// every acknowledged NewOrder.
func runKillRecoverTPCC(o KillRecoverOptions) KillRecoverTPCC {
	res := KillRecoverTPCC{}
	fail := func(format string, args ...any) KillRecoverTPCC {
		res.Err = fmt.Sprintf(format, args...)
		return res
	}
	if o.TPCCWarehouses < 1 {
		o.TPCCWarehouses = 1
	}
	dm := disk.NewManager(disk.LatencyModel{})
	cfg := tpcc.SmallConfig(o.TPCCWarehouses)
	db, err := tpcc.NewDatabase(durableConfig(o, dm), cfg)
	if err != nil {
		return fail("tpcc load: %v", err)
	}
	baseOrders := intCell(db, "select count(*) from orders")

	drv, err := tpcc.NewDriver(db, cfg, tpcc.DefaultMix, o.Seed+7, nil)
	if err != nil {
		return fail("tpcc driver: %v", err)
	}
	for i := 0; i < o.TPCCTxns; i++ {
		tt, err := drv.RunOne()
		switch {
		case err == nil:
			res.Txns++
			if tt == tpcc.TxnNewOrder {
				res.NewOrders++
			}
		case errors.Is(err, tpcc.ErrRollback):
			// business rollback, not counted
		default:
			return fail("tpcc txn %d: %v", i, err)
		}
	}
	// Mid-commit kill: keep issuing transactions until one fails on the
	// armed kill point; anything acknowledged before that must survive.
	db.WALWriter().CrashBeforeNextSync()
	for i := 0; i < 100; i++ {
		tt, err := drv.RunOne()
		if err != nil {
			if errors.Is(err, tpcc.ErrRollback) {
				continue
			}
			break // the kill landed; this transaction was not acknowledged
		}
		res.Txns++
		if tt == tpcc.TxnNewOrder {
			res.NewOrders++
		}
	}
	db.SimulateCrash()

	rdb, err := engine.Recover(durableConfig(o, dm.Crash(0)))
	if err != nil {
		return fail("recover: %v", err)
	}
	// Consistency condition 1: per warehouse, w_ytd equals the sum of its
	// districts' d_ytd.
	for w := 1; w <= o.TPCCWarehouses; w++ {
		wy, err := rdb.Query(fmt.Sprintf("select w_ytd from warehouse where w_id = %d", w))
		if err != nil || len(wy.Rows) != 1 {
			return fail("w_ytd probe: %v", err)
		}
		dy, err := rdb.Query(fmt.Sprintf("select sum(d_ytd) from district where d_w_id = %d", w))
		if err != nil || len(dy.Rows) != 1 {
			return fail("d_ytd probe: %v", err)
		}
		diff := wy.Rows[0][0].Float64() - dy.Rows[0][0].Float64()
		if diff > 1e-6 || diff < -1e-6 {
			res.YtdViolation = true
		}
	}
	// Every acknowledged NewOrder inserted exactly one order row; the
	// killed transaction must not have.
	if got := intCell(rdb, "select count(*) from orders"); got != baseOrders+int64(res.NewOrders) {
		res.OrdersViolation = true
	}
	return res
}

func intCell(db *engine.DB, q string) int64 {
	r, err := db.Query(q)
	if err != nil || len(r.Rows) != 1 {
		return -1
	}
	return r.Rows[0][0].Int64()
}

// Format renders the kill-and-recover report.
func (r KillRecoverReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Kill-and-recover run (E16): seed=%d sf=%g pool=%d rounds=%d acked/round=%d\n",
		r.Options.Seed, r.Options.SF, r.Options.PoolPages, r.Options.Rounds, r.Options.AckedPerRound)
	fmt.Fprintf(&b, "%-8s %-15s %-7s %-6s %-9s %-9s %-9s %s\n",
		"round", "kill", "acked", "torn", "redone", "discarded", "mismatch", "status")
	for _, rd := range r.Rounds {
		status := "ok"
		switch {
		case rd.Err != "":
			status = "ERROR: " + rd.Err
		case rd.DMLLost:
			status = "ACKED-ROW-LOST"
		case rd.GhostRow:
			status = "GHOST-ROW"
		case rd.QueryMismatches > 0:
			status = "QUERY-MISMATCH"
		}
		fmt.Fprintf(&b, "%-8d %-15s %-7d %-6d %-9d %-9d %-9d %s\n",
			rd.Round, rd.Kind, rd.Acked, rd.TornBytes,
			rd.Replayed.RedoInserts, rd.Replayed.Discarded, rd.QueryMismatches, status)
	}
	if r.TPCC.Txns > 0 || r.TPCC.Err != "" {
		status := "ok"
		switch {
		case r.TPCC.Err != "":
			status = "ERROR: " + r.TPCC.Err
		case r.TPCC.YtdViolation:
			status = "YTD-VIOLATION"
		case r.TPCC.OrdersViolation:
			status = "ORDERS-VIOLATION"
		}
		fmt.Fprintf(&b, "tpcc: %d committed (%d new orders), mid-commit kill, %s\n",
			r.TPCC.Txns, r.TPCC.NewOrders, status)
	}
	if bad := r.Bad(); bad > 0 {
		fmt.Fprintf(&b, "RESULT: BAD — %d rounds broke durability invariants\n", bad)
	} else {
		b.WriteString("RESULT: clean — every recovery replayed to the acknowledged, baseline-equal state\n")
	}
	return b.String()
}
