package types

import (
	"fmt"
	"time"
)

// Dates are stored as signed day counts since 1970-01-01 (the Unix epoch),
// which keeps DATE a 4-byte pass-by-value type exactly like PostgreSQL's
// (PostgreSQL uses a 2000-01-01 epoch; the offset is irrelevant to layout).

// unixEpoch is the civil anchor for day counts.
var unixEpoch = time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)

// ParseDate parses a 'YYYY-MM-DD' literal into a day count.
func ParseDate(s string) (int32, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("invalid date literal %q: %w", s, err)
	}
	return int32(t.Sub(unixEpoch).Hours() / 24), nil
}

// MustParseDate is ParseDate for literals known to be valid (tests, query
// templates); it panics on error.
func MustParseDate(s string) int32 {
	d, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return d
}

// FormatDate renders a day count as 'YYYY-MM-DD'.
func FormatDate(days int32) string {
	return unixEpoch.AddDate(0, 0, int(days)).Format("2006-01-02")
}

// DateYear returns the calendar year of a day count (SQL EXTRACT(YEAR ...)).
func DateYear(days int32) int {
	return unixEpoch.AddDate(0, 0, int(days)).Year()
}

// DateYMD builds a day count from calendar components.
func DateYMD(year, month, day int) int32 {
	t := time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC)
	return int32(t.Sub(unixEpoch).Hours() / 24)
}

// Interval is a calendar interval: a month part and a day part, the two
// units TPC-H query templates use ("interval '3' month", "interval '90'
// day"). Months and days do not commute, so both are kept.
type Interval struct {
	Months int
	Days   int
}

// AddInterval advances a day count by an interval using civil-calendar
// month arithmetic (matching SQL date + interval semantics).
func AddInterval(days int32, iv Interval) int32 {
	t := unixEpoch.AddDate(0, 0, int(days))
	t = t.AddDate(0, iv.Months, iv.Days)
	return int32(t.Sub(unixEpoch).Hours() / 24)
}

// SubInterval retreats a day count by an interval.
func SubInterval(days int32, iv Interval) int32 {
	return AddInterval(days, Interval{Months: -iv.Months, Days: -iv.Days})
}
