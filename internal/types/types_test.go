package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTypeStorageProperties(t *testing.T) {
	cases := []struct {
		typ     T
		len     int
		align   int
		byValue bool
	}{
		{Int32, 4, 4, true},
		{Int64, 8, 8, true},
		{Float64, 8, 8, true},
		{Bool, 1, 1, true},
		{Date, 4, 4, true},
		{Char(1), 1, 1, false},
		{Char(15), 15, 1, false},
		{Varchar(44), -1, 4, false},
	}
	for _, c := range cases {
		if got := c.typ.Len(); got != c.len {
			t.Errorf("%s: Len=%d, want %d", c.typ, got, c.len)
		}
		if got := c.typ.Align(); got != c.align {
			t.Errorf("%s: Align=%d, want %d", c.typ, got, c.align)
		}
		if got := c.typ.ByValue(); got != c.byValue {
			t.Errorf("%s: ByValue=%v, want %v", c.typ, got, c.byValue)
		}
	}
	if Varchar(10).FixedLen() {
		t.Error("varchar must not be fixed-length")
	}
	if !Char(10).FixedLen() {
		t.Error("char must be fixed-length")
	}
}

func TestDatumRoundTrip(t *testing.T) {
	if d := NewInt32(-7); d.Int32() != -7 || d.Kind() != KindInt32 {
		t.Errorf("int32 round trip: %v", d)
	}
	if d := NewInt64(1 << 40); d.Int64() != 1<<40 {
		t.Errorf("int64 round trip: %v", d)
	}
	if d := NewFloat64(3.25); d.Float64() != 3.25 {
		t.Errorf("float round trip: %v", d)
	}
	if d := NewFloat64(math.Copysign(0, -1)); !math.Signbit(d.Float64()) {
		t.Errorf("negative zero lost")
	}
	if d := NewBool(true); !d.Bool() {
		t.Errorf("bool round trip")
	}
	if d := NewString("hello"); d.Str() != "hello" {
		t.Errorf("string round trip: %q", d.Str())
	}
	if d := NewChar("ab  "); d.Str() != "ab" {
		t.Errorf("char should trim padding in Str: %q", d.Str())
	}
	if !Null.IsNull() {
		t.Error("Null must be null")
	}
	if NewInt32(0).IsNull() {
		t.Error("zero int is not null")
	}
}

func TestDatumCompare(t *testing.T) {
	cases := []struct {
		a, b Datum
		want int
	}{
		{NewInt32(1), NewInt32(2), -1},
		{NewInt32(2), NewInt32(2), 0},
		{NewInt64(3), NewInt32(2), 1},
		{NewFloat64(1.5), NewInt32(2), -1},
		{NewInt32(2), NewFloat64(1.5), 1},
		{NewFloat64(2), NewFloat64(2), 0},
		{NewDate(100), NewDate(99), 1},
		{NewString("abc"), NewString("abd"), -1},
		{NewChar("ab   "), NewString("ab"), 0},
		{NewString("ab"), NewChar("ab "), 0},
		{NewBool(false), NewBool(true), -1},
	}
	for i, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("case %d: Compare(%v,%v)=%d, want %d", i, c.a, c.b, got, c.want)
		}
	}
}

func TestDatumHashConsistentWithEqual(t *testing.T) {
	if NewChar("M  ").Hash() != NewString("M").Hash() {
		t.Error("char padding must not affect hash")
	}
	if NewInt32(42).Hash() != NewInt32(42).Hash() {
		t.Error("equal ints must hash equal")
	}
	if NewInt32(42).Hash() == NewInt32(43).Hash() {
		t.Error("suspicious collision on adjacent ints")
	}
	err := quick.Check(func(a, b int64) bool {
		da, db := NewInt64(a), NewInt64(b)
		if a == b {
			return da.Hash() == db.Hash()
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	err := quick.Check(func(a, b int64) bool {
		da, db := NewInt64(a), NewInt64(b)
		return da.Compare(db) == -db.Compare(da)
	}, nil)
	if err != nil {
		t.Error(err)
	}
	err = quick.Check(func(a, b string) bool {
		da, db := NewString(a), NewString(b)
		return da.Compare(db) == -db.Compare(da)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestDateMath(t *testing.T) {
	d := MustParseDate("1998-12-01")
	if FormatDate(d) != "1998-12-01" {
		t.Errorf("round trip: %s", FormatDate(d))
	}
	if got := FormatDate(SubInterval(d, Interval{Days: 90})); got != "1998-09-02" {
		t.Errorf("1998-12-01 - 90 days = %s, want 1998-09-02", got)
	}
	if got := FormatDate(AddInterval(MustParseDate("1996-01-01"), Interval{Months: 3})); got != "1996-04-01" {
		t.Errorf("+3 months = %s", got)
	}
	if y := DateYear(MustParseDate("1995-06-17")); y != 1995 {
		t.Errorf("year = %d", y)
	}
	if DateYMD(1970, 1, 1) != 0 {
		t.Errorf("epoch must be day 0")
	}
	if DateYMD(1970, 1, 2) != 1 {
		t.Errorf("day after epoch must be 1")
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("want error for bad literal")
	}
	// Property: adding then subtracting the same day interval is identity.
	err := quick.Check(func(days int32, n uint8) bool {
		iv := Interval{Days: int(n)}
		base := days % 100000
		return SubInterval(AddInterval(base, iv), iv) == base
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestDatumString(t *testing.T) {
	if s := NewDate(MustParseDate("1994-02-11")).String(); s != "1994-02-11" {
		t.Errorf("date string: %s", s)
	}
	if s := Null.String(); s != "NULL" {
		t.Errorf("null string: %s", s)
	}
	if s := NewFloat64(1.5).String(); s != "1.50" {
		t.Errorf("float string: %s", s)
	}
}

func TestKindStrings(t *testing.T) {
	checks := map[Kind]string{
		KindInt32: "integer", KindInt64: "bigint", KindFloat64: "double",
		KindBool: "boolean", KindDate: "date", KindChar: "char",
		KindVarchar: "varchar", KindInvalid: "invalid",
	}
	for k, want := range checks {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if Char(12).String() != "char(12)" || Varchar(3).String() != "varchar(3)" {
		t.Error("parameterized type strings")
	}
	if Int64.String() != "bigint" {
		t.Error("plain type string")
	}
}

func TestNumericAndInvalidLenAlign(t *testing.T) {
	if !Int32.Numeric() || !Float64.Numeric() || Date.Numeric() || Char(2).Numeric() {
		t.Error("Numeric classification")
	}
	bad := T{}
	if bad.Len() != 0 || bad.Align() != 1 {
		t.Errorf("invalid type storage: len=%d align=%d", bad.Len(), bad.Align())
	}
}

func TestEqualAndBoolString(t *testing.T) {
	if !NewInt32(3).Equal(NewInt32(3)) || NewInt32(3).Equal(NewInt32(4)) {
		t.Error("Equal")
	}
	if Null.Equal(Null) {
		t.Error("NULL never equals NULL")
	}
	if NewBool(true).String() != "true" || NewBool(false).String() != "false" {
		t.Error("bool strings")
	}
	if NewInt64(9).AsNum() != 9.0 {
		t.Error("AsNum")
	}
}
