package types

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Datum is a single runtime value. It is a compact tagged union: numeric
// kinds live in I (float64 values as math.Float64bits), character kinds
// live in B. A Datum is the Go analogue of PostgreSQL's Datum long-integer
// slot that slot_deform_tuple fills ("extracts values from a stored tuple
// into an array of long integers").
//
// The zero Datum is SQL NULL.
type Datum struct {
	B    []byte
	I    int64
	kind Kind
}

// Null is the SQL NULL datum (the zero Datum).
var Null = Datum{}

// NewInt32 returns an INTEGER datum.
func NewInt32(v int32) Datum { return Datum{I: int64(v), kind: KindInt32} }

// NewInt64 returns a BIGINT datum.
func NewInt64(v int64) Datum { return Datum{I: v, kind: KindInt64} }

// NewFloat64 returns a DOUBLE datum.
func NewFloat64(v float64) Datum {
	return Datum{I: int64(math.Float64bits(v)), kind: KindFloat64}
}

// NewBool returns a BOOLEAN datum.
func NewBool(v bool) Datum {
	var i int64
	if v {
		i = 1
	}
	return Datum{I: i, kind: KindBool}
}

// NewDate returns a DATE datum from a day count since 1970-01-01.
func NewDate(days int32) Datum { return Datum{I: int64(days), kind: KindDate} }

// MakeNumeric builds a by-value datum from its raw 8-byte representation
// and kind (for KindFloat64, raw is the IEEE-754 bit pattern). It is the
// constructor the bee routines' pre-compiled snippets use to materialize
// values without per-kind dispatch.
func MakeNumeric(raw int64, k Kind) Datum { return Datum{I: raw, kind: k} }

// NewBytes returns a character datum sharing the given byte slice.
// The caller must not mutate b afterwards.
func NewBytes(b []byte, k Kind) Datum { return Datum{B: b, kind: k} }

// NewString returns a VARCHAR datum holding s.
func NewString(s string) Datum { return Datum{B: []byte(s), kind: KindVarchar} }

// NewChar returns a CHAR datum holding s (caller pads as needed).
func NewChar(s string) Datum { return Datum{B: []byte(s), kind: KindChar} }

// IsNull reports whether the datum is SQL NULL.
func (d Datum) IsNull() bool { return d.kind == KindInvalid }

// Kind returns the runtime kind, or KindInvalid for NULL.
func (d Datum) Kind() Kind { return d.kind }

// Int64 returns the integer value of an integral or date datum.
func (d Datum) Int64() int64 { return d.I }

// Int32 returns the value of an INTEGER datum.
func (d Datum) Int32() int32 { return int32(d.I) }

// Float64 returns the value of a DOUBLE datum, or the widened value of an
// integral datum.
func (d Datum) Float64() float64 {
	switch d.kind {
	case KindFloat64:
		return math.Float64frombits(uint64(d.I))
	default:
		return float64(d.I)
	}
}

// Bool returns the value of a BOOLEAN datum.
func (d Datum) Bool() bool { return d.I != 0 }

// DateDays returns the day count of a DATE datum.
func (d Datum) DateDays() int32 { return int32(d.I) }

// Bytes returns the payload of a character datum.
func (d Datum) Bytes() []byte { return d.B }

// Str returns the payload of a character datum as a string, with CHAR
// blank padding trimmed (SQL comparison semantics for CHAR ignore
// trailing blanks).
func (d Datum) Str() string {
	if d.kind == KindChar {
		return strings.TrimRight(string(d.B), " ")
	}
	return string(d.B)
}

// AsNum returns the datum coerced to float64 for mixed-type arithmetic.
func (d Datum) AsNum() float64 { return d.Float64() }

// Compare orders two non-null datums of compatible kinds. Integral kinds
// and dates compare numerically with each other; floats compare
// numerically with any numeric; character kinds compare bytewise with CHAR
// padding trimmed. It returns -1, 0, or +1.
func (d Datum) Compare(o Datum) int {
	switch d.kind {
	case KindFloat64:
		return cmpFloat(d.Float64(), o.Float64())
	case KindInt32, KindInt64, KindDate, KindBool:
		if o.kind == KindFloat64 {
			return cmpFloat(d.Float64(), o.Float64())
		}
		switch {
		case d.I < o.I:
			return -1
		case d.I > o.I:
			return 1
		default:
			return 0
		}
	case KindChar, KindVarchar:
		a, b := d.B, o.B
		if d.kind == KindChar {
			a = trimRightSpace(a)
		}
		if o.kind == KindChar {
			b = trimRightSpace(b)
		}
		return bytes.Compare(a, b)
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func trimRightSpace(b []byte) []byte {
	n := len(b)
	for n > 0 && b[n-1] == ' ' {
		n--
	}
	return b[:n]
}

// Equal reports whether two non-null datums compare equal.
func (d Datum) Equal(o Datum) bool {
	if d.IsNull() || o.IsNull() {
		return false
	}
	return d.Compare(o) == 0
}

// Hash returns a 64-bit hash of the datum, consistent with Equal for
// same-kind datums (used by hash joins and hash aggregation).
func (d Datum) Hash() uint64 {
	if d.IsNull() {
		return 0x9e3779b97f4a7c15
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	switch d.kind {
	case KindChar, KindVarchar:
		b := d.B
		if d.kind == KindChar {
			b = trimRightSpace(b)
		}
		for _, c := range b {
			h ^= uint64(c)
			h *= prime64
		}
	default:
		v := uint64(d.I)
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	return h
}

// String formats the datum for result output.
func (d Datum) String() string {
	if d.IsNull() {
		return "NULL"
	}
	switch d.kind {
	case KindInt32, KindInt64:
		return strconv.FormatInt(d.I, 10)
	case KindFloat64:
		return strconv.FormatFloat(d.Float64(), 'f', 2, 64)
	case KindBool:
		if d.I != 0 {
			return "true"
		}
		return "false"
	case KindDate:
		return FormatDate(int32(d.I))
	case KindChar, KindVarchar:
		return d.Str()
	default:
		return fmt.Sprintf("datum(kind=%d)", d.kind)
	}
}
