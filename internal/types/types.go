// Package types defines the value domain of the engine: SQL column types,
// runtime datums, comparison, hashing, and date/interval arithmetic.
//
// The storage-relevant properties of each type (fixed length, alignment)
// mirror PostgreSQL's pg_attribute fields attlen and attalign, because the
// paper's central case study (the slot_deform_tuple function) branches on
// exactly those properties per attribute. Fixed-length types have Len > 0;
// variable-length ("varlena") types have Len == -1 and are stored with a
// 4-byte length prefix aligned to 4 bytes.
package types

import "fmt"

// Kind enumerates the runtime representation classes of a datum.
type Kind uint8

const (
	// KindInvalid is the zero Kind; it never describes a real column.
	KindInvalid Kind = iota
	// KindInt32 is a 4-byte signed integer (SQL INTEGER).
	KindInt32
	// KindInt64 is an 8-byte signed integer (SQL BIGINT).
	KindInt64
	// KindFloat64 is an 8-byte IEEE-754 double (SQL DOUBLE PRECISION and,
	// in this engine, DECIMAL — see DESIGN.md "Known deviations").
	KindFloat64
	// KindBool is a 1-byte boolean.
	KindBool
	// KindDate is a 4-byte day count since 1970-01-01 (SQL DATE).
	KindDate
	// KindChar is a fixed-length byte string, blank-padded (SQL CHAR(n)).
	KindChar
	// KindVarchar is a variable-length byte string (SQL VARCHAR(n)).
	KindVarchar
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt32:
		return "integer"
	case KindInt64:
		return "bigint"
	case KindFloat64:
		return "double"
	case KindBool:
		return "boolean"
	case KindDate:
		return "date"
	case KindChar:
		return "char"
	case KindVarchar:
		return "varchar"
	default:
		return "invalid"
	}
}

// T is a complete column type: a kind plus, for character types, a width.
type T struct {
	Kind  Kind
	Width int // declared width for CHAR(n)/VARCHAR(n); 0 otherwise
}

// Convenience constructors for the fixed catalog of types the engine uses.
var (
	Int32   = T{Kind: KindInt32}
	Int64   = T{Kind: KindInt64}
	Float64 = T{Kind: KindFloat64}
	Bool    = T{Kind: KindBool}
	Date    = T{Kind: KindDate}
)

// Char returns the CHAR(n) type.
func Char(n int) T { return T{Kind: KindChar, Width: n} }

// Varchar returns the VARCHAR(n) type.
func Varchar(n int) T { return T{Kind: KindVarchar, Width: n} }

// Len returns the on-page storage length in bytes, or -1 for
// variable-length types (the varlena convention; compare attlen == -1 in
// Listing 1 of the paper).
func (t T) Len() int {
	switch t.Kind {
	case KindInt32, KindDate:
		return 4
	case KindInt64, KindFloat64:
		return 8
	case KindBool:
		return 1
	case KindChar:
		return t.Width
	case KindVarchar:
		return -1
	default:
		return 0
	}
}

// Align returns the required storage alignment in bytes (attalign).
// Varlena values are aligned to 4 because of their 4-byte length prefix.
func (t T) Align() int {
	switch t.Kind {
	case KindInt32, KindDate, KindVarchar:
		return 4
	case KindInt64, KindFloat64:
		return 8
	case KindBool, KindChar:
		return 1
	default:
		return 1
	}
}

// FixedLen reports whether the type has a schema-constant storage length.
func (t T) FixedLen() bool { return t.Kind != KindVarchar }

// ByValue reports whether the datum is passed by value (numeric kinds) as
// opposed to by reference into the tuple buffer (character kinds). This is
// PostgreSQL's attbyval distinction, which selects the fetch snippet used
// by both the generic deform loop and the GCL bee routine.
func (t T) ByValue() bool {
	switch t.Kind {
	case KindChar, KindVarchar:
		return false
	default:
		return true
	}
}

// Numeric reports whether the type participates in arithmetic.
func (t T) Numeric() bool {
	switch t.Kind {
	case KindInt32, KindInt64, KindFloat64:
		return true
	default:
		return false
	}
}

// String renders the type as SQL, e.g. "varchar(44)".
func (t T) String() string {
	switch t.Kind {
	case KindChar:
		return fmt.Sprintf("char(%d)", t.Width)
	case KindVarchar:
		return fmt.Sprintf("varchar(%d)", t.Width)
	default:
		return t.Kind.String()
	}
}
