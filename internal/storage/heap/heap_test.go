package heap

import (
	"bytes"
	"fmt"
	"testing"

	"microspec/internal/catalog"
	"microspec/internal/storage/buffer"
	"microspec/internal/storage/disk"
	"microspec/internal/types"
)

func newHeap(t testing.TB, poolPages int) *Heap {
	t.Helper()
	m := disk.NewManager(disk.LatencyModel{})
	pool := buffer.New(m, poolPages)
	c := catalog.New()
	rel, err := c.CreateRelation("t", catalog.Schema{Attrs: []catalog.Attribute{
		catalog.Col("a", types.Int32, true),
	}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return Create(m, pool, rel)
}

func tupleOf(s string) []byte { return []byte(s) }

func TestInsertGet(t *testing.T) {
	h := newHeap(t, 8)
	tid, err := h.Insert(tupleOf("tuple-one"), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, release, err := h.Get(tid, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "tuple-one" {
		t.Errorf("got %q", got)
	}
	release()
	if h.LiveTuples() != 1 {
		t.Errorf("live = %d", h.LiveTuples())
	}
	if tid.String() != "(0,0)" {
		t.Errorf("tid = %s", tid)
	}
}

func TestInsertSpillsToNewPages(t *testing.T) {
	h := newHeap(t, 8)
	big := bytes.Repeat([]byte{0xEE}, 3000)
	var tids []TID
	for i := 0; i < 5; i++ {
		tid, err := h.Insert(big, nil)
		if err != nil {
			t.Fatal(err)
		}
		tids = append(tids, tid)
	}
	if h.NumPages() < 2 {
		t.Errorf("expected multiple pages, got %d", h.NumPages())
	}
	for _, tid := range tids {
		got, release, err := h.Get(tid, nil)
		if err != nil || len(got) != 3000 {
			t.Errorf("get %s: len=%d err=%v", tid, len(got), err)
		}
		if err == nil {
			release()
		}
	}
}

func TestOversizeTupleRejected(t *testing.T) {
	h := newHeap(t, 4)
	if _, err := h.Insert(make([]byte, disk.PageSize), nil); err == nil {
		t.Error("oversize insert must fail")
	}
}

func TestDeleteAndUndo(t *testing.T) {
	h := newHeap(t, 8)
	tid, _ := h.Insert(tupleOf("victim"), nil)
	undo, err := h.Delete(tid, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.Get(tid, nil); err == nil {
		t.Error("get after delete must fail")
	}
	if h.LiveTuples() != 0 {
		t.Errorf("live = %d", h.LiveTuples())
	}
	if err := undo(); err != nil {
		t.Fatal(err)
	}
	got, release, err := h.Get(tid, nil)
	if err != nil || string(got) != "victim" {
		t.Errorf("after undo: %q %v", got, err)
	}
	if err == nil {
		release()
	}
	if h.LiveTuples() != 1 {
		t.Errorf("live after undo = %d", h.LiveTuples())
	}
}

func TestUpdateInPlace(t *testing.T) {
	h := newHeap(t, 8)
	tid, _ := h.Insert(tupleOf("aaaa"), nil)
	newTID, undo, err := h.Update(tid, tupleOf("bbbb"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if newTID != tid {
		t.Error("same-length update must keep TID")
	}
	got, release, _ := h.Get(tid, nil)
	if string(got) != "bbbb" {
		t.Errorf("updated = %q", got)
	}
	release()
	if err := undo(); err != nil {
		t.Fatal(err)
	}
	got, release, _ = h.Get(tid, nil)
	if string(got) != "aaaa" {
		t.Errorf("after undo = %q", got)
	}
	release()
}

func TestUpdateMoving(t *testing.T) {
	h := newHeap(t, 8)
	tid, _ := h.Insert(tupleOf("short"), nil)
	newTID, undo, err := h.Update(tid, tupleOf("much longer tuple"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if newTID == tid {
		t.Error("length-changing update must move the tuple")
	}
	got, release, _ := h.Get(newTID, nil)
	if string(got) != "much longer tuple" {
		t.Errorf("moved tuple = %q", got)
	}
	release()
	if _, _, err := h.Get(tid, nil); err == nil {
		t.Error("old TID must be dead")
	}
	if err := undo(); err != nil {
		t.Fatal(err)
	}
	got, release, _ = h.Get(tid, nil)
	if string(got) != "short" {
		t.Errorf("after undo = %q", got)
	}
	release()
	if h.LiveTuples() != 1 {
		t.Errorf("live after undo = %d", h.LiveTuples())
	}
}

func TestScan(t *testing.T) {
	h := newHeap(t, 8)
	const n = 500
	for i := 0; i < n; i++ {
		if _, err := h.Insert(tupleOf(fmt.Sprintf("tuple-%04d-padding-padding", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Delete every 10th.
	sc := h.Scan(nil)
	var toDelete []TID
	i := 0
	for {
		tid, _, ok := sc.Next()
		if !ok {
			break
		}
		if i%10 == 0 {
			toDelete = append(toDelete, tid)
		}
		i++
	}
	sc.Close()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("scanned %d, want %d", i, n)
	}
	for _, tid := range toDelete {
		if _, err := h.Delete(tid, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Rescan sees only live tuples, in order.
	sc = h.Scan(nil)
	count := 0
	for {
		_, b, ok := sc.Next()
		if !ok {
			break
		}
		if !bytes.HasPrefix(b, []byte("tuple-")) {
			t.Fatalf("bad tuple %q", b)
		}
		count++
	}
	sc.Close()
	if count != n-len(toDelete) {
		t.Errorf("live scan = %d, want %d", count, n-len(toDelete))
	}
}

func TestScanWithTinyPool(t *testing.T) {
	// The scan must work even when the pool is smaller than the heap.
	h := newHeap(t, 2)
	big := bytes.Repeat([]byte{1}, 2000)
	for i := 0; i < 20; i++ {
		if _, err := h.Insert(big, nil); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumPages() < 5 {
		t.Fatalf("pages = %d", h.NumPages())
	}
	sc := h.Scan(nil)
	count := 0
	for {
		_, _, ok := sc.Next()
		if !ok {
			break
		}
		count++
	}
	sc.Close()
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if count != 20 {
		t.Errorf("scanned %d", count)
	}
}

func TestScannerCloseIdempotent(t *testing.T) {
	h := newHeap(t, 4)
	h.Insert(tupleOf("x"), nil)
	sc := h.Scan(nil)
	sc.Next()
	sc.Close()
	sc.Close()
	if _, _, ok := sc.Next(); ok {
		t.Error("Next after Close must return false")
	}
}
