package heap

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"microspec/internal/catalog"
	"microspec/internal/storage/buffer"
	"microspec/internal/storage/disk"
	"microspec/internal/storage/page"
	"microspec/internal/storage/wal"
	"microspec/internal/txn"
	"microspec/internal/types"
)

func newHeap(t testing.TB, poolPages int) (*Heap, *txn.Manager) {
	t.Helper()
	m := disk.NewManager(disk.LatencyModel{})
	pool := buffer.New(m, poolPages)
	c := catalog.New()
	rel, err := c.CreateRelation("t", catalog.Schema{Attrs: []catalog.Attribute{
		catalog.Col("a", types.Int32, true),
	}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tm := txn.NewManager()
	return Create(m, pool, rel, tm), tm
}

func tupleOf(s string) []byte { return []byte(s) }

// commitInsert inserts under a fresh committed transaction.
func commitInsert(t testing.TB, h *Heap, tm *txn.Manager, tup []byte) TID {
	t.Helper()
	id := tm.Begin()
	tid, err := h.Insert(tup, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	tm.Commit(id)
	return tid
}

func TestInsertGet(t *testing.T) {
	h, tm := newHeap(t, 8)
	tid := commitInsert(t, h, tm, tupleOf("tuple-one"))
	s := tm.Snapshot(txn.None)
	defer s.Release()
	got, release, ok, err := h.Get(tid, s, nil)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if string(got) != "tuple-one" {
		t.Errorf("got %q", got)
	}
	release()
	if h.LiveTuples() != 1 {
		t.Errorf("live = %d", h.LiveTuples())
	}
	if tid.String() != "(0,0)" {
		t.Errorf("tid = %s", tid)
	}
}

func TestInsertSpillsToNewPages(t *testing.T) {
	h, tm := newHeap(t, 8)
	big := bytes.Repeat([]byte{0xEE}, 3000)
	var tids []TID
	for i := 0; i < 5; i++ {
		tids = append(tids, commitInsert(t, h, tm, big))
	}
	if h.NumPages() < 2 {
		t.Errorf("expected multiple pages, got %d", h.NumPages())
	}
	for _, tid := range tids {
		got, release, ok, err := h.Get(tid, nil, nil)
		if err != nil || !ok || len(got) != 3000 {
			t.Errorf("get %s: len=%d ok=%v err=%v", tid, len(got), ok, err)
		}
		if ok {
			release()
		}
	}
}

func TestOversizeTupleRejected(t *testing.T) {
	h, _ := newHeap(t, 4)
	if _, err := h.Insert(make([]byte, disk.PageSize), txn.Frozen, nil); err == nil {
		t.Error("oversize insert must fail")
	}
}

func TestDeleteAndUndo(t *testing.T) {
	h, tm := newHeap(t, 8)
	tid := commitInsert(t, h, tm, tupleOf("victim"))
	del := tm.Begin()
	if err := h.MarkDeleted(tid, del, nil); err != nil {
		t.Fatal(err)
	}
	// The deleter's own snapshot no longer sees the row.
	sd := tm.Snapshot(del)
	if _, _, ok, _ := h.Get(tid, sd, nil); ok {
		t.Error("deleter still sees the row")
	}
	sd.Release()
	// A concurrent snapshot still does (the delete is uncommitted).
	s := tm.Snapshot(txn.None)
	if _, _, ok, _ := h.Get(tid, s, nil); !ok {
		t.Error("uncommitted delete hid the row from others")
	}
	s.Release()
	if h.LiveTuples() != 0 {
		t.Errorf("live = %d", h.LiveTuples())
	}
	// Roll back: the stamp clears and the row is live again.
	if err := h.UnmarkDeleted(tid, del); err != nil {
		t.Fatal(err)
	}
	tm.Abort(del)
	s2 := tm.Snapshot(txn.None)
	got, release, ok, err := h.Get(tid, s2, nil)
	if err != nil || !ok || string(got) != "victim" {
		t.Errorf("after undo: %q ok=%v err=%v", got, ok, err)
	}
	if ok {
		release()
	}
	s2.Release()
	if h.LiveTuples() != 1 {
		t.Errorf("live after undo = %d", h.LiveTuples())
	}
}

func TestWriteWriteConflict(t *testing.T) {
	h, tm := newHeap(t, 8)
	tid := commitInsert(t, h, tm, tupleOf("contested"))
	first := tm.Begin()
	second := tm.Begin()
	if err := h.MarkDeleted(tid, first, nil); err != nil {
		t.Fatal(err)
	}
	err := h.MarkDeleted(tid, second, nil)
	if !errors.Is(err, txn.ErrWriteConflict) {
		t.Fatalf("second updater got %v, want ErrWriteConflict", err)
	}
	var ce *txn.ConflictError
	if !errors.As(err, &ce) || ce.Theirs != first || ce.Mine != second {
		t.Fatalf("conflict detail %+v", ce)
	}
	// After the first updater aborts and undoes, the second succeeds.
	if err := h.UnmarkDeleted(tid, first); err != nil {
		t.Fatal(err)
	}
	tm.Abort(first)
	if err := h.MarkDeleted(tid, second, nil); err != nil {
		t.Fatalf("retry after abort: %v", err)
	}
	tm.Commit(second)
}

func TestConflictStampTakeoverAfterAbort(t *testing.T) {
	// An aborted deleter whose undo never ran must not block later
	// updaters: MarkDeleted takes the stale stamp over.
	h, tm := newHeap(t, 8)
	tid := commitInsert(t, h, tm, tupleOf("stale-stamp"))
	sloppy := tm.Begin()
	if err := h.MarkDeleted(tid, sloppy, nil); err != nil {
		t.Fatal(err)
	}
	tm.Abort(sloppy) // no UnmarkDeleted
	winner := tm.Begin()
	if err := h.MarkDeleted(tid, winner, nil); err != nil {
		t.Fatalf("takeover failed: %v", err)
	}
	tm.Commit(winner)
}

func TestSnapshotScanIsolation(t *testing.T) {
	h, tm := newHeap(t, 8)
	for i := 0; i < 100; i++ {
		commitInsert(t, h, tm, tupleOf(fmt.Sprintf("row-%03d-padding-padding", i)))
	}
	old := tm.Snapshot(txn.None)
	defer old.Release()

	// A later transaction deletes half the rows and inserts new ones.
	w := tm.Begin()
	sc := h.Scan(nil, nil)
	var victims []TID
	i := 0
	for {
		tid, _, ok := sc.Next()
		if !ok {
			break
		}
		if i%2 == 0 {
			victims = append(victims, tid)
		}
		i++
	}
	sc.Close()
	for _, tid := range victims {
		if err := h.MarkDeleted(tid, w, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		if _, err := h.Insert(tupleOf(fmt.Sprintf("new-%03d-padding-padding", i)), w, nil); err != nil {
			t.Fatal(err)
		}
	}
	tm.Commit(w)

	// The old snapshot still sees exactly the original 100 rows.
	count := 0
	sc = h.Scan(old, nil)
	for {
		_, b, ok := sc.Next()
		if !ok {
			break
		}
		if !bytes.HasPrefix(b, []byte("row-")) {
			t.Fatalf("old snapshot saw new row %q", b)
		}
		count++
	}
	sc.Close()
	if count != 100 {
		t.Fatalf("old snapshot scanned %d rows, want 100", count)
	}

	// A fresh snapshot sees 50 survivors + 30 new rows.
	fresh := tm.Snapshot(txn.None)
	defer fresh.Release()
	count = 0
	sc = h.Scan(fresh, nil)
	for {
		_, _, ok := sc.Next()
		if !ok {
			break
		}
		count++
	}
	sc.Close()
	if count != 80 {
		t.Fatalf("fresh snapshot scanned %d rows, want 80", count)
	}
}

func TestNextPageVisibilityFiltering(t *testing.T) {
	h, tm := newHeap(t, 8)
	for i := 0; i < 200; i++ {
		commitInsert(t, h, tm, tupleOf(fmt.Sprintf("batch-%04d-padding-padding-padding", i)))
	}
	w := tm.Begin()
	sc := h.Scan(nil, nil)
	n := 0
	for {
		tid, _, ok := sc.Next()
		if !ok {
			break
		}
		if n%3 == 0 {
			if err := h.MarkDeleted(tid, w, nil); err != nil {
				t.Fatal(err)
			}
		}
		n++
	}
	sc.Close()
	tm.Commit(w)

	fresh := tm.Snapshot(txn.None)
	defer fresh.Release()
	got := 0
	sc = h.Scan(fresh, nil)
	var buf [][]byte
	for {
		tups, _, ok := sc.NextPage(buf)
		if !ok {
			break
		}
		got += len(tups)
		buf = tups
	}
	sc.Close()
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	want := 200 - (200+2)/3
	if got != want {
		t.Fatalf("NextPage saw %d rows, want %d", got, want)
	}
}

func TestVacuumReclaimsDeadVersions(t *testing.T) {
	h, tm := newHeap(t, 8)
	var tids []TID
	for i := 0; i < 50; i++ {
		tids = append(tids, commitInsert(t, h, tm, tupleOf(fmt.Sprintf("v-%03d-padding", i))))
	}
	w := tm.Begin()
	for _, tid := range tids[:20] {
		if err := h.MarkDeleted(tid, w, nil); err != nil {
			t.Fatal(err)
		}
	}
	tm.Commit(w)
	// An aborted insert is reclaimable too.
	ab := tm.Begin()
	abTID, err := h.Insert(tupleOf("aborted-insert"), ab, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.MarkDeleted(abTID, ab, nil); err != nil { // abort undo stamps own xmax
		t.Fatal(err)
	}
	tm.Abort(ab)

	if h.DeadVersions() == 0 {
		t.Fatal("no dead versions recorded")
	}
	var collected []TID
	reclaimed, err := h.Vacuum(tm.Horizon(), nil, func(tid TID, tup []byte) {
		collected = append(collected, tid)
		if len(tup) == 0 {
			t.Error("vacuum collected empty tuple bytes")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != 21 || len(collected) != 21 {
		t.Fatalf("reclaimed %d (collected %d), want 21", reclaimed, len(collected))
	}
	// Reclaimed TIDs now read as gone even for latest-committed readers.
	for _, tid := range tids[:20] {
		if _, _, ok, _ := h.Get(tid, nil, nil); ok {
			t.Fatalf("tid %s still readable after vacuum", tid)
		}
	}
	// Survivors are intact.
	fresh := tm.Snapshot(txn.None)
	defer fresh.Release()
	count := 0
	sc := h.Scan(fresh, nil)
	for {
		_, _, ok := sc.Next()
		if !ok {
			break
		}
		count++
	}
	sc.Close()
	if count != 30 {
		t.Fatalf("post-vacuum scan = %d, want 30", count)
	}
}

// TestVacuumStampsPageLSN: vacuum's physical reclaim is justified by the
// victims' delete/commit records, so it must advance the page LSN past
// them — otherwise WAL-before-data would let a post-vacuum flush persist
// the reclaimed image while the deleter's commit record is still
// volatile, and a crash would lose a durably acknowledged insert.
func TestVacuumStampsPageLSN(t *testing.T) {
	m := disk.NewManager(disk.LatencyModel{})
	pool := buffer.New(m, 8)
	c := catalog.New()
	rel, err := c.CreateRelation("t", catalog.Schema{Attrs: []catalog.Attribute{
		catalog.Col("a", types.Int32, true),
	}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tm := txn.NewManager()
	h := Create(m, pool, rel, tm)
	w := wal.NewWriter(m, false)
	defer w.Close()
	h.SetWAL(w)

	ins := tm.Begin()
	tid, err := h.Insert(tupleOf("victim"), ins, nil)
	if err != nil {
		t.Fatal(err)
	}
	tm.Commit(ins)

	del := tm.Begin()
	if err := h.MarkDeleted(tid, del, nil); err != nil {
		t.Fatal(err)
	}
	// The engine appends the commit record before tm.Commit flips the
	// in-memory state; mirror that order here.
	commitLSN, err := w.Append(&wal.Record{Type: wal.TCommit, Xid: del})
	if err != nil {
		t.Fatal(err)
	}
	tm.Commit(del)

	if n, err := h.Vacuum(tm.Horizon(), nil, nil); err != nil || n != 1 {
		t.Fatalf("vacuum: reclaimed=%d err=%v, want 1", n, err)
	}
	hd, err := pool.Get(h.File(), 0)
	if err != nil {
		t.Fatal(err)
	}
	lsn := page.LSN(page.Page(hd.Bytes))
	hd.Unpin(false)
	if lsn < commitLSN {
		t.Fatalf("vacuumed page LSN %d below the deleter's commit record LSN %d: a flush would not force the commit durable first",
			lsn, commitLSN)
	}
}

func TestVacuumRespectsSnapshotHorizon(t *testing.T) {
	h, tm := newHeap(t, 8)
	tid := commitInsert(t, h, tm, tupleOf("protected"))
	old := tm.Snapshot(txn.None) // registered before the delete
	w := tm.Begin()
	if err := h.MarkDeleted(tid, w, nil); err != nil {
		t.Fatal(err)
	}
	tm.Commit(w)
	reclaimed, err := h.Vacuum(tm.Horizon(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != 0 {
		t.Fatalf("vacuum reclaimed %d versions an open snapshot still needs", reclaimed)
	}
	_, release, ok, _ := h.Get(tid, old, nil)
	if !ok {
		t.Fatal("old snapshot lost its row")
	}
	release()
	old.Release()
	reclaimed, err = h.Vacuum(tm.Horizon(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != 1 {
		t.Fatalf("vacuum after release reclaimed %d, want 1", reclaimed)
	}
}

func TestScan(t *testing.T) {
	h, tm := newHeap(t, 8)
	const n = 500
	for i := 0; i < n; i++ {
		commitInsert(t, h, tm, tupleOf(fmt.Sprintf("tuple-%04d-padding-padding", i)))
	}
	// Delete every 10th.
	sc := h.Scan(nil, nil)
	var toDelete []TID
	i := 0
	for {
		tid, _, ok := sc.Next()
		if !ok {
			break
		}
		if i%10 == 0 {
			toDelete = append(toDelete, tid)
		}
		i++
	}
	sc.Close()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("scanned %d, want %d", i, n)
	}
	del := tm.Begin()
	for _, tid := range toDelete {
		if err := h.MarkDeleted(tid, del, nil); err != nil {
			t.Fatal(err)
		}
	}
	tm.Commit(del)
	// Rescan sees only live tuples, in order.
	s := tm.Snapshot(txn.None)
	defer s.Release()
	sc = h.Scan(s, nil)
	count := 0
	for {
		_, b, ok := sc.Next()
		if !ok {
			break
		}
		if !bytes.HasPrefix(b, []byte("tuple-")) {
			t.Fatalf("bad tuple %q", b)
		}
		count++
	}
	sc.Close()
	if count != n-len(toDelete) {
		t.Errorf("live scan = %d, want %d", count, n-len(toDelete))
	}
}

func TestScanWithTinyPool(t *testing.T) {
	// The scan must work even when the pool is smaller than the heap.
	h, tm := newHeap(t, 2)
	big := bytes.Repeat([]byte{1}, 2000)
	for i := 0; i < 20; i++ {
		commitInsert(t, h, tm, big)
	}
	if h.NumPages() < 5 {
		t.Fatalf("pages = %d", h.NumPages())
	}
	sc := h.Scan(nil, nil)
	count := 0
	for {
		_, _, ok := sc.Next()
		if !ok {
			break
		}
		count++
	}
	sc.Close()
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if count != 20 {
		t.Errorf("scanned %d", count)
	}
}

func TestScannerCloseIdempotent(t *testing.T) {
	h, _ := newHeap(t, 4)
	h.Insert(tupleOf("x"), txn.Frozen, nil)
	sc := h.Scan(nil, nil)
	sc.Next()
	sc.Close()
	sc.Close()
	if _, _, ok := sc.Next(); ok {
		t.Error("Next after Close must return false")
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	// Readers scan under snapshots while writers churn inserts and
	// deletes; every snapshot must see a consistent prefix count and the
	// race detector must stay quiet. Run with -race.
	h, tm := newHeap(t, 32)
	const seed = 200
	for i := 0; i < seed; i++ {
		commitInsert(t, h, tm, tupleOf(fmt.Sprintf("seed-%04d-padding-padding", i)))
	}
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			var mine []TID
			for i := 0; i < 1500; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := tm.Begin()
				tid, err := h.Insert(tupleOf(fmt.Sprintf("w%d-%06d-padding", w, i)), id, nil)
				if err != nil {
					panic(err)
				}
				mine = append(mine, tid)
				if len(mine) > 10 {
					victim := mine[0]
					mine = mine[1:]
					if err := h.MarkDeleted(victim, id, nil); err != nil {
						panic(err)
					}
				}
				if i%7 == 0 {
					// Abort: stamp own insert dead, clear nothing else.
					if err := h.MarkDeleted(tid, id, nil); err != nil {
						panic(err)
					}
					mine = mine[:len(mine)-1]
					tm.Abort(id)
				} else {
					tm.Commit(id)
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 15; i++ {
				s := tm.Snapshot(txn.None)
				count := 0
				sc := h.Scan(s, nil)
				for {
					_, b, ok := sc.Next()
					if !ok {
						break
					}
					if len(b) == 0 {
						panic("empty tuple")
					}
					count++
				}
				sc.Close()
				if sc.Err() != nil {
					panic(sc.Err())
				}
				s.Release()
				if count < seed {
					panic(fmt.Sprintf("snapshot saw %d rows, fewer than the %d committed seeds", count, seed))
				}
			}
		}()
	}
	// Readers bound the test length; writers run until the readers are
	// done.
	readers.Wait()
	close(stop)
	writers.Wait()
}
