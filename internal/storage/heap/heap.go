// Package heap implements heap relations: unordered tuple files over
// slotted pages with multi-version concurrency control. Every tuple
// carries an (xmin, xmax) version stamp in an in-memory side table —
// the transaction that inserted it and the transaction that deleted it
// (txn.None while live) — and readers resolve visibility against a
// txn.Snapshot, so scans and point fetches never block writers and
// writers never block readers. Updates are always delete+insert (the
// TID moves; old versions remain for concurrent snapshots until vacuum
// reclaims them). Synchronization is per page: a read-preferring
// spinlatch serializes page mutation (insert, vacuum) against reader
// windows, while delete is just an atomic xmax stamp taken in shared
// mode. This is the storage substrate whose per-tuple access paths
// (deform on scan, fill on insert) the paper micro-specializes; the
// MVCC checks ride inside the same page windows the batch bees already
// amortize.
package heap

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"microspec/internal/catalog"
	"microspec/internal/profile"
	"microspec/internal/storage/buffer"
	"microspec/internal/storage/disk"
	"microspec/internal/storage/latch"
	"microspec/internal/storage/page"
	"microspec/internal/storage/wal"
	"microspec/internal/txn"
)

// TID addresses a tuple: page number plus slot within the page.
type TID struct {
	Page int32
	Slot uint16
}

// String renders the TID like PostgreSQL's ctid, e.g. "(3,14)".
func (t TID) String() string { return fmt.Sprintf("(%d,%d)", t.Page, t.Slot) }

// verSlot is one tuple's version stamp, accessed with sync/atomic
// functions: delete stamps xmax under the page latch's *shared* mode
// (concurrent with readers), while insert and vacuum touch the fields
// in exclusive mode. Plain uint64 fields (not atomic.Uint64) so the
// slice can grow by append — growth only happens under the exclusive
// latch, when no concurrent access exists.
type verSlot struct {
	xmin uint64
	xmax uint64
}

// pageMeta is the per-page concurrency state: the latch ordering pages
// mutation against reader windows, and the version stamps for the
// page's slots (vers[i] belongs to slot i; slots are never reused, so
// the slice is append-only and only grows under the exclusive latch).
// A slot beyond len(vers) is defensively treated as frozen-and-live.
type pageMeta struct {
	latch latch.RW
	vers  []verSlot
}

// stamp returns slot's version pair. Callers hold the page latch in at
// least shared mode.
func (m *pageMeta) stamp(slot int) (xmin, xmax uint64) {
	if slot >= len(m.vers) {
		return txn.Frozen, txn.None
	}
	return atomic.LoadUint64(&m.vers[slot].xmin), atomic.LoadUint64(&m.vers[slot].xmax)
}

// Heap is one relation's tuple file.
type Heap struct {
	Rel  *catalog.Relation
	file disk.FileID
	dm   disk.Device
	pool *buffer.Pool
	tm   *txn.Manager

	// mu serializes inserters (insert-page choice and file extension).
	// Page content is guarded by the per-page latches, not mu.
	mu         sync.Mutex
	insertPage int // last page that accepted an insert; -1 if none

	metas      atomic.Pointer[[]*pageMeta]
	numPages   atomic.Int64
	liveTuples atomic.Int64
	inserts    atomic.Int64
	deadHint   atomic.Int64 // stamped-dead versions not yet vacuumed

	// wal, when set, logs every insert (physical: the tuple image, with
	// the page stamped to the record's LSN under the page latch) and every
	// delete stamp (logical: stamps live in the in-memory side table, so
	// the record alone carries a committed delete across a crash). Nil in
	// a non-durable database.
	wal *wal.Writer
}

// SetWAL installs (or clears) the heap's write-ahead logger. The engine
// sets it at create/attach time and clears it around bulk loads, which
// are made durable by the checkpoint that follows them instead of
// per-tuple records.
func (h *Heap) SetWAL(w *wal.Writer) { h.wal = w }

// Create allocates a new empty heap for rel. tm resolves transaction
// statuses during write-conflict checks and vacuum; it may be nil only
// in single-writer tests that never delete.
func Create(dm disk.Device, pool *buffer.Pool, rel *catalog.Relation, tm *txn.Manager) *Heap {
	h := &Heap{
		Rel:        rel,
		file:       dm.CreateFile(),
		dm:         dm,
		pool:       pool,
		tm:         tm,
		insertPage: -1,
	}
	empty := []*pageMeta{}
	h.metas.Store(&empty)
	return h
}

// Attach reopens an existing heap over the page file a crashed database
// left behind — the recovery-time counterpart of Create. It rebuilds the
// in-memory side state: one pageMeta per page with an *empty* version
// slice, which reads as frozen-and-live for every slot (see
// pageMeta.stamp) — exactly right after redo, when every surviving tuple
// belongs to a committed transaction and every loser has been physically
// discarded. Live-tuple counts are recounted from the page images.
// Callers run redo before Attach so the counts see the recovered state.
func Attach(dm disk.Device, pool *buffer.Pool, rel *catalog.Relation, tm *txn.Manager, file disk.FileID) (*Heap, error) {
	n, err := dm.NumPages(file)
	if err != nil {
		return nil, fmt.Errorf("heap %s: attach: %w", rel.Name, err)
	}
	h := &Heap{
		Rel:        rel,
		file:       file,
		dm:         dm,
		pool:       pool,
		tm:         tm,
		insertPage: n - 1,
	}
	metas := make([]*pageMeta, n)
	for i := range metas {
		metas[i] = &pageMeta{}
	}
	h.metas.Store(&metas)
	h.numPages.Store(int64(n))
	var live int64
	for pageNo := 0; pageNo < n; pageNo++ {
		hd, err := pool.Get(file, pageNo)
		if err != nil {
			return nil, fmt.Errorf("heap %s: attach page %d: %w", rel.Name, pageNo, err)
		}
		p := page.Page(hd.Bytes)
		for slot := 0; slot < page.NumSlots(p); slot++ {
			if page.IsLive(p, slot) {
				live++
			}
		}
		hd.Unpin(false)
	}
	h.liveTuples.Store(live)
	h.inserts.Store(live)
	return h, nil
}

// Drop releases the heap's disk file.
func (h *Heap) Drop() { h.dm.DropFile(h.file) }

// File returns the heap's page-file ID (tests and the chaos harness use
// it to target at-rest corruption).
func (h *Heap) File() disk.FileID { return h.file }

// NumPages returns the current page count.
func (h *Heap) NumPages() int { return int(h.numPages.Load()) }

// LiveTuples returns the approximate live tuple count (exact when no
// transaction is mid-flight).
func (h *Heap) LiveTuples() int64 { return h.liveTuples.Load() }

// Inserts returns the cumulative count of tuples ever inserted
// (updates always move the tuple under MVCC and count as inserts, as in
// PostgreSQL).
func (h *Heap) Inserts() int64 { return h.inserts.Load() }

// DeadVersions returns the number of stamped-dead versions vacuum has
// not yet reclaimed — the engine's vacuum trigger reads this.
func (h *Heap) DeadVersions() int64 { return h.deadHint.Load() }

// meta returns page pageNo's concurrency state, or nil if the page is
// beyond the published table (callers treat that as tuple-not-found).
func (h *Heap) meta(pageNo int) *pageMeta {
	ms := *h.metas.Load()
	if pageNo < 0 || pageNo >= len(ms) {
		return nil
	}
	return ms[pageNo]
}

// insertSpin bounds how long an inserter waits for a reader window on
// the current insert page before extending a fresh page instead.
const insertSpin = 128

// lockForInsert tries to take the page latch exclusively, yielding to
// the scheduler between attempts so a reader mid-window can finish.
func (m *pageMeta) lockForInsert() bool {
	for i := 0; i < insertSpin; i++ {
		if m.latch.TryLock() {
			return true
		}
		runtime.Gosched()
	}
	return false
}

// Insert stores the already-formed tuple bytes stamped with inserting
// transaction xid (txn.Frozen for bulk loads) and returns its TID. The
// new version is invisible to concurrent snapshots until xid commits.
// prof is charged the per-tuple storage bookkeeping (CompStorage).
func (h *Heap) Insert(tup []byte, xid uint64, prof *profile.Counters) (TID, error) {
	if len(tup) > disk.PageSize/2 {
		return TID{}, fmt.Errorf("heap %s: tuple of %d bytes exceeds half a page", h.Rel.Name, len(tup))
	}
	prof.Add(profile.CompStorage, profile.InsertTuple)
	h.mu.Lock()
	defer h.mu.Unlock()

	// Try the last insert page first; if a reader window holds its latch
	// too long or the page is full, extend. Readers snapshot the page
	// count at scan start, so a freshly extended page is invisible to
	// them — consistent with the new tuple being invisible anyway.
	if h.insertPage >= 0 {
		hd, err := h.pool.Get(h.file, h.insertPage)
		if err != nil {
			return TID{}, err
		}
		m := h.meta(h.insertPage)
		if m.lockForInsert() {
			if slot, ok := page.AddTuple(page.Page(hd.Bytes), tup); ok {
				if err := h.logInsert(page.Page(hd.Bytes), h.insertPage, slot, tup, xid); err != nil {
					m.latch.Unlock()
					hd.Unpin(true)
					return TID{}, err
				}
				m.stampInsert(slot, xid)
				m.latch.Unlock()
				hd.Unpin(true)
				h.liveTuples.Add(1)
				h.inserts.Add(1)
				return TID{Page: int32(h.insertPage), Slot: uint16(slot)}, nil
			}
			m.latch.Unlock()
		}
		hd.Unpin(false)
	}
	pageNo, err := h.dm.ExtendFile(h.file)
	if err != nil {
		return TID{}, err
	}
	// Publish the page's meta before its page count so no reader can
	// reach a page that has no latch yet.
	ms := *h.metas.Load()
	grown := make([]*pageMeta, pageNo+1)
	copy(grown, ms)
	for i := len(ms); i <= pageNo; i++ {
		grown[i] = &pageMeta{}
	}
	h.metas.Store(&grown)
	hd, err := h.pool.GetNew(h.file, pageNo)
	if err != nil {
		return TID{}, err
	}
	m := grown[pageNo]
	m.latch.Lock() // uncontended: the page is not yet published
	page.Init(page.Page(hd.Bytes))
	slot, ok := page.AddTuple(page.Page(hd.Bytes), tup)
	if !ok {
		m.latch.Unlock()
		hd.Unpin(true)
		return TID{}, fmt.Errorf("heap %s: tuple does not fit in an empty page", h.Rel.Name)
	}
	if err := h.logInsert(page.Page(hd.Bytes), pageNo, slot, tup, xid); err != nil {
		m.latch.Unlock()
		hd.Unpin(true)
		return TID{}, err
	}
	m.stampInsert(slot, xid)
	m.latch.Unlock()
	hd.Unpin(true)
	h.numPages.Store(int64(pageNo + 1))
	h.insertPage = pageNo
	h.liveTuples.Add(1)
	h.inserts.Add(1)
	return TID{Page: int32(pageNo), Slot: uint16(slot)}, nil
}

// logInsert appends the insert's WAL record and stamps the page with its
// LSN, all under the exclusive page latch, before the pin is released —
// so by the time the buffer pool could flush this page, the record
// already exists and WAL-before-data (the flush forces the log through
// the page LSN) holds. On an append failure — the writer was killed —
// the just-added slot is marked dead again so the page image never
// carries a tuple the log knows nothing about.
func (h *Heap) logInsert(p page.Page, pageNo, slot int, tup []byte, xid uint64) error {
	if h.wal == nil {
		return nil
	}
	lsn, err := h.wal.Append(&wal.Record{
		Type: wal.TInsert, Xid: xid, File: h.file, Page: pageNo, Slot: slot, Tuple: tup,
	})
	if err != nil {
		_ = page.DeleteTuple(p, slot)
		return fmt.Errorf("heap %s: insert log append: %w", h.Rel.Name, err)
	}
	page.SetLSN(p, lsn)
	return nil
}

// stampInsert grows vers to cover slot and records xid as its inserter.
// Called with the page latch held exclusively. Gap slots (possible only
// if an earlier tuple predates its stamp, which Create-time invariants
// rule out) read as frozen.
func (m *pageMeta) stampInsert(slot int, xid uint64) {
	for len(m.vers) <= slot {
		m.vers = append(m.vers, verSlot{xmin: txn.Frozen})
	}
	atomic.StoreUint64(&m.vers[slot].xmin, xid)
	atomic.StoreUint64(&m.vers[slot].xmax, txn.None)
}

// Get fetches the tuple version at tid if it is visible to snap (nil
// snap means latest committed; see txn.Snapshot.Visible). ok=false with
// a nil error means the version is invisible, dead, or already
// reclaimed — index scans skip such TIDs. The returned bytes alias the
// pinned page; the caller must call release exactly once when done, and
// the page's reader latch is held until then.
func (h *Heap) Get(tid TID, snap *txn.Snapshot, prof *profile.Counters) (tup []byte, release func(), ok bool, err error) {
	prof.Add(profile.CompStorage, profile.PageAccess)
	m := h.meta(int(tid.Page))
	if m == nil {
		return nil, nil, false, nil
	}
	hd, err := h.pool.Get(h.file, int(tid.Page))
	if err != nil {
		return nil, nil, false, err
	}
	m.latch.RLock()
	p := page.Page(hd.Bytes)
	if int(tid.Slot) >= page.NumSlots(p) || !page.IsLive(p, int(tid.Slot)) {
		m.latch.RUnlock()
		hd.Unpin(false)
		return nil, nil, false, nil
	}
	xmin, xmax := m.stamp(int(tid.Slot))
	if !snap.Visible(xmin, xmax) {
		m.latch.RUnlock()
		hd.Unpin(false)
		return nil, nil, false, nil
	}
	b, err := page.GetTuple(p, int(tid.Slot))
	if err != nil {
		m.latch.RUnlock()
		hd.Unpin(false)
		return nil, nil, false, fmt.Errorf("heap %s: %w", h.Rel.Name, err)
	}
	return b, func() {
		m.latch.RUnlock()
		hd.Unpin(false)
	}, true, nil
}

// Stamps returns the version stamp of the tuple at tid; present is false
// when the slot no longer holds a tuple (vacuumed, or never existed).
// The engine's visibility-aware unique-key check reads raw stamps here
// and decides liveness against the transaction manager itself — a dirty
// read by design, since uniqueness must consider uncommitted inserters.
func (h *Heap) Stamps(tid TID) (xmin, xmax uint64, present bool, err error) {
	m := h.meta(int(tid.Page))
	if m == nil {
		return 0, 0, false, nil
	}
	hd, err := h.pool.Get(h.file, int(tid.Page))
	if err != nil {
		return 0, 0, false, err
	}
	m.latch.RLock()
	p := page.Page(hd.Bytes)
	if int(tid.Slot) >= page.NumSlots(p) || !page.IsLive(p, int(tid.Slot)) {
		m.latch.RUnlock()
		hd.Unpin(false)
		return 0, 0, false, nil
	}
	xmin, xmax = m.stamp(int(tid.Slot))
	m.latch.RUnlock()
	hd.Unpin(false)
	return xmin, xmax, true, nil
}

// MarkDeleted stamps xid as the deleter of the version at tid —
// first-updater-wins: if another transaction already stamped the
// version and has not aborted, a *txn.ConflictError is returned and the
// caller must abort. The stamp is an atomic CAS under the shared page
// latch, so deletes neither block nor are blocked by reader windows.
func (h *Heap) MarkDeleted(tid TID, xid uint64, prof *profile.Counters) error {
	prof.Add(profile.CompStorage, profile.PageAccess)
	m := h.meta(int(tid.Page))
	if m == nil {
		return fmt.Errorf("heap %s: MarkDeleted of unknown page %d", h.Rel.Name, tid.Page)
	}
	m.latch.RLock()
	defer m.latch.RUnlock()
	if int(tid.Slot) >= len(m.vers) {
		return fmt.Errorf("heap %s: MarkDeleted of unstamped slot %s", h.Rel.Name, tid)
	}
	vs := &m.vers[tid.Slot]
	for {
		cur := atomic.LoadUint64(&vs.xmax)
		if cur == txn.None {
			if atomic.CompareAndSwapUint64(&vs.xmax, txn.None, xid) {
				h.liveTuples.Add(-1)
				h.deadHint.Add(1)
				return h.logDelete(tid, xid)
			}
			continue
		}
		// A stamp from an aborted transaction whose undo has not run yet
		// (or raced us) is dead weight: take it over.
		if h.tm != nil && h.tm.Status(cur) == txn.StatusAborted {
			if atomic.CompareAndSwapUint64(&vs.xmax, cur, xid) {
				h.deadHint.Add(1)
				return h.logDelete(tid, xid)
			}
			continue
		}
		return &txn.ConflictError{Mine: xid, Theirs: cur}
	}
}

// logDelete appends the logical delete record for xid's xmax stamp on
// tid. The stamp itself lives in the in-memory side table and never
// dirties the page, so this record is the only thing that carries a
// committed delete across a crash: recovery applies it physically for
// every xid the log proves committed. No page LSN is stamped — the page
// image did not change.
func (h *Heap) logDelete(tid TID, xid uint64) error {
	if h.wal == nil {
		return nil
	}
	_, err := h.wal.Append(&wal.Record{
		Type: wal.TDelete, Xid: xid, File: h.file, Page: int(tid.Page), Slot: int(tid.Slot),
	})
	if err != nil {
		return fmt.Errorf("heap %s: delete log append: %w", h.Rel.Name, err)
	}
	return nil
}

// UnmarkDeleted clears xid's delete stamp from the version at tid — the
// rollback undo for MarkDeleted. A no-op if another transaction already
// took the stamp over (possible only after xid's abort was published).
func (h *Heap) UnmarkDeleted(tid TID, xid uint64) error {
	m := h.meta(int(tid.Page))
	if m == nil || int(tid.Slot) >= len(m.vers) {
		return fmt.Errorf("heap %s: UnmarkDeleted of unknown tuple %s", h.Rel.Name, tid)
	}
	m.latch.RLock()
	defer m.latch.RUnlock()
	if atomic.CompareAndSwapUint64(&m.vers[tid.Slot].xmax, xid, txn.None) {
		h.liveTuples.Add(1)
		h.deadHint.Add(-1)
	}
	return nil
}

// Vacuum reclaims versions no current or future snapshot can see: those
// whose deleter committed before horizon (see txn.Manager.Horizon) and
// those inserted by aborted transactions. Reclaimed slots are marked
// dead on the page (slots are never reused; space compaction is future
// work) and reported to collect with a copy of the tuple bytes so the
// caller can drop index entries. Pages whose latch is held by a reader
// window are skipped — they keep their dead versions until the next
// pass. The caller serializes Vacuum against writers on this heap (the
// engine holds the table latch exclusively).
func (h *Heap) Vacuum(horizon uint64, prof *profile.Counters, collect func(tid TID, tup []byte)) (reclaimed int, err error) {
	if h.tm == nil {
		return 0, nil
	}
	// Reclaiming a slot physically changes the page, but the change is
	// covered by the victims' delete/commit records rather than a record
	// of its own — and all of those are already in the log: a deleter
	// passes the horizon check only after tm.Commit, which follows its
	// commit-record append. Stamping dirtied pages with the tail read
	// here makes WAL-before-data force those records durable before a
	// reclaimed page image can reach disk; without the stamp, a flush
	// could persist the reclaim while the deleter's commit record is
	// still volatile, and a crash would make recovery treat the deleter
	// as uncommitted with the tuple already gone — losing a durably
	// acknowledged insert.
	var walTail uint64
	if h.wal != nil {
		if walTail, err = h.wal.TailLSN(); err != nil {
			return 0, fmt.Errorf("heap %s: vacuum: %w", h.Rel.Name, err)
		}
	}
	n := int(h.numPages.Load())
	var tids []TID
	var tups [][]byte
	for pageNo := 0; pageNo < n; pageNo++ {
		m := h.meta(pageNo)
		if m == nil || !m.latch.TryLock() {
			continue // busy page: next pass gets it
		}
		hd, gerr := h.pool.Get(h.file, pageNo)
		if gerr != nil {
			m.latch.Unlock()
			return reclaimed, gerr
		}
		prof.Add(profile.CompStorage, profile.PageAccess)
		p := page.Page(hd.Bytes)
		tids, tups = tids[:0], tups[:0]
		dirty := false
		slots := page.NumSlots(p)
		if len(m.vers) < slots {
			slots = len(m.vers)
		}
		for slot := 0; slot < slots; slot++ {
			if !page.IsLive(p, slot) {
				continue
			}
			xmin, xmax := m.stamp(slot)
			dead := h.tm.Status(xmin) == txn.StatusAborted ||
				(xmax != txn.None && xmax < horizon && h.tm.Status(xmax) == txn.StatusCommitted)
			if !dead {
				continue
			}
			b, terr := page.GetTuple(p, slot)
			if terr != nil {
				m.latch.Unlock()
				hd.Unpin(dirty)
				return reclaimed, fmt.Errorf("heap %s: vacuum: %w", h.Rel.Name, terr)
			}
			if derr := page.DeleteTuple(p, slot); derr != nil {
				m.latch.Unlock()
				hd.Unpin(dirty)
				return reclaimed, fmt.Errorf("heap %s: vacuum: %w", h.Rel.Name, derr)
			}
			if !dirty {
				dirty = true
				if walTail > page.LSN(p) {
					page.SetLSN(p, walTail)
				}
			}
			tids = append(tids, TID{Page: int32(pageNo), Slot: uint16(slot)})
			tups = append(tups, append([]byte(nil), b...))
			reclaimed++
			h.deadHint.Add(-1)
		}
		m.latch.Unlock()
		hd.Unpin(dirty)
		// Index cleanup runs outside the page latch: collect may descend
		// B+trees, and page latches are leaves of the latch order.
		if collect != nil {
			for i, tid := range tids {
				collect(tid, tups[i])
			}
		}
	}
	return reclaimed, nil
}

// Scan returns a sequential scanner positioned before the first tuple,
// filtering versions through snap (nil means latest committed).
func (h *Heap) Scan(snap *txn.Snapshot, prof *profile.Counters) *Scanner {
	return &Scanner{h: h, snap: snap, numPages: int(h.numPages.Load()), pageNo: -1, prof: prof}
}

// PageRange is a half-open page interval [Lo, Hi) of a heap — the unit of
// work a parallel scan hands to one worker.
type PageRange struct {
	Lo, Hi int
}

// Partitions splits the heap's current pages into at most n contiguous
// page ranges of near-equal size for parallel scans. Fewer than n ranges
// are returned when the heap has fewer than n pages; an empty heap yields
// nil. The page count is a snapshot: like Scan, concurrently appended
// pages are not covered.
func (h *Heap) Partitions(n int) []PageRange {
	pages := int(h.numPages.Load())
	if pages == 0 || n <= 0 {
		return nil
	}
	if n > pages {
		n = pages
	}
	out := make([]PageRange, 0, n)
	per, extra := pages/n, pages%n
	lo := 0
	for i := 0; i < n; i++ {
		hi := lo + per
		if i < extra {
			hi++
		}
		out = append(out, PageRange{Lo: lo, Hi: hi})
		lo = hi
	}
	return out
}

// ScanRange returns a scanner over the pages [lo, hi) only, for one
// partition of a parallel scan. Each worker drives its own scanner, so
// concurrent partitions never share mutable state; the buffer pool and
// page latches underneath are already concurrency-safe.
func (h *Heap) ScanRange(snap *txn.Snapshot, r PageRange, prof *profile.Counters) *Scanner {
	n := int(h.numPages.Load())
	if r.Hi > n {
		r.Hi = n
	}
	if r.Lo < 0 {
		r.Lo = 0
	}
	return &Scanner{h: h, snap: snap, numPages: r.Hi, pageNo: r.Lo - 1, prof: prof}
}

// Scanner iterates a heap page by page, holding a pin and the page's
// shared latch on the current page so returned tuple bytes stay valid —
// and concurrent inserts stay off the page — until the next call.
// Versions invisible to the scanner's snapshot are skipped.
type Scanner struct {
	h        *Heap
	snap     *txn.Snapshot
	numPages int
	pageNo   int
	slot     int
	cur      *buffer.Handle
	curMeta  *pageMeta
	prof     *profile.Counters
	err      error
}

// releasePage drops the latch and pin on the current page, if any.
func (s *Scanner) releasePage() {
	if s.cur != nil {
		s.curMeta.latch.RUnlock()
		s.cur.Unpin(false)
		s.cur = nil
		s.curMeta = nil
	}
}

// Next advances to the next visible tuple. It returns ok=false at the
// end of the heap or on error (check Err).
func (s *Scanner) Next() (TID, []byte, bool) {
	for {
		if s.cur == nil {
			s.pageNo++
			if s.pageNo >= s.numPages {
				return TID{}, nil, false
			}
			hd, err := s.h.pool.Get(s.h.file, s.pageNo)
			if err != nil {
				s.err = err
				return TID{}, nil, false
			}
			s.prof.Add(profile.CompStorage, profile.PageAccess)
			s.cur = hd
			s.curMeta = s.h.meta(s.pageNo)
			s.curMeta.latch.RLock()
			s.slot = 0
		}
		p := page.Page(s.cur.Bytes)
		n := page.NumSlots(p)
		for s.slot < n {
			slot := s.slot
			s.slot++
			if !page.IsLive(p, slot) {
				continue
			}
			xmin, xmax := s.curMeta.stamp(slot)
			if !s.snap.Visible(xmin, xmax) {
				continue
			}
			b, err := page.GetTuple(p, slot)
			if err != nil {
				s.err = err
				return TID{}, nil, false
			}
			s.prof.Add(profile.CompStorage, profile.HeapNextTuple)
			return TID{Page: int32(s.pageNo), Slot: uint16(slot)}, b, true
		}
		s.releasePage()
	}
}

// NextPage advances to the next page holding at least one visible tuple
// and returns all of that page's visible tuples at once, appended to buf
// (pass the previous return value to reuse its backing array). The
// returned byte slices alias the pinned page and stay valid until the
// next NextPage/Next/Close call — the batch executor deforms the whole
// page while the pin and shared latch are held, amortizing one
// pin/latch/unpin over every tuple on the page. Visibility filtering
// happens here, inside the same page window, which is how the fused
// scan-filter bees become snapshot-aware without any change of their
// own. ok=false signals the end of the heap or an error (check Err).
func (s *Scanner) NextPage(buf [][]byte) (tups [][]byte, pageNo int, ok bool) {
	s.releasePage()
	buf = buf[:0]
	for {
		s.pageNo++
		if s.pageNo >= s.numPages {
			return buf, 0, false
		}
		hd, err := s.h.pool.Get(s.h.file, s.pageNo)
		if err != nil {
			s.err = err
			return buf, 0, false
		}
		s.prof.Add(profile.CompStorage, profile.PageAccess)
		m := s.h.meta(s.pageNo)
		m.latch.RLock()
		p := page.Page(hd.Bytes)
		n := page.NumSlots(p)
		for slot := 0; slot < n; slot++ {
			if !page.IsLive(p, slot) {
				continue
			}
			xmin, xmax := m.stamp(slot)
			if !s.snap.Visible(xmin, xmax) {
				continue
			}
			b, err := page.GetTuple(p, slot)
			if err != nil {
				s.err = err
				m.latch.RUnlock()
				hd.Unpin(false)
				return buf[:0], 0, false
			}
			s.prof.Add(profile.CompStorage, profile.HeapNextTuple)
			buf = append(buf, b)
		}
		if len(buf) == 0 {
			m.latch.RUnlock()
			hd.Unpin(false) // every slot dead or invisible: skip the page
			continue
		}
		s.cur = hd
		s.curMeta = m
		s.slot = n // Next after NextPage resumes on the following page
		return buf, s.pageNo, true
	}
}

// Close releases the scanner's pin and latch; safe to call multiple
// times.
func (s *Scanner) Close() {
	s.releasePage()
	s.pageNo = s.numPages
}

// Err reports a scan error, if any.
func (s *Scanner) Err() error { return s.err }
