// Package heap implements heap relations: unordered tuple files over
// slotted pages, with insert, delete, in-place and moving update, point
// fetch by TID, and sequential scan. This is the storage substrate whose
// per-tuple access paths (deform on scan, fill on insert) the paper
// micro-specializes.
package heap

import (
	"fmt"
	"sync"

	"microspec/internal/catalog"
	"microspec/internal/profile"
	"microspec/internal/storage/buffer"
	"microspec/internal/storage/disk"
	"microspec/internal/storage/page"
)

// TID addresses a tuple: page number plus slot within the page.
type TID struct {
	Page int32
	Slot uint16
}

// String renders the TID like PostgreSQL's ctid, e.g. "(3,14)".
func (t TID) String() string { return fmt.Sprintf("(%d,%d)", t.Page, t.Slot) }

// Heap is one relation's tuple file.
type Heap struct {
	Rel  *catalog.Relation
	file disk.FileID
	dm   disk.Device
	pool *buffer.Pool

	mu         sync.Mutex
	numPages   int
	insertPage int // last page that accepted an insert; -1 if none
	liveTuples int64
	inserts    int64
}

// Create allocates a new empty heap for rel.
func Create(dm disk.Device, pool *buffer.Pool, rel *catalog.Relation) *Heap {
	return &Heap{
		Rel:        rel,
		file:       dm.CreateFile(),
		dm:         dm,
		pool:       pool,
		insertPage: -1,
	}
}

// Drop releases the heap's disk file.
func (h *Heap) Drop() { h.dm.DropFile(h.file) }

// File returns the heap's page-file ID (tests and the chaos harness use
// it to target at-rest corruption).
func (h *Heap) File() disk.FileID { return h.file }

// NumPages returns the current page count.
func (h *Heap) NumPages() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.numPages
}

// LiveTuples returns the live tuple count.
func (h *Heap) LiveTuples() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.liveTuples
}

// Inserts returns the cumulative count of tuples ever inserted
// (updates that move a tuple count as inserts, as in PostgreSQL).
func (h *Heap) Inserts() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.inserts
}

// Insert stores the already-formed tuple bytes and returns its TID. prof
// is charged the per-tuple storage bookkeeping (CompStorage).
func (h *Heap) Insert(tup []byte, prof *profile.Counters) (TID, error) {
	if len(tup) > disk.PageSize/2 {
		return TID{}, fmt.Errorf("heap %s: tuple of %d bytes exceeds half a page", h.Rel.Name, len(tup))
	}
	prof.Add(profile.CompStorage, profile.InsertTuple)
	h.mu.Lock()
	defer h.mu.Unlock()

	// Try the last insert page first, then extend.
	if h.insertPage >= 0 {
		hd, err := h.pool.Get(h.file, h.insertPage)
		if err != nil {
			return TID{}, err
		}
		if slot, ok := page.AddTuple(page.Page(hd.Bytes), tup); ok {
			hd.Unpin(true)
			h.liveTuples++
			h.inserts++
			return TID{Page: int32(h.insertPage), Slot: uint16(slot)}, nil
		}
		hd.Unpin(false)
	}
	pageNo, err := h.dm.ExtendFile(h.file)
	if err != nil {
		return TID{}, err
	}
	h.numPages = pageNo + 1
	hd, err := h.pool.GetNew(h.file, pageNo)
	if err != nil {
		return TID{}, err
	}
	page.Init(page.Page(hd.Bytes))
	slot, ok := page.AddTuple(page.Page(hd.Bytes), tup)
	if !ok {
		hd.Unpin(true)
		return TID{}, fmt.Errorf("heap %s: tuple does not fit in an empty page", h.Rel.Name)
	}
	hd.Unpin(true)
	h.insertPage = pageNo
	h.liveTuples++
	h.inserts++
	return TID{Page: int32(pageNo), Slot: uint16(slot)}, nil
}

// Get fetches a live tuple by TID. The returned bytes alias the pinned
// page; the caller must call release exactly once when done.
func (h *Heap) Get(tid TID, prof *profile.Counters) (tup []byte, release func(), err error) {
	prof.Add(profile.CompStorage, profile.PageAccess)
	hd, err := h.pool.Get(h.file, int(tid.Page))
	if err != nil {
		return nil, nil, err
	}
	b, err := page.GetTuple(page.Page(hd.Bytes), int(tid.Slot))
	if err != nil {
		hd.Unpin(false)
		return nil, nil, fmt.Errorf("heap %s: %w", h.Rel.Name, err)
	}
	return b, func() { hd.Unpin(false) }, nil
}

// Delete marks the tuple dead. It returns an undo closure that resurrects
// the tuple (rollback support).
func (h *Heap) Delete(tid TID, prof *profile.Counters) (undo func() error, err error) {
	prof.Add(profile.CompStorage, profile.PageAccess)
	hd, err := h.pool.Get(h.file, int(tid.Page))
	if err != nil {
		return nil, err
	}
	if err := page.DeleteTuple(page.Page(hd.Bytes), int(tid.Slot)); err != nil {
		hd.Unpin(false)
		return nil, err
	}
	hd.Unpin(true)
	h.mu.Lock()
	h.liveTuples--
	h.mu.Unlock()
	return func() error {
		hd, err := h.pool.Get(h.file, int(tid.Page))
		if err != nil {
			return err
		}
		defer hd.Unpin(true)
		if err := page.ResurrectTuple(page.Page(hd.Bytes), int(tid.Slot)); err != nil {
			return err
		}
		h.mu.Lock()
		h.liveTuples++
		h.mu.Unlock()
		return nil
	}, nil
}

// Update replaces the tuple. Same-length tuples are overwritten in place
// and keep their TID; otherwise the old tuple is deleted and the new one
// inserted (the TID moves). It returns the new TID and an undo closure
// restoring the old bytes.
func (h *Heap) Update(tid TID, newTup []byte, prof *profile.Counters) (TID, func() error, error) {
	prof.Add(profile.CompStorage, profile.PageAccess)
	hd, err := h.pool.Get(h.file, int(tid.Page))
	if err != nil {
		return TID{}, nil, err
	}
	old, err := page.GetTuple(page.Page(hd.Bytes), int(tid.Slot))
	if err != nil {
		hd.Unpin(false)
		return TID{}, nil, err
	}
	if len(old) == len(newTup) {
		oldCopy := append([]byte(nil), old...)
		if err := page.OverwriteTuple(page.Page(hd.Bytes), int(tid.Slot), newTup); err != nil {
			hd.Unpin(false)
			return TID{}, nil, err
		}
		hd.Unpin(true)
		undo := func() error {
			hd, err := h.pool.Get(h.file, int(tid.Page))
			if err != nil {
				return err
			}
			defer hd.Unpin(true)
			return page.OverwriteTuple(page.Page(hd.Bytes), int(tid.Slot), oldCopy)
		}
		return tid, undo, nil
	}
	hd.Unpin(false)
	undoDel, err := h.Delete(tid, prof)
	if err != nil {
		return TID{}, nil, err
	}
	newTID, err := h.Insert(newTup, prof)
	if err != nil {
		_ = undoDel()
		return TID{}, nil, err
	}
	undo := func() error {
		if u, err := h.Delete(newTID, nil); err != nil {
			return err
		} else {
			_ = u // the resurrected insert slot stays dead permanently
		}
		return undoDel()
	}
	return newTID, undo, nil
}

// Scan returns a sequential scanner positioned before the first tuple.
func (h *Heap) Scan(prof *profile.Counters) *Scanner {
	h.mu.Lock()
	n := h.numPages
	h.mu.Unlock()
	return &Scanner{h: h, numPages: n, pageNo: -1, prof: prof}
}

// PageRange is a half-open page interval [Lo, Hi) of a heap — the unit of
// work a parallel scan hands to one worker.
type PageRange struct {
	Lo, Hi int
}

// Partitions splits the heap's current pages into at most n contiguous
// page ranges of near-equal size for parallel scans. Fewer than n ranges
// are returned when the heap has fewer than n pages; an empty heap yields
// nil. The page count is a snapshot: like Scan, concurrently appended
// pages are not covered.
func (h *Heap) Partitions(n int) []PageRange {
	h.mu.Lock()
	pages := h.numPages
	h.mu.Unlock()
	if pages == 0 || n <= 0 {
		return nil
	}
	if n > pages {
		n = pages
	}
	out := make([]PageRange, 0, n)
	per, extra := pages/n, pages%n
	lo := 0
	for i := 0; i < n; i++ {
		hi := lo + per
		if i < extra {
			hi++
		}
		out = append(out, PageRange{Lo: lo, Hi: hi})
		lo = hi
	}
	return out
}

// ScanRange returns a scanner over the pages [lo, hi) only, for one
// partition of a parallel scan. Each worker drives its own scanner, so
// concurrent partitions never share mutable state; the buffer pool
// underneath is already concurrency-safe.
func (h *Heap) ScanRange(r PageRange, prof *profile.Counters) *Scanner {
	h.mu.Lock()
	n := h.numPages
	h.mu.Unlock()
	if r.Hi > n {
		r.Hi = n
	}
	if r.Lo < 0 {
		r.Lo = 0
	}
	return &Scanner{h: h, numPages: r.Hi, pageNo: r.Lo - 1, prof: prof}
}

// Scanner iterates a heap page by page, holding a pin on the current
// page so returned tuple bytes stay valid until the next call.
type Scanner struct {
	h        *Heap
	numPages int
	pageNo   int
	slot     int
	cur      *buffer.Handle
	prof     *profile.Counters
	err      error
}

// Next advances to the next live tuple. It returns ok=false at the end of
// the heap or on error (check Err).
func (s *Scanner) Next() (TID, []byte, bool) {
	for {
		if s.cur == nil {
			s.pageNo++
			if s.pageNo >= s.numPages {
				return TID{}, nil, false
			}
			hd, err := s.h.pool.Get(s.h.file, s.pageNo)
			if err != nil {
				s.err = err
				return TID{}, nil, false
			}
			s.prof.Add(profile.CompStorage, profile.PageAccess)
			s.cur = hd
			s.slot = 0
		}
		p := page.Page(s.cur.Bytes)
		n := page.NumSlots(p)
		for s.slot < n {
			slot := s.slot
			s.slot++
			if !page.IsLive(p, slot) {
				continue
			}
			b, err := page.GetTuple(p, slot)
			if err != nil {
				s.err = err
				return TID{}, nil, false
			}
			s.prof.Add(profile.CompStorage, profile.HeapNextTuple)
			return TID{Page: int32(s.pageNo), Slot: uint16(slot)}, b, true
		}
		s.cur.Unpin(false)
		s.cur = nil
	}
}

// NextPage advances to the next page holding at least one live tuple and
// returns all of that page's live tuples at once, appended to buf (pass
// the previous return value to reuse its backing array). The returned
// byte slices alias the pinned page and stay valid until the next
// NextPage/Next/Close call — the batch executor deforms the whole page
// while the pin is held, amortizing one pin/unpin over every tuple on the
// page. ok=false signals the end of the heap or an error (check Err).
func (s *Scanner) NextPage(buf [][]byte) (tups [][]byte, pageNo int, ok bool) {
	if s.cur != nil {
		s.cur.Unpin(false)
		s.cur = nil
	}
	buf = buf[:0]
	for {
		s.pageNo++
		if s.pageNo >= s.numPages {
			return buf, 0, false
		}
		hd, err := s.h.pool.Get(s.h.file, s.pageNo)
		if err != nil {
			s.err = err
			return buf, 0, false
		}
		s.prof.Add(profile.CompStorage, profile.PageAccess)
		p := page.Page(hd.Bytes)
		n := page.NumSlots(p)
		for slot := 0; slot < n; slot++ {
			if !page.IsLive(p, slot) {
				continue
			}
			b, err := page.GetTuple(p, slot)
			if err != nil {
				s.err = err
				hd.Unpin(false)
				return buf[:0], 0, false
			}
			s.prof.Add(profile.CompStorage, profile.HeapNextTuple)
			buf = append(buf, b)
		}
		if len(buf) == 0 {
			hd.Unpin(false) // every slot dead: skip the page
			continue
		}
		s.cur = hd
		s.slot = n // Next after NextPage resumes on the following page
		return buf, s.pageNo, true
	}
}

// Close releases the scanner's pin; safe to call multiple times.
func (s *Scanner) Close() {
	if s.cur != nil {
		s.cur.Unpin(false)
		s.cur = nil
	}
	s.pageNo = s.numPages
}

// Err reports a scan error, if any.
func (s *Scanner) Err() error { return s.err }
