package latch

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestExclusion(t *testing.T) {
	var l RW
	var counter int
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 8*5000 {
		t.Fatalf("counter %d, want %d", counter, 8*5000)
	}
}

func TestReadersShareWritersExclude(t *testing.T) {
	var l RW
	var readers atomic.Int32
	var writing atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				l.RLock()
				readers.Add(1)
				if writing.Load() {
					panic("reader overlapped writer")
				}
				readers.Add(-1)
				l.RUnlock()
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				if !l.TryLock() {
					continue
				}
				writing.Store(true)
				if readers.Load() != 0 {
					panic("writer overlapped reader")
				}
				writing.Store(false)
				l.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestTryLockContended(t *testing.T) {
	var l RW
	l.RLock()
	if l.TryLock() {
		t.Fatal("TryLock succeeded under a reader")
	}
	if !l.TryRLock() {
		t.Fatal("TryRLock failed under a reader")
	}
	l.RUnlock()
	l.RUnlock()
	if !l.TryLock() {
		t.Fatal("TryLock failed on free latch")
	}
	if l.TryRLock() {
		t.Fatal("TryRLock succeeded under a writer")
	}
	l.Unlock()
}

func TestReadPreferring(t *testing.T) {
	// A second reader must be able to join while a writer is waiting —
	// this is the property sync.RWMutex does not give.
	var l RW
	l.RLock()
	writerDone := make(chan struct{})
	go func() {
		l.Lock()
		l.Unlock()
		close(writerDone)
	}()
	// Writer is now (or will shortly be) spinning. A new reader still
	// gets in.
	if !l.TryRLock() {
		t.Fatal("reader blocked by waiting writer")
	}
	l.RUnlock()
	l.RUnlock()
	<-writerDone
}

func TestUnlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unlocked latch did not panic")
		}
	}()
	var l RW
	l.Unlock()
}
