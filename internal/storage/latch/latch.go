// Package latch provides the small read-preferring reader/writer
// spinlatch used for per-page synchronization in the heap. Two
// properties motivate a custom latch instead of sync.RWMutex:
//
//   - Read-preference: a reader can always acquire the latch while other
//     readers hold it, even if a writer is spinning. Go's sync.RWMutex is
//     write-preferring, which deadlocks the heap's nested-read pattern (a
//     scanner holds a page read latch across a batch window while the
//     same statement re-reads the page through an index probe).
//   - TryLock-first writers: heap inserts and vacuum never want to queue
//     behind a long reader window — on contention they move to another
//     page. TryLock is the primary writer API; Lock spins with
//     Gosched-yielding for the rare caller that must win eventually.
//
// The latch is intentionally not fair to writers. That is safe here
// because writer starvation is bounded by design: readers hold page
// latches only for the lifetime of one page window (one batch fill or
// one point Get), and writers that lose fall back to a different page.
// See docs/CONCURRENCY.md for the full latch-ordering discipline.
package latch

import (
	"runtime"
	"sync/atomic"
)

// RW is a read-preferring reader/writer spinlatch. The zero value is
// unlocked. state holds the reader count, or -1 while write-locked.
type RW struct {
	state atomic.Int32
}

// RLock acquires the latch in shared mode, spinning (with scheduler
// yields) while a writer holds it.
func (l *RW) RLock() {
	for {
		s := l.state.Load()
		if s >= 0 && l.state.CompareAndSwap(s, s+1) {
			return
		}
		runtime.Gosched()
	}
}

// TryRLock acquires the latch in shared mode if no writer holds it.
func (l *RW) TryRLock() bool {
	for {
		s := l.state.Load()
		if s < 0 {
			return false
		}
		if l.state.CompareAndSwap(s, s+1) {
			return true
		}
	}
}

// RUnlock releases one shared hold.
func (l *RW) RUnlock() {
	if l.state.Add(-1) < 0 {
		panic("latch: RUnlock of unlocked latch")
	}
}

// TryLock acquires the latch exclusively if it is free.
func (l *RW) TryLock() bool {
	return l.state.CompareAndSwap(0, -1)
}

// Lock acquires the latch exclusively, spinning until all readers
// drain. Because the latch is read-preferring, callers must hold it
// only briefly and must not block while waiting (the heap uses Lock
// only where reader windows are short by construction).
func (l *RW) Lock() {
	for !l.state.CompareAndSwap(0, -1) {
		runtime.Gosched()
	}
}

// Unlock releases the exclusive hold.
func (l *RW) Unlock() {
	if !l.state.CompareAndSwap(-1, 0) {
		panic("latch: Unlock of non-write-locked latch")
	}
}
