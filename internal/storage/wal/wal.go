// Package wal implements the write-ahead log: typed, checksummed log
// records over the simulated disk's append-only log stream
// (disk.LogDevice), a group-commit writer that batches fsyncs across
// concurrent committers (writer.go), and the redo scan recovery replays
// after a crash.
//
// Record wire format (all integers little-endian):
//
//	offset 0..3  crc: CRC32-Castagnoli over bytes 4..end of record
//	offset 4..7  payload length
//	offset 8     record type
//	offset 9..   payload
//
// An LSN is a logical byte offset into the log stream; the LSN *of* a
// record is the offset just past it, so a page stamped with a record's
// LSN is durable-consistent exactly when the log is synced through that
// LSN (the WAL-before-data rule the buffer pool enforces).
//
// Payloads:
//
//	Insert     xid u64 | file u32 | page u32 | slot u16 | tuple bytes
//	Delete     xid u64 | file u32 | page u32 | slot u16
//	Commit     xid u64
//	Abort      xid u64
//	Checkpoint manifest bytes (opaque to this package; the engine stores
//	           its catalog + bee-cache manifest as JSON)
//	BeeCombo   file u32 | combo bytes (opaque: the engine's encoding of one
//	           tuple-bee combination's specialized-attribute values; stored
//	           tuples elide those values, so bee creation is logged before
//	           the first insert record referencing the new beeID)
//
// The scan is strict about the tail: a crash may tear the last record
// (half-appended bytes with a CRC that cannot match), and Scan treats the
// first undecodable record as the end of the log — every record before it
// is intact (each carries its own CRC), everything from it on is
// discarded. The tail rule alone cannot tell a genuine torn tail from
// corruption earlier in the log (record boundaries past the damage would
// have to be guessed), so ProbeDiscarded checks the discarded bytes for
// an intact record — proof the log broke before its end — and recovery
// refuses to replay such a log, since truncating there would silently
// drop committed work.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"microspec/internal/storage/disk"
)

// Type identifies a log record kind.
type Type uint8

// Log record kinds.
const (
	TInsert Type = 1 + iota
	TDelete
	TCommit
	TAbort
	TCheckpoint
	TBeeCombo
)

func (t Type) String() string {
	switch t {
	case TInsert:
		return "insert"
	case TDelete:
		return "delete"
	case TCommit:
		return "commit"
	case TAbort:
		return "abort"
	case TCheckpoint:
		return "checkpoint"
	case TBeeCombo:
		return "bee_combo"
	}
	return fmt.Sprintf("wal.Type(%d)", uint8(t))
}

const (
	headerSize = 9 // crc u32 + len u32 + type u8

	// MaxPayload bounds a record's payload: a tuple fits in a page, and
	// the engine's checkpoint manifest is small JSON. Anything larger in
	// a length field is corruption, not data.
	MaxPayload = 1 << 20
)

// Record is one decoded log record. LSN is the offset just past the
// record in the log stream (assigned by the writer on append and by Scan
// on replay).
type Record struct {
	Type Type
	LSN  uint64

	Xid  uint64      // Insert, Delete, Commit, Abort
	File disk.FileID // Insert, Delete, BeeCombo
	Page int         // Insert, Delete
	Slot int         // Insert, Delete

	Tuple    []byte // Insert: the stored tuple image
	Manifest []byte // Checkpoint: engine manifest (opaque here)
	Combo    []byte // BeeCombo: engine-encoded combo values (opaque here)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. ErrTruncated means the buffer ends mid-record (a torn
// tail when it happens at the end of the log); ErrCorrupt means the bytes
// are complete but wrong (bad CRC, bad type, malformed payload).
var (
	ErrTruncated = errors.New("wal: truncated record")
	ErrCorrupt   = errors.New("wal: corrupt record")
)

// Encode serializes r (Type plus the fields its type uses) and returns
// the record bytes.
func Encode(r *Record) []byte {
	var payload []byte
	switch r.Type {
	case TInsert:
		payload = make([]byte, 18+len(r.Tuple))
		encodeTarget(payload, r)
		copy(payload[18:], r.Tuple)
	case TDelete:
		payload = make([]byte, 18)
		encodeTarget(payload, r)
	case TCommit, TAbort:
		payload = make([]byte, 8)
		binary.LittleEndian.PutUint64(payload, r.Xid)
	case TCheckpoint:
		payload = r.Manifest
	case TBeeCombo:
		payload = make([]byte, 4+len(r.Combo))
		binary.LittleEndian.PutUint32(payload[0:4], uint32(r.File))
		copy(payload[4:], r.Combo)
	default:
		panic(fmt.Sprintf("wal: Encode of unknown record type %d", r.Type))
	}
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(payload)))
	buf[8] = byte(r.Type)
	copy(buf[headerSize:], payload)
	binary.LittleEndian.PutUint32(buf[0:4], crc32.Checksum(buf[4:], castagnoli))
	return buf
}

func encodeTarget(payload []byte, r *Record) {
	binary.LittleEndian.PutUint64(payload[0:8], r.Xid)
	binary.LittleEndian.PutUint32(payload[8:12], uint32(r.File))
	binary.LittleEndian.PutUint32(payload[12:16], uint32(r.Page))
	binary.LittleEndian.PutUint16(payload[16:18], uint16(r.Slot))
}

// DecodeOne decodes the record at the start of data, returning it and the
// number of bytes consumed. ErrTruncated means data ends mid-record;
// ErrCorrupt means a CRC, type, or payload-shape violation.
func DecodeOne(data []byte) (Record, int, error) {
	if len(data) < headerSize {
		return Record{}, 0, ErrTruncated
	}
	plen := binary.LittleEndian.Uint32(data[4:8])
	if plen > MaxPayload {
		return Record{}, 0, fmt.Errorf("%w: payload length %d exceeds %d", ErrCorrupt, plen, MaxPayload)
	}
	total := headerSize + int(plen)
	if len(data) < total {
		return Record{}, 0, ErrTruncated
	}
	want := binary.LittleEndian.Uint32(data[0:4])
	if got := crc32.Checksum(data[4:total], castagnoli); got != want {
		return Record{}, 0, fmt.Errorf("%w: crc stored=%#08x computed=%#08x", ErrCorrupt, want, got)
	}
	r := Record{Type: Type(data[8])}
	payload := data[headerSize:total]
	switch r.Type {
	case TInsert:
		if len(payload) < 18 {
			return Record{}, 0, fmt.Errorf("%w: insert payload %d bytes", ErrCorrupt, len(payload))
		}
		decodeTarget(payload, &r)
		r.Tuple = append([]byte(nil), payload[18:]...)
	case TDelete:
		if len(payload) != 18 {
			return Record{}, 0, fmt.Errorf("%w: delete payload %d bytes", ErrCorrupt, len(payload))
		}
		decodeTarget(payload, &r)
	case TCommit, TAbort:
		if len(payload) != 8 {
			return Record{}, 0, fmt.Errorf("%w: %s payload %d bytes", ErrCorrupt, r.Type, len(payload))
		}
		r.Xid = binary.LittleEndian.Uint64(payload)
	case TCheckpoint:
		r.Manifest = append([]byte(nil), payload...)
	case TBeeCombo:
		if len(payload) < 4 {
			return Record{}, 0, fmt.Errorf("%w: bee-combo payload %d bytes", ErrCorrupt, len(payload))
		}
		r.File = disk.FileID(binary.LittleEndian.Uint32(payload[0:4]))
		r.Combo = append([]byte(nil), payload[4:]...)
	default:
		return Record{}, 0, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, data[8])
	}
	return r, total, nil
}

func decodeTarget(payload []byte, r *Record) {
	r.Xid = binary.LittleEndian.Uint64(payload[0:8])
	r.File = disk.FileID(binary.LittleEndian.Uint32(payload[8:12]))
	r.Page = int(binary.LittleEndian.Uint32(payload[12:16]))
	r.Slot = int(binary.LittleEndian.Uint16(payload[16:18]))
}

// Scan decodes the log contents read at base (see disk.LogDevice.LogRead)
// into records with their LSNs assigned. A torn tail — the final record
// truncated or checksum-broken by a crash — ends the scan cleanly:
// tornBytes reports how many trailing bytes were discarded. The first
// bad record always ends the scan, even when the damage is mid-log
// rather than a torn tail — continuing would require guessing record
// boundaries. Callers that must not lose committed work run
// ProbeDiscarded over the discarded region to detect that case.
func Scan(base uint64, data []byte) (recs []Record, end uint64, tornBytes int) {
	off := 0
	for off < len(data) {
		r, n, err := DecodeOne(data[off:])
		if err != nil {
			return recs, base + uint64(off), len(data) - off
		}
		off += n
		r.LSN = base + uint64(off)
		recs = append(recs, r)
	}
	return recs, base + uint64(off), 0
}

// ProbeDiscarded inspects the bytes Scan discarded under the tail rule
// and returns the offset of the first intact record inside them, or -1.
// A genuine torn tail is the prefix of a single half-appended record, so
// nothing decodes at any interior offset; an intact record (its CRC
// must match, so false positives need record-shaped bytes inside another
// record's payload) proves the log broke *before* its end, and replaying
// the truncated prefix would silently drop the committed work after the
// damage. The probe starts at offset 1: offset 0 is exactly where Scan
// already failed.
func ProbeDiscarded(discarded []byte) int {
	for off := 1; off < len(discarded); off++ {
		if _, _, err := DecodeOne(discarded[off:]); err == nil {
			return off
		}
	}
	return -1
}
