package wal

import (
	"bytes"
	"testing"
)

// FuzzDecodeOne hammers the record decoder with arbitrary bytes. The
// decoder guards recovery against torn tails and disk corruption, so the
// invariants are strict:
//
//  1. Never panic, never allocate from an attacker-controlled length
//     (MaxPayload bounds that).
//  2. If decode succeeds, re-encoding the decoded record must reproduce
//     the consumed bytes exactly — the codec is canonical, which is what
//     lets single-bit corruption always fail the CRC.
func FuzzDecodeOne(f *testing.F) {
	for _, r := range sampleRecords() {
		f.Add(Encode(&r))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := DecodeOne(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if got := Encode(&r); !bytes.Equal(got, data[:n]) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data[:n], got)
		}
	})
}

// FuzzScan checks the stream scanner on arbitrary bytes: it must
// terminate, consume monotonically, and account for every byte as either
// a scanned record or torn tail.
func FuzzScan(f *testing.F) {
	var stream []byte
	for _, r := range sampleRecords() {
		stream = append(stream, Encode(&r)...)
	}
	f.Add(stream)
	f.Add(stream[:len(stream)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, end, torn := Scan(0, data)
		if end > uint64(len(data)) {
			t.Fatalf("end %d past input length %d", end, len(data))
		}
		if int(end)+torn != len(data) {
			t.Fatalf("end %d + torn %d != len %d", end, torn, len(data))
		}
		var prev uint64
		for i, r := range recs {
			if r.LSN <= prev {
				t.Fatalf("record %d LSN %d not increasing past %d", i, r.LSN, prev)
			}
			prev = r.LSN
		}
	})
}
