package wal

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"microspec/internal/storage/disk"
)

// ErrDead reports an append or durability wait against a writer that has
// (simulated-)crashed: the harness's kill points stop the writer exactly
// where a process kill would, so in-flight commits observe an error
// instead of a hang, and nothing past the last sync survives.
var ErrDead = errors.New("wal: writer crashed")

// Writer appends records to the log device and makes them durable. Two
// sync policies:
//
//   - Group commit (the default): committers append their commit record
//     and block in WaitDurable; a single daemon goroutine issues one
//     LogSync covering every record appended so far and wakes all waiters
//     whose LSN it reached. While one sync is in flight — which takes real
//     time in the I/O-bound latency mode — more committers pile up, so
//     concurrent sessions amortize fsyncs (the paper-era group-commit
//     effect, measured in EXPERIMENTS.md E16).
//
//   - Naive (Naive: true): every WaitDurable issues its own LogSync,
//     serialized but never skipped — one fsync per commit, the baseline
//     group commit is measured against.
//
// All methods are safe for concurrent use.
type Writer struct {
	dev   disk.LogDevice
	naive bool

	mu     sync.Mutex
	cond   *sync.Cond
	synced uint64 // LSN through which the device is synced
	wanted uint64 // highest LSN any waiter needs
	closed bool
	dead   bool
	// failure records the device error that killed the writer, when it
	// died from a failing LogSync rather than a simulated crash.
	// WaitDurable surfaces it so committers see the real cause instead of
	// a bare ErrDead.
	failure error
	// crashNextSync arms a deterministic kill point: the next sync attempt
	// kills the writer instead of syncing (a crash after the commit or
	// checkpoint record was appended but before it became durable).
	crashNextSync bool

	// syncMu serializes naive-mode device syncs.
	syncMu sync.Mutex

	batches atomic.Int64 // LogSync calls issued by this writer
	waits   atomic.Int64 // WaitDurable calls that reached the sync path
}

// NewWriter starts a writer over dev. naive selects fsync-per-commit
// instead of group commit.
func NewWriter(dev disk.LogDevice, naive bool) *Writer {
	w := &Writer{dev: dev, naive: naive}
	w.cond = sync.NewCond(&w.mu)
	w.synced = dev.LogDurable()
	if !naive {
		go w.daemon()
	}
	return w
}

// Append encodes r and appends it to the volatile log tail, returning its
// LSN. The record is not durable until WaitDurable (or SyncNow) covers
// the returned LSN. The device append happens under the writer lock so
// it cannot race Kill: once Kill returns, no later append can land in
// the device and be carried into a crash image's torn tail.
func (w *Writer) Append(r *Record) (uint64, error) {
	buf := Encode(r)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return 0, ErrDead
	}
	return w.dev.LogAppend(buf)
}

// TailLSN returns the LSN of the current volatile log tail without
// appending anything. A page stamped with it cannot be written back
// before every record appended so far is durable (WAL-before-data);
// vacuum uses this to cover page changes whose logical justification —
// the reclaimed versions' delete and commit records — is already in the
// log rather than in a record of its own.
func (w *Writer) TailLSN() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return 0, ErrDead
	}
	return w.dev.LogAppend(nil)
}

// WaitDurable blocks until the log is durable through lsn. Under group
// commit the wait joins the current batch; under the naive policy it
// issues its own sync.
func (w *Writer) WaitDurable(lsn uint64) error {
	w.waits.Add(1)
	if w.naive {
		return w.naiveSync()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if lsn > w.wanted {
		w.wanted = lsn
		w.cond.Broadcast()
	}
	for w.synced < lsn && !w.dead && !w.closed {
		w.cond.Wait()
	}
	if w.synced < lsn {
		if w.failure != nil {
			return fmt.Errorf("wal: writer dead after sync failure: %w", w.failure)
		}
		return ErrDead
	}
	return nil
}

// SyncNow forces the log durable through everything appended so far
// (checkpoints and clean shutdown use it). An empty append reads the
// current tail LSN.
func (w *Writer) SyncNow() error {
	lsn, err := w.TailLSN()
	if err != nil {
		return err
	}
	return w.WaitDurable(lsn)
}

// naiveSync performs one unconditional device sync (fsync-per-commit).
func (w *Writer) naiveSync() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	if w.dead {
		w.mu.Unlock()
		return ErrDead
	}
	if w.crashNextSync {
		w.killLocked()
		w.mu.Unlock()
		return ErrDead
	}
	w.mu.Unlock()
	if err := w.dev.LogSync(); err != nil {
		return err
	}
	w.batches.Add(1)
	w.mu.Lock()
	if s := w.dev.LogDurable(); s > w.synced {
		w.synced = s
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	return nil
}

// daemon is the group-commit loop: whenever some waiter needs an LSN past
// the synced point, issue one sync covering the whole appended tail and
// wake everyone it satisfied.
func (w *Writer) daemon() {
	w.mu.Lock()
	for {
		for !w.closed && !w.dead && w.wanted <= w.synced {
			w.cond.Wait()
		}
		if w.closed || w.dead {
			w.mu.Unlock()
			return
		}
		if w.crashNextSync {
			w.killLocked()
			w.mu.Unlock()
			return
		}
		w.mu.Unlock()
		err := w.dev.LogSync()
		w.mu.Lock()
		if err != nil {
			// A failing device can never make more bytes durable; retrying
			// would spin forever with committers hung. Record the cause and
			// die: waiters wake and WaitDurable reports the error.
			w.failure = err
			w.killLocked()
			w.mu.Unlock()
			return
		}
		w.batches.Add(1)
		if s := w.dev.LogDurable(); s > w.synced {
			w.synced = s
		}
		w.cond.Broadcast()
	}
}

// killLocked marks the writer crashed and wakes every waiter. Callers
// hold w.mu.
func (w *Writer) killLocked() {
	w.dead = true
	w.cond.Broadcast()
}

// Kill simulates the process dying: no further appends or syncs succeed,
// and blocked committers return ErrDead. The device keeps only what was
// already synced (plus any torn tail disk.Manager.Crash carries over).
func (w *Writer) Kill() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.killLocked()
}

// CrashBeforeNextSync arms the deterministic mid-commit/mid-checkpoint
// kill point: the next sync attempt kills the writer before the device
// sync happens, so records appended since the last sync — including the
// commit or checkpoint record that triggered the sync — are lost.
func (w *Writer) CrashBeforeNextSync() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.crashNextSync = true
	w.cond.Broadcast()
}

// Dead reports whether the writer has been killed.
func (w *Writer) Dead() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dead
}

// Close performs a final sync and stops the daemon (clean shutdown).
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed || w.dead {
		w.closed = true
		w.cond.Broadcast()
		w.mu.Unlock()
		return nil
	}
	w.mu.Unlock()
	err := w.SyncNow()
	w.mu.Lock()
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	return err
}

// Stats returns the writer's sync batches and durability waits: the
// fsyncs-per-commit ratio the metrics plane surfaces is batches/waits.
func (w *Writer) Stats() (batches, waits int64) {
	return w.batches.Load(), w.waits.Load()
}
