package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"sync"
	"testing"

	"microspec/internal/storage/disk"
)

func sampleRecords() []Record {
	return []Record{
		{Type: TInsert, Xid: 7, File: 3, Page: 12, Slot: 4, Tuple: []byte("hello tuple")},
		{Type: TInsert, Xid: 1, File: 1, Page: 0, Slot: 0, Tuple: nil},
		{Type: TDelete, Xid: 7, File: 3, Page: 12, Slot: 4},
		{Type: TCommit, Xid: 7},
		{Type: TAbort, Xid: 9},
		{Type: TCheckpoint, Manifest: []byte(`{"relations":[]}`)},
		{Type: TCheckpoint, Manifest: nil},
		{Type: TBeeCombo, File: 3, Combo: []byte(`[{"i":1},{"b":"Tk8gIA=="}]`)},
		{Type: TBeeCombo, File: 1, Combo: nil},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, want := range sampleRecords() {
		buf := Encode(&want)
		got, n, err := DecodeOne(buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", want.Type, err)
		}
		if n != len(buf) {
			t.Fatalf("%s: consumed %d of %d bytes", want.Type, n, len(buf))
		}
		if got.Type != want.Type || got.Xid != want.Xid || got.File != want.File ||
			got.Page != want.Page || got.Slot != want.Slot {
			t.Fatalf("%s: round trip mismatch: got %+v want %+v", want.Type, got, want)
		}
		if !bytes.Equal(got.Tuple, want.Tuple) || !bytes.Equal(got.Manifest, want.Manifest) {
			t.Fatalf("%s: payload mismatch", want.Type)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	base := Encode(&Record{Type: TCommit, Xid: 42})

	// Every single-bit flip must fail the CRC (or, for length-field bits,
	// surface as truncation/corruption) — never decode to a wrong record.
	for i := range base {
		for bit := 0; bit < 8; bit++ {
			buf := append([]byte(nil), base...)
			buf[i] ^= 1 << bit
			if _, _, err := DecodeOne(buf); err == nil {
				t.Fatalf("bit flip at byte %d bit %d decoded successfully", i, bit)
			}
		}
	}

	// Unknown record type with a valid CRC.
	buf := append([]byte(nil), base...)
	buf[8] = 200
	fixCRC(buf)
	if _, _, err := DecodeOne(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown type: got %v, want ErrCorrupt", err)
	}

	// Wrong payload size for the type (commit with 9 payload bytes).
	buf = make([]byte, headerSize+9)
	binary.LittleEndian.PutUint32(buf[4:8], 9)
	buf[8] = byte(TCommit)
	fixCRC(buf)
	if _, _, err := DecodeOne(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized commit payload: got %v, want ErrCorrupt", err)
	}

	// Absurd length field: corruption, not a 4GB allocation.
	buf = append([]byte(nil), base...)
	binary.LittleEndian.PutUint32(buf[4:8], MaxPayload+1)
	if _, _, err := DecodeOne(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge length: got %v, want ErrCorrupt", err)
	}
}

func fixCRC(buf []byte) {
	binary.LittleEndian.PutUint32(buf[0:4], crc32.Checksum(buf[4:], castagnoli))
}

func TestScanAssignsLSNs(t *testing.T) {
	const base = 1000
	var stream []byte
	var ends []uint64
	for _, r := range sampleRecords() {
		stream = append(stream, Encode(&r)...)
		ends = append(ends, base+uint64(len(stream)))
	}
	recs, end, torn := Scan(base, stream)
	if torn != 0 {
		t.Fatalf("clean stream reported %d torn bytes", torn)
	}
	if end != base+uint64(len(stream)) {
		t.Fatalf("end %d, want %d", end, base+uint64(len(stream)))
	}
	if len(recs) != len(ends) {
		t.Fatalf("scanned %d records, want %d", len(recs), len(ends))
	}
	for i, r := range recs {
		if r.LSN != ends[i] {
			t.Fatalf("record %d LSN %d, want %d", i, r.LSN, ends[i])
		}
	}
}

// TestScanStrictTruncationProperty is the strict-truncation property test:
// for EVERY prefix of a record stream, Scan must return exactly the records
// that fit entirely in the prefix, report the remainder as torn, and stop
// at the last intact record boundary — no partial record is ever surfaced.
func TestScanStrictTruncationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 20; trial++ {
		var stream []byte
		var bounds []int // end offset of each record
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			r := randomRecord(rng)
			stream = append(stream, Encode(&r)...)
			bounds = append(bounds, len(stream))
		}
		for cut := 0; cut <= len(stream); cut++ {
			recs, end, torn := Scan(0, stream[:cut])
			wantRecs := 0
			wantEnd := 0
			for _, b := range bounds {
				if b <= cut {
					wantRecs++
					wantEnd = b
				}
			}
			if len(recs) != wantRecs {
				t.Fatalf("trial %d cut %d: %d records, want %d", trial, cut, len(recs), wantRecs)
			}
			if end != uint64(wantEnd) {
				t.Fatalf("trial %d cut %d: end %d, want %d", trial, cut, end, wantEnd)
			}
			if torn != cut-wantEnd {
				t.Fatalf("trial %d cut %d: torn %d, want %d", trial, cut, torn, cut-wantEnd)
			}
		}
	}
}

// TestScanStopsAtCorruptRecord: garbage mid-stream ends the scan there,
// even when intact records follow — the tail rule never guesses
// boundaries.
func TestScanStopsAtCorruptRecord(t *testing.T) {
	a := Encode(&Record{Type: TCommit, Xid: 1})
	b := Encode(&Record{Type: TCommit, Xid: 2})
	c := Encode(&Record{Type: TCommit, Xid: 3})
	stream := append(append(append([]byte(nil), a...), b...), c...)
	stream[len(a)+2] ^= 0xFF // corrupt record b
	recs, end, torn := Scan(0, stream)
	if len(recs) != 1 || recs[0].Xid != 1 {
		t.Fatalf("scanned %d records, want just xid 1", len(recs))
	}
	if end != uint64(len(a)) {
		t.Fatalf("end %d, want %d", end, len(a))
	}
	if torn != len(b)+len(c) {
		t.Fatalf("torn %d, want %d", torn, len(b)+len(c))
	}
}

// TestProbeDiscarded: the probe tells mid-log corruption (an intact
// record follows the damage) from a genuine torn tail (a prefix of one
// half-appended record, inside which nothing decodes).
func TestProbeDiscarded(t *testing.T) {
	a := Encode(&Record{Type: TCommit, Xid: 1})
	b := Encode(&Record{Type: TCommit, Xid: 2})
	c := Encode(&Record{Type: TCommit, Xid: 3})
	stream := append(append(append([]byte(nil), a...), b...), c...)
	stream[len(a)+2] ^= 0xFF // corrupt record b mid-log
	_, end, torn := Scan(0, stream)
	discarded := stream[end:]
	if torn != len(discarded) {
		t.Fatalf("torn %d != discarded region %d", torn, len(discarded))
	}
	if off := ProbeDiscarded(discarded); off != len(b) {
		t.Fatalf("probe offset %d, want %d (the intact record after the damage)", off, len(b))
	}

	// Every strict prefix of a single record is a plausible torn tail and
	// must probe clean.
	for cut := 1; cut < len(a); cut++ {
		if off := ProbeDiscarded(a[:cut]); off != -1 {
			t.Fatalf("torn prefix of %d bytes misreported as mid-log corruption at offset %d", cut, off)
		}
	}
	if off := ProbeDiscarded(nil); off != -1 {
		t.Fatalf("empty region probed at offset %d", off)
	}
}

func randomRecord(rng *rand.Rand) Record {
	switch rng.Intn(6) {
	case 0:
		tup := make([]byte, rng.Intn(40))
		rng.Read(tup)
		return Record{Type: TInsert, Xid: rng.Uint64(), File: disk.FileID(rng.Intn(10)),
			Page: rng.Intn(100), Slot: rng.Intn(64), Tuple: tup}
	case 1:
		return Record{Type: TDelete, Xid: rng.Uint64(), File: disk.FileID(rng.Intn(10)),
			Page: rng.Intn(100), Slot: rng.Intn(64)}
	case 2:
		return Record{Type: TCommit, Xid: rng.Uint64()}
	case 3:
		return Record{Type: TAbort, Xid: rng.Uint64()}
	case 4:
		c := make([]byte, rng.Intn(30))
		rng.Read(c)
		return Record{Type: TBeeCombo, File: disk.FileID(rng.Intn(10)), Combo: c}
	default:
		m := make([]byte, rng.Intn(60))
		rng.Read(m)
		return Record{Type: TCheckpoint, Manifest: m}
	}
}

// --- Writer ---

func TestWriterGroupCommitBatchesFsyncs(t *testing.T) {
	dm := disk.NewManager(disk.LatencyModel{})
	w := NewWriter(dm, false)
	defer w.Close()

	const committers = 32
	var wg sync.WaitGroup
	errs := make([]error, committers)
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := w.Append(&Record{Type: TCommit, Xid: uint64(i)})
			if err == nil {
				err = w.WaitDurable(lsn)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("committer %d: %v", i, err)
		}
	}
	batches, waits := w.Stats()
	if waits != committers {
		t.Fatalf("waits %d, want %d", waits, committers)
	}
	if batches < 1 || batches > waits {
		t.Fatalf("batches %d outside [1,%d]", batches, waits)
	}
	base, data := dm.LogRead()
	recs, _, torn := Scan(base, data)
	if torn != 0 || len(recs) != committers {
		t.Fatalf("durable log holds %d records (torn %d), want %d", len(recs), torn, committers)
	}
}

func TestWriterNaiveOneFsyncPerCommit(t *testing.T) {
	dm := disk.NewManager(disk.LatencyModel{})
	w := NewWriter(dm, true)
	defer w.Close()
	const commits = 10
	for i := 0; i < commits; i++ {
		lsn, err := w.Append(&Record{Type: TCommit, Xid: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	batches, waits := w.Stats()
	if batches != commits || waits != commits {
		t.Fatalf("batches=%d waits=%d, want %d each (naive is fsync-per-commit)", batches, waits, commits)
	}
}

// failingSyncDev is a log device whose fsync always fails.
type failingSyncDev struct {
	*disk.Manager
	err error
}

func (d *failingSyncDev) LogSync() error { return d.err }

// TestWriterGroupCommitSyncFailure: a persistently failing device must
// kill the writer and surface the error from WaitDurable — not leave the
// daemon busy-retrying with committers hung forever.
func TestWriterGroupCommitSyncFailure(t *testing.T) {
	dev := &failingSyncDev{Manager: disk.NewManager(disk.LatencyModel{}), err: errors.New("log device failure")}
	w := NewWriter(dev, false)
	lsn, err := w.Append(&Record{Type: TCommit, Xid: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = w.WaitDurable(lsn)
	if err == nil {
		t.Fatal("WaitDurable returned nil on a failing device")
	}
	if !errors.Is(err, dev.err) {
		t.Fatalf("WaitDurable error %v does not wrap the device failure", err)
	}
	if !w.Dead() {
		t.Fatal("writer still alive after sync failure")
	}
	if _, err := w.Append(&Record{Type: TCommit, Xid: 2}); !errors.Is(err, ErrDead) {
		t.Fatalf("append after sync failure: %v, want ErrDead", err)
	}
}

func TestWriterKill(t *testing.T) {
	dm := disk.NewManager(disk.LatencyModel{})
	w := NewWriter(dm, false)
	lsn, err := w.Append(&Record{Type: TCommit, Xid: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	w.Kill()
	if !w.Dead() {
		t.Fatal("writer not dead after Kill")
	}
	if _, err := w.Append(&Record{Type: TCommit, Xid: 2}); !errors.Is(err, ErrDead) {
		t.Fatalf("append after kill: %v, want ErrDead", err)
	}
	if err := w.WaitDurable(lsn + 1000); !errors.Is(err, ErrDead) {
		t.Fatalf("wait after kill: %v, want ErrDead", err)
	}
}

func TestWriterCrashBeforeNextSync(t *testing.T) {
	for _, naive := range []bool{false, true} {
		dm := disk.NewManager(disk.LatencyModel{})
		w := NewWriter(dm, naive)
		lsn, err := w.Append(&Record{Type: TCommit, Xid: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
		w.CrashBeforeNextSync()
		lsn2, err := w.Append(&Record{Type: TCommit, Xid: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WaitDurable(lsn2); !errors.Is(err, ErrDead) {
			t.Fatalf("naive=%v: armed crash: wait returned %v, want ErrDead", naive, err)
		}
		// The survivor image holds only the first commit: the second was
		// appended but never synced.
		crashed := dm.Crash(0)
		base, data := crashed.LogRead()
		recs, _, torn := Scan(base, data)
		if torn != 0 || len(recs) != 1 || recs[0].Xid != 1 {
			t.Fatalf("naive=%v: survivor log has %d records (torn %d), want just xid 1", naive, len(recs), torn)
		}
	}
}

func TestCrashTornTailDiscarded(t *testing.T) {
	dm := disk.NewManager(disk.LatencyModel{})
	w := NewWriter(dm, false)
	lsn, err := w.Append(&Record{Type: TCommit, Xid: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	// Appended but unsynced record; the crash carries over half of it.
	if _, err := w.Append(&Record{Type: TInsert, Xid: 2, File: 1, Page: 0, Slot: 0, Tuple: []byte("torn")}); err != nil {
		t.Fatal(err)
	}
	w.Kill()
	crashed := dm.Crash(7)
	base, data := crashed.LogRead()
	recs, end, torn := Scan(base, data)
	if len(recs) != 1 || recs[0].Xid != 1 {
		t.Fatalf("survivor log has %d records, want just the synced commit", len(recs))
	}
	if torn != 7 {
		t.Fatalf("torn %d bytes, want 7", torn)
	}
	if end != lsn {
		t.Fatalf("scan end %d, want synced lsn %d", end, lsn)
	}
}
