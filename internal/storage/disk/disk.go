// Package disk implements the simulated disk beneath the buffer pool: a
// per-file page store with a configurable latency model. The paper's
// cold-cache experiments (its Figure 5) measure how tuple-bee storage
// reduction translates into I/O-time reduction; with a simulated disk the
// same effect is produced by charging a fixed cost per page actually read,
// accumulated as simulated I/O time rather than slept, so experiments stay
// fast and deterministic (see DESIGN.md §1). Setting LatencyModel.Sleep
// makes the charge real — each transfer blocks its goroutine outside the
// device lock — which is how the multi-connection scaling experiments
// (E15) give concurrent sessions actual I/O waits to overlap.
package disk

import (
	"fmt"
	"sync"
	"time"
)

// PageSize is the size of every page, matching PostgreSQL's 8 KiB default.
const PageSize = 8192

// FileID names one relation's page file within a Manager.
type FileID uint32

// Device is the page-store interface the buffer pool and heaps sit on.
// Manager is the plain implementation; Faulty wraps any Device with
// fault injection (see faults.go). Implementations must be safe for
// concurrent use.
type Device interface {
	CreateFile() FileID
	DropFile(id FileID)
	NumPages(id FileID) (int, error)
	ExtendFile(id FileID) (int, error)
	ReadPage(id FileID, pageNo int, dst []byte) error
	WritePage(id FileID, pageNo int, src []byte) error
	SetLatency(lat LatencyModel)
	Stats() (reads, writes int64, simIO time.Duration)
	ResetStats()
}

// LogDevice is the append-only log store the WAL writer sits on, provided
// by the same simulated disk that holds the page files so a simulated
// crash (Crash) tears both consistently. LSNs are logical byte offsets
// into the log stream; an LSN returned by LogAppend is the offset just
// past the appended record, so "durable through lsn" means every byte
// before lsn survives a crash. Manager implements it; Faulty forwards it.
type LogDevice interface {
	// LogAppend appends rec to the volatile log tail and returns the LSN
	// just past it. The bytes are NOT durable until LogSync.
	LogAppend(rec []byte) (lsn uint64, err error)
	// LogSync makes every appended byte durable (the simulated fsync).
	LogSync() error
	// LogDurable returns the LSN through which the log is durable.
	LogDurable() uint64
	// LogRead returns the durable log contents: the LSN of the first
	// returned byte (records before it were truncated by a checkpoint)
	// and a copy of the durable bytes from there.
	LogRead() (base uint64, data []byte)
	// LogTruncatePrefix discards durable log bytes before lsn (called
	// after a checkpoint record at lsn is durable).
	LogTruncatePrefix(lsn uint64) error
	// LogStats returns cumulative append and sync counts.
	LogStats() (appends, syncs int64)
}

// LatencyModel charges simulated time per page transferred. Zero values
// disable the charge (the warm-cache configuration).
type LatencyModel struct {
	ReadPerPage  time.Duration
	WritePerPage time.Duration
	// LogSyncTime charges each LogSync (the simulated fsync). Group
	// commit's amortization is visible against a nonzero value: many
	// commits riding one sync pay the cost once.
	LogSyncTime time.Duration
	// Sleep makes the charge real: each page transfer blocks the calling
	// goroutine for the charged duration, slept outside the device lock
	// so transfers issued by different goroutines overlap — the I/O-bound
	// configuration the multi-connection scaling experiments use (E15).
	// When false (the default) the charge is only accumulated as simIO,
	// keeping single-threaded experiments fast and deterministic.
	Sleep bool
}

// DefaultColdLatency approximates a sequential HDD/SSD mix: 100µs per 8 KiB
// page read, 120µs per page write.
var DefaultColdLatency = LatencyModel{ReadPerPage: 100 * time.Microsecond, WritePerPage: 120 * time.Microsecond}

// Manager is a simulated disk: a set of page files plus I/O statistics.
// It is safe for concurrent use.
type Manager struct {
	mu      sync.Mutex
	files   map[FileID]*file
	nextID  FileID
	latency LatencyModel

	reads, writes int64
	simIO         time.Duration

	// The write-ahead log: a single append-only byte stream. logBase is
	// the LSN of log[0] (earlier bytes were truncated after a checkpoint);
	// logSynced is the LSN through which the stream is durable — on Crash
	// everything past it is torn away.
	log        []byte
	logBase    uint64
	logSynced  uint64
	logAppends int64
	logSyncs   int64
}

type file struct {
	pages [][]byte
}

// NewManager returns an empty simulated disk with the given latency model.
func NewManager(lat LatencyModel) *Manager {
	return &Manager{files: make(map[FileID]*file), nextID: 1, latency: lat}
}

// SetLatency swaps the latency model (e.g. warm → cold between runs).
func (m *Manager) SetLatency(lat LatencyModel) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.latency = lat
}

// CreateFile allocates a new empty page file.
func (m *Manager) CreateFile() FileID {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.nextID
	m.nextID++
	m.files[id] = &file{}
	return id
}

// DropFile releases a file and its pages.
func (m *Manager) DropFile(id FileID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, id)
}

// NumPages returns the page count of a file.
func (m *Manager) NumPages(id FileID) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[id]
	if !ok {
		return 0, fmt.Errorf("disk: no such file %d", id)
	}
	return len(f.pages), nil
}

// ExtendFile appends one zeroed page and returns its page number. The new
// page is charged as a write.
func (m *Manager) ExtendFile(id FileID) (int, error) {
	m.mu.Lock()
	f, ok := m.files[id]
	if !ok {
		m.mu.Unlock()
		return 0, fmt.Errorf("disk: no such file %d", id)
	}
	f.pages = append(f.pages, make([]byte, PageSize))
	m.writes++
	m.simIO += m.latency.WritePerPage
	n := len(f.pages) - 1
	sleep := m.sleepFor(m.latency.WritePerPage)
	m.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	return n, nil
}

// ReadPage copies page pageNo of the file into dst (length PageSize).
func (m *Manager) ReadPage(id FileID, pageNo int, dst []byte) error {
	m.mu.Lock()
	f, ok := m.files[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("disk: no such file %d", id)
	}
	if pageNo < 0 || pageNo >= len(f.pages) {
		m.mu.Unlock()
		return fmt.Errorf("disk: file %d has no page %d", id, pageNo)
	}
	copy(dst, f.pages[pageNo])
	m.reads++
	m.simIO += m.latency.ReadPerPage
	sleep := m.sleepFor(m.latency.ReadPerPage)
	m.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	return nil
}

// WritePage copies src (length PageSize) into page pageNo of the file.
func (m *Manager) WritePage(id FileID, pageNo int, src []byte) error {
	m.mu.Lock()
	f, ok := m.files[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("disk: no such file %d", id)
	}
	if pageNo < 0 || pageNo >= len(f.pages) {
		m.mu.Unlock()
		return fmt.Errorf("disk: file %d has no page %d", id, pageNo)
	}
	copy(f.pages[pageNo], src)
	m.writes++
	m.simIO += m.latency.WritePerPage
	sleep := m.sleepFor(m.latency.WritePerPage)
	m.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	return nil
}

// sleepFor returns the real-sleep duration for one transfer, zero unless
// the model's Sleep flag is set. Called with m.mu held; the sleep itself
// happens after the caller releases the lock so transfers overlap.
func (m *Manager) sleepFor(d time.Duration) time.Duration {
	if !m.latency.Sleep {
		return 0
	}
	return d
}

// CorruptPage flips bits in the stored copy of a page by XOR-ing xor into
// the byte at off — the chaos/test hook for simulating at-rest corruption
// without going through the I/O accounting.
func (m *Manager) CorruptPage(id FileID, pageNo, off int, xor byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[id]
	if !ok {
		return fmt.Errorf("disk: no such file %d", id)
	}
	if pageNo < 0 || pageNo >= len(f.pages) {
		return fmt.Errorf("disk: file %d has no page %d", id, pageNo)
	}
	if off < 0 || off >= PageSize {
		return fmt.Errorf("disk: offset %d outside page", off)
	}
	f.pages[pageNo][off] ^= xor
	return nil
}

// --- Write-ahead log ---

// LogAppend appends rec to the volatile log tail and returns the LSN just
// past it. Append charges no latency: the cost model puts log I/O in
// LogSync, which is what group commit amortizes.
func (m *Manager) LogAppend(rec []byte) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.log = append(m.log, rec...)
	if len(rec) > 0 {
		m.logAppends++
	}
	return m.logBase + uint64(len(m.log)), nil
}

// LogSync makes every appended log byte durable.
func (m *Manager) LogSync() error {
	m.mu.Lock()
	m.logSynced = m.logBase + uint64(len(m.log))
	m.logSyncs++
	m.simIO += m.latency.LogSyncTime
	var sleep time.Duration
	if m.latency.Sleep {
		sleep = m.latency.LogSyncTime
	}
	m.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	return nil
}

// LogDurable returns the LSN through which the log is durable.
func (m *Manager) LogDurable() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.logSynced
}

// LogRead returns the base LSN and a copy of the durable log bytes.
func (m *Manager) LogRead() (uint64, []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.logSynced - m.logBase
	return m.logBase, append([]byte(nil), m.log[:n]...)
}

// LogTruncatePrefix discards durable log bytes before lsn.
func (m *Manager) LogTruncatePrefix(lsn uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if lsn < m.logBase {
		return nil
	}
	if lsn > m.logSynced {
		return fmt.Errorf("disk: truncating log to unsynced lsn %d (durable %d)", lsn, m.logSynced)
	}
	m.log = append([]byte(nil), m.log[lsn-m.logBase:]...)
	m.logBase = lsn
	return nil
}

// LogStats returns cumulative log append and sync counts.
func (m *Manager) LogStats() (appends, syncs int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.logAppends, m.logSyncs
}

// Crash simulates pulling the plug: it returns a new Manager holding what
// a restarted process would find on disk. Page files survive in full
// (every WritePage was immediately durable — the buffer pool's unflushed
// dirty pages are what's lost, and they live above this layer), while the
// log survives only through its synced prefix. tearBytes > 0 additionally
// carries over that many unsynced bytes past the synced prefix — a torn
// log tail, which recovery's scan must detect and discard. The original
// Manager remains usable (the harness keeps it to compare baselines).
func (m *Manager) Crash(tearBytes int) *Manager {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &Manager{
		files:   make(map[FileID]*file, len(m.files)),
		nextID:  m.nextID,
		latency: m.latency,
	}
	for id, f := range m.files {
		nf := &file{pages: make([][]byte, len(f.pages))}
		for i, pg := range f.pages {
			nf.pages[i] = append([]byte(nil), pg...)
		}
		c.files[id] = nf
	}
	keep := int(m.logSynced - m.logBase)
	if tearBytes > 0 {
		keep += tearBytes
		if keep > len(m.log) {
			keep = len(m.log)
		}
	}
	c.log = append([]byte(nil), m.log[:keep]...)
	c.logBase = m.logBase
	// Everything the crashed image holds is, by definition, durable.
	c.logSynced = c.logBase + uint64(len(c.log))
	return c
}

// Stats returns cumulative read/write page counts and simulated I/O time.
func (m *Manager) Stats() (reads, writes int64, simIO time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reads, m.writes, m.simIO
}

// ResetStats zeroes the counters (between experiment phases).
func (m *Manager) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reads, m.writes, m.simIO = 0, 0, 0
}
