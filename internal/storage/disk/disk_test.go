package disk

import (
	"bytes"
	"testing"
	"time"
)

func TestFileLifecycle(t *testing.T) {
	m := NewManager(LatencyModel{})
	f := m.CreateFile()
	if n, err := m.NumPages(f); err != nil || n != 0 {
		t.Fatalf("new file pages = %d, %v", n, err)
	}
	p0, err := m.ExtendFile(f)
	if err != nil || p0 != 0 {
		t.Fatalf("extend: %d, %v", p0, err)
	}
	p1, _ := m.ExtendFile(f)
	if p1 != 1 {
		t.Fatalf("second extend = %d", p1)
	}
	src := make([]byte, PageSize)
	copy(src, "payload")
	if err := m.WritePage(f, 1, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, PageSize)
	if err := m.ReadPage(f, 1, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Error("read-back mismatch")
	}
	// Page 0 still zero.
	if err := m.ReadPage(f, 0, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0 {
		t.Error("page 0 must be zeroed")
	}
	m.DropFile(f)
	if err := m.ReadPage(f, 0, dst); err == nil {
		t.Error("read after drop must fail")
	}
}

func TestErrorPaths(t *testing.T) {
	m := NewManager(LatencyModel{})
	f := m.CreateFile()
	buf := make([]byte, PageSize)
	if err := m.ReadPage(f, 0, buf); err == nil {
		t.Error("read past EOF must fail")
	}
	if err := m.WritePage(f, 3, buf); err == nil {
		t.Error("write past EOF must fail")
	}
	if err := m.ReadPage(999, 0, buf); err == nil {
		t.Error("unknown file must fail")
	}
	if _, err := m.ExtendFile(999); err == nil {
		t.Error("extend of unknown file must fail")
	}
	if _, err := m.NumPages(999); err == nil {
		t.Error("NumPages of unknown file must fail")
	}
}

func TestLatencyAccounting(t *testing.T) {
	m := NewManager(LatencyModel{ReadPerPage: time.Millisecond, WritePerPage: 2 * time.Millisecond})
	f := m.CreateFile()
	m.ExtendFile(f) // 1 write
	buf := make([]byte, PageSize)
	m.ReadPage(f, 0, buf)  // 1 read
	m.WritePage(f, 0, buf) // 1 write
	m.ReadPage(f, 0, buf)  // 1 read
	reads, writes, sim := m.Stats()
	if reads != 2 || writes != 2 {
		t.Errorf("reads=%d writes=%d", reads, writes)
	}
	if want := 2*time.Millisecond + 2*2*time.Millisecond; sim != want {
		t.Errorf("simIO = %v, want %v", sim, want)
	}
	m.ResetStats()
	if r, w, s := m.Stats(); r != 0 || w != 0 || s != 0 {
		t.Error("ResetStats must zero counters")
	}
	// Swapping to the warm model stops the charging.
	m.SetLatency(LatencyModel{})
	m.ReadPage(f, 0, buf)
	if _, _, s := m.Stats(); s != 0 {
		t.Errorf("warm model must not charge time, got %v", s)
	}
}
