package disk

import (
	"bytes"
	"testing"
	"time"
)

func newFaultyFile(t *testing.T) (*Faulty, FileID, []byte) {
	t.Helper()
	m := NewManager(LatencyModel{})
	fd := NewFaulty(m, FaultConfig{Seed: 1})
	id := fd.CreateFile()
	if _, err := fd.ExtendFile(id); err != nil {
		t.Fatal(err)
	}
	src := make([]byte, PageSize)
	for i := range src {
		src[i] = byte(i)
	}
	if err := fd.WritePage(id, 0, src); err != nil {
		t.Fatal(err)
	}
	return fd, id, src
}

func TestFaultyDisabledIsTransparent(t *testing.T) {
	fd, id, src := newFaultyFile(t)
	dst := make([]byte, PageSize)
	if err := fd.ReadPage(id, 0, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Error("disabled Faulty altered page content")
	}
	if s := fd.FaultStats(); s.Injected != 0 {
		t.Errorf("disabled Faulty injected %d faults", s.Injected)
	}
}

func TestFailNextReads(t *testing.T) {
	fd, id, _ := newFaultyFile(t)
	fd.SetEnabled(true)
	fd.FailNextReads(2)
	dst := make([]byte, PageSize)
	for i := 0; i < 2; i++ {
		err := fd.ReadPage(id, 0, dst)
		if !IsTransient(err) {
			t.Fatalf("read %d: err=%v, want transient", i, err)
		}
	}
	if err := fd.ReadPage(id, 0, dst); err != nil {
		t.Fatalf("read after failpoint drained: %v", err)
	}
	if s := fd.FaultStats(); s.ReadErrs != 2 {
		t.Errorf("ReadErrs = %d, want 2", s.ReadErrs)
	}
}

func TestBitFlipOnlyCorruptsCopy(t *testing.T) {
	fd, id, src := newFaultyFile(t)
	fd.SetEnabled(true)
	// Force a bit flip on (nearly) every read; no other failpoints.
	fd.SetConfig(FaultConfig{BitFlip: 1.0})
	dst := make([]byte, PageSize)
	if err := fd.ReadPage(id, 0, dst); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(dst, src) {
		t.Fatal("bit flip did not alter the returned copy")
	}
	// The stored page is intact: a clean re-read matches.
	fd.SetEnabled(false)
	if err := fd.ReadPage(id, 0, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Error("bit flip corrupted the stored page")
	}
}

func TestTornWriteCorruptsStoredPage(t *testing.T) {
	fd, id, src := newFaultyFile(t)
	fd.SetEnabled(true)
	fd.SetConfig(FaultConfig{TornWrite: 1.0})
	if err := fd.WritePage(id, 0, src); err != nil {
		t.Fatalf("torn write must report success, got %v", err)
	}
	fd.SetEnabled(false)
	dst := make([]byte, PageSize)
	if err := fd.ReadPage(id, 0, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst[:PageSize/2], src[:PageSize/2]) {
		t.Error("torn write lost the first half")
	}
	for i := PageSize / 2; i < PageSize; i++ {
		if dst[i] != 0 {
			t.Fatalf("torn write kept byte %d of the second half", i)
		}
	}
}

func TestLatencySpikeChargesSimIO(t *testing.T) {
	fd, id, _ := newFaultyFile(t)
	fd.SetEnabled(true)
	fd.SetConfig(FaultConfig{LatencySpike: 1.0, Spike: time.Millisecond})
	dst := make([]byte, PageSize)
	if err := fd.ReadPage(id, 0, dst); err != nil {
		t.Fatal(err)
	}
	if _, _, simIO := fd.Stats(); simIO < time.Millisecond {
		t.Errorf("simIO = %v, want >= 1ms spike", simIO)
	}
}

func TestCorruptPageHook(t *testing.T) {
	m := NewManager(LatencyModel{})
	id := m.CreateFile()
	if _, err := m.ExtendFile(id); err != nil {
		t.Fatal(err)
	}
	r0, w0, _ := m.Stats()
	if err := m.CorruptPage(id, 0, 17, 0xFF); err != nil {
		t.Fatal(err)
	}
	r1, w1, _ := m.Stats()
	if r1 != r0 || w1 != w0 {
		t.Error("CorruptPage must not touch I/O stats")
	}
	dst := make([]byte, PageSize)
	if err := m.ReadPage(id, 0, dst); err != nil {
		t.Fatal(err)
	}
	if dst[17] != 0xFF {
		t.Errorf("byte 17 = %#x, want 0xFF", dst[17])
	}
}
