package disk

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// This file implements fault injection beneath the buffer pool: Faulty
// wraps any Device and perturbs its reads and writes according to a
// seeded schedule. The failpoints model the disk failures real DBMSes
// harden against:
//
//   - transient read errors: ReadPage fails with a retryable error
//     (IsTransient reports true); the buffer pool retries with backoff;
//   - bit flips: the copy returned by ReadPage has one bit flipped while
//     the stored page stays intact — the page checksum catches it and a
//     re-read succeeds (transient corruption);
//   - torn writes: WritePage persists only the first half of the page and
//     reports success — the stored page is corrupt until rewritten, so
//     later reads fail their checksum persistently;
//   - latency spikes: a read occasionally charges extra simulated I/O
//     time, surfaced through Stats like the ordinary latency model.
//
// Injection draws from one seeded PRNG, so a fixed seed yields a
// reproducible fault schedule on a serial workload (concurrent workers
// interleave draws nondeterministically; the chaos harness asserts
// schedule-independent invariants, not exact fault placement).

// ErrTransient marks an injected fault that a bounded retry is expected
// to clear. Match with errors.Is or IsTransient.
var ErrTransient = errors.New("transient I/O fault")

// IsTransient reports whether err is a retryable injected fault.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// FaultConfig sets the per-operation probabilities of each failpoint
// (all in [0,1]) and the seed of the schedule.
type FaultConfig struct {
	Seed int64
	// ReadErr is the probability a ReadPage fails transiently.
	ReadErr float64
	// BitFlip is the probability a ReadPage's returned copy has one bit
	// flipped (the stored page is untouched).
	BitFlip float64
	// TornWrite is the probability a WritePage persists only the first
	// half of the page yet reports success.
	TornWrite float64
	// LatencySpike is the probability a ReadPage charges Spike extra
	// simulated I/O time.
	LatencySpike float64
	// Spike is the extra simulated latency per spike (default 2ms).
	Spike time.Duration
}

// DefaultChaosFaults is the chaos harness's standard schedule: frequent
// transient faults, rare persistent ones.
var DefaultChaosFaults = FaultConfig{
	ReadErr:      0.02,
	BitFlip:      0.01,
	TornWrite:    0.002,
	LatencySpike: 0.01,
	Spike:        2 * time.Millisecond,
}

// FaultStats counts injected faults by kind.
type FaultStats struct {
	Injected      int64         `json:"injected"`
	ReadErrs      int64         `json:"read_errs"`
	BitFlips      int64         `json:"bit_flips"`
	TornWrites    int64         `json:"torn_writes"`
	LatencySpikes int64         `json:"latency_spikes"`
	SpikeTime     time.Duration `json:"spike_time_ns"`
}

// Faulty is a fault-injecting Device wrapper. Faults are injected only
// while enabled, so data can be loaded cleanly and the failpoints armed
// afterwards.
type Faulty struct {
	inner Device

	mu        sync.Mutex
	cfg       FaultConfig
	rng       *rand.Rand
	enabled   bool
	failReads int // deterministic failpoint: next n reads fail transiently
	stats     FaultStats
}

// NewFaulty wraps inner with the given fault schedule, initially
// disabled.
func NewFaulty(inner Device, cfg FaultConfig) *Faulty {
	if cfg.Spike <= 0 {
		cfg.Spike = 2 * time.Millisecond
	}
	return &Faulty{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Inner returns the wrapped device.
func (f *Faulty) Inner() Device { return f.inner }

// SetConfig swaps the fault schedule. The PRNG is not reseeded, so the
// schedule continues from the current draw position.
func (f *Faulty) SetConfig(cfg FaultConfig) {
	if cfg.Spike <= 0 {
		cfg.Spike = 2 * time.Millisecond
	}
	f.mu.Lock()
	f.cfg = cfg
	f.mu.Unlock()
}

// SetEnabled arms or disarms every failpoint.
func (f *Faulty) SetEnabled(on bool) {
	f.mu.Lock()
	f.enabled = on
	f.mu.Unlock()
}

// Enabled reports whether faults are being injected.
func (f *Faulty) Enabled() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.enabled
}

// FailNextReads arms a deterministic failpoint: the next n reads fail
// transiently regardless of probabilities (tests of the retry path).
func (f *Faulty) FailNextReads(n int) {
	f.mu.Lock()
	f.failReads = n
	f.mu.Unlock()
}

// FaultStats returns cumulative injected-fault counts.
func (f *Faulty) FaultStats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// CreateFile implements Device.
func (f *Faulty) CreateFile() FileID { return f.inner.CreateFile() }

// DropFile implements Device.
func (f *Faulty) DropFile(id FileID) { f.inner.DropFile(id) }

// NumPages implements Device.
func (f *Faulty) NumPages(id FileID) (int, error) { return f.inner.NumPages(id) }

// ExtendFile implements Device.
func (f *Faulty) ExtendFile(id FileID) (int, error) { return f.inner.ExtendFile(id) }

// SetLatency implements Device.
func (f *Faulty) SetLatency(lat LatencyModel) { f.inner.SetLatency(lat) }

// Stats implements Device; injected latency spikes are folded into the
// simulated I/O time.
func (f *Faulty) Stats() (reads, writes int64, simIO time.Duration) {
	reads, writes, simIO = f.inner.Stats()
	f.mu.Lock()
	simIO += f.stats.SpikeTime
	f.mu.Unlock()
	return reads, writes, simIO
}

// ResetStats implements Device. Fault counts are kept (they describe the
// schedule, not the workload phase); spike time is folded into simIO and
// resets with it.
func (f *Faulty) ResetStats() {
	f.inner.ResetStats()
	f.mu.Lock()
	f.stats.SpikeTime = 0
	f.mu.Unlock()
}

// readFault draws this read's faults: a transient error, or a bit-flip
// position (-1 = none) plus any latency spike.
func (f *Faulty) readFault() (fail bool, flipByte int, flipBit byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	flipByte = -1
	if !f.enabled {
		return false, -1, 0
	}
	if f.failReads > 0 {
		f.failReads--
		f.stats.Injected++
		f.stats.ReadErrs++
		return true, -1, 0
	}
	if f.cfg.ReadErr > 0 && f.rng.Float64() < f.cfg.ReadErr {
		f.stats.Injected++
		f.stats.ReadErrs++
		return true, -1, 0
	}
	if f.cfg.LatencySpike > 0 && f.rng.Float64() < f.cfg.LatencySpike {
		f.stats.Injected++
		f.stats.LatencySpikes++
		f.stats.SpikeTime += f.cfg.Spike
	}
	if f.cfg.BitFlip > 0 && f.rng.Float64() < f.cfg.BitFlip {
		f.stats.Injected++
		f.stats.BitFlips++
		return false, f.rng.Intn(PageSize), 1 << f.rng.Intn(8)
	}
	return false, -1, 0
}

// ReadPage implements Device with the read failpoints applied.
func (f *Faulty) ReadPage(id FileID, pageNo int, dst []byte) error {
	fail, flipByte, flipBit := f.readFault()
	if fail {
		return fmt.Errorf("disk: read of page %d/%d: %w (injected)", id, pageNo, ErrTransient)
	}
	if err := f.inner.ReadPage(id, pageNo, dst); err != nil {
		return err
	}
	if flipByte >= 0 && flipByte < len(dst) {
		dst[flipByte] ^= flipBit
	}
	return nil
}

// --- LogDevice forwarding ---
//
// The log path is forwarded to the wrapped device untouched: the WAL has
// its own integrity story (per-record CRCs, strict truncation at the first
// invalid record), and the kill-and-recover harness injects log damage
// directly via Crash's torn tail rather than probabilistically here.

func (f *Faulty) logDev() LogDevice {
	ld, ok := f.inner.(LogDevice)
	if !ok {
		panic("disk: Faulty's inner device does not implement LogDevice")
	}
	return ld
}

// LogAppend implements LogDevice.
func (f *Faulty) LogAppend(rec []byte) (uint64, error) { return f.logDev().LogAppend(rec) }

// LogSync implements LogDevice.
func (f *Faulty) LogSync() error { return f.logDev().LogSync() }

// LogDurable implements LogDevice.
func (f *Faulty) LogDurable() uint64 { return f.logDev().LogDurable() }

// LogRead implements LogDevice.
func (f *Faulty) LogRead() (uint64, []byte) { return f.logDev().LogRead() }

// LogTruncatePrefix implements LogDevice.
func (f *Faulty) LogTruncatePrefix(lsn uint64) error { return f.logDev().LogTruncatePrefix(lsn) }

// LogStats implements LogDevice.
func (f *Faulty) LogStats() (appends, syncs int64) { return f.logDev().LogStats() }

// WritePage implements Device with the torn-write failpoint applied: a
// torn write persists the first half of the page, zeroes the rest, and
// reports success — exactly the silent corruption page checksums exist
// to catch.
func (f *Faulty) WritePage(id FileID, pageNo int, src []byte) error {
	torn := false
	f.mu.Lock()
	if f.enabled && f.cfg.TornWrite > 0 && f.rng.Float64() < f.cfg.TornWrite {
		torn = true
		f.stats.Injected++
		f.stats.TornWrites++
	}
	f.mu.Unlock()
	if torn {
		half := make([]byte, PageSize)
		copy(half, src[:PageSize/2])
		return f.inner.WritePage(id, pageNo, half)
	}
	return f.inner.WritePage(id, pageNo, src)
}
