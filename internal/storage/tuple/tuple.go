// Package tuple implements the on-page tuple format and the two generic
// routines the paper micro-specializes: SlotDeform, a faithful port of
// PostgreSQL's slot_deform_tuple (Listing 1 of the paper), and Form, the
// analogue of heap_fill_tuple. The specialized counterparts (the GCL and
// SCL bee routines) live in internal/core.
//
// # Layout
//
// A stored tuple is:
//
//	offset 0..1   beeID (uint16, little-endian; 0 = no tuple bee)
//	offset 2      flags (bit 0: tuple has a null bitmap)
//	offset 3      hoff  (byte offset of the data area)
//	offset 4..    null bitmap, ceil(natts/8) bytes, iff flag bit 0
//	offset hoff.. attribute data
//
// hoff is rounded up to 8 so that, with tuples placed at 8-aligned page
// offsets, each attribute's alignment within the data area equals its
// required storage alignment. In the data area each attribute is padded to
// its type's alignment; fixed-length values are stored raw
// (little-endian), and variable-length values ("varlena") are a 4-byte
// payload length followed by the payload, 4-aligned.
//
// In the null bitmap a set bit means the attribute IS null (PostgreSQL
// inverts this; the choice is internal to the format).
package tuple

import (
	"encoding/binary"
	"fmt"
	"math"

	"microspec/internal/catalog"
	"microspec/internal/profile"
	"microspec/internal/types"
)

// HeaderSize is the fixed tuple-header length before any null bitmap.
const HeaderSize = 4

const flagHasNulls = 0x1

// BeeID reads the tuple-bee identifier from a stored tuple.
func BeeID(tup []byte) uint16 {
	return binary.LittleEndian.Uint16(tup[0:2])
}

// HasNulls reports whether the stored tuple carries a null bitmap.
func HasNulls(tup []byte) bool { return tup[2]&flagHasNulls != 0 }

// HOff returns the offset of the data area.
func HOff(tup []byte) int { return int(tup[3]) }

// attIsNull tests the null bitmap (bits start right after the header).
func attIsNull(attnum int, bits []byte) bool {
	return bits[attnum>>3]&(1<<(uint(attnum)&7)) != 0
}

// headerSize returns the full header length (header + optional bitmap),
// rounded up to 8 for data-area alignment.
func headerSize(natts int, hasNulls bool) int {
	h := HeaderSize
	if hasNulls {
		h += (natts + 7) / 8
	}
	return (h + 7) &^ 7
}

func alignUp(off, align int) int { return (off + align - 1) &^ (align - 1) }

// DataSize computes the data-area size Form will produce for the stored
// (non-specialized) attributes of rel, the analogue of PostgreSQL's
// heap_compute_data_size. Values for CHAR(n) attributes may be shorter
// than n; they are blank-padded at fill time.
func DataSize(rel *catalog.Relation, values []types.Datum) (int, error) {
	off := 0
	for i := range rel.Attrs {
		if rel.IsSpecialized(i) {
			continue
		}
		a := &rel.Attrs[i]
		v := values[i]
		if v.IsNull() {
			if a.NotNull {
				return 0, fmt.Errorf("null value in NOT NULL attribute %s.%s", rel.Name, a.Name)
			}
			continue
		}
		if a.Len >= 0 {
			off = alignUp(off, a.Align) + a.Len
		} else {
			n := len(v.Bytes())
			if a.Type.Width > 0 && n > a.Type.Width {
				return 0, fmt.Errorf("value too long for %s.%s: %d > %d", rel.Name, a.Name, n, a.Type.Width)
			}
			off = alignUp(off, a.Align) + 4 + n
		}
	}
	return off, nil
}

// Form builds the stored byte form of a tuple — the generic
// heap_fill_tuple path. It handles both stock relations and tuple-bee
// relations (specialized attributes are simply skipped; the bee module's
// SCL routine is the specialized alternative that the paper replaces this
// with). beeID is written into the header.
//
// Form charges the generic-fill instruction costs to prof (CompFill).
func Form(rel *catalog.Relation, values []types.Datum, beeID uint16, prof *profile.Counters) ([]byte, error) {
	natts := len(rel.Attrs)
	if len(values) != natts {
		return nil, fmt.Errorf("relation %s: %d values for %d attributes", rel.Name, len(values), natts)
	}
	hasNulls := false
	for i := range rel.Attrs {
		if values[i].IsNull() && !rel.IsSpecialized(i) {
			if rel.Attrs[i].NotNull {
				return nil, fmt.Errorf("null value in NOT NULL attribute %s.%s", rel.Name, rel.Attrs[i].Name)
			}
			hasNulls = true
		}
	}
	dataSize, err := DataSize(rel, values)
	if err != nil {
		return nil, err
	}
	hoff := headerSize(natts, hasNulls)
	tup := make([]byte, hoff+dataSize)
	binary.LittleEndian.PutUint16(tup[0:2], beeID)
	if hasNulls {
		tup[2] |= flagHasNulls
	}
	tup[3] = byte(hoff)

	cost := int64(profile.FillBase)
	bits := tup[HeaderSize:]
	off := 0
	data := tup[hoff:]
	for i := range rel.Attrs {
		a := &rel.Attrs[i]
		if rel.IsSpecialized(i) {
			continue
		}
		v := values[i]
		if hasNulls {
			cost += profile.FillNullableAttr
			if v.IsNull() {
				bits[i>>3] |= 1 << (uint(i) & 7)
				continue
			}
		}
		if a.Len >= 0 {
			cost += profile.FillFixedAttr
			off = alignUp(off, a.Align)
			fillFixed(data[off:off+a.Len], a, v)
			off += a.Len
		} else {
			cost += profile.FillVarlenaAttr
			off = alignUp(off, a.Align)
			b := v.Bytes()
			binary.LittleEndian.PutUint32(data[off:off+4], uint32(len(b)))
			copy(data[off+4:], b)
			off += 4 + len(b)
		}
	}
	prof.Add(profile.CompFill, cost)
	return tup, nil
}

// fillFixed stores one fixed-length value.
func fillFixed(dst []byte, a *catalog.Attribute, v types.Datum) {
	switch a.Type.Kind {
	case types.KindInt32, types.KindDate:
		binary.LittleEndian.PutUint32(dst, uint32(int32(v.Int64())))
	case types.KindInt64:
		binary.LittleEndian.PutUint64(dst, uint64(v.Int64()))
	case types.KindFloat64:
		binary.LittleEndian.PutUint64(dst, math.Float64bits(v.Float64()))
	case types.KindBool:
		if v.Bool() {
			dst[0] = 1
		} else {
			dst[0] = 0
		}
	case types.KindChar:
		n := copy(dst, v.Bytes())
		for ; n < len(dst); n++ {
			dst[n] = ' '
		}
	}
}

// SlotDeform extracts the first natts attributes of a stored tuple into
// values. It is a faithful port of the paper's Listing 1
// (slot_deform_tuple): a per-attribute loop that consults the catalog
// metadata (attlen, attalign, attcacheoff), tests the null bitmap, tracks
// the "slow" flag once offsets stop being cacheable, and dispatches on the
// attribute type to fetch the value. It must only be used on tuples of
// non-specialized relations (the stock format); tuple-bee relations are
// deformed by the GCL bee routine.
//
// values[i] receives a Datum whose byte payloads alias tup; callers that
// outlive the underlying page must copy.
func SlotDeform(rel *catalog.Relation, tup []byte, values []types.Datum, natts int, prof *profile.Counters) {
	cost := int64(profile.DeformBase)
	hasNulls := HasNulls(tup)
	var bits []byte
	if hasNulls {
		bits = tup[HeaderSize:]
	}
	data := tup[HOff(tup):]
	off := 0
	slow := false
	for attnum := 0; attnum < natts; attnum++ {
		thisatt := &rel.Attrs[attnum]
		if hasNulls {
			cost += profile.DeformNullBitmapCheck
			if attIsNull(attnum, bits) {
				values[attnum] = types.Null
				slow = true
				cost += profile.DeformNullAttr
				continue
			}
		}
		if !slow && thisatt.CacheOff >= 0 {
			off = thisatt.CacheOff
		} else if thisatt.Len == -1 {
			// Variable-length attribute: align, unless the value starts
			// with a nonzero byte at an unaligned offset — our varlena is
			// always aligned, so this mirrors att_align_pointer's aligned
			// branch.
			off = alignUp(off, thisatt.Align)
		} else {
			off = alignUp(off, thisatt.Align)
		}
		if thisatt.Len == -1 {
			cost += profile.DeformVarlenaAttr
		} else {
			cost += profile.DeformFixedAttr
		}
		if slow {
			cost += profile.DeformSlowAttr
		}
		values[attnum] = fetchAtt(thisatt, data, off)
		if thisatt.Len == -1 {
			off += 4 + int(binary.LittleEndian.Uint32(data[off:]))
			slow = true
		} else {
			off += thisatt.Len
		}
	}
	prof.Add(profile.CompDeform, cost)
}

// fetchAtt converts the stored bytes of one attribute into a Datum — the
// analogue of PostgreSQL's fetchatt macro ("bytes, shorts, and ints are
// cast to longs and strings are cast to pointers").
func fetchAtt(a *catalog.Attribute, data []byte, off int) types.Datum {
	switch a.Type.Kind {
	case types.KindInt32:
		return types.NewInt32(int32(binary.LittleEndian.Uint32(data[off:])))
	case types.KindDate:
		return types.NewDate(int32(binary.LittleEndian.Uint32(data[off:])))
	case types.KindInt64:
		return types.NewInt64(int64(binary.LittleEndian.Uint64(data[off:])))
	case types.KindFloat64:
		return types.NewFloat64(math.Float64frombits(binary.LittleEndian.Uint64(data[off:])))
	case types.KindBool:
		return types.NewBool(data[off] != 0)
	case types.KindChar:
		return types.NewBytes(data[off:off+a.Len:off+a.Len], types.KindChar)
	case types.KindVarchar:
		n := int(binary.LittleEndian.Uint32(data[off:]))
		return types.NewBytes(data[off+4:off+4+n:off+4+n], types.KindVarchar)
	default:
		return types.Null
	}
}
