package tuple

import (
	"bytes"
	"testing"
	"testing/quick"

	"microspec/internal/catalog"
	"microspec/internal/profile"
	"microspec/internal/types"
)

func ordersRel(t testing.TB) *catalog.Relation {
	t.Helper()
	c := catalog.New()
	rel, err := c.CreateRelation("orders", catalog.Schema{Attrs: []catalog.Attribute{
		catalog.Col("o_orderkey", types.Int32, true),
		catalog.Col("o_custkey", types.Int32, true),
		catalog.LowCardCol("o_orderstatus", types.Char(1), true),
		catalog.Col("o_totalprice", types.Float64, true),
		catalog.Col("o_orderdate", types.Date, true),
		catalog.LowCardCol("o_orderpriority", types.Char(15), true),
		catalog.Col("o_clerk", types.Char(15), true),
		catalog.Col("o_shippriority", types.Int32, true),
		catalog.Col("o_comment", types.Varchar(79), true),
	}}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func ordersValues() []types.Datum {
	return []types.Datum{
		types.NewInt32(7),
		types.NewInt32(39136),
		types.NewChar("O"),
		types.NewFloat64(252004.18),
		types.NewDate(types.MustParseDate("1996-01-10")),
		types.NewChar("2-HIGH"),
		types.NewChar("Clerk#000000470"),
		types.NewInt32(0),
		types.NewString("ly special requests"),
	}
}

func TestFormDeformRoundTrip(t *testing.T) {
	rel := ordersRel(t)
	vals := ordersValues()
	tup, err := Form(rel, vals, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if BeeID(tup) != 0 {
		t.Errorf("beeID = %d", BeeID(tup))
	}
	if HasNulls(tup) {
		t.Error("no-null relation must not carry bitmap")
	}
	if HOff(tup) != 8 {
		t.Errorf("hoff = %d, want 8", HOff(tup))
	}
	out := make([]types.Datum, 9)
	SlotDeform(rel, tup, out, 9, nil)
	for i := range vals {
		if out[i].Compare(vals[i]) != 0 {
			t.Errorf("attr %d: got %v, want %v", i, out[i], vals[i])
		}
	}
	// CHAR(15) comes back blank-padded to full width but compares equal.
	if got := len(out[6].Bytes()); got != 15 {
		t.Errorf("char(15) stored length = %d", got)
	}
}

func TestFormRejectsNullInNotNull(t *testing.T) {
	rel := ordersRel(t)
	vals := ordersValues()
	vals[3] = types.Null
	if _, err := Form(rel, vals, 0, nil); err == nil {
		t.Error("want error for NULL in NOT NULL attribute")
	}
}

func TestFormRejectsOversizeVarchar(t *testing.T) {
	rel := ordersRel(t)
	vals := ordersValues()
	vals[8] = types.NewString(string(bytes.Repeat([]byte("x"), 80)))
	if _, err := Form(rel, vals, 0, nil); err == nil {
		t.Error("want error for oversize varchar")
	}
}

func TestFormRejectsWrongArity(t *testing.T) {
	rel := ordersRel(t)
	if _, err := Form(rel, ordersValues()[:5], 0, nil); err == nil {
		t.Error("want error for wrong value count")
	}
}

func nullableRel(t testing.TB) *catalog.Relation {
	t.Helper()
	c := catalog.New()
	rel, err := c.CreateRelation("t", catalog.Schema{Attrs: []catalog.Attribute{
		catalog.Col("a", types.Int32, true),
		catalog.Col("b", types.Varchar(20), false),
		catalog.Col("c", types.Int64, false),
		catalog.Col("d", types.Bool, false),
	}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestNullBitmapRoundTrip(t *testing.T) {
	rel := nullableRel(t)
	vals := []types.Datum{
		types.NewInt32(1),
		types.Null,
		types.NewInt64(-9),
		types.Null,
	}
	tup, err := Form(rel, vals, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !HasNulls(tup) {
		t.Fatal("bitmap flag must be set")
	}
	out := make([]types.Datum, 4)
	SlotDeform(rel, tup, out, 4, nil)
	if !out[1].IsNull() || !out[3].IsNull() {
		t.Error("nulls lost")
	}
	if out[0].Int32() != 1 || out[2].Int64() != -9 {
		t.Errorf("non-null values wrong: %v %v", out[0], out[2])
	}
}

func TestSlowPathAfterNull(t *testing.T) {
	// A null in an early attribute forces the "slow" path: later offsets
	// must be recomputed by alignment, not taken from attcacheoff.
	rel := nullableRel(t)
	vals := []types.Datum{
		types.NewInt32(5),
		types.Null, // varlena null: following int64 shifts earlier
		types.NewInt64(77),
		types.NewBool(true),
	}
	tup, _ := Form(rel, vals, 0, nil)
	out := make([]types.Datum, 4)
	SlotDeform(rel, tup, out, 4, nil)
	if out[2].Int64() != 77 || !out[3].Bool() {
		t.Errorf("slow-path deform wrong: %v %v", out[2], out[3])
	}
	// With the varlena present the same attributes land elsewhere.
	vals[1] = types.NewString("hello")
	tup2, _ := Form(rel, vals, 0, nil)
	SlotDeform(rel, tup2, out, 4, nil)
	if out[1].Str() != "hello" || out[2].Int64() != 77 {
		t.Errorf("varlena-present deform wrong: %v %v", out[1], out[2])
	}
}

func TestPartialDeform(t *testing.T) {
	rel := ordersRel(t)
	tup, _ := Form(rel, ordersValues(), 0, nil)
	out := make([]types.Datum, 3)
	SlotDeform(rel, tup, out, 3, nil)
	if out[0].Int32() != 7 || out[2].Str() != "O" {
		t.Errorf("partial deform: %v %v", out[0], out[2])
	}
}

func TestSpecializedFormSkipsAttrs(t *testing.T) {
	c := catalog.New()
	spec := &catalog.SpecInfo{
		Specialized:    []bool{false, false, true, false, false, true, false, true, false},
		NumSpecialized: 3,
	}
	relSpec, err := c.CreateRelation("orders", catalog.Schema{Attrs: ordersRel(t).Attrs}, []int{0}, spec)
	if err != nil {
		t.Fatal(err)
	}
	vals := ordersValues()
	tupSpec, err := Form(relSpec, vals, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if BeeID(tupSpec) != 42 {
		t.Errorf("beeID = %d", BeeID(tupSpec))
	}
	tupStock, _ := Form(ordersRel(t), vals, 0, nil)
	if len(tupSpec) >= len(tupStock) {
		t.Errorf("specialized tuple (%dB) must be smaller than stock (%dB)", len(tupSpec), len(tupStock))
	}
}

func TestFillCostAccounting(t *testing.T) {
	rel := ordersRel(t)
	prof := &profile.Counters{}
	if _, err := Form(rel, ordersValues(), 0, prof); err != nil {
		t.Fatal(err)
	}
	want := int64(profile.FillBase + 8*profile.FillFixedAttr + profile.FillVarlenaAttr)
	if got := prof.Component(profile.CompFill); got != want {
		t.Errorf("fill cost = %d, want %d", got, want)
	}
}

func TestDeformCostMatchesPaperCount(t *testing.T) {
	rel := ordersRel(t)
	tup, _ := Form(rel, ordersValues(), 0, nil)
	prof := &profile.Counters{}
	out := make([]types.Datum, 9)
	SlotDeform(rel, tup, out, 9, prof)
	got := prof.Component(profile.CompDeform)
	// The paper hand-counts ≈340 x86 instructions for this loop.
	if got < 320 || got > 360 {
		t.Errorf("generic deform of orders costs %d, want ≈340", got)
	}
}

func TestFormDeformPropertyInt64(t *testing.T) {
	c := catalog.New()
	rel, err := c.CreateRelation("p", catalog.Schema{Attrs: []catalog.Attribute{
		catalog.Col("a", types.Int64, true),
		catalog.Col("b", types.Varchar(64), true),
		catalog.Col("c", types.Int32, true),
		catalog.Col("d", types.Float64, true),
	}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = quick.Check(func(a int64, b []byte, cc int32, d float64) bool {
		if len(b) > 64 {
			b = b[:64]
		}
		in := []types.Datum{
			types.NewInt64(a),
			types.NewBytes(b, types.KindVarchar),
			types.NewInt32(cc),
			types.NewFloat64(d),
		}
		tup, err := Form(rel, in, 0, nil)
		if err != nil {
			return false
		}
		out := make([]types.Datum, 4)
		SlotDeform(rel, tup, out, 4, nil)
		return out[0].Int64() == a &&
			bytes.Equal(out[1].Bytes(), b) &&
			out[2].Int32() == cc &&
			(out[3].Float64() == d || (d != d && out[3].Float64() != out[3].Float64()))
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
