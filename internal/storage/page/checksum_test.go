package page

import (
	"testing"

	"microspec/internal/storage/disk"
)

func checksummedPage(t *testing.T) Page {
	t.Helper()
	p := Page(make([]byte, disk.PageSize))
	Init(p)
	if _, ok := AddTuple(p, []byte("hello checksums")); !ok {
		t.Fatal("AddTuple failed on empty page")
	}
	StampChecksum(p)
	return p
}

func TestChecksumRoundTrip(t *testing.T) {
	p := checksummedPage(t)
	if got := StoredChecksum(p); got == 0 {
		t.Fatal("stamped checksum is 0")
	}
	if stored, computed, ok := VerifyChecksum(p); !ok {
		t.Fatalf("fresh stamp fails verify: stored=%#04x computed=%#04x", stored, computed)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	p := checksummedPage(t)
	// Flip one bit anywhere outside the checksum field itself.
	for _, off := range []int{0, 5, headerSize, disk.PageSize - 1} {
		q := Page(append([]byte(nil), p...))
		q[off] ^= 0x40
		if _, _, ok := VerifyChecksum(q); ok {
			t.Errorf("bit flip at offset %d not detected", off)
		}
	}
}

func TestChecksumZeroMeansNeverChecksummed(t *testing.T) {
	// An all-zero page (freshly extended, never flushed) verifies.
	zero := Page(make([]byte, disk.PageSize))
	if _, _, ok := VerifyChecksum(zero); !ok {
		t.Error("all-zero page must verify")
	}
	// Non-zero content under a zero checksum is corruption.
	dirty := Page(make([]byte, disk.PageSize))
	dirty[100] = 1
	if _, _, ok := VerifyChecksum(dirty); ok {
		t.Error("non-zero page with zero checksum must fail verify")
	}
}

func TestChecksumNeverZero(t *testing.T) {
	// The 0 sentinel must be unreachable from Checksum even if the fold
	// lands on 0 — spot-check a few page contents.
	for i := 0; i < 64; i++ {
		p := Page(make([]byte, disk.PageSize))
		p[8] = byte(i)
		if Checksum(p) == 0 {
			t.Fatalf("Checksum returned reserved value 0 for content %d", i)
		}
	}
}

func TestChecksumExcludesItself(t *testing.T) {
	p := checksummedPage(t)
	want := Checksum(p)
	StampChecksum(p)
	if got := Checksum(p); got != want {
		t.Errorf("checksum depends on its own stored value: %#04x != %#04x", got, want)
	}
}
