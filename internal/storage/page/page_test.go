package page

import (
	"bytes"
	"testing"
	"testing/quick"

	"microspec/internal/storage/disk"
)

func newPage() Page {
	p := make(Page, disk.PageSize)
	Init(p)
	return p
}

func TestAddGetTuple(t *testing.T) {
	p := newPage()
	if NumSlots(p) != 0 {
		t.Fatal("fresh page must be empty")
	}
	t1 := []byte("hello tuple one")
	t2 := []byte("tuple two")
	s1, ok := AddTuple(p, t1)
	if !ok {
		t.Fatal("add 1 failed")
	}
	s2, ok := AddTuple(p, t2)
	if !ok {
		t.Fatal("add 2 failed")
	}
	if s1 == s2 {
		t.Fatal("slots must differ")
	}
	got1, err := GetTuple(p, s1)
	if err != nil || !bytes.Equal(got1, t1) {
		t.Errorf("get 1: %q %v", got1, err)
	}
	got2, err := GetTuple(p, s2)
	if err != nil || !bytes.Equal(got2, t2) {
		t.Errorf("get 2: %q %v", got2, err)
	}
}

func TestTupleAlignment(t *testing.T) {
	p := newPage()
	for i := 0; i < 10; i++ {
		slot, ok := AddTuple(p, bytes.Repeat([]byte{byte(i)}, 13)) // odd size
		if !ok {
			t.Fatal("add failed")
		}
		got, _ := GetTuple(p, slot)
		// Verify 8-alignment of the tuple start within the page.
		off := int(uintptr(0)) // compute from line pointer via data identity
		for o := range p {
			if &p[o] == &got[0] {
				off = o
				break
			}
		}
		if off%8 != 0 {
			t.Errorf("tuple %d starts at %d, not 8-aligned", i, off)
		}
	}
}

func TestDeleteResurrect(t *testing.T) {
	p := newPage()
	slot, _ := AddTuple(p, []byte("abcdef"))
	if err := DeleteTuple(p, slot); err != nil {
		t.Fatal(err)
	}
	if IsLive(p, slot) {
		t.Error("deleted slot must not be live")
	}
	if _, err := GetTuple(p, slot); err == nil {
		t.Error("get of dead slot must fail")
	}
	if err := DeleteTuple(p, slot); err == nil {
		t.Error("double delete must fail")
	}
	if err := ResurrectTuple(p, slot); err != nil {
		t.Fatal(err)
	}
	got, err := GetTuple(p, slot)
	if err != nil || string(got) != "abcdef" {
		t.Errorf("resurrected tuple = %q, %v", got, err)
	}
	if err := ResurrectTuple(p, slot); err == nil {
		t.Error("resurrect of live slot must fail")
	}
}

func TestOverwriteTuple(t *testing.T) {
	p := newPage()
	slot, _ := AddTuple(p, []byte("12345678"))
	if err := OverwriteTuple(p, slot, []byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	got, _ := GetTuple(p, slot)
	if string(got) != "abcdefgh" {
		t.Errorf("overwritten = %q", got)
	}
	if err := OverwriteTuple(p, slot, []byte("short")); err == nil {
		t.Error("length-changing overwrite must fail")
	}
}

func TestPageFillsUp(t *testing.T) {
	p := newPage()
	tup := make([]byte, 512)
	n := 0
	for {
		if _, ok := AddTuple(p, tup); !ok {
			break
		}
		n++
	}
	// 8192 bytes, 8-byte header, 512+4 per tuple: expect ~15 tuples.
	if n < 14 || n > 16 {
		t.Errorf("page held %d 512-byte tuples", n)
	}
	if FreeSpace(p) >= 512+4 {
		t.Errorf("free space %d but add failed", FreeSpace(p))
	}
	// All stored tuples still readable.
	for s := 0; s < NumSlots(p); s++ {
		if _, err := GetTuple(p, s); err != nil {
			t.Errorf("slot %d unreadable: %v", s, err)
		}
	}
}

func TestBoundsChecks(t *testing.T) {
	p := newPage()
	if _, err := GetTuple(p, 0); err == nil {
		t.Error("get on empty page must fail")
	}
	if err := DeleteTuple(p, -1); err == nil {
		t.Error("negative slot must fail")
	}
	if IsLive(p, 5) {
		t.Error("out-of-range slot is not live")
	}
}

// Property: any sequence of adds whose payloads fit round-trips intact.
func TestAddTupleProperty(t *testing.T) {
	err := quick.Check(func(payloads [][]byte) bool {
		p := newPage()
		var kept [][]byte
		var slots []int
		for _, pl := range payloads {
			if len(pl) == 0 || len(pl) > 256 {
				continue
			}
			slot, ok := AddTuple(p, pl)
			if !ok {
				break
			}
			kept = append(kept, pl)
			slots = append(slots, slot)
		}
		for i, slot := range slots {
			got, err := GetTuple(p, slot)
			if err != nil || !bytes.Equal(got, kept[i]) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
