// Package page implements the slotted-page layout used by heap files: a
// small header, an array of line pointers growing down the page, and tuple
// bodies growing up from the end, with tuple starts 8-aligned so that the
// tuple format's intra-tuple alignment guarantees hold (see
// internal/storage/tuple).
//
// Layout:
//
//	offset 0..1   lower: end of the line-pointer array
//	offset 2..3   upper: start of the tuple area
//	offset 4..5   nslots
//	offset 6..7   checksum (CRC32c folded to 16 bits; 0 = never checksummed)
//	offset 8..15  pageLSN: WAL position of the last logged change applied
//	              to this page (0 = never logged); redo compares it against
//	              each record's LSN so replay is idempotent
//	offset 16..   line pointers, 4 bytes each: {off uint16, len uint16}
//
// A line pointer with len == 0 is dead (deleted tuple).
package page

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"microspec/internal/storage/disk"
)

const (
	headerSize  = 16
	linePtrSize = 4
)

// A Page is a PageSize byte slice interpreted in place.
type Page []byte

// Init formats p as an empty page.
func Init(p Page) {
	for i := range p[:headerSize] {
		p[i] = 0
	}
	setLower(p, headerSize)
	setUpper(p, disk.PageSize)
	setNSlots(p, 0)
}

func lower(p Page) int       { return int(binary.LittleEndian.Uint16(p[0:2])) }
func upper(p Page) int       { return int(binary.LittleEndian.Uint16(p[2:4])) }
func setLower(p Page, v int) { binary.LittleEndian.PutUint16(p[0:2], uint16(v)) }
func setUpper(p Page, v int) {
	// upper may be PageSize (8192) which overflows uint16; store v-1 is
	// fragile, so store v>>3: the tuple area start is always 8-aligned.
	binary.LittleEndian.PutUint16(p[2:4], uint16(v>>3))
}
func upperRaw(p Page) int { return int(binary.LittleEndian.Uint16(p[2:4])) << 3 }

// NumSlots returns the number of line pointers (live or dead).
func NumSlots(p Page) int { return int(binary.LittleEndian.Uint16(p[4:6])) }

// Initialized reports whether p has been formatted by Init. A freshly
// extended page that was never written back is all zeros, whose lower
// field (0) is below the header — recovery uses this to know it must
// Init a page before redoing inserts into it.
func Initialized(p Page) bool { return lower(p) >= headerSize }

// LSN returns the page's WAL position: the log offset just past the last
// logged change applied to this page (0 = never logged). Recovery skips a
// record whose LSN is ≤ the page's LSN — the change is already in the
// page image — which makes redo idempotent.
func LSN(p Page) uint64 { return binary.LittleEndian.Uint64(p[8:16]) }

// SetLSN stamps the page's WAL position. The storage layer calls it under
// the page latch, immediately after applying a logged change.
func SetLSN(p Page, lsn uint64) { binary.LittleEndian.PutUint64(p[8:16], lsn) }

func setNSlots(p Page, v int) { binary.LittleEndian.PutUint16(p[4:6], uint16(v)) }

// deadBit in the offset halfword marks a deleted slot; offsets fit in 13
// bits, so the top bit is free. Keeping the length intact makes undo
// (ResurrectTuple) lossless.
const deadBit = 0x8000

func linePtr(p Page, slot int) (off, ln int, dead bool) {
	base := headerSize + slot*linePtrSize
	rawOff := binary.LittleEndian.Uint16(p[base : base+2])
	return int(rawOff &^ deadBit),
		int(binary.LittleEndian.Uint16(p[base+2 : base+4])),
		rawOff&deadBit != 0
}

func setLinePtr(p Page, slot, off, ln int) {
	base := headerSize + slot*linePtrSize
	binary.LittleEndian.PutUint16(p[base:base+2], uint16(off))
	binary.LittleEndian.PutUint16(p[base+2:base+4], uint16(ln))
}

// FreeSpace returns the bytes available for one more tuple plus its line
// pointer, accounting for alignment slack.
func FreeSpace(p Page) int {
	free := upperRaw(p) - lower(p) - linePtrSize - 7
	if free < 0 {
		return 0
	}
	return free
}

// AddTuple stores tup in the page and returns its slot number, or ok=false
// if the page lacks space.
func AddTuple(p Page, tup []byte) (slot int, ok bool) {
	need := (len(tup) + 7) &^ 7
	newUpper := (upperRaw(p) - need) &^ 7
	if newUpper < lower(p)+linePtrSize {
		return 0, false
	}
	copy(p[newUpper:], tup)
	slot = NumSlots(p)
	setLinePtr(p, slot, newUpper, len(tup))
	setNSlots(p, slot+1)
	setLower(p, lower(p)+linePtrSize)
	setUpper(p, newUpper)
	return slot, true
}

// GetTuple returns the stored bytes of a live tuple, aliasing the page.
func GetTuple(p Page, slot int) ([]byte, error) {
	if slot < 0 || slot >= NumSlots(p) {
		return nil, fmt.Errorf("page: slot %d out of range (nslots=%d)", slot, NumSlots(p))
	}
	off, ln, dead := linePtr(p, slot)
	if dead {
		return nil, fmt.Errorf("page: slot %d is dead", slot)
	}
	return p[off : off+ln : off+ln], nil
}

// IsLive reports whether the slot holds a live tuple.
func IsLive(p Page, slot int) bool {
	if slot < 0 || slot >= NumSlots(p) {
		return false
	}
	_, _, dead := linePtr(p, slot)
	return !dead
}

// DeleteTuple marks a slot dead. The tuple bytes and length remain until
// the page is rewritten, which makes undo (ResurrectTuple) lossless.
func DeleteTuple(p Page, slot int) error {
	if slot < 0 || slot >= NumSlots(p) {
		return fmt.Errorf("page: slot %d out of range", slot)
	}
	off, ln, dead := linePtr(p, slot)
	if dead {
		return fmt.Errorf("page: slot %d already dead", slot)
	}
	base := headerSize + slot*linePtrSize
	binary.LittleEndian.PutUint16(p[base:base+2], uint16(off|deadBit))
	_ = ln
	return nil
}

// ResurrectTuple undoes DeleteTuple (transaction rollback support).
func ResurrectTuple(p Page, slot int) error {
	if slot < 0 || slot >= NumSlots(p) {
		return fmt.Errorf("page: slot %d out of range", slot)
	}
	off, _, dead := linePtr(p, slot)
	if !dead {
		return fmt.Errorf("page: slot %d is live", slot)
	}
	base := headerSize + slot*linePtrSize
	binary.LittleEndian.PutUint16(p[base:base+2], uint16(off))
	return nil
}

// --- Page checksums ---
//
// The buffer pool stamps a checksum into every page it flushes and
// verifies it on every read from disk, so corruption (torn writes, bit
// rot, injected faults) surfaces as a typed error instead of silently
// wrong rows. Like PostgreSQL's pd_checksum the stored form is 16 bits:
// CRC32c over the page with the checksum field zeroed, folded to 16 bits,
// with 0 reserved to mean "never checksummed". A page whose stored
// checksum is 0 verifies only if it is entirely zero (a freshly extended,
// never-flushed page) — any other content under a zero checksum is
// corruption.

const (
	checksumOff = 6
	checksumLen = 2
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the page's checksum, excluding the stored checksum
// field itself. The result is never 0.
func Checksum(p Page) uint16 {
	var zeros [checksumLen]byte
	c := crc32.Update(0, castagnoli, p[:checksumOff])
	c = crc32.Update(c, castagnoli, zeros[:])
	c = crc32.Update(c, castagnoli, p[checksumOff+checksumLen:])
	sum := uint16(c>>16) ^ uint16(c)
	if sum == 0 {
		sum = 1
	}
	return sum
}

// StoredChecksum returns the checksum recorded in the page header
// (0 = never checksummed).
func StoredChecksum(p Page) uint16 {
	return binary.LittleEndian.Uint16(p[checksumOff : checksumOff+checksumLen])
}

// StampChecksum computes and stores the page's checksum; the buffer pool
// calls it immediately before every write-back.
func StampChecksum(p Page) {
	binary.LittleEndian.PutUint16(p[checksumOff:checksumOff+checksumLen], Checksum(p))
}

// VerifyChecksum checks a page read from disk. ok=false means the page
// is corrupt; stored and computed report the mismatching values.
func VerifyChecksum(p Page) (stored, computed uint16, ok bool) {
	stored = StoredChecksum(p)
	if stored == 0 {
		// Never-flushed pages exist on disk only as all-zero extents.
		for _, b := range p {
			if b != 0 {
				return 0, Checksum(p), false
			}
		}
		return 0, 0, true
	}
	computed = Checksum(p)
	return stored, computed, stored == computed
}

// OverwriteTuple replaces a live tuple's bytes in place. The new tuple
// must have exactly the old length (the fast path for fixed-layout
// updates, e.g. TPC-C stock-quantity updates).
func OverwriteTuple(p Page, slot int, tup []byte) error {
	if slot < 0 || slot >= NumSlots(p) {
		return fmt.Errorf("page: slot %d out of range", slot)
	}
	off, ln, dead := linePtr(p, slot)
	if dead {
		return fmt.Errorf("page: slot %d is dead", slot)
	}
	if ln != len(tup) {
		return fmt.Errorf("page: in-place overwrite needs equal length (%d != %d)", ln, len(tup))
	}
	copy(p[off:off+ln], tup)
	return nil
}
