package buffer

import (
	"testing"

	"microspec/internal/storage/disk"
	"microspec/internal/storage/page"
)

func setup(t *testing.T, capacity, pages int) (*disk.Manager, *Pool, disk.FileID) {
	t.Helper()
	m := disk.NewManager(disk.LatencyModel{})
	f := m.CreateFile()
	buf := make([]byte, disk.PageSize)
	for i := 0; i < pages; i++ {
		m.ExtendFile(f)
		buf[0] = byte(i + 1) // tag each page
		page.StampChecksum(page.Page(buf))
		if err := m.WritePage(f, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	return m, New(m, capacity), f
}

func TestHitAndMiss(t *testing.T) {
	_, p, f := setup(t, 4, 2)
	h1, err := p.Get(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h1.Bytes[0] != 1 {
		t.Errorf("page 0 tag = %d", h1.Bytes[0])
	}
	h1.Unpin(false)
	h2, _ := p.Get(f, 0)
	h2.Unpin(false)
	hits, misses, _ := p.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	m, p, f := setup(t, 2, 4)
	h, _ := p.Get(f, 0)
	h.Bytes[1] = 0xAB
	h.Unpin(true)
	// Touch enough pages to force eviction of page 0.
	for i := 1; i < 4; i++ {
		h, err := p.Get(f, i)
		if err != nil {
			t.Fatal(err)
		}
		h.Unpin(false)
	}
	buf := make([]byte, disk.PageSize)
	if err := m.ReadPage(f, 0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[1] != 0xAB {
		t.Error("dirty page not written back on eviction")
	}
}

func TestPinnedPagesNotEvicted(t *testing.T) {
	_, p, f := setup(t, 2, 4)
	h0, _ := p.Get(f, 0)
	h1, _ := p.Get(f, 1)
	if _, err := p.Get(f, 2); err == nil {
		t.Error("get with all frames pinned must fail")
	}
	h0.Unpin(false)
	h2, err := p.Get(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Bytes[0] != 3 {
		t.Errorf("page 2 tag = %d", h2.Bytes[0])
	}
	h2.Unpin(false)
	h1.Unpin(false)
}

func TestGetNew(t *testing.T) {
	m, p, f := setup(t, 4, 0)
	pn, _ := m.ExtendFile(f)
	h, err := p.GetNew(f, pn)
	if err != nil {
		t.Fatal(err)
	}
	h.Bytes[0] = 0x7F
	h.Unpin(true)
	if _, err := p.GetNew(f, pn); err == nil {
		t.Error("GetNew of cached page must fail")
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, disk.PageSize)
	m.ReadPage(f, pn, buf)
	if buf[0] != 0x7F {
		t.Error("FlushAll lost dirty data")
	}
}

func TestDropCache(t *testing.T) {
	_, p, f := setup(t, 4, 2)
	h, _ := p.Get(f, 0)
	h.Unpin(false)
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	h2, _ := p.Get(f, 0)
	h2.Unpin(false)
	hits, misses, _ := p.Stats()
	if hits != 0 || misses != 1 {
		t.Errorf("after drop: hits=%d misses=%d, want 0/1", hits, misses)
	}
	// DropCache with a pinned page must refuse.
	h3, _ := p.Get(f, 1)
	if err := p.DropCache(); err == nil {
		t.Error("DropCache with pinned page must fail")
	}
	h3.Unpin(false)
}

func TestDoubleUnpinReturnsError(t *testing.T) {
	_, p, f := setup(t, 2, 1)
	h, _ := p.Get(f, 0)
	if err := h.Unpin(false); err != nil {
		t.Fatal(err)
	}
	if err := h.Unpin(false); err == nil {
		t.Error("double unpin must return an error")
	}
	if _, _, unpinErrs := p.FaultStats(); unpinErrs != 1 {
		t.Errorf("unpinErrors = %d, want 1", unpinErrs)
	}
}
