package buffer

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"microspec/internal/storage/disk"
	"microspec/internal/storage/page"
)

func setup(t *testing.T, capacity, pages int) (*disk.Manager, *Pool, disk.FileID) {
	t.Helper()
	m := disk.NewManager(disk.LatencyModel{})
	f := m.CreateFile()
	buf := make([]byte, disk.PageSize)
	for i := 0; i < pages; i++ {
		m.ExtendFile(f)
		buf[0] = byte(i + 1) // tag each page
		page.StampChecksum(page.Page(buf))
		if err := m.WritePage(f, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	return m, New(m, capacity), f
}

func TestHitAndMiss(t *testing.T) {
	_, p, f := setup(t, 4, 2)
	h1, err := p.Get(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h1.Bytes[0] != 1 {
		t.Errorf("page 0 tag = %d", h1.Bytes[0])
	}
	h1.Unpin(false)
	h2, _ := p.Get(f, 0)
	h2.Unpin(false)
	hits, misses, _ := p.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	m, p, f := setup(t, 2, 4)
	h, _ := p.Get(f, 0)
	h.Bytes[1] = 0xAB
	h.Unpin(true)
	// Touch enough pages to force eviction of page 0.
	for i := 1; i < 4; i++ {
		h, err := p.Get(f, i)
		if err != nil {
			t.Fatal(err)
		}
		h.Unpin(false)
	}
	buf := make([]byte, disk.PageSize)
	if err := m.ReadPage(f, 0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[1] != 0xAB {
		t.Error("dirty page not written back on eviction")
	}
}

func TestPinnedPagesNotEvicted(t *testing.T) {
	_, p, f := setup(t, 2, 4)
	h0, _ := p.Get(f, 0)
	h1, _ := p.Get(f, 1)
	if _, err := p.Get(f, 2); err == nil {
		t.Error("get with all frames pinned must fail")
	}
	h0.Unpin(false)
	h2, err := p.Get(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Bytes[0] != 3 {
		t.Errorf("page 2 tag = %d", h2.Bytes[0])
	}
	h2.Unpin(false)
	h1.Unpin(false)
}

func TestGetNew(t *testing.T) {
	m, p, f := setup(t, 4, 0)
	pn, _ := m.ExtendFile(f)
	h, err := p.GetNew(f, pn)
	if err != nil {
		t.Fatal(err)
	}
	h.Bytes[0] = 0x7F
	h.Unpin(true)
	if _, err := p.GetNew(f, pn); err == nil {
		t.Error("GetNew of cached page must fail")
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, disk.PageSize)
	m.ReadPage(f, pn, buf)
	if buf[0] != 0x7F {
		t.Error("FlushAll lost dirty data")
	}
}

func TestDropCache(t *testing.T) {
	_, p, f := setup(t, 4, 2)
	h, _ := p.Get(f, 0)
	h.Unpin(false)
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	h2, _ := p.Get(f, 0)
	h2.Unpin(false)
	hits, misses, _ := p.Stats()
	if hits != 0 || misses != 1 {
		t.Errorf("after drop: hits=%d misses=%d, want 0/1", hits, misses)
	}
	// DropCache with a pinned page must refuse.
	h3, _ := p.Get(f, 1)
	if err := p.DropCache(); err == nil {
		t.Error("DropCache with pinned page must fail")
	}
	h3.Unpin(false)
}

func TestDoubleUnpinReturnsError(t *testing.T) {
	_, p, f := setup(t, 2, 1)
	h, _ := p.Get(f, 0)
	if err := h.Unpin(false); err != nil {
		t.Fatal(err)
	}
	if err := h.Unpin(false); err == nil {
		t.Error("double unpin must return an error")
	}
	if _, _, unpinErrs := p.FaultStats(); unpinErrs != 1 {
		t.Errorf("unpinErrors = %d, want 1", unpinErrs)
	}
}

// TestConcurrentMissSingleFlight checks that simultaneous misses for the
// same page issue one disk read (the io channel makes late arrivals wait)
// while misses for different pages overlap their reads.
func TestConcurrentMissSingleFlight(t *testing.T) {
	m, p, f := setup(t, 8, 4)
	m.SetLatency(disk.LatencyModel{ReadPerPage: 2 * time.Millisecond, Sleep: true})
	m.ResetStats()

	const goroutines = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h, err := p.Get(f, g%4) // two goroutines per page
			if err != nil {
				errc <- err
				return
			}
			if h.Bytes[0] != byte(g%4+1) {
				errc <- fmt.Errorf("page %d tag = %d", g%4, h.Bytes[0])
			}
			h.Unpin(false)
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	reads, _, _ := m.Stats()
	if reads != 4 {
		t.Errorf("disk reads = %d, want 4 (one per distinct page)", reads)
	}
	hits, misses, _ := p.Stats()
	if misses != 4 || hits != 4 {
		t.Errorf("hits=%d misses=%d, want 4/4", hits, misses)
	}
	// Four concurrent 2ms reads overlapping should finish well under the
	// 8ms a serial pool would take.
	if elapsed := time.Since(start); elapsed > 7*time.Millisecond {
		t.Errorf("misses did not overlap: %v elapsed", elapsed)
	}
}
