// Package buffer implements a clock-sweep buffer pool over the simulated
// disk. It provides the warm/cold cache control the paper's experiments
// rely on: a warm run pre-faults every page ("keeping the data in memory
// effectively eliminated the disk I/O requests"); a cold run starts from
// an empty pool so every first touch pays the simulated disk latency.
//
// The pool is also the storage layer's integrity boundary: every page it
// writes back is stamped with a checksum (see internal/storage/page) and
// every page it reads from disk is verified. Transient read faults and
// transient corruption (a bit flip in the returned copy) are retried with
// bounded backoff; persistent corruption (a torn write) surfaces as a
// typed *CorruptPageError — never silent garbage.
package buffer

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"microspec/internal/storage/disk"
	"microspec/internal/storage/page"
)

type pageKey struct {
	file disk.FileID
	page int
}

type frame struct {
	key   pageKey
	buf   []byte
	pins  int
	dirty bool
	ref   bool // clock reference bit
	valid bool
}

// Read-retry policy: a transient disk error or a failed checksum is
// retried up to maxReadRetries times with doubling backoff starting at
// retryBackoff. The worst-case stall per read is well under a
// millisecond, matching the simulated-disk scale.
const (
	maxReadRetries = 3
	retryBackoff   = 50 * time.Microsecond
)

// ErrCorrupt is the match target for persistent page corruption:
// errors.Is(err, buffer.ErrCorrupt).
var ErrCorrupt = errors.New("corrupt page")

// CorruptPageError reports a page whose checksum failed on every read
// attempt — persistent corruption such as a torn write.
type CorruptPageError struct {
	File           disk.FileID
	Page           int
	Stored, Actual uint16
}

// Error implements error.
func (e *CorruptPageError) Error() string {
	return fmt.Sprintf("buffer: corrupt page %d/%d: checksum stored=%#04x computed=%#04x",
		e.File, e.Page, e.Stored, e.Actual)
}

// Is makes errors.Is(err, ErrCorrupt) match.
func (e *CorruptPageError) Is(target error) bool { return target == ErrCorrupt }

// IsCorrupt reports whether err is a page-corruption error.
func IsCorrupt(err error) bool { return errors.Is(err, ErrCorrupt) }

// Pool is a fixed-capacity page cache. All methods are safe for
// concurrent use. Page contents are handed out as aliases of the frame
// buffer; callers must hold the pin while reading or writing them.
type Pool struct {
	mu       sync.Mutex
	disk     disk.Device
	frames   []frame
	table    map[pageKey]int
	hand     int
	hits     int64
	misses   int64
	writeOut int64

	// Fault-tolerance counters (see FaultStats).
	readRetries   int64
	checksumFails int64
	unpinErrors   int64
}

// New returns a pool with capacity pages backed by d.
func New(d disk.Device, capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	// Frame buffers are allocated lazily on first use: a pool sized for a
	// large warm working set must not cost its full capacity in memory at
	// open time.
	return &Pool{
		disk:   d,
		frames: make([]frame, capacity),
		table:  make(map[pageKey]int, capacity),
	}
}

// Handle is a pinned page. Release it with Unpin.
type Handle struct {
	pool  *Pool
	idx   int
	Bytes []byte
}

// readVerified reads a page from disk into buf, verifying its checksum.
// Transient faults (injected read errors, bit flips in the returned copy)
// are retried with bounded backoff; a checksum that fails on every
// attempt is persistent corruption and returns *CorruptPageError.
// Called with p.mu held; the backoff sleeps are bounded (< 400µs total).
func (p *Pool) readVerified(key pageKey, buf []byte) error {
	var corrupt *CorruptPageError
	var lastErr error
	for attempt := 0; attempt <= maxReadRetries; attempt++ {
		if attempt > 0 {
			p.readRetries++
			time.Sleep(retryBackoff << (attempt - 1))
		}
		if err := p.disk.ReadPage(key.file, key.page, buf); err != nil {
			if disk.IsTransient(err) {
				lastErr = err
				continue
			}
			return err
		}
		stored, computed, ok := page.VerifyChecksum(page.Page(buf))
		if ok {
			return nil
		}
		p.checksumFails++
		corrupt = &CorruptPageError{File: key.file, Page: key.page, Stored: stored, Actual: computed}
		lastErr = corrupt
	}
	if corrupt != nil && corrupt == lastErr {
		return corrupt
	}
	return fmt.Errorf("buffer: page %d/%d unreadable after %d retries: %w",
		key.file, key.page, maxReadRetries, lastErr)
}

// Get pins the page, reading it from disk on a miss. The returned handle's
// Bytes alias the frame.
func (p *Pool) Get(file disk.FileID, pageNo int) (*Handle, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := pageKey{file, pageNo}
	if idx, ok := p.table[key]; ok {
		f := &p.frames[idx]
		f.pins++
		f.ref = true
		p.hits++
		return &Handle{pool: p, idx: idx, Bytes: f.buf}, nil
	}
	idx, err := p.evictLocked()
	if err != nil {
		return nil, err
	}
	f := &p.frames[idx]
	if f.buf == nil {
		f.buf = make([]byte, disk.PageSize)
	}
	if err := p.readVerified(key, f.buf); err != nil {
		f.valid = false
		return nil, err
	}
	f.key = key
	f.pins = 1
	f.dirty = false
	f.ref = true
	f.valid = true
	p.table[key] = idx
	p.misses++
	return &Handle{pool: p, idx: idx, Bytes: f.buf}, nil
}

// GetNew pins a frame for a freshly extended page without reading from
// disk (the page is known to be zero); the frame starts dirty.
func (p *Pool) GetNew(file disk.FileID, pageNo int) (*Handle, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := pageKey{file, pageNo}
	if _, ok := p.table[key]; ok {
		return nil, fmt.Errorf("buffer: page %v already cached", key)
	}
	idx, err := p.evictLocked()
	if err != nil {
		return nil, err
	}
	f := &p.frames[idx]
	if f.buf == nil {
		f.buf = make([]byte, disk.PageSize)
	} else {
		for i := range f.buf {
			f.buf[i] = 0
		}
	}
	f.key = key
	f.pins = 1
	f.dirty = true
	f.ref = true
	f.valid = true
	p.table[key] = idx
	return &Handle{pool: p, idx: idx, Bytes: f.buf}, nil
}

// flushLocked stamps the frame's checksum and writes it back.
func (p *Pool) flushLocked(f *frame) error {
	page.StampChecksum(page.Page(f.buf))
	if err := p.disk.WritePage(f.key.file, f.key.page, f.buf); err != nil {
		return err
	}
	p.writeOut++
	return nil
}

// evictLocked finds a free or evictable frame, flushing it if dirty.
func (p *Pool) evictLocked() (int, error) {
	n := len(p.frames)
	for sweep := 0; sweep < 2*n+1; sweep++ {
		idx := p.hand
		p.hand = (p.hand + 1) % n
		f := &p.frames[idx]
		if !f.valid {
			return idx, nil
		}
		if f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		if f.dirty {
			if err := p.flushLocked(f); err != nil {
				return 0, err
			}
		}
		delete(p.table, f.key)
		f.valid = false
		return idx, nil
	}
	return 0, fmt.Errorf("buffer: all %d frames pinned", n)
}

// Unpin releases the pin; dirty records that the caller modified the
// page. Unpinning an unpinned page is a caller bug reported as an error
// (the pool also counts it), consistent with the engine's
// panic-containment policy of never taking the process down.
func (h *Handle) Unpin(dirty bool) error {
	p := h.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	f := &p.frames[h.idx]
	if f.pins <= 0 || !f.valid {
		p.unpinErrors++
		return fmt.Errorf("buffer: unpin of unpinned page %d/%d", f.key.file, f.key.page)
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
	return nil
}

// FlushAll writes every dirty page back to disk (checkpoint).
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		f := &p.frames[i]
		if f.valid && f.dirty {
			if err := p.flushLocked(f); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// DropCache flushes and then empties the pool — the cold-cache reset.
func (p *Pool) DropCache() error {
	if err := p.FlushAll(); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		f := &p.frames[i]
		if f.pins > 0 {
			return fmt.Errorf("buffer: cannot drop cache with pinned pages")
		}
		if f.valid {
			delete(p.table, f.key)
			f.valid = false
		}
	}
	return nil
}

// Stats returns hit/miss/write-back counts since creation.
func (p *Pool) Stats() (hits, misses, writeOut int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.writeOut
}

// FaultStats returns the fault-tolerance counters: read retries (after
// transient faults or checksum failures), checksum verification
// failures, and unpin-of-unpinned errors.
func (p *Pool) FaultStats() (readRetries, checksumFails, unpinErrors int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.readRetries, p.checksumFails, p.unpinErrors
}

// ResetStats zeroes the counters.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hits, p.misses, p.writeOut = 0, 0, 0
	p.readRetries, p.checksumFails, p.unpinErrors = 0, 0, 0
}

// Capacity returns the number of frames.
func (p *Pool) Capacity() int { return len(p.frames) }
