// Package buffer implements a clock-sweep buffer pool over the simulated
// disk. It provides the warm/cold cache control the paper's experiments
// rely on: a warm run pre-faults every page ("keeping the data in memory
// effectively eliminated the disk I/O requests"); a cold run starts from
// an empty pool so every first touch pays the simulated disk latency.
package buffer

import (
	"fmt"
	"sync"

	"microspec/internal/storage/disk"
)

type pageKey struct {
	file disk.FileID
	page int
}

type frame struct {
	key   pageKey
	buf   []byte
	pins  int
	dirty bool
	ref   bool // clock reference bit
	valid bool
}

// Pool is a fixed-capacity page cache. All methods are safe for
// concurrent use. Page contents are handed out as aliases of the frame
// buffer; callers must hold the pin while reading or writing them.
type Pool struct {
	mu       sync.Mutex
	disk     *disk.Manager
	frames   []frame
	table    map[pageKey]int
	hand     int
	hits     int64
	misses   int64
	writeOut int64
}

// New returns a pool with capacity pages backed by d.
func New(d *disk.Manager, capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	// Frame buffers are allocated lazily on first use: a pool sized for a
	// large warm working set must not cost its full capacity in memory at
	// open time.
	return &Pool{
		disk:   d,
		frames: make([]frame, capacity),
		table:  make(map[pageKey]int, capacity),
	}
}

// Handle is a pinned page. Release it with Unpin.
type Handle struct {
	pool  *Pool
	idx   int
	Bytes []byte
}

// Get pins the page, reading it from disk on a miss. The returned handle's
// Bytes alias the frame.
func (p *Pool) Get(file disk.FileID, pageNo int) (*Handle, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := pageKey{file, pageNo}
	if idx, ok := p.table[key]; ok {
		f := &p.frames[idx]
		f.pins++
		f.ref = true
		p.hits++
		return &Handle{pool: p, idx: idx, Bytes: f.buf}, nil
	}
	idx, err := p.evictLocked()
	if err != nil {
		return nil, err
	}
	f := &p.frames[idx]
	if f.buf == nil {
		f.buf = make([]byte, disk.PageSize)
	}
	if err := p.disk.ReadPage(file, pageNo, f.buf); err != nil {
		f.valid = false
		return nil, err
	}
	f.key = key
	f.pins = 1
	f.dirty = false
	f.ref = true
	f.valid = true
	p.table[key] = idx
	p.misses++
	return &Handle{pool: p, idx: idx, Bytes: f.buf}, nil
}

// GetNew pins a frame for a freshly extended page without reading from
// disk (the page is known to be zero); the frame starts dirty.
func (p *Pool) GetNew(file disk.FileID, pageNo int) (*Handle, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := pageKey{file, pageNo}
	if _, ok := p.table[key]; ok {
		return nil, fmt.Errorf("buffer: page %v already cached", key)
	}
	idx, err := p.evictLocked()
	if err != nil {
		return nil, err
	}
	f := &p.frames[idx]
	if f.buf == nil {
		f.buf = make([]byte, disk.PageSize)
	} else {
		for i := range f.buf {
			f.buf[i] = 0
		}
	}
	f.key = key
	f.pins = 1
	f.dirty = true
	f.ref = true
	f.valid = true
	p.table[key] = idx
	return &Handle{pool: p, idx: idx, Bytes: f.buf}, nil
}

// evictLocked finds a free or evictable frame, flushing it if dirty.
func (p *Pool) evictLocked() (int, error) {
	n := len(p.frames)
	for sweep := 0; sweep < 2*n+1; sweep++ {
		idx := p.hand
		p.hand = (p.hand + 1) % n
		f := &p.frames[idx]
		if !f.valid {
			return idx, nil
		}
		if f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		if f.dirty {
			if err := p.disk.WritePage(f.key.file, f.key.page, f.buf); err != nil {
				return 0, err
			}
			p.writeOut++
		}
		delete(p.table, f.key)
		f.valid = false
		return idx, nil
	}
	return 0, fmt.Errorf("buffer: all %d frames pinned", n)
}

// Unpin releases the pin; dirty records that the caller modified the page.
func (h *Handle) Unpin(dirty bool) {
	p := h.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	f := &p.frames[h.idx]
	if f.pins <= 0 {
		panic("buffer: unpin of unpinned page")
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
}

// FlushAll writes every dirty page back to disk (checkpoint).
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		f := &p.frames[i]
		if f.valid && f.dirty {
			if err := p.disk.WritePage(f.key.file, f.key.page, f.buf); err != nil {
				return err
			}
			f.dirty = false
			p.writeOut++
		}
	}
	return nil
}

// DropCache flushes and then empties the pool — the cold-cache reset.
func (p *Pool) DropCache() error {
	if err := p.FlushAll(); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		f := &p.frames[i]
		if f.pins > 0 {
			return fmt.Errorf("buffer: cannot drop cache with pinned pages")
		}
		if f.valid {
			delete(p.table, f.key)
			f.valid = false
		}
	}
	return nil
}

// Stats returns hit/miss/write-back counts since creation.
func (p *Pool) Stats() (hits, misses, writeOut int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.writeOut
}

// ResetStats zeroes the counters.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hits, p.misses, p.writeOut = 0, 0, 0
}

// Capacity returns the number of frames.
func (p *Pool) Capacity() int { return len(p.frames) }
