// Package buffer implements a clock-sweep buffer pool over the simulated
// disk. It provides the warm/cold cache control the paper's experiments
// rely on: a warm run pre-faults every page ("keeping the data in memory
// effectively eliminated the disk I/O requests"); a cold run starts from
// an empty pool so every first touch pays the simulated disk latency.
//
// The pool is also the storage layer's integrity boundary: every page it
// writes back is stamped with a checksum (see internal/storage/page) and
// every page it reads from disk is verified. Transient read faults and
// transient corruption (a bit flip in the returned copy) are retried with
// bounded backoff; persistent corruption (a torn write) surfaces as a
// typed *CorruptPageError — never silent garbage.
package buffer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"microspec/internal/storage/disk"
	"microspec/internal/storage/page"
)

type pageKey struct {
	file disk.FileID
	page int
}

type frame struct {
	key   pageKey
	buf   []byte
	pins  int
	dirty bool
	ref   bool // clock reference bit
	valid bool
	// io is non-nil while the frame's page is being read in from disk
	// with the pool lock released (so concurrent misses overlap their
	// I/O waits). Goroutines that find the frame mid-read wait on the
	// channel and retry the lookup; the frame is pinned for the whole
	// read, so the clock sweep never reclaims it.
	io chan struct{}
}

// Read-retry policy: a transient disk error or a failed checksum is
// retried up to maxReadRetries times with doubling backoff starting at
// retryBackoff. The worst-case stall per read is well under a
// millisecond, matching the simulated-disk scale.
const (
	maxReadRetries = 3
	retryBackoff   = 50 * time.Microsecond
)

// ErrCorrupt is the match target for persistent page corruption:
// errors.Is(err, buffer.ErrCorrupt).
var ErrCorrupt = errors.New("corrupt page")

// CorruptPageError reports a page whose checksum failed on every read
// attempt — persistent corruption such as a torn write.
type CorruptPageError struct {
	File           disk.FileID
	Page           int
	Stored, Actual uint16
}

// Error implements error.
func (e *CorruptPageError) Error() string {
	return fmt.Sprintf("buffer: corrupt page %d/%d: checksum stored=%#04x computed=%#04x",
		e.File, e.Page, e.Stored, e.Actual)
}

// Is makes errors.Is(err, ErrCorrupt) match.
func (e *CorruptPageError) Is(target error) bool { return target == ErrCorrupt }

// IsCorrupt reports whether err is a page-corruption error.
func IsCorrupt(err error) bool { return errors.Is(err, ErrCorrupt) }

// Pool is a fixed-capacity page cache. All methods are safe for
// concurrent use. Page contents are handed out as aliases of the frame
// buffer; callers must hold the pin while reading or writing them.
type Pool struct {
	mu       sync.Mutex
	disk     disk.Device
	frames   []frame
	table    map[pageKey]int
	hand     int
	hits     int64
	misses   int64
	writeOut int64

	// Fault-tolerance counters (see FaultStats). readRetries and
	// checksumFails are atomics: readVerified bumps them without the
	// pool lock, which is released across disk reads.
	readRetries   atomic.Int64
	checksumFails atomic.Int64
	unpinErrors   int64

	// walFlush, when set, enforces the WAL-before-data rule: it is called
	// with a page's LSN before that page is written back, and must block
	// until the log is durable through the LSN. Pages never touched by a
	// logged change (LSN 0) skip it.
	walFlush func(lsn uint64) error
	walStall int64 // write-backs that had to force the log first
}

// SetWALFlush installs the WAL-before-data hook (see Pool.walFlush).
// Install it before any writes; it is not synchronized against in-flight
// flushes.
func (p *Pool) SetWALFlush(fn func(lsn uint64) error) {
	p.walFlush = fn
}

// New returns a pool with capacity pages backed by d.
func New(d disk.Device, capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	// Frame buffers are allocated lazily on first use: a pool sized for a
	// large warm working set must not cost its full capacity in memory at
	// open time.
	return &Pool{
		disk:   d,
		frames: make([]frame, capacity),
		table:  make(map[pageKey]int, capacity),
	}
}

// Handle is a pinned page. Release it with Unpin.
type Handle struct {
	pool  *Pool
	idx   int
	Bytes []byte
}

// readVerified reads a page from disk into buf, verifying its checksum.
// Transient faults (injected read errors, bit flips in the returned copy)
// are retried with bounded backoff; a checksum that fails on every
// attempt is persistent corruption and returns *CorruptPageError.
// Called WITHOUT p.mu: the caller publishes the frame with its io channel
// set first, so the disk read (which may really sleep in the I/O-bound
// latency mode) never blocks other pool traffic.
func (p *Pool) readVerified(key pageKey, buf []byte) error {
	var corrupt *CorruptPageError
	var lastErr error
	for attempt := 0; attempt <= maxReadRetries; attempt++ {
		if attempt > 0 {
			p.readRetries.Add(1)
			time.Sleep(retryBackoff << (attempt - 1))
		}
		if err := p.disk.ReadPage(key.file, key.page, buf); err != nil {
			if disk.IsTransient(err) {
				lastErr = err
				continue
			}
			return err
		}
		stored, computed, ok := page.VerifyChecksum(page.Page(buf))
		if ok {
			return nil
		}
		p.checksumFails.Add(1)
		corrupt = &CorruptPageError{File: key.file, Page: key.page, Stored: stored, Actual: computed}
		lastErr = corrupt
	}
	if corrupt != nil && corrupt == lastErr {
		return corrupt
	}
	return fmt.Errorf("buffer: page %d/%d unreadable after %d retries: %w",
		key.file, key.page, maxReadRetries, lastErr)
}

// Get pins the page, reading it from disk on a miss. The returned handle's
// Bytes alias the frame.
//
// A miss claims a frame, publishes it in the table with the io channel
// set, and drops the pool lock for the duration of the disk read: misses
// for different pages proceed concurrently (the point of the I/O-bound
// latency mode), and a second goroutine arriving for the same page waits
// on the channel instead of issuing a duplicate read.
func (p *Pool) Get(file disk.FileID, pageNo int) (*Handle, error) {
	key := pageKey{file, pageNo}
	p.mu.Lock()
	for {
		if idx, ok := p.table[key]; ok {
			f := &p.frames[idx]
			if f.io != nil {
				// Another goroutine is reading this page in. Wait for it
				// and re-check: the read may have failed (entry removed)
				// or the frame may even have been recycled since.
				ch := f.io
				p.mu.Unlock()
				<-ch
				p.mu.Lock()
				continue
			}
			f.pins++
			f.ref = true
			p.hits++
			p.mu.Unlock()
			return &Handle{pool: p, idx: idx, Bytes: f.buf}, nil
		}
		idx, err := p.evictLocked()
		if err != nil {
			p.mu.Unlock()
			return nil, err
		}
		f := &p.frames[idx]
		if f.buf == nil {
			f.buf = make([]byte, disk.PageSize)
		}
		// Publish the frame pinned and valid before releasing the lock:
		// the pin keeps the clock sweep away, valid keeps evictLocked's
		// free-frame fast path away, and io makes same-page arrivals wait.
		f.key = key
		f.pins = 1
		f.dirty = false
		f.ref = true
		f.valid = true
		f.io = make(chan struct{})
		p.table[key] = idx
		p.mu.Unlock()

		rerr := p.readVerified(key, f.buf)

		p.mu.Lock()
		close(f.io)
		f.io = nil
		if rerr != nil {
			delete(p.table, key)
			f.pins = 0
			f.valid = false
			p.mu.Unlock()
			return nil, rerr
		}
		p.misses++
		p.mu.Unlock()
		return &Handle{pool: p, idx: idx, Bytes: f.buf}, nil
	}
}

// GetNew pins a frame for a freshly extended page without reading from
// disk (the page is known to be zero); the frame starts dirty.
func (p *Pool) GetNew(file disk.FileID, pageNo int) (*Handle, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := pageKey{file, pageNo}
	if _, ok := p.table[key]; ok {
		return nil, fmt.Errorf("buffer: page %v already cached", key)
	}
	idx, err := p.evictLocked()
	if err != nil {
		return nil, err
	}
	f := &p.frames[idx]
	if f.buf == nil {
		f.buf = make([]byte, disk.PageSize)
	} else {
		for i := range f.buf {
			f.buf[i] = 0
		}
	}
	f.key = key
	f.pins = 1
	f.dirty = true
	f.ref = true
	f.valid = true
	p.table[key] = idx
	return &Handle{pool: p, idx: idx, Bytes: f.buf}, nil
}

// flushLocked stamps the frame's checksum and writes it back, forcing the
// log durable through the page's LSN first (WAL-before-data): a page
// image must never reach disk ahead of the log records that produced it,
// or a crash could leave effects with no matching records to judge them
// committed or not.
func (p *Pool) flushLocked(f *frame) error {
	if p.walFlush != nil {
		if lsn := page.LSN(page.Page(f.buf)); lsn > 0 {
			p.walStall++
			if err := p.walFlush(lsn); err != nil {
				return fmt.Errorf("buffer: WAL flush for page %d/%d: %w", f.key.file, f.key.page, err)
			}
		}
	}
	page.StampChecksum(page.Page(f.buf))
	if err := p.disk.WritePage(f.key.file, f.key.page, f.buf); err != nil {
		return err
	}
	p.writeOut++
	return nil
}

// evictLocked finds a free or evictable frame, flushing it if dirty.
func (p *Pool) evictLocked() (int, error) {
	n := len(p.frames)
	for sweep := 0; sweep < 2*n+1; sweep++ {
		idx := p.hand
		p.hand = (p.hand + 1) % n
		f := &p.frames[idx]
		if !f.valid {
			return idx, nil
		}
		if f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		if f.dirty {
			if err := p.flushLocked(f); err != nil {
				return 0, err
			}
		}
		delete(p.table, f.key)
		f.valid = false
		return idx, nil
	}
	return 0, fmt.Errorf("buffer: all %d frames pinned", n)
}

// Unpin releases the pin; dirty records that the caller modified the
// page. Unpinning an unpinned page is a caller bug reported as an error
// (the pool also counts it), consistent with the engine's
// panic-containment policy of never taking the process down.
func (h *Handle) Unpin(dirty bool) error {
	p := h.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	f := &p.frames[h.idx]
	if f.pins <= 0 || !f.valid {
		p.unpinErrors++
		return fmt.Errorf("buffer: unpin of unpinned page %d/%d", f.key.file, f.key.page)
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
	return nil
}

// FlushAll writes every dirty page back to disk (checkpoint).
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		f := &p.frames[i]
		if f.valid && f.dirty {
			if err := p.flushLocked(f); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// DropCache flushes and then empties the pool — the cold-cache reset.
func (p *Pool) DropCache() error {
	if err := p.FlushAll(); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		f := &p.frames[i]
		if f.pins > 0 {
			return fmt.Errorf("buffer: cannot drop cache with pinned pages")
		}
		if f.valid {
			delete(p.table, f.key)
			f.valid = false
		}
	}
	return nil
}

// InvalidateFile discards every cached frame of one file without writing
// anything back — the companion of dropping the file itself. An error is
// returned if any of the file's pages is still pinned.
func (p *Pool) InvalidateFile(file disk.FileID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		f := &p.frames[i]
		if !f.valid || f.key.file != file {
			continue
		}
		if f.pins > 0 {
			return fmt.Errorf("buffer: invalidate of pinned page %d/%d", f.key.file, f.key.page)
		}
		delete(p.table, f.key)
		f.valid = false
		f.dirty = false
	}
	return nil
}

// Stats returns hit/miss/write-back counts since creation.
func (p *Pool) Stats() (hits, misses, writeOut int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.writeOut
}

// WALStalls returns how many write-backs had to force the log durable
// first (the WAL-before-data rule actually firing).
func (p *Pool) WALStalls() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.walStall
}

// FaultStats returns the fault-tolerance counters: read retries (after
// transient faults or checksum failures), checksum verification
// failures, and unpin-of-unpinned errors.
func (p *Pool) FaultStats() (readRetries, checksumFails, unpinErrors int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.readRetries.Load(), p.checksumFails.Load(), p.unpinErrors
}

// ResetStats zeroes the counters.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hits, p.misses, p.writeOut = 0, 0, 0
	p.readRetries.Store(0)
	p.checksumFails.Store(0)
	p.unpinErrors = 0
}

// Capacity returns the number of frames.
func (p *Pool) Capacity() int { return len(p.frames) }
