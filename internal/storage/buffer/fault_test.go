package buffer

import (
	"errors"
	"testing"

	"microspec/internal/storage/disk"
	"microspec/internal/storage/page"
)

// faultySetup builds a Faulty-wrapped disk with `pages` checksummed pages
// and a pool on top. Faults start disabled.
func faultySetup(t *testing.T, capacity, pages int) (*disk.Manager, *disk.Faulty, *Pool, disk.FileID) {
	t.Helper()
	m := disk.NewManager(disk.LatencyModel{})
	fd := disk.NewFaulty(m, disk.FaultConfig{Seed: 7})
	f := fd.CreateFile()
	buf := make([]byte, disk.PageSize)
	for i := 0; i < pages; i++ {
		if _, err := fd.ExtendFile(f); err != nil {
			t.Fatal(err)
		}
		page.Init(page.Page(buf))
		if _, ok := page.AddTuple(page.Page(buf), []byte{byte(i + 1)}); !ok {
			t.Fatal("AddTuple failed")
		}
		page.StampChecksum(page.Page(buf))
		if err := fd.WritePage(f, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	return m, fd, New(fd, capacity), f
}

func TestReadRetriesTransientFault(t *testing.T) {
	_, fd, p, f := faultySetup(t, 4, 1)
	fd.SetEnabled(true)
	fd.FailNextReads(2) // fewer than maxReadRetries
	h, err := p.Get(f, 0)
	if err != nil {
		t.Fatalf("Get after transient faults: %v", err)
	}
	if err := h.Unpin(false); err != nil {
		t.Fatal(err)
	}
	retries, checksum, _ := p.FaultStats()
	if retries != 2 {
		t.Errorf("readRetries = %d, want 2", retries)
	}
	if checksum != 0 {
		t.Errorf("checksumFails = %d, want 0", checksum)
	}
}

func TestReadExhaustsRetries(t *testing.T) {
	_, fd, p, f := faultySetup(t, 4, 1)
	fd.SetEnabled(true)
	fd.FailNextReads(100) // more than maxReadRetries
	_, err := p.Get(f, 0)
	if err == nil {
		t.Fatal("Get must fail when every retry faults")
	}
	if !disk.IsTransient(err) {
		t.Errorf("exhausted-retry error should wrap the transient fault: %v", err)
	}
}

func TestBitFlipRetriedCleanly(t *testing.T) {
	_, fd, p, f := faultySetup(t, 4, 1)
	fd.SetEnabled(true)
	fd.SetConfig(disk.FaultConfig{BitFlip: 1.0})
	// Every read's copy is corrupted; the checksum rejects each attempt.
	_, err := p.Get(f, 0)
	if err == nil {
		t.Fatal("Get with permanent bit flips must fail")
	}
	if !IsCorrupt(err) {
		t.Errorf("err = %v, want corrupt-page error", err)
	}
	// With the flip disarmed, a retry inside one Get clears a single flip:
	// simulate by disabling faults and re-reading.
	fd.SetEnabled(false)
	h, err := p.Get(f, 0)
	if err != nil {
		t.Fatalf("clean re-read failed: %v", err)
	}
	if err := h.Unpin(false); err != nil {
		t.Fatal(err)
	}
}

func TestPersistentCorruptionIsTypedError(t *testing.T) {
	m, _, p, f := faultySetup(t, 4, 1)
	// Corrupt the stored page body directly (as a torn write would).
	if err := m.CorruptPage(f, 0, 100, 0x55); err != nil {
		t.Fatal(err)
	}
	_, err := p.Get(f, 0)
	if err == nil {
		t.Fatal("read of corrupt page must fail")
	}
	var cpe *CorruptPageError
	if !errors.As(err, &cpe) {
		t.Fatalf("err = %T %v, want *CorruptPageError", err, err)
	}
	if !errors.Is(err, ErrCorrupt) || !IsCorrupt(err) {
		t.Error("corrupt-page error must match ErrCorrupt")
	}
	if cpe.File != f || cpe.Page != 0 {
		t.Errorf("error names page %d/%d, want %d/0", cpe.File, cpe.Page, f)
	}
	_, checksumFails, _ := p.FaultStats()
	if checksumFails == 0 {
		t.Error("checksumFails counter not incremented")
	}
}

func TestFlushStampsChecksum(t *testing.T) {
	m, _, p, f := faultySetup(t, 2, 1)
	h, err := p.Get(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := page.AddTuple(page.Page(h.Bytes), []byte("dirty")); !ok {
		t.Fatal("AddTuple failed")
	}
	if err := h.Unpin(true); err != nil {
		t.Fatal(err)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, disk.PageSize)
	if err := m.ReadPage(f, 0, buf); err != nil {
		t.Fatal(err)
	}
	if stored, computed, ok := page.VerifyChecksum(page.Page(buf)); !ok {
		t.Errorf("flushed page fails verify: stored=%#04x computed=%#04x", stored, computed)
	}
}
