package exec

import "microspec/internal/expr"

// ResetCaches drops every cross-run cache in a plan tree: Materialize
// row buffers and uncorrelated subquery results. Prepared statements
// call it between executions when the underlying data changed (DML ran
// since the last EXECUTE), so a cached plan re-reads current data while
// keeping its compiled bees. The traversal mirrors WalkBees, descending
// into expression-held subquery subplans.
func ResetCaches(n Node) {
	switch in := n.(type) {
	case *Instrumented:
		n = in.Inner
	case *InstrumentedBatch:
		n = in.Inner
	}
	aggExprs := func(specs []AggSpec) {
		for i := range specs {
			resetExprCaches(specs[i].Arg)
		}
	}
	switch v := n.(type) {
	case *SeqScan, *IndexScan, *ValuesNode:
	case *BatchSeqScan:
		resetExprCaches(v.FusedPred)
	case *Rebatch:
		ResetCaches(v.Child)
	case *BatchFilter:
		resetExprCaches(v.Pred)
		ResetCaches(v.Child)
	case *BatchHashAgg:
		aggExprs(v.Aggs)
		ResetCaches(v.Child)
	case *Filter:
		resetExprCaches(v.Pred)
		ResetCaches(v.Child)
	case *Project:
		for _, e := range v.Exprs {
			resetExprCaches(e)
		}
		ResetCaches(v.Child)
	case *Limit:
		ResetCaches(v.Child)
	case *Sort:
		ResetCaches(v.Child)
	case *Distinct:
		ResetCaches(v.Child)
	case *Materialize:
		v.Invalidate()
		ResetCaches(v.Child)
	case *HashAgg:
		aggExprs(v.Aggs)
		ResetCaches(v.Child)
	case *HashJoin:
		resetExprCaches(v.Residual)
		ResetCaches(v.Outer)
		ResetCaches(v.Inner)
	case *NLJoin:
		resetExprCaches(v.Qual)
		ResetCaches(v.Outer)
		ResetCaches(v.Inner)
	case *Gather:
		aggExprs(v.Aggs)
		for _, specs := range v.PartAggs {
			aggExprs(specs)
		}
		for _, p := range v.Parts {
			ResetCaches(p)
		}
	}
}

func resetExprCaches(e expr.Expr) {
	switch n := e.(type) {
	case nil:
	case *ScalarSubquery:
		n.Reset()
		ResetCaches(n.Plan)
	case *ExistsSubquery:
		n.Reset()
		ResetCaches(n.Plan)
	case *InSubquery:
		n.Reset()
		ResetCaches(n.Plan)
		resetExprCaches(n.Kid)
	case *expr.And:
		for _, k := range n.Kids {
			resetExprCaches(k)
		}
	case *expr.Or:
		for _, k := range n.Kids {
			resetExprCaches(k)
		}
	case *expr.Not:
		resetExprCaches(n.Kid)
	case *expr.Cmp:
		resetExprCaches(n.L)
		resetExprCaches(n.R)
	case *expr.Arith:
		resetExprCaches(n.L)
		resetExprCaches(n.R)
	case *expr.Case:
		for _, w := range n.Whens {
			resetExprCaches(w.Cond)
			resetExprCaches(w.Result)
		}
		resetExprCaches(n.Else)
	}
}
