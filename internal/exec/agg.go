package exec

import (
	"fmt"
	"slices"

	"microspec/internal/core"

	"microspec/internal/expr"
	"microspec/internal/profile"
	"microspec/internal/types"
)

// AggFn enumerates the aggregate functions.
type AggFn int

// Aggregate functions.
const (
	AggCount AggFn = iota // COUNT(x) / COUNT(*) when Arg == nil
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String names the aggregate.
func (f AggFn) String() string {
	return [...]string{"count", "sum", "avg", "min", "max"}[f]
}

// AggSpec is one aggregate in the SELECT list.
type AggSpec struct {
	Fn       AggFn
	Arg      expr.Expr // nil for COUNT(*)
	Distinct bool
	Name     string
	// CompiledArg is the EVA bee routine for Arg, when the bee module
	// compiled it: the aggregate's per-tuple input evaluated without a
	// tree walk.
	CompiledArg core.CompiledPred
	// CompiledBatchArg is CompiledArg's batch form: one invocation
	// evaluates Arg for every live row of a batch (batch path only).
	CompiledBatchArg core.CompiledBatchScalar
	// Usage, when set, receives the EVA bee's row count and observed wall
	// time per drained batch (per-bee benefit attribution).
	Usage *core.BeeUsage
}

// ResultType reports the aggregate's output type.
func (a AggSpec) ResultType() types.T {
	switch a.Fn {
	case AggCount:
		return types.Int64
	case AggAvg:
		return types.Float64
	case AggSum:
		if a.Arg != nil && a.Arg.Type().Kind == types.KindFloat64 {
			return types.Float64
		}
		return types.Int64
	default:
		if a.Arg != nil {
			return a.Arg.Type()
		}
		return types.Int64
	}
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	count    int64
	sumI     int64
	sumF     float64
	min, max types.Datum
	distinct map[uint64][]types.Datum // value-hash → values (collision-safe)
}

func (s *aggState) add(spec *AggSpec, v types.Datum) {
	if spec.Arg != nil && v.IsNull() {
		return // SQL aggregates ignore NULL inputs
	}
	if spec.Distinct {
		if s.distinct == nil {
			s.distinct = make(map[uint64][]types.Datum)
		}
		h := v.Hash()
		for _, seen := range s.distinct[h] {
			if seen.Compare(v) == 0 {
				return
			}
		}
		s.distinct[h] = append(s.distinct[h], CloneDatum(v))
	}
	s.count++
	switch spec.Fn {
	case AggSum, AggAvg:
		if v.Kind() == types.KindFloat64 {
			s.sumF += v.Float64()
		} else {
			s.sumI += v.Int64()
			s.sumF += float64(v.Int64())
		}
	case AggMin:
		if s.min.IsNull() || v.Compare(s.min) < 0 {
			s.min = CloneDatum(v)
		}
	case AggMax:
		if s.max.IsNull() || v.Compare(s.max) > 0 {
			s.max = CloneDatum(v)
		}
	}
}

// addSum is the non-DISTINCT sum/avg transition with the spec checks
// hoisted out: the batch drain calls it in a per-spec loop after skipping
// NULL inputs, so it stays small enough to inline.
func (s *aggState) addSum(v types.Datum) {
	s.count++
	if v.Kind() == types.KindFloat64 {
		s.sumF += v.Float64()
	} else {
		i := v.Int64()
		s.sumI += i
		s.sumF += float64(i)
	}
}

// merge folds another partition's partial state into s — the gather-point
// half of two-phase parallel aggregation. Counts and sums are additive;
// min/max compare; DISTINCT states cannot be merged (cross-partition
// duplicates are invisible to each partition), so the planner never
// parallelizes plans with DISTINCT aggregates.
func (s *aggState) merge(o *aggState) {
	s.count += o.count
	s.sumI += o.sumI
	s.sumF += o.sumF
	if !o.min.IsNull() && (s.min.IsNull() || o.min.Compare(s.min) < 0) {
		s.min = o.min
	}
	if !o.max.IsNull() && (s.max.IsNull() || o.max.Compare(s.max) > 0) {
		s.max = o.max
	}
}

func (s *aggState) result(spec *AggSpec) types.Datum {
	switch spec.Fn {
	case AggCount:
		return types.NewInt64(s.count)
	case AggSum:
		if s.count == 0 {
			return types.Null
		}
		if spec.ResultType().Kind == types.KindFloat64 {
			return types.NewFloat64(s.sumF)
		}
		return types.NewInt64(s.sumI)
	case AggAvg:
		if s.count == 0 {
			return types.Null
		}
		return types.NewFloat64(s.sumF / float64(s.count))
	case AggMin:
		return s.min
	case AggMax:
		return s.max
	default:
		return types.Null
	}
}

// HashAgg groups rows by the GroupBy expressions and computes Aggs per
// group. Output columns are the group keys followed by the aggregates.
// With no GroupBy it produces exactly one row (global aggregation).
type HashAgg struct {
	Child   Node
	GroupBy []expr.Expr
	Aggs    []AggSpec
	// NoteEVA, when set, receives the number of EVA invocations at Close.
	NoteEVA func(int64)

	evaCalls int64

	table  *aggTable
	pos    int
	cols   []ColInfo
	outBuf expr.Row
}

type aggGroup struct {
	keys   expr.Row
	states []aggState
}

// aggTable is one hash table of aggregation groups in first-appearance
// order. HashAgg owns one; a parallel Gather builds one per partition and
// merges them in partition order, which reproduces the serial
// first-appearance order exactly (partitions cover the heap in page
// order).
type aggTable struct {
	groups map[uint64][]*aggGroup
	order  []*aggGroup
}

func newAggTable() *aggTable {
	return &aggTable{groups: make(map[uint64][]*aggGroup)}
}

// find returns the group for keys, creating it (with naggs zeroed states)
// on first appearance.
func (t *aggTable) find(keys expr.Row, naggs int) *aggGroup {
	h := uint64(14695981039346656037)
	for _, k := range keys {
		h = (h ^ k.Hash()) * 1099511628211
	}
	for _, g := range t.groups[h] {
		if rowsEqual(g.keys, keys) {
			return g
		}
	}
	g := &aggGroup{keys: CloneRow(keys), states: make([]aggState, naggs)}
	t.groups[h] = append(t.groups[h], g)
	t.order = append(t.order, g)
	return g
}

// Open implements Node: it consumes the whole child.
func (a *HashAgg) Open(ctx *Ctx) error {
	a.table = newAggTable()
	a.pos = 0
	if a.outBuf == nil {
		a.outBuf = make(expr.Row, len(a.GroupBy)+len(a.Aggs))
	}
	if err := a.Child.Open(ctx); err != nil {
		return err
	}
	defer a.Child.Close(ctx)
	keyBuf := make(expr.Row, len(a.GroupBy))
	for {
		row, ok, err := a.Child.Next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		ctx.Prof().Add(profile.CompExec, profile.ExecNodeTuple+int64(len(a.Aggs))*profile.AggTransition)
		for i, g := range a.GroupBy {
			keyBuf[i] = g.Eval(row, &ctx.Expr)
		}
		grp := a.table.find(keyBuf, len(a.Aggs))
		for i := range a.Aggs {
			spec := &a.Aggs[i]
			var v types.Datum
			switch {
			case spec.CompiledArg != nil:
				a.evaCalls++
				v = spec.CompiledArg(row, &ctx.Expr)
			case spec.Arg != nil:
				v = spec.Arg.Eval(row, &ctx.Expr)
			}
			grp.states[i].add(spec, v)
		}
	}
	// Global aggregation over zero rows still yields one (empty) group.
	if len(a.GroupBy) == 0 && len(a.table.order) == 0 {
		a.table.find(nil, len(a.Aggs))
	}
	return nil
}

func rowsEqual(a, b expr.Row) bool {
	for i := range a {
		an, bn := a[i].IsNull(), b[i].IsNull()
		if an != bn {
			return false
		}
		if !an && a[i].Compare(b[i]) != 0 {
			return false
		}
	}
	return true
}

// Next implements Node.
func (a *HashAgg) Next(ctx *Ctx) (expr.Row, bool, error) {
	if a.pos >= len(a.table.order) {
		return nil, false, nil
	}
	g := a.table.order[a.pos]
	a.pos++
	copy(a.outBuf, g.keys)
	for i := range a.Aggs {
		a.outBuf[len(a.GroupBy)+i] = g.states[i].result(&a.Aggs[i])
	}
	return a.outBuf, true, nil
}

// Close implements Node.
func (a *HashAgg) Close(*Ctx) {
	if a.NoteEVA != nil && a.evaCalls > 0 {
		a.NoteEVA(a.evaCalls)
		a.evaCalls = 0
	}
	a.table = nil
}

// Schema implements Node.
func (a *HashAgg) Schema() []ColInfo {
	if a.cols != nil {
		return a.cols
	}
	cols := make([]ColInfo, 0, len(a.GroupBy)+len(a.Aggs))
	for i, g := range a.GroupBy {
		cols = append(cols, ColInfo{Name: fmt.Sprintf("group%d", i), T: g.Type()})
	}
	for _, s := range a.Aggs {
		name := s.Name
		if name == "" {
			name = s.Fn.String()
		}
		cols = append(cols, ColInfo{Name: name, T: s.ResultType()})
	}
	a.cols = cols
	return cols
}

// Distinct removes duplicate rows (SELECT DISTINCT), preserving first
// appearance order.
type Distinct struct {
	Child Node

	seen map[uint64][]expr.Row
}

// Open implements Node.
func (d *Distinct) Open(ctx *Ctx) error {
	d.seen = make(map[uint64][]expr.Row)
	return d.Child.Open(ctx)
}

// Next implements Node.
func (d *Distinct) Next(ctx *Ctx) (expr.Row, bool, error) {
	for {
		row, ok, err := d.Child.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		ctx.Prof().Add(profile.CompExec, profile.HashProbe)
		h := uint64(14695981039346656037)
		for _, v := range row {
			h = (h ^ v.Hash()) * 1099511628211
		}
		dup := false
		for _, s := range d.seen[h] {
			if rowsEqual(s, row) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		clone := CloneRow(row)
		d.seen[h] = append(d.seen[h], clone)
		return clone, true, nil
	}
}

// Close implements Node.
func (d *Distinct) Close(ctx *Ctx) {
	d.Child.Close(ctx)
	d.seen = nil
}

// Schema implements Node.
func (d *Distinct) Schema() []ColInfo { return d.Child.Schema() }

// SortKey orders by a column ordinal of the input row.
type SortKey struct {
	Idx  int
	Desc bool
}

// Sort materializes and orders its child's rows.
type Sort struct {
	Child Node
	Keys  []SortKey

	rows []expr.Row
	pos  int
}

// Open implements Node.
func (s *Sort) Open(ctx *Ctx) error {
	s.rows = s.rows[:0]
	s.pos = 0
	if err := s.Child.Open(ctx); err != nil {
		return err
	}
	defer s.Child.Close(ctx)
	for {
		row, ok, err := s.Child.Next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		s.rows = append(s.rows, CloneRow(row))
	}
	ctx.Prof().Add(profile.CompExec, sortCost(len(s.rows)))
	// slices.SortStableFunc, not sort.SliceStable: the generic comparator
	// avoids the reflection-based swapper on this hot path.
	slices.SortStableFunc(s.rows, func(a, b expr.Row) int {
		return compareRows(a, b, s.Keys)
	})
	return nil
}

// sortCost charges n·log2(n) comparisons.
func sortCost(n int) int64 {
	if n < 2 {
		return 0
	}
	log := 0
	for v := n; v > 1; v >>= 1 {
		log++
	}
	return int64(n) * int64(log) * profile.SortCompare
}

func compareRows(a, b expr.Row, keys []SortKey) int {
	for _, k := range keys {
		av, bv := a[k.Idx], b[k.Idx]
		var c int
		switch {
		case av.IsNull() && bv.IsNull():
			c = 0
		case av.IsNull():
			c = 1 // NULLS LAST
		case bv.IsNull():
			c = -1
		default:
			c = av.Compare(bv)
		}
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

// Next implements Node.
func (s *Sort) Next(ctx *Ctx) (expr.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, true, nil
}

// Close implements Node.
func (s *Sort) Close(*Ctx) {}

// Schema implements Node.
func (s *Sort) Schema() []ColInfo { return s.Child.Schema() }
