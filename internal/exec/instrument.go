package exec

import (
	"fmt"
	"time"

	"microspec/internal/expr"
)

// Instrumented decorates a Node with per-node runtime statistics for
// EXPLAIN ANALYZE: actual rows produced, loops (Open calls — rescans in a
// nested loop count separately), and cumulative wall-clock time. Times
// are inclusive of children, matching PostgreSQL's EXPLAIN ANALYZE
// convention. The decorator is only installed for analyzed runs, so
// normal query execution pays no timing overhead.
type Instrumented struct {
	Inner Node

	Rows    int64
	Loops   int64
	Elapsed time.Duration
}

// Instrument recursively wraps a plan tree, rewriting every child link to
// point at the wrapped child. Subquery plans embedded in expressions are
// left untouched: their cost surfaces in the timing of the node that
// evaluates the expression.
func Instrument(n Node) Node {
	switch v := n.(type) {
	case *Filter:
		v.Child = Instrument(v.Child)
	case *Project:
		v.Child = Instrument(v.Child)
	case *Limit:
		v.Child = Instrument(v.Child)
	case *Sort:
		v.Child = Instrument(v.Child)
	case *Distinct:
		v.Child = Instrument(v.Child)
	case *Materialize:
		v.Child = Instrument(v.Child)
	case *HashAgg:
		v.Child = Instrument(v.Child)
	case *HashJoin:
		v.Outer = Instrument(v.Outer)
		v.Inner = Instrument(v.Inner)
	case *NLJoin:
		v.Outer = Instrument(v.Outer)
		v.Inner = Instrument(v.Inner)
	case *Gather:
		// Each partition subplan is wrapped separately; a part is driven by
		// exactly one worker at a time, so its counters need no locking.
		for i := range v.Parts {
			v.Parts[i] = Instrument(v.Parts[i])
		}
	case *Rebatch:
		v.Child = InstrumentBatch(v.Child)
	case *BatchHashAgg:
		v.Child = InstrumentBatch(v.Child)
	}
	return &Instrumented{Inner: n}
}

// InstrumentBatch wraps a batch subtree in InstrumentedBatch decorators,
// mirroring Instrument for the batch-at-a-time path.
func InstrumentBatch(n BatchNode) BatchNode {
	if f, ok := n.(*BatchFilter); ok {
		f.Child = InstrumentBatch(f.Child)
	}
	return &InstrumentedBatch{Inner: n}
}

// InstrumentedBatch decorates a BatchNode with EXPLAIN ANALYZE statistics:
// batches and (selected) rows produced, loops, and inclusive wall-clock
// time. One timing sample per batch instead of per row keeps the analyze
// overhead on the batch path negligible.
type InstrumentedBatch struct {
	Inner BatchNode

	Rows    int64
	Batches int64
	Loops   int64
	Elapsed time.Duration
}

// Open implements Node.
func (in *InstrumentedBatch) Open(ctx *Ctx) error {
	in.Loops++
	start := time.Now()
	err := in.Inner.Open(ctx)
	in.Elapsed += time.Since(start)
	return err
}

// NextBatch implements BatchNode.
func (in *InstrumentedBatch) NextBatch(ctx *Ctx) (*Batch, bool, error) {
	start := time.Now()
	b, ok, err := in.Inner.NextBatch(ctx)
	in.Elapsed += time.Since(start)
	if ok {
		in.Batches++
		in.Rows += int64(b.Count())
	}
	return b, ok, err
}

// Next implements Node (tuple-wise fallback; batch-aware parents use
// NextBatch, so the two counting modes never mix in one run).
func (in *InstrumentedBatch) Next(ctx *Ctx) (expr.Row, bool, error) {
	start := time.Now()
	row, ok, err := in.Inner.Next(ctx)
	in.Elapsed += time.Since(start)
	if ok {
		in.Rows++
	}
	return row, ok, err
}

// Close implements Node.
func (in *InstrumentedBatch) Close(ctx *Ctx) {
	start := time.Now()
	in.Inner.Close(ctx)
	in.Elapsed += time.Since(start)
}

// Schema implements Node.
func (in *InstrumentedBatch) Schema() []ColInfo { return in.Inner.Schema() }

// Open implements Node.
func (in *Instrumented) Open(ctx *Ctx) error {
	in.Loops++
	start := time.Now()
	err := in.Inner.Open(ctx)
	in.Elapsed += time.Since(start)
	return err
}

// Next implements Node.
func (in *Instrumented) Next(ctx *Ctx) (row expr.Row, ok bool, err error) {
	start := time.Now()
	row, ok, err = in.Inner.Next(ctx)
	in.Elapsed += time.Since(start)
	if ok {
		in.Rows++
	}
	return row, ok, err
}

// Close implements Node.
func (in *Instrumented) Close(ctx *Ctx) {
	start := time.Now()
	in.Inner.Close(ctx)
	in.Elapsed += time.Since(start)
}

// Schema implements Node.
func (in *Instrumented) Schema() []ColInfo { return in.Inner.Schema() }

// WalkInstrumented visits every Instrumented wrapper in a plan tree in
// pre-order (the engine folds their statistics into the metrics registry
// after an analyzed run).
func WalkInstrumented(n Node, fn func(*Instrumented)) {
	in, ok := n.(*Instrumented)
	if !ok {
		return
	}
	fn(in)
	switch v := in.Inner.(type) {
	case *Filter:
		WalkInstrumented(v.Child, fn)
	case *Project:
		WalkInstrumented(v.Child, fn)
	case *Limit:
		WalkInstrumented(v.Child, fn)
	case *Sort:
		WalkInstrumented(v.Child, fn)
	case *Distinct:
		WalkInstrumented(v.Child, fn)
	case *Materialize:
		WalkInstrumented(v.Child, fn)
	case *HashAgg:
		WalkInstrumented(v.Child, fn)
	case *HashJoin:
		WalkInstrumented(v.Outer, fn)
		WalkInstrumented(v.Inner, fn)
	case *NLJoin:
		WalkInstrumented(v.Outer, fn)
		WalkInstrumented(v.Inner, fn)
	case *Gather:
		for _, p := range v.Parts {
			WalkInstrumented(p, fn)
		}
	}
}

// WalkNodes visits every node of a plan tree in pre-order, descending
// through instrumentation wrappers, child links, batch subtrees, and
// Gather partition subplans (but not subquery plans embedded in
// expressions). It is the generic structural walker the engine uses to
// collect per-node and batch statistics.
func WalkNodes(n Node, fn func(Node)) {
	if n == nil {
		return
	}
	fn(n)
	switch v := n.(type) {
	case *Instrumented:
		WalkNodes(v.Inner, fn)
	case *InstrumentedBatch:
		WalkNodes(v.Inner, fn)
	case *Filter:
		WalkNodes(v.Child, fn)
	case *Project:
		WalkNodes(v.Child, fn)
	case *Limit:
		WalkNodes(v.Child, fn)
	case *Sort:
		WalkNodes(v.Child, fn)
	case *Distinct:
		WalkNodes(v.Child, fn)
	case *Materialize:
		WalkNodes(v.Child, fn)
	case *HashAgg:
		WalkNodes(v.Child, fn)
	case *HashJoin:
		WalkNodes(v.Outer, fn)
		WalkNodes(v.Inner, fn)
	case *NLJoin:
		WalkNodes(v.Outer, fn)
		WalkNodes(v.Inner, fn)
	case *Gather:
		for _, p := range v.Parts {
			WalkNodes(p, fn)
		}
	case *Rebatch:
		WalkNodes(v.Child, fn)
	case *BatchFilter:
		WalkNodes(v.Child, fn)
	case *BatchHashAgg:
		WalkNodes(v.Child, fn)
	}
}

// NodeTypeName returns the bare operator name of a plan node ("SeqScan",
// "HashJoin", ...), unwrapping instrumentation.
func NodeTypeName(n Node) string {
	switch in := n.(type) {
	case *Instrumented:
		n = in.Inner
	case *InstrumentedBatch:
		n = in.Inner
	}
	s := fmt.Sprintf("%T", n)
	if i := len("*exec."); len(s) > i && s[:i] == "*exec." {
		return s[i:]
	}
	return s
}
