package exec

import (
	"fmt"
	"time"

	"microspec/internal/expr"
)

// Instrumented decorates a Node with per-node runtime statistics for
// EXPLAIN ANALYZE: actual rows produced, loops (Open calls — rescans in a
// nested loop count separately), and cumulative wall-clock time. Times
// are inclusive of children, matching PostgreSQL's EXPLAIN ANALYZE
// convention. The decorator is only installed for analyzed runs, so
// normal query execution pays no timing overhead.
type Instrumented struct {
	Inner Node

	Rows    int64
	Loops   int64
	Elapsed time.Duration
}

// Instrument recursively wraps a plan tree, rewriting every child link to
// point at the wrapped child. Subquery plans embedded in expressions are
// left untouched: their cost surfaces in the timing of the node that
// evaluates the expression.
func Instrument(n Node) Node {
	switch v := n.(type) {
	case *Filter:
		v.Child = Instrument(v.Child)
	case *Project:
		v.Child = Instrument(v.Child)
	case *Limit:
		v.Child = Instrument(v.Child)
	case *Sort:
		v.Child = Instrument(v.Child)
	case *Distinct:
		v.Child = Instrument(v.Child)
	case *Materialize:
		v.Child = Instrument(v.Child)
	case *HashAgg:
		v.Child = Instrument(v.Child)
	case *HashJoin:
		v.Outer = Instrument(v.Outer)
		v.Inner = Instrument(v.Inner)
	case *NLJoin:
		v.Outer = Instrument(v.Outer)
		v.Inner = Instrument(v.Inner)
	case *Gather:
		// Each partition subplan is wrapped separately; a part is driven by
		// exactly one worker at a time, so its counters need no locking.
		for i := range v.Parts {
			v.Parts[i] = Instrument(v.Parts[i])
		}
	}
	return &Instrumented{Inner: n}
}

// Open implements Node.
func (in *Instrumented) Open(ctx *Ctx) error {
	in.Loops++
	start := time.Now()
	err := in.Inner.Open(ctx)
	in.Elapsed += time.Since(start)
	return err
}

// Next implements Node.
func (in *Instrumented) Next(ctx *Ctx) (row expr.Row, ok bool, err error) {
	start := time.Now()
	row, ok, err = in.Inner.Next(ctx)
	in.Elapsed += time.Since(start)
	if ok {
		in.Rows++
	}
	return row, ok, err
}

// Close implements Node.
func (in *Instrumented) Close(ctx *Ctx) {
	start := time.Now()
	in.Inner.Close(ctx)
	in.Elapsed += time.Since(start)
}

// Schema implements Node.
func (in *Instrumented) Schema() []ColInfo { return in.Inner.Schema() }

// WalkInstrumented visits every Instrumented wrapper in a plan tree in
// pre-order (the engine folds their statistics into the metrics registry
// after an analyzed run).
func WalkInstrumented(n Node, fn func(*Instrumented)) {
	in, ok := n.(*Instrumented)
	if !ok {
		return
	}
	fn(in)
	switch v := in.Inner.(type) {
	case *Filter:
		WalkInstrumented(v.Child, fn)
	case *Project:
		WalkInstrumented(v.Child, fn)
	case *Limit:
		WalkInstrumented(v.Child, fn)
	case *Sort:
		WalkInstrumented(v.Child, fn)
	case *Distinct:
		WalkInstrumented(v.Child, fn)
	case *Materialize:
		WalkInstrumented(v.Child, fn)
	case *HashAgg:
		WalkInstrumented(v.Child, fn)
	case *HashJoin:
		WalkInstrumented(v.Outer, fn)
		WalkInstrumented(v.Inner, fn)
	case *NLJoin:
		WalkInstrumented(v.Outer, fn)
		WalkInstrumented(v.Inner, fn)
	case *Gather:
		for _, p := range v.Parts {
			WalkInstrumented(p, fn)
		}
	}
}

// NodeTypeName returns the bare operator name of a plan node ("SeqScan",
// "HashJoin", ...), unwrapping instrumentation.
func NodeTypeName(n Node) string {
	if in, ok := n.(*Instrumented); ok {
		n = in.Inner
	}
	s := fmt.Sprintf("%T", n)
	if i := len("*exec."); len(s) > i && s[:i] == "*exec." {
		return s[i:]
	}
	return s
}
