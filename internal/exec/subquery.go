package exec

import (
	"fmt"

	"microspec/internal/expr"
	"microspec/internal/types"
)

// Subquery expressions bridge the expression evaluator and the executor:
// each evaluation runs a subplan, binding the current row as the outer
// row for correlated references (expr.OuterVar). Uncorrelated subqueries
// are evaluated once and cached.

// ScalarSubquery evaluates a single-column subplan to at most one row
// (SQL scalar subquery). Zero rows yield NULL.
type ScalarSubquery struct {
	Plan       Node
	Correlated bool
	T          types.T

	cached bool
	value  types.Datum
}

// Eval implements expr.Expr.
func (s *ScalarSubquery) Eval(row expr.Row, ctx *expr.Ctx) types.Datum {
	if !s.Correlated && s.cached {
		return s.value
	}
	ectx := &Ctx{Expr: *ctx}
	if s.Correlated {
		ectx.Expr.PushOuter(row)
	}
	// The subplan shares the caller's profiler (the Ctx copies the Prof
	// pointer). Plan-shape errors cannot occur post-planning; a runtime
	// error surfaces as NULL, SQL's unknown.
	rows, err := Collect(ectx, s.Plan)
	v := types.Null
	if err == nil && len(rows) > 0 {
		v = rows[0][0]
	}
	if !s.Correlated {
		s.cached = true
		s.value = v
	}
	return v
}

// Type implements expr.Expr.
func (s *ScalarSubquery) Type() types.T { return s.T }

func (s *ScalarSubquery) String() string { return "(scalar subquery)" }

// Reset drops the uncorrelated cache (between statements).
func (s *ScalarSubquery) Reset() { s.cached = false }

// ExistsSubquery implements EXISTS / NOT EXISTS.
type ExistsSubquery struct {
	Plan       Node
	Correlated bool
	Negate     bool

	cached bool
	value  bool
}

// Eval implements expr.Expr.
func (s *ExistsSubquery) Eval(row expr.Row, ctx *expr.Ctx) types.Datum {
	if !s.Correlated && s.cached {
		return types.NewBool(s.value != s.Negate)
	}
	ectx := &Ctx{Expr: *ctx}
	if s.Correlated {
		ectx.Expr.PushOuter(row)
	}
	found, err := s.probe(ectx)
	if err != nil {
		return types.Null
	}
	if !s.Correlated {
		s.cached = true
		s.value = found
	}
	return types.NewBool(found != s.Negate)
}

func (s *ExistsSubquery) probe(ctx *Ctx) (bool, error) {
	if err := s.Plan.Open(ctx); err != nil {
		return false, err
	}
	defer s.Plan.Close(ctx)
	_, ok, err := s.Plan.Next(ctx)
	return ok, err
}

// Type implements expr.Expr.
func (s *ExistsSubquery) Type() types.T { return types.Bool }

func (s *ExistsSubquery) String() string {
	if s.Negate {
		return "(not exists subquery)"
	}
	return "(exists subquery)"
}

// Reset drops the uncorrelated cache.
func (s *ExistsSubquery) Reset() { s.cached = false }

// InSubquery implements expr IN (SELECT ...) / NOT IN. The subplan must
// produce one column. For uncorrelated subqueries the result set is
// materialized into a hash set once.
type InSubquery struct {
	Kid        expr.Expr
	Plan       Node
	Correlated bool
	Negate     bool

	built   bool
	set     map[uint64][]types.Datum
	sawNull bool
}

// Eval implements expr.Expr.
func (s *InSubquery) Eval(row expr.Row, ctx *expr.Ctx) types.Datum {
	v := s.Kid.Eval(row, ctx)
	if v.IsNull() {
		return types.Null
	}
	if s.Correlated {
		return s.evalCorrelated(v, row, ctx)
	}
	if !s.built {
		if err := s.build(ctx); err != nil {
			return types.Null
		}
	}
	found := false
	for _, d := range s.set[v.Hash()] {
		if d.Compare(v) == 0 {
			found = true
			break
		}
	}
	if !found && s.sawNull {
		// SQL: x NOT IN (set containing NULL) is unknown.
		return types.Null
	}
	return types.NewBool(found != s.Negate)
}

func (s *InSubquery) build(ctx *expr.Ctx) error {
	ectx := &Ctx{Expr: *ctx}
	rows, err := Collect(ectx, s.Plan)
	if err != nil {
		return err
	}
	s.set = make(map[uint64][]types.Datum, len(rows))
	for _, r := range rows {
		if r[0].IsNull() {
			s.sawNull = true
			continue
		}
		h := r[0].Hash()
		s.set[h] = append(s.set[h], r[0])
	}
	s.built = true
	return nil
}

func (s *InSubquery) evalCorrelated(v types.Datum, row expr.Row, ctx *expr.Ctx) types.Datum {
	ectx := &Ctx{Expr: *ctx}
	ectx.Expr.PushOuter(row)
	if err := s.Plan.Open(ectx); err != nil {
		return types.Null
	}
	defer s.Plan.Close(ectx)
	sawNull := false
	for {
		r, ok, err := s.Plan.Next(ectx)
		if err != nil || !ok {
			break
		}
		if r[0].IsNull() {
			sawNull = true
			continue
		}
		if r[0].Compare(v) == 0 {
			return types.NewBool(!s.Negate)
		}
	}
	if sawNull {
		return types.Null
	}
	return types.NewBool(s.Negate)
}

// Type implements expr.Expr.
func (s *InSubquery) Type() types.T { return types.Bool }

func (s *InSubquery) String() string {
	op := "IN"
	if s.Negate {
		op = "NOT IN"
	}
	return fmt.Sprintf("(%s %s (subquery))", s.Kid, op)
}

// Reset drops the uncorrelated cache.
func (s *InSubquery) Reset() {
	s.built = false
	s.set = nil
	s.sawNull = false
}

// ResetSubqueries walks an expression tree resetting subquery caches.
func ResetSubqueries(e expr.Expr) {
	switch n := e.(type) {
	case *ScalarSubquery:
		n.Reset()
	case *ExistsSubquery:
		n.Reset()
	case *InSubquery:
		n.Reset()
		ResetSubqueries(n.Kid)
	case *expr.And:
		for _, k := range n.Kids {
			ResetSubqueries(k)
		}
	case *expr.Or:
		for _, k := range n.Kids {
			ResetSubqueries(k)
		}
	case *expr.Not:
		ResetSubqueries(n.Kid)
	case *expr.Cmp:
		ResetSubqueries(n.L)
		ResetSubqueries(n.R)
	case *expr.Arith:
		ResetSubqueries(n.L)
		ResetSubqueries(n.R)
	case *expr.Case:
		for _, w := range n.Whens {
			ResetSubqueries(w.Cond)
			ResetSubqueries(w.Result)
		}
		if n.Else != nil {
			ResetSubqueries(n.Else)
		}
	}
}
