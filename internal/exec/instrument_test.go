package exec

import (
	"sync"
	"testing"

	"microspec/internal/expr"
	"microspec/internal/metrics"
	"microspec/internal/types"
)

func TestInstrumentCountsRowsAndLoops(t *testing.T) {
	src := vals(intCols("a"),
		expr.Row{i32(1)}, expr.Row{i32(5)}, expr.Row{i32(9)}, expr.Row{i32(12)})
	pred := &expr.Cmp{Op: expr.GE, L: &expr.Var{Idx: 0, T: types.Int32}, R: expr.NewConst(i32(5))}
	root := Instrument(&Limit{Child: &Filter{Child: src, Pred: pred}, N: 2, Offset: 0})

	rows := mustCollect(t, root)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}

	var stats []*Instrumented
	WalkInstrumented(root, func(in *Instrumented) { stats = append(stats, in) })
	if len(stats) != 3 {
		t.Fatalf("got %d instrumented nodes, want 3 (Limit, Filter, Values)", len(stats))
	}
	// Pre-order: Limit, Filter, Values.
	if got := NodeTypeName(stats[0]); got != "Limit" {
		t.Fatalf("root = %s, want Limit", got)
	}
	if stats[0].Rows != 2 || stats[0].Loops != 1 {
		t.Fatalf("Limit stats = rows %d loops %d", stats[0].Rows, stats[0].Loops)
	}
	if NodeTypeName(stats[1].Inner) != "Filter" || stats[1].Rows != 2 {
		t.Fatalf("Filter stats = %s rows %d", NodeTypeName(stats[1].Inner), stats[1].Rows)
	}
	// The Values source stops as soon as Limit is satisfied: 1, 5, 9 read.
	if NodeTypeName(stats[2].Inner) != "ValuesNode" || stats[2].Rows != 3 {
		t.Fatalf("Values stats = %s rows %d", NodeTypeName(stats[2].Inner), stats[2].Rows)
	}
	for _, in := range stats {
		if in.Elapsed < 0 {
			t.Fatalf("negative elapsed on %s", NodeTypeName(in.Inner))
		}
	}
}

func TestInstrumentRescanCountsLoops(t *testing.T) {
	// A nested-loop join re-opens its inner side once per outer row.
	outer := vals(intCols("a"), expr.Row{i32(1)}, expr.Row{i32(2)}, expr.Row{i32(3)})
	inner := vals(intCols("b"), expr.Row{i32(7)})
	root := Instrument(&NLJoin{Outer: outer, Inner: inner, Type: InnerJoin})
	rows := mustCollect(t, root)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	var innerStats *Instrumented
	WalkInstrumented(root, func(in *Instrumented) {
		if NodeTypeName(in.Inner) == "ValuesNode" && in.Inner.Schema()[0].Name == "b" {
			innerStats = in
		}
	})
	if innerStats == nil {
		t.Fatal("inner side not instrumented")
	}
	if innerStats.Loops != 3 || innerStats.Rows != 3 {
		t.Fatalf("inner stats = rows %d loops %d, want 3/3", innerStats.Rows, innerStats.Loops)
	}
}

// TestInstrumentedPlansConcurrent runs many independently instrumented
// plans in parallel while hammering a shared metrics registry with the
// per-node-type fold the engine performs — the executor-side half of the
// -race coverage the metrics subsystem requires.
func TestInstrumentedPlansConcurrent(t *testing.T) {
	reg := metrics.NewRegistry()
	pred := &expr.Cmp{Op: expr.GE, L: &expr.Var{Idx: 0, T: types.Int32}, R: expr.NewConst(i32(50))}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				rows := make([]expr.Row, 100)
				for i := range rows {
					rows[i] = expr.Row{i32(int32(i))}
				}
				root := Instrument(&Filter{Child: vals(intCols("a"), rows...), Pred: pred})
				out, err := Collect(&Ctx{}, root)
				if err != nil {
					t.Error(err)
					return
				}
				if len(out) != 50 {
					t.Errorf("got %d rows, want 50", len(out))
					return
				}
				WalkInstrumented(root, func(in *Instrumented) {
					name := "exec.node." + NodeTypeName(in.Inner)
					reg.Counter(name + ".rows").Add(in.Rows)
					reg.Counter(name + ".time_ns").Add(int64(in.Elapsed))
				})
			}
		}()
	}
	wg.Wait()
	s := reg.Snapshot()
	if got := s.Counters["exec.node.Filter.rows"]; got != 8*50*50 {
		t.Fatalf("Filter rows = %d, want %d", got, 8*50*50)
	}
}
