package exec

import (
	"microspec/internal/core"
	"microspec/internal/expr"
	"microspec/internal/profile"
	"microspec/internal/types"
)

// Filter passes through rows satisfying the predicate. When the bee
// module compiled the predicate, Compiled is the EVP bee routine and Pred
// is kept only for display; otherwise Pred is evaluated by the generic
// interpreter (the FuncExprState path).
type Filter struct {
	Child    Node
	Pred     expr.Expr
	Compiled core.CompiledPred
	// NoteCalls, when set, receives the number of compiled-predicate
	// (EVP) invocations at Close — the module's bee-call statistics
	// without per-tuple synchronization.
	NoteCalls func(int64)

	calls int64
}

// Open implements Node.
func (f *Filter) Open(ctx *Ctx) error { return f.Child.Open(ctx) }

// Next implements Node.
func (f *Filter) Next(ctx *Ctx) (expr.Row, bool, error) {
	for {
		row, ok, err := f.Child.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		ctx.Prof().Add(profile.CompExec, profile.ExecNodeTuple)
		v := f.eval(row, ctx)
		if !v.IsNull() && v.Bool() {
			return row, true, nil
		}
	}
}

func (f *Filter) eval(row expr.Row, ctx *Ctx) types.Datum {
	if f.Compiled != nil {
		f.calls++
		return f.Compiled(row, &ctx.Expr)
	}
	return f.Pred.Eval(row, &ctx.Expr)
}

// Close implements Node.
func (f *Filter) Close(ctx *Ctx) {
	if f.NoteCalls != nil && f.calls > 0 {
		f.NoteCalls(f.calls)
		f.calls = 0
	}
	f.Child.Close(ctx)
}

// Schema implements Node.
func (f *Filter) Schema() []ColInfo { return f.Child.Schema() }

// Project computes output expressions over child rows.
type Project struct {
	Child Node
	Exprs []expr.Expr
	Cols  []ColInfo

	buf expr.Row
}

// Open implements Node.
func (p *Project) Open(ctx *Ctx) error {
	if p.buf == nil {
		p.buf = make(expr.Row, len(p.Exprs))
	}
	return p.Child.Open(ctx)
}

// Next implements Node.
func (p *Project) Next(ctx *Ctx) (expr.Row, bool, error) {
	row, ok, err := p.Child.Next(ctx)
	if err != nil || !ok {
		return nil, false, err
	}
	ctx.Prof().Add(profile.CompExec, profile.ExecNodeTuple+int64(len(p.Exprs))*profile.ProjectCol)
	for i, e := range p.Exprs {
		p.buf[i] = e.Eval(row, &ctx.Expr)
	}
	return p.buf, true, nil
}

// Close implements Node.
func (p *Project) Close(ctx *Ctx) { p.Child.Close(ctx) }

// Schema implements Node.
func (p *Project) Schema() []ColInfo { return p.Cols }

// Limit stops after N rows (N < 0 means no limit) after skipping Offset.
type Limit struct {
	Child  Node
	N      int64
	Offset int64

	seen    int64
	skipped int64
}

// Open implements Node.
func (l *Limit) Open(ctx *Ctx) error {
	l.seen, l.skipped = 0, 0
	return l.Child.Open(ctx)
}

// Next implements Node.
func (l *Limit) Next(ctx *Ctx) (expr.Row, bool, error) {
	for l.skipped < l.Offset {
		_, ok, err := l.Child.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		l.skipped++
	}
	if l.N >= 0 && l.seen >= l.N {
		return nil, false, nil
	}
	row, ok, err := l.Child.Next(ctx)
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return row, true, nil
}

// Close implements Node.
func (l *Limit) Close(ctx *Ctx) { l.Child.Close(ctx) }

// Schema implements Node.
func (l *Limit) Schema() []ColInfo { return l.Child.Schema() }

// Materialize buffers its child's rows on first Open and replays them on
// every subsequent Open — the rescan support nested-loop joins and
// subqueries rely on.
type Materialize struct {
	Child Node

	rows   []expr.Row
	filled bool
	pos    int
}

// Open implements Node.
func (m *Materialize) Open(ctx *Ctx) error {
	m.pos = 0
	if m.filled {
		return nil
	}
	if err := m.Child.Open(ctx); err != nil {
		return err
	}
	defer m.Child.Close(ctx)
	for {
		row, ok, err := m.Child.Next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		m.rows = append(m.rows, CloneRow(row))
	}
	m.filled = true
	return nil
}

// Next implements Node.
func (m *Materialize) Next(ctx *Ctx) (expr.Row, bool, error) {
	if m.pos >= len(m.rows) {
		return nil, false, nil
	}
	row := m.rows[m.pos]
	m.pos++
	ctx.Prof().Add(profile.CompExec, profile.ExecNodeTuple)
	return row, true, nil
}

// Close implements Node.
func (m *Materialize) Close(*Ctx) {}

// Schema implements Node.
func (m *Materialize) Schema() []ColInfo { return m.Child.Schema() }

// Invalidate drops the buffered rows so the next Open re-reads the child
// (used between statements when the underlying relation changed).
func (m *Materialize) Invalidate() {
	m.rows = nil
	m.filled = false
}
