package exec

import (
	"fmt"

	"microspec/internal/core"
	"microspec/internal/expr"
	"microspec/internal/profile"
	"microspec/internal/types"
)

// JoinType enumerates the join semantics the executor supports — the
// variants the paper's EVJ bee routine enumerates and pre-compiles
// ("different types of joins (left, semi, anti, etc.)").
type JoinType int

// Join types.
const (
	InnerJoin JoinType = iota
	LeftJoin
	SemiJoin
	AntiJoin
)

// String names the join type.
func (j JoinType) String() string {
	return [...]string{"inner", "left", "semi", "anti"}[j]
}

// HashJoin is an equi-join: it builds a hash table on the inner child and
// probes with the outer child. Semi/anti joins emit only outer columns.
//
// Key evaluation has two forms, chosen at plan time:
//
//   - generic: per candidate pair, the JoinState analogue — hash with the
//     generic datum hasher and compare keys with the generic comparator,
//     charging JoinQualNode per pair;
//   - EVJ bee: the specialized hash/equality closures with baked key
//     ordinals and types, charging the bee's (smaller) cost.
type HashJoin struct {
	Outer, Inner Node
	// OuterKeys/InnerKeys are key column ordinals in each child's schema.
	OuterKeys, InnerKeys []int
	Type                 JoinType
	// Residual is an optional extra qual evaluated over the combined row
	// (inner and left joins only).
	Residual expr.Expr
	// ResidualCompiled is the EVP form of Residual, if compiled.
	ResidualCompiled core.CompiledPred
	// EVJ is the specialized key-evaluation bee, nil for the generic path.
	EVJ *core.JoinKeyFuncs
	// NoteEVJ, when set, receives the number of EVJ invocations at Close.
	NoteEVJ func(int64)

	evjCalls int64

	table    map[uint64][]expr.Row
	innerW   int
	cols     []ColInfo
	keyTypes []types.T

	outerRow expr.Row
	matches  []expr.Row
	matchPos int
	combined expr.Row
	// emitted records whether the current left-join outer row produced at
	// least one residual-surviving match (controls null extension).
	emitted bool
}

// Open implements Node: it (re)builds the hash table from the inner child.
func (h *HashJoin) Open(ctx *Ctx) error {
	if len(h.OuterKeys) != len(h.InnerKeys) || len(h.OuterKeys) == 0 {
		return fmt.Errorf("hash join: bad key lists %v/%v", h.OuterKeys, h.InnerKeys)
	}
	h.cols = h.Schema()
	innerCols := h.Inner.Schema()
	h.innerW = len(innerCols)
	h.keyTypes = make([]types.T, len(h.InnerKeys))
	for i, k := range h.InnerKeys {
		h.keyTypes[i] = innerCols[k].T
	}
	h.table = make(map[uint64][]expr.Row)
	if err := h.buildTable(ctx); err != nil {
		return err
	}
	h.outerRow = nil
	h.matches = nil
	h.matchPos = 0
	if h.combined == nil {
		h.combined = make(expr.Row, len(h.Outer.Schema())+h.innerW)
	}
	return h.Outer.Open(ctx)
}

// buildTable drains the inner child into the hash table. The close is
// deferred so the inner subtree (and any buffer pins its scans hold) is
// released even when a bee panic unwinds through the drain loop.
func (h *HashJoin) buildTable(ctx *Ctx) error {
	if err := h.Inner.Open(ctx); err != nil {
		return err
	}
	defer h.Inner.Close(ctx)
	for {
		row, ok, err := h.Inner.Next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		ctx.Prof().Add(profile.CompExec, profile.HashBuild)
		key := h.hashInner(row, ctx)
		h.table[key] = append(h.table[key], CloneRow(row))
	}
}

func (h *HashJoin) hashInner(row expr.Row, ctx *Ctx) uint64 {
	if h.EVJ != nil {
		return h.EVJ.HashInner(row)
	}
	return genericHash(row, h.InnerKeys)
}

func (h *HashJoin) hashOuter(row expr.Row, ctx *Ctx) uint64 {
	if h.EVJ != nil {
		return h.EVJ.HashOuter(row)
	}
	return genericHash(row, h.OuterKeys)
}

func genericHash(row expr.Row, keys []int) uint64 {
	h := uint64(14695981039346656037)
	for _, k := range keys {
		h = (h ^ row[k].Hash()) * 1099511628211
	}
	return h
}

// keysMatch evaluates the join qualification for one candidate pair —
// the per-pair code the EVJ bee specializes.
func (h *HashJoin) keysMatch(outer, inner expr.Row, ctx *Ctx) bool {
	if h.EVJ != nil {
		ctx.Prof().Add(profile.CompJoin, h.EVJ.Cost)
		h.evjCalls++
		return h.EVJ.Match(outer, inner)
	}
	// Generic join-qual evaluation: JoinState consultation per pair.
	ctx.Prof().Add(profile.CompJoin, profile.JoinQualNode*int64(len(h.OuterKeys)))
	for i := range h.OuterKeys {
		a, b := outer[h.OuterKeys[i]], inner[h.InnerKeys[i]]
		if a.IsNull() || b.IsNull() {
			return false
		}
		if a.Compare(b) != 0 {
			return false
		}
	}
	return true
}

func (h *HashJoin) residualOK(combined expr.Row, ctx *Ctx) bool {
	if h.Residual == nil && h.ResidualCompiled == nil {
		return true
	}
	var v types.Datum
	if h.ResidualCompiled != nil {
		v = h.ResidualCompiled(combined, &ctx.Expr)
	} else {
		v = h.Residual.Eval(combined, &ctx.Expr)
	}
	return !v.IsNull() && v.Bool()
}

// Next implements Node.
func (h *HashJoin) Next(ctx *Ctx) (expr.Row, bool, error) {
	for {
		// Drain pending matches for the current outer row.
		if h.outerRow != nil && h.matchPos < len(h.matches) {
			inner := h.matches[h.matchPos]
			h.matchPos++
			combined := h.combine(h.outerRow, inner)
			if h.residualOK(combined, ctx) {
				switch h.Type {
				case SemiJoin:
					h.matchPos = len(h.matches) // one match suffices
					return h.outerRow, true, nil
				case AntiJoin:
					// A surviving match disqualifies the outer row.
					h.matchPos = len(h.matches)
					h.outerRow = nil
					continue
				case LeftJoin:
					h.emitted = true
					return combined, true, nil
				default:
					return combined, true, nil
				}
			}
			continue
		}
		// Left join: emit outer + nulls when no residual-surviving match.
		if h.outerRow != nil && h.Type == LeftJoin && !h.emitted {
			row := h.combineNulls(h.outerRow)
			h.outerRow = nil
			return row, true, nil
		}
		// Anti join: no (surviving) match at all → emit outer row.
		if h.outerRow != nil && h.Type == AntiJoin {
			row := h.outerRow
			h.outerRow = nil
			return row, true, nil
		}
		h.outerRow = nil

		// Fetch the next outer row.
		outer, ok, err := h.Outer.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		ctx.Prof().Add(profile.CompExec, profile.ExecNodeTuple+profile.HashProbe)
		bucket := h.table[h.hashOuter(outer, ctx)]
		h.matches = h.matches[:0]
		for _, inner := range bucket {
			if h.keysMatch(outer, inner, ctx) {
				h.matches = append(h.matches, inner)
			}
		}
		h.matchPos = 0
		h.emitted = false
		switch h.Type {
		case AntiJoin:
			if len(h.matches) == 0 {
				return outer, true, nil
			}
			if h.Residual == nil && h.ResidualCompiled == nil {
				continue // matched → excluded
			}
			h.outerRow = CloneRow(outer)
		case LeftJoin:
			h.outerRow = CloneRow(outer)
		case SemiJoin:
			if len(h.matches) == 0 {
				continue
			}
			if h.Residual == nil && h.ResidualCompiled == nil {
				h.matches = h.matches[:0]
				return outer, true, nil
			}
			h.outerRow = CloneRow(outer)
		default:
			if len(h.matches) == 0 {
				continue
			}
			h.outerRow = CloneRow(outer)
		}
	}
}

func (h *HashJoin) combine(outer, inner expr.Row) expr.Row {
	copy(h.combined, outer)
	copy(h.combined[len(outer):], inner)
	return h.combined
}

func (h *HashJoin) combineNulls(outer expr.Row) expr.Row {
	copy(h.combined, outer)
	for i := len(outer); i < len(h.combined); i++ {
		h.combined[i] = types.Null
	}
	return h.combined
}

// Close implements Node.
func (h *HashJoin) Close(ctx *Ctx) {
	if h.NoteEVJ != nil && h.evjCalls > 0 {
		h.NoteEVJ(h.evjCalls)
		h.evjCalls = 0
	}
	h.Outer.Close(ctx)
	h.table = nil
}

// Schema implements Node.
func (h *HashJoin) Schema() []ColInfo {
	outer := h.Outer.Schema()
	if h.Type == SemiJoin || h.Type == AntiJoin {
		return outer
	}
	return append(append([]ColInfo(nil), outer...), h.Inner.Schema()...)
}

// NLJoin is a nested-loop join for non-equi quals. The inner child must
// be rescannable (wrap it in Materialize).
type NLJoin struct {
	Outer, Inner Node
	Type         JoinType
	Qual         expr.Expr
	QualCompiled core.CompiledPred

	outerRow expr.Row
	matched  bool
	combined expr.Row
	innerOn  bool
}

// Open implements Node.
func (n *NLJoin) Open(ctx *Ctx) error {
	n.outerRow = nil
	n.innerOn = false
	if n.combined == nil {
		n.combined = make(expr.Row, len(n.Outer.Schema())+len(n.Inner.Schema()))
	}
	return n.Outer.Open(ctx)
}

func (n *NLJoin) qualOK(combined expr.Row, ctx *Ctx) bool {
	if n.Qual == nil && n.QualCompiled == nil {
		return true
	}
	var v types.Datum
	if n.QualCompiled != nil {
		v = n.QualCompiled(combined, &ctx.Expr)
	} else {
		ctx.Prof().Add(profile.CompJoin, profile.JoinQualNode)
		v = n.Qual.Eval(combined, &ctx.Expr)
	}
	return !v.IsNull() && v.Bool()
}

// Next implements Node.
func (n *NLJoin) Next(ctx *Ctx) (expr.Row, bool, error) {
	for {
		if n.outerRow == nil {
			outer, ok, err := n.Outer.Next(ctx)
			if err != nil || !ok {
				return nil, false, err
			}
			ctx.Prof().Add(profile.CompExec, profile.ExecNodeTuple)
			n.outerRow = CloneRow(outer)
			n.matched = false
			if err := n.Inner.Open(ctx); err != nil {
				return nil, false, err
			}
			n.innerOn = true
		}
		inner, ok, err := n.Inner.Next(ctx)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			n.Inner.Close(ctx)
			n.innerOn = false
			outer := n.outerRow
			n.outerRow = nil
			switch n.Type {
			case LeftJoin:
				if !n.matched {
					copy(n.combined, outer)
					for i := len(outer); i < len(n.combined); i++ {
						n.combined[i] = types.Null
					}
					return n.combined, true, nil
				}
			case AntiJoin:
				if !n.matched {
					return outer, true, nil
				}
			}
			continue
		}
		copy(n.combined, n.outerRow)
		copy(n.combined[len(n.outerRow):], inner)
		if !n.qualOK(n.combined, ctx) {
			continue
		}
		n.matched = true
		switch n.Type {
		case SemiJoin:
			n.Inner.Close(ctx)
			n.innerOn = false
			outer := n.outerRow
			n.outerRow = nil
			return outer, true, nil
		case AntiJoin:
			n.Inner.Close(ctx)
			n.innerOn = false
			n.outerRow = nil
			continue
		default:
			return n.combined, true, nil
		}
	}
}

// Close implements Node.
func (n *NLJoin) Close(ctx *Ctx) {
	if n.innerOn {
		n.Inner.Close(ctx)
		n.innerOn = false
	}
	n.Outer.Close(ctx)
}

// Schema implements Node.
func (n *NLJoin) Schema() []ColInfo {
	outer := n.Outer.Schema()
	if n.Type == SemiJoin || n.Type == AntiJoin {
		return outer
	}
	return append(append([]ColInfo(nil), outer...), n.Inner.Schema()...)
}
