// Package exec implements the Volcano-style query executor: sequential
// and index scans, filters, projections, hash and nested-loop joins
// (inner/left/semi/anti), hash aggregation, sorting, limits,
// materialization, and subquery expressions. Each per-tuple path exists
// in a generic form (interpreted predicates, generic join quals, generic
// deform) and a bee form (EVP, EVJ, GCL) selected at plan time through
// the bee module — the executor is the paper's "Runtime Database
// Processor" with the Bee Caller wired in.
package exec

import (
	"context"

	"microspec/internal/expr"
	"microspec/internal/profile"
	"microspec/internal/txn"
	"microspec/internal/types"
)

// ColInfo describes one output column of a plan node.
type ColInfo struct {
	Name string
	T    types.T
}

// Ctx is the per-execution context threaded through every node.
type Ctx struct {
	// Context carries the query's cancellation/deadline signal; nil means
	// not cancellable. Gather propagates it into every worker Ctx.
	Context context.Context

	// Expr carries the profiler and correlated-subquery outer rows.
	Expr expr.Ctx

	// Snap is the MVCC snapshot scans and index fetches resolve tuple
	// visibility against; nil means latest committed (only sound when
	// the caller has excluded concurrent writers, e.g. under the
	// engine's exclusive lock). Gather propagates it into every worker
	// Ctx so parallel partitions share one consistent view.
	Snap *txn.Snapshot

	// cancelTick throttles Canceled's context polls (see cancelCheckMask).
	cancelTick uint
}

// Prof returns the profiler (possibly nil).
func (c *Ctx) Prof() *profile.Counters { return c.Expr.Prof }

// cancelCheckMask throttles cancellation checks to one context poll per
// 256 calls: a context load is cheap but not free, and Canceled sits on
// per-tuple paths. At scan speed the added cancellation latency is
// microseconds.
const cancelCheckMask = 256 - 1

// Canceled reports the query's cancellation error (context.Canceled or
// context.DeadlineExceeded), polling the context once every 256 calls.
// Per-tuple loops (scans, Collect) call it each iteration.
func (c *Ctx) Canceled() error {
	if c.Context == nil {
		return nil
	}
	c.cancelTick++
	if c.cancelTick&cancelCheckMask != 0 {
		return nil
	}
	return c.Context.Err()
}

// CanceledNow polls the context unconditionally. Per-batch loops call it
// once per batch: at page granularity the poll is already amortized over
// hundreds of rows, so throttling would only add cancellation latency.
func (c *Ctx) CanceledNow() error {
	if c.Context == nil {
		return nil
	}
	return c.Context.Err()
}

// Node is a plan operator. The iteration contract:
//
//   - Open initializes (or re-initializes, for rescans) the node's state;
//     it may be called again after Close.
//   - Next returns the next row. Rows may alias node-internal buffers and
//     are only valid until the following Next call; consumers that buffer
//     rows must CloneRow them.
//   - Close releases resources; it is idempotent.
type Node interface {
	Open(ctx *Ctx) error
	Next(ctx *Ctx) (expr.Row, bool, error)
	Close(ctx *Ctx)
	Schema() []ColInfo
}

// CloneRow deep-copies a row, including byte payloads that may alias
// pinned pages or reusable deform buffers. All payloads share one backing
// allocation to keep buffered operators (sorts, hash builds, result
// collection) from fragmenting the heap.
func CloneRow(row expr.Row) expr.Row {
	out := make(expr.Row, len(row))
	total := 0
	for i := range row {
		total += len(row[i].Bytes())
	}
	if total == 0 {
		copy(out, row)
		return out
	}
	buf := make([]byte, 0, total)
	for i, d := range row {
		if b := d.Bytes(); b != nil {
			start := len(buf)
			buf = append(buf, b...)
			out[i] = types.NewBytes(buf[start:len(buf):len(buf)], d.Kind())
		} else {
			out[i] = d
		}
	}
	return out
}

// CloneDatum deep-copies one datum.
func CloneDatum(d types.Datum) types.Datum {
	if b := d.Bytes(); b != nil {
		nb := append([]byte(nil), b...)
		return types.NewBytes(nb, d.Kind())
	}
	return d
}

// Collect drains a node into a fully materialized result (Open through
// Close), cloning every row. It is the standard entry point for running
// a plan to completion.
func Collect(ctx *Ctx, n Node) ([]expr.Row, error) {
	if err := n.Open(ctx); err != nil {
		// Close even though Open failed: a multi-child Open (join build,
		// Gather) may have opened part of the subtree before the error,
		// and open scans hold buffer pins. Close is idempotent.
		n.Close(ctx)
		return nil, err
	}
	defer n.Close(ctx)
	var out []expr.Row
	for {
		if err := ctx.Canceled(); err != nil {
			return nil, err
		}
		row, ok, err := n.Next(ctx)
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		ctx.Prof().Add(profile.CompExec, profile.EmitRow)
		out = append(out, CloneRow(row))
	}
}
