package exec

import (
	"time"

	"microspec/internal/core"
	"microspec/internal/expr"
	"microspec/internal/profile"
	"microspec/internal/storage/heap"
	"microspec/internal/types"
)

// This file is the batch-at-a-time execution path. The tuple-at-a-time
// Volcano iterator pays one virtual Next call and one per-node bookkeeping
// charge per tuple, diluting what the specialized bee routines buy on the
// scan hot path. The batch path instead moves a whole pinned heap page of
// rows per call: BatchSeqScan deforms the page in one DeformBatch bee
// invocation, BatchFilter narrows a selection vector in one batch-EVP
// invocation, and BatchHashAgg consumes batches directly. A Rebatch
// adapter bridges batch-producing subtrees into unchanged tuple-at-a-time
// consumers (joins, sorts). Row visit order is identical to the tuple
// path, so results are bit-identical.

// BatchCap is the row capacity of a Batch. Page-wise batches can never
// exceed a page's maximum slot count (~680 at 8 KiB pages), so the target
// capacity of 1024 covers any single page without reallocation.
const BatchCap = 1024

// Batch is a reusable set of rows with an optional selection vector.
// Rows[:N] are filled by the producer; when Sel is non-nil only the row
// ordinals it lists (ascending) are live. The batch — including the row
// datums, which may alias the producer's pinned page — is valid until the
// next NextBatch or Close call on the producing subtree. Consumers may
// set Sel (filters do) but must not reorder Rows.
type Batch struct {
	Rows []expr.Row
	N    int
	Sel  []int32
}

// Count returns the number of live rows.
func (b *Batch) Count() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// RowAt returns the i-th live row, i in [0, Count()).
func (b *Batch) RowAt(i int) expr.Row {
	if b.Sel != nil {
		return b.Rows[b.Sel[i]]
	}
	return b.Rows[i]
}

// BatchNode is a plan node that produces whole batches. Every BatchNode
// is also a full Node — its Next iterates the current batch row by row —
// so generic plan machinery (walkers, EXPLAIN, Collect) treats batch
// subtrees uniformly; batch-aware consumers call NextBatch instead.
type BatchNode interface {
	Node
	// NextBatch returns the next batch, ok=false at end of input. The
	// previous batch (and every row in it) is invalidated by the call.
	NextBatch(ctx *Ctx) (*Batch, bool, error)
}

// growBatchScratch picks a new scratch capacity covering n rows:
// geometric growth with headroom, capped at BatchCap.
func growBatchScratch(have, n int) int {
	c := 2 * have
	if c < n+n/2 {
		c = n + n/2
	}
	if c > BatchCap {
		c = BatchCap
	}
	return c
}

// rebatcher adapts NextBatch to the row-at-a-time Next contract; batch
// nodes embed it to satisfy Node.
type rebatcher struct {
	cur *Batch
	pos int
}

func (r *rebatcher) reset() { r.cur, r.pos = nil, 0 }

func (r *rebatcher) next(ctx *Ctx, src BatchNode) (expr.Row, bool, error) {
	for {
		if r.cur != nil && r.pos < r.cur.Count() {
			// Poll cancellation per row like the tuple-path scans: consumers
			// (joins, sorts) may loop here far more often than the source
			// fetches pages.
			if err := ctx.Canceled(); err != nil {
				return nil, false, err
			}
			row := r.cur.RowAt(r.pos)
			r.pos++
			ctx.Prof().Add(profile.CompExec, profile.ExecNodeTuple)
			return row, true, nil
		}
		b, ok, err := src.NextBatch(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		r.cur, r.pos = b, 0
	}
}

// BatchSeqScan reads a heap relation page by page, deforming every live
// tuple of the pinned page in one DeformBatch invocation. The batch's
// rows alias the page; the scan holds the pin until the next NextBatch.
type BatchSeqScan struct {
	Heap   *heap.Heap
	Deform core.BatchDeformFunc
	NAtts  int
	// NoteDeforms receives the deform (GCL) call count at Close.
	NoteDeforms func(int64)
	// Fused, when set, replaces the separate Deform + BatchFilter pair with
	// the composed GCL∘EVP routine: each tuple is deformed only as far as
	// the predicate's conjuncts need, rejected tuples are abandoned early,
	// and the scan emits batches whose selection vector lists the passing
	// rows. FusedPred is the predicate the routine implements (EXPLAIN and
	// bee walking); NoteFused receives its row-evaluation count at Close.
	Fused     core.FusedScanFilterFunc
	FusedPred expr.Expr
	NoteFused func(int64)
	// DeformUsage and FusedUsage, when set, receive the rows processed and
	// observed wall time of the deform / fused bee invocations at Close —
	// the per-bee benefit attribution feed. Timing costs two clock reads
	// per page and only when the handle is wired.
	DeformUsage *core.BeeUsage
	FusedUsage  *core.BeeUsage
	// Range and Partial mirror SeqScan: a page interval for one partition
	// of a parallel scan.
	Range   heap.PageRange
	Partial bool

	deforms  int64
	fused    int64
	deformNs int64
	fusedNs  int64
	batches  int64
	rowsOut  int64
	scanner  *heap.Scanner
	tupBuf   [][]byte
	rows     []expr.Row
	sel      []int32
	batch    Batch
	cols     []ColInfo
	rb       rebatcher
}

// NewBatchSeqScan builds a page-wise batch scan over rel's heap. natts ≤ 0
// scans all attributes.
func NewBatchSeqScan(h *heap.Heap, deform core.BatchDeformFunc, natts int) *BatchSeqScan {
	rel := h.Rel
	if natts <= 0 || natts > len(rel.Attrs) {
		natts = len(rel.Attrs)
	}
	return &BatchSeqScan{
		Heap:   h,
		Deform: deform,
		NAtts:  natts,
		cols:   relCols(rel, natts),
	}
}

// ensureRows guarantees capacity for n deformed rows, slicing every row
// out of one flat datum arena (no per-row allocation on refill). The
// arena is sized to the observed page occupancy with headroom, not to
// BatchCap: a typical 8 KiB page holds well under 100 wide rows, and a
// BatchCap-sized pointer-bearing arena per scan costs more in allocation,
// zeroing barriers, and cold-cache traffic than the batch path saves.
// The arena survives Close/Open, so rescans never reallocate.
func (s *BatchSeqScan) ensureRows(n int) {
	if n <= len(s.rows) {
		return
	}
	c := growBatchScratch(len(s.rows), n)
	arena := make([]types.Datum, c*s.NAtts)
	s.rows = make([]expr.Row, c)
	for i := range s.rows {
		s.rows[i] = arena[i*s.NAtts : (i+1)*s.NAtts : (i+1)*s.NAtts]
	}
}

// Open implements Node.
func (s *BatchSeqScan) Open(ctx *Ctx) error {
	if s.Partial {
		s.scanner = s.Heap.ScanRange(ctx.Snap, s.Range, ctx.Prof())
	} else {
		s.scanner = s.Heap.Scan(ctx.Snap, ctx.Prof())
	}
	s.batches, s.rowsOut = 0, 0
	s.rb.reset()
	return nil
}

// NextBatch implements BatchNode: one pinned page per call. With a fused
// scan-filter routine, pages whose every tuple is rejected are skipped,
// so consumers never see an empty batch.
func (s *BatchSeqScan) NextBatch(ctx *Ctx) (*Batch, bool, error) {
	for {
		// One unthrottled cancellation poll per page (the tuple path polls
		// throttled per row; per-page frequency is too low to throttle).
		if err := ctx.CanceledNow(); err != nil {
			return nil, false, err
		}
		tups, _, ok := s.scanner.NextPage(s.tupBuf)
		s.tupBuf = tups
		if !ok {
			return nil, false, s.scanner.Err()
		}
		s.ensureRows(len(tups))
		ctx.Prof().Add(profile.CompExec, profile.ExecNodeBatch)
		s.deforms += int64(len(tups))
		s.batches++
		s.rowsOut += int64(len(tups))
		if s.Fused != nil {
			s.fused += int64(len(tups))
			if s.FusedUsage != nil {
				t0 := time.Now()
				s.sel = s.Fused(tups, s.rows, s.NAtts, s.sel[:0], ctx.Prof())
				s.fusedNs += int64(time.Since(t0))
			} else {
				s.sel = s.Fused(tups, s.rows, s.NAtts, s.sel[:0], ctx.Prof())
			}
			if len(s.sel) == 0 {
				continue
			}
			s.batch = Batch{Rows: s.rows, N: len(tups), Sel: s.sel}
			return &s.batch, true, nil
		}
		if s.DeformUsage != nil {
			t0 := time.Now()
			s.Deform(tups, s.rows, s.NAtts, ctx.Prof())
			s.deformNs += int64(time.Since(t0))
		} else {
			s.Deform(tups, s.rows, s.NAtts, ctx.Prof())
		}
		s.batch = Batch{Rows: s.rows, N: len(tups)}
		return &s.batch, true, nil
	}
}

// Next implements Node via the embedded rebatcher.
func (s *BatchSeqScan) Next(ctx *Ctx) (expr.Row, bool, error) {
	return s.rb.next(ctx, s)
}

// Close implements Node.
func (s *BatchSeqScan) Close(*Ctx) {
	if s.FusedUsage != nil {
		s.FusedUsage.Note(s.fused, s.fusedNs)
	} else {
		s.DeformUsage.Note(s.deforms, s.deformNs)
	}
	if s.NoteDeforms != nil && s.deforms > 0 {
		s.NoteDeforms(s.deforms)
	}
	if s.NoteFused != nil && s.fused > 0 {
		s.NoteFused(s.fused)
	}
	s.deforms, s.fused, s.deformNs, s.fusedNs = 0, 0, 0, 0
	if s.scanner != nil {
		s.scanner.Close()
		s.scanner = nil
	}
}

// Schema implements Node.
func (s *BatchSeqScan) Schema() []ColInfo { return s.cols }

// BatchStats reports how many batches and rows the last run produced
// (valid after the plan is drained or closed).
func (s *BatchSeqScan) BatchStats() (batches, rows int64) { return s.batches, s.rowsOut }

// BatchFilter narrows a batch's selection vector to the rows satisfying
// the predicate: the batch-EVP bee form when compiled, otherwise the
// generic interpreter per row. Batches that filter down to zero rows are
// skipped, so consumers never see an empty batch.
type BatchFilter struct {
	Child    BatchNode
	Pred     expr.Expr
	Compiled core.CompiledBatchPred
	// NoteCalls receives the number of compiled (EVP) row evaluations at
	// Close, like Filter.NoteCalls.
	NoteCalls func(int64)
	// Usage, when set, receives the compiled predicate's row count and
	// observed wall time at Close (per-bee benefit attribution).
	Usage *core.BeeUsage

	calls int64
	beeNs int64
	sel   []int32
	rb    rebatcher
}

// Open implements Node.
func (f *BatchFilter) Open(ctx *Ctx) error {
	f.rb.reset()
	return f.Child.Open(ctx)
}

// NextBatch implements BatchNode.
func (f *BatchFilter) NextBatch(ctx *Ctx) (*Batch, bool, error) {
	for {
		b, ok, err := f.Child.NextBatch(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		ctx.Prof().Add(profile.CompExec, profile.ExecNodeBatch)
		out := f.sel[:0]
		if f.Compiled != nil {
			f.calls += int64(b.Count())
			if f.Usage != nil {
				t0 := time.Now()
				out = f.Compiled(b.Rows[:b.N], b.Sel, out, &ctx.Expr)
				f.beeNs += int64(time.Since(t0))
			} else {
				out = f.Compiled(b.Rows[:b.N], b.Sel, out, &ctx.Expr)
			}
		} else if b.Sel != nil {
			for _, i := range b.Sel {
				if v := f.Pred.Eval(b.Rows[i], &ctx.Expr); !v.IsNull() && v.Bool() {
					out = append(out, i)
				}
			}
		} else {
			for i := 0; i < b.N; i++ {
				if v := f.Pred.Eval(b.Rows[i], &ctx.Expr); !v.IsNull() && v.Bool() {
					out = append(out, int32(i))
				}
			}
		}
		f.sel = out
		if len(out) == 0 {
			continue
		}
		b.Sel = out
		return b, true, nil
	}
}

// Next implements Node via the embedded rebatcher.
func (f *BatchFilter) Next(ctx *Ctx) (expr.Row, bool, error) {
	return f.rb.next(ctx, f)
}

// Close implements Node.
func (f *BatchFilter) Close(ctx *Ctx) {
	f.Usage.Note(f.calls, f.beeNs)
	if f.NoteCalls != nil && f.calls > 0 {
		f.NoteCalls(f.calls)
	}
	f.calls, f.beeNs = 0, 0
	f.Child.Close(ctx)
}

// Schema implements Node.
func (f *BatchFilter) Schema() []ColInfo { return f.Child.Schema() }

// Rebatch bridges a batch-producing subtree into a tuple-at-a-time
// consumer: its Next hands out the current batch's selected rows one by
// one, fetching the next batch on demand. The planner roots every batch
// subtree that feeds a non-batch consumer in a Rebatch, so joins, sorts,
// and projections work unchanged. Returned rows satisfy the usual Node
// contract (valid until the following Next).
type Rebatch struct {
	Child BatchNode

	rb rebatcher
}

// Open implements Node.
func (r *Rebatch) Open(ctx *Ctx) error {
	r.rb.reset()
	return r.Child.Open(ctx)
}

// Next implements Node.
func (r *Rebatch) Next(ctx *Ctx) (expr.Row, bool, error) {
	return r.rb.next(ctx, r.Child)
}

// Close implements Node.
func (r *Rebatch) Close(ctx *Ctx) { r.Child.Close(ctx) }

// Schema implements Node.
func (r *Rebatch) Schema() []ColInfo { return r.Child.Schema() }

// drainBatchesIntoAgg consumes src's batches into an aggregation table —
// the shared inner loop of BatchHashAgg and Gather's batch-aware partial
// aggregation. evalSpecs supplies the evaluation closures (a partition
// worker passes its private EVA bees); addSpecs the accumulation specs.
// Group first-appearance order equals the tuple path's: batches cover the
// heap in page order and rows within a batch stay in slot order.
// The drain is batch-shaped, not row-shaped. Each batch goes through
// three column-style passes:
//
//  1. Group resolution — once per batch for a global aggregate, once per
//     row otherwise, in row order (preserving the tuple path's group
//     first-appearance order). A row whose key equals the previous row's
//     reuses its group without re-probing the table.
//  2. Argument evaluation — per spec, the batch-EVA bee (or the per-row
//     closure/interpreter) fills a reusable value column.
//  3. Transition — per spec, a tight loop folds the value column into the
//     group states, with the spec checks (NULL skip, DISTINCT, kind)
//     hoisted out of the per-row switch for the count/sum/avg shapes.
//
// Each state sees its inputs in row order, so float accumulation is
// bit-identical to the tuple path.
func drainBatchesIntoAgg(ctx *Ctx, src BatchNode, groupBy []expr.Expr, evalSpecs, addSpecs []AggSpec, table *aggTable, keyBuf expr.Row) (rows, eva int64, err error) {
	var (
		groups []*aggGroup
		vbuf   []types.Datum
	)
	naggs := len(addSpecs)
	for {
		b, ok, err := src.NextBatch(ctx)
		if err != nil {
			return rows, eva, err
		}
		if !ok {
			return rows, eva, nil
		}
		n := b.Count()
		if n == 0 {
			continue
		}
		rows += int64(n)
		ctx.Prof().Add(profile.CompExec, profile.ExecNodeBatch+int64(n)*int64(naggs)*profile.AggTransition)
		// Scratch is sized to the observed live-row count, not BatchCap: a
		// selective filter passes a handful of rows per page, and oversized
		// pointer-bearing scratch costs more in zeroing than it saves.
		if len(groups) < n {
			groups = make([]*aggGroup, growBatchScratch(len(groups), n))
		}
		if len(groupBy) == 0 {
			g := table.find(nil, naggs)
			for bi := 0; bi < n; bi++ {
				groups[bi] = g
			}
		} else {
			// prev is per-batch: keyBuf datums may alias the batch's row
			// storage, which the next NextBatch overwrites.
			var prev *aggGroup
			for bi := 0; bi < n; bi++ {
				row := b.RowAt(bi)
				same := prev != nil
				for i, gexp := range groupBy {
					k := gexp.Eval(row, &ctx.Expr)
					if same {
						if k.IsNull() != keyBuf[i].IsNull() ||
							(!k.IsNull() && k.Compare(keyBuf[i]) != 0) {
							same = false
						}
					}
					keyBuf[i] = k
				}
				if !same {
					prev = table.find(keyBuf, naggs)
				}
				groups[bi] = prev
			}
		}
		for i := range evalSpecs {
			spec := &evalSpecs[i]
			ad := &addSpecs[i]
			var vals []types.Datum
			if spec.Arg != nil && len(vbuf) < n {
				vbuf = make([]types.Datum, growBatchScratch(len(vbuf), n))
			}
			switch {
			case spec.CompiledBatchArg != nil:
				eva += int64(n)
				if spec.Usage != nil {
					t0 := time.Now()
					vals = spec.CompiledBatchArg(b.Rows[:b.N], b.Sel, vbuf[:0], &ctx.Expr)
					spec.Usage.Note(int64(n), int64(time.Since(t0)))
				} else {
					vals = spec.CompiledBatchArg(b.Rows[:b.N], b.Sel, vbuf[:0], &ctx.Expr)
				}
			case spec.CompiledArg != nil:
				eva += int64(n)
				vals = vbuf[:n]
				for bi := 0; bi < n; bi++ {
					vals[bi] = spec.CompiledArg(b.RowAt(bi), &ctx.Expr)
				}
			case spec.Arg != nil:
				vals = vbuf[:n]
				for bi := 0; bi < n; bi++ {
					vals[bi] = spec.Arg.Eval(b.RowAt(bi), &ctx.Expr)
				}
			}
			switch {
			case vals == nil: // COUNT(*)
				if ad.Fn == AggCount && !ad.Distinct {
					if len(groupBy) == 0 {
						groups[0].states[i].count += int64(n)
					} else {
						for bi := 0; bi < n; bi++ {
							groups[bi].states[i].count++
						}
					}
					break
				}
				for bi := 0; bi < n; bi++ {
					groups[bi].states[i].add(ad, types.Datum{})
				}
			case ad.Distinct || ad.Fn == AggMin || ad.Fn == AggMax:
				for bi := 0; bi < n; bi++ {
					groups[bi].states[i].add(ad, vals[bi])
				}
			case ad.Fn == AggCount:
				for bi := 0; bi < n; bi++ {
					if !vals[bi].IsNull() {
						groups[bi].states[i].count++
					}
				}
			default: // sum/avg
				for bi := 0; bi < n; bi++ {
					if v := vals[bi]; !v.IsNull() {
						groups[bi].states[i].addSum(v)
					}
				}
			}
		}
	}
}

// BatchHashAgg is HashAgg's batch-consuming form: it drains its child
// batch by batch (the no-GROUP-BY and few-group shapes of TPC-H Q1/Q6
// are its target), with the same group table, transition functions, and
// output order as HashAgg.
type BatchHashAgg struct {
	Child   BatchNode
	GroupBy []expr.Expr
	Aggs    []AggSpec
	// NoteEVA receives the number of EVA invocations at Close.
	NoteEVA func(int64)

	evaCalls int64
	table    *aggTable
	pos      int
	cols     []ColInfo
	outBuf   expr.Row
}

// Open implements Node: it consumes the whole child.
func (a *BatchHashAgg) Open(ctx *Ctx) error {
	a.table = newAggTable()
	a.pos = 0
	if a.outBuf == nil {
		a.outBuf = make(expr.Row, len(a.GroupBy)+len(a.Aggs))
	}
	if err := a.Child.Open(ctx); err != nil {
		return err
	}
	defer a.Child.Close(ctx)
	keyBuf := make(expr.Row, len(a.GroupBy))
	_, eva, err := drainBatchesIntoAgg(ctx, a.Child, a.GroupBy, a.Aggs, a.Aggs, a.table, keyBuf)
	a.evaCalls += eva
	if err != nil {
		return err
	}
	// Global aggregation over zero rows still yields one (empty) group.
	if len(a.GroupBy) == 0 && len(a.table.order) == 0 {
		a.table.find(nil, len(a.Aggs))
	}
	return nil
}

// Next implements Node.
func (a *BatchHashAgg) Next(ctx *Ctx) (expr.Row, bool, error) {
	if a.pos >= len(a.table.order) {
		return nil, false, nil
	}
	g := a.table.order[a.pos]
	a.pos++
	copy(a.outBuf, g.keys)
	for i := range a.Aggs {
		a.outBuf[len(a.GroupBy)+i] = g.states[i].result(&a.Aggs[i])
	}
	return a.outBuf, true, nil
}

// Close implements Node.
func (a *BatchHashAgg) Close(*Ctx) {
	if a.NoteEVA != nil && a.evaCalls > 0 {
		a.NoteEVA(a.evaCalls)
		a.evaCalls = 0
	}
	a.table = nil
}

// Schema implements Node (group keys then aggregates, like HashAgg).
func (a *BatchHashAgg) Schema() []ColInfo {
	if a.cols != nil {
		return a.cols
	}
	tmp := HashAgg{GroupBy: a.GroupBy, Aggs: a.Aggs}
	a.cols = tmp.Schema()
	return a.cols
}
