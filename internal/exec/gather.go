package exec

import (
	"fmt"
	"sync"
	"time"

	"microspec/internal/expr"
	"microspec/internal/profile"
	"microspec/internal/types"
)

// Gather is the executor's intra-query parallelism node. It owns one
// subplan per heap partition (a page-range SeqScan, usually under a
// Filter) and drives them on a bounded worker pool. It runs in one of
// three modes, chosen by the planner:
//
//   - Aggregation: GroupBy/Aggs are set. Each worker aggregates its
//     partition into a local group table (partial aggregation); the
//     gather point merges the partial states in partition order, which
//     reproduces the serial first-appearance group order exactly.
//   - Sorted-run merge: MergeKeys is set. Each partition subplan ends in
//     a Sort; workers sort their runs in parallel and the gather point
//     k-way merges them, so the Gather's output is globally ordered.
//   - Row streaming: neither is set. Workers stream their partition's
//     rows into a channel in arrival order (nondeterministic; the planner
//     only uses this mode under an order-restoring Sort).
//
// Bees stay per-worker: every partition subplan carries its own deform
// (GCL), predicate (EVP), and aggregate-input (EVA) closures, so the
// per-tuple hot path shares no mutable state across workers. Each worker
// likewise owns a private profile.Counters, merged at the gather point.
type Gather struct {
	// Parts are the per-partition subplans. Each is driven by exactly one
	// worker at a time and must not share mutable state with its
	// siblings.
	Parts []Node
	// Workers bounds the pool; at most min(Workers, len(Parts))
	// goroutines run concurrently.
	Workers int

	// GroupBy and Aggs select aggregation mode; they mirror the HashAgg
	// fields the Gather replaces. PartAggs carries per-partition AggSpec
	// copies whose CompiledArg closures (EVA bees) are private to one
	// worker; entry i may be nil to share Aggs.
	GroupBy  []expr.Expr
	Aggs     []AggSpec
	PartAggs [][]AggSpec
	// NoteEVA receives the pooled EVA invocation count at Close.
	NoteEVA func(int64)

	// MergeKeys selects sorted-run merge mode: every part emits rows
	// sorted by these keys (the planner roots each part in a Sort, whose
	// materialized rows stay valid across Next calls — required here).
	MergeKeys []SortKey

	cols []ColInfo

	// Runtime state, reset by Open.
	table    *aggTable
	pos      int
	outBuf   expr.Row
	rowCh    chan expr.Row
	batchCh  chan *Batch
	curBatch *Batch
	batchPos int
	done     chan struct{}
	wg       sync.WaitGroup
	finish   sync.Once
	heads    []expr.Row
	opened   []bool
	evaCalls int64

	errMu sync.Mutex
	err   error

	statMu sync.Mutex
	stats  []WorkerStat
}

// WorkerStat records one partition's execution on the worker pool, folded
// into the engine's per-worker scan/agg histograms after the query.
type WorkerStat struct {
	Part    int
	Rows    int64
	Elapsed time.Duration
	// Agg is true when the worker performed partial aggregation (vs. a
	// pure scan/sort partition).
	Agg bool
}

func (g *Gather) aggMode() bool   { return len(g.Aggs) > 0 || g.GroupBy != nil }
func (g *Gather) mergeMode() bool { return !g.aggMode() && len(g.MergeKeys) > 0 }

// poolSize returns the number of goroutines the pool runs.
func (g *Gather) poolSize() int {
	w := g.Workers
	if w <= 0 || w > len(g.Parts) {
		w = len(g.Parts)
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (g *Gather) setErr(err error) {
	g.errMu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.errMu.Unlock()
}

func (g *Gather) loadErr() error {
	g.errMu.Lock()
	defer g.errMu.Unlock()
	return g.err
}

func (g *Gather) noteStat(s WorkerStat) {
	g.statMu.Lock()
	g.stats = append(g.stats, s)
	g.statMu.Unlock()
}

// WorkerStats returns the per-partition worker statistics of the last
// run (safe to call after the plan is drained or closed).
func (g *Gather) WorkerStats() []WorkerStat {
	g.statMu.Lock()
	defer g.statMu.Unlock()
	out := make([]WorkerStat, len(g.stats))
	copy(out, g.stats)
	return out
}

// runPool feeds part indices to poolSize() workers, each with a private
// Ctx (own profiler), and waits for completion. Worker profilers are
// merged into the parent profiler after the pool drains, so abstract
// instruction counts match the serial plan.
func (g *Gather) runPool(ctx *Ctx, work func(part int, wctx *Ctx) error) {
	n := g.poolSize()
	parts := make(chan int)
	profs := make([]*profile.Counters, n)
	for w := 0; w < n; w++ {
		if ctx.Prof() != nil {
			profs[w] = &profile.Counters{}
		}
		g.wg.Add(1)
		go func(w int) {
			defer g.wg.Done()
			wctx := &Ctx{Context: ctx.Context, Expr: expr.Ctx{Prof: profs[w]}, Snap: ctx.Snap}
			for part := range parts {
				if g.loadErr() != nil {
					continue // drain remaining parts after a failure
				}
				if err := runPart(part, wctx, work); err != nil {
					g.setErr(err)
				}
			}
		}(w)
	}
	for i := range g.Parts {
		parts <- i
	}
	close(parts)
	g.wg.Wait()
	for _, p := range profs {
		ctx.Prof().Merge(p)
	}
}

// runPart executes one partition with a panic-containment boundary: a
// bee or executor panic on a worker goroutine would otherwise kill the
// process (the query goroutine's recover cannot catch it), so it is
// converted here into a *PanicError surfaced like any partition error.
func runPart(part int, wctx *Ctx, work func(part int, wctx *Ctx) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = NewPanicError(r)
		}
	}()
	return work(part, wctx)
}

// Open implements Node. In aggregation and merge modes all parallel work
// happens here (the node is a pipeline breaker, like HashAgg and Sort);
// in streaming mode workers run concurrently with Next.
func (g *Gather) Open(ctx *Ctx) error {
	g.pos = 0
	g.table = nil
	g.rowCh = nil
	g.batchCh = nil
	g.curBatch = nil
	g.batchPos = 0
	g.heads = nil
	g.opened = nil
	g.err = nil
	g.evaCalls = 0
	g.finish = sync.Once{}
	g.statMu.Lock()
	g.stats = g.stats[:0]
	g.statMu.Unlock()

	switch {
	case g.aggMode():
		return g.openAgg(ctx)
	case g.mergeMode():
		return g.openMerge(ctx)
	default:
		g.openStream(ctx)
		return nil
	}
}

// openAgg runs partial aggregation on the pool and merges the partition
// tables in partition order.
func (g *Gather) openAgg(ctx *Ctx) error {
	if g.outBuf == nil {
		g.outBuf = make(expr.Row, len(g.GroupBy)+len(g.Aggs))
	}
	partTables := make([]*aggTable, len(g.Parts))
	var evaTotal int64
	var evaMu sync.Mutex

	g.runPool(ctx, func(part int, wctx *Ctx) error {
		start := time.Now()
		specs := g.Aggs
		if g.PartAggs != nil && g.PartAggs[part] != nil {
			specs = g.PartAggs[part]
		}
		node := g.Parts[part]
		if err := node.Open(wctx); err != nil {
			node.Close(wctx) // release pins of a partially-opened subtree
			return err
		}
		defer node.Close(wctx)
		table := newAggTable()
		keyBuf := make(expr.Row, len(g.GroupBy))
		var rows, eva int64
		// Batch fast path: a Rebatch-rooted partition is driven batch by
		// batch, skipping the per-tuple iterator boundary entirely.
		// (Analyzed runs wrap parts in Instrumented and take the tuple
		// loop below; Rebatch still moves batches underneath it.)
		if rb, ok := node.(*Rebatch); ok {
			rows, eva, err := drainBatchesIntoAgg(wctx, rb.Child, g.GroupBy, specs, g.Aggs, table, keyBuf)
			if err != nil {
				return err
			}
			partTables[part] = table
			evaMu.Lock()
			evaTotal += eva
			evaMu.Unlock()
			g.noteStat(WorkerStat{Part: part, Rows: rows, Elapsed: time.Since(start), Agg: true})
			return nil
		}
		for {
			row, ok, err := node.Next(wctx)
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			rows++
			wctx.Prof().Add(profile.CompExec, profile.ExecNodeTuple+int64(len(g.Aggs))*profile.AggTransition)
			for i, ge := range g.GroupBy {
				keyBuf[i] = ge.Eval(row, &wctx.Expr)
			}
			grp := table.find(keyBuf, len(g.Aggs))
			for i := range specs {
				spec := &specs[i]
				var v types.Datum
				switch {
				case spec.CompiledArg != nil:
					eva++
					v = spec.CompiledArg(row, &wctx.Expr)
				case spec.Arg != nil:
					v = spec.Arg.Eval(row, &wctx.Expr)
				}
				grp.states[i].add(&g.Aggs[i], v)
			}
		}
		partTables[part] = table
		evaMu.Lock()
		evaTotal += eva
		evaMu.Unlock()
		g.noteStat(WorkerStat{Part: part, Rows: rows, Elapsed: time.Since(start), Agg: true})
		return nil
	})
	if err := g.loadErr(); err != nil {
		return err
	}
	g.evaCalls = evaTotal

	// Merge partial states in partition order: partitions cover the heap
	// in page order, so first appearance across partitions equals the
	// serial first-appearance order and parallel GROUP BY output order
	// matches the serial plan.
	merged := newAggTable()
	for _, t := range partTables {
		if t == nil {
			continue
		}
		for _, pg := range t.order {
			grp := merged.find(pg.keys, len(g.Aggs))
			for i := range grp.states {
				grp.states[i].merge(&pg.states[i])
			}
		}
	}
	if len(g.GroupBy) == 0 && len(merged.order) == 0 {
		merged.find(nil, len(g.Aggs))
	}
	g.table = merged
	return nil
}

// openMerge opens (and thereby sorts) every part on the pool; Next then
// k-way merges the sorted runs serially.
func (g *Gather) openMerge(ctx *Ctx) error {
	g.opened = make([]bool, len(g.Parts))
	g.runPool(ctx, func(part int, wctx *Ctx) error {
		start := time.Now()
		if err := g.Parts[part].Open(wctx); err != nil {
			g.Parts[part].Close(wctx) // release pins of a partially-opened subtree
			return err
		}
		g.opened[part] = true
		g.noteStat(WorkerStat{Part: part, Elapsed: time.Since(start)})
		return nil
	})
	if err := g.loadErr(); err != nil {
		g.closeParts(ctx)
		return err
	}
	// Prime one head row per run. Part rows must stay valid across Next
	// calls (guaranteed by the Sort rooting each part).
	g.heads = make([]expr.Row, len(g.Parts))
	for i, p := range g.Parts {
		row, ok, err := p.Next(ctx)
		if err != nil {
			g.closeParts(ctx)
			return err
		}
		if ok {
			g.heads[i] = row
		}
	}
	return nil
}

// openStream starts workers that push cloned rows into a channel; Next
// consumes until the pool drains. When every partition is Rebatch-rooted,
// workers exchange whole cloned batches instead of single rows, cutting
// channel operations by the batch size.
func (g *Gather) openStream(ctx *Ctx) {
	allBatch := len(g.Parts) > 0
	for _, p := range g.Parts {
		if _, ok := p.(*Rebatch); !ok {
			allBatch = false
			break
		}
	}
	if allBatch {
		g.openBatchStream(ctx)
		return
	}
	g.rowCh = make(chan expr.Row, 64)
	g.done = make(chan struct{})
	ch, done := g.rowCh, g.done
	go func() {
		g.runPool(ctx, func(part int, wctx *Ctx) error {
			start := time.Now()
			node := g.Parts[part]
			if err := node.Open(wctx); err != nil {
				node.Close(wctx) // release pins of a partially-opened subtree
				return err
			}
			defer node.Close(wctx)
			var rows int64
			for {
				row, ok, err := node.Next(wctx)
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				rows++
				select {
				case ch <- CloneRow(row):
				case <-done:
					g.noteStat(WorkerStat{Part: part, Rows: rows, Elapsed: time.Since(start)})
					return nil
				}
			}
			g.noteStat(WorkerStat{Part: part, Rows: rows, Elapsed: time.Since(start)})
			return nil
		})
		close(ch)
	}()
}

// openBatchStream is openStream's batch form: each worker drives its
// partition's batch subtree directly and ships compacted, deep-copied
// batches (the originals alias worker-pinned pages) over a batch channel.
func (g *Gather) openBatchStream(ctx *Ctx) {
	g.batchCh = make(chan *Batch, 8)
	g.done = make(chan struct{})
	ch, done := g.batchCh, g.done
	go func() {
		g.runPool(ctx, func(part int, wctx *Ctx) error {
			start := time.Now()
			node := g.Parts[part].(*Rebatch)
			if err := node.Open(wctx); err != nil {
				node.Close(wctx) // release pins of a partially-opened subtree
				return err
			}
			defer node.Close(wctx)
			var rows int64
			for {
				b, ok, err := node.Child.NextBatch(wctx)
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				n := b.Count()
				rows += int64(n)
				out := &Batch{Rows: make([]expr.Row, n), N: n}
				for i := 0; i < n; i++ {
					out.Rows[i] = CloneRow(b.RowAt(i))
				}
				select {
				case ch <- out:
				case <-done:
					g.noteStat(WorkerStat{Part: part, Rows: rows, Elapsed: time.Since(start)})
					return nil
				}
			}
			g.noteStat(WorkerStat{Part: part, Rows: rows, Elapsed: time.Since(start)})
			return nil
		})
		close(ch)
	}()
}

// Next implements Node.
func (g *Gather) Next(ctx *Ctx) (expr.Row, bool, error) {
	switch {
	case g.aggMode():
		if g.table == nil || g.pos >= len(g.table.order) {
			return nil, false, nil
		}
		grp := g.table.order[g.pos]
		g.pos++
		copy(g.outBuf, grp.keys)
		for i := range g.Aggs {
			g.outBuf[len(g.GroupBy)+i] = grp.states[i].result(&g.Aggs[i])
		}
		return g.outBuf, true, nil

	case g.mergeMode():
		best := -1
		for i, row := range g.heads {
			if row == nil {
				continue
			}
			if best < 0 || compareRows(row, g.heads[best], g.MergeKeys) < 0 {
				best = i
			}
		}
		if best < 0 {
			return nil, false, nil
		}
		row := g.heads[best]
		next, ok, err := g.Parts[best].Next(ctx)
		if err != nil {
			return nil, false, err
		}
		if ok {
			g.heads[best] = next
		} else {
			g.heads[best] = nil
		}
		return row, true, nil

	default:
		if g.batchCh != nil {
			for {
				if g.curBatch != nil && g.batchPos < g.curBatch.Count() {
					row := g.curBatch.RowAt(g.batchPos)
					g.batchPos++
					return row, true, nil
				}
				b, ok := <-g.batchCh
				if !ok {
					// Pool drained: surface any worker error.
					return nil, false, g.loadErr()
				}
				g.curBatch, g.batchPos = b, 0
			}
		}
		row, ok := <-g.rowCh
		if !ok {
			// Pool drained: surface any worker error.
			return nil, false, g.loadErr()
		}
		return row, true, nil
	}
}

// Close implements Node; it stops streaming workers, waits for the pool,
// and reports pooled bee-call counts.
func (g *Gather) Close(ctx *Ctx) {
	g.finish.Do(func() {
		if g.done != nil {
			close(g.done)
			// Unblock workers parked on a full channel, then wait.
			if g.rowCh != nil {
				go func() {
					for range g.rowCh {
					}
				}()
			}
			if g.batchCh != nil {
				go func() {
					for range g.batchCh {
					}
				}()
			}
			g.wg.Wait()
		}
		if g.mergeMode() {
			g.closeParts(ctx)
		}
		if g.NoteEVA != nil && g.evaCalls > 0 {
			g.NoteEVA(g.evaCalls)
			g.evaCalls = 0
		}
	})
}

func (g *Gather) closeParts(ctx *Ctx) {
	for i, p := range g.Parts {
		if g.opened != nil && g.opened[i] {
			p.Close(ctx)
			g.opened[i] = false
		}
	}
}

// Schema implements Node. In aggregation mode it mirrors HashAgg's output
// (group keys then aggregates); otherwise it is the partition schema.
func (g *Gather) Schema() []ColInfo {
	if !g.aggMode() {
		return g.Parts[0].Schema()
	}
	if g.cols != nil {
		return g.cols
	}
	cols := make([]ColInfo, 0, len(g.GroupBy)+len(g.Aggs))
	for i, ge := range g.GroupBy {
		cols = append(cols, ColInfo{Name: fmt.Sprintf("group%d", i), T: ge.Type()})
	}
	for _, s := range g.Aggs {
		name := s.Name
		if name == "" {
			name = s.Fn.String()
		}
		cols = append(cols, ColInfo{Name: name, T: s.ResultType()})
	}
	g.cols = cols
	return cols
}

// WalkGathers visits every Gather in a plan tree (unwrapping analyzed
// runs' Instrumented decorators) so the engine can fold worker statistics
// into the metrics registry.
func WalkGathers(n Node, fn func(*Gather)) {
	switch in := n.(type) {
	case *Instrumented:
		n = in.Inner
	case *InstrumentedBatch:
		n = in.Inner
	}
	switch v := n.(type) {
	case *Gather:
		fn(v)
		for _, p := range v.Parts {
			WalkGathers(p, fn)
		}
	case *Filter:
		WalkGathers(v.Child, fn)
	case *Project:
		WalkGathers(v.Child, fn)
	case *Limit:
		WalkGathers(v.Child, fn)
	case *Sort:
		WalkGathers(v.Child, fn)
	case *Distinct:
		WalkGathers(v.Child, fn)
	case *Materialize:
		WalkGathers(v.Child, fn)
	case *HashAgg:
		WalkGathers(v.Child, fn)
	case *HashJoin:
		WalkGathers(v.Outer, fn)
		WalkGathers(v.Inner, fn)
	case *NLJoin:
		WalkGathers(v.Outer, fn)
		WalkGathers(v.Inner, fn)
	case *Rebatch:
		WalkGathers(v.Child, fn)
	case *BatchFilter:
		WalkGathers(v.Child, fn)
	case *BatchHashAgg:
		WalkGathers(v.Child, fn)
	}
}

// ParallelSafeExpr reports whether an expression may be evaluated
// concurrently by partition workers. The walk is a whitelist: every node
// type known to be stateless at Eval passes; anything else — subquery
// expressions (which run stateful subplans and cache results), outer-row
// references, and future node types — conservatively disqualifies the
// plan from parallel execution, mirroring the bee module's fallback
// behaviour for shapes its snippets do not cover.
func ParallelSafeExpr(e expr.Expr) bool {
	switch n := e.(type) {
	case nil:
		return true
	case *expr.Var, *expr.Const, *expr.InList:
		return true
	case *expr.Param:
		// Workers only read the bound slot values; binding happens before
		// the plan runs.
		return true
	case *expr.Like:
		return ParallelSafeExpr(n.Kid)
	case *expr.Cmp:
		return ParallelSafeExpr(n.L) && ParallelSafeExpr(n.R)
	case *expr.Arith:
		return ParallelSafeExpr(n.L) && ParallelSafeExpr(n.R)
	case *expr.DateArith:
		return ParallelSafeExpr(n.L)
	case *expr.And:
		for _, k := range n.Kids {
			if !ParallelSafeExpr(k) {
				return false
			}
		}
		return true
	case *expr.Or:
		for _, k := range n.Kids {
			if !ParallelSafeExpr(k) {
				return false
			}
		}
		return true
	case *expr.Not:
		return ParallelSafeExpr(n.Kid)
	case *expr.Neg:
		return ParallelSafeExpr(n.Kid)
	case *expr.IsNull:
		return ParallelSafeExpr(n.Kid)
	case *expr.ExtractYear:
		return ParallelSafeExpr(n.Kid)
	case *expr.Substring:
		return ParallelSafeExpr(n.Kid) && ParallelSafeExpr(n.Start) && ParallelSafeExpr(n.Span)
	case *expr.Case:
		for _, w := range n.Whens {
			if !ParallelSafeExpr(w.Cond) || !ParallelSafeExpr(w.Result) {
				return false
			}
		}
		return ParallelSafeExpr(n.Else)
	default:
		return false
	}
}
