package exec

import (
	"sync"

	"microspec/internal/catalog"
	"microspec/internal/core"
	"microspec/internal/expr"
	"microspec/internal/index/btree"
	"microspec/internal/profile"
	"microspec/internal/storage/heap"
)

// SeqScan reads a heap relation sequentially, deforming each stored tuple
// through the routine the bee module selected (GCL or the generic loop).
type SeqScan struct {
	Heap   *heap.Heap
	Deform core.DeformFunc
	// NAtts is how many leading attributes the plan needs; deforming
	// stops there (PostgreSQL's slot_deform_tuple does the same).
	NAtts int
	// NoteDeforms, when set, receives the deform (GCL) call count at
	// Close.
	NoteDeforms func(int64)
	// Range restricts the scan to a page interval — one partition of a
	// parallel scan. The zero value (Lo == Hi == 0 with Whole true left
	// unset) means the whole heap.
	Range heap.PageRange
	// Partial is true when Range restricts the scan (set by
	// NewSeqScanRange; EXPLAIN shows the page interval).
	Partial bool

	deforms int64
	scanner *heap.Scanner
	buf     expr.Row
	cols    []ColInfo
}

// NewSeqScan builds a sequential scan over rel's heap. natts ≤ 0 scans
// all attributes.
func NewSeqScan(h *heap.Heap, deform core.DeformFunc, natts int) *SeqScan {
	rel := h.Rel
	if natts <= 0 || natts > len(rel.Attrs) {
		natts = len(rel.Attrs)
	}
	return &SeqScan{
		Heap:   h,
		Deform: deform,
		NAtts:  natts,
		cols:   relCols(rel, natts),
	}
}

// NewSeqScanRange builds a sequential scan over one page-range partition
// of rel's heap — the per-worker leaf of a parallel (Gather) plan. Each
// partition scan must carry its own deform closure so workers share no
// mutable state on the hot path.
func NewSeqScanRange(h *heap.Heap, deform core.DeformFunc, natts int, r heap.PageRange) *SeqScan {
	s := NewSeqScan(h, deform, natts)
	s.Range = r
	s.Partial = true
	return s
}

func relCols(rel *catalog.Relation, natts int) []ColInfo {
	cols := make([]ColInfo, natts)
	for i := 0; i < natts; i++ {
		cols[i] = ColInfo{Name: rel.Attrs[i].Name, T: rel.Attrs[i].Type}
	}
	return cols
}

// Open implements Node.
func (s *SeqScan) Open(ctx *Ctx) error {
	if s.Partial {
		s.scanner = s.Heap.ScanRange(ctx.Snap, s.Range, ctx.Prof())
	} else {
		s.scanner = s.Heap.Scan(ctx.Snap, ctx.Prof())
	}
	if s.buf == nil {
		s.buf = make(expr.Row, s.NAtts)
	}
	return nil
}

// Next implements Node.
func (s *SeqScan) Next(ctx *Ctx) (expr.Row, bool, error) {
	// The scan is the executor's innermost loop: checking here lets a
	// cancelled query stop mid-partition, including inside Gather workers.
	if err := ctx.Canceled(); err != nil {
		return nil, false, err
	}
	_, tup, ok := s.scanner.Next()
	if !ok {
		return nil, false, s.scanner.Err()
	}
	ctx.Prof().Add(profile.CompExec, profile.ExecNodeTuple)
	s.deforms++
	s.Deform(tup, s.buf, s.NAtts, ctx.Prof())
	return s.buf, true, nil
}

// Close implements Node.
func (s *SeqScan) Close(*Ctx) {
	if s.NoteDeforms != nil && s.deforms > 0 {
		s.NoteDeforms(s.deforms)
		s.deforms = 0
	}
	if s.scanner != nil {
		s.scanner.Close()
		s.scanner = nil
	}
}

// Schema implements Node.
func (s *SeqScan) Schema() []ColInfo { return s.cols }

// IndexScan fetches tuples by index key or key range, in index order.
type IndexScan struct {
	Heap   *heap.Heap
	Tree   *btree.Tree
	Deform core.DeformFunc
	NAtts  int
	// Lo and Hi bound the scan (inclusive, prefix semantics); with Hi nil
	// the scan uses prefix-equality on Lo.
	Lo, Hi btree.Key
	// KeyExprs, when set, are evaluated at every Open to rebuild Lo — the
	// equality prefix key of a parameterized point lookup, re-bound per
	// prepared-statement EXECUTE. The expressions must be row-independent
	// (constants and parameters). A NULL key value makes the scan empty:
	// SQL equality never matches NULL.
	KeyExprs []expr.Expr
	// Reverse returns rows in descending key order (materialized).
	Reverse bool
	// Latch, when set, is the owning table's latch, held in shared mode
	// while Open walks the B+tree: the tree is not internally
	// synchronized and concurrent DML mutates it under the same latch in
	// exclusive mode. Heap fetches in Next run latch-free against the
	// snapshot.
	Latch *sync.RWMutex

	tids []heap.TID
	pos  int
	buf  expr.Row
	cols []ColInfo
}

// NewIndexScan builds an index scan.
func NewIndexScan(h *heap.Heap, tree *btree.Tree, deform core.DeformFunc, natts int, lo, hi btree.Key, reverse bool) *IndexScan {
	rel := h.Rel
	if natts <= 0 || natts > len(rel.Attrs) {
		natts = len(rel.Attrs)
	}
	return &IndexScan{
		Heap: h, Tree: tree, Deform: deform, NAtts: natts,
		Lo: lo, Hi: hi, Reverse: reverse,
		cols: relCols(rel, natts),
	}
}

// Open implements Node.
func (s *IndexScan) Open(ctx *Ctx) error {
	s.tids = s.tids[:0]
	s.pos = 0
	if len(s.KeyExprs) > 0 {
		if s.Lo == nil {
			s.Lo = make(btree.Key, len(s.KeyExprs))
		}
		for i, e := range s.KeyExprs {
			d := e.Eval(nil, &ctx.Expr)
			if d.IsNull() {
				if s.buf == nil {
					s.buf = make(expr.Row, s.NAtts)
				}
				return nil // = NULL matches nothing
			}
			s.Lo[i] = d
		}
	}
	collect := func(_ btree.Key, tid heap.TID) bool {
		s.tids = append(s.tids, tid)
		return true
	}
	if s.Latch != nil {
		s.Latch.RLock()
	}
	if s.Hi == nil {
		s.Tree.AscendPrefix(s.Lo, ctx.Prof(), collect)
	} else {
		s.Tree.AscendRange(s.Lo, s.Hi, ctx.Prof(), collect)
	}
	if s.Latch != nil {
		s.Latch.RUnlock()
	}
	if s.Reverse {
		for i, j := 0, len(s.tids)-1; i < j; i, j = i+1, j-1 {
			s.tids[i], s.tids[j] = s.tids[j], s.tids[i]
		}
	}
	if s.buf == nil {
		s.buf = make(expr.Row, s.NAtts)
	}
	return nil
}

// Next implements Node.
func (s *IndexScan) Next(ctx *Ctx) (expr.Row, bool, error) {
	if err := ctx.Canceled(); err != nil {
		return nil, false, err
	}
	for s.pos < len(s.tids) {
		tid := s.tids[s.pos]
		s.pos++
		tup, release, ok, err := s.Heap.Get(tid, ctx.Snap, ctx.Prof())
		if err != nil {
			return nil, false, err
		}
		if !ok {
			// The index keeps one entry per version, so a collected TID
			// may be a version invisible to this snapshot, or one vacuum
			// reclaimed since Open. Skip it; at most one version per key
			// is visible.
			continue
		}
		ctx.Prof().Add(profile.CompExec, profile.ExecNodeTuple)
		s.Deform(tup, s.buf, s.NAtts, ctx.Prof())
		// Clone before unpin: the deformed datums alias the page.
		row := CloneRow(s.buf)
		release()
		return row, true, nil
	}
	return nil, false, nil
}

// Close implements Node.
func (s *IndexScan) Close(*Ctx) {}

// Schema implements Node.
func (s *IndexScan) Schema() []ColInfo { return s.cols }

// ValuesNode emits a fixed list of rows (used for constant subplans and
// tests).
type ValuesNode struct {
	Rows []expr.Row
	Cols []ColInfo
	pos  int
}

// Open implements Node.
func (v *ValuesNode) Open(*Ctx) error {
	v.pos = 0
	return nil
}

// Next implements Node.
func (v *ValuesNode) Next(ctx *Ctx) (expr.Row, bool, error) {
	if v.pos >= len(v.Rows) {
		return nil, false, nil
	}
	row := v.Rows[v.pos]
	v.pos++
	ctx.Prof().Add(profile.CompExec, profile.ExecNodeTuple)
	return row, true, nil
}

// Close implements Node.
func (v *ValuesNode) Close(*Ctx) {}

// Schema implements Node.
func (v *ValuesNode) Schema() []ColInfo { return v.Cols }
