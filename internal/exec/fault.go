package exec

import (
	"fmt"
	"runtime/debug"

	"microspec/internal/expr"
)

// PanicError is a recovered executor or bee panic converted into an
// ordinary error at a containment boundary (the engine's query recover,
// Gather's worker recover). The stack is captured at recovery time so
// the fault stays diagnosable after containment.
type PanicError struct {
	Val   any
	Stack []byte
}

// NewPanicError captures the recovered value and the current stack.
func NewPanicError(val any) *PanicError {
	return &PanicError{Val: val, Stack: debug.Stack()}
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("query panic: %v", e.Val) }

// BeeRef names one query bee a plan uses, as (kind, name) matching the
// bee cache's key space: "query/EVP", "query/EVA", or "query/EVJ" plus
// the expression (or key-list) string the bee was compiled from.
type BeeRef struct {
	Kind string
	Name string
}

// WalkBees reports every query bee wired into a plan tree (EVP filter
// and join-residual predicates, EVA aggregate inputs, EVJ join keys),
// unwrapping Instrumented decorators like WalkGathers. Relation bees
// (GCL/SCL) are deliberately excluded: specialized storage has no
// generic deform fallback, so they are not quarantine candidates.
//
// The engine uses the result to quarantine a panicking plan's bees: the
// panic's recover boundary cannot attribute the fault to one closure, so
// the policy is to quarantine all of them (see DESIGN.md §9).
func WalkBees(n Node, fn func(BeeRef)) {
	switch in := n.(type) {
	case *Instrumented:
		n = in.Inner
	case *InstrumentedBatch:
		n = in.Inner
	}
	aggRefs := func(specs []AggSpec) {
		for i := range specs {
			if specs[i].CompiledArg != nil && specs[i].Arg != nil {
				fn(BeeRef{Kind: "query/EVA", Name: specs[i].Arg.String()})
			}
			walkExprBees(specs[i].Arg, fn)
		}
	}
	switch v := n.(type) {
	case *SeqScan, *IndexScan, *ValuesNode:
		// Leaves; GCL excluded by policy.
	case *BatchSeqScan:
		// A fused scan-filter carries the predicate's EVP bee (same cache
		// key as the standalone forms), so quarantining it disables all
		// three; the GCL half is excluded by the policy above.
		if v.Fused != nil && v.FusedPred != nil {
			fn(BeeRef{Kind: "query/EVP", Name: v.FusedPred.String()})
			walkExprBees(v.FusedPred, fn)
		}
	case *Rebatch:
		WalkBees(v.Child, fn)
	case *BatchFilter:
		// The batch EVP form shares the tuple form's cache key, so
		// quarantining it disables both.
		if v.Compiled != nil && v.Pred != nil {
			fn(BeeRef{Kind: "query/EVP", Name: v.Pred.String()})
		}
		walkExprBees(v.Pred, fn)
		WalkBees(v.Child, fn)
	case *BatchHashAgg:
		aggRefs(v.Aggs)
		WalkBees(v.Child, fn)
	case *Filter:
		if v.Compiled != nil && v.Pred != nil {
			fn(BeeRef{Kind: "query/EVP", Name: v.Pred.String()})
		}
		walkExprBees(v.Pred, fn)
		WalkBees(v.Child, fn)
	case *Project:
		for _, e := range v.Exprs {
			walkExprBees(e, fn)
		}
		WalkBees(v.Child, fn)
	case *Limit:
		WalkBees(v.Child, fn)
	case *Sort:
		WalkBees(v.Child, fn)
	case *Distinct:
		WalkBees(v.Child, fn)
	case *Materialize:
		WalkBees(v.Child, fn)
	case *HashAgg:
		aggRefs(v.Aggs)
		WalkBees(v.Child, fn)
	case *HashJoin:
		if v.EVJ != nil {
			fn(BeeRef{Kind: "query/EVJ", Name: fmt.Sprintf("keys%v", v.OuterKeys)})
		}
		if v.ResidualCompiled != nil && v.Residual != nil {
			fn(BeeRef{Kind: "query/EVP", Name: v.Residual.String()})
		}
		walkExprBees(v.Residual, fn)
		WalkBees(v.Outer, fn)
		WalkBees(v.Inner, fn)
	case *NLJoin:
		if v.QualCompiled != nil && v.Qual != nil {
			fn(BeeRef{Kind: "query/EVP", Name: v.Qual.String()})
		}
		walkExprBees(v.Qual, fn)
		WalkBees(v.Outer, fn)
		WalkBees(v.Inner, fn)
	case *Gather:
		aggRefs(v.Aggs)
		for _, specs := range v.PartAggs {
			aggRefs(specs)
		}
		for _, p := range v.Parts {
			WalkBees(p, fn)
		}
	}
}

// walkExprBees descends an expression tree looking for subquery nodes and
// walks their subplans: a bee panic inside a subquery unwinds through the
// outer plan's recover boundary, so the subplan's bees are quarantine
// candidates exactly like the outer plan's.
func walkExprBees(e expr.Expr, fn func(BeeRef)) {
	switch n := e.(type) {
	case nil:
	case *ScalarSubquery:
		WalkBees(n.Plan, fn)
	case *ExistsSubquery:
		WalkBees(n.Plan, fn)
	case *InSubquery:
		WalkBees(n.Plan, fn)
		walkExprBees(n.Kid, fn)
	case *expr.And:
		for _, k := range n.Kids {
			walkExprBees(k, fn)
		}
	case *expr.Or:
		for _, k := range n.Kids {
			walkExprBees(k, fn)
		}
	case *expr.Not:
		walkExprBees(n.Kid, fn)
	case *expr.Cmp:
		walkExprBees(n.L, fn)
		walkExprBees(n.R, fn)
	case *expr.Arith:
		walkExprBees(n.L, fn)
		walkExprBees(n.R, fn)
	case *expr.Case:
		for _, w := range n.Whens {
			walkExprBees(w.Cond, fn)
			walkExprBees(w.Result, fn)
		}
		walkExprBees(n.Else, fn)
	}
}
