package exec

import (
	"testing"

	"fmt"

	"microspec/internal/catalog"
	"microspec/internal/core"
	"microspec/internal/expr"
	"microspec/internal/index/btree"
	"microspec/internal/storage/buffer"
	"microspec/internal/storage/disk"
	"microspec/internal/storage/heap"
	"microspec/internal/txn"
	"microspec/internal/types"
)

func i32(v int32) types.Datum   { return types.NewInt32(v) }
func i64(v int64) types.Datum   { return types.NewInt64(v) }
func f64(v float64) types.Datum { return types.NewFloat64(v) }
func str(s string) types.Datum  { return types.NewString(s) }

func vals(cols []ColInfo, rows ...expr.Row) *ValuesNode {
	return &ValuesNode{Rows: rows, Cols: cols}
}

func intCols(names ...string) []ColInfo {
	cols := make([]ColInfo, len(names))
	for i, n := range names {
		cols[i] = ColInfo{Name: n, T: types.Int32}
	}
	return cols
}

func mustCollect(t *testing.T, n Node) []expr.Row {
	t.Helper()
	rows, err := Collect(&Ctx{}, n)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestFilterInterpretedAndCompiled(t *testing.T) {
	src := func() Node {
		return vals(intCols("a"), expr.Row{i32(1)}, expr.Row{i32(5)}, expr.Row{i32(9)})
	}
	pred := &expr.Cmp{Op: expr.GE, L: &expr.Var{Idx: 0, T: types.Int32}, R: expr.NewConst(i32(5))}

	rows := mustCollect(t, &Filter{Child: src(), Pred: pred})
	if len(rows) != 2 || rows[0][0].Int32() != 5 {
		t.Fatalf("interpreted filter: %v", rows)
	}

	m := core.NewModule(core.AllRoutines)
	cp, ok := m.CompilePredicate(pred)
	if !ok {
		t.Fatal("compile failed")
	}
	rows2 := mustCollect(t, &Filter{Child: src(), Pred: pred, Compiled: cp})
	if len(rows2) != 2 || rows2[1][0].Int32() != 9 {
		t.Fatalf("compiled filter: %v", rows2)
	}
}

func TestProjectAndLimit(t *testing.T) {
	src := vals(intCols("a"),
		expr.Row{i32(1)}, expr.Row{i32(2)}, expr.Row{i32(3)}, expr.Row{i32(4)})
	p := &Project{
		Child: src,
		Exprs: []expr.Expr{&expr.Arith{Op: expr.Mul, L: &expr.Var{Idx: 0, T: types.Int32}, R: expr.NewConst(i32(10))}},
		Cols:  []ColInfo{{Name: "a10", T: types.Int64}},
	}
	rows := mustCollect(t, &Limit{Child: p, N: 2, Offset: 1})
	if len(rows) != 2 || rows[0][0].Int64() != 20 || rows[1][0].Int64() != 30 {
		t.Fatalf("project+limit: %v", rows)
	}
}

func joinInputs() (outer, inner Node) {
	outer = vals(intCols("ok", "ov"),
		expr.Row{i32(1), i32(10)},
		expr.Row{i32(2), i32(20)},
		expr.Row{i32(3), i32(30)},
		expr.Row{i32(3), i32(31)},
	)
	inner = vals(intCols("ik", "iv"),
		expr.Row{i32(2), i32(200)},
		expr.Row{i32(3), i32(300)},
		expr.Row{i32(3), i32(301)},
		expr.Row{i32(5), i32(500)},
	)
	return
}

func TestHashJoinInner(t *testing.T) {
	outer, inner := joinInputs()
	j := &HashJoin{Outer: outer, Inner: inner, OuterKeys: []int{0}, InnerKeys: []int{0}, Type: InnerJoin}
	rows := mustCollect(t, j)
	// key2 ×1, key3: 2 outer × 2 inner = 4 → total 5.
	if len(rows) != 5 {
		t.Fatalf("inner join rows = %d: %v", len(rows), rows)
	}
	for _, r := range rows {
		if r[0].Int32() != r[2].Int32() {
			t.Errorf("join key mismatch: %v", r)
		}
		if len(r) != 4 {
			t.Errorf("combined width = %d", len(r))
		}
	}
}

func TestHashJoinLeft(t *testing.T) {
	outer, inner := joinInputs()
	j := &HashJoin{Outer: outer, Inner: inner, OuterKeys: []int{0}, InnerKeys: []int{0}, Type: LeftJoin}
	rows := mustCollect(t, j)
	// 5 matched + 1 null-extended (key 1).
	if len(rows) != 6 {
		t.Fatalf("left join rows = %d", len(rows))
	}
	nullExtended := 0
	for _, r := range rows {
		if r[2].IsNull() {
			nullExtended++
			if r[0].Int32() != 1 {
				t.Errorf("wrong row null-extended: %v", r)
			}
		}
	}
	if nullExtended != 1 {
		t.Errorf("null-extended = %d", nullExtended)
	}
}

func TestHashJoinLeftResidualRejectsAll(t *testing.T) {
	outer, inner := joinInputs()
	// Residual that always fails: matched rows are rejected, so every
	// outer row must be null-extended (ON-clause semantics).
	never := expr.NewConst(types.NewBool(false))
	j := &HashJoin{Outer: outer, Inner: inner, OuterKeys: []int{0}, InnerKeys: []int{0},
		Type: LeftJoin, Residual: never}
	rows := mustCollect(t, j)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if !r[2].IsNull() {
			t.Errorf("row not null-extended: %v", r)
		}
	}
}

func TestHashJoinSemiAnti(t *testing.T) {
	outer, inner := joinInputs()
	semi := mustCollect(t, &HashJoin{Outer: outer, Inner: inner,
		OuterKeys: []int{0}, InnerKeys: []int{0}, Type: SemiJoin})
	// keys 2, 3, 3 have matches → 3 outer rows.
	if len(semi) != 3 {
		t.Fatalf("semi rows = %d", len(semi))
	}
	for _, r := range semi {
		if len(r) != 2 {
			t.Errorf("semi keeps outer columns only: %v", r)
		}
	}
	outer, inner = joinInputs()
	anti := mustCollect(t, &HashJoin{Outer: outer, Inner: inner,
		OuterKeys: []int{0}, InnerKeys: []int{0}, Type: AntiJoin})
	if len(anti) != 1 || anti[0][0].Int32() != 1 {
		t.Fatalf("anti rows = %v", anti)
	}
}

func TestHashJoinWithEVJ(t *testing.T) {
	m := core.NewModule(core.AllRoutines)
	jk, ok := m.CompileJoinKeys([]int{0}, []int{0}, []types.T{types.Int32})
	if !ok {
		t.Fatal("EVJ compile failed")
	}
	outer, inner := joinInputs()
	j := &HashJoin{Outer: outer, Inner: inner, OuterKeys: []int{0}, InnerKeys: []int{0},
		Type: InnerJoin, EVJ: jk}
	rows := mustCollect(t, j)
	if len(rows) != 5 {
		t.Fatalf("EVJ join rows = %d", len(rows))
	}
}

func TestNLJoin(t *testing.T) {
	outer, inner := joinInputs()
	// Non-equi join: ov < iv.
	qual := &expr.Cmp{Op: expr.LT,
		L: &expr.Var{Idx: 1, T: types.Int32},
		R: &expr.Var{Idx: 3, T: types.Int32}}
	j := &NLJoin{Outer: outer, Inner: &Materialize{Child: inner}, Type: InnerJoin, Qual: qual}
	rows := mustCollect(t, j)
	// every (outer, inner) pair with ov < iv: all 16 pairs qualify.
	if len(rows) != 16 {
		t.Fatalf("nl join rows = %d", len(rows))
	}
	// Left variant with impossible qual null-extends everything.
	outer, inner = joinInputs()
	never := expr.NewConst(types.NewBool(false))
	left := mustCollect(t, &NLJoin{Outer: outer, Inner: &Materialize{Child: inner}, Type: LeftJoin, Qual: never})
	if len(left) != 4 {
		t.Fatalf("nl left rows = %d", len(left))
	}
	for _, r := range left {
		if !r[2].IsNull() {
			t.Errorf("not null-extended: %v", r)
		}
	}
}

func TestNLJoinSemiAnti(t *testing.T) {
	outer, inner := joinInputs()
	eq := &expr.Cmp{Op: expr.EQ,
		L: &expr.Var{Idx: 0, T: types.Int32},
		R: &expr.Var{Idx: 2, T: types.Int32}}
	semi := mustCollect(t, &NLJoin{Outer: outer, Inner: &Materialize{Child: inner}, Type: SemiJoin, Qual: eq})
	if len(semi) != 3 {
		t.Fatalf("nl semi rows = %d", len(semi))
	}
	outer, inner = joinInputs()
	anti := mustCollect(t, &NLJoin{Outer: outer, Inner: &Materialize{Child: inner}, Type: AntiJoin, Qual: eq})
	if len(anti) != 1 || anti[0][0].Int32() != 1 {
		t.Fatalf("nl anti rows = %v", anti)
	}
}

func TestHashAgg(t *testing.T) {
	src := vals([]ColInfo{{Name: "g", T: types.Int32}, {Name: "x", T: types.Float64}},
		expr.Row{i32(1), f64(10)},
		expr.Row{i32(2), f64(5)},
		expr.Row{i32(1), f64(20)},
		expr.Row{i32(2), f64(7)},
		expr.Row{i32(1), f64(30)},
	)
	g := &expr.Var{Idx: 0, T: types.Int32}
	x := &expr.Var{Idx: 1, T: types.Float64}
	agg := &HashAgg{
		Child:   src,
		GroupBy: []expr.Expr{g},
		Aggs: []AggSpec{
			{Fn: AggSum, Arg: x, Name: "s"},
			{Fn: AggCount, Name: "c"},
			{Fn: AggAvg, Arg: x, Name: "a"},
			{Fn: AggMin, Arg: x, Name: "mn"},
			{Fn: AggMax, Arg: x, Name: "mx"},
		},
	}
	rows := mustCollect(t, agg)
	if len(rows) != 2 {
		t.Fatalf("groups = %d", len(rows))
	}
	byKey := map[int32]expr.Row{}
	for _, r := range rows {
		byKey[r[0].Int32()] = r
	}
	r1 := byKey[1]
	if r1[1].Float64() != 60 || r1[2].Int64() != 3 || r1[3].Float64() != 20 || r1[4].Float64() != 10 || r1[5].Float64() != 30 {
		t.Errorf("group 1: %v", r1)
	}
	r2 := byKey[2]
	if r2[1].Float64() != 12 || r2[2].Int64() != 2 {
		t.Errorf("group 2: %v", r2)
	}
}

func TestHashAggGlobalAndEmpty(t *testing.T) {
	empty := vals(intCols("x"))
	agg := &HashAgg{Child: empty, Aggs: []AggSpec{
		{Fn: AggCount, Name: "c"},
		{Fn: AggSum, Arg: &expr.Var{Idx: 0, T: types.Int32}, Name: "s"},
	}}
	rows := mustCollect(t, agg)
	if len(rows) != 1 {
		t.Fatalf("global agg over empty input must yield one row, got %d", len(rows))
	}
	if rows[0][0].Int64() != 0 {
		t.Errorf("count = %v", rows[0][0])
	}
	if !rows[0][1].IsNull() {
		t.Errorf("sum of empty = %v, want NULL", rows[0][1])
	}
}

func TestCountDistinctAndNullSkip(t *testing.T) {
	src := vals(intCols("x"),
		expr.Row{i32(1)}, expr.Row{i32(1)}, expr.Row{i32(2)},
		expr.Row{types.Null}, expr.Row{i32(2)})
	x := &expr.Var{Idx: 0, T: types.Int32}
	agg := &HashAgg{Child: src, Aggs: []AggSpec{
		{Fn: AggCount, Arg: x, Distinct: true, Name: "cd"},
		{Fn: AggCount, Arg: x, Name: "c"},
		{Fn: AggCount, Name: "star"},
	}}
	rows := mustCollect(t, agg)
	if rows[0][0].Int64() != 2 {
		t.Errorf("count distinct = %v", rows[0][0])
	}
	if rows[0][1].Int64() != 4 {
		t.Errorf("count(x) = %v (nulls must be skipped)", rows[0][1])
	}
	if rows[0][2].Int64() != 5 {
		t.Errorf("count(*) = %v", rows[0][2])
	}
}

func TestSortAndDistinct(t *testing.T) {
	src := vals(intCols("a", "b"),
		expr.Row{i32(2), i32(1)},
		expr.Row{i32(1), i32(2)},
		expr.Row{i32(2), i32(0)},
		expr.Row{i32(1), i32(2)},
	)
	s := &Sort{Child: &Distinct{Child: src}, Keys: []SortKey{{Idx: 0}, {Idx: 1, Desc: true}}}
	rows := mustCollect(t, s)
	if len(rows) != 3 {
		t.Fatalf("distinct+sort rows = %d", len(rows))
	}
	want := [][2]int32{{1, 2}, {2, 1}, {2, 0}}
	for i, w := range want {
		if rows[i][0].Int32() != w[0] || rows[i][1].Int32() != w[1] {
			t.Errorf("row %d = %v, want %v", i, rows[i], w)
		}
	}
}

func TestSortNullsLast(t *testing.T) {
	src := vals(intCols("a"),
		expr.Row{types.Null}, expr.Row{i32(2)}, expr.Row{i32(1)})
	rows := mustCollect(t, &Sort{Child: src, Keys: []SortKey{{Idx: 0}}})
	if !rows[2][0].IsNull() {
		t.Errorf("nulls must sort last: %v", rows)
	}
}

func TestSubqueries(t *testing.T) {
	newInner := func() Node {
		return vals(intCols("v"), expr.Row{i32(10)}, expr.Row{i32(20)})
	}
	// Scalar (uncorrelated, cached).
	sc := &ScalarSubquery{Plan: &HashAgg{Child: newInner(), Aggs: []AggSpec{{Fn: AggMax, Arg: &expr.Var{Idx: 0, T: types.Int32}}}}, T: types.Int32}
	ctx := &expr.Ctx{}
	if got := sc.Eval(nil, ctx); got.Int64() != 20 {
		t.Errorf("scalar subquery = %v", got)
	}
	if got := sc.Eval(nil, ctx); got.Int64() != 20 {
		t.Errorf("cached scalar subquery = %v", got)
	}
	// Exists.
	ex := &ExistsSubquery{Plan: newInner()}
	if !ex.Eval(nil, ctx).Bool() {
		t.Error("exists must be true")
	}
	notEx := &ExistsSubquery{Plan: vals(intCols("v")), Negate: true}
	if !notEx.Eval(nil, ctx).Bool() {
		t.Error("not exists over empty must be true")
	}
	// IN.
	in := &InSubquery{Kid: &expr.Var{Idx: 0, T: types.Int32}, Plan: newInner()}
	if !in.Eval(expr.Row{i32(10)}, ctx).Bool() {
		t.Error("10 IN (10,20) must hold")
	}
	if in.Eval(expr.Row{i32(11)}, ctx).Bool() {
		t.Error("11 IN (10,20) must not hold")
	}
	// NOT IN with NULL in the set is unknown for non-members.
	withNull := vals(intCols("v"), expr.Row{i32(10)}, expr.Row{types.Null})
	nin := &InSubquery{Kid: &expr.Var{Idx: 0, T: types.Int32}, Plan: withNull, Negate: true}
	if v := nin.Eval(expr.Row{i32(11)}, ctx); !v.IsNull() {
		t.Errorf("NOT IN with NULL must be unknown, got %v", v)
	}
}

func TestCorrelatedSubquery(t *testing.T) {
	// Inner plan: filter inner rows where v > outer$0, then count.
	inner := func() Node {
		return vals(intCols("v"), expr.Row{i32(10)}, expr.Row{i32(20)}, expr.Row{i32(30)})
	}
	pred := &expr.Cmp{Op: expr.GT,
		L: &expr.Var{Idx: 0, T: types.Int32},
		R: &expr.OuterVar{Idx: 0, Depth: 0, T: types.Int32}}
	plan := &HashAgg{
		Child: &Filter{Child: inner(), Pred: pred},
		Aggs:  []AggSpec{{Fn: AggCount, Name: "c"}},
	}
	sc := &ScalarSubquery{Plan: plan, Correlated: true, T: types.Int64}
	ctx := &expr.Ctx{}
	if got := sc.Eval(expr.Row{i32(15)}, ctx); got.Int64() != 2 {
		t.Errorf("count v>15 = %v, want 2", got)
	}
	if got := sc.Eval(expr.Row{i32(25)}, ctx); got.Int64() != 1 {
		t.Errorf("count v>25 = %v, want 1", got)
	}
}

func TestSeqScanOverHeap(t *testing.T) {
	m := core.NewModule(core.Stock)
	cat := catalog.New()
	rel, err := cat.CreateRelation("t", catalog.Schema{Attrs: []catalog.Attribute{
		catalog.Col("id", types.Int32, true),
		catalog.Col("name", types.Varchar(20), true),
	}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.OnCreateRelation(rel)
	dm := disk.NewManager(disk.LatencyModel{})
	pool := buffer.New(dm, 16)
	h := heap.Create(dm, pool, rel, nil)
	for i := 0; i < 100; i++ {
		tup, err := m.FormTuple(rel, []types.Datum{i32(int32(i)), str("n")}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Insert(tup, txn.Frozen, nil); err != nil {
			t.Fatal(err)
		}
	}
	deform, err := m.Deformer(rel)
	if err != nil {
		t.Fatal(err)
	}
	scan := NewSeqScan(h, deform, 0)
	rows := mustCollect(t, scan)
	if len(rows) != 100 {
		t.Fatalf("scanned %d", len(rows))
	}
	if rows[42][0].Int32() != 42 || rows[42][1].Str() != "n" {
		t.Errorf("row 42 = %v", rows[42])
	}
	// Partial scan of only the first attribute.
	part := NewSeqScan(h, deform, 1)
	if cols := part.Schema(); len(cols) != 1 || cols[0].Name != "id" {
		t.Errorf("partial schema = %v", cols)
	}
}

func TestMaterializeRescan(t *testing.T) {
	src := vals(intCols("a"), expr.Row{i32(1)}, expr.Row{i32(2)})
	mat := &Materialize{Child: src}
	first := mustCollect(t, mat)
	second := mustCollect(t, mat)
	if len(first) != 2 || len(second) != 2 {
		t.Fatalf("rescan lost rows: %d, %d", len(first), len(second))
	}
	mat.Invalidate()
	third := mustCollect(t, mat)
	if len(third) != 2 {
		t.Fatalf("after invalidate: %d", len(third))
	}
}

func TestIndexScanNode(t *testing.T) {
	m := core.NewModule(core.AllRoutines)
	cat := catalog.New()
	rel, err := cat.CreateRelation("kv", catalog.Schema{Attrs: []catalog.Attribute{
		catalog.Col("k", types.Int32, true),
		catalog.Col("v", types.Varchar(12), true),
	}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.OnCreateRelation(rel)
	dm := disk.NewManager(disk.LatencyModel{})
	pool := buffer.New(dm, 16)
	h := heap.Create(dm, pool, rel, nil)
	tree := btree.New("kv_pkey", true)
	for i := 0; i < 50; i++ {
		tup, err := m.FormTuple(rel, []types.Datum{i32(int32(i)), str(fmt.Sprintf("v%d", i))}, nil)
		if err != nil {
			t.Fatal(err)
		}
		tid, err := h.Insert(tup, txn.Frozen, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Insert(btree.Key{i32(int32(i))}, tid, nil); err != nil {
			t.Fatal(err)
		}
	}
	deform, err := m.Deformer(rel)
	if err != nil {
		t.Fatal(err)
	}
	// Range scan [10, 14].
	scan := NewIndexScan(h, tree, deform, 0, btree.Key{i32(10)}, btree.Key{i32(14)}, false)
	rows := mustCollect(t, scan)
	if len(rows) != 5 || rows[0][0].Int32() != 10 || rows[4][1].Str() != "v14" {
		t.Fatalf("range scan: %v", rows)
	}
	// Reverse prefix scan over everything.
	rev := NewIndexScan(h, tree, deform, 1, nil, nil, true)
	rrows := mustCollect(t, rev)
	if len(rrows) != 50 || rrows[0][0].Int32() != 49 {
		t.Fatalf("reverse scan: first=%v n=%d", rrows[0], len(rrows))
	}
	if cols := rev.Schema(); len(cols) != 1 || cols[0].Name != "k" {
		t.Fatalf("schema: %v", cols)
	}
}

func TestLimitOffsetBeyondEnd(t *testing.T) {
	src := vals(intCols("a"), expr.Row{i32(1)}, expr.Row{i32(2)})
	rows := mustCollect(t, &Limit{Child: src, N: 5, Offset: 10})
	if len(rows) != 0 {
		t.Fatalf("rows = %d", len(rows))
	}
	src2 := vals(intCols("a"), expr.Row{i32(1)}, expr.Row{i32(2)})
	rows2 := mustCollect(t, &Limit{Child: src2, N: -1, Offset: 1})
	if len(rows2) != 1 {
		t.Fatalf("no-limit offset rows = %d", len(rows2))
	}
}

func TestCloneRowSharedBacking(t *testing.T) {
	orig := expr.Row{str("hello"), i32(5), str("world")}
	clone := CloneRow(orig)
	// Mutating the original byte slices must not affect the clone.
	orig[0].Bytes()[0] = 'X'
	if clone[0].Str() != "hello" {
		t.Errorf("clone aliased original: %q", clone[0].Str())
	}
	if clone[1].Int32() != 5 {
		t.Errorf("scalar lost: %v", clone[1])
	}
}

func TestHashJoinRejectsEmptyKeys(t *testing.T) {
	outer, inner := joinInputs()
	j := &HashJoin{Outer: outer, Inner: inner, Type: InnerJoin}
	if err := j.Open(&Ctx{}); err == nil {
		t.Error("hash join without keys must fail to open")
	}
}
