package core

import (
	"math/rand"
	"sort"
	"testing"

	"microspec/internal/expr"
	"microspec/internal/types"
)

// Tests for the paper's §VIII future-work extensions: EVA (specialized
// aggregate-input evaluation) and IDX (specialized index-key comparison).

func TestCompileScalarCaseExpr(t *testing.T) {
	m := NewModule(AllRoutines)
	// The q14 shape: CASE WHEN p_type LIKE 'PROMO%' THEN price*(1-disc) ELSE 0 END.
	price := &expr.Var{Idx: 0, T: types.Float64}
	disc := &expr.Var{Idx: 1, T: types.Float64}
	ptype := &expr.Var{Idx: 2, T: types.Varchar(25)}
	e := &expr.Case{
		Whens: []expr.When{{
			Cond: expr.NewLike(ptype, "PROMO%", false),
			Result: &expr.Arith{Op: expr.Mul, L: price,
				R: &expr.Arith{Op: expr.Sub, L: expr.NewConst(types.NewFloat64(1)), R: disc}},
		}},
		Else: expr.NewConst(types.NewFloat64(0)),
		T:    types.Float64,
	}
	ca, ok := m.CompileScalar(e)
	if !ok {
		t.Fatal("EVA compilation failed for the q14 CASE shape")
	}
	ctx := &expr.Ctx{}
	promo := expr.Row{types.NewFloat64(100), types.NewFloat64(0.1), types.NewString("PROMO BRUSHED TIN")}
	other := expr.Row{types.NewFloat64(100), types.NewFloat64(0.1), types.NewString("SMALL PLATED BRASS")}
	if got := ca(promo, ctx); got.Float64() != 90 {
		t.Errorf("promo row = %v, want 90", got)
	}
	if got := ca(other, ctx); got.Float64() != 0 {
		t.Errorf("other row = %v, want 0", got)
	}
	// Agreement with the interpreter.
	if want := e.Eval(promo, ctx); want.Float64() != ca(promo, ctx).Float64() {
		t.Error("EVA disagrees with the interpreter")
	}
	// Disabled without the EVA routine.
	if _, ok := NewModule(RoutineSet{EVP: true}).CompileScalar(e); ok {
		t.Error("EVA off must not compile")
	}
}

func TestCompileScalarSubstringAndNeg(t *testing.T) {
	m := NewModule(AllRoutines)
	phone := &expr.Var{Idx: 0, T: types.Char(15)}
	sub := &expr.Substring{
		Kid:   phone,
		Start: expr.NewConst(types.NewInt64(1)),
		Span:  expr.NewConst(types.NewInt64(2)),
	}
	ca, ok := m.CompileScalar(sub)
	if !ok {
		t.Fatal("substring must compile")
	}
	if got := ca(expr.Row{types.NewChar("13-555-1234")}, &expr.Ctx{}); got.Str() != "13" {
		t.Errorf("substring = %q", got.Str())
	}
	neg := &expr.Neg{Kid: &expr.Var{Idx: 0, T: types.Float64}}
	cn, ok := m.CompileScalar(neg)
	if !ok {
		t.Fatal("neg must compile")
	}
	if got := cn(expr.Row{types.NewFloat64(2.5)}, &expr.Ctx{}); got.Float64() != -2.5 {
		t.Errorf("neg = %v", got)
	}
}

func TestCompileIndexCmpMatchesGeneric(t *testing.T) {
	m := NewModule(AllRoutines)
	keyTypes := []types.T{types.Int32, types.Varchar(8), types.Date}
	cmp, ok := m.CompileIndexCmp(keyTypes)
	if !ok {
		t.Fatal("IDX compilation failed")
	}
	rng := rand.New(rand.NewSource(5))
	randKey := func(prefixLen int) []types.Datum {
		k := make([]types.Datum, prefixLen)
		for i := 0; i < prefixLen; i++ {
			switch i {
			case 0:
				k[i] = types.NewInt32(int32(rng.Intn(5)))
			case 1:
				k[i] = types.NewString(string(rune('a' + rng.Intn(3))))
			default:
				k[i] = types.NewDate(int32(rng.Intn(4)))
			}
		}
		return k
	}
	// Property: the IDX comparator must agree with the generic one on
	// random (possibly prefix-length) keys.
	for i := 0; i < 5000; i++ {
		a := randKey(1 + rng.Intn(3))
		b := randKey(1 + rng.Intn(3))
		want := genericKeyCompare(a, b)
		if got := cmp(a, b); got != want {
			t.Fatalf("cmp(%v,%v) = %d, generic = %d", a, b, got, want)
		}
	}
	// Single int key fast path.
	cmp1, _ := m.CompileIndexCmp([]types.T{types.Int32})
	if cmp1([]types.Datum{types.NewInt32(1)}, []types.Datum{types.NewInt32(2)}) != -1 {
		t.Error("single-key fast path wrong")
	}
	// Disabled without the IDX routine.
	if _, ok := NewModule(Stock).CompileIndexCmp(keyTypes); ok {
		t.Error("IDX off must not compile")
	}
}

// genericKeyCompare mirrors btree.Compare without importing it (avoiding
// a test-only dependency direction).
func genericKeyCompare(a, b []types.Datum) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		an, bn := a[i].IsNull(), b[i].IsNull()
		switch {
		case an && bn:
			continue
		case an:
			return -1
		case bn:
			return 1
		}
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

func TestIDXOrderingUnderSort(t *testing.T) {
	m := NewModule(AllRoutines)
	cmp, _ := m.CompileIndexCmp([]types.T{types.Int32, types.Int32})
	rng := rand.New(rand.NewSource(9))
	keys := make([][]types.Datum, 200)
	for i := range keys {
		keys[i] = []types.Datum{types.NewInt32(int32(rng.Intn(10))), types.NewInt32(int32(rng.Intn(10)))}
	}
	sort.Slice(keys, func(i, j int) bool { return cmp(keys[i], keys[j]) < 0 })
	for i := 1; i < len(keys); i++ {
		if genericKeyCompare(keys[i-1], keys[i]) > 0 {
			t.Fatalf("IDX sort order broken at %d: %v > %v", i, keys[i-1], keys[i])
		}
	}
}
