package core

import (
	"slices"

	"microspec/internal/catalog"
	"microspec/internal/expr"
	"microspec/internal/profile"
	"microspec/internal/storage/tuple"
)

// This file is the fused GCL∘EVP bee: one routine that interleaves a
// filter predicate's conjuncts into the relation's deform program. The
// separate batch path deforms every attribute of every tuple before the
// filter sees any of them; on a selective scan most of that work is
// thrown away. The fused routine instead deforms a tuple only as far as
// the next conjunct needs, evaluates the conjunct, and abandons the tuple
// at the first failing one — composing the two specialized routines the
// way a hand-written scan loop would.

// FusedScanFilterFunc is the composed scan-filter routine: it deforms the
// live tuples of a page into out while evaluating the predicate, and
// appends the ordinals of passing tuples to sel (rows of rejected
// ordinals are left partially deformed — consumers must honour the
// selection vector).
type FusedScanFilterFunc func(tups [][]byte, out []expr.Row, natts int, sel []int32, prof *profile.Counters) []int32

// fusedCheck is one conjunct scheduled into the deform program: pred runs
// as soon as attributes [0, attr] have been deformed.
type fusedCheck struct {
	attr int
	pred predFunc
	cost int64
}

// CompileFusedScanFilter attempts to build the fused GCL∘EVP routine for
// filtering rel's tuples with predicate e over its first natts
// attributes. It requires both routine classes enabled, a non-nullable
// schema (the specialized deform program), and full snippet coverage of
// every conjunct; otherwise (nil, false) and the planner keeps the
// separate BatchSeqScan→BatchFilter pair.
//
// The conjuncts are evaluated in ascending order of the highest attribute
// they read, not textual order. Filtering semantics are unaffected: a row
// passes iff no conjunct evaluates to false or NULL, which is
// order-independent for the side-effect-free expressions the snippet
// library covers.
//
// The routine shares the predicate's query/EVP cache and quarantine key,
// so a panic in either form quarantines both and the next plan falls back
// to the generic path.
func (m *Module) CompileFusedScanFilter(rel *catalog.Relation, e expr.Expr, natts int) (FusedScanFilterFunc, bool) {
	m.mu.RLock()
	enabled := m.routines.GCL && m.routines.EVP
	rb := m.relBees[rel.ID]
	m.mu.RUnlock()
	if !enabled || e == nil || rb == nil || rb.gclCost == nil {
		return nil, false
	}
	name := e.String()
	if m.quar.has(beeKey{kind: "query/EVP", name: name}) {
		return nil, false // quarantined after a panic: generic fallback
	}
	if !m.tier.allow(beeKey{kind: "query/EVP", name: name}, rel.Name) {
		return nil, false // gated by the advisor tier table: stock path
	}
	var checks []fusedCheck
	for _, c := range flattenAnd(e, nil) {
		p, terms := compileNode(c)
		if p == nil {
			return nil, false
		}
		attr, ok := maxVarIdx(c)
		if !ok || attr >= natts {
			return nil, false
		}
		checks = append(checks, fusedCheck{attr: attr, pred: p, cost: int64(terms) * evpTermCost})
	}
	slices.SortStableFunc(checks, func(a, b fusedCheck) int { return a.attr - b.attr })

	ops := buildDeformProgram(rel)
	var combos *comboTable
	if rb.DataSections != nil {
		combos = rb.DataSections.combos
	}
	gclCost := rb.gclCost
	m.mu.Lock()
	m.stats.QueryBees++
	m.mu.Unlock()
	m.cache.put(beeKey{kind: "query/EVP", name: name}, "EVP "+name+" (fused into GCL)")
	// The fused bee replaces deform AND filter, so its benefit entry pairs
	// the full-deform-plus-predicate bee cost (the no-abandon worst case)
	// against the generic loop plus interpreted predicate.
	var beeCost int64 = gclCost[natts] + evpBaseCost
	for _, ck := range checks {
		beeCost += ck.cost
	}
	m.usage.register(beeKey{kind: "query/EVP", name: name},
		beeCost, genericDeformCost(rel, natts)+stockExprCost(e))
	fn := func(tups [][]byte, out []expr.Row, natts int, sel []int32, prof *profile.Counters) []int32 {
		m.maybePanic("query/EVP", name)
		deformCost := int64(0)
		evpCost := int64(len(tups)) * evpBaseCost
		for i, tup := range tups {
			data := tup[tuple.HOff(tup):]
			beeID := tuple.BeeID(tup)
			values := out[i]
			s, off := 0, 0
			pass := true
			for _, ck := range checks {
				if ck.attr >= s {
					off = runDeformSegment(ops, data, beeID, combos, values, s, ck.attr+1, off)
					s = ck.attr + 1
				}
				evpCost += ck.cost
				if v := ck.pred(values); v.IsNull() || !v.Bool() {
					pass = false
					break
				}
			}
			if pass {
				runDeformSegment(ops, data, beeID, combos, values, s, natts, off)
				s = natts
				sel = append(sel, int32(i))
			}
			deformCost += gclCost[s]
		}
		prof.Add(profile.CompDeform, deformCost)
		prof.Add(profile.CompExpr, evpCost)
		return sel
	}
	return fn, true
}

// flattenAnd appends e's conjuncts (nested ANDs flattened) to into.
func flattenAnd(e expr.Expr, into []expr.Expr) []expr.Expr {
	if a, ok := e.(*expr.And); ok {
		for _, k := range a.Kids {
			into = flattenAnd(k, into)
		}
		return into
	}
	return append(into, e)
}

// maxVarIdx returns the highest row ordinal e reads (-1 when it reads
// none) and ok=false for shapes outside the snippet library's coverage —
// the same node set compileNode handles.
func maxVarIdx(e expr.Expr) (int, bool) {
	switch n := e.(type) {
	case nil:
		return -1, true
	case *expr.Const:
		return -1, true
	case *expr.Var:
		return n.Idx, true
	case *expr.Param:
		return -1, true
	case *expr.Cmp:
		return maxVar2(n.L, n.R)
	case *expr.Arith:
		return maxVar2(n.L, n.R)
	case *expr.And:
		return maxVarList(n.Kids)
	case *expr.Or:
		return maxVarList(n.Kids)
	case *expr.Not:
		return maxVarIdx(n.Kid)
	case *expr.IsNull:
		return maxVarIdx(n.Kid)
	case *expr.Like:
		return maxVarIdx(n.Kid)
	case *expr.InList:
		return maxVarIdx(n.Kid)
	case *expr.DateArith:
		return maxVarIdx(n.L)
	case *expr.ExtractYear:
		return maxVarIdx(n.Kid)
	case *expr.Neg:
		return maxVarIdx(n.Kid)
	case *expr.Substring:
		hi, ok := maxVar2(n.Start, n.Span)
		if !ok {
			return 0, false
		}
		k, ok := maxVarIdx(n.Kid)
		if !ok {
			return 0, false
		}
		return max(hi, k), true
	case *expr.Case:
		hi := -1
		for _, w := range n.Whens {
			m, ok := maxVar2(w.Cond, w.Result)
			if !ok {
				return 0, false
			}
			hi = max(hi, m)
		}
		if n.Else != nil {
			m, ok := maxVarIdx(n.Else)
			if !ok {
				return 0, false
			}
			hi = max(hi, m)
		}
		return hi, true
	}
	return 0, false
}

func maxVar2(l, r expr.Expr) (int, bool) {
	a, ok := maxVarIdx(l)
	if !ok {
		return 0, false
	}
	b, ok := maxVarIdx(r)
	if !ok {
		return 0, false
	}
	return max(a, b), true
}

func maxVarList(kids []expr.Expr) (int, bool) {
	hi := -1
	for _, k := range kids {
		m, ok := maxVarIdx(k)
		if !ok {
			return 0, false
		}
		hi = max(hi, m)
	}
	return hi, true
}
