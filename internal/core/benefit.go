package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"microspec/internal/catalog"
	"microspec/internal/expr"
	"microspec/internal/profile"
)

// This file is the per-bee benefit attribution: every bee the module
// compiles registers a BeeUsage entry carrying its static per-row
// abstract-instruction cost next to the cost of the generic routine it
// replaced. Executor nodes that time their bee invocations report
// observed wall time into the entry, and BeeBenefits scales that time by
// the cost ratio to estimate how much each bee has saved — the runtime
// counterpart of the paper's Table 1 instruction counts, answering
// "which bees are earning their keep" on a live server.

// BeeUsage accumulates one bee's runtime usage. Executor nodes hold a
// handle (obtained through Module.Usage at plan time) and report with
// Note; all methods are nil-receiver safe so the stock path pays only a
// nil check.
type BeeUsage struct {
	rows atomic.Int64
	ns   atomic.Int64

	// Static per-row abstract instruction costs, written at compile time
	// under the usage-table lock: the bee routine's cost and the generic
	// routine's cost for the same work.
	beeCost   int64
	stockCost int64
}

// Note reports rows processed by the bee over ns nanoseconds of observed
// wall time. Executors accumulate locally and call this once at Close.
func (u *BeeUsage) Note(rows, ns int64) {
	if u == nil || rows <= 0 {
		return
	}
	u.rows.Add(rows)
	u.ns.Add(ns)
}

// SignedEstSavedNs is the advisor's demotion signal: the same
// observed × (stock − bee) / bee estimate as BeeBenefit.EstSavedNs but
// without the positive clamp, so a bee whose static cost exceeds the
// stock routine's (the cost model says it is a net loss for this shape)
// reports a negative saving. Returns 0 until the bee has timed work.
func (u *BeeUsage) SignedEstSavedNs() int64 {
	if u == nil || u.beeCost <= 0 {
		return 0
	}
	ns := u.ns.Load()
	if ns <= 0 {
		return 0
	}
	return ns * (u.stockCost - u.beeCost) / u.beeCost
}

// Rows returns how many rows the bee has processed on timed paths.
func (u *BeeUsage) Rows() int64 {
	if u == nil {
		return 0
	}
	return u.rows.Load()
}

// BeeBenefit is one bee's attribution line: identity, usage, the static
// cost pair, and the estimated time saved versus the stock routine.
type BeeBenefit struct {
	Kind string `json:"kind"`
	Name string `json:"name"`
	// Rows is how many rows the bee has processed (timed paths only).
	Rows int64 `json:"rows"`
	// ObservedNs is the wall time spent inside the bee routine.
	ObservedNs int64 `json:"observed_ns"`
	// BeeCost and StockCost are per-row abstract instruction costs of the
	// specialized and generic routines.
	BeeCost   int64 `json:"bee_cost"`
	StockCost int64 `json:"stock_cost"`
	// EstSavedNs scales ObservedNs by the cost ratio:
	// observed × (stock − bee) / bee. Zero until the bee has timed work.
	EstSavedNs int64 `json:"est_saved_ns"`
}

// usageTable maps bee identity to its usage entry. Its lock is
// subordinate to Module.mu (always acquired after, never before).
type usageTable struct {
	mu sync.Mutex
	m  map[beeKey]*BeeUsage
}

// register creates or refreshes the entry for k with the given cost pair
// and returns it. Re-compiling a bee (cache refresh, fused form of the
// same predicate) keeps accumulated usage and overwrites the costs.
func (t *usageTable) register(k beeKey, beeCost, stockCost int64) *BeeUsage {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = make(map[beeKey]*BeeUsage)
	}
	u := t.m[k]
	if u == nil {
		u = &BeeUsage{}
		t.m[k] = u
	}
	u.beeCost, u.stockCost = beeCost, stockCost
	return u
}

// Usage returns the usage entry for a registered bee, or nil — the nil
// is wired straight into executor nodes, whose Note calls then no-op.
func (m *Module) Usage(kind, name string) *BeeUsage {
	m.usage.mu.Lock()
	defer m.usage.mu.Unlock()
	return m.usage.m[beeKey{kind: kind, name: name}]
}

// BeeBenefits reports every registered bee's attribution, estimated
// saving first (then rows, then identity, so the order is stable).
func (m *Module) BeeBenefits() []BeeBenefit {
	m.usage.mu.Lock()
	defer m.usage.mu.Unlock()
	out := make([]BeeBenefit, 0, len(m.usage.m))
	for k, u := range m.usage.m {
		b := BeeBenefit{
			Kind:       k.kind,
			Name:       k.name,
			Rows:       u.rows.Load(),
			ObservedNs: u.ns.Load(),
			BeeCost:    u.beeCost,
			StockCost:  u.stockCost,
		}
		if b.BeeCost > 0 && b.ObservedNs > 0 && b.StockCost > b.BeeCost {
			b.EstSavedNs = b.ObservedNs * (b.StockCost - b.BeeCost) / b.BeeCost
		}
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.EstSavedNs != b.EstSavedNs {
			return a.EstSavedNs > b.EstSavedNs
		}
		if a.Rows != b.Rows {
			return a.Rows > b.Rows
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Name < b.Name
	})
	return out
}

// stockExprCost estimates the per-row abstract instruction cost of the
// generic interpreted evaluator for e — the baseline an EVP/EVA bee
// replaces. It mirrors the ctx.Prof charges in package expr: ExprNode
// per operator dispatch, ExprVar/ExprConst per leaf fetch.
func stockExprCost(e expr.Expr) int64 {
	switch n := e.(type) {
	case nil:
		return 0
	case *expr.Const:
		return profile.ExprConst
	case *expr.Param:
		return profile.ExprConst
	case *expr.Var:
		return profile.ExprVar
	case *expr.OuterVar:
		return profile.ExprVar
	case *expr.Cmp:
		return profile.ExprNode + stockExprCost(n.L) + stockExprCost(n.R)
	case *expr.Arith:
		return profile.ExprNode + stockExprCost(n.L) + stockExprCost(n.R)
	case *expr.And:
		return profile.ExprNode + stockExprList(n.Kids)
	case *expr.Or:
		return profile.ExprNode + stockExprList(n.Kids)
	case *expr.Not:
		return profile.ExprNode + stockExprCost(n.Kid)
	case *expr.IsNull:
		return profile.ExprNode + stockExprCost(n.Kid)
	case *expr.Like:
		return profile.ExprNode + stockExprCost(n.Kid)
	case *expr.InList:
		return profile.ExprNode + stockExprCost(n.Kid) + int64(len(n.Items))*profile.ExprConst
	case *expr.DateArith:
		return profile.ExprNode + stockExprCost(n.L)
	case *expr.ExtractYear:
		return profile.ExprNode + stockExprCost(n.Kid)
	case *expr.Neg:
		return profile.ExprNode + stockExprCost(n.Kid)
	case *expr.Substring:
		return profile.ExprNode + stockExprCost(n.Kid) + stockExprCost(n.Start) + stockExprCost(n.Span)
	case *expr.Case:
		c := int64(profile.ExprNode)
		for _, w := range n.Whens {
			c += stockExprCost(w.Cond) + stockExprCost(w.Result)
		}
		return c + stockExprCost(n.Else)
	}
	return profile.ExprNode
}

func stockExprList(kids []expr.Expr) int64 {
	var c int64
	for _, k := range kids {
		c += stockExprCost(k)
	}
	return c
}

// genericDeformCost estimates the per-row abstract instruction cost of
// the generic slot_deform_tuple loop over rel's first natts attributes
// (the charging in tuple.SlotDeform, assuming non-null values).
func genericDeformCost(rel *catalog.Relation, natts int) int64 {
	c := int64(profile.DeformBase)
	for i := 0; i < natts && i < len(rel.Attrs); i++ {
		a := rel.Attrs[i]
		if !a.NotNull {
			c += profile.DeformNullBitmapCheck
		}
		if a.Len < 0 {
			c += profile.DeformVarlenaAttr
		} else {
			c += profile.DeformFixedAttr
		}
	}
	return c
}

// stockJoinQualCost estimates the generic per-pair join-qual cost an EVJ
// bee replaces: the FuncExprState walk over nkeys equality terms.
func stockJoinQualCost(nkeys int) int64 {
	return profile.JoinQualNode + int64(nkeys)*(profile.ExprNode+2*profile.ExprVar)
}
