package core

import (
	"testing"

	"microspec/internal/catalog"
	"microspec/internal/expr"
	"microspec/internal/profile"
	"microspec/internal/types"
)

func TestBeeUsageNilSafe(t *testing.T) {
	var u *BeeUsage
	u.Note(10, 100) // must not panic
}

func TestBeeBenefitAttribution(t *testing.T) {
	m := NewModule(AllRoutines)
	pred := &expr.Cmp{
		Op: expr.LT,
		L:  &expr.Var{Idx: 0, T: types.Int32},
		R:  expr.NewConst(types.NewInt32(10)),
	}
	if _, ok := m.CompileBatchPredicate(pred); !ok {
		t.Fatal("CompileBatchPredicate failed")
	}
	u := m.Usage("query/EVP", pred.String())
	if u == nil {
		t.Fatal("no usage entry registered for compiled predicate")
	}
	if m.Usage("query/EVP", "no-such-bee") != nil {
		t.Fatal("Usage invented an entry for an unknown bee")
	}

	// The executor reports 1000 rows over 5000ns of observed bee time.
	u.Note(1000, 5000)
	var got *BeeBenefit
	for i, b := range m.BeeBenefits() {
		if b.Kind == "query/EVP" && b.Name == pred.String() {
			got = &m.BeeBenefits()[i]
			break
		}
	}
	if got == nil {
		t.Fatal("compiled predicate missing from BeeBenefits")
	}
	if got.Rows != 1000 || got.ObservedNs != 5000 {
		t.Fatalf("usage = %d rows / %dns, want 1000/5000", got.Rows, got.ObservedNs)
	}
	// One comparison term: bee 13+7 = 20, stock 44+14+8 = 66.
	if got.BeeCost != 20 || got.StockCost != 66 {
		t.Fatalf("costs = bee %d / stock %d, want 20/66", got.BeeCost, got.StockCost)
	}
	// est = 5000 × (66−20)/20 = 11500.
	if got.EstSavedNs != 11500 {
		t.Fatalf("EstSavedNs = %d, want 11500", got.EstSavedNs)
	}
}

func TestBeeBenefitsSortedBySaving(t *testing.T) {
	m := NewModule(AllRoutines)
	p1 := &expr.Cmp{Op: expr.LT, L: &expr.Var{Idx: 0, T: types.Int32}, R: expr.NewConst(types.NewInt32(1))}
	p2 := &expr.Cmp{Op: expr.GT, L: &expr.Var{Idx: 1, T: types.Int32}, R: expr.NewConst(types.NewInt32(2))}
	m.CompileBatchPredicate(p1)
	m.CompileBatchPredicate(p2)
	m.Usage("query/EVP", p1.String()).Note(10, 100)
	m.Usage("query/EVP", p2.String()).Note(10, 100000)
	bb := m.BeeBenefits()
	if len(bb) < 2 {
		t.Fatalf("got %d benefit rows, want ≥2", len(bb))
	}
	if bb[0].Name != p2.String() {
		t.Fatalf("top benefit is %q, want the heavily-used %q", bb[0].Name, p2.String())
	}
	for i := 1; i < len(bb); i++ {
		if bb[i].EstSavedNs > bb[i-1].EstSavedNs {
			t.Fatalf("benefits not sorted descending at %d", i)
		}
	}
}

func TestStockCostEstimators(t *testing.T) {
	// stockExprCost mirrors the interpreter's ctx.Prof charges.
	e := &expr.And{Kids: []expr.Expr{
		&expr.Cmp{Op: expr.LT, L: &expr.Var{Idx: 0, T: types.Int32}, R: expr.NewConst(types.NewInt32(1))},
		&expr.Cmp{Op: expr.GT, L: &expr.Var{Idx: 1, T: types.Int32}, R: expr.NewConst(types.NewInt32(2))},
	}}
	// AND node + 2×(cmp + var + const) = 44 + 2×66 = 176.
	if got := stockExprCost(e); got != 176 {
		t.Fatalf("stockExprCost = %d, want 176", got)
	}

	rel := &catalog.Relation{Attrs: []catalog.Attribute{
		{Name: "a", Type: types.Int32, NotNull: true, Len: 4},
		{Name: "b", Type: types.Varchar(16), NotNull: false, Len: -1},
	}}
	// base 25 + fixed 33 + (bitmap 6 + varlena 55) = 119.
	want := int64(profile.DeformBase + profile.DeformFixedAttr +
		profile.DeformNullBitmapCheck + profile.DeformVarlenaAttr)
	if got := genericDeformCost(rel, 2); got != want {
		t.Fatalf("genericDeformCost = %d, want %d", got, want)
	}
}
