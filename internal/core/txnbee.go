package core

// Transaction bees — the fourth bee kind, extending the paper's
// relation/tuple/query taxonomy across statement boundaries. A
// transaction bee is a whole OLTP transaction (a TPC-C body or a
// server-side PREPARE TRANSACTION unit) fused into one executable: the
// engine pre-resolves every table handle, index tree, and deform/form
// routine at compile time, computes one latch-acquisition plan for the
// whole unit, and commits with a single WAL record. The module's role
// here is identity and bookkeeping: transaction bees live in the same
// (kind, name) cache/quarantine/benefit space as query bees, so the
// shell's \cache view, the admin /bees endpoint, and the panic
// failpoint all cover them with no extra plumbing.

// TxnBeeKind is the cache/quarantine kind string for transaction bees.
const TxnBeeKind = "txn"

// Per-operation abstract instruction costs used for transaction-bee
// benefit attribution. The statement-at-a-time path pays, for every
// point operation, a catalog/handle map lookup, a table latch
// acquire/release pair, and an undo closure that re-acquires the latch
// on rollback; the fused path pays only the operation itself plus an
// append to a plain undo slice. The constants mirror the granularity of
// stockExprCost and friends in benefit.go: coarse abstract instruction
// counts, good enough to rank bees, not a cycle model.
const (
	// TxnOpStockCost is the per-operation overhead of the
	// statement-at-a-time path (handle lookup + latch pair + wrapped
	// undo + per-statement begin/commit amortization).
	TxnOpStockCost = 24
	// TxnOpBeeCost is the per-operation overhead of the fused path
	// (pre-resolved handle, latches already held, plain undo append).
	TxnOpBeeCost = 6
)

// RegisterTxnBee records a compiled whole-transaction bee in the cache
// and benefit tables and returns its usage handle. It reports ok=false
// without registering when the bee is quarantined — the caller must
// stay on the statement-at-a-time path. Re-registering after a replan
// keeps accumulated usage (usageTable.register semantics) and does not
// double-count the bee.
func (m *Module) RegisterTxnBee(name, source string, beeCost, stockCost int64) (*BeeUsage, bool) {
	k := beeKey{kind: TxnBeeKind, name: name}
	if m.quar.has(k) {
		return nil, false
	}
	_, dup := m.cache.Get(TxnBeeKind, name)
	if !dup {
		m.mu.Lock()
		m.stats.TxnBees++
		m.mu.Unlock()
	}
	m.cache.put(k, source)
	return m.usage.register(k, beeCost, stockCost), true
}

// TxnBeeAllowed reports whether a transaction bee may run: false while
// it is quarantined after a panic.
func (m *Module) TxnBeeAllowed(name string) bool {
	return !m.quar.has(beeKey{kind: TxnBeeKind, name: name})
}

// TxnBeePanicPoint is called by the fused execution path once per run;
// it triggers the injected-panic failpoint (InjectBeePanic) so tests
// and the chaos harness can exercise quarantine + fallback for
// transaction bees exactly as for query bees.
func (m *Module) TxnBeePanicPoint(name string) { m.maybePanic(TxnBeeKind, name) }
