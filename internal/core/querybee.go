package core

import (
	"microspec/internal/expr"
	"microspec/internal/types"
)

// This file is the Bee Maker's query-bee path. EVP (evaluate predicate)
// and EVJ (evaluate join) routines are assembled from pre-compiled,
// pre-enumerated routine variants ("all possible combinations ... can be
// enumerated and compiled ahead of time"); creating a query bee only
// selects variants and inserts the query's constants — attribute
// ordinals, comparison operators, literal values — into them, never
// invoking a compiler during query preparation.

// predFunc is a compiled predicate fragment: straight-line evaluation
// with all constants baked, no tree walk, no per-node dispatch.
type predFunc func(row expr.Row) types.Datum

var (
	dTrue  = types.NewBool(true)
	dFalse = types.NewBool(false)
)

// compilePred lowers a supported expression tree to a predFunc and its
// abstract per-invocation instruction cost. It returns (nil, 0) for
// shapes outside the snippet library (subqueries, outer references),
// which keeps the generic interpreter in charge — the paper's fallback.
func compilePred(e expr.Expr) (predFunc, int64) {
	f, terms := compileNode(e)
	if f == nil {
		return nil, 0
	}
	return f, int64(evpBaseCost) + int64(terms)*int64(evpTermCost)
}

// Cost constants re-exported locally to avoid importing profile here and
// in the hot closures (the wrapper in core.go charges once per call).
const (
	evpBaseCost = 13 // profile.EVPBase
	evpTermCost = 7  // profile.EVPTerm
)

// compileNode returns the compiled fragment and the number of terms it
// contains, or (nil, 0) if unsupported.
func compileNode(e expr.Expr) (predFunc, int) {
	switch n := e.(type) {
	case *expr.Const:
		d := n.D
		return func(expr.Row) types.Datum { return d }, 0

	case *expr.Var:
		idx := n.Idx
		return func(row expr.Row) types.Datum { return row[idx] }, 0

	case *expr.Param:
		// Prepared-statement parameter: the closure reads the slot at call
		// time, so one compiled bee serves every EXECUTE — re-binding the
		// parameters never recompiles.
		slot, idx := n.Slot, n.Idx
		return func(expr.Row) types.Datum { return slot.Vals[idx] }, 0

	case *expr.Cmp:
		return compileCmp(n)

	case *expr.And:
		kids := make([]predFunc, len(n.Kids))
		total := 0
		for i, k := range n.Kids {
			f, t := compileNode(k)
			if f == nil {
				return nil, 0
			}
			kids[i] = f
			total += t
		}
		return func(row expr.Row) types.Datum {
			sawNull := false
			for _, k := range kids {
				v := k(row)
				if v.IsNull() {
					sawNull = true
					continue
				}
				if !v.Bool() {
					return dFalse
				}
			}
			if sawNull {
				return types.Null
			}
			return dTrue
		}, total + 1

	case *expr.Or:
		kids := make([]predFunc, len(n.Kids))
		total := 0
		for i, k := range n.Kids {
			f, t := compileNode(k)
			if f == nil {
				return nil, 0
			}
			kids[i] = f
			total += t
		}
		return func(row expr.Row) types.Datum {
			sawNull := false
			for _, k := range kids {
				v := k(row)
				if v.IsNull() {
					sawNull = true
					continue
				}
				if v.Bool() {
					return dTrue
				}
			}
			if sawNull {
				return types.Null
			}
			return dFalse
		}, total + 1

	case *expr.Not:
		f, t := compileNode(n.Kid)
		if f == nil {
			return nil, 0
		}
		return func(row expr.Row) types.Datum {
			v := f(row)
			if v.IsNull() {
				return types.Null
			}
			if v.Bool() {
				return dFalse
			}
			return dTrue
		}, t + 1

	case *expr.IsNull:
		f, t := compileNode(n.Kid)
		if f == nil {
			return nil, 0
		}
		return func(row expr.Row) types.Datum {
			if f(row).IsNull() {
				return dTrue
			}
			return dFalse
		}, t + 1

	case *expr.Like:
		f, t := compileNode(n.Kid)
		if f == nil {
			return nil, 0
		}
		pattern, negate := n.Pattern, n.Negate
		return func(row expr.Row) types.Datum {
			v := f(row)
			if v.IsNull() {
				return types.Null
			}
			m := expr.MatchLike(v.Str(), pattern)
			if m != negate {
				return dTrue
			}
			return dFalse
		}, t + 2

	case *expr.InList:
		f, t := compileNode(n.Kid)
		if f == nil {
			return nil, 0
		}
		items, negate := n.Items, n.Negate
		return func(row expr.Row) types.Datum {
			v := f(row)
			if v.IsNull() {
				return types.Null
			}
			found := false
			for i := range items {
				if v.Compare(items[i]) == 0 {
					found = true
					break
				}
			}
			if found != negate {
				return dTrue
			}
			return dFalse
		}, t + len(items)/2 + 1

	case *expr.Arith:
		lf, lt := compileNode(n.L)
		rf, rt := compileNode(n.R)
		if lf == nil || rf == nil {
			return nil, 0
		}
		op := n.Op
		return func(row expr.Row) types.Datum {
			l, r := lf(row), rf(row)
			if l.IsNull() || r.IsNull() {
				return types.Null
			}
			return expr.ApplyArith(op, l, r)
		}, lt + rt + 1

	case *expr.DateArith:
		lf, lt := compileNode(n.L)
		if lf == nil {
			return nil, 0
		}
		iv, sub := n.Iv, n.Sub
		return func(row expr.Row) types.Datum {
			l := lf(row)
			if l.IsNull() {
				return types.Null
			}
			if sub {
				return types.NewDate(types.SubInterval(l.DateDays(), iv))
			}
			return types.NewDate(types.AddInterval(l.DateDays(), iv))
		}, lt + 1

	case *expr.ExtractYear:
		lf, lt := compileNode(n.Kid)
		if lf == nil {
			return nil, 0
		}
		return func(row expr.Row) types.Datum {
			l := lf(row)
			if l.IsNull() {
				return types.Null
			}
			return types.NewInt64(int64(types.DateYear(l.DateDays())))
		}, lt + 1

	case *expr.Neg:
		lf, lt := compileNode(n.Kid)
		if lf == nil {
			return nil, 0
		}
		return func(row expr.Row) types.Datum {
			v := lf(row)
			if v.IsNull() {
				return types.Null
			}
			if v.Kind() == types.KindFloat64 {
				return types.NewFloat64(-v.Float64())
			}
			return types.NewInt64(-v.Int64())
		}, lt + 1

	case *expr.Case:
		// CASE arms compile to a chain of compiled conditions — the shape
		// of the q1/q8/q12/q14 aggregate inputs.
		type arm struct {
			cond, result predFunc
		}
		arms := make([]arm, len(n.Whens))
		total := 0
		for i, w := range n.Whens {
			cf, ct := compileNode(w.Cond)
			rf, rt := compileNode(w.Result)
			if cf == nil || rf == nil {
				return nil, 0
			}
			arms[i] = arm{cond: cf, result: rf}
			total += ct + rt
		}
		var elseF predFunc
		if n.Else != nil {
			ef, et := compileNode(n.Else)
			if ef == nil {
				return nil, 0
			}
			elseF = ef
			total += et
		}
		return func(row expr.Row) types.Datum {
			for i := range arms {
				v := arms[i].cond(row)
				if !v.IsNull() && v.Bool() {
					return arms[i].result(row)
				}
			}
			if elseF != nil {
				return elseF(row)
			}
			return types.Null
		}, total + 1

	case *expr.Substring:
		kf, kt := compileNode(n.Kid)
		sf, st := compileNode(n.Start)
		pf, pt := compileNode(n.Span)
		if kf == nil || sf == nil || pf == nil {
			return nil, 0
		}
		sub := &expr.Substring{Kid: n.Kid, Start: n.Start, Span: n.Span}
		_ = sub
		return func(row expr.Row) types.Datum {
			v := kf(row)
			if v.IsNull() {
				return types.Null
			}
			start := sf(row)
			span := pf(row)
			if start.IsNull() || span.IsNull() {
				return types.Null
			}
			str := v.Str()
			from := int(start.Int64()) - 1
			cnt := int(span.Int64())
			if from < 0 {
				cnt += from
				from = 0
			}
			if from >= len(str) || cnt <= 0 {
				return types.NewString("")
			}
			if from+cnt > len(str) {
				cnt = len(str) - from
			}
			return types.NewString(str[from : from+cnt])
		}, kt + st + pt + 2

	default:
		// Subqueries and outer references stay with the generic
		// interpreter.
		return nil, 0
	}
}

// compileCmp selects the comparison variant for the operand kinds — the
// enumerated, pre-compiled comparator snippets — and bakes the operands.
// The dominant TPC-H shape, Var-op-Const over a numeric or date column,
// gets branch-free direct closures.
func compileCmp(n *expr.Cmp) (predFunc, int) {
	op := n.Op
	// Fast path: Var op Const.
	if v, ok := n.L.(*expr.Var); ok {
		if c, ok := n.R.(*expr.Const); ok {
			return compileVarConstCmp(op, v, c.D), 1
		}
		if c, ok := constFold(n.R); ok {
			return compileVarConstCmp(op, v, c), 1
		}
	}
	// Var op Var (same-row comparison).
	if vl, ok := n.L.(*expr.Var); ok {
		if vr, ok := n.R.(*expr.Var); ok {
			li, ri := vl.Idx, vr.Idx
			return func(row expr.Row) types.Datum {
				l, r := row[li], row[ri]
				if l.IsNull() || r.IsNull() {
					return types.Null
				}
				if expr.ApplyCmp(op, l, r) {
					return dTrue
				}
				return dFalse
			}, 1
		}
	}
	// General: compile both sides.
	lf, lt := compileNode(n.L)
	rf, rt := compileNode(n.R)
	if lf == nil || rf == nil {
		return nil, 0
	}
	return func(row expr.Row) types.Datum {
		l, r := lf(row), rf(row)
		if l.IsNull() || r.IsNull() {
			return types.Null
		}
		if expr.ApplyCmp(op, l, r) {
			return dTrue
		}
		return dFalse
	}, lt + rt + 1
}

// constFold evaluates an expression made only of constants (e.g.
// date '1995-01-01' + interval '3' month) at bee-creation time.
func constFold(e expr.Expr) (types.Datum, bool) {
	switch n := e.(type) {
	case *expr.Const:
		return n.D, true
	case *expr.DateArith:
		l, ok := constFold(n.L)
		if !ok || l.IsNull() {
			return types.Null, false
		}
		if n.Sub {
			return types.NewDate(types.SubInterval(l.DateDays(), n.Iv)), true
		}
		return types.NewDate(types.AddInterval(l.DateDays(), n.Iv)), true
	case *expr.Arith:
		l, ok1 := constFold(n.L)
		r, ok2 := constFold(n.R)
		if !ok1 || !ok2 || l.IsNull() || r.IsNull() {
			return types.Null, false
		}
		return expr.ApplyArith(n.Op, l, r), true
	case *expr.Neg:
		l, ok := constFold(n.Kid)
		if !ok || l.IsNull() {
			return types.Null, false
		}
		if l.Kind() == types.KindFloat64 {
			return types.NewFloat64(-l.Float64()), true
		}
		return types.NewInt64(-l.Int64()), true
	default:
		return types.Null, false
	}
}

// compileVarConstCmp bakes a (column ordinal, operator, constant) triple
// into a direct comparator — the paper's example specialization for
// "age <= 45": the attribute ID, the operator, and the constant are
// inserted directly into the executable code.
func compileVarConstCmp(op expr.CmpOp, v *expr.Var, c types.Datum) predFunc {
	idx := v.Idx
	switch v.T.Kind {
	case types.KindInt32, types.KindInt64, types.KindDate, types.KindBool:
		if c.Kind() == types.KindFloat64 {
			break // mixed int/float: use the generic comparator below
		}
		ci := c.Int64()
		switch op {
		case expr.EQ:
			return func(row expr.Row) types.Datum {
				d := row[idx]
				if d.IsNull() {
					return types.Null
				}
				if d.I == ci {
					return dTrue
				}
				return dFalse
			}
		case expr.NE:
			return func(row expr.Row) types.Datum {
				d := row[idx]
				if d.IsNull() {
					return types.Null
				}
				if d.I != ci {
					return dTrue
				}
				return dFalse
			}
		case expr.LT:
			return func(row expr.Row) types.Datum {
				d := row[idx]
				if d.IsNull() {
					return types.Null
				}
				if d.I < ci {
					return dTrue
				}
				return dFalse
			}
		case expr.LE:
			return func(row expr.Row) types.Datum {
				d := row[idx]
				if d.IsNull() {
					return types.Null
				}
				if d.I <= ci {
					return dTrue
				}
				return dFalse
			}
		case expr.GT:
			return func(row expr.Row) types.Datum {
				d := row[idx]
				if d.IsNull() {
					return types.Null
				}
				if d.I > ci {
					return dTrue
				}
				return dFalse
			}
		case expr.GE:
			return func(row expr.Row) types.Datum {
				d := row[idx]
				if d.IsNull() {
					return types.Null
				}
				if d.I >= ci {
					return dTrue
				}
				return dFalse
			}
		}
	case types.KindFloat64:
		cf := c.Float64()
		switch op {
		case expr.LT:
			return func(row expr.Row) types.Datum {
				d := row[idx]
				if d.IsNull() {
					return types.Null
				}
				if d.Float64() < cf {
					return dTrue
				}
				return dFalse
			}
		case expr.LE:
			return func(row expr.Row) types.Datum {
				d := row[idx]
				if d.IsNull() {
					return types.Null
				}
				if d.Float64() <= cf {
					return dTrue
				}
				return dFalse
			}
		case expr.GT:
			return func(row expr.Row) types.Datum {
				d := row[idx]
				if d.IsNull() {
					return types.Null
				}
				if d.Float64() > cf {
					return dTrue
				}
				return dFalse
			}
		case expr.GE:
			return func(row expr.Row) types.Datum {
				d := row[idx]
				if d.IsNull() {
					return types.Null
				}
				if d.Float64() >= cf {
					return dTrue
				}
				return dFalse
			}
		case expr.EQ, expr.NE:
			wantEq := op == expr.EQ
			return func(row expr.Row) types.Datum {
				d := row[idx]
				if d.IsNull() {
					return types.Null
				}
				if (d.Float64() == cf) == wantEq {
					return dTrue
				}
				return dFalse
			}
		}
	}
	// Generic comparator with baked operands (character kinds and mixed
	// numeric comparisons).
	return func(row expr.Row) types.Datum {
		d := row[idx]
		if d.IsNull() {
			return types.Null
		}
		if expr.ApplyCmp(op, d, c) {
			return dTrue
		}
		return dFalse
	}
}

// compileJoinKeys builds the EVJ hash/equality routines over baked key
// ordinals and types.
func compileJoinKeys(outerIdx, innerIdx []int, keyTypes []types.T) *JoinKeyFuncs {
	oIdx := append([]int(nil), outerIdx...)
	iIdx := append([]int(nil), innerIdx...)
	byVal := make([]bool, len(keyTypes))
	for i, t := range keyTypes {
		byVal[i] = t.ByValue()
	}
	hash := func(row expr.Row, idx []int) uint64 {
		h := uint64(14695981039346656037)
		for _, i := range idx {
			h = (h ^ row[i].Hash()) * 1099511628211
		}
		return h
	}
	jk := &JoinKeyFuncs{
		HashOuter: func(row expr.Row) uint64 { return hash(row, oIdx) },
		HashInner: func(row expr.Row) uint64 { return hash(row, iIdx) },
		Cost:      int64(15 + 8*len(oIdx)), // profile.EVJBase + n*EVJKey
	}
	// Single-key fast paths: the dominant TPC-H shape.
	if len(oIdx) == 1 && byVal[0] {
		o, i := oIdx[0], iIdx[0]
		jk.Match = func(outer, inner expr.Row) bool {
			a, b := outer[o], inner[i]
			if a.IsNull() || b.IsNull() {
				return false
			}
			return a.I == b.I
		}
		return jk
	}
	jk.Match = func(outer, inner expr.Row) bool {
		for k := range oIdx {
			a, b := outer[oIdx[k]], inner[iIdx[k]]
			if a.IsNull() || b.IsNull() {
				return false
			}
			if byVal[k] {
				if a.I != b.I {
					return false
				}
			} else if a.Compare(b) != 0 {
				return false
			}
		}
		return true
	}
	return jk
}

// compileIndexCmp builds the IDX comparator: per-position comparison
// variants selected once at bee creation, with prefix semantics matching
// btree.Compare (shorter keys bound longer ones).
func compileIndexCmp(keyTypes []types.T) func(a, b []types.Datum) int {
	byVal := make([]bool, len(keyTypes))
	for i, t := range keyTypes {
		byVal[i] = t.ByValue()
	}
	// Single by-value key: the dominant shape (integer primary keys).
	if len(byVal) == 1 && byVal[0] {
		return func(a, b []types.Datum) int {
			if len(a) == 0 || len(b) == 0 {
				return len(a) - len(b)
			}
			x, y := a[0], b[0]
			if x.IsNull() || y.IsNull() {
				return nullCmp(x, y)
			}
			switch {
			case x.I < y.I:
				return -1
			case x.I > y.I:
				return 1
			}
			return cmpLen(a, b)
		}
	}
	return func(a, b []types.Datum) int {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		for i := 0; i < n; i++ {
			x, y := a[i], b[i]
			if x.IsNull() || y.IsNull() {
				if c := nullCmp(x, y); c != 0 {
					return c
				}
				continue
			}
			if byVal[i] {
				switch {
				case x.I < y.I:
					return -1
				case x.I > y.I:
					return 1
				}
				continue
			}
			if c := x.Compare(y); c != 0 {
				return c
			}
		}
		return cmpLen(a, b)
	}
}

func nullCmp(x, y types.Datum) int {
	xn, yn := x.IsNull(), y.IsNull()
	switch {
	case xn && yn:
		return 0
	case xn:
		return -1
	default:
		return 1
	}
}

func cmpLen(a, b []types.Datum) int {
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}
