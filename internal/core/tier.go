package core

// This file implements bee tiering: the state machine the adaptive
// advisor (internal/advisor) drives to decide which query bees exist at
// all. Every EVP-family compile consults the tier table the same way it
// consults the quarantine, so tiering composes with the existing
// fallback guarantee: a refused compile means the generic interpreted
// path runs, with identical results.
//
// States (see docs/ADAPTIVE.md):
//
//	candidate  demand is being counted; compiles are refused while the
//	           advisor gate is on, so the stock path serves the query
//	compiled   the advisor promoted the bee; compiles proceed normally
//	pinned     persistently hot; exempt from cold-decay demotion
//	demoted    a guard assumption broke (quarantine, DDL, drift,
//	           negative measured benefit); compiles are refused even
//	           with the gate off, the cache entry is evicted, and —
//	           for sticky demotions — the key is written to the
//	           checkpoint manifest so a warm restart cannot resurrect it
//
// Hysteresis: a demoted entry holds its state for a configurable number
// of advisor cycles (hold), then re-enters candidate with zero heat —
// it must re-earn promotion, so a flapping guard cannot oscillate a bee
// in and out of the cache every cycle.

import (
	"sort"
	"sync"
	"sync/atomic"
)

// TierState is the advisor-visible lifecycle state of one bee.
type TierState uint8

// Tier states, in promotion order.
const (
	TierCandidate TierState = iota
	TierCompiled
	TierPinned
	TierDemoted
)

// String returns the lowercase state name used in JSON and shell output.
func (s TierState) String() string {
	switch s {
	case TierCandidate:
		return "candidate"
	case TierCompiled:
		return "compiled"
	case TierPinned:
		return "pinned"
	case TierDemoted:
		return "demoted"
	}
	return "unknown"
}

// TierInfo is one tier-table row, exported for the advisor and the
// /advisor endpoint.
type TierInfo struct {
	Kind      string    `json:"kind"`
	Name      string    `json:"name"`
	State     TierState `json:"-"`
	StateName string    `json:"state"`
	Heat      float64   `json:"heat"`
	Rels      []string  `json:"rels,omitempty"`
	Sticky    bool      `json:"sticky,omitempty"` // guard-break demotion (manifest-persisted)
	Hold      int       `json:"hold,omitempty"`   // cycles left before demoted → candidate
}

type tierEntry struct {
	state  TierState
	heat   float64
	rels   map[string]struct{}
	sticky bool
	hold   int
}

func (e *tierEntry) addRel(rel string) {
	if rel == "" {
		return
	}
	if e.rels == nil {
		e.rels = make(map[string]struct{}, 2)
	}
	e.rels[rel] = struct{}{}
}

// tierTable guards the tier state machine with its own mutex (like the
// quarantine): compiles consult it outside the Module lock.
type tierTable struct {
	mu   sync.Mutex
	gate atomic.Bool
	m    map[beeKey]*tierEntry
}

// allow reports whether a compile of key may proceed. With the gate off
// only a demoted entry refuses; with the gate on, unknown keys become
// candidates and accumulate demand until the advisor promotes them.
func (t *tierTable) allow(key beeKey, rel string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.m[key]
	if !t.gate.Load() {
		return e == nil || e.state != TierDemoted
	}
	if e == nil {
		if t.m == nil {
			t.m = make(map[beeKey]*tierEntry)
		}
		e = &tierEntry{state: TierCandidate}
		t.m[key] = e
	}
	e.addRel(rel)
	switch e.state {
	case TierCompiled, TierPinned:
		return true
	case TierDemoted:
		return false
	default:
		e.heat++
		return false
	}
}

// touch records demand from an executed plan that carried this bee.
// Plans only report compiled bees, so an unknown key means the bee was
// compiled before the gate went up — adopt it as compiled.
func (t *tierTable) touch(key beeKey, rels []string, weight float64) {
	if !t.gate.Load() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.m[key]
	if e == nil {
		if t.m == nil {
			t.m = make(map[beeKey]*tierEntry)
		}
		e = &tierEntry{state: TierCompiled}
		t.m[key] = e
	}
	for _, r := range rels {
		e.addRel(r)
	}
	e.heat += weight
}

// want records unserved demand: a plan executed a predicate the gate
// kept on the stock path. Only candidates accumulate (a demoted entry
// is holding, a promoted one should have compiled).
func (t *tierTable) want(key beeKey, rels []string, weight float64) {
	if !t.gate.Load() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.m[key]
	if e == nil {
		if t.m == nil {
			t.m = make(map[beeKey]*tierEntry)
		}
		e = &tierEntry{state: TierCandidate}
		t.m[key] = e
	}
	if e.state != TierCandidate {
		return
	}
	for _, r := range rels {
		e.addRel(r)
	}
	e.heat += weight
}

func (t *tierTable) promote(key beeKey) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.m[key]
	if e == nil || e.state != TierCandidate {
		return false
	}
	e.state = TierCompiled
	return true
}

func (t *tierTable) pin(key beeKey) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.m[key]
	if e == nil || e.state != TierCompiled {
		return false
	}
	e.state = TierPinned
	return true
}

// demote moves a compiled or pinned entry to demoted. It returns false
// if the entry was not in a promoted state, which is what makes every
// demotion trigger exactly-once: a condition that persists across
// cycles (a quarantine flag, a drifted sketch) finds the entry already
// demoted on the second look.
func (t *tierTable) demote(key beeKey, sticky bool, hold int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.m[key]
	if e == nil {
		if sticky {
			// Restoring a manifest denylist entry for a bee never seen
			// this run still needs a row to refuse future compiles.
			if t.m == nil {
				t.m = make(map[beeKey]*tierEntry)
			}
			t.m[key] = &tierEntry{state: TierDemoted, sticky: true, hold: hold}
			return true
		}
		return false
	}
	if e.state != TierCompiled && e.state != TierPinned {
		return false
	}
	e.state = TierDemoted
	e.sticky = sticky
	e.hold = hold
	e.heat = 0
	return true
}

// decay ages every entry: heat is multiplied by factor, and demoted
// entries count down their hold, re-entering candidate (with zero heat)
// when it expires.
func (t *tierTable) decay(factor float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.m {
		e.heat *= factor
		if e.state == TierDemoted && e.hold > 0 {
			e.hold--
			if e.hold == 0 {
				e.state = TierCandidate
				e.sticky = false
				e.heat = 0
			}
		}
	}
}

func (t *tierTable) get(key beeKey) (TierState, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.m[key]
	if e == nil {
		return TierCandidate, false
	}
	return e.state, true
}

func (t *tierTable) snapshot() []TierInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TierInfo, 0, len(t.m))
	for k, e := range t.m {
		info := TierInfo{
			Kind: k.kind, Name: k.name,
			State: e.state, StateName: e.state.String(),
			Heat: e.heat, Sticky: e.sticky, Hold: e.hold,
		}
		for r := range e.rels {
			info.Rels = append(info.Rels, r)
		}
		sort.Strings(info.Rels)
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Heat != out[j].Heat {
			return out[i].Heat > out[j].Heat
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// SetTierGating turns the advisor's compile gate on or off. With the
// gate off (the default) bees compile on first use exactly as before
// the advisor existed; sticky demotions are honored either way.
func (m *Module) SetTierGating(on bool) { m.tier.gate.Store(on) }

// TierGating reports whether the compile gate is up.
func (m *Module) TierGating() bool { return m.tier.gate.Load() }

// TierTouch records demand for a bee observed in an executed plan,
// associating it with the tables the plan read. weight lets the caller
// over-count queries that would benefit most (e.g. slow ones).
func (m *Module) TierTouch(kind, name string, rels []string, weight float64) {
	m.tier.touch(beeKey{kind: kind, name: name}, rels, weight)
}

// TierWant records unserved demand for a gated (still-candidate)
// predicate observed in an executed plan. Counted per execution, unlike
// the compile-time count, so prepared statements — which plan once —
// still accumulate heat.
func (m *Module) TierWant(kind, name string, rels []string, weight float64) {
	m.tier.want(beeKey{kind: kind, name: name}, rels, weight)
}

// TierPromote moves a candidate to compiled so its next compile
// proceeds. The caller must invalidate cached plans for it to take
// effect.
func (m *Module) TierPromote(kind, name string) bool {
	return m.tier.promote(beeKey{kind: kind, name: name})
}

// TierPin marks a compiled bee as persistently hot, exempting it from
// cold-decay demotion.
func (m *Module) TierPin(kind, name string) bool {
	return m.tier.pin(beeKey{kind: kind, name: name})
}

// TierDemote moves a promoted bee back to the stock path and evicts it
// from the bee cache. sticky demotions survive restarts via the
// checkpoint manifest; hold is the hysteresis in advisor cycles before
// the entry may become a candidate again. Returns true only on an
// actual promoted→demoted transition.
func (m *Module) TierDemote(kind, name string, sticky bool, hold int) bool {
	key := beeKey{kind: kind, name: name}
	if !m.tier.demote(key, sticky, hold) {
		return false
	}
	m.cache.drop(key)
	return true
}

// TierDecay ages all tier heat by factor and advances demotion holds.
func (m *Module) TierDecay(factor float64) { m.tier.decay(factor) }

// TierOf returns the tier state of a bee and whether it is tracked.
func (m *Module) TierOf(kind, name string) (TierState, bool) {
	return m.tier.get(beeKey{kind: kind, name: name})
}

// TierSnapshot returns every tracked tier entry, hottest first.
func (m *Module) TierSnapshot() []TierInfo { return m.tier.snapshot() }

// DemotedBees returns the sticky-demoted keys for the checkpoint
// manifest, sorted for deterministic output.
func (m *Module) DemotedBees() []TierInfo {
	all := m.tier.snapshot()
	out := all[:0]
	for _, ti := range all {
		if ti.State == TierDemoted && ti.Sticky {
			out = append(out, ti)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// RestoreDemotedBee re-installs a manifest denylist entry during
// recovery, before the warm-restart replay re-prepares manifest
// statements — so the replay's compiles find the refusal in place.
func (m *Module) RestoreDemotedBee(kind, name string, hold int) {
	m.tier.demote(beeKey{kind: kind, name: name}, true, hold)
}
