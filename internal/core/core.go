// Package core implements the paper's contribution: the Generic Bee
// Module. It creates and manages bees — specialized code fragments
// obtained by dynamic specialization on variables that are invariant
// across the query-evaluation loop — and exposes the API the DBMS calls
// instead of its generic routines.
//
// The taxonomy (paper §III) maps onto this package as follows:
//
//   - Relation bees (created at schema-definition time) carry the GCL
//     ("GetColumnsToLongs", the specialized slot_deform_tuple) and SCL
//     ("SetColumnsFromLongs", the specialized heap_fill_tuple) routines,
//     specialized on attribute count, lengths, alignments, offsets, and
//     nullability. See relbee.go.
//
//   - Tuple bees (created during insert/update) dictionary-encode
//     annotated low-cardinality attribute values into per-relation data
//     sections; stored tuples carry a beeID and omit those values. See
//     tuplebee.go.
//
//   - Query bees (created at plan time) carry the EVP (specialized
//     predicate evaluation) and EVJ (specialized join qualification)
//     routines, with operators, attribute ordinals and constants inserted
//     into pre-compiled routine variants. See querybee.go.
//
// Bee creation never invokes a compiler in the query path: every routine
// is assembled from pre-compiled typed snippets (package-level closures)
// parameterized with the specializing values — the Go analogue of the
// paper's pre-compiled ELF templates with constants patched into the
// object code. The bee cache, placement optimizer, and collector live in
// cache.go.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"microspec/internal/catalog"
	"microspec/internal/expr"
	"microspec/internal/profile"
	"microspec/internal/storage/tuple"
	"microspec/internal/types"
)

// RoutineSet selects which bee routines the module applies, mirroring the
// paper's Figure 7 ablation (GCL / GCL+EVP / GCL+EVP+EVJ). SCL rides with
// GCL on the modification path. TupleBees additionally enables
// attribute-value specialization; it changes the stored tuple format of
// annotated relations, so it must be chosen before data is loaded.
type RoutineSet struct {
	GCL       bool
	SCL       bool
	EVP       bool
	EVJ       bool
	TupleBees bool

	// EVA and IDX are the extensions the paper's §VIII names as future
	// work: micro-specialized aggregation (compiled aggregate-input
	// evaluation, see CompileScalar) and micro-specialized index-key
	// comparison (see CompileIndexCmp).
	EVA bool
	IDX bool
}

// AllRoutines enables every micro-specialization, including the paper's
// future-work extensions (EVA, IDX).
var AllRoutines = RoutineSet{GCL: true, SCL: true, EVP: true, EVJ: true, TupleBees: true, EVA: true, IDX: true}

// Stock disables every micro-specialization (the stock DBMS).
var Stock = RoutineSet{}

// Stats counts bee-module activity.
type Stats struct {
	RelationBees int
	TupleBees    int
	QueryBees    int
	// TxnBees counts compiled whole-transaction bees (see txnbee.go).
	TxnBees  int
	GCLCalls int64
	SCLCalls int64
	EVPCalls int64
	EVJCalls int64
	EVACalls int64
	// Quarantined is the cumulative count of quarantine events (bees
	// pulled from service after a panic); QuarantinedNow is how many are
	// currently out of service.
	Quarantined    int64
	QuarantinedNow int
}

// callCounters holds the per-tuple invocation counts updated on hot
// paths; they are atomics so the per-tuple routines never take the
// module lock.
type callCounters struct {
	gcl, scl, evp, evj, eva atomic.Int64
}

// Module is the Generic Bee Module: one per database.
type Module struct {
	mu       sync.RWMutex
	routines RoutineSet
	relBees  map[catalog.RelID]*RelationBee
	cache    *BeeCache
	place    *Placement
	stats    Stats
	calls    callCounters
	quar     quarantine
	inject   panicInjector
	usage    usageTable
	tier     tierTable
}

// NewModule returns a bee module with the given routine set.
func NewModule(rs RoutineSet) *Module {
	return &Module{
		routines: rs,
		relBees:  make(map[catalog.RelID]*RelationBee),
		cache:    newBeeCache(),
		place:    newPlacement(),
	}
}

// Routines returns the active routine set.
func (m *Module) Routines() RoutineSet {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.routines
}

// SetRoutines reconfigures which routines are invoked. Disabling
// TupleBees after relations were created with specialized storage is
// rejected: the stored format depends on it.
func (m *Module) SetRoutines(rs RoutineSet) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !rs.TupleBees && m.routines.TupleBees {
		for _, rb := range m.relBees {
			if rb.DataSections != nil {
				return fmt.Errorf("core: cannot disable tuple bees: relation %s has specialized storage", rb.Rel.Name)
			}
		}
	}
	if !rs.GCL {
		for _, rb := range m.relBees {
			if rb.DataSections != nil {
				return fmt.Errorf("core: cannot disable GCL: relation %s has specialized storage that only GCL can deform", rb.Rel.Name)
			}
		}
	}
	m.routines = rs
	return nil
}

// SpecMaskFor computes the tuple-bee storage mask for a schema: with
// TupleBees enabled, every annotated low-cardinality attribute is
// specialized out of the stored tuple. The engine passes the result to
// catalog.CreateRelation. A nil return means stock storage.
func (m *Module) SpecMaskFor(schema catalog.Schema) *catalog.SpecInfo {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if !m.routines.TupleBees {
		return nil
	}
	mask := make([]bool, len(schema.Attrs))
	n := 0
	for i, a := range schema.Attrs {
		if a.LowCard && a.NotNull {
			mask[i] = true
			n++
		}
	}
	if n == 0 {
		return nil
	}
	return &catalog.SpecInfo{Specialized: mask, NumSpecialized: n}
}

// OnCreateRelation is called by the DDL path after the relation is
// cataloged ("Relation bees are created at relation schema definition
// time"). It builds the relation bee (GCL and SCL routines) and, if the
// relation has specialized storage, its data sections.
func (m *Module) OnCreateRelation(rel *catalog.Relation) *RelationBee {
	m.mu.Lock()
	defer m.mu.Unlock()
	rb := makeRelationBee(rel)
	m.relBees[rel.ID] = rb
	m.stats.RelationBees++
	m.cache.put(beeKey{kind: "relation", name: rel.Name}, rb.Source)
	m.place.assign(rb.Source)
	// Nullable relations have no specialized deform program (gclCost nil)
	// and thus no deform benefit to attribute.
	if natts := len(rel.Attrs); rb.gclCost != nil {
		m.usage.register(beeKey{kind: "relation", name: rel.Name},
			rb.gclCost[natts], genericDeformCost(rel, natts))
	}
	return rb
}

// OnDropRelation garbage-collects the relation's bees (the Bee Collector:
// "garbage collects dead bees, e.g., those not used anymore due to
// relation deletion").
func (m *Module) OnDropRelation(rel *catalog.Relation) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.relBees[rel.ID]; ok {
		delete(m.relBees, rel.ID)
		m.cache.drop(beeKey{kind: "relation", name: rel.Name})
	}
}

// OnSchemaChange rebuilds a relation bee after the relation's schema
// metadata changed (the Bee Reconstruction component).
func (m *Module) OnSchemaChange(rel *catalog.Relation) *RelationBee {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.relBees[rel.ID]
	rb := makeRelationBee(rel)
	if old != nil {
		rb.DataSections = old.DataSections // data sections survive metadata-only changes
	}
	m.relBees[rel.ID] = rb
	m.cache.put(beeKey{kind: "relation", name: rel.Name}, rb.Source)
	return rb
}

// RelationBeeFor returns the relation bee, or nil if none exists.
func (m *Module) RelationBeeFor(rel *catalog.Relation) *RelationBee {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.relBees[rel.ID]
}

// DeformFunc extracts the first natts attributes of a stored tuple into
// values — the signature shared by the generic slot_deform_tuple wrapper
// and the GCL bee routine.
type DeformFunc func(tup []byte, values []types.Datum, natts int, prof *profile.Counters)

// Deformer returns the deform routine the executor should use for rel:
// the GCL bee when enabled (the Bee Caller path), otherwise the generic
// interpreted loop. Relations with specialized storage require GCL.
func (m *Module) Deformer(rel *catalog.Relation) (DeformFunc, error) {
	m.mu.RLock()
	rb := m.relBees[rel.ID]
	useGCL := m.routines.GCL
	m.mu.RUnlock()
	if useGCL && rb != nil {
		return rb.GCL, nil
	}
	if rel.Spec != nil {
		return nil, fmt.Errorf("core: relation %s has specialized storage but GCL is disabled", rel.Name)
	}
	return func(tup []byte, values []types.Datum, natts int, prof *profile.Counters) {
		tuple.SlotDeform(rel, tup, values, natts, prof)
	}, nil
}

// BatchDeformFunc is the batch form of DeformFunc: it extracts the first
// natts attributes of every tuple in tups into the corresponding rows of
// out (len(out) ≥ len(tups), each row at least natts wide). The batch
// executor hands it a whole pinned heap page at a time, so the deform
// loop — specialized or generic — runs without re-entering the caller
// per tuple.
type BatchDeformFunc func(tups [][]byte, out []expr.Row, natts int, prof *profile.Counters)

// genericBatchDeform wraps the generic interpreted deform loop in the
// batch signature (the stock engine's page-at-a-time path).
func genericBatchDeform(rel *catalog.Relation) BatchDeformFunc {
	return func(tups [][]byte, out []expr.Row, natts int, prof *profile.Counters) {
		for i, tup := range tups {
			tuple.SlotDeform(rel, tup, out[i], natts, prof)
		}
	}
}

// BatchDeformer returns the page-wise deform routine for rel: the
// relation bee's DeformBatch form when GCL is enabled, otherwise the
// generic loop wrapped in the batch signature. Mirrors Deformer.
func (m *Module) BatchDeformer(rel *catalog.Relation) (BatchDeformFunc, error) {
	m.mu.RLock()
	rb := m.relBees[rel.ID]
	useGCL := m.routines.GCL
	m.mu.RUnlock()
	if useGCL && rb != nil {
		return rb.DeformBatch, nil
	}
	if rel.Spec != nil {
		return nil, fmt.Errorf("core: relation %s has specialized storage but GCL is disabled", rel.Name)
	}
	return genericBatchDeform(rel), nil
}

// FormFunc forms the stored bytes of a tuple from its values.
type FormFunc func(values []types.Datum, prof *profile.Counters) ([]byte, error)

// Former returns the fill routine for rel: tuple-bee resolution plus the
// SCL bee when enabled, the generic heap_fill_tuple otherwise. The engine
// caches the returned closure so the per-tuple path never takes the
// module lock.
func (m *Module) Former(rel *catalog.Relation) FormFunc {
	m.mu.RLock()
	rb := m.relBees[rel.ID]
	useSCL := m.routines.SCL
	m.mu.RUnlock()

	natts := len(rel.Attrs)
	var ds *DataSections
	if rb != nil {
		ds = rb.DataSections
	}
	if useSCL && rb != nil {
		scl := rb.SCL
		counter := &m.calls.scl
		return func(values []types.Datum, prof *profile.Counters) ([]byte, error) {
			if len(values) != natts {
				return nil, fmt.Errorf("relation %s: %d values for %d attributes", rel.Name, len(values), natts)
			}
			var beeID uint16
			if ds != nil {
				var err error
				beeID, err = ds.ResolveBee(values, prof)
				if err != nil {
					return nil, err
				}
			}
			counter.Add(1)
			return scl(values, beeID, prof)
		}
	}
	return func(values []types.Datum, prof *profile.Counters) ([]byte, error) {
		if len(values) != natts {
			return nil, fmt.Errorf("relation %s: %d values for %d attributes", rel.Name, len(values), natts)
		}
		var beeID uint16
		if ds != nil {
			var err error
			beeID, err = ds.ResolveBee(values, prof)
			if err != nil {
				return nil, err
			}
		}
		return tuple.Form(rel, values, beeID, prof)
	}
}

// FormTuple forms the stored bytes for values — the uncached convenience
// entry point (the engine caches Former closures for hot paths).
func (m *Module) FormTuple(rel *catalog.Relation, values []types.Datum, prof *profile.Counters) ([]byte, error) {
	return m.Former(rel)(values, prof)
}

// CompiledPred is an EVP bee routine: a specialized predicate evaluator.
type CompiledPred func(row expr.Row, ctx *expr.Ctx) types.Datum

// CompilePredicate attempts to create an EVP query bee for e. It returns
// (nil, false) when EVP is disabled or the expression contains shapes the
// snippet library does not cover (e.g. subqueries), in which case the
// executor keeps the generic interpreted evaluator — exactly the paper's
// fallback behaviour.
func (m *Module) CompilePredicate(e expr.Expr) (CompiledPred, bool) {
	m.mu.RLock()
	enabled := m.routines.EVP
	m.mu.RUnlock()
	if !enabled {
		return nil, false
	}
	name := e.String()
	if m.quar.has(beeKey{kind: "query/EVP", name: name}) {
		return nil, false // quarantined after a panic: generic fallback
	}
	if !m.tier.allow(beeKey{kind: "query/EVP", name: name}, "") {
		return nil, false // gated by the advisor tier table: stock path
	}
	p, cost := compilePred(e)
	if p == nil {
		return nil, false
	}
	m.mu.Lock()
	m.stats.QueryBees++
	m.mu.Unlock()
	m.cache.put(beeKey{kind: "query/EVP", name: name}, "EVP "+name)
	m.usage.register(beeKey{kind: "query/EVP", name: name}, cost, stockExprCost(e))
	wrapped := func(row expr.Row, ctx *expr.Ctx) types.Datum {
		m.maybePanic("query/EVP", name)
		ctx.Prof.Add(profile.CompExpr, cost)
		return p(row)
	}
	return wrapped, true
}

// CompiledBatchPred is the batch form of an EVP bee: it evaluates the
// predicate over rows — restricted to the cand selection vector when
// cand is non-nil — and appends the ordinals of passing rows to out,
// returning the extended slice. One invocation filters a whole batch, so
// the bee-call wrapper and cost accounting run once per page instead of
// once per tuple.
type CompiledBatchPred func(rows []expr.Row, cand []int32, out []int32, ctx *expr.Ctx) []int32

// CompileBatchPredicate attempts to create the batch form of an EVP
// query bee for e. Coverage, quarantine, and fallback behaviour match
// CompilePredicate: (nil, false) means the executor keeps the generic
// interpreter, evaluated per row over the batch.
func (m *Module) CompileBatchPredicate(e expr.Expr) (CompiledBatchPred, bool) {
	m.mu.RLock()
	enabled := m.routines.EVP
	m.mu.RUnlock()
	if !enabled {
		return nil, false
	}
	name := e.String()
	if m.quar.has(beeKey{kind: "query/EVP", name: name}) {
		return nil, false // quarantined after a panic: generic fallback
	}
	if !m.tier.allow(beeKey{kind: "query/EVP", name: name}, "") {
		return nil, false // gated by the advisor tier table: stock path
	}
	p, cost := compilePred(e)
	if p == nil {
		return nil, false
	}
	m.mu.Lock()
	m.stats.QueryBees++
	m.mu.Unlock()
	m.cache.put(beeKey{kind: "query/EVP", name: name}, "EVP "+name)
	m.usage.register(beeKey{kind: "query/EVP", name: name}, cost, stockExprCost(e))
	wrapped := func(rows []expr.Row, cand []int32, out []int32, ctx *expr.Ctx) []int32 {
		m.maybePanic("query/EVP", name)
		if cand != nil {
			ctx.Prof.Add(profile.CompExpr, cost*int64(len(cand)))
			for _, i := range cand {
				if v := p(rows[i]); !v.IsNull() && v.Bool() {
					out = append(out, i)
				}
			}
			return out
		}
		ctx.Prof.Add(profile.CompExpr, cost*int64(len(rows)))
		for i := range rows {
			if v := p(rows[i]); !v.IsNull() && v.Bool() {
				out = append(out, int32(i))
			}
		}
		return out
	}
	return wrapped, true
}

// CompileScalar attempts to create an EVA query bee: a specialized
// evaluator for an aggregate's input expression, with the same snippet
// coverage as EVP (the paper's §VIII names aggregation as the next
// micro-specialization target; the per-tuple hot path of aggregation is
// evaluating the transition input).
func (m *Module) CompileScalar(e expr.Expr) (CompiledPred, bool) {
	m.mu.RLock()
	enabled := m.routines.EVA
	m.mu.RUnlock()
	if !enabled || e == nil {
		return nil, false
	}
	name := e.String()
	if m.quar.has(beeKey{kind: "query/EVA", name: name}) {
		return nil, false
	}
	p, cost := compilePred(e)
	if p == nil {
		return nil, false
	}
	m.mu.Lock()
	m.stats.QueryBees++
	m.mu.Unlock()
	m.cache.put(beeKey{kind: "query/EVA", name: name}, "EVA "+name)
	m.usage.register(beeKey{kind: "query/EVA", name: name}, cost, stockExprCost(e))
	wrapped := func(row expr.Row, ctx *expr.Ctx) types.Datum {
		m.maybePanic("query/EVA", name)
		ctx.Prof.Add(profile.CompExpr, cost)
		return p(row)
	}
	return wrapped, true
}

// CompiledBatchScalar is the batch form of an EVA bee: one invocation
// evaluates the aggregate's input expression for every live row of a
// batch (cand nil means all of rows), appending the results to out in
// live-row order. As with CompiledBatchPred, the bee-call wrapper and
// cost accounting run once per page instead of once per tuple.
type CompiledBatchScalar func(rows []expr.Row, cand []int32, out []types.Datum, ctx *expr.Ctx) []types.Datum

// CompileBatchScalar attempts to create the batch form of an EVA query
// bee for e. Coverage, quarantine, and fallback behaviour match
// CompileScalar; it shares the EVA cache key, so quarantining the
// expression disables both forms.
func (m *Module) CompileBatchScalar(e expr.Expr) (CompiledBatchScalar, bool) {
	m.mu.RLock()
	enabled := m.routines.EVA
	m.mu.RUnlock()
	if !enabled || e == nil {
		return nil, false
	}
	name := e.String()
	if m.quar.has(beeKey{kind: "query/EVA", name: name}) {
		return nil, false
	}
	p, cost := compilePred(e)
	if p == nil {
		return nil, false
	}
	m.cache.put(beeKey{kind: "query/EVA", name: name}, "EVA "+name)
	m.usage.register(beeKey{kind: "query/EVA", name: name}, cost, stockExprCost(e))
	// Bare column references skip the evaluator closure entirely: the
	// batch loop copies the column straight out of the rows. Cost and
	// quarantine accounting are unchanged.
	if v, ok := e.(*expr.Var); ok {
		idx := v.Idx
		wrapped := func(rows []expr.Row, cand []int32, out []types.Datum, ctx *expr.Ctx) []types.Datum {
			m.maybePanic("query/EVA", name)
			if cand != nil {
				ctx.Prof.Add(profile.CompExpr, cost*int64(len(cand)))
				for _, i := range cand {
					out = append(out, rows[i][idx])
				}
				return out
			}
			ctx.Prof.Add(profile.CompExpr, cost*int64(len(rows)))
			for i := range rows {
				out = append(out, rows[i][idx])
			}
			return out
		}
		return wrapped, true
	}
	wrapped := func(rows []expr.Row, cand []int32, out []types.Datum, ctx *expr.Ctx) []types.Datum {
		m.maybePanic("query/EVA", name)
		if cand != nil {
			ctx.Prof.Add(profile.CompExpr, cost*int64(len(cand)))
			for _, i := range cand {
				out = append(out, p(rows[i]))
			}
			return out
		}
		ctx.Prof.Add(profile.CompExpr, cost*int64(len(rows)))
		for i := range rows {
			out = append(out, p(rows[i]))
		}
		return out
	}
	return wrapped, true
}

// CompileIndexCmp attempts to create an IDX bee: a key comparator with
// the per-position kinds baked in, replacing the generic per-datum kind
// dispatch in B+tree descents (the index analogue of the paper's §VIII
// indexing target). The returned comparator handles prefix keys like
// btree.Compare.
func (m *Module) CompileIndexCmp(keyTypes []types.T) (func(a, b []types.Datum) int, bool) {
	m.mu.RLock()
	enabled := m.routines.IDX
	m.mu.RUnlock()
	if !enabled || len(keyTypes) == 0 {
		return nil, false
	}
	cmp := compileIndexCmp(keyTypes)
	m.mu.Lock()
	m.stats.QueryBees++
	m.mu.Unlock()
	m.cache.put(beeKey{kind: "index/IDX", name: fmt.Sprintf("cmp%d", len(keyTypes))}, "IDX")
	return cmp, true
}

// JoinKeyFuncs is an EVJ bee routine for hash joins: specialized hash and
// equality over baked key ordinals and types.
type JoinKeyFuncs struct {
	// HashOuter hashes the outer row's key columns.
	HashOuter func(row expr.Row) uint64
	// HashInner hashes the inner row's key columns.
	HashInner func(row expr.Row) uint64
	// Match reports whether outer and inner rows join.
	Match func(outer, inner expr.Row) bool
	// Cost is the abstract instruction cost of one Match invocation.
	Cost int64
}

// CompileJoinKeys attempts to create an EVJ query bee for an equi-join on
// the given key ordinals. Returns (nil, false) when EVJ is disabled.
func (m *Module) CompileJoinKeys(outerIdx, innerIdx []int, keyTypes []types.T) (*JoinKeyFuncs, bool) {
	m.mu.RLock()
	enabled := m.routines.EVJ
	m.mu.RUnlock()
	if !enabled || len(outerIdx) == 0 {
		return nil, false
	}
	name := fmt.Sprintf("keys%v", outerIdx)
	if m.quar.has(beeKey{kind: "query/EVJ", name: name}) {
		return nil, false
	}
	jk := compileJoinKeys(outerIdx, innerIdx, keyTypes)
	m.mu.Lock()
	m.stats.QueryBees++
	m.mu.Unlock()
	m.cache.put(beeKey{kind: "query/EVJ", name: name}, "EVJ")
	m.usage.register(beeKey{kind: "query/EVJ", name: name}, jk.Cost, stockJoinQualCost(len(outerIdx)))
	inner := jk.Match
	jk.Match = func(outer, innerRow expr.Row) bool {
		m.maybePanic("query/EVJ", name)
		return inner(outer, innerRow)
	}
	return jk, true
}

// NoteGCLCall lets the executor report bee invocations for the module's
// statistics without taking its lock on the per-tuple path.
func (m *Module) NoteGCLCall(n int64) { m.calls.gcl.Add(n) }

// NoteEVPCall reports n EVP invocations.
func (m *Module) NoteEVPCall(n int64) { m.calls.evp.Add(n) }

// NoteEVJCall reports n EVJ invocations.
func (m *Module) NoteEVJCall(n int64) { m.calls.evj.Add(n) }

// NoteEVACall reports n EVA invocations.
func (m *Module) NoteEVACall(n int64) { m.calls.eva.Add(n) }

// NoteParallelPlan is called by the planner when it marks a plan
// parallel-safe: every bee closure in the plan was freshly instantiated
// per partition worker, so the placement optimizer records the plan as
// duplicated across cores.
func (m *Module) NoteParallelPlan() { m.place.MarkParallelSafe() }

// Stats returns a snapshot of bee-module statistics.
func (m *Module) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s := m.stats
	s.GCLCalls = m.calls.gcl.Load()
	s.SCLCalls = m.calls.scl.Load()
	s.EVPCalls = m.calls.evp.Load()
	s.EVJCalls = m.calls.evj.Load()
	s.EVACalls = m.calls.eva.Load()
	s.Quarantined = m.QuarantinedBees()
	s.QuarantinedNow = m.quar.size()
	s.TupleBees = 0
	for _, rb := range m.relBees {
		if rb.DataSections != nil {
			s.TupleBees += rb.DataSections.NumBees()
		}
	}
	return s
}

// TupleBeeProbes sums the tuple-bee dictionary probe counts across every
// relation with specialized storage.
func (m *Module) TupleBeeProbes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var n int64
	for _, rb := range m.relBees {
		if rb.DataSections != nil {
			n += rb.DataSections.Probes()
		}
	}
	return n
}

// Cache exposes the bee cache for inspection and persistence.
func (m *Module) Cache() *BeeCache { return m.cache }

// Placement exposes the bee placement optimizer's report.
func (m *Module) Placement() *Placement { return m.place }
