package core

import (
	"fmt"
	"strings"

	"microspec/internal/catalog"
	"microspec/internal/expr"
	"microspec/internal/profile"
	"microspec/internal/storage/tuple"
	"microspec/internal/types"
)

// RelationBee is the bee created for one relation at schema-definition
// time. Its two bee routines are GCL (the specialized deform, replacing
// slot_deform_tuple) and SCL (the specialized fill, replacing
// heap_fill_tuple). If the relation's storage is tuple-bee specialized,
// DataSections holds the attribute-value dictionaries the routines'
// "holes" read from.
type RelationBee struct {
	Rel *catalog.Relation

	// GCL extracts the first natts attributes of a stored tuple.
	GCL DeformFunc
	// DeformBatch is the GCL routine's batch form: it runs the specialized
	// per-attribute loop across every tuple of a page in one call, so the
	// batch executor re-enters neither the caller nor the bee-dispatch
	// wrapper per tuple.
	DeformBatch BatchDeformFunc
	// SCL forms the stored bytes of a tuple for the given beeID.
	SCL func(values []types.Datum, beeID uint16, prof *profile.Counters) ([]byte, error)

	// DataSections is non-nil iff the relation has tuple-bee storage.
	DataSections *DataSections

	// Source is the generated pseudo-C template for the GCL routine,
	// mirroring the paper's Listing 2; kept for inspection and stored in
	// the bee cache.
	Source string

	// gclCost[n] is the abstract instruction cost of deforming the first
	// n attributes.
	gclCost []int64
	// sclCost is the abstract instruction cost of one SCL invocation.
	sclCost int64
}

// makeRelationBee is the Bee Maker's relation-bee path: it assembles the
// GCL and SCL routines from the pre-compiled snippet library, baking in
// every schema constant (attribute count via unrolling, offsets, lengths,
// alignments, nullability, and the tuple-bee holes).
//
// Relations with nullable attributes keep the generic routines behind the
// bee interface: the paper specializes on "the presence of nullable
// attributes", and its evaluation schemas (TPC-H, TPC-C) are entirely NOT
// NULL; extending the snippet library with bitmap-checking variants is
// orthogonal. This fallback is recorded in the bee source header.
func makeRelationBee(rel *catalog.Relation) *RelationBee {
	rb := &RelationBee{Rel: rel}
	if rel.Spec != nil {
		rb.DataSections = newDataSections(rel)
	}
	if rel.HasNullable {
		rb.GCL = func(tup []byte, values []types.Datum, natts int, prof *profile.Counters) {
			tuple.SlotDeform(rel, tup, values, natts, prof)
		}
		rb.DeformBatch = genericBatchDeform(rel)
		rb.SCL = func(values []types.Datum, beeID uint16, prof *profile.Counters) ([]byte, error) {
			return tuple.Form(rel, values, beeID, prof)
		}
		rb.Source = fmt.Sprintf("/* %s: nullable schema — generic routines retained */\n", rel.Name)
		return rb
	}
	rb.buildGCL()
	rb.buildSCL()
	rb.Source = rb.generateSource()
	return rb
}

// buildGCL assembles the deform routine as a flat op program with
// constant offsets baked for the fixed prefix and tuple-bee holes wired
// to the data section — exactly the structure of the paper's Listing 2,
// executed without per-attribute dispatch on catalog metadata.
func (rb *RelationBee) buildGCL() {
	rel := rb.Rel
	natts := len(rel.Attrs)
	ops := buildDeformProgram(rel)
	cost := make([]int64, natts+1)
	cost[0] = profile.GCLBase
	for i, op := range ops {
		var c int64
		switch op.op {
		case deformOpHole:
			c = profile.GCLHoleAttr
		case deformOpVarlenaConst, deformOpVarlenaDyn:
			c = profile.GCLVarlenaAttr
		default:
			c = profile.GCLFixedAttr
		}
		cost[i+1] = cost[i] + c
	}
	rb.gclCost = cost
	var combos *comboTable
	if rb.DataSections != nil {
		combos = rb.DataSections.combos
	}
	rb.GCL = func(tup []byte, values []types.Datum, natts int, prof *profile.Counters) {
		prof.Add(profile.CompDeform, cost[natts])
		runDeformProgram(ops, tup[tuple.HOff(tup):], tuple.BeeID(tup), combos, values, natts)
	}
	// The batch form hoists the bee call, the cost accounting, and the op
	// program out of the per-tuple loop: one invocation deforms a whole
	// page of tuples through the same specialized snippets.
	rb.DeformBatch = func(tups [][]byte, out []expr.Row, natts int, prof *profile.Counters) {
		prof.Add(profile.CompDeform, cost[natts]*int64(len(tups)))
		for i, tup := range tups {
			runDeformProgram(ops, tup[tuple.HOff(tup):], tuple.BeeID(tup), combos, out[i], natts)
		}
	}
}

// buildSCL assembles the fill routine as a flat op program (the
// pre-compiled snippet variants selected per attribute, with constant
// offsets baked for the fixed prefix) executed by one tight loop — no
// per-attribute indirect calls. The data size is a baked constant plus
// the (aligned) lengths of the stored varlena attributes.
func (rb *RelationBee) buildSCL() {
	rel := rb.Rel
	natts := len(rel.Attrs)
	const hoff = 8 // header only: no-null relations carry no bitmap

	ops, constPrefix, counts := buildFillProgram(rel)
	nFixed, nVar, nSpec := counts[0], counts[1], counts[2]

	// The dynamic-size tail: varlena attrs and fixed attrs after them.
	var dynOps []fillOp
	for _, op := range ops {
		if op.off < 0 || op.op == fillOpVarlena {
			dynOps = append(dynOps, op)
		}
	}

	rb.sclCost = int64(profile.SCLBase + nFixed*profile.SCLFixedAttr + nVar*profile.SCLVarlenaAttr + nSpec*profile.SCLHoleAttr)
	sclCost := rb.sclCost
	relName := rel.Name
	attrs := rel.Attrs
	rb.SCL = func(values []types.Datum, beeID uint16, prof *profile.Counters) ([]byte, error) {
		if len(values) != natts {
			return nil, fmt.Errorf("relation %s: %d values for %d attributes", relName, len(values), natts)
		}
		// Validate: no nulls anywhere (the schema is all NOT NULL) and
		// varchar widths.
		size := constPrefix
		for i := range values {
			if values[i].IsNull() {
				return nil, fmt.Errorf("null value in NOT NULL attribute %s.%s", relName, attrs[i].Name)
			}
		}
		for _, op := range dynOps {
			if op.op == fillOpVarlena {
				n := len(values[op.idx].Bytes())
				if op.width > 0 && n > int(op.width) {
					return nil, fmt.Errorf("value too long for %s.%s", relName, attrs[op.idx].Name)
				}
				size = ((size + 3) &^ 3) + 4 + n
			} else {
				size = alignUp(size, int(op.align)) + int(op.width)
			}
		}
		prof.Add(profile.CompFill, sclCost)
		buf := make([]byte, hoff+size)
		buf[0] = byte(beeID)
		buf[1] = byte(beeID >> 8)
		buf[3] = hoff
		runFillProgram(ops, buf[hoff:], values)
		return buf, nil
	}
}

// generateSource renders the GCL routine as pseudo-C in the style of the
// paper's Listing 2, for the bee cache and for inspection.
func (rb *RelationBee) generateSource() string {
	rel := rb.Rel
	var b strings.Builder
	fmt.Fprintf(&b, "void GetColumnsToLongs_%s(char* data, int bee_id, Datum* values) {\n", rel.Name)
	b.WriteString("  /* no-null relation: isnull cleared with wide stores */\n")
	off := 0
	constant := true
	specPos := 0
	for i := range rel.Attrs {
		a := &rel.Attrs[i]
		switch {
		case rel.IsSpecialized(i):
			fmt.Fprintf(&b, "  values[%d] = DATA_SECTION(bee_id, %d); /* %s */\n", i, specPos, a.Name)
			specPos++
		case a.Len >= 0 && constant:
			attOff := alignUp(off, a.Align)
			fmt.Fprintf(&b, "  values[%d] = *(%s*)(data + %d); /* %s */\n", i, a.Type, attOff, a.Name)
			off = attOff + a.Len
		case a.Len >= 0:
			fmt.Fprintf(&b, "  *offset = ALIGN%d(*offset); values[%d] = *(%s*)(data + *offset); *offset += %d; /* %s */\n",
				a.Align, i, a.Type, a.Len, a.Name)
		default:
			if constant {
				attOff := alignUp(off, a.Align)
				fmt.Fprintf(&b, "  values[%d] = (long)(data + %d); /* %s, varlena */\n", i, attOff+4, a.Name)
				constant = false
			} else {
				fmt.Fprintf(&b, "  *offset = ALIGN4(*offset); values[%d] = (long)(data + *offset + 4); *offset += 4 + VARSIZE(...); /* %s */\n", i, a.Name)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// GCLCost returns the abstract instruction cost of deforming n attributes
// with this bee (exported for the experiment harness).
func (rb *RelationBee) GCLCost(n int) int64 {
	if rb.gclCost == nil {
		return 0
	}
	return rb.gclCost[n]
}

// SCLCost returns the abstract instruction cost of one SCL invocation.
func (rb *RelationBee) SCLCost() int64 { return rb.sclCost }
