package core

import (
	"strings"
	"testing"

	"microspec/internal/catalog"
	"microspec/internal/expr"
	"microspec/internal/profile"
	"microspec/internal/storage/tuple"
	"microspec/internal/types"
)

func ordersSchema() catalog.Schema {
	return catalog.Schema{Attrs: []catalog.Attribute{
		catalog.Col("o_orderkey", types.Int32, true),
		catalog.Col("o_custkey", types.Int32, true),
		catalog.LowCardCol("o_orderstatus", types.Char(1), true),
		catalog.Col("o_totalprice", types.Float64, true),
		catalog.Col("o_orderdate", types.Date, true),
		catalog.LowCardCol("o_orderpriority", types.Char(15), true),
		catalog.Col("o_clerk", types.Char(15), true),
		catalog.LowCardCol("o_shippriority", types.Int32, true),
		catalog.Col("o_comment", types.Varchar(79), true),
	}}
}

func ordersValues(status string, prio string, ship int32) []types.Datum {
	return []types.Datum{
		types.NewInt32(7),
		types.NewInt32(39136),
		types.NewChar(status),
		types.NewFloat64(252004.18),
		types.NewDate(types.MustParseDate("1996-01-10")),
		types.NewChar(prio),
		types.NewChar("Clerk#000000470"),
		types.NewInt32(ship),
		types.NewString("ly special requests"),
	}
}

// beeDB builds a bee-enabled module+catalog with the orders relation.
func beeDB(t *testing.T, rs RoutineSet) (*Module, *catalog.Relation, *RelationBee) {
	t.Helper()
	m := NewModule(rs)
	c := catalog.New()
	schema := ordersSchema()
	rel, err := c.CreateRelation("orders", schema, []int{0}, m.SpecMaskFor(schema))
	if err != nil {
		t.Fatal(err)
	}
	rb := m.OnCreateRelation(rel)
	return m, rel, rb
}

func TestSpecMask(t *testing.T) {
	m := NewModule(AllRoutines)
	mask := m.SpecMaskFor(ordersSchema())
	if mask == nil || mask.NumSpecialized != 3 {
		t.Fatalf("mask = %+v", mask)
	}
	if !mask.Specialized[2] || !mask.Specialized[5] || !mask.Specialized[7] {
		t.Errorf("wrong attrs specialized: %v", mask.Specialized)
	}
	if NewModule(Stock).SpecMaskFor(ordersSchema()) != nil {
		t.Error("stock module must not specialize storage")
	}
	// No annotated attrs → nil mask even with tuple bees on.
	plain := catalog.Schema{Attrs: []catalog.Attribute{catalog.Col("x", types.Int32, true)}}
	if m.SpecMaskFor(plain) != nil {
		t.Error("unannotated schema must not get a mask")
	}
}

func TestSCLGCLRoundTripSpecialized(t *testing.T) {
	m, rel, rb := beeDB(t, AllRoutines)
	vals := ordersValues("O", "2-HIGH", 0)
	tup, err := m.FormTuple(rel, vals, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tuple.BeeID(tup) == 0 {
		t.Fatal("specialized tuple must carry a beeID")
	}
	out := make([]types.Datum, 9)
	rb.GCL(tup, out, 9, nil)
	for i := range vals {
		if out[i].Compare(vals[i]) != 0 {
			t.Errorf("attr %d: got %v want %v", i, out[i], vals[i])
		}
	}
}

func TestTupleBeeSharing(t *testing.T) {
	m, rel, rb := beeDB(t, AllRoutines)
	// Two tuples with the same low-card combination share one bee.
	t1, _ := m.FormTuple(rel, ordersValues("O", "2-HIGH", 0), nil)
	t2, _ := m.FormTuple(rel, ordersValues("O", "2-HIGH", 0), nil)
	if tuple.BeeID(t1) != tuple.BeeID(t2) {
		t.Error("identical combinations must share a tuple bee")
	}
	// A different combination gets a new bee.
	t3, _ := m.FormTuple(rel, ordersValues("F", "2-HIGH", 0), nil)
	if tuple.BeeID(t3) == tuple.BeeID(t1) {
		t.Error("different combination must get a different bee")
	}
	if n := rb.DataSections.NumBees(); n != 2 {
		t.Errorf("NumBees = %d, want 2", n)
	}
	if got := m.Stats().TupleBees; got != 2 {
		t.Errorf("stats.TupleBees = %d", got)
	}
}

func TestTupleBeeStorageSmaller(t *testing.T) {
	m, rel, _ := beeDB(t, AllRoutines)
	vals := ordersValues("O", "2-HIGH", 0)
	specTup, _ := m.FormTuple(rel, vals, nil)

	// Stock relation for comparison.
	c2 := catalog.New()
	stockRel, _ := c2.CreateRelation("orders", ordersSchema(), nil, nil)
	stockTup, _ := tuple.Form(stockRel, vals, 0, nil)
	if len(specTup) >= len(stockTup) {
		t.Errorf("specialized %dB, stock %dB", len(specTup), len(stockTup))
	}
}

func TestDictCapacityEnforced(t *testing.T) {
	m := NewModule(AllRoutines)
	c := catalog.New()
	schema := catalog.Schema{Attrs: []catalog.Attribute{
		catalog.LowCardCol("k", types.Int32, true),
		catalog.Col("v", types.Int32, true),
	}}
	rel, _ := c.CreateRelation("t", schema, nil, m.SpecMaskFor(schema))
	m.OnCreateRelation(rel)
	for i := 0; i < MaxDictValues; i++ {
		if _, err := m.FormTuple(rel, []types.Datum{types.NewInt32(int32(i)), types.NewInt32(0)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.FormTuple(rel, []types.Datum{types.NewInt32(999999), types.NewInt32(0)}, nil); err == nil {
		t.Error("257th distinct value must be rejected")
	}
	// Existing values still fine.
	if _, err := m.FormTuple(rel, []types.Datum{types.NewInt32(5), types.NewInt32(1)}, nil); err != nil {
		t.Errorf("existing value rejected: %v", err)
	}
}

func TestGCLCostMatchesPaper(t *testing.T) {
	m, rel, rb := beeDB(t, AllRoutines)
	tup, _ := m.FormTuple(rel, ordersValues("O", "2-HIGH", 0), nil)
	prof := &profile.Counters{}
	out := make([]types.Datum, 9)
	rb.GCL(tup, out, 9, prof)
	got := prof.Component(profile.CompDeform)
	// Paper: the specialized GetColumnsToLongs has ≈146 instructions.
	if got < 135 || got > 160 {
		t.Errorf("GCL cost = %d, want ≈146", got)
	}
	if rb.GCLCost(9) != got {
		t.Errorf("GCLCost(9) = %d != charged %d", rb.GCLCost(9), got)
	}
	if rb.GCLCost(3) >= rb.GCLCost(9) {
		t.Error("partial deform must cost less")
	}
}

func TestDeformerSelection(t *testing.T) {
	// Stock module: generic deform.
	mStock := NewModule(Stock)
	cs := catalog.New()
	relStock, _ := cs.CreateRelation("orders", ordersSchema(), nil, nil)
	mStock.OnCreateRelation(relStock)
	d, err := mStock.Deformer(relStock)
	if err != nil {
		t.Fatal(err)
	}
	vals := ordersValues("O", "2-HIGH", 0)
	tup, _ := tuple.Form(relStock, vals, 0, nil)
	out := make([]types.Datum, 9)
	prof := &profile.Counters{}
	d(tup, out, 9, prof)
	if out[8].Str() != "ly special requests" {
		t.Errorf("generic deform wrong: %v", out[8])
	}
	if c := prof.Component(profile.CompDeform); c < 320 || c > 360 {
		t.Errorf("generic deform cost %d, want ≈340", c)
	}

	// Bee module: GCL, cheaper.
	mBee, relBee, _ := beeDB(t, AllRoutines)
	dBee, err := mBee.Deformer(relBee)
	if err != nil {
		t.Fatal(err)
	}
	tupBee, _ := mBee.FormTuple(relBee, vals, nil)
	profBee := &profile.Counters{}
	dBee(tupBee, out, 9, profBee)
	if out[5].Str() != "2-HIGH" {
		t.Errorf("GCL deform wrong: %v", out[5])
	}
	if profBee.Component(profile.CompDeform) >= prof.Component(profile.CompDeform) {
		t.Error("GCL must cost less than generic deform")
	}

	// Specialized storage without GCL is an error.
	if err := func() error {
		defer func() { recover() }()
		err := mBee.SetRoutines(Stock)
		return err
	}(); err == nil {
		t.Error("disabling GCL with specialized storage must fail")
	}
}

func TestPartialGCLDeform(t *testing.T) {
	m, rel, rb := beeDB(t, AllRoutines)
	tup, _ := m.FormTuple(rel, ordersValues("P", "1-URGENT", 3), nil)
	out := make([]types.Datum, 9)
	rb.GCL(tup, out, 6, nil)
	if out[2].Str() != "P" || out[5].Str() != "1-URGENT" {
		t.Errorf("partial deform: %v %v", out[2], out[5])
	}
}

func TestNullableRelationFallsBack(t *testing.T) {
	m := NewModule(AllRoutines)
	c := catalog.New()
	schema := catalog.Schema{Attrs: []catalog.Attribute{
		catalog.Col("a", types.Int32, true),
		catalog.Col("b", types.Int32, false),
	}}
	rel, _ := c.CreateRelation("n", schema, nil, m.SpecMaskFor(schema))
	rb := m.OnCreateRelation(rel)
	if !strings.Contains(rb.Source, "generic routines retained") {
		t.Error("nullable relation bee must record the fallback")
	}
	vals := []types.Datum{types.NewInt32(1), types.Null}
	tup, err := m.FormTuple(rel, vals, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]types.Datum, 2)
	rb.GCL(tup, out, 2, nil)
	if out[0].Int32() != 1 || !out[1].IsNull() {
		t.Errorf("fallback deform: %v %v", out[0], out[1])
	}
}

func TestSCLValidation(t *testing.T) {
	m, rel, _ := beeDB(t, AllRoutines)
	vals := ordersValues("O", "2-HIGH", 0)
	vals[3] = types.Null
	if _, err := m.FormTuple(rel, vals, nil); err == nil {
		t.Error("SCL must reject NULL in NOT NULL attribute")
	}
	vals = ordersValues("O", "2-HIGH", 0)
	vals[8] = types.NewString(strings.Repeat("x", 200))
	if _, err := m.FormTuple(rel, vals, nil); err == nil {
		t.Error("SCL must reject oversize varchar")
	}
	if _, err := m.FormTuple(rel, vals[:3], nil); err == nil {
		t.Error("SCL must reject wrong arity")
	}
}

func TestGeneratedSourceMirrorsListing2(t *testing.T) {
	_, _, rb := beeDB(t, AllRoutines)
	src := rb.Source
	for _, want := range []string{"GetColumnsToLongs_orders", "DATA_SECTION(bee_id", "*(integer*)(data + 0)", "*(integer*)(data + 4)"} {
		if !strings.Contains(src, want) {
			t.Errorf("source missing %q:\n%s", want, src)
		}
	}
}

func TestBeeCacheAndCollector(t *testing.T) {
	m, rel, _ := beeDB(t, AllRoutines)
	if m.Cache().Len() != 1 {
		t.Fatalf("cache len = %d", m.Cache().Len())
	}
	if _, ok := m.Cache().Get("relation", "orders"); !ok {
		t.Error("relation bee missing from cache")
	}
	if n := m.Cache().Flush(); n != 1 {
		t.Errorf("flush wrote %d", n)
	}
	if n := m.Cache().Flush(); n != 0 {
		t.Errorf("idempotent flush wrote %d", n)
	}
	entries := m.Cache().Entries()
	if len(entries) != 1 || !entries[0].OnDisk {
		t.Errorf("entries = %+v", entries)
	}
	// Collector: dropping the relation removes its bees.
	m.OnDropRelation(rel)
	if m.Cache().Len() != 0 {
		t.Error("collector must drop dead bees")
	}
	if m.RelationBeeFor(rel) != nil {
		t.Error("relation bee must be gone")
	}
}

func TestBeeReconstruction(t *testing.T) {
	m, rel, rb := beeDB(t, AllRoutines)
	m.FormTuple(rel, ordersValues("O", "2-HIGH", 0), nil)
	rb2 := m.OnSchemaChange(rel)
	if rb2 == rb {
		t.Error("reconstruction must build a new bee")
	}
	if rb2.DataSections != rb.DataSections {
		t.Error("data sections must survive reconstruction")
	}
	if m.RelationBeeFor(rel) != rb2 {
		t.Error("module must serve the new bee")
	}
}

func TestPlacement(t *testing.T) {
	m, _, _ := beeDB(t, AllRoutines)
	if m.Placement().Assigned() != 1 {
		t.Errorf("assigned = %d", m.Placement().Assigned())
	}
	if !strings.Contains(m.Placement().Report(), "1 bees") {
		t.Errorf("report = %q", m.Placement().Report())
	}
}

func TestCompilePredicate(t *testing.T) {
	m := NewModule(AllRoutines)
	age := &expr.Var{Idx: 0, T: types.Int32, Name: "age"}
	pred := &expr.Cmp{Op: expr.LE, L: age, R: expr.NewConst(types.NewInt32(45))}
	cp, ok := m.CompilePredicate(pred)
	if !ok {
		t.Fatal("EVP compilation failed for age <= 45")
	}
	ctx := &expr.Ctx{Prof: &profile.Counters{}}
	if v := cp(expr.Row{types.NewInt32(30)}, ctx); !v.Bool() {
		t.Error("30 <= 45 must hold")
	}
	if v := cp(expr.Row{types.NewInt32(50)}, ctx); v.Bool() {
		t.Error("50 <= 45 must not hold")
	}
	if v := cp(expr.Row{types.Null}, ctx); !v.IsNull() {
		t.Error("NULL <= 45 must be unknown")
	}
	if ctx.Prof.Component(profile.CompExpr) == 0 {
		t.Error("EVP must charge instructions")
	}
	if got := m.Stats().QueryBees; got != 1 {
		t.Errorf("QueryBees = %d", got)
	}

	// Disabled EVP compiles nothing.
	if _, ok := NewModule(Stock).CompilePredicate(pred); ok {
		t.Error("stock module must not compile predicates")
	}
}

func TestCompilePredicateComplexShapes(t *testing.T) {
	m := NewModule(AllRoutines)
	qty := &expr.Var{Idx: 0, T: types.Float64, Name: "quantity"}
	disc := &expr.Var{Idx: 1, T: types.Float64, Name: "discount"}
	ship := &expr.Var{Idx: 2, T: types.Date, Name: "shipdate"}
	mode := &expr.Var{Idx: 3, T: types.Char(10), Name: "shipmode"}
	d0 := types.MustParseDate("1994-01-01")

	// The q6 shape: date range + between + <.
	pred := &expr.And{Kids: []expr.Expr{
		&expr.Cmp{Op: expr.GE, L: ship, R: expr.NewConst(types.NewDate(d0))},
		&expr.Cmp{Op: expr.LT, L: ship, R: &expr.DateArith{L: expr.NewConst(types.NewDate(d0)), Iv: types.Interval{Months: 12}}},
		&expr.Cmp{Op: expr.GE, L: disc, R: expr.NewConst(types.NewFloat64(0.05))},
		&expr.Cmp{Op: expr.LE, L: disc, R: expr.NewConst(types.NewFloat64(0.07))},
		&expr.Cmp{Op: expr.LT, L: qty, R: expr.NewConst(types.NewFloat64(24))},
		&expr.InList{Kid: mode, Items: []types.Datum{types.NewChar("MAIL"), types.NewChar("SHIP")}},
	}}
	cp, ok := m.CompilePredicate(pred)
	if !ok {
		t.Fatal("q6-shaped predicate must compile")
	}
	row := expr.Row{
		types.NewFloat64(10), types.NewFloat64(0.06),
		types.NewDate(d0 + 100), types.NewChar("MAIL"),
	}
	ctx := &expr.Ctx{}
	if !cp(row, ctx).Bool() {
		t.Error("matching row rejected")
	}
	row[1] = types.NewFloat64(0.10)
	if cp(row, ctx).Bool() {
		t.Error("non-matching row accepted")
	}

	// Interpreter agreement on OR/NOT/LIKE shapes.
	pred2 := &expr.Or{Kids: []expr.Expr{
		expr.NewLike(mode, "MA%", false),
		&expr.Not{Kid: &expr.Cmp{Op: expr.EQ, L: qty, R: expr.NewConst(types.NewFloat64(1))}},
	}}
	cp2, ok := m.CompilePredicate(pred2)
	if !ok {
		t.Fatal("or/not/like must compile")
	}
	for _, r := range []expr.Row{row, {types.NewFloat64(1), types.NewFloat64(0), types.NewDate(0), types.NewChar("XX")}} {
		want := pred2.Eval(r, ctx)
		got := cp2(r, ctx)
		if want.IsNull() != got.IsNull() || (!want.IsNull() && want.Bool() != got.Bool()) {
			t.Errorf("EVP disagrees with interpreter on %v: %v vs %v", r, got, want)
		}
	}
}

func TestCompilePredicateRejectsUnsupported(t *testing.T) {
	m := NewModule(AllRoutines)
	// Outer references are not in the snippet library.
	pred := &expr.Cmp{Op: expr.EQ,
		L: &expr.OuterVar{Idx: 0, T: types.Int32},
		R: expr.NewConst(types.NewInt32(1))}
	if _, ok := m.CompilePredicate(pred); ok {
		t.Error("outer-reference predicate must not compile")
	}
	// Unsupported node buried in an AND poisons the whole conjunct.
	pred2 := &expr.And{Kids: []expr.Expr{
		&expr.Cmp{Op: expr.EQ, L: &expr.Var{Idx: 0, T: types.Int32}, R: expr.NewConst(types.NewInt32(1))},
		pred,
	}}
	if _, ok := m.CompilePredicate(pred2); ok {
		t.Error("AND with unsupported kid must not compile")
	}
}

func TestCompileJoinKeys(t *testing.T) {
	m := NewModule(AllRoutines)
	jk, ok := m.CompileJoinKeys([]int{0}, []int{1}, []types.T{types.Int32})
	if !ok {
		t.Fatal("EVJ compilation failed")
	}
	outer := expr.Row{types.NewInt32(7), types.NewInt32(0)}
	inner := expr.Row{types.NewInt32(0), types.NewInt32(7)}
	if !jk.Match(outer, inner) {
		t.Error("keys 7=7 must match")
	}
	if jk.HashOuter(outer) != jk.HashInner(inner) {
		t.Error("hashes of equal keys must agree")
	}
	inner[1] = types.NewInt32(8)
	if jk.Match(outer, inner) {
		t.Error("7=8 must not match")
	}
	// Multi-key with strings.
	jk2, _ := m.CompileJoinKeys([]int{0, 1}, []int{0, 1}, []types.T{types.Int32, types.Varchar(4)})
	a := expr.Row{types.NewInt32(1), types.NewString("ab")}
	b := expr.Row{types.NewInt32(1), types.NewString("ab")}
	if !jk2.Match(a, b) || jk2.HashOuter(a) != jk2.HashInner(b) {
		t.Error("multi-key match/hash wrong")
	}
	b[1] = types.NewString("ac")
	if jk2.Match(a, b) {
		t.Error("different strings must not match")
	}
	// Disabled.
	if _, ok := NewModule(Stock).CompileJoinKeys([]int{0}, []int{0}, []types.T{types.Int32}); ok {
		t.Error("stock module must not compile join keys")
	}
}

func TestRoutineToggles(t *testing.T) {
	m := NewModule(RoutineSet{GCL: true, SCL: true})
	if _, ok := m.CompilePredicate(&expr.Cmp{Op: expr.EQ, L: &expr.Var{Idx: 0, T: types.Int32}, R: expr.NewConst(types.NewInt32(1))}); ok {
		t.Error("EVP off must not compile")
	}
	if err := m.SetRoutines(AllRoutines); err != nil {
		t.Fatal(err)
	}
	if !m.Routines().EVP {
		t.Error("routines not updated")
	}
}

func TestBeeCacheLoadRestoresMemory(t *testing.T) {
	m, _, _ := beeDB(t, AllRoutines)
	m.Cache().Flush()
	// Simulate a restart: wipe memory, reload from "disk".
	entries := m.Cache().Entries()
	if len(entries) == 0 {
		t.Fatal("no entries")
	}
	n := m.Cache().Load()
	if n == 0 {
		t.Error("Load must restore bees from the on-disk cache")
	}
	if _, ok := m.Cache().Get("relation", "orders"); !ok {
		t.Error("relation bee missing after Load")
	}
}

func TestPlacementWrapsPastICache(t *testing.T) {
	p := newPlacement()
	long := strings.Repeat("x", 4096) // 64 lines per bee
	for i := 0; i < 10; i++ {
		p.assign(long)
	}
	if p.Assigned() != 10 {
		t.Errorf("assigned = %d", p.Assigned())
	}
	// 10 bees × 64 lines = 640 lines > 512-line I1: the allocator must
	// have wrapped at least once and counted conflicts.
	if !strings.Contains(p.Report(), "wrap conflicts") {
		t.Errorf("report = %q", p.Report())
	}
	if p.conflicts == 0 {
		t.Error("expected wrap conflicts after overflowing the simulated I1")
	}
}

func TestMakeNumericSemantics(t *testing.T) {
	d := types.MakeNumeric(42, types.KindInt32)
	if d.Int32() != 42 || d.Kind() != types.KindInt32 {
		t.Errorf("int32: %v", d)
	}
	f := types.NewFloat64(2.75)
	raw := f.Int64() // the bit pattern
	if got := types.MakeNumeric(raw, types.KindFloat64); got.Float64() != 2.75 {
		t.Errorf("float bits round trip: %v", got)
	}
	b := types.MakeNumeric(1, types.KindBool)
	if !b.Bool() {
		t.Error("bool")
	}
}
