package core

import "testing"

// TestTierGateOffCompilesFirstUse pins the compatibility default: with
// the gate down (advisor off) every unknown bee compiles on first use,
// and only an explicit demotion blocks one.
func TestTierGateOffCompilesFirstUse(t *testing.T) {
	m := NewModule(AllRoutines)
	k := beeKey{kind: "query/EVP", name: "(x < 1)"}
	if !m.tier.allow(k, "") {
		t.Fatal("gate off: unknown bee refused")
	}
	if _, ok := m.TierOf("query/EVP", "(x < 1)"); ok {
		t.Fatal("gate off: allow created a tier entry")
	}
	if !m.TierDemote("query/EVP", "(x < 1)", true, 4) {
		t.Fatal("sticky demote of untracked bee should install a denylist entry")
	}
	if m.tier.allow(k, "") {
		t.Fatal("gate off: demoted bee still compiled")
	}
}

// TestTierLifecycle walks candidate → compiled → pinned → demoted →
// candidate and checks each transition fires exactly once.
func TestTierLifecycle(t *testing.T) {
	m := NewModule(AllRoutines)
	m.SetTierGating(true)
	k := beeKey{kind: "query/EVP", name: "(x < 1)"}

	// Gate up: first compile attempt is refused and creates a candidate.
	if m.tier.allow(k, "t") {
		t.Fatal("gate on: unknown bee compiled immediately")
	}
	st, ok := m.TierOf("query/EVP", "(x < 1)")
	if !ok || st != TierCandidate {
		t.Fatalf("state after refused compile = %v, %v; want candidate", st, ok)
	}

	// Demand accumulates from refused compiles and per-execution wants.
	m.TierWant("query/EVP", "(x < 1)", []string{"t"}, 2)
	snap := m.TierSnapshot()
	if len(snap) != 1 || snap[0].Heat < 3 {
		t.Fatalf("heat = %+v, want one entry with heat ≥ 3", snap)
	}
	if got := snap[0].Rels; len(got) != 1 || got[0] != "t" {
		t.Fatalf("rels = %v, want [t]", got)
	}

	if !m.TierPromote("query/EVP", "(x < 1)") {
		t.Fatal("promote failed")
	}
	if m.TierPromote("query/EVP", "(x < 1)") {
		t.Fatal("second promote reported a transition")
	}
	if !m.tier.allow(k, "t") {
		t.Fatal("promoted bee still gated")
	}
	if !m.TierPin("query/EVP", "(x < 1)") {
		t.Fatal("pin failed")
	}

	// Demotion is exactly-once: the second call finds it already demoted.
	if !m.TierDemote("query/EVP", "(x < 1)", false, 2) {
		t.Fatal("demote failed")
	}
	if m.TierDemote("query/EVP", "(x < 1)", false, 2) {
		t.Fatal("second demote reported a transition (would double-count)")
	}
	if m.tier.allow(k, "t") {
		t.Fatal("demoted bee compiled")
	}

	// Hysteresis: the hold expires after two decay cycles, the entry
	// reverts to candidate with zero heat, and demand must be re-earned.
	m.TierDecay(0.5)
	if st, _ := m.TierOf("query/EVP", "(x < 1)"); st != TierDemoted {
		t.Fatalf("state after one decay = %v, want still demoted", st)
	}
	m.TierDecay(0.5)
	st, _ = m.TierOf("query/EVP", "(x < 1)")
	if st != TierCandidate {
		t.Fatalf("state after hold expiry = %v, want candidate", st)
	}
	if snap := m.TierSnapshot(); snap[0].Heat != 0 {
		t.Fatalf("heat after hold expiry = %v, want 0 (re-earn demand)", snap[0].Heat)
	}
}

// TestTierStickyDemotionPersists checks that guard-break demotions are
// reported by DemotedBees for the checkpoint manifest and that a
// restored denylist entry blocks compilation with the gate down.
func TestTierStickyDemotionPersists(t *testing.T) {
	m := NewModule(AllRoutines)
	m.SetTierGating(true)
	m.TierWant("query/EVP", "(a = 1)", nil, 5)
	m.TierPromote("query/EVP", "(a = 1)")
	m.TierDemote("query/EVP", "(a = 1)", true, 8)

	dem := m.DemotedBees()
	if len(dem) != 1 || dem[0].Name != "(a = 1)" || !dem[0].Sticky {
		t.Fatalf("DemotedBees = %+v, want the one sticky entry", dem)
	}

	// A fresh module (warm restart) restores the denylist from the
	// manifest; the bee stays off even though gating is down.
	m2 := NewModule(AllRoutines)
	m2.RestoreDemotedBee("query/EVP", "(a = 1)", 16)
	if m2.tier.allow(beeKey{kind: "query/EVP", name: "(a = 1)"}, "") {
		t.Fatal("restored denylist entry did not block compilation")
	}
	if m2.tier.allow(beeKey{kind: "query/EVP", name: "(b = 2)"}, "") == false {
		t.Fatal("unrelated bee blocked by restored denylist")
	}
}
