package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// This file implements bee quarantine, the runtime half of the paper's
// fallback behaviour: the bee caller already falls back to the generic
// routine when a bee is unavailable (§IV); quarantine makes a bee that
// panicked at runtime unavailable, so the same fallback transparently
// re-runs the query on the stock path. Quarantine is keyed on the bee
// cache's (kind, name) space and checked at compile time — the per-tuple
// hot path pays nothing.
//
// Only query bees (EVP/EVA/EVJ) are quarantined: relation bees (GCL/SCL)
// deform specialized storage that the generic routines cannot read, so
// they have no fallback and a fault there is surfaced as an error
// instead.

// quarantine tracks currently quarantined bees plus a cumulative count
// for metrics. It has its own lock so compile paths never nest it with
// the module lock.
type quarantine struct {
	mu    sync.Mutex
	set   map[beeKey]struct{}
	total int64
}

func (q *quarantine) add(k beeKey) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.set == nil {
		q.set = make(map[beeKey]struct{})
	}
	if _, dup := q.set[k]; dup {
		return false
	}
	q.set[k] = struct{}{}
	q.total++
	return true
}

func (q *quarantine) has(k beeKey) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	_, ok := q.set[k]
	return ok
}

func (q *quarantine) clear() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.set)
	q.set = nil
	return n
}

func (q *quarantine) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.set)
}

// Quarantine marks one bee as unusable; subsequent compiles of the same
// bee return the generic-fallback signal (nil, false). It reports
// whether the bee was newly quarantined — the engine retries a panicked
// query only when at least one bee actually left service, which
// guarantees the retry runs a different configuration.
func (m *Module) Quarantine(kind, name string) bool {
	return m.quar.add(beeKey{kind: kind, name: name})
}

// IsQuarantined reports whether the bee is currently quarantined.
func (m *Module) IsQuarantined(kind, name string) bool {
	return m.quar.has(beeKey{kind: kind, name: name})
}

// ClearQuarantine returns every quarantined bee to service (operator
// action, e.g. after a fixed snippet library is deployed) and reports
// how many were lifted.
func (m *Module) ClearQuarantine() int { return m.quar.clear() }

// QuarantinedBees returns the cumulative number of quarantine events —
// the monotone counter surfaced as the bees_quarantined metric.
func (m *Module) QuarantinedBees() int64 {
	m.quar.mu.Lock()
	defer m.quar.mu.Unlock()
	return m.quar.total
}

// CacheEntries lists the cached bees like Cache().Entries(), with each
// entry's quarantine status filled in (the \bees shell view).
func (m *Module) CacheEntries() []CacheEntry {
	entries := m.cache.Entries()
	inCache := make(map[beeKey]struct{}, len(entries))
	for i := range entries {
		key := beeKey{kind: entries[i].Kind, name: entries[i].Name}
		inCache[key] = struct{}{}
		entries[i].Quarantined = m.quar.has(key)
		if st, ok := m.tier.get(key); ok {
			entries[i].Tier = st.String()
		}
	}
	// Demoted bees were evicted from the cache; append phantom rows so
	// the advisor's decisions stay visible in \cache and /bees.
	for _, ti := range m.tier.snapshot() {
		if ti.State != TierDemoted {
			continue
		}
		if _, ok := inCache[beeKey{kind: ti.Kind, name: ti.Name}]; ok {
			continue
		}
		entries = append(entries, CacheEntry{
			Kind: ti.Kind, Name: ti.Name,
			Quarantined: m.quar.has(beeKey{kind: ti.Kind, name: ti.Name}),
			Tier:        ti.StateName,
		})
	}
	return entries
}

// --- Chaos failpoint: injected bee panics ---

// panicInjector arms compiled bee closures to panic, exercising the
// quarantine path from tests and the chaos harness. Disarmed cost on the
// per-tuple path is one atomic load.
type panicInjector struct {
	armed  atomic.Bool
	mu     sync.Mutex
	kind   string // "" matches any kind
	substr string // "" matches any name
}

// InjectBeePanic arms the failpoint: every invocation of a compiled bee
// whose kind equals kind (or kind == "") and whose name contains substr
// (or substr == "") panics until ClearBeePanic.
func (m *Module) InjectBeePanic(kind, substr string) {
	m.inject.mu.Lock()
	m.inject.kind, m.inject.substr = kind, substr
	m.inject.mu.Unlock()
	m.inject.armed.Store(true)
}

// ClearBeePanic disarms the failpoint.
func (m *Module) ClearBeePanic() { m.inject.armed.Store(false) }

// maybePanic is called by compiled bee closures on each invocation.
func (m *Module) maybePanic(kind, name string) {
	if !m.inject.armed.Load() {
		return
	}
	m.inject.mu.Lock()
	k, s := m.inject.kind, m.inject.substr
	m.inject.mu.Unlock()
	if (k == "" || k == kind) && (s == "" || strings.Contains(name, s)) {
		panic(fmt.Sprintf("injected bee panic: %s %q", kind, name))
	}
}
